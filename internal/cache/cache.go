// Package cache simulates the memory hierarchy of the measurement platform
// (Table 3 of the paper): per-core L1D and L2 caches, a shared last-level
// cache, and main memory, each with set-associative LRU arrays and the
// paper's round-trip latencies. Both data accesses and PTE fetches issued by
// the translation designs go through this hierarchy, which is what makes
// walk-latency comparisons meaningful — the whole point of DMT is *which*
// PTE lines are fetched, and from *where*.
package cache

import (
	"fmt"

	"dmt/internal/mem"
)

// Level identifies where an access was served.
type Level uint8

const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMem:
		return "Mem"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Config describes one cache array.
type Config struct {
	SizeBytes int
	Ways      int
	LatencyRT int // round-trip access latency in cycles
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * mem.CacheLineBytes) }

// Cache is one set-associative LRU cache array. Tags and LRU stamps live
// interleaved in one flat array — (tag, stamp) pairs, set-major — rather
// than per-set slices or parallel arrays: a probe touches one contiguous
// span per set instead of chasing pointers or straddling a tags array and
// a stamps array, which matters because every simulated memory access
// walks these arrays several times and the larger arrays (the LLC's) miss
// the host's own caches.
type Cache struct {
	cfg   Config
	ways  int
	wspan int // ways*2: elements per set in ents
	nsets uint64
	mask  uint64   // nsets-1 when nsets is a power of two, else 0 (modulo path)
	ents  []uint64 // (tag, stamp) pairs; tag 0 = invalid (stored +1)

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache array from cfg. Size, way count, and line size
// must divide evenly; misconfiguration is reported as an error.
func NewCache(cfg Config) (*Cache, error) {
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: bad geometry %+v", cfg)
	}
	n := cfg.Sets()
	if n <= 0 || cfg.SizeBytes%(cfg.Ways*mem.CacheLineBytes) != 0 {
		return nil, fmt.Errorf("cache: bad geometry %+v", cfg)
	}
	c := &Cache{
		cfg:   cfg,
		ways:  cfg.Ways,
		wspan: cfg.Ways * 2,
		nsets: uint64(n),
		ents:  make([]uint64, n*cfg.Ways*2),
	}
	if n&(n-1) == 0 {
		c.mask = uint64(n) - 1
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// locate returns the first element index of pa's set in ents and its match
// tag. For power-of-two set counts (every Table 3 geometry, scaled or not)
// the set index is a mask — bit-identical to the modulo it replaces — so
// the hot path avoids a hardware divide.
func (c *Cache) locate(pa mem.PAddr) (int, uint64) {
	line := uint64(pa) / mem.CacheLineBytes
	var si uint64
	if c.mask != 0 {
		si = line & c.mask
	} else {
		si = line % c.nsets
	}
	return int(si) * c.wspan, line + 1 // +1 so tag 0 means invalid
}

// Lookup probes for the line holding pa and refreshes LRU state on a hit.
func (c *Cache) Lookup(pa mem.PAddr, now uint64) bool {
	base, tag := c.locate(pa)
	set := c.ents[base : base+c.wspan]
	// w < len(set)-1 (not w < len) so the compiler can prove the scan's
	// element loads in bounds; wspan is even, so the iteration space is
	// identical.
	for w := 0; w < len(set)-1; w += 2 {
		if set[w] == tag {
			set[w+1] = now
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Insert fills the line holding pa, evicting the LRU victim.
func (c *Cache) Insert(pa mem.PAddr, now uint64) {
	base, tag := c.locate(pa)
	set := c.ents[base : base+c.wspan]
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < len(set)-1; w += 2 {
		if set[w] == tag {
			set[w+1] = now
			return
		}
		if set[w] == 0 {
			victim, oldest = w, 0
			break
		}
		if s := set[w+1]; s < oldest {
			victim, oldest = w, s
		}
	}
	set[victim] = tag
	set[victim+1] = now
}

// lookupOrFill probes for the line holding pa and, on a miss, fills the
// victim way within the same set scan. It is exactly Lookup followed by
// Insert of the same line: valid tags always occupy a prefix of the set
// (fills take the first empty way, evictions replace in place, and Flush
// empties whole sets), so the first empty way encountered both proves the
// tag absent and is the way Insert would pick. Hit/miss counters, LRU
// stamps, and victim choice are bit-identical to the two-call sequence —
// but the set span is touched once instead of twice, which matters on the
// miss path where the span starts cold in the host's own caches.
func (c *Cache) lookupOrFill(pa mem.PAddr, now uint64) bool {
	base, tag := c.locate(pa)
	set := c.ents[base : base+c.wspan]
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < len(set)-1; w += 2 {
		t := set[w]
		if t == tag {
			set[w+1] = now
			c.Hits++
			return true
		}
		if t == 0 {
			c.Misses++
			set[w] = tag
			set[w+1] = now
			return false
		}
		if s := set[w+1]; s < oldest {
			victim, oldest = w, s
		}
	}
	c.Misses++
	set[victim] = tag
	set[victim+1] = now
	return false
}

// Flush invalidates the entire array (used across simulated context
// switches in tests).
func (c *Cache) Flush() {
	for i := 0; i < len(c.ents); i += 2 {
		c.ents[i] = 0
	}
}

// HierarchyConfig describes the full memory system; DefaultConfig matches
// Table 3 (Intel Xeon Gold 6138).
type HierarchyConfig struct {
	L1D        Config
	L2         Config
	LLC        Config
	MemLatency int
}

// DefaultConfig is the simulated-architecture configuration from Table 3:
// 32 KiB 8-way L1D (4-cycle RT), 1 MiB 16-way L2 (14-cycle RT), 22 MiB
// 11-way LLC (54-cycle RT), 200-cycle main memory.
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:        Config{SizeBytes: 32 << 10, Ways: 8, LatencyRT: 4},
		L2:         Config{SizeBytes: 1 << 20, Ways: 16, LatencyRT: 14},
		LLC:        Config{SizeBytes: 22 << 20, Ways: 11, LatencyRT: 54},
		MemLatency: 200,
	}
}

// ScaledConfig returns DefaultConfig with every capacity divided by factor,
// keeping latencies; used to shrink simulations proportionally with the
// scaled-down working sets (DESIGN.md §6). LLC way count is preserved, so
// factor must leave at least one set per array.
func ScaledConfig(factor int) HierarchyConfig {
	c := DefaultConfig()
	c.L1D.SizeBytes /= factor
	c.L2.SizeBytes /= factor
	c.LLC.SizeBytes /= factor
	return c
}

// Hierarchy is the composed memory system.
type Hierarchy struct {
	cfg HierarchyConfig
	L1D *Cache
	L2  *Cache
	LLC *Cache

	now uint64

	Accesses   uint64
	MemFetches uint64
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	llc, err := NewCache(cfg.LLC)
	if err != nil {
		return nil, fmt.Errorf("LLC: %w", err)
	}
	return &Hierarchy{cfg: cfg, L1D: l1d, L2: l2, LLC: llc}, nil
}

// AccessResult describes one access.
type AccessResult struct {
	Cycles int
	Served Level
}

// Access performs a demand access to the line holding pa, returning the
// round-trip latency and the serving level, and filling all levels above
// the hit (inclusive allocation). Each level that misses is filled by its
// own lookupOrFill as the probe cascades down — every miss level ends up
// holding the line under the same LRU clock tick, exactly as the
// lookup-then-backfill phrasing would leave it, without rescanning any set.
func (h *Hierarchy) Access(pa mem.PAddr) AccessResult {
	h.now++
	h.Accesses++
	switch {
	case h.L1D.lookupOrFill(pa, h.now):
		return AccessResult{h.cfg.L1D.LatencyRT, LevelL1}
	case h.L2.lookupOrFill(pa, h.now):
		return AccessResult{h.cfg.L2.LatencyRT, LevelL2}
	case h.LLC.lookupOrFill(pa, h.now):
		return AccessResult{h.cfg.LLC.LatencyRT, LevelLLC}
	default:
		h.MemFetches++
		return AccessResult{h.cfg.MemLatency, LevelMem}
	}
}

// AccessBatch performs demand accesses to every pa in order, returning the
// summed round-trip cycles. It is bit-identical to calling Access per
// element — same lookup order, same inclusive fills, same LRU clock and
// counters — but keeps the level pointers and per-level configs hot in one
// loop, which matters on the batched engine's TLB-hit runs where the data
// access is the only memory-system work per op.
func (h *Hierarchy) AccessBatch(pas []mem.PAddr) uint64 {
	l1, l2, llc := h.L1D, h.L2, h.LLC
	latL1 := uint64(h.cfg.L1D.LatencyRT)
	latL2 := uint64(h.cfg.L2.LatencyRT)
	latLLC := uint64(h.cfg.LLC.LatencyRT)
	latMem := uint64(h.cfg.MemLatency)
	var cycles uint64
	for _, pa := range pas {
		h.now++
		h.Accesses++
		switch {
		case l1.lookupOrFill(pa, h.now):
			cycles += latL1
		case l2.lookupOrFill(pa, h.now):
			cycles += latL2
		case llc.lookupOrFill(pa, h.now):
			cycles += latLLC
		default:
			h.MemFetches++
			cycles += latMem
		}
	}
	return cycles
}

// Prefetch inserts the line holding pa into the L2 and LLC without charging
// demand latency; this is how the ASAP baseline lands upper-level PTE lines
// ahead of the walk (§6.2.2). It consumes memory bandwidth (recorded in
// MemFetches when the line came from memory) and returns the level the
// line was sourced from, so the consumer can account for the fill latency
// it cannot hide (LevelL2 means the line was already close — nothing to
// wait for).
func (h *Hierarchy) Prefetch(pa mem.PAddr) Level {
	h.now++
	if h.L2.lookupOrFill(pa, h.now) {
		return LevelL2
	}
	if h.LLC.lookupOrFill(pa, h.now) {
		return LevelLLC
	}
	h.MemFetches++
	return LevelMem
}

// Tick advances the hierarchy's LRU clock by one and returns the new stamp.
// Designs that manage individual cache arrays directly (Victima's TLB-spill
// blocks live in stolen L2 ways) stamp their Lookup/Insert calls with it, so
// their lines age on the same clock as demand traffic — mixing a private
// counter in would make spilled lines look arbitrarily old or young to the
// LRU victim scan.
func (h *Hierarchy) Tick() uint64 {
	h.now++
	return h.now
}

// Contains reports whether pa is present at any level (test helper).
func (h *Hierarchy) Contains(pa mem.PAddr) bool {
	// Probe without disturbing LRU or stats: inspect tags directly.
	for _, c := range []*Cache{h.L1D, h.L2, h.LLC} {
		base, tag := c.locate(pa)
		set := c.ents[base : base+c.wspan]
		for w := 0; w < len(set); w += 2 {
			if set[w] == tag {
				return true
			}
		}
	}
	return false
}

// Flush empties all levels.
func (h *Hierarchy) Flush() {
	h.L1D.Flush()
	h.L2.Flush()
	h.LLC.Flush()
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }
