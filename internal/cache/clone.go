package cache

// Clone deep-copies one cache array: the interleaved tag/stamp entries and
// hit/miss counters, so lookups on the clone age its own sets only.
func (c *Cache) Clone() *Cache {
	n := *c
	n.ents = append([]uint64(nil), c.ents...)
	return &n
}

// Clone deep-copies the hierarchy, including the warm state machine
// construction left behind (page-table builds touch PTE lines), so a cloned
// machine observes exactly the cache contents a fresh build would.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		cfg:        h.cfg,
		L1D:        h.L1D.Clone(),
		L2:         h.L2.Clone(),
		LLC:        h.LLC.Clone(),
		now:        h.now,
		Accesses:   h.Accesses,
		MemFetches: h.MemFetches,
	}
}
