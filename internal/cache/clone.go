package cache

// Clone deep-copies one cache array: tags, LRU stamps, and hit/miss
// counters, so lookups on the clone age its own sets only.
func (c *Cache) Clone() *Cache {
	n := &Cache{cfg: c.cfg, sets: make([]set, len(c.sets)), Hits: c.Hits, Misses: c.Misses}
	for i := range c.sets {
		n.sets[i] = set{
			tags:  append([]uint64(nil), c.sets[i].tags...),
			stamp: append([]uint64(nil), c.sets[i].stamp...),
		}
	}
	return n
}

// Clone deep-copies the hierarchy, including the warm state machine
// construction left behind (page-table builds touch PTE lines), so a cloned
// machine observes exactly the cache contents a fresh build would.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{
		cfg:        h.cfg,
		L1D:        h.L1D.Clone(),
		L2:         h.L2.Clone(),
		LLC:        h.LLC.Clone(),
		now:        h.now,
		Accesses:   h.Accesses,
		MemFetches: h.MemFetches,
	}
}
