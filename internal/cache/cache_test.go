package cache

import (
	"testing"
	"testing/quick"

	"dmt/internal/mem"
)

func mustCache(t testing.TB, cfg Config) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustHierarchy(t testing.TB, cfg HierarchyConfig) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHitAfterMiss(t *testing.T) {
	h := mustHierarchy(t, DefaultConfig())
	r := h.Access(0x1000)
	if r.Served != LevelMem || r.Cycles != 200 {
		t.Fatalf("cold access served from %v (%d cycles), want Mem/200", r.Served, r.Cycles)
	}
	r = h.Access(0x1000)
	if r.Served != LevelL1 || r.Cycles != 4 {
		t.Fatalf("warm access served from %v (%d cycles), want L1/4", r.Served, r.Cycles)
	}
}

func TestSameLineSharing(t *testing.T) {
	h := mustHierarchy(t, DefaultConfig())
	h.Access(0x2000)
	// A different address on the same 64-byte line must hit.
	if r := h.Access(0x2038); r.Served != LevelL1 {
		t.Fatalf("same-line access served from %v, want L1", r.Served)
	}
	// The next line must miss.
	if r := h.Access(0x2040); r.Served != LevelMem {
		t.Fatalf("next-line access served from %v, want Mem", r.Served)
	}
}

func TestL1EvictionFallsToL2(t *testing.T) {
	cfg := DefaultConfig()
	h := mustHierarchy(t, cfg)
	sets := cfg.L1D.Sets()
	ways := cfg.L1D.Ways
	// Fill one L1 set beyond capacity; conflicting lines map to the same
	// set when they share (lineIndex % sets).
	base := mem.PAddr(0)
	for i := 0; i <= ways; i++ {
		h.Access(base + mem.PAddr(i*sets*mem.CacheLineBytes))
	}
	// The first line was evicted from L1 but must still hit in L2.
	r := h.Access(base)
	if r.Served != LevelL2 {
		t.Fatalf("evicted line served from %v, want L2", r.Served)
	}
}

func TestLRUVictimSelection(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4 * mem.CacheLineBytes, Ways: 4, LatencyRT: 1})
	// Single set, 4 ways. Touch lines A,B,C,D then re-touch A; inserting E
	// must evict B (the LRU), not A.
	addrs := []mem.PAddr{0, 0x40 * 1, 0x40 * 2, 0x40 * 3}
	now := uint64(0)
	for _, a := range addrs {
		now++
		c.Insert(a, now)
	}
	now++
	if !c.Lookup(addrs[0], now) {
		t.Fatal("A should be present")
	}
	now++
	c.Insert(0x40*4, now) // E evicts LRU = B
	now++
	if !c.Lookup(addrs[0], now) {
		t.Error("A was evicted despite being MRU")
	}
	now++
	if c.Lookup(addrs[1], now) {
		t.Error("B should have been the LRU victim")
	}
}

func TestPrefetchLandsInL2NotL1(t *testing.T) {
	h := mustHierarchy(t, DefaultConfig())
	h.Prefetch(0x9000)
	if !h.Contains(0x9000) {
		t.Fatal("prefetched line absent from hierarchy")
	}
	r := h.Access(0x9000)
	if r.Served != LevelL2 {
		t.Fatalf("prefetched line served from %v, want L2", r.Served)
	}
	if h.MemFetches != 1 {
		t.Fatalf("MemFetches = %d, want 1 (prefetch consumes bandwidth)", h.MemFetches)
	}
}

func TestFlush(t *testing.T) {
	h := mustHierarchy(t, DefaultConfig())
	h.Access(0x3000)
	h.Flush()
	if r := h.Access(0x3000); r.Served != LevelMem {
		t.Fatalf("post-flush access served from %v, want Mem", r.Served)
	}
}

func TestScaledConfigPreservesLatencies(t *testing.T) {
	c := ScaledConfig(32)
	d := DefaultConfig()
	if c.L1D.LatencyRT != d.L1D.LatencyRT || c.MemLatency != d.MemLatency {
		t.Error("scaling must not change latencies")
	}
	if c.LLC.SizeBytes*32 != d.LLC.SizeBytes {
		t.Error("LLC not scaled")
	}
	// Must still construct.
	mustHierarchy(t, c)
}

// Property: immediately re-accessing any address always hits in L1 with the
// L1 latency, regardless of address.
func TestRepeatAccessAlwaysL1(t *testing.T) {
	h := mustHierarchy(t, DefaultConfig())
	f := func(raw uint64) bool {
		pa := mem.PAddr(raw % (1 << 40))
		h.Access(pa)
		r := h.Access(pa)
		return r.Served == LevelL1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hit+miss counters equal total accesses at the L1.
func TestCounterConservation(t *testing.T) {
	h := mustHierarchy(t, DefaultConfig())
	for i := 0; i < 1000; i++ {
		h.Access(mem.PAddr(i * 13 * mem.CacheLineBytes))
	}
	if h.L1D.Hits+h.L1D.Misses != h.Accesses {
		t.Fatalf("L1 hits(%d)+misses(%d) != accesses(%d)", h.L1D.Hits, h.L1D.Misses, h.Accesses)
	}
}
