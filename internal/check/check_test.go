package check_test

import (
	"fmt"
	"testing"

	"dmt/internal/fault"
	"dmt/internal/sim"
	"dmt/internal/workload"
)

// The differential-correctness matrix of the fault harness: every walker
// design in every environment it supports, driven through every fault
// schedule with the oracle re-translating each reference through the live
// page tables. A single PA/size mismatch, a fallback firing out of step
// with the fast path, or a broken TEA structural invariant fails the run
// (sim.Run returns the checker's error).

const (
	matrixOps = 6000
	matrixWS  = 24 << 20
)

func matrixConfig(env sim.Environment, d sim.Design, thp bool, plan fault.Plan) sim.Config {
	wl, err := workload.ByName("GUPS")
	if err != nil {
		panic(err)
	}
	return sim.Config{
		Env:       env,
		Design:    d,
		THP:       thp,
		Workload:  wl,
		WSBytes:   matrixWS,
		Ops:       matrixOps,
		Seed:      7,
		FaultPlan: &plan,
		Verify:    true,
	}
}

func designs(env sim.Environment) []sim.Design {
	switch env {
	case sim.EnvNative:
		return []sim.Design{sim.DesignVanilla, sim.DesignDMT, sim.DesignECPT, sim.DesignFPT, sim.DesignASAP,
			sim.DesignVictima, sim.DesignUtopia}
	case sim.EnvVirt:
		return []sim.Design{sim.DesignVanilla, sim.DesignShadow, sim.DesignDMT, sim.DesignPvDMT,
			sim.DesignECPT, sim.DesignFPT, sim.DesignAgile, sim.DesignASAP,
			sim.DesignVictima, sim.DesignUtopia}
	case sim.EnvNested:
		return []sim.Design{sim.DesignVanilla, sim.DesignPvDMT, sim.DesignVictima, sim.DesignUtopia}
	}
	return nil
}

// TestFaultMatrix runs every (environment, design, schedule) cell with THP
// enabled (so the huge-flip schedule bites) and asserts zero mismatches.
func TestFaultMatrix(t *testing.T) {
	for _, env := range []sim.Environment{sim.EnvNative, sim.EnvVirt, sim.EnvNested} {
		for _, d := range designs(env) {
			for _, plan := range fault.Suite(matrixOps) {
				t.Run(fmt.Sprintf("%v/%s/%s", env, d, plan.Name), func(t *testing.T) {
					res, err := sim.Run(matrixConfig(env, d, true, plan))
					if err != nil {
						t.Fatal(err)
					}
					if res.Mismatches != 0 {
						t.Fatalf("%d mismatches in %d checks", res.Mismatches, res.Checked)
					}
					if res.Checked == 0 {
						t.Fatal("verification ran zero checks")
					}
					if res.FaultsApplied+res.FaultsSkipped == 0 {
						t.Fatal("no fault events executed")
					}
				})
			}
		}
	}
}

// TestFaultMatrix4K repeats the DMT designs without THP: the register file
// then maintains only the 4K TEA, a different fan-out and fallback shape.
func TestFaultMatrix4K(t *testing.T) {
	cells := []struct {
		env sim.Environment
		d   sim.Design
	}{
		{sim.EnvNative, sim.DesignDMT},
		{sim.EnvVirt, sim.DesignDMT},
		{sim.EnvVirt, sim.DesignPvDMT},
		{sim.EnvNested, sim.DesignPvDMT},
	}
	for _, c := range cells {
		for _, plan := range fault.Suite(matrixOps) {
			t.Run(fmt.Sprintf("%v/%s/%s", c.env, c.d, plan.Name), func(t *testing.T) {
				res, err := sim.Run(matrixConfig(c.env, c.d, false, plan))
				if err != nil {
					t.Fatal(err)
				}
				if res.Mismatches != 0 {
					t.Fatalf("%d mismatches in %d checks", res.Mismatches, res.Checked)
				}
			})
		}
	}
}

// TestVerifyWithoutFaults asserts the oracle is quiet on an unperturbed
// run — a baseline for the harness itself.
func TestVerifyWithoutFaults(t *testing.T) {
	for _, d := range []sim.Design{sim.DesignVanilla, sim.DesignDMT} {
		cfg := matrixConfig(sim.EnvNative, d, true, fault.Plan{})
		cfg.FaultPlan = nil
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mismatches != 0 || res.Checked == 0 {
			t.Fatalf("%s: mismatches=%d checked=%d", d, res.Mismatches, res.Checked)
		}
	}
}

// TestFaultsActuallyDegrade asserts the harness is not vacuous: the
// register-pressure schedule must push the DMT design into fallback. Run
// at 4K so the working set outsizes the TLB and walks actually happen.
func TestFaultsActuallyDegrade(t *testing.T) {
	plan := fault.RegisterSpill(matrixOps)
	res, err := sim.Run(matrixConfig(sim.EnvNative, sim.DesignDMT, false, plan))
	if err != nil {
		t.Fatal(err)
	}
	base := matrixConfig(sim.EnvNative, sim.DesignDMT, false, plan)
	base.FaultPlan = nil
	ref, err := sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallbacks <= ref.Fallbacks {
		t.Fatalf("register pressure did not increase fallbacks: %d <= %d", res.Fallbacks, ref.Fallbacks)
	}
	if res.Coverage >= ref.Coverage {
		t.Fatalf("register pressure did not reduce coverage: %.3f >= %.3f", res.Coverage, ref.Coverage)
	}
}

// TestDeterministic asserts a faulted, verified run is bit-for-bit
// repeatable for a fixed seed (the property the degradation table relies
// on).
func TestDeterministic(t *testing.T) {
	run := func() *sim.Result {
		plan := fault.Chaos(matrixOps)
		res, err := sim.Run(matrixConfig(sim.EnvVirt, sim.DesignDMT, true, plan))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.WalkCycles != b.WalkCycles || a.Fallbacks != b.Fallbacks ||
		a.FaultsApplied != b.FaultsApplied || a.DemandFaults != b.DemandFaults {
		t.Fatalf("nondeterministic run: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			a.WalkCycles, a.Fallbacks, a.FaultsApplied, a.DemandFaults,
			b.WalkCycles, b.Fallbacks, b.FaultsApplied, b.DemandFaults)
	}
}
