package check

import (
	"fmt"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
	"dmt/internal/tea"
)

// Lifecycle conservation oracle: the strict frame-accounting checks the
// long-horizon aging scenario runs at every epoch. Where TEAInvariants
// verifies the *translation* structures (registers, region geometry, node
// placement), these functions verify the *allocation* ledger — every frame
// allocated is freed exactly once, and at any instant the free count plus
// every live claim tiles physical memory exactly. A violation here is a
// leak or double free that per-operation tests rarely catch: it only
// surfaces after thousands of boot→churn→destroy cycles.

// Conservation asserts the allocator's global ledger: the buddy metadata
// audits clean, and FreeFrames plus the caller's count of every frame it
// believes live equals TotalFrames. `claimed` is typically the sum of
// DataFrames, NodeFrames, and the TEA manager's FramesLive for every
// address space carved from the allocator.
func Conservation(pa *phys.Allocator, claimed int) []string {
	var bad []string
	if err := pa.Audit(); err != nil {
		bad = append(bad, fmt.Sprintf("allocator audit: %v", err))
	}
	free, total := pa.FreeFrames(), pa.TotalFrames()
	if free+claimed != total {
		bad = append(bad, fmt.Sprintf("frame ledger broken: %d free + %d claimed != %d total (delta %+d)",
			free, claimed, total, total-free-claimed))
	}
	return bad
}

// DataFrames counts the 4 KiB frames backing a space's populated pages —
// the frames MUnmap would return to the allocator. Resident pages (mapped
// gTEA windows and other externally-owned frames) are excluded: teardown
// unmaps them but their frames belong to whoever installed them.
func DataFrames(as *kernel.AddressSpace) int {
	frames := 0
	for _, v := range as.VMAs() {
		for _, p := range v.PresentPages() {
			if v.ResidentAt(p.VA) {
				continue
			}
			frames += int(p.Size.Bytes() >> mem.PageShift4K)
		}
	}
	return frames
}

// NodeFrames counts the page-table node frames the space claimed from its
// allocator. Nodes placed inside TEA storage are excluded when ownedByTEA
// is non-nil: those frames are part of a TEA region and already accounted
// by the owning manager's FramesLive (counting them here would double-claim
// them). Pass mgr.OwnsNode for a hook-managed space, nil otherwise.
func NodeFrames(as *kernel.AddressSpace, ownedByTEA func(mem.PAddr) bool) int {
	return as.Pool.CountNodes(func(n *pagetable.Node) bool {
		return ownedByTEA == nil || !ownedByTEA(n.Base)
	})
}

// ASInvariants checks an address space's structural health under churn:
// the VMA list is sorted and disjoint, and every recorded present page is
// backed by a live translation of the recorded size. Bookkeeping drift
// between the VMA state bytes and the page table is what turns a later
// teardown into a double free (freeing a 4 KiB frame at order 9) or a leak
// (skipping a page the table still maps).
func ASInvariants(as *kernel.AddressSpace) []string {
	var bad []string
	vmas := as.VMAs()
	for i := 1; i < len(vmas); i++ {
		if vmas[i-1].End > vmas[i].Start {
			bad = append(bad, fmt.Sprintf("VMA overlap: %v collides with %v", vmas[i-1], vmas[i]))
		}
	}
	for _, v := range vmas {
		for _, p := range v.PresentPages() {
			_, size, ok := as.PT.Lookup(p.VA)
			switch {
			case !ok:
				bad = append(bad, fmt.Sprintf("%s: page %#x recorded present but not mapped", v.Name, uint64(p.VA)))
			case size != p.Size:
				bad = append(bad, fmt.Sprintf("%s: page %#x recorded %v but mapped %v", v.Name, uint64(p.VA), p.Size, size))
			}
		}
	}
	return bad
}

// TEAAccounting verifies the manager's FramesLive ledger against the
// regions actually reachable from its mappings: every allocated TEA frame
// reachable exactly once (shared regions dedupe by backing identity), plus
// any in-flight migration targets. FramesLive drifting above the reachable
// sum is the signature of a leaked region — storage no mapping can ever
// release again.
func TEAAccounting(mgr *tea.Manager) []string {
	seen := map[mem.PAddr]struct{}{}
	reachable := 0
	count := func(r tea.Region) {
		if r.Frames == 0 {
			return
		}
		if _, dup := seen[r.NodeBase]; dup {
			return
		}
		seen[r.NodeBase] = struct{}{}
		reachable += r.Frames
	}
	for _, mp := range mgr.Mappings() {
		for _, ri := range mp.SizeRegions() {
			count(ri.Region)
			if ri.Migrating {
				count(ri.MigrateTo)
			}
		}
	}
	// Quarantined storage (failed evacuations) stays claimed on purpose.
	reachable += mgr.OrphanedFrames()
	var bad []string
	if int64(reachable) != mgr.Stats.FramesLive {
		bad = append(bad, fmt.Sprintf("TEA ledger broken: %d frames reachable from mappings, FramesLive says %d (delta %+d)",
			reachable, mgr.Stats.FramesLive, mgr.Stats.FramesLive-int64(reachable)))
	}
	return bad
}
