package check

import (
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/phys"
	"dmt/internal/tea"
)

func TestConservationDetectsLeak(t *testing.T) {
	pa := phys.New(0, 256)
	if _, err := pa.AllocFrame(phys.KindUnmovable); err != nil {
		t.Fatal(err)
	}
	if bad := Conservation(pa, 1); len(bad) != 0 {
		t.Fatalf("balanced ledger reported broken: %v", bad)
	}
	if bad := Conservation(pa, 0); len(bad) == 0 {
		t.Fatal("unclaimed live frame not reported")
	}
}

// TestLifecycleOracleOnLiveSpace runs the full claim equation on a
// hook-managed address space: data frames + buddy-placed node frames +
// TEA FramesLive must tile the allocator exactly, before and after churn.
func TestLifecycleOracleOnLiveSpace(t *testing.T) {
	pa := phys.New(0, 1<<14)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{ASID: 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(false))
	as.SetHooks(mgr)

	assertBalanced := func(stage string) {
		t.Helper()
		claimed := DataFrames(as) + NodeFrames(as, mgr.OwnsNode) + int(mgr.Stats.FramesLive)
		for _, msg := range Conservation(pa, claimed) {
			t.Errorf("%s: %s", stage, msg)
		}
		for _, msg := range ASInvariants(as) {
			t.Errorf("%s: %s", stage, msg)
		}
		for _, msg := range TEAAccounting(mgr) {
			t.Errorf("%s: %s", stage, msg)
		}
	}

	heap, err := as.MMap(1<<30, 8<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Populate(heap); err != nil {
		t.Fatal(err)
	}
	assertBalanced("after populate")

	tmp, err := as.MMap(2<<30, 4<<20, kernel.VMAAnon, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Populate(tmp); err != nil {
		t.Fatal(err)
	}
	if err := as.MUnmap(tmp); err != nil {
		t.Fatal(err)
	}
	assertBalanced("after churn")

	if err := as.MUnmap(heap); err != nil {
		t.Fatal(err)
	}
	assertBalanced("after teardown")
}

func TestTEAAccountingDetectsLeak(t *testing.T) {
	pa := phys.New(0, 1<<14)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{ASID: 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(false))
	as.SetHooks(mgr)
	if _, err := as.MMap(1<<30, 8<<20, kernel.VMAHeap, "heap"); err != nil {
		t.Fatal(err)
	}
	if bad := TEAAccounting(mgr); len(bad) != 0 {
		t.Fatalf("healthy manager reported broken: %v", bad)
	}
	mgr.Stats.FramesLive += 3 // simulate a leaked region's stranded claim
	if bad := TEAAccounting(mgr); len(bad) == 0 {
		t.Fatal("stranded FramesLive not reported")
	}
	mgr.Stats.FramesLive -= 3
}
