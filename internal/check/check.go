// Package check is a differential-correctness oracle for translation
// walkers. After every walk it re-translates the address through a
// reference function (the live page tables, composed across virtualization
// levels), asserting that the walker's physical address and page size
// agree, that fallback fires exactly when the DMT fast path cannot serve
// (§4.6.1), and — for TEA-backed designs — that the register file and TEA
// regions satisfy the structural invariants of §4.2–§4.4. It is the
// correctness half of the fault-injection harness: internal/fault degrades
// the environment, this package proves walkers stay right while degraded.
package check

import (
	"fmt"

	"dmt/internal/core"
	"dmt/internal/mem"
)

// Ref is a reference translation: ground truth for one environment,
// computed from the live page tables (never from walker state).
type Ref func(va mem.VAddr) (pa mem.PAddr, size mem.PageSize, ok bool)

// Config selects which properties a Checker asserts.
type Config struct {
	// Ref is the ground-truth translation. Required.
	Ref Ref
	// FastPath, when set, is a side-effect-free probe of the walker's fast
	// path (e.g. DMTWalker.Probe); the checker then asserts outcome
	// Fallback == !FastPath(va).
	FastPath func(va mem.VAddr) bool
	// SizeExact asserts the outcome page size equals the reference size.
	// Leave false for designs that legitimately splinter sizes (a shadow
	// page table maps a guest 2M page with 4K host leaves); the physical
	// address is still asserted exactly.
	SizeExact bool
	// Invariants, when set, is run by CheckInvariants (after fault events
	// and at end of run); it returns one description per violation.
	Invariants func() []string
	// MaxRecord caps recorded mismatches (counting continues); default 16.
	MaxRecord int
}

// Mismatch is one disagreement between a walker and the oracle.
type Mismatch struct {
	VA     mem.VAddr
	Kind   string // "ok" | "pa" | "size" | "fallback" | "invariant"
	Detail string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("va=%#x %s: %s", uint64(m.VA), m.Kind, m.Detail)
}

// Checker verifies walker outcomes against the reference translation.
type Checker struct {
	cfg Config

	Checked    uint64
	Mismatched uint64
	Recorded   []Mismatch
}

// New builds a Checker; cfg.Ref must be non-nil.
func New(cfg Config) *Checker {
	if cfg.Ref == nil {
		panic("check: Config.Ref is required")
	}
	if cfg.MaxRecord <= 0 {
		cfg.MaxRecord = 16
	}
	return &Checker{cfg: cfg}
}

func (c *Checker) record(va mem.VAddr, kind, format string, argv ...any) {
	c.Mismatched++
	if len(c.Recorded) < c.cfg.MaxRecord {
		c.Recorded = append(c.Recorded, Mismatch{VA: va, Kind: kind, Detail: fmt.Sprintf(format, argv...)})
	}
}

// CheckWalk compares one walk outcome against the reference translation.
func (c *Checker) CheckWalk(va mem.VAddr, out core.WalkOutcome) {
	c.Checked++
	pa, size, ok := c.cfg.Ref(va)
	if out.OK != ok {
		c.record(va, "ok", "walker ok=%v, reference ok=%v", out.OK, ok)
		return
	}
	if !ok {
		return
	}
	if out.PA != pa {
		c.record(va, "pa", "walker PA=%#x, reference PA=%#x", uint64(out.PA), uint64(pa))
	}
	if c.cfg.SizeExact && out.Size != size {
		c.record(va, "size", "walker size=%v, reference size=%v", out.Size, size)
	}
	if c.cfg.FastPath != nil {
		if fast := c.cfg.FastPath(va); out.Fallback == fast {
			c.record(va, "fallback", "fallback=%v but fast path serveable=%v", out.Fallback, fast)
		}
	}
}

// CheckTranslate compares a completed MMU translation (possibly served by
// the TLB, bypassing the walker) against the reference — the check that
// catches stale TLB entries surviving an invalidation.
func (c *Checker) CheckTranslate(va mem.VAddr, pa mem.PAddr) {
	c.Checked++
	rpa, _, ok := c.cfg.Ref(va)
	if !ok {
		c.record(va, "ok", "MMU translated to %#x but reference says unmapped", uint64(pa))
		return
	}
	if pa != rpa {
		c.record(va, "pa", "MMU PA=%#x, reference PA=%#x", uint64(pa), uint64(rpa))
	}
}

// CheckInvariants runs the configured structural-invariant probe.
func (c *Checker) CheckInvariants() {
	if c.cfg.Invariants == nil {
		return
	}
	for _, v := range c.cfg.Invariants() {
		c.record(0, "invariant", "%s", v)
	}
}

// Err summarizes all mismatches as one error, or nil when every check
// passed.
func (c *Checker) Err() error {
	if c.Mismatched == 0 {
		return nil
	}
	s := fmt.Sprintf("check: %d/%d translations mismatched", c.Mismatched, c.Checked)
	for _, m := range c.Recorded {
		s += "\n  " + m.String()
	}
	if int(c.Mismatched) > len(c.Recorded) {
		s += fmt.Sprintf("\n  ... and %d more", int(c.Mismatched)-len(c.Recorded))
	}
	return fmt.Errorf("%s", s)
}
