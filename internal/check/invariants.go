package check

import (
	"fmt"
	"sort"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/tea"
)

// TEAInvariants builds an Invariants probe over a TEA manager and the
// address space it manages. It asserts the structural properties the
// register-file and TEA design rely on:
//
//  1. Every present register mirrors exactly one mapping: its bounds lie
//     inside the mapping, each covered size points at that mapping's
//     size-region (fetch base and cover VA agree), and no covered size is
//     mid-migration (the §4.6.1 P-bit discipline).
//  2. PTE-address arithmetic stays inside the owning TEA: for boundary VAs
//     of every covered register/size, PTEAddr lands within the region's
//     fetch window.
//  3. TEA node regions of distinct size-regions never overlap unless they
//     deliberately share one backing region (refcounted sharing, §4.3).
//  4. PlaceNode and OwnsNode agree: a leaf node placed for a populated
//     page lies in a TEA the manager claims to own, in the slot the
//     mapping's arithmetic dictates.
//
// Pass a nil as to skip the PlaceNode probes (e.g. when the address space
// is not hook-managed by mgr).
func TEAInvariants(mgr *tea.Manager, as *kernel.AddressSpace) func() []string {
	return func() []string {
		var bad []string
		bad = append(bad, registerInvariants(mgr)...)
		bad = append(bad, regionOverlapInvariants(mgr)...)
		if as != nil && !mgr.Config().OnDemand {
			bad = append(bad, placementInvariants(mgr, as)...)
		}
		return bad
	}
}

func findMapping(mgr *tea.Manager, base, limit mem.VAddr) *tea.Mapping {
	for _, mp := range mgr.Mappings() {
		if mp.Start <= base && limit <= mp.End {
			return mp
		}
	}
	return nil
}

func registerInvariants(mgr *tea.Manager) []string {
	var bad []string
	present := 0
	for i, r := range mgr.Registers() {
		if !r.Present {
			continue
		}
		present++
		mp := findMapping(mgr, r.Base, r.Limit)
		if mp == nil {
			bad = append(bad, fmt.Sprintf("register %d [%#x,%#x) matches no mapping", i, uint64(r.Base), uint64(r.Limit)))
			continue
		}
		if r.Base != mp.Start {
			bad = append(bad, fmt.Sprintf("register %d base %#x != mapping start %#x", i, uint64(r.Base), uint64(mp.Start)))
		}
		regions := map[mem.PageSize]tea.RegionInfo{}
		for _, ri := range mp.SizeRegions() {
			regions[ri.Size] = ri
		}
		anyCovered := false
		for _, s := range []mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G} {
			if !r.Covered[s] {
				continue
			}
			anyCovered = true
			ri, ok := regions[s]
			if !ok {
				bad = append(bad, fmt.Sprintf("register %d covers %v but mapping has no %v region", i, s, s))
				continue
			}
			if ri.Migrating {
				bad = append(bad, fmt.Sprintf("register %d covers %v of a migrating region (P-bit must be clear)", i, s))
			}
			if r.FetchBase[s] != ri.Region.FetchBase || r.CoverVA[s] != ri.CoverVA {
				bad = append(bad, fmt.Sprintf("register %d %v fetch/cover (%#x,%#x) != region (%#x,%#x)",
					i, s, uint64(r.FetchBase[s]), uint64(r.CoverVA[s]), uint64(ri.Region.FetchBase), uint64(ri.CoverVA)))
				continue
			}
			// PTE arithmetic containment at the register's VA boundaries.
			end := r.Limit
			if ri.CoveredEnd < end {
				end = ri.CoveredEnd
			}
			pteAddr := r.PTEAddr(s)
			for _, va := range []mem.VAddr{r.Base, end - 1} {
				if va < r.Base {
					continue
				}
				addr := pteAddr(va)
				lo := ri.Region.FetchBase
				hi := lo + mem.PAddr(uint64(ri.Region.Frames)<<mem.PageShift4K)
				if addr < lo || addr >= hi {
					bad = append(bad, fmt.Sprintf("register %d %v PTEAddr(%#x)=%#x outside TEA [%#x,%#x)",
						i, s, uint64(va), uint64(addr), uint64(lo), uint64(hi)))
				}
			}
		}
		if !anyCovered {
			bad = append(bad, fmt.Sprintf("register %d present but covers no size", i))
		}
	}
	if present > len(mgr.Mappings()) {
		bad = append(bad, fmt.Sprintf("%d registers present for %d mappings", present, len(mgr.Mappings())))
	}
	return bad
}

// regionOverlapInvariants asserts each leaf PTE slot belongs to exactly one
// TEA per size: node-side intervals of distinct size-regions must be
// disjoint unless they are the same deliberately shared backing region.
func regionOverlapInvariants(mgr *tea.Manager) []string {
	type span struct {
		lo, hi mem.PAddr
		shared int
		owner  string
	}
	var spans []span
	add := func(mp *tea.Mapping, ri tea.RegionInfo, r tea.Region, tag string) {
		if r.Frames == 0 {
			return
		}
		spans = append(spans, span{
			lo:     r.NodeBase,
			hi:     r.NodeBase + mem.PAddr(uint64(r.Frames)<<mem.PageShift4K),
			shared: ri.SharedRefs,
			owner:  fmt.Sprintf("mapping [%#x,%#x) %v %s", uint64(mp.Start), uint64(mp.End), ri.Size, tag),
		})
	}
	for _, mp := range mgr.Mappings() {
		for _, ri := range mp.SizeRegions() {
			add(mp, ri, ri.Region, "")
			if ri.Migrating {
				add(mp, ri, ri.MigrateTo, "(migration target)")
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	var bad []string
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if b.lo >= a.hi {
			continue
		}
		if a.lo == b.lo && a.hi == b.hi && a.shared > 1 && b.shared > 1 {
			continue // one refcounted region backing both mappings
		}
		bad = append(bad, fmt.Sprintf("TEA overlap: %s [%#x,%#x) vs %s [%#x,%#x)",
			a.owner, uint64(a.lo), uint64(a.hi), b.owner, uint64(b.lo), uint64(b.hi)))
	}
	return bad
}

// placementInvariants probes PlaceNode/OwnsNode agreement on boundary
// populated pages of each VMA.
func placementInvariants(mgr *tea.Manager, as *kernel.AddressSpace) []string {
	var bad []string
	for _, v := range as.VMAs() {
		pages := v.PresentPages()
		if len(pages) == 0 {
			continue
		}
		for _, p := range []kernel.PresentPage{pages[0], pages[len(pages)/2], pages[len(pages)-1]} {
			level := 1
			if p.Size == mem.Size2M {
				level = 2
			} else if p.Size != mem.Size4K {
				continue
			}
			pa, ok := mgr.PlaceNode(level, p.VA)
			if !ok {
				continue // buddy-placed (no TEA for this size) — legal
			}
			if !mgr.OwnsNode(pa) {
				bad = append(bad, fmt.Sprintf("PlaceNode(%d, %#x)=%#x not owned by any TEA", level, uint64(p.VA), uint64(pa)))
			}
		}
	}
	return bad
}
