package tlb

import (
	"testing"
	"testing/quick"

	"dmt/internal/mem"
)

func mustTLB(t testing.TB, cfg Config) *TLB {
	t.Helper()
	tl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestLookupMissThenHit(t *testing.T) {
	tl := mustTLB(t, DefaultConfig())
	va := mem.VAddr(0x7f00_0000_1234)
	if _, _, ok := tl.Lookup(va, 1); ok {
		t.Fatal("cold TLB must miss")
	}
	tl.Insert(va, 0xabc000, mem.Size4K, 1)
	pa, size, ok := tl.Lookup(va, 1)
	if !ok || size != mem.Size4K {
		t.Fatalf("lookup after insert: ok=%v size=%v", ok, size)
	}
	if pa != 0xabc000+mem.PAddr(uint64(va)&0xfff) {
		t.Fatalf("pa = %#x, offset not preserved", uint64(pa))
	}
}

func TestASIDIsolation(t *testing.T) {
	tl := mustTLB(t, DefaultConfig())
	va := mem.VAddr(0x4000_0000)
	tl.Insert(va, 0x111000, mem.Size4K, 1)
	if _, _, ok := tl.Lookup(va, 2); ok {
		t.Fatal("entry leaked across ASIDs")
	}
}

func TestHugePageHit(t *testing.T) {
	tl := mustTLB(t, DefaultConfig())
	base := mem.VAddr(0x4020_0000) // 2 MiB aligned
	tl.Insert(base, 0x8000_0000, mem.Size2M, 3)
	// Any address in the same 2 MiB page must hit, with the offset carried.
	va := base + 0x1234f
	pa, size, ok := tl.Lookup(va, 3)
	if !ok || size != mem.Size2M {
		t.Fatalf("2M lookup: ok=%v size=%v", ok, size)
	}
	if pa != 0x8000_0000+0x1234f {
		t.Fatalf("pa = %#x, want %#x", uint64(pa), uint64(0x8000_0000+0x1234f))
	}
}

func TestInvalidate(t *testing.T) {
	tl := mustTLB(t, DefaultConfig())
	va := mem.VAddr(0x1000)
	tl.Insert(va, 0x2000, mem.Size4K, 0)
	tl.Invalidate(va, 0)
	if _, _, ok := tl.Lookup(va, 0); ok {
		t.Fatal("entry survived Invalidate")
	}
}

func TestFlush(t *testing.T) {
	tl := mustTLB(t, DefaultConfig())
	for i := 0; i < 16; i++ {
		tl.Insert(mem.VAddr(i)<<12, mem.PAddr(i)<<12, mem.Size4K, 0)
	}
	tl.Flush()
	for i := 0; i < 16; i++ {
		if _, _, ok := tl.Lookup(mem.VAddr(i)<<12, 0); ok {
			t.Fatal("entry survived Flush")
		}
	}
}

func TestSTLBPromotion(t *testing.T) {
	tl := mustTLB(t, Config{L1Entries: 4, L1Ways: 4, L2Entries: 64, L2Ways: 4})
	// Insert 16 entries; the tiny L1 retains at most 4, the rest only in L2.
	for i := 0; i < 16; i++ {
		tl.Insert(mem.VAddr(i)<<12, mem.PAddr(0x100+i)<<12, mem.Size4K, 0)
	}
	hitsBefore := tl.L2Hits
	found := 0
	for i := 0; i < 16; i++ {
		if _, _, ok := tl.Lookup(mem.VAddr(i)<<12, 0); ok {
			found++
		}
	}
	if found != 16 {
		t.Fatalf("only %d/16 entries retained in two-level TLB", found)
	}
	if tl.L2Hits == hitsBefore {
		t.Fatal("expected some lookups to be served by the STLB")
	}
}

func TestCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	tl := mustTLB(t, cfg)
	n := cfg.L2Entries * 4
	for i := 0; i < n; i++ {
		tl.Insert(mem.VAddr(i)<<12, mem.PAddr(i)<<12, mem.Size4K, 0)
	}
	misses := 0
	for i := 0; i < n; i++ {
		if _, _, ok := tl.Lookup(mem.VAddr(i)<<12, 0); !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("4x-capacity working set must evict entries")
	}
}

// Property: after inserting any translation, an immediate lookup returns
// exactly the inserted frame with the page offset preserved.
func TestInsertLookupProperty(t *testing.T) {
	tl := mustTLB(t, DefaultConfig())
	f := func(rawVA, rawPA uint64, sizeSel uint8, asid uint16) bool {
		size := mem.PageSize(sizeSel % 3)
		va := mem.VAddr(rawVA & ((1 << 48) - 1))
		pa := mem.AlignDownP(mem.PAddr(rawPA&((1<<46)-1)), size.Bytes())
		tl.Insert(va, pa, size, asid)
		got, gotSize, ok := tl.Lookup(va, asid)
		if !ok {
			return false
		}
		// A lookup may be served by a different-size entry inserted
		// earlier for an overlapping page; accept only exact matches
		// when the sizes agree.
		if gotSize != size {
			return true
		}
		return got == pa+mem.PAddr(mem.PageOffset(va, size))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPWCDeepestSkipWins(t *testing.T) {
	p := NewPWC()
	va := mem.VAddr(0x7f3a_b5c6_d7e8)
	p.Insert(va, 4, 0x1000, 0) // after L4: L3 node at 0x1000
	p.Insert(va, 3, 0x2000, 0) // after L3: L2 node at 0x2000
	p.Insert(va, 2, 0x3000, 0) // after L2: L1 node at 0x3000
	node, next, ok := p.Lookup(va, 0)
	if !ok || next != 1 || node != 0x3000 {
		t.Fatalf("Lookup = (%#x, %d, %v), want deepest skip to L1 node", uint64(node), next, ok)
	}
}

func TestPWCPrefixSharing(t *testing.T) {
	p := NewPWC()
	va1 := mem.VAddr(0x7f3a_b5c6_d7e8)
	va2 := va1 + mem.PageBytes4K // same L2-level prefix, different L1 index
	p.Insert(va1, 2, 0x3000, 0)
	node, next, ok := p.Lookup(va2, 0)
	if !ok || next != 1 || node != 0x3000 {
		t.Fatal("PWC must hit for addresses sharing the VA[47:21] prefix")
	}
	va3 := va1 + mem.PageBytes2M // different L2-level prefix
	if _, _, ok := p.Lookup(va3, 0); ok {
		t.Fatal("PWC must miss across 2 MiB prefix boundaries when only L2 cached")
	}
}

func TestNestedCache(t *testing.T) {
	n := NewNestedCache()
	if _, ok := n.Lookup(0x5000); ok {
		t.Fatal("cold nested cache must miss")
	}
	n.Insert(0x5000, 0x9000)
	hpa, ok := n.Lookup(0x5123)
	if !ok || hpa != 0x9123 {
		t.Fatalf("nested lookup = (%#x, %v), want 0x9123 within same page", uint64(hpa), ok)
	}
	n.Flush()
	if _, ok := n.Lookup(0x5000); ok {
		t.Fatal("entry survived Flush")
	}
}
