// Package tlb implements the translation-lookaside structures of the
// simulated architecture (Table 3): a two-level data TLB (64-entry 4-way L1,
// 1536-entry 12-way L2 STLB), the 3-level page-walk caches (2/4/32 entries,
// 1-cycle access), and the nested page-walk cache used by two-dimensional
// walks in virtualized environments.
package tlb

import (
	"fmt"

	"dmt/internal/mem"
)

// assoc is a small set-associative map from uint64 keys to uint64 values
// with LRU replacement; it backs TLBs, PWCs, and nested walk caches. Keys,
// values, and stamps live interleaved in one flat set-major array — (key,
// val, stamp) triplets — so the walk hot path, which probes these
// structures many times per translation, touches one contiguous span per
// set: no pointer chase, no hardware divide (power-of-two set counts take
// a mask), and a hit reads its value and writes its stamp on the cache
// line it just scanned.
type assoc struct {
	ents  []uint64 // (key+1, val, stamp) triplets; key 0 = invalid
	ways  int
	wspan int // ways*3: elements per set in ents
	nsets uint64
	mask  uint64 // nsets-1 when nsets is a power of two, else 0 (modulo path)
	now   uint64
	hits  uint64
	miss  uint64

	// Miss stash: a failed lookup has already scanned the very set a
	// follow-up insert of the same key will scan, so it records the victim
	// way it would pick. insert consumes the stash for an O(1) fill when —
	// and only when — the stashed probe was the immediately preceding
	// operation on this assoc: every hit, insert, invalidate, and flush
	// clears the stash, so a matching stash proves the set (tags and
	// stamps, hence the victim choice) is exactly as the probe saw it.
	// This is the TLB/PWC walk pattern — probe, miss, walk, install —
	// with the install's set scan folded into the probe it always follows.
	missKey    uint64 // key+1 of the stashed miss; 0 = no stash
	missBase   int
	missVictim int
}

func newAssoc(entries, ways int) (*assoc, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("tlb: bad geometry: %d entries / %d ways", entries, ways)
	}
	n := entries / ways
	a := &assoc{
		ents:  make([]uint64, entries*3),
		ways:  ways,
		wspan: ways * 3,
		nsets: uint64(n),
	}
	if n&(n-1) == 0 {
		a.mask = uint64(n) - 1
	}
	return a, nil
}

// normAssoc builds an assoc after clamping the geometry to the nearest valid
// shape (at least one way, entries a multiple of ways); the resulting
// construction cannot fail.
func normAssoc(entries, ways int) *assoc {
	if ways < 1 {
		ways = 1
	}
	if entries < ways {
		ways = entries
	}
	if ways < 1 {
		entries, ways = 1, 1
	}
	entries -= entries % ways
	a, _ := newAssoc(entries, ways)
	return a
}

// set returns the first element index of key's set in ents. The set index
// computed by the mask fast path equals the modulo it replaces exactly, so
// hit/miss patterns — and therefore every simulated metric — are unchanged.
func (a *assoc) set(key uint64) int {
	// Mix the key so consecutive VPNs spread across sets.
	h := key * 0x9e3779b97f4a7c15
	var si uint64
	if a.mask != 0 {
		si = (h >> 32) & a.mask
	} else {
		si = (h >> 32) % a.nsets
	}
	return int(si) * a.wspan
}

func (a *assoc) lookup(key uint64) (uint64, bool) {
	a.now++
	base := a.set(key)
	set := a.ents[base : base+a.wspan]
	victim, oldest, empty := 0, ^uint64(0), -1
	// w < len(set)-2 (not w < len) so the compiler can prove the scan's
	// element loads in bounds; wspan is a multiple of 3, so the iteration
	// space is identical.
	for w := 0; w < len(set)-2; w += 3 {
		k := set[w]
		if k == key+1 {
			set[w+2] = a.now
			a.hits++
			a.missKey = 0
			return set[w+1], true
		}
		if k == 0 {
			if empty < 0 {
				empty = w
			}
			continue
		}
		if s := set[w+2]; s < oldest {
			victim, oldest = w, s
		}
	}
	a.miss++
	// Stash the way insert would choose: the first empty way if any
	// (invalidate can leave holes anywhere in a set), else the LRU way.
	if empty >= 0 {
		victim = empty
	}
	a.missKey = key + 1
	a.missBase = base
	a.missVictim = victim
	return 0, false
}

func (a *assoc) insert(key, val uint64) {
	a.now++
	if a.missKey == key+1 {
		// The set is untouched since the stashed miss probe of this key:
		// the key is known absent and the stashed way is exactly the
		// victim the scan below would pick.
		a.missKey = 0
		w := a.missBase + a.missVictim
		a.ents[w] = key + 1
		a.ents[w+1] = val
		a.ents[w+2] = a.now
		return
	}
	a.missKey = 0
	base := a.set(key)
	set := a.ents[base : base+a.wspan]
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < len(set)-2; w += 3 {
		if set[w] == key+1 {
			set[w+1] = val
			set[w+2] = a.now
			return
		}
		if set[w] == 0 {
			victim, oldest = w, 0
			break
		}
		if s := set[w+2]; s < oldest {
			victim, oldest = w, s
		}
	}
	set[victim] = key + 1
	set[victim+1] = val
	set[victim+2] = a.now
}

func (a *assoc) invalidate(key uint64) {
	a.missKey = 0
	base := a.set(key)
	set := a.ents[base : base+a.wspan]
	for w := 0; w < len(set); w += 3 {
		if set[w] == key+1 {
			set[w] = 0
		}
	}
}

func (a *assoc) flush() {
	a.missKey = 0
	for i := 0; i < len(a.ents); i += 3 {
		a.ents[i] = 0
	}
}

// Config describes the two-level TLB; DefaultConfig matches Table 3.
type Config struct {
	L1Entries, L1Ways int
	L2Entries, L2Ways int
}

// DefaultConfig is the Table 3 data-side configuration: 64-entry 4-way L1D
// TLB and 1536-entry 12-way L2 STLB.
func DefaultConfig() Config {
	return Config{L1Entries: 64, L1Ways: 4, L2Entries: 1536, L2Ways: 12}
}

// TLB is a two-level, multi-page-size translation lookaside buffer keyed by
// (ASID, page size, VPN).
type TLB struct {
	l1, l2 *assoc

	// seen[size] records whether any entry of that page-size class has been
	// inserted since the last full flush. Probing a size class with no
	// resident entries can never hit, and a missing probe leaves nothing
	// observable behind (only the assoc's internal clock, whose absolute
	// value no replacement decision reads — victim choice depends on stamp
	// order, which skipping cannot change), so the lookup loops try only
	// the classes that can possibly hold a translation. With THP off that
	// halves-to-thirds the probe work of every single lookup.
	seen [3]bool

	L1Hits, L2Hits, Misses uint64
}

// New builds a TLB from cfg. Invalid geometry (non-positive sizes or an
// entry count not divisible by the way count) is reported as an error.
func New(cfg Config) (*TLB, error) {
	l1, err := newAssoc(cfg.L1Entries, cfg.L1Ways)
	if err != nil {
		return nil, fmt.Errorf("L1 TLB: %w", err)
	}
	l2, err := newAssoc(cfg.L2Entries, cfg.L2Ways)
	if err != nil {
		return nil, fmt.Errorf("L2 TLB: %w", err)
	}
	return &TLB{l1: l1, l2: l2}, nil
}

func key(va mem.VAddr, size mem.PageSize, asid uint16) uint64 {
	return mem.PageNumber(va, size)<<12 | uint64(asid)<<2 | uint64(size)
}

// pageSizes is the probe order shared by every lookup loop.
var pageSizes = [...]mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G}

// Lookup probes both levels for a translation of va under asid, trying all
// three page sizes. On an L2 hit the entry is promoted into the L1.
func (t *TLB) Lookup(va mem.VAddr, asid uint16) (mem.PAddr, mem.PageSize, bool) {
	for _, size := range pageSizes {
		if !t.seen[size] {
			continue
		}
		k := key(va, size, asid)
		if v, ok := t.l1.lookup(k); ok {
			t.L1Hits++
			return frameToPA(v, va, size), size, true
		}
	}
	for _, size := range pageSizes {
		if !t.seen[size] {
			continue
		}
		k := key(va, size, asid)
		if v, ok := t.l2.lookup(k); ok {
			t.L2Hits++
			t.l1.insert(k, v)
			return frameToPA(v, va, size), size, true
		}
	}
	t.Misses++
	return 0, 0, false
}

func frameToPA(frame uint64, va mem.VAddr, size mem.PageSize) mem.PAddr {
	return mem.PAddr(frame<<size.Shift() | mem.PageOffset(va, size))
}

// LookupBatch probes translations for vas in op order, writing each hit's
// physical address to the corresponding pas slot and stopping at the first
// miss. It is bit-identical to calling Lookup per element — same probe
// order, same LRU and promotion updates, same counters — but runs as one
// tight loop inside the package, so the level pointers and set metadata
// stay hot across consecutive ops instead of being re-established per call.
//
// It returns the number of leading hits. missProbed reports whether a miss
// terminated the run within len(vas): that miss has been fully probed and
// charged (both levels, Misses counter) exactly once, so the caller must
// walk vas[hits] without probing again. missProbed is false iff every
// element hit.
func (t *TLB) LookupBatch(vas []mem.VAddr, asid uint16, pas []mem.PAddr) (hits int, missProbed bool) {
	l1, l2 := t.l1, t.l2
probe:
	for i, va := range vas {
		for _, size := range pageSizes {
			if !t.seen[size] {
				continue
			}
			k := key(va, size, asid)
			if v, ok := l1.lookup(k); ok {
				t.L1Hits++
				pas[i] = frameToPA(v, va, size)
				continue probe
			}
		}
		for _, size := range pageSizes {
			if !t.seen[size] {
				continue
			}
			k := key(va, size, asid)
			if v, ok := l2.lookup(k); ok {
				t.L2Hits++
				l1.insert(k, v)
				pas[i] = frameToPA(v, va, size)
				continue probe
			}
		}
		t.Misses++
		return i, true
	}
	return len(vas), false
}

// Insert installs the translation va→pa (page-aligned internally) for the
// given page size into both levels.
func (t *TLB) Insert(va mem.VAddr, pa mem.PAddr, size mem.PageSize, asid uint16) {
	t.seen[size] = true
	k := key(va, size, asid)
	frame := uint64(pa) >> size.Shift()
	t.l1.insert(k, frame)
	t.l2.insert(k, frame)
}

// Invalidate drops any entry translating va (all sizes), the analogue of
// INVLPG.
func (t *TLB) Invalidate(va mem.VAddr, asid uint16) {
	for _, size := range pageSizes {
		if !t.seen[size] {
			continue
		}
		t.l1.invalidate(key(va, size, asid))
		t.l2.invalidate(key(va, size, asid))
	}
}

// Flush empties both levels (CR3 write without PCID).
func (t *TLB) Flush() {
	t.seen = [3]bool{}
	t.l1.flush()
	t.l2.flush()
}

// PWCLatency is the access latency of the page-walk caches (Table 3).
const PWCLatency = 1

// PWC is a set of page-walk caches. Entry level L caches, for a VA prefix,
// the physical address of the level-(L-1) page-table node — i.e. a hit at
// level 2 lets the walker skip straight to the last-level (L1) PTE fetch.
// Table 3: 3 levels with 2, 4, and 32 entries (for skip depths covering
// L4, L3, and L2 respectively), 1-cycle access.
type PWC struct {
	// byLevel[level] holds the cache for skip levels 2..4; a fixed array
	// keeps the per-walk probe free of map lookups.
	byLevel [5]*assoc

	Hits, Misses uint64
}

// NewPWC builds the Table 3 page-walk-cache stack.
func NewPWC() *PWC { return NewPWCSized(2, 4, 32) }

// NewPWCSized builds a PWC with explicit entry counts for the L4/L3/L2
// skip levels; used when structures are scaled with the working set
// (DESIGN.md §6).
func NewPWCSized(l4, l3, l2 int) *PWC {
	p := &PWC{}
	p.byLevel[4] = normAssoc(l4, 2)
	p.byLevel[3] = normAssoc(l3, 4)
	p.byLevel[2] = normAssoc(l2, 4)
	return p
}

// NewPWCScaled divides the Table 3 entry counts by scale (minimum one
// entry per level).
func NewPWCScaled(scale int) *PWC {
	d := func(n int) int {
		if n/scale < 1 {
			return 1
		}
		return n / scale
	}
	return NewPWCSized(d(2), d(4), d(32))
}

func pwcKey(va mem.VAddr, level int, asid uint16) uint64 {
	// The prefix consumed by levels > (level-1): everything above the
	// bits indexing the level-(level-1) node.
	prefix := uint64(va) >> mem.LevelShift(level)
	return prefix<<12 | uint64(asid)<<2 | uint64(level)
}

// Lookup probes the PWC for the deepest available skip, trying level 2
// first (largest skip), then 3, then 4. It returns the physical address of
// the next page-table node to read and the level of that node.
func (p *PWC) Lookup(va mem.VAddr, asid uint16) (nodePA mem.PAddr, nextLevel int, ok bool) {
	for level := 2; level <= 4; level++ {
		if v, hit := p.byLevel[level].lookup(pwcKey(va, level, asid)); hit {
			p.Hits++
			return mem.PAddr(v), level - 1, true
		}
	}
	p.Misses++
	return 0, 0, false
}

// Insert records that, for va's prefix at the given level, the next node
// (level-1) resides at nodePA.
func (p *PWC) Insert(va mem.VAddr, level int, nodePA mem.PAddr, asid uint16) {
	if level < 2 || level > 4 {
		return
	}
	p.byLevel[level].insert(pwcKey(va, level, asid), uint64(nodePA))
}

// Flush empties all levels.
func (p *PWC) Flush() {
	for level := 2; level <= 4; level++ {
		p.byLevel[level].flush()
	}
}

// NestedCache caches gPA-page → hPA-page translations discovered during the
// host dimension of a 2D walk (the "nested PWC" row of Table 3, used to
// shortcut steps 1–4, 6–9, … of Figure 2 on reuse).
type NestedCache struct {
	a *assoc

	Hits, Misses uint64
}

// NewNestedCache builds the nested walk cache (38 entries total, matching
// the 2-4-32 budget of Table 3).
func NewNestedCache() *NestedCache {
	return NewNestedCacheSized(38)
}

// NewNestedCacheSized builds a nested walk cache with the given entry
// count (minimum 2).
func NewNestedCacheSized(entries int) *NestedCache {
	if entries < 2 {
		entries = 2
	}
	return &NestedCache{a: normAssoc(entries, 2)}
}

// Lookup returns the cached host frame for a guest-physical page.
func (n *NestedCache) Lookup(gpa mem.PAddr) (mem.PAddr, bool) {
	page := uint64(gpa) >> mem.PageShift4K
	if v, ok := n.a.lookup(page); ok {
		n.Hits++
		return mem.PAddr(v<<mem.PageShift4K | uint64(gpa)&(mem.PageBytes4K-1)), true
	}
	n.Misses++
	return 0, false
}

// Insert records gpa→hpa at page granularity.
func (n *NestedCache) Insert(gpa, hpa mem.PAddr) {
	n.a.insert(uint64(gpa)>>mem.PageShift4K, uint64(hpa)>>mem.PageShift4K)
}

// Flush empties the cache.
func (n *NestedCache) Flush() { n.a.flush() }
