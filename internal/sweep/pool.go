package sweep

import (
	"context"
	"net/http"
	"sync"
	"time"

	"dmt/internal/obs"
)

// worker is one dmtserved endpoint with its circuit-breaker state. The
// circuit is closed (routable) while openUntil is zero; consecutive
// transient failures at or beyond the pool's threshold open it — the
// worker is evicted from rotation — and after the cooldown the next pick
// re-probes readiness (GET /readyz) before readmitting it.
type worker struct {
	url string

	// Guarded by pool.mu.
	consecFails int
	openUntil   time.Time
	probing     bool
}

// pool schedules cells across workers round-robin, skipping open circuits
// and workers mid-probe. It is the coordinator's only view of worker
// health: pick returning nil means "no worker is reachable right now" and
// triggers the local-fallback / backoff path.
type pool struct {
	client       *http.Client
	reg          *obs.Registry
	failLimit    int
	cooldown     time.Duration
	probeTimeout time.Duration

	mu      sync.Mutex
	workers []*worker
	rr      int
}

func newPool(urls []string, client *http.Client, reg *obs.Registry, failLimit int, cooldown, probeTimeout time.Duration) *pool {
	p := &pool{
		client: client, reg: reg,
		failLimit: failLimit, cooldown: cooldown, probeTimeout: probeTimeout,
	}
	for _, u := range urls {
		p.workers = append(p.workers, &worker{url: u})
	}
	return p
}

// probeAll readiness-checks every worker concurrently (sweep start):
// workers that are down or draining begin the sweep evicted and rejoin
// through the normal cooldown → re-probe path if they recover.
func (p *pool) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if p.probe(ctx, w.url) {
				return
			}
			p.mu.Lock()
			w.openUntil = time.Now().Add(p.cooldown)
			p.mu.Unlock()
			p.reg.Add("sweep.worker_unready", 1)
		}(w)
	}
	wg.Wait()
}

// probe asks one worker's readiness endpoint; only a 200 within the probe
// budget readmits it. A draining dmtserved answers 503 here while staying
// live for its in-flight cells, which is exactly the distinction the
// coordinator needs.
func (p *pool) probe(ctx context.Context, url string) bool {
	pctx, cancel := context.WithTimeout(ctx, p.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// pick returns the next routable worker round-robin, excluding exclude
// (hedging never doubles onto the straggler's own worker). When the only
// candidates are cooled-down open circuits, pick re-probes one — at most
// one probe per call, outside the lock — and readmits it on a 200. nil
// means nothing is reachable.
func (p *pool) pick(ctx context.Context, exclude *worker) *worker {
	p.mu.Lock()
	n := len(p.workers)
	var reprobe *worker
	now := time.Now()
	for i := 0; i < n; i++ {
		w := p.workers[(p.rr+i)%n]
		if w == exclude || w.probing {
			continue
		}
		if w.openUntil.IsZero() {
			p.rr = (p.rr + i + 1) % n
			p.mu.Unlock()
			return w
		}
		if reprobe == nil && now.After(w.openUntil) {
			reprobe = w
		}
	}
	if reprobe == nil {
		p.mu.Unlock()
		return nil
	}
	reprobe.probing = true
	p.mu.Unlock()

	ok := p.probe(ctx, reprobe.url)

	p.mu.Lock()
	reprobe.probing = false
	if ok {
		reprobe.openUntil = time.Time{}
		reprobe.consecFails = 0
		p.mu.Unlock()
		p.reg.Add("sweep.worker_readmitted", 1)
		return reprobe
	}
	reprobe.openUntil = time.Now().Add(p.cooldown)
	p.mu.Unlock()
	p.reg.Add("sweep.probe_failures", 1)
	return nil
}

// success closes the failure streak after a completed cell.
func (p *pool) success(w *worker) {
	p.mu.Lock()
	w.consecFails = 0
	p.mu.Unlock()
}

// failure records one transient failure; reaching the threshold opens the
// circuit and evicts the worker for a cooldown.
func (p *pool) failure(w *worker) {
	p.mu.Lock()
	w.consecFails++
	evicted := w.consecFails >= p.failLimit && w.openUntil.IsZero()
	if evicted {
		w.openUntil = time.Now().Add(p.cooldown)
	}
	p.mu.Unlock()
	if evicted {
		p.reg.Add("sweep.worker_evictions", 1)
	}
}

// ready counts closed-circuit workers (CLI/metrics surface).
func (p *pool) ready() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.openUntil.IsZero() {
			n++
		}
	}
	return n
}
