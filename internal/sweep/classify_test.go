package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"syscall"
	"testing"
	"time"
)

// TestClassifyTable pins the retry taxonomy of DESIGN.md §12: admission
// pushback, drains, timeouts, and transport-level failures retry;
// validation errors, server bugs, and undecodable payloads do not.
func TestClassifyTable(t *testing.T) {
	// A real connection-refused error, as the coordinator would see one
	// from a crashed worker.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + l.Addr().String()
	l.Close()
	_, connRefused := (&http.Client{Timeout: 2 * time.Second}).Get(deadURL + "/run")
	if connRefused == nil {
		t.Fatal("request to a closed port unexpectedly succeeded")
	}

	synthetic := errors.New("worker said so")
	cases := []struct {
		name   string
		status int
		err    error
		want   Class
	}{
		{"429 admission pushback", http.StatusTooManyRequests, synthetic, ClassTransient},
		{"502 gateway hiccup", http.StatusBadGateway, synthetic, ClassTransient},
		{"503 draining or aborted", http.StatusServiceUnavailable, synthetic, ClassTransient},
		{"504 job deadline", http.StatusGatewayTimeout, synthetic, ClassTransient},
		{"400 validation", http.StatusBadRequest, synthetic, ClassPermanent},
		{"404 unknown route", http.StatusNotFound, synthetic, ClassPermanent},
		{"500 server bug", http.StatusInternalServerError, synthetic, ClassPermanent},
		{"200 undecodable payload", http.StatusOK, synthetic, ClassPermanent},
		{"conn refused", 0, connRefused, ClassTransient},
		{"conn reset", 0, fmt.Errorf("read tcp: %w", syscall.ECONNRESET), ClassTransient},
		{"broken pipe", 0, fmt.Errorf("write tcp: %w", syscall.EPIPE), ClassTransient},
		{"torn response", 0, io.ErrUnexpectedEOF, ClassTransient},
		{"eof", 0, io.EOF, ClassTransient},
		{"attempt deadline", 0, context.DeadlineExceeded, ClassTransient},
		{"no ready workers", 0, fmt.Errorf("cell: %w", ErrNoWorkers), ClassTransient},
		{"coordinator shutdown", 0, context.Canceled, ClassPermanent},
		{"unknown local error", 0, synthetic, ClassPermanent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.status, tc.err); got != tc.want {
				t.Fatalf("Classify(%d, %v) = %v, want %v", tc.status, tc.err, got, tc.want)
			}
		})
	}
}

// TestTemplateExpand: deterministic order, full cartesian coverage, and
// dedupe by canonical key.
func TestTemplateExpand(t *testing.T) {
	tmpl := Template{
		Envs:    []string{"native", "virt"},
		Designs: []string{"vanilla", "dmt"},
		Seeds:   []int64{1, 2, 3},
		Ops:     10_000, WSMiB: 24, Shards: 2,
	}
	cells, err := tmpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*3 {
		t.Fatalf("expanded %d cells, want 12", len(cells))
	}
	seen := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if seen[c.Key] {
			t.Fatalf("duplicate key %q", c.Key)
		}
		seen[c.Key] = true
	}
	// Outermost axis varies slowest.
	if cells[0].Req.Env != "native" || cells[len(cells)-1].Req.Env != "virt" {
		t.Fatalf("expansion order broken: first env %q, last env %q",
			cells[0].Req.Env, cells[len(cells)-1].Req.Env)
	}

	// Re-listed axis values dedupe instead of double-scheduling.
	tmpl.Envs = []string{"native", "native", "virt"}
	again, err := tmpl.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(cells) {
		t.Fatalf("dedupe failed: %d cells, want %d", len(again), len(cells))
	}

	// Invalid combinations are rejected at expansion, not at run time.
	bad := Template{Envs: []string{"bare-metal"}}
	if _, err := bad.Expand(); err == nil {
		t.Fatal("expanding an unknown environment did not fail")
	}

	// The zero template is a valid one-cell sweep.
	one, err := Template{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("zero template expanded to %d cells, want 1", len(one))
	}
}
