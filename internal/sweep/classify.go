package sweep

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"syscall"
)

// Class is the retry verdict for one failed attempt.
type Class int

const (
	// ClassPermanent failures do not improve with retries: validation
	// rejections (400), unknown routes, decode failures, server bugs
	// (500), or the coordinator's own shutdown. The cell fails now.
	ClassPermanent Class = iota
	// ClassTransient failures are expected to clear: admission pushback
	// (429), drain/abort (503), deadline (504), gateway hiccups (502),
	// and every transport-level error a crashed or unreachable worker
	// produces (connection refused/reset, timeouts, torn responses). The
	// cell retries with backoff, on another worker when one is ready.
	ClassTransient
)

func (c Class) String() string {
	if c == ClassTransient {
		return "transient"
	}
	return "permanent"
}

// ErrNoWorkers reports that no worker passed its readiness probe (or none
// are configured) while local fallback is disabled. Transient: workers
// recover, drains end.
var ErrNoWorkers = errors.New("sweep: no ready workers")

// Classify maps one attempt's outcome to its retry class — the sweep
// fabric's retry taxonomy (DESIGN.md §12). status is the HTTP status when
// a response arrived (0 otherwise); err is the attempt error. An HTTP
// status, when present, decides by itself: 429/502/503/504 are transient,
// everything else is permanent (a 200 with a non-nil err is a response
// the coordinator could not decode — permanent, the payload will not
// improve on retry).
func Classify(status int, err error) Class {
	switch status {
	case 0:
		// Transport-level failure; classify by error below.
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return ClassTransient
	default:
		return ClassPermanent
	}
	switch {
	case err == nil:
		return ClassPermanent
	case errors.Is(err, context.Canceled):
		// The coordinator itself is shutting down; retrying fights it.
		return ClassPermanent
	case errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, ErrNoWorkers),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return ClassTransient
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return ClassTransient
	}
	return ClassPermanent
}
