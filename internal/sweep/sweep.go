// Package sweep is the fault-tolerant distributed sweep fabric: it
// expands a configuration template into cells (env × design × workload ×
// THP × seed), schedules them across a fleet of dmtserved workers over
// HTTP, and survives the failures a real fleet produces — worker crashes,
// drains, timeouts, stragglers, and coordinator restarts — without
// silently losing or recomputing cells.
//
// The machinery, cell by cell:
//
//   - dedupe/resume: a durable content-addressed result store
//     (internal/store, keyed on serve.CanonicalKey) is consulted first;
//     completed cells cost one verified file read, so a restarted
//     coordinator re-runs only what is missing.
//   - retry: transient failures (Classify: 429/502/503/504 and every
//     transport-level error) retry with capped exponential backoff plus
//     seeded jitter; permanent failures fail the cell immediately.
//   - worker health: consecutive transient failures open a worker's
//     circuit (eviction); after a cooldown it is readmitted only by a
//     readiness probe (GET /readyz), which a draining worker fails while
//     staying live for its in-flight cells.
//   - hedging: a cell still running after HedgeAfter launches a second
//     attempt on a different worker; first success wins and cancels the
//     loser (whose abandoned flight the worker aborts server-side).
//   - degradation: with zero reachable workers the coordinator runs cells
//     in-process through sim.RunCtx (unless DisableLocal), so a sweep
//     always makes progress.
//
// Results are canonical JSON payloads — identical bytes whether a cell
// came from a worker, the local fallback, or the store — so resumed and
// uninterrupted sweeps are bit-identical. The contract (cell identity,
// retry taxonomy, resume semantics, store layout) is DESIGN.md §12.
package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"dmt/internal/obs"
	"dmt/internal/serve"
	"dmt/internal/sim"
	"dmt/internal/store"
)

// Config sizes the coordinator.
type Config struct {
	// Workers lists dmtserved base URLs. Empty means every cell runs
	// in-process (a purely local sweep, still store-backed).
	Workers []string
	// Store, when non-nil, is the durable result store: consulted before
	// scheduling, written after every completed cell.
	Store *store.Store
	// Registry receives the sweep.* counters. Default obs.Default.
	Registry *obs.Registry
	// Concurrency bounds how many cells are in flight at once.
	// Default 2×len(Workers), minimum 2.
	Concurrency int
	// CellTimeout bounds one attempt (HTTP round-trip or local run).
	// Default 2 minutes.
	CellTimeout time.Duration
	// MaxAttempts bounds tries per cell, the first included. Default 4.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the retry backoff: equal-jitter
	// exponential, base·2^(attempt-1) capped at max, halved and topped up
	// with seeded uniform jitter. Defaults 100ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter (deterministic tests). Default 1.
	JitterSeed int64
	// HedgeAfter launches a second attempt on another worker when the
	// first has been running this long. 0 disables hedging.
	HedgeAfter time.Duration
	// FailThreshold is the consecutive-transient-failure count that opens
	// a worker's circuit. Default 3.
	FailThreshold int
	// Cooldown is how long an evicted worker stays out before a readiness
	// probe may readmit it. Default 5s.
	Cooldown time.Duration
	// ProbeTimeout bounds one readiness probe. Default 2s.
	ProbeTimeout time.Duration
	// DisableLocal forbids the in-process fallback: with no reachable
	// worker, cells fail with ErrNoWorkers (after retries) instead of
	// degrading to local execution.
	DisableLocal bool
	// HTTPClient performs worker requests and probes. Default: a fresh
	// http.Client (per-attempt contexts carry the deadlines).
	HTTPClient *http.Client
	// OnUpdate, when non-nil, streams per-cell progress. Calls are
	// serialized by the coordinator.
	OnUpdate func(Update)
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	if c.Concurrency == 0 {
		c.Concurrency = 2 * len(c.Workers)
		if c.Concurrency < 2 {
			c.Concurrency = 2
		}
	}
	if c.CellTimeout == 0 {
		c.CellTimeout = 2 * time.Minute
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown == 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Concurrency < 1:
		return fmt.Errorf("sweep: Concurrency must be >= 1 (got %d)", c.Concurrency)
	case c.MaxAttempts < 1:
		return fmt.Errorf("sweep: MaxAttempts must be >= 1 (got %d)", c.MaxAttempts)
	case c.CellTimeout < 0 || c.BackoffBase < 0 || c.BackoffMax < 0 || c.HedgeAfter < 0 ||
		c.Cooldown < 0 || c.ProbeTimeout < 0:
		return errors.New("sweep: durations must be >= 0")
	case len(c.Workers) == 0 && c.DisableLocal:
		return errors.New("sweep: no workers configured and local fallback disabled — nothing can run")
	}
	return nil
}

// Event tags one progress update.
type Event string

const (
	EventStoreHit Event = "store-hit" // served from the durable store
	EventAttempt  Event = "attempt"   // scheduled on a worker
	EventRetry    Event = "retry"     // transient failure, backing off
	EventHedge    Event = "hedge"     // straggler hedged onto another worker
	EventLocal    Event = "local"     // degraded to in-process execution
	EventDone     Event = "done"      // cell completed
	EventFailed   Event = "failed"    // cell permanently failed
)

// Update is one streamed progress record.
type Update struct {
	Cell    int // cell index (expansion order)
	Total   int
	Key     string
	Event   Event
	Attempt int
	Worker  string // URL for worker events, "" otherwise
	Err     string // failure detail for retry/failed
}

// Source records where a cell's result came from.
type Source string

const (
	SourceStore  Source = "store"
	SourceWorker Source = "worker"
	SourceLocal  Source = "local"
)

// CellResult is one cell's outcome. Payload is the canonical result JSON
// (bit-identical across sources); Resp is its decoded form. Err non-nil
// means the cell failed permanently (Payload empty).
type CellResult struct {
	Cell     Cell
	Payload  json.RawMessage
	Resp     serve.RunResponse
	Source   Source
	Worker   string
	Attempts int
	Err      error
}

// Result is a completed (or interrupted) sweep.
type Result struct {
	Cells []CellResult // expansion order

	FromStore, RanWorker, RanLocal, Failed int
}

// ErrInterrupted marks cells never attempted because the sweep's context
// ended first; a resumed sweep picks them up from where the store left off.
var ErrInterrupted = errors.New("sweep: interrupted before this cell was attempted")

// Coordinator drives sweeps. One coordinator may run sweeps sequentially;
// each Run call owns its cells for the duration.
type Coordinator struct {
	cfg  Config
	reg  *obs.Registry
	pool *pool

	rngMu sync.Mutex
	rng   *rand.Rand

	updateMu sync.Mutex
}

// New validates the configuration and builds a coordinator.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg: cfg,
		reg: cfg.Registry,
		pool: newPool(cfg.Workers, cfg.HTTPClient, cfg.Registry,
			cfg.FailThreshold, cfg.Cooldown, cfg.ProbeTimeout),
		rng: rand.New(rand.NewSource(cfg.JitterSeed)),
	}, nil
}

// Run executes the sweep: every cell is resolved from the store, a
// worker, or the local fallback, under the fabric's retry/eviction/hedge
// machinery. On context cancellation it returns the partial Result along
// with ctx.Err(); cells already completed are durably in the store, so a
// later Run with the same cells resumes instead of recomputing.
func (c *Coordinator) Run(ctx context.Context, cells []Cell) (*Result, error) {
	total := len(cells)
	c.reg.Add("sweep.cells_total", uint64(total))
	if len(c.cfg.Workers) > 0 {
		c.pool.probeAll(ctx)
	}

	res := &Result{Cells: make([]CellResult, total)}
	for i := range cells {
		res.Cells[i] = CellResult{Cell: cells[i], Err: ErrInterrupted}
	}

	idxc := make(chan int)
	var wg sync.WaitGroup
	conc := c.cfg.Concurrency
	if conc > total {
		conc = total
	}
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxc {
				res.Cells[idx] = c.runCell(ctx, cells[idx], total)
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case idxc <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxc)
	wg.Wait()

	for i := range res.Cells {
		r := &res.Cells[i]
		switch {
		case r.Err != nil:
			res.Failed++
		case r.Source == SourceStore:
			res.FromStore++
		case r.Source == SourceWorker:
			res.RanWorker++
		case r.Source == SourceLocal:
			res.RanLocal++
		}
	}
	return res, ctx.Err()
}

// update streams one progress record, serialized.
func (c *Coordinator) update(u Update) {
	if c.cfg.OnUpdate == nil {
		return
	}
	c.updateMu.Lock()
	defer c.updateMu.Unlock()
	c.cfg.OnUpdate(u)
}

// runCell resolves one cell: store, then worker attempts with retry and
// hedging, then — when nothing is reachable — the local fallback.
func (c *Coordinator) runCell(ctx context.Context, cell Cell, total int) CellResult {
	if err := ctx.Err(); err != nil {
		return CellResult{Cell: cell, Err: err}
	}
	if c.cfg.Store != nil {
		if payload, ok := c.cfg.Store.Get(cell.Key); ok {
			var resp serve.RunResponse
			if err := json.Unmarshal(payload, &resp); err == nil {
				c.reg.Add("sweep.cells_from_store", 1)
				c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key, Event: EventStoreHit})
				return CellResult{Cell: cell, Payload: payload, Resp: resp, Source: SourceStore}
			}
			// Checksum-valid but undecodable (schema drift): fall through
			// and re-simulate; the Put below overwrites the stale entry.
		}
	}

	var lastErr error
	attempt := 0
	for attempt < c.cfg.MaxAttempts {
		attempt++
		if err := ctx.Err(); err != nil {
			return CellResult{Cell: cell, Attempts: attempt, Err: err}
		}
		w := c.pool.pick(ctx, nil)
		if w == nil {
			if !c.cfg.DisableLocal {
				return c.runLocal(ctx, cell, total, attempt)
			}
			lastErr = ErrNoWorkers
			c.reg.Add("sweep.retries", 1)
			c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
				Event: EventRetry, Attempt: attempt, Err: lastErr.Error()})
			if !c.backoff(ctx, attempt) {
				return CellResult{Cell: cell, Attempts: attempt, Err: ctx.Err()}
			}
			continue
		}

		c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
			Event: EventAttempt, Attempt: attempt, Worker: w.url})
		leg := c.attemptHedged(ctx, cell, w, total, attempt)
		if leg.err == nil {
			if c.cfg.Store != nil {
				if perr := c.cfg.Store.Put(cell.Key, leg.payload); perr != nil {
					// The result is valid and returned; only durability
					// suffered. Count it rather than failing the cell.
					c.reg.Add("sweep.store_put_errors", 1)
				}
			}
			c.reg.Add("sweep.cells_run_worker", 1)
			c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
				Event: EventDone, Attempt: attempt, Worker: leg.worker.url})
			return CellResult{Cell: cell, Payload: leg.payload, Resp: leg.resp,
				Source: SourceWorker, Worker: leg.worker.url, Attempts: attempt}
		}
		lastErr = leg.err
		if Classify(leg.status, leg.err) == ClassPermanent {
			break
		}
		c.reg.Add("sweep.retries", 1)
		c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
			Event: EventRetry, Attempt: attempt, Worker: leg.worker.url, Err: leg.err.Error()})
		if !c.backoff(ctx, attempt) {
			return CellResult{Cell: cell, Attempts: attempt, Err: ctx.Err()}
		}
	}

	c.reg.Add("sweep.cells_failed", 1)
	c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
		Event: EventFailed, Attempt: attempt, Err: fmt.Sprint(lastErr)})
	return CellResult{Cell: cell, Attempts: attempt, Err: lastErr}
}

// legResult is one attempt leg's outcome (primary or hedge).
type legResult struct {
	payload json.RawMessage
	resp    serve.RunResponse
	status  int
	err     error
	worker  *worker
}

// attemptHedged runs one attempt on first and, if it straggles past
// HedgeAfter, a second leg on a different worker. First success wins and
// cancels the other leg (the worker aborts the abandoned flight
// server-side); if every leg fails, the last failure is returned. Worker
// health is recorded per leg: transient failures count against the
// circuit, a cancelled loser does not.
func (c *Coordinator) attemptHedged(ctx context.Context, cell Cell, first *worker, total, attempt int) legResult {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan legResult, 2)
	launch := func(w *worker) {
		go func() {
			lr := c.post(actx, cell, w)
			lr.worker = w
			switch {
			case lr.err == nil:
				c.pool.success(w)
			case errors.Is(lr.err, context.Canceled):
				// Our own cancellation (hedge loser or shutdown) — not the
				// worker's fault.
			case Classify(lr.status, lr.err) == ClassTransient:
				c.pool.failure(w)
			}
			resc <- lr
		}()
	}
	launch(first)
	inFlight := 1

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 {
		timer := time.NewTimer(c.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var lastFail legResult
	for {
		select {
		case lr := <-resc:
			inFlight--
			if lr.err == nil {
				cancel() // the loser's flight is abandoned server-side
				return lr
			}
			lastFail = lr
			if inFlight == 0 {
				return lastFail
			}
		case <-hedgeC:
			hedgeC = nil
			if w2 := c.pool.pick(actx, first); w2 != nil {
				c.reg.Add("sweep.hedges", 1)
				c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
					Event: EventHedge, Attempt: attempt, Worker: w2.url})
				launch(w2)
				inFlight++
			}
		case <-ctx.Done():
			// Legs abort via actx; they drain into the buffered channel.
			return legResult{err: ctx.Err(), worker: first}
		}
	}
}

// post performs one HTTP attempt against a worker and canonicalizes the
// response: the decoded RunResponse is re-marshalled (Coalesced stripped)
// so payload bytes are identical no matter which worker — or the local
// fallback — produced the result.
func (c *Coordinator) post(ctx context.Context, cell Cell, w *worker) legResult {
	body, err := json.Marshal(cell.Req)
	if err != nil {
		return legResult{err: fmt.Errorf("sweep: encoding cell request: %w", err)}
	}
	actx := ctx
	if c.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.CellTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, w.url+"/run", bytes.NewReader(body))
	if err != nil {
		return legResult{err: fmt.Errorf("sweep: building request for %s: %w", w.url, err)}
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return legResult{err: fmt.Errorf("sweep: worker %s: %w", w.url, err)}
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 8<<20))
	if err != nil {
		return legResult{status: httpResp.StatusCode,
			err: fmt.Errorf("sweep: reading response from %s: %w", w.url, err)}
	}
	if httpResp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.Unmarshal(raw, &e)
		return legResult{status: httpResp.StatusCode,
			err: fmt.Errorf("sweep: worker %s: status %d: %s", w.url, httpResp.StatusCode, e["error"])}
	}
	var resp serve.RunResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return legResult{status: httpResp.StatusCode,
			err: fmt.Errorf("sweep: undecodable result from %s: %w", w.url, err)}
	}
	resp.Coalesced = false // transport metadata, not part of the result
	payload, err := json.Marshal(resp)
	if err != nil {
		return legResult{status: httpResp.StatusCode,
			err: fmt.Errorf("sweep: canonicalizing result from %s: %w", w.url, err)}
	}
	return legResult{payload: payload, resp: resp, status: httpResp.StatusCode}
}

// runLocal is the graceful-degradation path: no worker is reachable, so
// the cell runs in-process through the same engine the workers use. The
// result is JSON-roundtripped into the identical canonical payload a
// worker would have produced.
func (c *Coordinator) runLocal(ctx context.Context, cell Cell, total, attempt int) CellResult {
	c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
		Event: EventLocal, Attempt: attempt})
	actx := ctx
	if c.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.CellTimeout)
		defer cancel()
	}
	simRes, err := sim.RunCtx(actx, cell.Cfg)
	if err != nil {
		c.reg.Add("sweep.cells_failed", 1)
		c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
			Event: EventFailed, Attempt: attempt, Err: err.Error()})
		return CellResult{Cell: cell, Attempts: attempt, Err: err}
	}
	payload, err := json.Marshal(serve.ResponseFor(simRes))
	if err != nil {
		c.reg.Add("sweep.cells_failed", 1)
		return CellResult{Cell: cell, Attempts: attempt,
			Err: fmt.Errorf("sweep: encoding local result: %w", err)}
	}
	var resp serve.RunResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		c.reg.Add("sweep.cells_failed", 1)
		return CellResult{Cell: cell, Attempts: attempt,
			Err: fmt.Errorf("sweep: roundtripping local result: %w", err)}
	}
	if c.cfg.Store != nil {
		if perr := c.cfg.Store.Put(cell.Key, payload); perr != nil {
			c.reg.Add("sweep.store_put_errors", 1)
		}
	}
	c.reg.Add("sweep.cells_run_local", 1)
	c.update(Update{Cell: cell.Index, Total: total, Key: cell.Key,
		Event: EventDone, Attempt: attempt})
	return CellResult{Cell: cell, Payload: payload, Resp: resp,
		Source: SourceLocal, Attempts: attempt}
}

// backoff sleeps the equal-jitter exponential delay for attempt (1-based):
// half of base·2^(attempt-1) (capped at max) deterministic, half uniform
// from the seeded rng. Returns false when ctx ended first.
func (c *Coordinator) backoff(ctx context.Context, attempt int) bool {
	d := c.cfg.BackoffBase
	for i := 1; i < attempt && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	half := d / 2
	jitter := time.Duration(0)
	if half > 0 {
		c.rngMu.Lock()
		jitter = time.Duration(c.rng.Int63n(int64(half) + 1))
		c.rngMu.Unlock()
	}
	t := time.NewTimer(half + jitter)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ReadyWorkers reports how many workers currently have a closed circuit.
func (c *Coordinator) ReadyWorkers() int { return c.pool.ready() }
