package sweep

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"dmt/internal/obs"
	"dmt/internal/serve"
	"dmt/internal/sim"
	"dmt/internal/store"
)

// testWorker is one in-process dmtserved: the real serve.Server behind the
// real HTTP handler, so the coordinator exercises the genuine wire path.
type testWorker struct {
	srv *serve.Server
	ts  *httptest.Server
}

func newTestWorker() *testWorker {
	srv := serve.New(serve.Config{QueueDepth: 64, Workers: 2, Registry: obs.NewRegistry()})
	return &testWorker{srv: srv, ts: httptest.NewServer(srv.Handler())}
}

func (w *testWorker) url() string { return w.ts.URL }

// close is the graceful path: drain, stop the listener, join the pool.
func (w *testWorker) close() {
	w.srv.Drain(context.Background())
	w.ts.Close()
	w.srv.Close()
}

// kill is the SIGKILL-shaped path: every open connection is torn down
// mid-flight (clients see resets, not FINs after clean responses) and the
// job pool is aborted — the closest an in-process worker gets to an
// abrupt process death.
func (w *testWorker) kill() {
	w.ts.CloseClientConnections()
	w.srv.Close()
	w.ts.Close()
}

// newTestClient returns an HTTP client with an isolated connection pool;
// drain() must run before goroutine-leak checks (idle keep-alive
// connections hold goroutines).
func newTestClient() (*http.Client, func()) {
	tr := &http.Transport{}
	return &http.Client{Transport: tr}, tr.CloseIdleConnections
}

func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if now := runtime.NumGoroutine(); now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// groundTruth runs every cell directly through the engine and returns the
// canonical payload per key — the bit-identity reference for every
// delivery path (worker, local fallback, store).
func groundTruth(t *testing.T, cells []Cell) map[string]json.RawMessage {
	t.Helper()
	want := map[string]json.RawMessage{}
	for _, cell := range cells {
		res, err := sim.Run(cell.Cfg)
		if err != nil {
			t.Fatalf("direct run of %s: %v", cell.Key, err)
		}
		payload, err := json.Marshal(serve.ResponseFor(res))
		if err != nil {
			t.Fatal(err)
		}
		want[cell.Key] = payload
	}
	return want
}

func assertBitIdentical(t *testing.T, res *Result, want map[string]json.RawMessage) {
	t.Helper()
	for _, cr := range res.Cells {
		if cr.Err != nil {
			t.Fatalf("cell %d (%s): %v", cr.Cell.Index, cr.Cell.Key, cr.Err)
		}
		if string(cr.Payload) != string(want[cr.Cell.Key]) {
			t.Fatalf("cell %d (%s, source %s) diverged from direct run:\ngot  %s\nwant %s",
				cr.Cell.Index, cr.Cell.Key, cr.Source, cr.Payload, want[cr.Cell.Key])
		}
	}
}

func smallCells(t *testing.T, seeds ...int64) []Cell {
	t.Helper()
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	cells, err := Template{
		Envs: []string{"native"}, Designs: []string{"vanilla", "dmt"},
		Workloads: []string{"GUPS"}, Seeds: seeds,
		Ops: 20_000, WSMiB: 24, Shards: 2,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// deadURL returns an address nothing listens on (connection refused).
func deadURL(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	u := "http://" + l.Addr().String()
	l.Close()
	return u
}

// TestSweepDistributedBitIdentical: a two-worker sweep completes with
// results bit-identical to direct engine runs, populates the store, and a
// second sweep over the same cells costs zero simulations — every cell is
// a store hit, proven by the engine.steps_run counter standing still.
func TestSweepDistributedBitIdentical(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	cells := smallCells(t)
	want := groundTruth(t, cells)
	client, drainClient := newTestClient()

	w1, w2 := newTestWorker(), newTestWorker()
	st, err := store.Open(t.TempDir(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord, err := New(Config{
		Workers: []string{w1.url(), w2.url()}, Store: st, Registry: reg,
		HTTPClient: client, BackoffBase: time.Millisecond, DisableLocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.RanWorker != len(cells) || res.FromStore != 0 || res.RanLocal != 0 {
		t.Fatalf("first sweep: %+v, want all %d cells run on workers", res, len(cells))
	}
	assertBitIdentical(t, res, want)
	if n, err := st.Len(); err != nil || n != len(cells) {
		t.Fatalf("store holds %d entries (%v), want %d", n, err, len(cells))
	}

	// Second sweep: pure store traffic, zero redundant simulations.
	regStore := obs.NewRegistry()
	st2, err := store.Open(st.Dir(), regStore)
	if err != nil {
		t.Fatal(err)
	}
	coord2, err := New(Config{
		Workers: []string{w1.url(), w2.url()}, Store: st2, Registry: obs.NewRegistry(),
		HTTPClient: client, DisableLocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stepsBefore := obs.Default.Snapshot()["engine.steps_run"]
	res2, err := coord2.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FromStore != len(cells) || res2.RanWorker != 0 || res2.Failed != 0 {
		t.Fatalf("resumed sweep: %+v, want all %d cells from the store", res2, len(cells))
	}
	assertBitIdentical(t, res2, want)
	if delta := obs.Default.Snapshot()["engine.steps_run"] - stepsBefore; delta != 0 {
		t.Fatalf("store-served sweep simulated %d steps, want 0", delta)
	}
	if hits := regStore.Snapshot()["store.hits"]; hits != uint64(len(cells)) {
		t.Fatalf("store.hits = %d, want %d", hits, len(cells))
	}

	w1.close()
	w2.close()
	drainClient()
	waitForGoroutines(t, goroutinesBefore)
}

// TestSweepRetryTransient: a worker that answers 503 twice before
// recovering costs exactly two retries — the attempt sequence is
// transient-failure → backoff → success, never a permanent cell failure.
func TestSweepRetryTransient(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	cells := smallCells(t, 1)[:1]
	want := groundTruth(t, cells)
	client, drainClient := newTestClient()

	w := newTestWorker()
	var mu sync.Mutex
	fails := 0
	flaky := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/run" {
			mu.Lock()
			failNow := fails < 2
			if failNow {
				fails++
			}
			mu.Unlock()
			if failNow {
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(http.StatusServiceUnavailable)
				rw.Write([]byte(`{"error":"synthetic drain"}`))
				return
			}
		}
		w.srv.Handler().ServeHTTP(rw, r)
	}))

	reg := obs.NewRegistry()
	coord, err := New(Config{
		Workers: []string{flaky.URL}, Store: nil, Registry: reg,
		HTTPClient: client, BackoffBase: time.Millisecond, MaxAttempts: 4,
		FailThreshold: 10, // keep the circuit closed; this test is about retries
		DisableLocal:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.RanWorker != 1 {
		t.Fatalf("sweep result %+v, want the one cell to complete", res)
	}
	if got := res.Cells[0].Attempts; got != 3 {
		t.Fatalf("cell took %d attempts, want 3 (two 503s, then success)", got)
	}
	if retries := reg.Snapshot()["sweep.retries"]; retries != 2 {
		t.Fatalf("sweep.retries = %d, want 2", retries)
	}
	assertBitIdentical(t, res, want)

	flaky.Close()
	w.close()
	drainClient()
	waitForGoroutines(t, goroutinesBefore)
}

// TestSweepEvictsUnhealthyWorker: a worker that persistently fails /run
// (while passing readiness probes) trips the circuit breaker after the
// failure threshold and is evicted; the sweep completes entirely on the
// healthy worker.
func TestSweepEvictsUnhealthyWorker(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	cells := smallCells(t, 1, 2, 3)
	want := groundTruth(t, cells)
	client, drainClient := newTestClient()

	healthy := newTestWorker()
	sick := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.URL.Path == "/healthz" {
			rw.WriteHeader(http.StatusOK)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusServiceUnavailable)
		rw.Write([]byte(`{"error":"always failing"}`))
	}))

	reg := obs.NewRegistry()
	coord, err := New(Config{
		Workers: []string{sick.URL, healthy.url()}, Registry: reg,
		HTTPClient: client, BackoffBase: time.Millisecond, MaxAttempts: 6,
		FailThreshold: 2, Cooldown: time.Hour, // evicted stays out for the test
		Concurrency: 1, DisableLocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.RanWorker != len(cells) {
		t.Fatalf("sweep result %+v, want all %d cells to complete", res, len(cells))
	}
	assertBitIdentical(t, res, want)
	snap := reg.Snapshot()
	if snap["sweep.worker_evictions"] != 1 {
		t.Fatalf("sweep.worker_evictions = %d, want 1", snap["sweep.worker_evictions"])
	}
	if coord.ReadyWorkers() != 1 {
		t.Fatalf("ReadyWorkers = %d, want 1 (sick worker evicted)", coord.ReadyWorkers())
	}
	// Every completed cell ran on the healthy worker.
	for _, cr := range res.Cells {
		if cr.Worker != healthy.url() {
			t.Fatalf("cell %d completed on %s, want %s", cr.Cell.Index, cr.Worker, healthy.url())
		}
	}

	sick.Close()
	healthy.close()
	drainClient()
	waitForGoroutines(t, goroutinesBefore)
}

// TestSweepLocalFallback: with no workers (none configured, or only a
// dead endpoint that fails its readiness probe) the coordinator degrades
// to in-process execution — the sweep still completes, bit-identical, and
// the store still fills for later resumes.
func TestSweepLocalFallback(t *testing.T) {
	cells := smallCells(t, 1, 2)
	want := groundTruth(t, cells)
	for _, tc := range []struct {
		name    string
		workers []string
	}{
		{"no workers configured", nil},
		{"only a dead worker", []string{""}}, // filled in below
	} {
		t.Run(tc.name, func(t *testing.T) {
			goroutinesBefore := runtime.NumGoroutine()
			if len(tc.workers) == 1 {
				tc.workers[0] = deadURL(t)
			}
			client, drainClient := newTestClient()
			st, err := store.Open(t.TempDir(), obs.NewRegistry())
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			coord, err := New(Config{
				Workers: tc.workers, Store: st, Registry: reg,
				HTTPClient: client, BackoffBase: time.Millisecond,
				Cooldown: time.Hour, ProbeTimeout: time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := coord.Run(context.Background(), cells)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != 0 || res.RanLocal != len(cells) {
				t.Fatalf("sweep result %+v, want all %d cells run locally", res, len(cells))
			}
			assertBitIdentical(t, res, want)
			if snap := reg.Snapshot(); snap["sweep.cells_run_local"] != uint64(len(cells)) {
				t.Fatalf("sweep.cells_run_local = %d, want %d",
					snap["sweep.cells_run_local"], len(cells))
			}
			if n, err := st.Len(); err != nil || n != len(cells) {
				t.Fatalf("store holds %d entries (%v), want %d", n, err, len(cells))
			}
			drainClient()
			waitForGoroutines(t, goroutinesBefore)
		})
	}
}

// TestSweepHedgesStraggler: a cell stuck on a stalling worker is hedged
// onto the healthy one after HedgeAfter; the hedge wins, the straggler
// leg is cancelled, and the result is still bit-identical.
func TestSweepHedgesStraggler(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	cells := smallCells(t, 1)[:1]
	want := groundTruth(t, cells)
	client, drainClient := newTestClient()

	healthy := newTestWorker()
	stall := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.URL.Path == "/healthz" {
			rw.WriteHeader(http.StatusOK)
			return
		}
		// Drain the body so the server's background read can notice the
		// client abort, then stall until the leg is cancelled.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))

	reg := obs.NewRegistry()
	coord, err := New(Config{
		// Round-robin starts at the stalling worker, so the first attempt
		// straggles and the hedge lands on the healthy one.
		Workers: []string{stall.URL, healthy.url()}, Registry: reg,
		HTTPClient: client, BackoffBase: time.Millisecond,
		HedgeAfter: 50 * time.Millisecond, CellTimeout: time.Minute,
		DisableLocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.RanWorker != 1 {
		t.Fatalf("sweep result %+v, want the one cell to complete", res)
	}
	if res.Cells[0].Worker != healthy.url() {
		t.Fatalf("cell completed on %s, want the hedge target %s", res.Cells[0].Worker, healthy.url())
	}
	if hedges := reg.Snapshot()["sweep.hedges"]; hedges != 1 {
		t.Fatalf("sweep.hedges = %d, want 1", hedges)
	}
	assertBitIdentical(t, res, want)

	stall.Close()
	healthy.close()
	drainClient()
	waitForGoroutines(t, goroutinesBefore)
}

// TestSweepChaosResumeBitIdentical is the chaos gate of ISSUE 6: three
// workers, one killed abruptly mid-sweep, then the coordinator itself
// "crashes" (context cancelled). A fresh coordinator over the same store
// resumes with the two survivors and must (a) finish with results
// bit-identical to an uninterrupted single-worker sweep, (b) serve every
// pre-crash cell from the store — proven by store.hits — and (c) run zero
// redundant simulations — proven by engine.steps_run advancing exactly
// (missing cells × ops). No goroutine leaks at any stage, under -race in
// CI.
func TestSweepChaosResumeBitIdentical(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	const ops = 30_000
	cells, err := Template{
		Envs: []string{"native"}, Designs: []string{"vanilla", "dmt"},
		Workloads: []string{"GUPS"}, Seeds: []int64{1, 2, 3, 4},
		Ops: ops, WSMiB: 24, Shards: 2,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := groundTruth(t, cells)

	// Reference: an uninterrupted single-worker sweep.
	client, drainClient := newTestClient()
	wRef := newTestWorker()
	stRef, err := store.Open(t.TempDir(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	coordRef, err := New(Config{
		Workers: []string{wRef.url()}, Store: stRef, Registry: obs.NewRegistry(),
		HTTPClient: client, BackoffBase: time.Millisecond, DisableLocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resRef, err := coordRef.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if resRef.Failed != 0 {
		t.Fatalf("reference sweep failed cells: %+v", resRef)
	}
	assertBitIdentical(t, resRef, want)
	wRef.close()

	// Chaos phase: three workers; kill one after two cells complete, then
	// crash the coordinator after four.
	storeDir := t.TempDir()
	stChaos, err := store.Open(storeDir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	w1, w2, w3 := newTestWorker(), newTestWorker(), newTestWorker()
	cctx, crash := context.WithCancel(context.Background())
	var (
		mu     sync.Mutex
		dones  int
		killed bool
		killWG sync.WaitGroup
	)
	onUpdate := func(u Update) {
		if u.Event != EventDone {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		dones++
		if dones == 2 && !killed {
			killed = true
			killWG.Add(1)
			go func() { defer killWG.Done(); w3.kill() }()
		}
		if dones == 4 {
			crash()
		}
	}
	coordChaos, err := New(Config{
		Workers: []string{w1.url(), w2.url(), w3.url()}, Store: stChaos,
		Registry: obs.NewRegistry(), HTTPClient: client,
		BackoffBase: time.Millisecond, MaxAttempts: 6,
		FailThreshold: 2, Cooldown: time.Hour, Concurrency: 2,
		CellTimeout: time.Minute, DisableLocal: true, OnUpdate: onUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The partial result is allowed to carry failures/interruptions — the
	// whole point is that the store, not this coordinator, is the record.
	if _, err := coordChaos.Run(cctx, cells); err == nil {
		t.Fatal("chaos sweep was not interrupted — crash() never fired?")
	}
	crash()
	killWG.Wait()
	preStored, err := stChaos.Len()
	if err != nil {
		t.Fatal(err)
	}
	if preStored < 4 || preStored >= len(cells) {
		t.Fatalf("chaos timing off: %d of %d cells stored before the crash (want 4..%d)",
			preStored, len(cells), len(cells)-1)
	}

	// Resume: a fresh coordinator (the restart), the two survivors, the
	// same store directory.
	regStore := obs.NewRegistry()
	stResume, err := store.Open(storeDir, regStore)
	if err != nil {
		t.Fatal(err)
	}
	regResume := obs.NewRegistry()
	coordResume, err := New(Config{
		Workers: []string{w1.url(), w2.url()}, Store: stResume, Registry: regResume,
		HTTPClient: client, BackoffBase: time.Millisecond, MaxAttempts: 6,
		CellTimeout: time.Minute, DisableLocal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stepsBefore := obs.Default.Snapshot()["engine.steps_run"]
	resResume, err := coordResume.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if resResume.Failed != 0 {
		t.Fatalf("resumed sweep failed cells: %+v", resResume)
	}
	if resResume.FromStore != preStored {
		t.Fatalf("resumed sweep took %d cells from the store, want %d", resResume.FromStore, preStored)
	}
	missing := len(cells) - preStored
	if resResume.RanWorker != missing {
		t.Fatalf("resumed sweep ran %d cells, want exactly the %d missing ones",
			resResume.RanWorker, missing)
	}
	if hits := regStore.Snapshot()["store.hits"]; hits != uint64(preStored) {
		t.Fatalf("store.hits = %d, want %d", hits, preStored)
	}
	// The zero-redundancy proof: the engine advanced exactly the missing
	// cells' worth of steps, nothing recomputed.
	if delta := obs.Default.Snapshot()["engine.steps_run"] - stepsBefore; delta != uint64(missing*ops) {
		t.Fatalf("resume simulated %d steps, want %d (%d missing cells × %d ops — redundant work detected)",
			delta, missing*ops, missing, ops)
	}

	// Bit-identity: resumed results equal the uninterrupted sweep's equal
	// the direct engine's, cell for cell.
	assertBitIdentical(t, resResume, want)
	for i := range cells {
		if string(resResume.Cells[i].Payload) != string(resRef.Cells[i].Payload) {
			t.Fatalf("cell %d: resumed payload differs from uninterrupted sweep", i)
		}
	}

	w1.close()
	w2.close()
	drainClient()
	waitForGoroutines(t, goroutinesBefore)
}

// TestSweepCorruptStoreEntryReRuns: a bit-flipped store entry is detected
// on resume, re-simulated, overwritten, and the final payload is still
// bit-identical — corruption costs one extra run, never a wrong result.
func TestSweepCorruptStoreEntryReRuns(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	cells := smallCells(t, 1)
	want := groundTruth(t, cells)
	client, drainClient := newTestClient()

	dir := t.TempDir()
	st, err := store.Open(dir, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWorker()
	mk := func(reg *obs.Registry, s *store.Store) *Coordinator {
		c, err := New(Config{Workers: []string{w.url()}, Store: s, Registry: reg,
			HTTPClient: client, BackoffBase: time.Millisecond, DisableLocal: true})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if _, err := mk(obs.NewRegistry(), st).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}

	// Flip one bit of one stored entry on disk.
	corruptOneStoreFile(t, dir)

	regStore := obs.NewRegistry()
	st2, err := store.Open(dir, regStore)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mk(obs.NewRegistry(), st2).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("sweep over a corrupt store failed cells: %+v", res)
	}
	snap := regStore.Snapshot()
	if snap["store.corrupt"] != 1 {
		t.Fatalf("store.corrupt = %d, want 1", snap["store.corrupt"])
	}
	if res.FromStore != len(cells)-1 || res.RanWorker != 1 {
		t.Fatalf("sweep result %+v, want %d store hits and 1 re-run", res, len(cells)-1)
	}
	assertBitIdentical(t, res, want)

	// The overwritten entry is healthy again.
	regAfter := obs.NewRegistry()
	st3, err := store.Open(dir, regAfter)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := mk(obs.NewRegistry(), st3).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if res3.FromStore != len(cells) {
		t.Fatalf("post-repair sweep: %+v, want all cells from the store", res3)
	}

	w.close()
	drainClient()
	waitForGoroutines(t, goroutinesBefore)
}

// corruptOneStoreFile flips one bit in the lexically first entry under
// dir.
func corruptOneStoreFile(t *testing.T, dir string) {
	t.Helper()
	var target string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" && (target == "" || path < target) {
			target = path
		}
		return nil
	})
	if err != nil || target == "" {
		t.Fatalf("no store entry found under %s (%v)", dir, err)
	}
	raw, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(target, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
