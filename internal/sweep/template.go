package sweep

import (
	"fmt"

	"dmt/internal/serve"
	"dmt/internal/sim"
)

// Cell is one schedulable unit of a sweep: a fully validated simulation
// configuration with its durable identity. Two cells with equal Key are
// the same simulation (they produce bit-identical results), so expansion
// dedupes on it and the result store is addressed by it.
type Cell struct {
	// Index is the cell's position in deterministic expansion order.
	Index int
	// Req is the wire form sent to dmtserved workers.
	Req serve.RunRequest
	// Cfg is the validated engine configuration, used for the local
	// in-process fallback when no worker is reachable.
	Cfg sim.Config
	// Key is the canonical result-determining identity
	// (serve.CanonicalKey) — the store address and dedupe key.
	Key string
}

// Template describes a sweep as the cartesian product of its axes: every
// env × design × workload × THP × seed combination becomes one cell, all
// sharing the scalar knobs (ops, working set, cache scale, shards,
// verify). Empty axes default to a single representative value so the
// zero template is still a valid one-cell sweep.
type Template struct {
	Envs      []string
	Designs   []string
	Workloads []string
	THP       []bool
	Seeds     []int64

	Ops        int
	WSMiB      int
	CacheScale int
	Shards     int
	Verify     bool
}

func (t Template) withDefaults() Template {
	if len(t.Envs) == 0 {
		t.Envs = []string{"native"}
	}
	if len(t.Designs) == 0 {
		t.Designs = []string{"vanilla"}
	}
	if len(t.Workloads) == 0 {
		t.Workloads = []string{"GUPS"}
	}
	if len(t.THP) == 0 {
		t.THP = []bool{true}
	}
	if len(t.Seeds) == 0 {
		t.Seeds = []int64{1}
	}
	return t
}

// Expand enumerates the template's cells in deterministic order (env,
// design, workload, THP, seed — outermost to innermost), validating every
// combination and deduping identical cells by canonical key (first
// occurrence wins, so re-listed axis values cannot double-schedule a
// simulation).
func (t Template) Expand() ([]Cell, error) {
	t = t.withDefaults()
	seen := map[string]bool{}
	var cells []Cell
	for _, env := range t.Envs {
		for _, design := range t.Designs {
			for _, wl := range t.Workloads {
				for _, thp := range t.THP {
					for _, seed := range t.Seeds {
						req := serve.RunRequest{
							Env: env, Design: design, Workload: wl, THP: thp,
							Ops: t.Ops, Seed: seed, WSMiB: t.WSMiB,
							CacheScale: t.CacheScale, Shards: t.Shards,
							Verify: t.Verify,
						}
						cfg, err := req.Config(0)
						if err != nil {
							return nil, fmt.Errorf("sweep: cell env=%s design=%s wl=%s seed=%d: %w",
								env, design, wl, seed, err)
						}
						key := serve.CanonicalKey(cfg)
						if seen[key] {
							continue
						}
						seen[key] = true
						cells = append(cells, Cell{
							Index: len(cells), Req: req, Cfg: cfg.Normalized(), Key: key,
						})
					}
				}
			}
		}
	}
	return cells, nil
}
