package stats

import (
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// decodeFloats turns fuzz bytes into a bounded sample set of finite floats
// (8-byte little-endian chunks; NaN/Inf chunks are mapped into range so the
// properties below are well-defined for every input).
func decodeFloats(data []byte) []float64 {
	var xs []float64
	for len(data) >= 8 && len(xs) < 256 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = float64(len(xs))
		}
		xs = append(xs, v)
	}
	return xs
}

// FuzzPercentile pins the nearest-rank percentile contract: results stay
// within the sample bounds, are monotonic in p, hit the exact min/max at
// the extremes, and never depend on input order.
func FuzzPercentile(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 8*5)
	for _, v := range []float64{3, 1, 4, 1, 5} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		seed = append(seed, buf[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := decodeFloats(data)
		if len(xs) == 0 {
			if got := Percentile(xs, 50); got != 0 {
				t.Fatalf("Percentile(empty, 50) = %v, want 0", got)
			}
			return
		}
		min, max := xs[0], xs[0]
		for _, v := range xs {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		prev := math.Inf(-1)
		for _, p := range []float64{0, 1, 25, 50, 75, 90, 99, 100} {
			got := Percentile(xs, p)
			if got < min || got > max {
				t.Fatalf("Percentile(%v) = %v outside [%v, %v]", p, got, min, max)
			}
			if got < prev {
				t.Fatalf("Percentile(%v) = %v < Percentile at lower p (%v): not monotonic", p, got, prev)
			}
			prev = got
		}
		if got := Percentile(xs, 0); got != min {
			t.Fatalf("Percentile(0) = %v, want min %v", got, min)
		}
		if got := Percentile(xs, 100); got != max {
			t.Fatalf("Percentile(100) = %v, want max %v", got, max)
		}
		// Permutation invariance: percentiles are order statistics.
		perm := append([]float64(nil), xs...)
		rand.New(rand.NewSource(int64(len(xs)))).Shuffle(len(perm), func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		for _, p := range []float64{25, 50, 99} {
			if a, b := Percentile(xs, p), Percentile(perm, p); a != b {
				t.Fatalf("Percentile(%v) differs across permutations: %v vs %v", p, a, b)
			}
		}
	})
}

// FuzzCDF pins the empirical-CDF contract: values sorted ascending,
// fractions strictly positive, monotonically non-decreasing, ending at
// exactly 1, with one point per sample.
func FuzzCDF(f *testing.F) {
	f.Add([]byte{})
	seed := make([]byte, 0, 8*4)
	for _, v := range []float64{2, -7, 2, 0.5} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		seed = append(seed, buf[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := decodeFloats(data)
		vals, fracs := CDF(xs)
		if len(xs) == 0 {
			if vals != nil || fracs != nil {
				t.Fatalf("CDF(empty) = %v, %v, want nil, nil", vals, fracs)
			}
			return
		}
		if len(vals) != len(xs) || len(fracs) != len(xs) {
			t.Fatalf("CDF returned %d/%d points for %d samples", len(vals), len(fracs), len(xs))
		}
		if !sort.Float64sAreSorted(vals) {
			t.Fatalf("CDF values not sorted: %v", vals)
		}
		for i, fr := range fracs {
			if fr <= 0 || fr > 1 {
				t.Fatalf("frac[%d] = %v outside (0, 1]", i, fr)
			}
			if i > 0 && fr < fracs[i-1] {
				t.Fatalf("fracs not monotone at %d: %v", i, fracs)
			}
		}
		if fracs[len(fracs)-1] != 1 {
			t.Fatalf("terminal fraction = %v, want 1", fracs[len(fracs)-1])
		}
		// The CDF's values are the sorted samples; the input is untouched.
		sortedIn := append([]float64(nil), xs...)
		sort.Float64s(sortedIn)
		for i := range vals {
			if vals[i] != sortedIn[i] {
				t.Fatalf("CDF values diverge from sorted samples at %d: %v vs %v", i, vals[i], sortedIn[i])
			}
		}
	})
}
