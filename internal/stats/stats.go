// Package stats provides the small numeric and rendering helpers shared by
// the benchmark harnesses: geometric means, CDFs, and fixed-width tables
// in the shape of the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of xs (0 for empty input). A
// non-positive value indicates a broken measurement and is reported as an
// error rather than a crash.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: non-positive value %v in geometric mean", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// CDF returns the (x, fraction≤x) points of the empirical CDF of xs.
func CDF(xs []float64) (vals []float64, fracs []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, v := range sorted {
		vals = append(vals, v)
		fracs = append(fracs, float64(i+1)/float64(len(sorted)))
	}
	return vals, fracs
}

// Percentile returns the p-th percentile (0–100) of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Table renders rows with a header as an aligned fixed-width table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v (floats with %.2f).
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	// Size the width pass to the widest row, not the header: a row with
	// more cells than the header must still have every cell measured (and
	// padded — indexing widths by header length would panic on its
	// non-final extra cells).
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == len(cells)-1 {
				b.WriteString(c) // no trailing padding
			} else {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Bar renders a simple horizontal ASCII bar of value scaled to maxWidth at
// max — a stand-in for the paper's bar charts.
func Bar(value, max float64, maxWidth int) string {
	if max <= 0 {
		return ""
	}
	n := int(value / max * float64(maxWidth))
	if n < 0 {
		n = 0
	}
	if n > maxWidth {
		n = maxWidth
	}
	return strings.Repeat("#", n)
}

// BarChart renders labeled horizontal bars scaled to the maximum value —
// the ASCII stand-in for the paper's grouped bar figures. Values are
// printed with two decimals next to each bar.
func BarChart(title string, labels []string, values []float64, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	maxVal := 0.0
	labelW := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	for i, v := range values {
		fmt.Fprintf(&b, "  %-*s %6.2f |%s\n", labelW, labels[i], v, Bar(v, maxVal, width))
	}
	return b.String()
}

// CDFPlot renders an empirical CDF as rows of percent-filled bars, one row
// per sample step (used for Figure 5's CDF curves).
func CDFPlot(title string, xs []float64, width int) string {
	vals, fracs := CDF(xs)
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	// Downsample to at most 12 rows.
	step := (len(vals) + 11) / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(vals); i += step {
		fmt.Fprintf(&b, "  x<=%-6.0f %5.1f%% |%s\n", vals[i], fracs[i]*100, Bar(fracs[i], 1, width))
	}
	if (len(vals)-1)%step != 0 {
		last := len(vals) - 1
		fmt.Fprintf(&b, "  x<=%-6.0f %5.1f%% |%s\n", vals[last], fracs[last]*100, Bar(fracs[last], 1, width))
	}
	return b.String()
}
