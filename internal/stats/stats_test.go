package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", g)
	}
	if g, err := GeoMean(nil); err != nil || g != 0 {
		t.Fatalf("GeoMean(nil) = %v, %v, want 0", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean of non-positive value must report an error")
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		min, max := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			min = math.Min(min, xs[i])
			max = math.Max(max, xs[i])
		}
		g, err := GeoMean(xs)
		return err == nil && g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if m := Mean(xs); m != 2.5 {
		t.Fatalf("Mean = %v", m)
	}
	if p := Percentile(xs, 50); p != 2 {
		t.Fatalf("p50 = %v, want 2", p)
	}
	if p := Percentile(xs, 100); p != 4 {
		t.Fatalf("p100 = %v, want 4", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestCDFMonotone(t *testing.T) {
	vals, fracs := CDF([]float64{3, 1, 2})
	if len(vals) != 3 || vals[0] != 1 || fracs[2] != 1 {
		t.Fatalf("CDF = %v %v", vals, fracs)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] || fracs[i] < fracs[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.Add("x", 1.5)
	tb.Add("longer", "v")
	s := tb.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "1.50") || !strings.Contains(s, "longer") {
		t.Fatalf("table rendering broken:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), s)
	}
}

// TestTableWideRows is the regression test for the width computation: rows
// with more cells than the header used to be skipped by the width pass (and
// a non-final extra cell crashed rendering with an index out of range).
// Widths must size to the widest row, pad every column, and extend the
// separator accordingly.
func TestTableWideRows(t *testing.T) {
	tb := &Table{Header: []string{"design", "cycles"}}
	tb.Add("vanilla", 10, "p99=120", "max=400")
	tb.Add("dmt", 3, "p99=9", "max=21")
	s := tb.String()
	if !strings.Contains(s, "p99=120") || !strings.Contains(s, "max=400") {
		t.Fatalf("extra cells missing from render:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), s)
	}
	// Every extra column must be padded so the wide rows align: the cell
	// "p99=9" is followed by two spaces plus padding to len("p99=120").
	if !strings.Contains(lines[3], "p99=9    ") {
		t.Fatalf("extra column not padded to widest row:\n%s", s)
	}
	// The separator spans all columns of the widest row, not just the
	// header's: len("vanilla")+2+len("cycles")+2+len("p99=120")+2+len("max=400").
	rule := lines[1]
	if want := 7 + 2 + 6 + 2 + 7 + 2 + 7; len(rule) != want {
		t.Fatalf("separator is %d chars, want %d:\n%s", len(rule), want, s)
	}
}

func TestBar(t *testing.T) {
	if b := Bar(5, 10, 10); b != "#####" {
		t.Fatalf("Bar = %q", b)
	}
	if b := Bar(20, 10, 10); len(b) != 10 {
		t.Fatal("Bar must clamp to maxWidth")
	}
	if b := Bar(-1, 10, 10); b != "" {
		t.Fatal("negative value must render empty")
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart("t", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(s, "bb") || !strings.Contains(s, "##########") {
		t.Fatalf("chart rendering broken:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart has %d lines, want 3", len(lines))
	}
}

func TestCDFPlot(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := CDFPlot("cdf", xs, 20)
	if !strings.Contains(s, "100.0%") {
		t.Fatalf("CDF plot missing terminal row:\n%s", s)
	}
}
