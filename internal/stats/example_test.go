package stats_test

import (
	"fmt"

	"dmt/internal/stats"
)

func ExampleGeoMean() {
	// The paper reports speedups as geometric means across workloads.
	g, err := stats.GeoMean([]float64{1.2, 1.5, 2.0})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.2f\n", g)
	// Output:
	// 1.53
}

func ExampleTable() {
	t := &stats.Table{
		Title:  "speedups",
		Header: []string{"design", "pw", "app"},
	}
	t.Add("pvDMT", 1.58, 1.20)
	t.Add("ECPT", 1.36, 1.10)
	fmt.Print(t.String())
	// Output:
	// speedups
	// design  pw    app
	// ------  ----  ----
	// pvDMT   1.58  1.20
	// ECPT    1.36  1.10
}
