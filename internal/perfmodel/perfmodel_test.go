package perfmodel

import (
	"testing"

	"dmt/internal/stats"
)

func TestCalibrationMatchesPaperAggregates(t *testing.T) {
	var pwN, pwV, pwS, pwNest, virt, shadow, nested []float64
	for _, name := range Workloads() {
		c, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		pwN = append(pwN, c.PWNative)
		pwV = append(pwV, c.PWVirt)
		pwS = append(pwS, c.PWShadow)
		pwNest = append(pwNest, c.PWNested)
		virt = append(virt, c.VirtMult)
		shadow = append(shadow, c.ShadowMult)
		nested = append(nested, c.NestedMult)
	}
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"native PW share", stats.Mean(pwN), 0.21, 0.02},    // §2.2: 21%
		{"virt PW share", stats.Mean(pwV), 0.43, 0.02},      // §2.2: 43%
		{"shadow PW share", stats.Mean(pwS), 0.28, 0.02},    // §2.2: 28%
		{"nested PW share", stats.Mean(pwNest), 0.48, 0.03}, // §2.2: 48%
		{"virt slowdown", stats.Mean(virt), 1.46, 0.05},     // §2.2: 1.46x
		{"shadow vs nPT", stats.Mean(shadow), 1.39, 0.05},   // §2.2: 1.39x
		{"nested slowdown", stats.Mean(nested), 4.13, 0.25}, // §2.2: 4.13x
	}
	for _, c := range checks {
		if c.got < c.want-c.tol || c.got > c.want+c.tol {
			t.Errorf("%s: calibrated mean %.3f, paper %.3f (±%.3f)", c.name, c.got, c.want, c.tol)
		}
	}
}

func TestSpeedupIdentities(t *testing.T) {
	for _, name := range Workloads() {
		c, _ := Get(name)
		// A ratio of 1 (same walk overhead) must give speedup 1.
		for _, f := range []func(float64) float64{c.AppSpeedupNative, c.AppSpeedupVirt} {
			if s := f(1); s < 0.999 || s > 1.001 {
				t.Errorf("%s: speedup at ratio 1 = %.4f", name, s)
			}
		}
		// Smaller ratios must yield larger speedups, bounded by the
		// walk share.
		if c.AppSpeedupVirt(0.5) <= 1 || c.AppSpeedupVirt(0.5) >= 1/(1-c.PWVirt) {
			t.Errorf("%s: virt speedup out of bounds", name)
		}
		if c.AppSpeedupVirt(0.5) <= c.AppSpeedupVirt(0.8) {
			t.Errorf("%s: speedup not monotone in ratio", name)
		}
	}
}

func TestNestedComponentsDecompose(t *testing.T) {
	for _, name := range Workloads() {
		c, _ := Get(name)
		ideal, walk, exits := c.NestedComponents()
		sum := ideal + walk + exits
		if sum < c.NestedMult-0.001 || sum > c.NestedMult+0.001 {
			t.Errorf("%s: components %.3f don't sum to NestedMult %.3f", name, sum, c.NestedMult)
		}
		if ideal <= 0 || walk <= 0 || exits < 0 {
			t.Errorf("%s: non-physical components: %v %v %v", name, ideal, walk, exits)
		}
		// Even with an unchanged walk (ratio 1), removing the exit
		// overhead must speed nested execution up.
		if s := c.AppSpeedupNested(1); s <= 1 {
			t.Errorf("%s: nested speedup at ratio 1 = %.3f, want > 1", name, s)
		}
	}
}

func TestGUPSNestedOutlier(t *testing.T) {
	c, _ := Get("GUPS")
	if c.NestedMult < 10 {
		t.Fatal("GUPS nested multiplier must reproduce the 13.9x outlier of Figure 4")
	}
	// GUPS gains the most from eliminating shadow paging.
	gups := c.AppSpeedupNested(1.0)
	for _, other := range []string{"Memcached", "XSBench"} {
		oc, _ := Get(other)
		if gups <= oc.AppSpeedupNested(1.0) {
			t.Errorf("GUPS nested speedup %.2f not above %s's", gups, other)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	rows := Figure4()
	if len(rows) != 7 {
		t.Fatalf("Figure 4 has %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		if !(r.Native < r.Virt && r.Virt < r.Nested) {
			t.Errorf("%s: ordering native(%.2f) < virt(%.2f) < nested(%.2f) broken", r.Workload, r.Native, r.Virt, r.Nested)
		}
		if r.Shadow <= r.Virt {
			t.Errorf("%s: shadow paging (%.2f) must be slower than nested paging (%.2f)", r.Workload, r.Shadow, r.Virt)
		}
		for _, pair := range [][2]float64{{r.NativePW, r.Native}, {r.VirtPW, r.Virt}, {r.ShadowPW, r.Shadow}, {r.NestedPW, r.Nested}} {
			if pair[0] <= 0 || pair[0] >= pair[1] {
				t.Errorf("%s: PW portion %.2f outside (0, total %.2f)", r.Workload, pair[0], pair[1])
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
