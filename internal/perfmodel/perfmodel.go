// Package perfmodel implements the §5 execution-time model:
//
//	T_target = O_vanilla_measured × (O_sim_target / O_sim_vanilla) + T_ideal
//
// On the paper's testbed, O_vanilla_measured and T_ideal come from Linux
// perf on the Xeon Gold 6138 machine. That hardware is unavailable here, so
// the measured split between translation overhead and ideal execution time
// is substituted by per-workload calibration constants chosen to match the
// aggregates the paper itself reports (Figure 4 and §2.2: page-walk shares
// of 21 % native / 43 % virtualized / 48 % nested on average; shadow paging
// 1.39× slower than nested paging with a 28 % walk share; virtualization
// 1.46× and nested virtualization 4.13× the native execution time, with
// GUPS at 13.9×). See DESIGN.md §2 for the substitution rationale: the
// model only needs this split to convert simulated walk-cycle ratios into
// application-level speedups.
package perfmodel

import "fmt"

// Calib is the per-workload calibration: page-walk shares of the total
// execution time in each environment, and total execution times normalized
// to the native run.
type Calib struct {
	// PWNative/PWVirt/PWShadow/PWNested are the vanilla page-walk shares
	// of total execution time per environment.
	PWNative, PWVirt, PWShadow, PWNested float64
	// VirtMult, ShadowMult, NestedMult are total execution times
	// relative to native (ShadowMult is relative to the virtualized
	// nested-paging run).
	VirtMult, ShadowMult, NestedMult float64
}

// calibration is chosen so the per-environment averages reproduce the
// paper's reported aggregates (see package comment).
var calibration = map[string]Calib{
	"Redis":     {PWNative: 0.25, PWVirt: 0.48, PWShadow: 0.30, PWNested: 0.52, VirtMult: 1.50, ShadowMult: 1.45, NestedMult: 2.90},
	"Memcached": {PWNative: 0.15, PWVirt: 0.35, PWShadow: 0.22, PWNested: 0.40, VirtMult: 1.25, ShadowMult: 1.30, NestedMult: 2.30},
	"GUPS":      {PWNative: 0.35, PWVirt: 0.55, PWShadow: 0.35, PWNested: 0.60, VirtMult: 1.80, ShadowMult: 1.50, NestedMult: 13.90},
	"BTree":     {PWNative: 0.22, PWVirt: 0.45, PWShadow: 0.30, PWNested: 0.50, VirtMult: 1.55, ShadowMult: 1.40, NestedMult: 3.10},
	"Canneal":   {PWNative: 0.18, PWVirt: 0.40, PWShadow: 0.26, PWNested: 0.45, VirtMult: 1.40, ShadowMult: 1.35, NestedMult: 2.40},
	"XSBench":   {PWNative: 0.15, PWVirt: 0.38, PWShadow: 0.24, PWNested: 0.42, VirtMult: 1.30, ShadowMult: 1.30, NestedMult: 2.10},
	"Graph500":  {PWNative: 0.17, PWVirt: 0.40, PWShadow: 0.29, PWNested: 0.46, VirtMult: 1.40, ShadowMult: 1.40, NestedMult: 2.60},
}

// Get returns the calibration for a workload.
func Get(workload string) (Calib, error) {
	c, ok := calibration[workload]
	if !ok {
		return Calib{}, fmt.Errorf("perfmodel: no calibration for workload %q", workload)
	}
	return c, nil
}

// Workloads returns the calibrated workload names in the paper's order.
func Workloads() []string {
	return []string{"Redis", "Memcached", "GUPS", "BTree", "Canneal", "XSBench", "Graph500"}
}

// AppSpeedupNative converts a simulated walk-overhead ratio
// (O_sim_target / O_sim_vanilla) into a native application speedup:
// speedup = T_vanilla / T_target = 1 / (share·ratio + (1−share)).
func (c Calib) AppSpeedupNative(ratio float64) float64 {
	return 1 / (c.PWNative*ratio + (1 - c.PWNative))
}

// AppSpeedupVirt is the virtualized-environment analogue.
func (c Calib) AppSpeedupVirt(ratio float64) float64 {
	return 1 / (c.PWVirt*ratio + (1 - c.PWVirt))
}

// NestedComponents decomposes the nested-virtualization baseline run
// (normalized native = 1) into ideal work, page-walk time, and the
// shadow-sync VM-exit overhead that pvDMT eliminates (§2.1.3, §5). The
// ideal component is approximated by the virtualized run's non-walk time,
// since nested virtualization adds no useful work.
func (c Calib) NestedComponents() (ideal, walk, exits float64) {
	ideal = c.VirtMult * (1 - c.PWVirt)
	walk = c.NestedMult * c.PWNested
	exits = c.NestedMult - ideal - walk
	if exits < 0 {
		exits = 0
	}
	return ideal, walk, exits
}

// AppSpeedupNested converts the simulated nested-walk ratio into the
// application speedup of pvDMT over the nested-KVM baseline: the walk time
// scales by the ratio and the shadow-sync exit overhead disappears, since
// pvDMT gives nested virtualization hardware-assisted translation (§3.2).
func (c Calib) AppSpeedupNested(ratio float64) float64 {
	ideal, walk, _ := c.NestedComponents()
	return c.NestedMult / (ideal + walk*ratio)
}

// Figure4Row reproduces one workload's bars of Figure 4: normalized total
// execution times and page-walk portions for the four environments.
type Figure4Row struct {
	Workload                             string
	Native, Virt, Shadow, Nested         float64
	NativePW, VirtPW, ShadowPW, NestedPW float64
}

// Figure4 returns the calibrated Figure 4 data.
func Figure4() []Figure4Row {
	rows := make([]Figure4Row, 0, len(calibration))
	for _, name := range Workloads() {
		c := calibration[name]
		shadowTotal := c.VirtMult * c.ShadowMult
		rows = append(rows, Figure4Row{
			Workload: name,
			Native:   1, NativePW: c.PWNative,
			Virt: c.VirtMult, VirtPW: c.VirtMult * c.PWVirt,
			Shadow: shadowTotal, ShadowPW: shadowTotal * c.PWShadow,
			Nested: c.NestedMult, NestedPW: c.NestedMult * c.PWNested,
		})
	}
	return rows
}
