package obs

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// decodeSamples turns fuzz bytes into a sample stream plus a split point,
// so one input exercises both halves of a merge.
func decodeSamples(data []byte) (a, b []uint64) {
	if len(data) == 0 {
		return nil, nil
	}
	split := int(data[0])
	data = data[1:]
	var all []uint64
	for len(data) >= 8 {
		all = append(all, binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
	}
	if len(all) == 0 {
		return nil, nil
	}
	cut := split % (len(all) + 1)
	return all[:cut], all[cut:]
}

// FuzzHistMergeQuantiles pins the histogram-merge contract: merge(a,b) ==
// merge(b,a) bit-for-bit, merged counts/extrema are exact, and every
// quantile of the merged histogram is within one power-of-two bucket of
// the exact order statistic of the combined sample set.
func FuzzHistMergeQuantiles(f *testing.F) {
	f.Add([]byte{3, 1, 0, 0, 0, 0, 0, 0, 0, 200, 1, 0, 0, 0, 0, 0, 0})
	seed := make([]byte, 1, 1+8*6)
	seed[0] = 2
	for _, v := range []uint64{0, 1, 7, 255, 1 << 40, ^uint64(0)} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		seed = append(seed, buf[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		as, bs := decodeSamples(data)
		if len(as)+len(bs) == 0 {
			return
		}
		var ha, hb Hist
		for _, v := range as {
			ha.Observe(v)
		}
		for _, v := range bs {
			hb.Observe(v)
		}
		m1 := ha
		m1.Merge(&hb)
		m2 := hb
		m2.Merge(&ha)
		if !reflect.DeepEqual(m1, m2) {
			t.Fatal("merge is not commutative")
		}
		all := append(append([]uint64(nil), as...), bs...)
		if m1.Count != uint64(len(all)) {
			t.Fatalf("merged Count = %d, want %d", m1.Count, len(all))
		}
		min, max := all[0], all[0]
		for _, v := range all {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if m1.Min != min || m1.Max != max {
			t.Fatalf("merged Min/Max = %d/%d, want %d/%d", m1.Min, m1.Max, min, max)
		}
		prev := uint64(0)
		for _, p := range []float64{0, 25, 50, 90, 99, 100} {
			got := m1.Quantile(p)
			if got < prev {
				t.Fatalf("Quantile(%v) = %d < previous %d: not monotonic in p", p, got, prev)
			}
			prev = got
			exact := exactPercentile(all, p)
			if !withinOneBucket(exact, got) {
				t.Fatalf("Quantile(%v) = %d, exact %d: outside one bucket", p, got, exact)
			}
			if got < min || got > max {
				t.Fatalf("Quantile(%v) = %d outside [%d, %d]", p, got, min, max)
			}
		}
	})
}
