package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Counters is a named-counter snapshot: the per-run (and per-shard)
// counter surface carried in sim.Result. Merging sums by name, so shard
// merges and run aggregation stay commutative.
type Counters map[string]uint64

// Add increments name by v, materializing the entry.
func (c Counters) Add(name string, v uint64) { c[name] += v }

// Merge folds o into c by name.
func (c Counters) Merge(o Counters) {
	for k, v := range o {
		c[k] += v
	}
}

// Names returns the counter names in sorted order.
func (c Counters) Names() []string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Dump renders the counters as sorted "name value" lines — the text
// counterpart of the expvar export.
func (c Counters) Dump() string {
	var b strings.Builder
	for _, k := range c.Names() {
		fmt.Fprintf(&b, "%-40s %d\n", k, c[k])
	}
	return b.String()
}

// Registry is the process-wide counter/gauge accumulator behind the expvar
// export: runs fold their merged Result counters into it, and the build
// cache records clone-vs-cold-build traffic. It is concurrency-safe and
// deliberately off the walk hot path — nothing in Step/Walk touches it.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]uint64{}}
}

// Default is the registry PublishExpvar exposes and cmd/dmtsim dumps.
var Default = NewRegistry()

// Add increments a counter.
func (r *Registry) Add(name string, v uint64) {
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// Set overwrites a gauge.
func (r *Registry) Set(name string, v uint64) {
	r.mu.Lock()
	r.counters[name] = v
	r.mu.Unlock()
}

// AddAll folds a counter snapshot into the registry.
func (r *Registry) AddAll(c Counters) {
	r.mu.Lock()
	for k, v := range c {
		r.counters[k] += v
	}
	r.mu.Unlock()
}

// Snapshot copies the current counters.
func (r *Registry) Snapshot() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(Counters, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Reset zeroes the registry (tests).
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counters = map[string]uint64{}
	r.mu.Unlock()
}

// Dump renders the registry as sorted text lines.
func (r *Registry) Dump() string { return r.Snapshot().Dump() }

// Handler returns an http.Handler rendering the registry as sorted
// "name value" text lines — the plain-text counterpart of the expvar
// export, mounted by the serving layer as /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, r.Dump())
	})
}

var publishOnce sync.Once

// PublishExpvar exposes the default registry as the expvar variable
// "dmtsim" (alongside Go's built-in memstats/cmdline vars on
// /debug/vars when an HTTP server is mounted). Safe to call repeatedly;
// expvar registration is process-global, hence the once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("dmtsim", expvar.Func(func() interface{} {
			return Default.Snapshot()
		}))
	})
}
