package obs

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestHistExactExtremaAndMean(t *testing.T) {
	var h Hist
	samples := []uint64{0, 1, 7, 8, 100, 1000, 1000, 65536}
	var sum uint64
	for _, s := range samples {
		h.Observe(s)
		sum += s
	}
	if h.Count != uint64(len(samples)) {
		t.Fatalf("Count = %d, want %d", h.Count, len(samples))
	}
	if h.Min != 0 || h.Max != 65536 {
		t.Fatalf("Min/Max = %d/%d, want 0/65536", h.Min, h.Max)
	}
	if got, want := h.Mean(), float64(sum)/float64(len(samples)); got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	if h.Quantile(100) != h.Max {
		t.Fatalf("Quantile(100) = %d, want Max %d", h.Quantile(100), h.Max)
	}
}

// exactPercentile mirrors stats.Percentile's nearest-rank definition.
func exactPercentile(xs []uint64, p float64) uint64 {
	sorted := append([]uint64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// withinOneBucket reports whether approx is in the same power-of-two
// bucket as exact or above it by at most the bucket's width (the histogram
// reports the containing bucket's upper bound).
func withinOneBucket(exact, approx uint64) bool {
	if exact == approx {
		return true
	}
	if approx < exact {
		return false
	}
	// approx must be < 2*exact+2 (same bucket upper bound).
	return approx <= 2*exact+1
}

func TestHistQuantileWithinOneBucket(t *testing.T) {
	samples := []uint64{3, 5, 9, 17, 33, 120, 121, 122, 4000, 4096, 9999}
	var h Hist
	for _, s := range samples {
		h.Observe(s)
	}
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		exact := exactPercentile(samples, p)
		got := h.Quantile(p)
		if !withinOneBucket(exact, got) {
			t.Errorf("Quantile(%v) = %d, exact %d: outside one bucket", p, got, exact)
		}
	}
}

// TestHistObserveBatchEquivalence pins the batch-flush contract the
// engine's batched walk loop relies on: one ObserveBatch call is exactly N
// scalar Observes — Count, Sum, Min, Max, every bucket, and therefore
// every quantile — including batches that are empty, all-zero, single
// element, split at arbitrary points, or appended to a pre-populated
// histogram.
func TestHistObserveBatchEquivalence(t *testing.T) {
	batches := [][]uint64{
		{},
		{0},
		{42},
		{0, 0, 0},
		{1, 2, 4, 8, 16, 1 << 40, 7, 7, 7},
		{math.MaxUint64, 0, math.MaxUint64},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
	}
	// A deterministic pseudo-random batch, long enough to cross internal
	// accumulation boundaries.
	long := make([]uint64, 4096)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range long {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		long[i] = x >> (i % 48)
	}
	batches = append(batches, long)

	for i, vs := range batches {
		var scalar, batched Hist
		for _, v := range vs {
			scalar.Observe(v)
		}
		batched.ObserveBatch(vs)
		if !reflect.DeepEqual(scalar, batched) {
			t.Fatalf("batch %d: ObserveBatch diverged from %d Observes:\nscalar:  %+v\nbatched: %+v",
				i, len(vs), scalar, batched)
		}
		for _, p := range []float64{0, 50, 99, 100} {
			if scalar.Quantile(p) != batched.Quantile(p) {
				t.Fatalf("batch %d: Quantile(%v) differs", i, p)
			}
		}

		// Splitting a batch anywhere must not change anything either —
		// the engine flushes one batch per StepBatch call, at whatever
		// span boundaries the fault schedule produced.
		for _, cut := range []int{0, len(vs) / 3, len(vs) / 2, len(vs)} {
			var split Hist
			split.ObserveBatch(vs[:cut])
			split.ObserveBatch(vs[cut:])
			if !reflect.DeepEqual(scalar, split) {
				t.Fatalf("batch %d split at %d diverged:\nscalar: %+v\nsplit:  %+v", i, cut, scalar, split)
			}
		}
	}
}

func TestHistMergeCommutes(t *testing.T) {
	var a, b Hist
	for i := uint64(0); i < 100; i++ {
		a.Observe(i * 3)
		b.Observe(i*7 + 1)
	}
	m1 := a
	m1.Merge(&b)
	m2 := b
	m2.Merge(&a)
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("merge(a,b) != merge(b,a)")
	}
	if m1.Count != a.Count+b.Count {
		t.Fatalf("merged Count = %d, want %d", m1.Count, a.Count+b.Count)
	}
	var empty Hist
	m3 := a
	m3.Merge(&empty)
	if !reflect.DeepEqual(m3, a) {
		t.Fatal("merging an empty histogram changed the receiver")
	}
}

func TestRingWrapAndOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		e := r.Next()
		if e == nil {
			t.Fatal("Next returned nil for positive capacity")
		}
		if e.Seq != uint64(i) {
			t.Fatalf("Seq = %d, want %d", e.Seq, i)
		}
		e.VA = uint64(100 + i)
		e.NumSteps = 0
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("Total/Dropped = %d/%d, want 10/6", r.Total(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("event %d has Seq %d, want %d (oldest-first)", i, e.Seq, 6+i)
		}
	}
}

func TestRingZeroCapacity(t *testing.T) {
	r := NewRing(0)
	if e := r.Next(); e != nil {
		t.Fatal("zero-capacity ring returned a slot")
	}
	if r.Total() != 1 || len(r.Events()) != 0 {
		t.Fatal("zero-capacity ring retained events")
	}
}

func TestMergeEventsDeterministicOrder(t *testing.T) {
	mk := func(shard int32, seqs ...uint64) []WalkEvent {
		var out []WalkEvent
		for _, s := range seqs {
			out = append(out, WalkEvent{Shard: shard, Seq: s})
		}
		return out
	}
	a := mk(0, 0, 1, 2)
	b := mk(1, 0, 1)
	ab := MergeEvents(a, b)
	ba := MergeEvents(b, a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatal("MergeEvents depends on input order")
	}
	for i := 1; i < len(ab); i++ {
		p, q := ab[i-1], ab[i]
		if p.Shard > q.Shard || (p.Shard == q.Shard && p.Seq >= q.Seq) {
			t.Fatalf("merged events out of (shard, seq) order at %d", i)
		}
	}
}

func TestCountersMergeAndDump(t *testing.T) {
	a := Counters{"x": 1, "y": 2}
	b := Counters{"y": 3, "z": 4}
	a.Merge(b)
	want := Counters{"x": 1, "y": 5, "z": 4}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("merged = %v, want %v", a, want)
	}
	d := a.Dump()
	if !strings.Contains(d, "x") || !strings.Contains(d, "5") {
		t.Fatalf("dump missing entries:\n%s", d)
	}
	lines := strings.Split(strings.TrimSpace(d), "\n")
	if len(lines) != 3 || !sort.StringsAreSorted(lines) {
		t.Fatalf("dump not sorted:\n%s", d)
	}
}

func TestRegistryAccumulates(t *testing.T) {
	r := NewRegistry()
	r.Add("runs", 1)
	r.Add("runs", 2)
	r.Set("gauge", 7)
	r.AddAll(Counters{"runs": 1, "other": 5})
	snap := r.Snapshot()
	if snap["runs"] != 4 || snap["gauge"] != 7 || snap["other"] != 5 {
		t.Fatalf("snapshot = %v", snap)
	}
	r.Reset()
	if len(r.Snapshot()) != 0 {
		t.Fatal("Reset left counters behind")
	}
}

func TestWalkEventString(t *testing.T) {
	e := WalkEvent{Shard: 2, Seq: 9, VA: 0x1000, Cycles: 42, Fallback: true, NumSteps: 2}
	e.Steps[0] = StepTrace{Dim: "g", Step: 1, Level: 4, Served: 3, Cycles: 20}
	e.Steps[1] = StepTrace{Dim: "h", Step: 2, Level: 1, Served: 0, Cycles: 4}
	s := e.String()
	for _, frag := range []string{"s2#9", "va=0x1000", "cyc=42", "fallback", "1:gL4@Mem", "2:hL1@L1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("event string %q missing %q", s, frag)
		}
	}
}

func TestHistRender(t *testing.T) {
	var h Hist
	for i := uint64(1); i <= 64; i++ {
		h.Observe(i)
	}
	out := h.Render("latency", 20)
	if !strings.Contains(out, "latency") || !strings.Contains(out, "#") {
		t.Fatalf("render missing content:\n%s", out)
	}
	var empty Hist
	if !strings.Contains(empty.Render("", 10), "empty") {
		t.Fatal("empty render should say so")
	}
}
