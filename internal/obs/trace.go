package obs

import (
	"fmt"
	"sort"
	"strings"
)

// MaxSteps bounds the per-event step array: large enough for the deepest
// modeled walk (the 24-step nested 2D walk plus fan-out probes) without
// per-event allocation. Walks issuing more references set Truncated and
// keep the first MaxSteps.
const MaxSteps = 48

// StepTrace is one PTE fetch of a traced walk: the architectural step
// number and level, the walk dimension ("n" native, "g" guest, "h" host,
// "s" shadow, "L2"/"L1"/"L0" nested), which cache level served the fetch
// (the per-level hit/miss attribution: 0 = L1 … 3 = memory), and its
// latency contribution.
type StepTrace struct {
	Dim    string
	Step   int16
	Level  int16
	Served uint8
	Cycles uint32
}

// WalkEvent is one traced page walk. Events are fixed-size so the ring
// captures them without allocating; Steps beyond NumSteps are stale slots
// from earlier laps and must be accessed through StepSlice.
type WalkEvent struct {
	// Shard and Seq identify the event globally: Seq is the 0-based walk
	// index within the shard, so merged traces order deterministically
	// regardless of worker scheduling.
	Shard int32
	Seq   uint64
	// VA is the translated virtual address.
	VA uint64
	// Cycles is the whole walk's latency; Fallback marks an accelerated
	// design falling back to the legacy walker.
	Cycles    uint32
	Fallback  bool
	Truncated bool
	NumSteps  int32
	Steps     [MaxSteps]StepTrace
}

// StepSlice returns the valid steps of the event.
func (e *WalkEvent) StepSlice() []StepTrace { return e.Steps[:e.NumSteps] }

// String renders one event as a compact single line.
func (e *WalkEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "s%d#%d va=%#x cyc=%d", e.Shard, e.Seq, e.VA, e.Cycles)
	if e.Fallback {
		b.WriteString(" fallback")
	}
	for i := range e.StepSlice() {
		s := &e.Steps[i]
		b.WriteString(" ")
		if s.Step > 0 {
			fmt.Fprintf(&b, "%d:", s.Step)
		}
		fmt.Fprintf(&b, "%sL%d@%s", s.Dim, s.Level, serveName(s.Served))
	}
	if e.Truncated {
		b.WriteString(" …")
	}
	return b.String()
}

func serveName(level uint8) string {
	switch level {
	case 0:
		return "L1"
	case 1:
		return "L2"
	case 2:
		return "LLC"
	}
	return "Mem"
}

// Ring is a fixed-capacity overwrite-oldest buffer of walk events. One ring
// serves one shard: capture claims the next slot in place (no allocation,
// no locking — shards never share a ring), and Events returns the retained
// window oldest-first. The zero-capacity ring is valid and retains nothing.
type Ring struct {
	events []WalkEvent
	total  uint64
}

// NewRing builds a ring retaining up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 0 {
		capacity = 0
	}
	return &Ring{events: make([]WalkEvent, capacity)}
}

// Next claims the slot for the next event, overwriting the oldest when the
// ring is full, and stamps its Seq. The caller fills the remaining fields.
// Returns nil when the ring retains nothing.
func (r *Ring) Next() *WalkEvent {
	if len(r.events) == 0 {
		r.total++
		return nil
	}
	e := &r.events[r.total%uint64(len(r.events))]
	e.Seq = r.total
	r.total++
	return e
}

// Total counts every event offered to the ring, including overwritten ones.
func (r *Ring) Total() uint64 { return r.total }

// Dropped counts events lost to overwriting.
func (r *Ring) Dropped() uint64 {
	if r.total <= uint64(len(r.events)) {
		return 0
	}
	return r.total - uint64(len(r.events))
}

// Events returns a copy of the retained events, oldest first.
func (r *Ring) Events() []WalkEvent {
	n := r.total
	if n > uint64(len(r.events)) {
		n = uint64(len(r.events))
	}
	out := make([]WalkEvent, 0, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.events[(start+i)%uint64(len(r.events))])
	}
	return out
}

// MergeEvents combines per-shard event slices into one deterministic
// stream ordered by (Shard, Seq) — the trace analogue of sim.MergeShards:
// input order never matters, so any worker scheduling produces the same
// merged trace.
func MergeEvents(parts ...[]WalkEvent) []WalkEvent {
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]WalkEvent, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
