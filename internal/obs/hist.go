// Package obs is the observability substrate of the simulator: power-of-two
// latency histograms with exact extrema, fixed-size per-shard rings of
// structured walk-trace events, and a named counter registry exported via
// expvar. The package is built for the engine's determinism contract —
// histograms, counters, and rings all merge commutatively across shards, so
// a run's observability output is a pure function of (Config minus Workers)
// exactly like its Result (DESIGN.md §10).
//
// Cost model: histogram observation and counter snapshots are unconditional
// and allocation-free (two array increments per walk; counters are read once
// at Finish); per-walk trace capture is opt-in (sim.Config.Trace) and writes
// into a preallocated ring, so the walk hot path allocates nothing either
// way. The BenchmarkWalk_* 0 allocs/op pin enforces this.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// histBuckets is one bucket per possible bits.Len64 value: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// Bucket 0 holds exact zeros.
const histBuckets = 65

// Hist is a power-of-two-bucketed histogram of uint64 samples (walk latency
// in simulated cycles). Count, Sum, Min, and Max are exact; quantiles are
// resolved to the upper bound of the containing bucket, so any reported
// quantile is within one power-of-two bucket of the exact order statistic
// (FuzzHistMergeQuantiles pins both properties). The zero value is an empty,
// ready-to-use histogram; Observe and Merge never allocate.
type Hist struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// ObserveBatch records every sample of vs, exactly as if Observe had been
// called once per element in order: Count, Sum, Min, Max, and every bucket
// end up bit-identical (TestHistObserveBatchEquivalence pins this). Extrema
// and the sum are accumulated in locals and folded in once, so the batched
// engine's per-span histogram flush touches the struct O(1) times.
func (h *Hist) ObserveBatch(vs []uint64) {
	if len(vs) == 0 {
		return
	}
	mn, mx := vs[0], vs[0]
	var sum uint64
	for _, v := range vs {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += v
		h.Buckets[bits.Len64(v)]++
	}
	if h.Count == 0 || mn < h.Min {
		h.Min = mn
	}
	if mx > h.Max {
		h.Max = mx
	}
	h.Count += uint64(len(vs))
	h.Sum += sum
}

// Merge folds o into h bucket-wise. Merging is commutative and associative,
// matching the shard-merge contract: merge(a,b) == merge(b,a) for every
// derived quantity.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
}

// Mean returns the exact arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the p-th percentile (0–100) resolved to bucket
// granularity: the upper bound of the bucket containing the p-th order
// statistic, clamped into [Min, Max] so exact extrema are never exceeded.
// Quantile(100) == Max exactly.
func (h *Hist) Quantile(p float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= rank {
			ub := bucketUpper(i)
			if ub > h.Max {
				ub = h.Max
			}
			if ub < h.Min {
				ub = h.Min
			}
			return ub
		}
	}
	return h.Max
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// String renders the headline quantities, the shape dmtsim and the figure
// tables print.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d",
		h.Count, h.Mean(), h.Quantile(50), h.Quantile(90), h.Quantile(99), h.Max)
}

// Render draws an ASCII bucket chart of the non-empty range, one row per
// occupied power-of-two bucket (the text stand-in for Figure 4/14/15-style
// per-walk distributions).
func (h *Hist) Render(title string, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	var peak uint64
	for _, c := range h.Buckets {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		b.WriteString("  (empty)\n")
		return b.String()
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		var lo uint64
		if i > 0 {
			lo = 1 << uint(i-1)
		}
		n := int(float64(c) / float64(peak) * float64(width))
		fmt.Fprintf(&b, "  [%8d,%8d] %8d |%s\n", lo, bucketUpper(i), c, strings.Repeat("#", n))
	}
	return b.String()
}
