package tea

import (
	"fmt"

	"dmt/internal/kernel"
	"dmt/internal/mem"
)

// Backend exposes the manager's allocation backend so cloning layers can
// carry forward backend-local statistics (e.g. PhysBackend.Compactions)
// when recreating a backend over a cloned allocator.
func (m *Manager) Backend() Backend { return m.backend }

// Clone deep-copies the manager onto an already-cloned address space and a
// fresh backend (the caller builds the backend over the clone's allocator so
// future TEA allocations draw from the right substrate). Mappings keep their
// spans, regions, migration cursors, and sharing topology — sharedRegion
// refcount identity is preserved so a mapping drop on the clone releases the
// right TEA — while every VMA pointer is remapped onto the clone's VMA list.
// The register file and Stats are value copies.
//
// Clone installs the new manager as the address space's MMHooks, matching
// NewManager's "SetHooks before VMAs" contract: the clone's VMAs already
// exist, and its mapping set is inherited rather than rebuilt.
func (m *Manager) Clone(as *kernel.AddressSpace, backend Backend) (*Manager, error) {
	c := &Manager{
		cfg:     m.cfg,
		as:      as,
		backend: backend,
		regs:    append([]Register(nil), m.regs...),
		shared:  make(map[sharedKey]*sharedEntry, len(m.shared)),
		Stats:   m.Stats,
	}
	refs := make(map[*sharedRegion]*sharedRegion)
	cloneRef := func(r *sharedRegion) *sharedRegion {
		if r == nil {
			return nil
		}
		if cr, ok := refs[r]; ok {
			return cr
		}
		cr := &sharedRegion{key: r.key, refs: r.refs}
		refs[r] = cr
		return cr
	}
	c.mappings = make([]*Mapping, len(m.mappings))
	for i, mp := range m.mappings {
		cm := &Mapping{
			Start:   mp.Start,
			End:     mp.End,
			regions: make(map[mem.PageSize]*sizeRegion, len(mp.regions)),
			vmas:    make([]*kernel.VMA, len(mp.vmas)),
		}
		for j, v := range mp.vmas {
			cv, ok := as.FindVMA(v.Start)
			if !ok {
				return nil, fmt.Errorf("tea: clone: no VMA at %#x in cloned address space", uint64(v.Start))
			}
			cm.vmas[j] = cv
		}
		for s, sr := range mp.regions {
			csr := &sizeRegion{
				size:     sr.size,
				coverVA:  sr.coverVA,
				region:   sr.region,
				nodeSpan: sr.nodeSpan,
				shared:   cloneRef(sr.shared),
			}
			if sr.migrate != nil {
				mg := *sr.migrate
				csr.migrate = &mg
			}
			cm.regions[s] = csr
		}
		c.mappings[i] = cm
	}
	for k, se := range m.shared {
		c.shared[k] = &sharedEntry{region: se.region, ref: cloneRef(se.ref)}
	}
	as.SetHooks(c)
	return c, nil
}
