package tea

import (
	"math/rand"
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// env wires a kernel address space to a TEA manager over one allocator.
type env struct {
	as *kernel.AddressSpace
	mg *Manager
	pa *phys.Allocator
}

func newEnv(t *testing.T, frames int, cfg Config, kcfg kernel.Config) *env {
	t.Helper()
	pa := phys.New(0, frames)
	as, err := kernel.NewAddressSpace(pa, kcfg)
	if err != nil {
		t.Fatal(err)
	}
	mg := NewManager(as, NewPhysBackend(pa), cfg)
	as.SetHooks(mg)
	return &env{as: as, mg: mg, pa: pa}
}

func TestTEACreatedWithVMA(t *testing.T) {
	e := newEnv(t, 1<<14, DefaultConfig(false), kernel.Config{})
	v, err := e.as.MMap(0x40000000, 64<<20, kernel.VMAHeap, "heap") // 64 MiB
	if err != nil {
		t.Fatal(err)
	}
	if len(e.mg.Mappings()) != 1 {
		t.Fatalf("mappings = %d, want 1", len(e.mg.Mappings()))
	}
	mp := e.mg.Mappings()[0]
	if mp.Start != v.Start || mp.End != v.End {
		t.Fatalf("mapping span [%#x,%#x), want VMA span", uint64(mp.Start), uint64(mp.End))
	}
	// 64 MiB of 4K pages -> 16384 PTEs -> 32 TEA frames.
	sr := mp.regions[mem.Size4K]
	if sr == nil || sr.region.Frames != 32 {
		t.Fatalf("TEA frames = %v, want 32", sr)
	}
	reg := e.mg.Lookup(0x40000000 + 12345)
	if reg == nil || !reg.Covered[mem.Size4K] {
		t.Fatal("register not loaded for the new mapping")
	}
}

func TestPTEPlacementMatchesFetchArithmetic(t *testing.T) {
	e := newEnv(t, 1<<14, DefaultConfig(false), kernel.Config{})
	v, _ := e.as.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err := e.as.Populate(v); err != nil {
		t.Fatal(err)
	}
	// For every populated page, the walker's leaf-PTE address must equal
	// the DMT fetcher's arithmetic address (Figure 7) — same PTE word.
	reg := e.mg.Lookup(v.Start)
	if reg == nil {
		t.Fatal("no register")
	}
	addrOf := reg.PTEAddr(mem.Size4K)
	for va := v.Start; va < v.End; va += 64 << 12 {
		r := e.as.PT.Walk(va)
		if !r.OK {
			t.Fatalf("walk failed at %#x", uint64(va))
		}
		leaf := r.Steps[len(r.Steps)-1].Addr
		if got := addrOf(va); got != leaf {
			t.Fatalf("va %#x: DMT fetch %#x != walker leaf %#x", uint64(va), uint64(got), uint64(leaf))
		}
		pte, ok := e.as.Pool.ReadPTE(addrOf(va))
		if !ok || !pte.Present() {
			t.Fatalf("va %#x: no PTE at fetch address", uint64(va))
		}
	}
}

func TestUnalignedVMAPlacement(t *testing.T) {
	// A VMA that is not 2 MiB-aligned: the TEA covers the aligned-out
	// span, so fetch arithmetic still coincides with node placement.
	e := newEnv(t, 1<<14, DefaultConfig(false), kernel.Config{})
	v, _ := e.as.MMap(0x40000000+0x7000, 4<<20, kernel.VMAHeap, "odd")
	if err := e.as.Populate(v); err != nil {
		t.Fatal(err)
	}
	reg := e.mg.Lookup(v.Start)
	addrOf := reg.PTEAddr(mem.Size4K)
	r := e.as.PT.Walk(v.Start)
	if got, want := addrOf(v.Start), r.Steps[len(r.Steps)-1].Addr; got != want {
		t.Fatalf("unaligned VMA: fetch %#x != leaf %#x", uint64(got), uint64(want))
	}
}

func TestTHPUsesSecondTEA(t *testing.T) {
	e := newEnv(t, 1<<14, DefaultConfig(true), kernel.Config{THP: true})
	v, _ := e.as.MMap(0x40000000, 32<<20, kernel.VMAHeap, "heap")
	if err := e.as.Populate(v); err != nil {
		t.Fatal(err)
	}
	reg := e.mg.Lookup(v.Start)
	if reg == nil || !reg.Covered[mem.Size2M] || !reg.Covered[mem.Size4K] {
		t.Fatal("THP mapping must carry both 4K and 2M TEAs")
	}
	// 2M fetch address must hold the huge leaf PTE.
	addrOf := reg.PTEAddr(mem.Size2M)
	pte, ok := e.as.Pool.ReadPTE(addrOf(v.Start))
	if !ok || !pte.Present() || !pte.Huge() {
		t.Fatalf("2M TEA slot does not hold a huge leaf: ok=%v pte=%#x", ok, uint64(pte))
	}
	// 4K TEA slot for the same VA must NOT be a valid 4K leaf (region is
	// 2M-mapped), so the parallel fan-out selects exactly one.
	if pte4, ok := e.as.Pool.ReadPTE(reg.PTEAddr(mem.Size4K)(v.Start)); ok && pte4.Present() && !pte4.Huge() {
		t.Fatal("4K TEA slot unexpectedly holds a valid leaf for a 2M-mapped page")
	}
}

func TestRegisterEvictionPrefersLargeVMAs(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.Registers = 4
	cfg.MergeThreshold = 0 // isolate: no clustering
	e := newEnv(t, 1<<15, cfg, kernel.Config{})
	// Create 6 spaced VMAs with growing sizes.
	for i := 0; i < 6; i++ {
		start := mem.VAddr(0x40000000 + uint64(i)*(1<<32))
		if _, err := e.as.MMap(start, uint64(i+1)<<21, kernel.VMAHeap, "v"); err != nil {
			t.Fatal(err)
		}
	}
	// The 4 registers must hold the 4 largest VMAs (sizes 3..6 * 2MiB).
	for i := 0; i < 6; i++ {
		start := mem.VAddr(0x40000000 + uint64(i)*(1<<32))
		got := e.mg.Lookup(start) != nil
		want := i >= 2
		if got != want {
			t.Errorf("VMA %d (size %d MiB): register presence = %v, want %v", i, (i+1)*2, got, want)
		}
	}
}

func TestMergeAdjacentVMAs(t *testing.T) {
	cfg := DefaultConfig(false)
	e := newEnv(t, 1<<15, cfg, kernel.Config{})
	a, _ := e.as.MMap(0x40000000, 32<<20, kernel.VMAHeap, "a")
	// Adjacent VMA with a 16 KiB bubble — ratio far below 2 %.
	b, _ := e.as.MMap(a.End+4<<12, 32<<20, kernel.VMAFile, "b")
	if len(e.mg.Mappings()) != 1 {
		t.Fatalf("mappings = %d, want 1 merged cluster", len(e.mg.Mappings()))
	}
	mp := e.mg.Mappings()[0]
	if mp.Start != a.Start || mp.End != b.End {
		t.Fatal("merged mapping does not span both VMAs")
	}
	if e.mg.Stats.Merges != 1 {
		t.Fatalf("Merges = %d, want 1", e.mg.Stats.Merges)
	}
	// Both VMAs populated: placement must land in the merged TEA and
	// match walker leaves.
	if err := e.as.Populate(a); err != nil {
		t.Fatal(err)
	}
	if err := e.as.Populate(b); err != nil {
		t.Fatal(err)
	}
	reg := e.mg.Lookup(b.Start)
	if reg == nil {
		t.Fatal("merged register missing")
	}
	addrOf := reg.PTEAddr(mem.Size4K)
	r := e.as.PT.Walk(b.Start)
	if addrOf(b.Start) != r.Steps[len(r.Steps)-1].Addr {
		t.Fatal("fetch arithmetic broken across merged cluster")
	}
}

func TestNoMergeAcrossLargeBubble(t *testing.T) {
	cfg := DefaultConfig(false)
	e := newEnv(t, 1<<15, cfg, kernel.Config{})
	a, _ := e.as.MMap(0x40000000, 4<<20, kernel.VMAHeap, "a")
	// Bubble of 4 MiB against spans of 4 MiB: ratio ~33% >> 2%.
	if _, err := e.as.MMap(a.End+4<<20, 4<<20, kernel.VMAFile, "b"); err != nil {
		t.Fatal(err)
	}
	if len(e.mg.Mappings()) != 2 {
		t.Fatalf("mappings = %d, want 2 (no merge)", len(e.mg.Mappings()))
	}
}

func TestSplitOnFragmentedMemory(t *testing.T) {
	cfg := DefaultConfig(false)
	e := newEnv(t, 1<<13, cfg, kernel.Config{}) // 32 MiB zone
	// Shatter contiguity: pin alternating order-3 blocks.
	var pins []mem.PAddr
	for {
		pa, err := e.pa.Alloc(3, phys.KindUnmovable)
		if err != nil {
			break
		}
		pins = append(pins, pa)
	}
	for i, pa := range pins {
		if i%2 == 0 {
			e.pa.Free(pa, 3)
		}
	}
	// A 512 MiB VMA needs a 256-frame TEA; max contiguity is 8 frames,
	// so allocation must fall back to splitting.
	if _, err := e.as.MMap(0x40000000, 512<<20, kernel.VMAHeap, "big"); err != nil {
		t.Fatal(err)
	}
	if e.mg.Stats.Splits == 0 {
		t.Fatal("expected mapping splits under fragmentation")
	}
	if len(e.mg.Mappings()) < 2 {
		t.Fatalf("mappings = %d, want several after splitting", len(e.mg.Mappings()))
	}
	// Every resulting mapping must be register-addressable arithmetic-
	// consistently: spot-check the first mapping.
	mp := e.mg.Mappings()[0]
	if sr := mp.regions[mem.Size4K]; sr == nil {
		t.Fatal("split mapping lacks a 4K TEA")
	}
}

func TestVMAGrowExpandsTEA(t *testing.T) {
	cfg := DefaultConfig(false)
	e := newEnv(t, 1<<14, cfg, kernel.Config{})
	v, _ := e.as.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	mp := e.mg.Mappings()[0]
	before := mp.regions[mem.Size4K].region.Frames
	if err := e.as.Grow(v, v.End+8<<20); err != nil {
		t.Fatal(err)
	}
	after := mp.regions[mem.Size4K].region.Frames
	if after <= before {
		t.Fatalf("TEA frames %d -> %d, want growth", before, after)
	}
	if e.mg.Stats.ExpandsInPlace == 0 && e.mg.Stats.Migrations == 0 {
		t.Fatal("growth recorded neither in-place expansion nor migration")
	}
	if reg := e.mg.Lookup(v.End - 1); reg == nil {
		t.Fatal("grown tail not covered by a register")
	}
}

// noExpandBackend forces the migration path by refusing in-place growth.
type noExpandBackend struct{ Backend }

func (b noExpandBackend) ExpandTEAInPlace(r Region, extra int) (Region, bool) {
	return r, false
}

func TestGradualMigrationFallback(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.GradualMigration = true
	pa := phys.New(0, 1<<14)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mg := NewManager(as, noExpandBackend{NewPhysBackend(pa)}, cfg)
	as.SetHooks(mg)
	e := &env{as: as, mg: mg, pa: pa}
	v, _ := e.as.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err := e.as.Populate(v); err != nil {
		t.Fatal(err)
	}
	if err := e.as.Grow(v, v.End+8<<20); err != nil {
		t.Fatal(err)
	}
	if !e.mg.MigrationsPending() {
		t.Fatal("expected a gradual migration to be pending")
	}
	// While migrating, the register for this mapping must be absent
	// (P-bit clear) so translation falls back to the x86 walker.
	if reg := e.mg.Lookup(v.Start); reg != nil && reg.Covered[mem.Size4K] {
		t.Fatal("register still present during migration")
	}
	// Pump to completion; register returns and arithmetic matches again.
	for e.mg.MigrationsPending() {
		if e.mg.PumpMigration(4) == 0 {
			break
		}
	}
	if e.mg.MigrationsPending() {
		t.Fatal("migration never completed")
	}
	reg := e.mg.Lookup(v.Start)
	if reg == nil || !reg.Covered[mem.Size4K] {
		t.Fatal("register not restored after migration")
	}
	addrOf := reg.PTEAddr(mem.Size4K)
	r := e.as.PT.Walk(v.Start)
	if addrOf(v.Start) != r.Steps[len(r.Steps)-1].Addr {
		t.Fatal("fetch arithmetic broken after migration")
	}
}

func TestVMADeleteFreesTEA(t *testing.T) {
	e := newEnv(t, 1<<14, DefaultConfig(false), kernel.Config{})
	free0 := e.pa.FreeFrames()
	v, _ := e.as.MMap(0x40000000, 16<<20, kernel.VMAHeap, "heap")
	if err := e.as.MUnmap(v); err != nil {
		t.Fatal(err)
	}
	if e.pa.FreeFrames() != free0 {
		t.Fatalf("leaked %d frames", free0-e.pa.FreeFrames())
	}
	if len(e.mg.Mappings()) != 0 {
		t.Fatal("mapping survived VMA deletion")
	}
	if e.mg.Lookup(0x40000000) != nil {
		t.Fatal("register survived VMA deletion")
	}
}

func TestPopulateThenUnmapWithTEAPlacement(t *testing.T) {
	// Full lifecycle: TEA-placed nodes must not be double-freed to the
	// buddy allocator when translations are torn down (OwnsNode path).
	e := newEnv(t, 1<<14, DefaultConfig(false), kernel.Config{})
	free0 := e.pa.FreeFrames()
	v, _ := e.as.MMap(0x40000000, 16<<20, kernel.VMAHeap, "heap")
	if err := e.as.Populate(v); err != nil {
		t.Fatal(err)
	}
	if err := e.as.MUnmap(v); err != nil {
		t.Fatal(err)
	}
	if e.pa.FreeFrames() != free0 {
		t.Fatalf("frame accounting off by %d after full lifecycle", free0-int(uint32(e.pa.FreeFrames())))
	}
}

func TestMinVMABytesSkipsSmallVMAs(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.MinVMABytes = 1 << 20
	e := newEnv(t, 1<<14, cfg, kernel.Config{})
	if _, err := e.as.MMap(0x40000000, 64<<12, kernel.VMALib, "lib"); err != nil {
		t.Fatal(err)
	}
	if len(e.mg.Mappings()) != 0 {
		t.Fatal("tiny VMA received a TEA despite MinVMABytes")
	}
}

func TestRegisterMatchBounds(t *testing.T) {
	e := newEnv(t, 1<<14, DefaultConfig(false), kernel.Config{})
	v, _ := e.as.MMap(0x40000000, 4<<20, kernel.VMAHeap, "heap")
	if e.mg.Lookup(v.Start-1) != nil || e.mg.Lookup(v.End) != nil {
		t.Fatal("register matched outside VMA bounds")
	}
	if e.mg.Lookup(v.Start) == nil || e.mg.Lookup(v.End-1) == nil {
		t.Fatal("register missed inside VMA bounds")
	}
}

// TestRandomVMALifecycleInvariants drives a random sequence of VMA
// create/populate/grow/shrink/delete operations and checks, after every
// step, the two invariants DMT's correctness rests on: (1) for every
// populated page covered by a register, the fetch arithmetic lands on the
// walker's leaf PTE; (2) when everything is deleted, no physical frames
// have leaked.
func TestRandomVMALifecycleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := newEnv(t, 1<<15, DefaultConfig(false), kernel.Config{})
	free0 := e.pa.FreeFrames()
	var live []*kernel.VMA
	nextBase := mem.VAddr(0x40000000)

	checkArithmetic := func() {
		t.Helper()
		for _, v := range live {
			for _, p := range v.PresentPages() {
				reg := e.mg.Lookup(p.VA)
				if reg == nil || !reg.Covered[mem.Size4K] {
					continue // uncovered pages legitimately fall back
				}
				w := e.as.PT.Walk(p.VA)
				if !w.OK {
					t.Fatalf("populated page %#x unwalkable", uint64(p.VA))
				}
				leaf := w.Steps[len(w.Steps)-1].Addr
				if got := reg.PTEAddr(mem.Size4K)(p.VA); got != leaf {
					// Shared-region conflicts (overlapping aligned covers
					// with different spans) fall back by design; verify
					// that the content at the fetch address is NOT a
					// valid misleading leaf.
					pte, ok := e.as.Pool.ReadPTE(got)
					if ok && pte.Present() && !pte.Huge() && got != leaf {
						t.Fatalf("page %#x: fetch %#x holds a stale leaf (walker leaf %#x)",
							uint64(p.VA), uint64(got), uint64(leaf))
					}
				}
			}
		}
	}

	for step := 0; step < 120; step++ {
		switch op := rng.Intn(5); {
		case op == 0 || len(live) == 0: // create
			// Place beyond every live VMA (grown VMAs may have passed
			// the previous cursor).
			for _, lv := range e.as.VMAs() {
				if lv.End > nextBase {
					nextBase = lv.End
				}
			}
			nextBase = mem.AlignUp(nextBase+mem.VAddr(uint64(rng.Intn(64))<<12), mem.PageBytes4K)
			size := uint64(1+rng.Intn(8)) << 21 // 2–16 MiB
			v, err := e.as.MMap(nextBase, size, kernel.VMAHeap, "v")
			if err != nil {
				t.Fatal(err)
			}
			nextBase = v.End
			if err := e.as.Populate(v); err != nil {
				t.Fatal(err)
			}
			live = append(live, v)
		case op == 1: // delete
			i := rng.Intn(len(live))
			if err := e.as.MUnmap(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		case op == 2: // grow (may fail on overlap; that's fine)
			v := live[rng.Intn(len(live))]
			if err := e.as.Grow(v, v.End+mem.VAddr(uint64(1+rng.Intn(4))<<21)); err == nil {
				if err := e.as.Populate(v); err != nil {
					t.Fatal(err)
				}
			}
		case op == 3 && len(live) > 0: // shrink
			v := live[rng.Intn(len(live))]
			if v.Size() > mem.PageBytes2M*2 {
				if err := e.as.Shrink(v, v.End-mem.PageBytes2M); err != nil {
					t.Fatal(err)
				}
			}
		default: // touch randomly
			v := live[rng.Intn(len(live))]
			if _, err := e.as.Touch(v.Start+mem.VAddr(rng.Int63n(int64(v.Size()))), rng.Intn(2) == 0); err != nil {
				t.Fatal(err)
			}
		}
		if step%10 == 0 {
			checkArithmetic()
		}
	}
	checkArithmetic()
	for len(live) > 0 {
		if err := e.as.MUnmap(live[0]); err != nil {
			t.Fatal(err)
		}
		live = live[1:]
	}
	if e.pa.FreeFrames() != free0 {
		t.Fatalf("leaked %d frames across the lifecycle", free0-e.pa.FreeFrames())
	}
	if got := e.mg.Stats.FramesLive; got != 0 {
		t.Fatalf("TEA accounting shows %d live frames after full teardown", got)
	}
}

// TestSplitVMADeletionFreesAllMappings is the regression test for split
// mappings: deleting a VMA covered by several split mappings (§4.2.2) must
// drop every one of them and free every TEA frame.
func TestSplitVMADeletionFreesAllMappings(t *testing.T) {
	e := newEnv(t, 1<<13, DefaultConfig(false), kernel.Config{})
	// Shatter contiguity so mapping creation splits.
	var pins []mem.PAddr
	for {
		pa, err := e.pa.Alloc(3, phys.KindUnmovable)
		if err != nil {
			break
		}
		pins = append(pins, pa)
	}
	for i, pa := range pins {
		if i%2 == 0 {
			e.pa.Free(pa, 3)
		}
	}
	v, err := e.as.MMap(0x40000000, 512<<20, kernel.VMAHeap, "big")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.mg.Mappings()) < 2 {
		t.Skip("layout did not split")
	}
	frames := e.mg.Stats.FramesLive
	if frames == 0 {
		t.Fatal("no TEA frames allocated")
	}
	if err := e.as.MUnmap(v); err != nil {
		t.Fatal(err)
	}
	if len(e.mg.Mappings()) != 0 {
		t.Fatalf("%d split mappings leaked after deletion", len(e.mg.Mappings()))
	}
	if e.mg.Stats.FramesLive != 0 {
		t.Fatalf("%d TEA frames leaked after deletion", e.mg.Stats.FramesLive)
	}
}

// TestSplitVMAResize checks growth and shrink of a VMA covered by split
// mappings: growth extends only the tail mapping; shrink drops the
// mappings beyond the new end and truncates the straddler.
func TestSplitVMAResize(t *testing.T) {
	e := newEnv(t, 1<<13, DefaultConfig(false), kernel.Config{})
	var pins []mem.PAddr
	for {
		pa, err := e.pa.Alloc(3, phys.KindUnmovable)
		if err != nil {
			break
		}
		pins = append(pins, pa)
	}
	for i, pa := range pins {
		if i%2 == 0 {
			e.pa.Free(pa, 3)
		}
	}
	v, err := e.as.MMap(0x40000000, 256<<20, kernel.VMAHeap, "big")
	if err != nil {
		t.Fatal(err)
	}
	nSplit := len(e.mg.Mappings())
	if nSplit < 2 {
		t.Skip("layout did not split")
	}
	// Shrink to a quarter: most split mappings must disappear.
	if err := e.as.Shrink(v, v.Start+64<<20); err != nil {
		t.Fatal(err)
	}
	after := len(e.mg.Mappings())
	if after >= nSplit {
		t.Fatalf("shrink dropped no mappings: %d -> %d", nSplit, after)
	}
	for _, mp := range e.mg.Mappings() {
		if mp.Start >= v.End {
			t.Fatalf("mapping [%#x,%#x) survives beyond the shrunk end %#x",
				uint64(mp.Start), uint64(mp.End), uint64(v.End))
		}
	}
	// Grow back: exactly one (tail) mapping extends; no overlaps appear.
	if err := e.as.Grow(v, v.Start+96<<20); err != nil {
		t.Fatal(err)
	}
	prevEnd := mem.VAddr(0)
	for _, mp := range e.mg.Mappings() {
		if mp.Start < prevEnd {
			t.Fatalf("overlapping mappings after grow at %#x", uint64(mp.Start))
		}
		prevEnd = mp.End
	}
	// Cleanup still leak-free.
	if err := e.as.MUnmap(v); err != nil {
		t.Fatal(err)
	}
	if e.mg.Stats.FramesLive != 0 {
		t.Fatalf("%d TEA frames leaked", e.mg.Stats.FramesLive)
	}
}

// TestCompactionRescuesTEAAllocation: when contiguity fails but the
// blockers are movable data pages, the backend's defragmentation pass
// (§4.3) compacts them aside and the TEA allocation succeeds unsplit.
func TestMovableFragmentationResolved(t *testing.T) {
	// §4.3: TEA allocation must succeed when contiguity is blocked only
	// by *movable* data pages — resolved by the allocator's inline
	// migration, with the backend's Compact-and-retry as second line.
	pa := phys.New(0, 1<<13)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend := NewPhysBackend(pa)
	v, err := as.MMap(0x80000000, uint64(pa.TotalFrames())*mem.PageBytes4K*7/8, kernel.VMAAnon, "filler")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	// Release every other page: free memory exists only as isolated
	// frames between live movable pages.
	// Pin the remaining naturally-free space so only the data region can
	// supply contiguity.
	for {
		if _, err := pa.Alloc(0, phys.KindUnmovable); err != nil {
			break
		}
	}
	// Release every other data page: free memory exists only as isolated
	// frames between live movable pages.
	pages := v.PresentPages()
	for i := 0; i < len(pages); i += 2 {
		if err := as.UnmapPage(v, pages[i].VA); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pa.Alloc(6, phys.KindPageTable); err == nil {
		t.Skip("zone still has natural contiguity; fragmentation setup ineffective")
	}
	if _, err := backend.AllocTEA(64); err != nil {
		t.Fatalf("movable fragmentation not resolved: %v", err)
	}
	// The surviving data pages must still translate (migration rewrote
	// their PTEs coherently).
	for i := 1; i < len(pages); i += 64 {
		if _, _, ok := as.PT.Lookup(pages[i].VA); !ok {
			t.Fatalf("page %#x lost its mapping during migration", uint64(pages[i].VA))
		}
	}
}

// TestIterativeMerging: three adjacent VMAs with tiny bubbles collapse
// into a single cluster (§4.2.1 "performed iteratively").
func TestIterativeMerging(t *testing.T) {
	e := newEnv(t, 1<<15, DefaultConfig(false), kernel.Config{})
	a, _ := e.as.MMap(0x40000000, 32<<20, kernel.VMAHeap, "a")
	b, _ := e.as.MMap(a.End+4<<12, 32<<20, kernel.VMAFile, "b")
	c, _ := e.as.MMap(b.End+4<<12, 32<<20, kernel.VMAFile, "c")
	if len(e.mg.Mappings()) != 1 {
		t.Fatalf("mappings = %d, want 1 cluster of three VMAs", len(e.mg.Mappings()))
	}
	mp := e.mg.Mappings()[0]
	if mp.Start != a.Start || mp.End != c.End {
		t.Fatal("cluster does not span all three VMAs")
	}
	if e.mg.Stats.Merges < 2 {
		t.Fatalf("Merges = %d, want >= 2 (iterative)", e.mg.Stats.Merges)
	}
	// All three populate and translate through the single cluster TEA.
	for _, v := range []*kernel.VMA{a, b, c} {
		if err := e.as.Populate(v); err != nil {
			t.Fatal(err)
		}
		reg := e.mg.Lookup(v.Start)
		if reg == nil {
			t.Fatalf("%s uncovered", v.Name)
		}
		w := e.as.PT.Walk(v.Start)
		if got := reg.PTEAddr(mem.Size4K)(v.Start); got != w.Steps[len(w.Steps)-1].Addr {
			t.Fatalf("%s: cluster fetch arithmetic broken", v.Name)
		}
	}
}
