// Package tea implements Translation Entry Areas and VMA-to-TEA mapping
// management — the OS half of DMT (§3, §4.2, §4.3 of the paper).
//
// A TEA is a physically-contiguous region holding the last-level PTEs of
// the pages of one VMA (or one cluster of adjacent VMAs), in order. Because
// a 4 KiB page of TEA is exactly one x86 L1 page-table node covering 2 MiB
// of virtual space, TEAs are aligned so TEA pages *are* the page-table
// nodes: the legacy walker and the DMT fetcher read the same PTE words
// (the paper's no-copy property).
//
// The Manager plugs into the kernel's MMHooks: it reacts to VMA lifecycle
// events by creating, merging (§4.2.1), splitting (§4.2.2), expanding, and
// migrating (§4.3) TEAs, and it maintains the 16-register file (Figure 13)
// that the hardware DMT fetcher consults.
package tea

import (
	"errors"
	"fmt"
	"sort"

	"dmt/internal/kernel"
	"dmt/internal/mem"
)

// DefaultRegisters is the register-file size of the paper's implementation.
const DefaultRegisters = 16

// DefaultMergeThreshold is the maximum bubble ratio t tolerated when
// clustering adjacent VMAs (§4.2.1).
const DefaultMergeThreshold = 0.02

// ErrNoTEA is returned by the backend when no contiguous region exists.
var ErrNoTEA = errors.New("tea: cannot allocate contiguous TEA")

// Region describes one allocated TEA.
//
// NodeBase is the address at which the contained page-table nodes are
// registered in the owning table's pool (a guest-physical address under
// pvDMT); FetchBase is the address the DMT fetcher dereferences (the host-
// physical base — under pvDMT the two differ, which is exactly the
// indirection the gTEA table resolves, §4.5.1). ID is the gTEA ID for
// pvDMT, 0 otherwise.
type Region struct {
	NodeBase  mem.PAddr
	FetchBase mem.PAddr
	Frames    int
	ID        int
}

// Backend allocates TEA storage. The native backend draws from the local
// buddy allocator; the paravirtualized backend issues KVM_HC_ALLOC_TEA
// hypercalls so the host places gTEAs contiguously in host physical memory.
type Backend interface {
	AllocTEA(frames int) (Region, error)
	FreeTEA(r Region)
	// ExpandTEAInPlace grows r by extra frames at its end, returning the
	// enlarged region and whether in-place expansion succeeded.
	ExpandTEAInPlace(r Region, extra int) (Region, bool)
}

// Config controls a Manager.
type Config struct {
	Registers      int
	MergeThreshold float64
	// Sizes lists the page sizes for which TEAs are maintained; typically
	// {Size4K} or {Size4K, Size2M} with THP (§4.4).
	Sizes []mem.PageSize
	// GradualMigration leaves TEA migration to explicit PumpMigration
	// calls (a background kthread analogue); otherwise migrations
	// complete synchronously.
	GradualMigration bool
	// MinVMABytes below which no TEA is created (tiny VMAs — libraries,
	// stack — rarely cause TLB misses, §4.2).
	MinVMABytes uint64
	// OnDemand enables lazy TEA allocation with dynamic expansion (§7):
	// a mapping's TEA starts as a small window at the VMA's start and
	// grows as leaf nodes are placed, so sparsely-touched mappings never
	// pay for full eager coverage. Registers expose only the covered
	// span; beyond it translation falls back to the legacy walker.
	OnDemand bool
}

// DefaultMinVMABytes is the size below which no TEA is created: tiny VMAs
// (libraries, stacks) have high temporal locality and rarely miss the TLB
// (§4.2), so eager TEAs for them would only waste memory; their occasional
// misses fall back to the legacy walker.
const DefaultMinVMABytes = 64 << 10

// DefaultConfig returns the paper's configuration.
func DefaultConfig(thp bool) Config {
	sizes := []mem.PageSize{mem.Size4K}
	if thp {
		sizes = append(sizes, mem.Size2M)
	}
	return Config{
		Registers:      DefaultRegisters,
		MergeThreshold: DefaultMergeThreshold,
		Sizes:          sizes,
		MinVMABytes:    DefaultMinVMABytes,
	}
}

// sizeRegion is a TEA of one page size belonging to a mapping.
type sizeRegion struct {
	size     mem.PageSize
	coverVA  mem.VAddr // aligned-down start of node coverage
	region   Region
	migrate  *migration
	nodeSpan uint64 // bytes of VA covered per TEA frame (512 * size)
	// shared is non-nil when several mappings cover the same aligned
	// node span: the leaf-level page-table nodes in that span are shared
	// radix structures, so their TEA must be shared too (e.g. two VMAs
	// inside one 1 GiB region share the L2 node holding their 2M PTEs).
	shared *sharedRegion
}

// sharedRegion refcounts a TEA used by several mappings.
type sharedRegion struct {
	key  sharedKey
	refs int
}

// sharedKey identifies an aligned node span: every mapping whose coverage
// starts at the same cover VA for a given page size walks through the same
// leaf-level radix nodes, regardless of how many frames its on-demand
// window currently spans. Keying by window size as well used to split
// same-span mappings onto private regions: the first mapper's region then
// physically hosted the shared node, and its death freed storage the
// survivors' page tables still referenced.
type sharedKey struct {
	size  mem.PageSize
	cover mem.VAddr
}

type migration struct {
	to       Region
	nextSlot int
}

// Mapping is one VMA-to-TEA mapping, possibly covering a cluster of
// adjacent VMAs with small bubbles (§4.2.1), possibly one half of a split
// (§4.2.2).
type Mapping struct {
	Start, End mem.VAddr // covered span (page aligned)
	regions    map[mem.PageSize]*sizeRegion
	vmas       []*kernel.VMA
}

// Span returns the number of bytes covered.
func (m *Mapping) Span() uint64 { return uint64(m.End - m.Start) }

// sizesInOrder returns the mapping's maintained page sizes smallest-first.
// Iterating the regions map directly would randomize backend-allocation and
// stats ordering between runs, breaking run-to-run determinism.
func (m *Mapping) sizesInOrder() []mem.PageSize {
	sizes := make([]mem.PageSize, 0, len(m.regions))
	for s := range m.regions {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return sizes
}

// Contains reports whether va falls in the covered span.
func (m *Mapping) Contains(va mem.VAddr) bool { return va >= m.Start && va < m.End }

// Register is one entry of the DMT register file (Figure 13): the VMA base
// VPN and size, a per-page-size TEA base PFN (SZ field fan-out of §4.4),
// the Present bit, and the gTEA ID used by pvDMT.
type Register struct {
	Present bool
	Base    mem.VAddr
	Limit   mem.VAddr
	// FetchBase[s] is the TEA base the fetcher dereferences for page
	// size s; Covered[s] reports whether a TEA of that size exists.
	FetchBase [3]mem.PAddr
	CoverVA   [3]mem.VAddr
	Covered   [3]bool
	GTEAID    [3]int
}

// Match reports whether va is covered by the register.
func (r *Register) Match(va mem.VAddr) bool {
	return r.Present && va >= r.Base && va < r.Limit
}

// PTEAddr computes the fetch address of the last-level PTE for va at page
// size s — the two-step arithmetic of Figure 7: VPN offset inside the VMA,
// then indexing into the TEA.
func (r *Register) PTEAddr(s mem.PageSize) func(va mem.VAddr) mem.PAddr {
	return func(va mem.VAddr) mem.PAddr { return r.PTEAddrAt(s, va) }
}

// PTEAddrAt is PTEAddr without the closure: the walk hot path calls it
// directly so the fetch-address arithmetic stays allocation-free.
func (r *Register) PTEAddrAt(s mem.PageSize, va mem.VAddr) mem.PAddr {
	idx := (uint64(va) - uint64(r.CoverVA[s])) >> s.Shift()
	return r.FetchBase[s] + mem.PAddr(idx*mem.PTEBytes)
}

// Stats counts TEA-management activity for the §6.3 overhead analysis.
type Stats struct {
	Created        uint64
	Deleted        uint64
	Merges         uint64
	Splits         uint64
	ExpandsInPlace uint64
	Migrations     uint64
	MigratedNodes  uint64
	AllocFailures  uint64
	FramesLive     int64
	// EvacuatedNodes counts nodes walked out of TEA storage at release
	// because a neighbouring mapping still shared them.
	EvacuatedNodes uint64
	// OrphanedRegions counts releases quarantined because evacuation
	// could not complete.
	OrphanedRegions uint64
}

// Manager owns every mapping and TEA of one address space and implements
// kernel.MMHooks.
type Manager struct {
	cfg      Config
	as       *kernel.AddressSpace
	backend  Backend
	mappings []*Mapping // sorted by Start
	regs     []Register
	shared   map[sharedKey]*sharedEntry
	// orphans holds quarantined regions: storage whose node evacuation
	// failed at release time and which must never be recycled while a
	// page table can still reference it. Frames stay in FramesLive.
	orphans []Region

	Stats Stats
}

type sharedEntry struct {
	region Region
	ref    *sharedRegion
}

var _ kernel.MMHooks = (*Manager)(nil)

// NewManager creates a TEA manager for as, drawing TEA storage from the
// backend. Install it with as.SetHooks before creating VMAs.
func NewManager(as *kernel.AddressSpace, backend Backend, cfg Config) *Manager {
	if cfg.Registers == 0 {
		cfg.Registers = DefaultRegisters
	}
	if cfg.MergeThreshold == 0 {
		cfg.MergeThreshold = DefaultMergeThreshold
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []mem.PageSize{mem.Size4K}
	}
	return &Manager{
		cfg:     cfg,
		as:      as,
		backend: backend,
		regs:    make([]Register, cfg.Registers),
		shared:  map[sharedKey]*sharedEntry{},
	}
}

// Registers returns the current register file, reloaded from the mapping
// set — the task-state registers the DMT fetcher reads (§4.1).
func (m *Manager) Registers() []Register { return m.regs }

// Mappings returns all live VMA-to-TEA mappings.
func (m *Manager) Mappings() []*Mapping { return m.mappings }

// nodeSpanOf returns the VA bytes covered by one 4 KiB TEA frame for size s:
// a frame holds 512 PTEs, each covering one page of size s.
func nodeSpanOf(s mem.PageSize) uint64 { return mem.EntriesPerNode * s.Bytes() }

// framesFor returns the TEA frame count needed to cover [start, end) with
// size-s PTEs, after aligning outward to node coverage.
func framesFor(start, end mem.VAddr, s mem.PageSize) (mem.VAddr, int) {
	span := nodeSpanOf(s)
	a := mem.AlignDown(start, span)
	b := mem.AlignUp(end, span)
	return a, int(uint64(b-a) / span)
}

// ---- kernel.MMHooks ----

// VMACreated creates a VMA-to-TEA mapping for the new VMA, merging it into
// an adjacent cluster when the bubble ratio stays below the threshold.
func (m *Manager) VMACreated(v *kernel.VMA) {
	if v.Size() < m.cfg.MinVMABytes {
		return
	}
	if merged := m.tryMerge(v); merged {
		// §4.2.1: "This process is performed iteratively until the
		// ratio is larger than t" — keep folding neighbours into the
		// cluster while the bubble budget allows.
		for m.tryMergeNeighbours() {
		}
		m.reloadRegisters()
		return
	}
	mp := &Mapping{Start: v.Start, End: v.End, regions: map[mem.PageSize]*sizeRegion{}, vmas: []*kernel.VMA{v}}
	if err := m.allocRegions(mp); err != nil {
		m.Stats.AllocFailures++
		// Splitting path (§4.2.2): halve until allocation succeeds.
		m.splitAndAlloc(v, v.Start, v.End, 0)
		m.reloadRegisters()
		return
	}
	m.insertMapping(mp)
	m.Stats.Created++
	m.reloadRegisters()
}

// VMAResized expands or shrinks the covering TEAs (§4.2.3). Split VMAs
// (§4.2.2) are covered by several mappings: growth extends the tail
// mapping; a shrink truncates the mapping straddling the new end and drops
// mappings lying wholly beyond it.
func (m *Manager) VMAResized(v *kernel.VMA, oldStart, oldEnd mem.VAddr) {
	var owned []*Mapping
	for _, mp := range m.mappings {
		for _, mv := range mp.vmas {
			if mv == v {
				owned = append(owned, mp)
				break
			}
		}
	}
	if len(owned) == 0 {
		// The VMA had no TEA (e.g. below MinVMABytes); treat growth as
		// a fresh creation.
		if v.End-v.Start >= mem.VAddr(m.cfg.MinVMABytes) {
			m.VMACreated(v)
		}
		return
	}
	if v.End > oldEnd {
		// Grow: extend the mapping covering the old tail.
		tail := owned[0]
		for _, mp := range owned {
			if mp.End > tail.End {
				tail = mp
			}
		}
		if v.End > tail.End {
			m.expandMapping(tail, v.End)
		}
	} else if v.End < oldEnd {
		var drop []*Mapping
		for _, mp := range owned {
			switch {
			case mp.Start >= v.End && len(mp.vmas) == 1:
				drop = append(drop, mp)
			case mp.End > v.End && mp.Start < v.End && len(mp.vmas) == 1:
				m.shrinkMapping(mp, v.End)
			}
		}
		for _, mp := range drop {
			m.dropMapping(mp)
		}
	}
	m.reloadRegisters()
}

// VMADeleted frees the VMA's TEAs (or detaches it from its cluster). A
// split VMA (§4.2.2) is covered by several mappings; all of them are
// visited.
func (m *Manager) VMADeleted(v *kernel.VMA) {
	var drop []*Mapping
	for _, mp := range m.mappings {
		for i, mv := range mp.vmas {
			if mv == v {
				mp.vmas = append(mp.vmas[:i], mp.vmas[i+1:]...)
				break
			}
		}
		if len(mp.vmas) == 0 {
			drop = append(drop, mp)
		}
	}
	for _, mp := range drop {
		m.dropMapping(mp)
	}
	m.reloadRegisters()
}

// PlaceNode places leaf-level page-table nodes at their TEA slots (§4.3).
func (m *Manager) PlaceNode(level int, va mem.VAddr) (mem.PAddr, bool) {
	if level < 1 || level > 2 {
		return 0, false
	}
	size := mem.PageSize(level - 1)
	mp := m.mappingAt(va)
	if mp == nil {
		return 0, false
	}
	sr, ok := mp.regions[size]
	if !ok {
		return 0, false
	}
	if m.cfg.OnDemand && !m.ensureCovered(mp, sr, va) {
		return 0, false // buddy placement; the legacy walker serves it
	}
	// During gradual migration new nodes go straight to the new region.
	base := sr.region.NodeBase
	if sr.migrate != nil {
		base = sr.migrate.to.NodeBase
	}
	slot := (uint64(va) - uint64(sr.coverVA)) / sr.nodeSpan
	if int(slot) >= sr.region.Frames && sr.migrate == nil {
		return 0, false // beyond the covered window
	}
	return base + mem.PAddr(slot*mem.PageBytes4K), true
}

// OwnsNode reports whether pa lies inside any TEA (node-address side).
func (m *Manager) OwnsNode(pa mem.PAddr) bool {
	for _, mp := range m.mappings {
		for _, sr := range mp.regions {
			if within(pa, sr.region.NodeBase, sr.region.Frames) {
				return true
			}
			if sr.migrate != nil && within(pa, sr.migrate.to.NodeBase, sr.migrate.to.Frames) {
				return true
			}
		}
	}
	for _, r := range m.orphans {
		if within(pa, r.NodeBase, r.Frames) {
			return true
		}
	}
	return false
}

func within(pa, base mem.PAddr, frames int) bool {
	return pa >= base && pa < base+mem.PAddr(uint64(frames)<<mem.PageShift4K)
}

// ---- mapping bookkeeping ----

func (m *Manager) mappingAt(va mem.VAddr) *Mapping {
	i := sort.Search(len(m.mappings), func(i int) bool { return m.mappings[i].End > va })
	if i < len(m.mappings) && m.mappings[i].Contains(va) {
		return m.mappings[i]
	}
	return nil
}

func (m *Manager) insertMapping(mp *Mapping) {
	i := sort.Search(len(m.mappings), func(i int) bool { return m.mappings[i].Start >= mp.Start })
	m.mappings = append(m.mappings, nil)
	copy(m.mappings[i+1:], m.mappings[i:])
	m.mappings[i] = mp
}

func (m *Manager) removeMapping(mp *Mapping) {
	for i, x := range m.mappings {
		if x == mp {
			m.mappings = append(m.mappings[:i], m.mappings[i+1:]...)
			return
		}
	}
}

func (m *Manager) allocRegions(mp *Mapping) error {
	return m.allocRegionsCovering(mp, nil)
}

// allocRegionsCovering is allocRegions with a per-size floor on the initial
// on-demand window: when merging existing mappings, every node already
// placed in the old TEAs must have a slot in the new one, so the window
// may not start smaller than the coverage the old regions had reached.
func (m *Manager) allocRegionsCovering(mp *Mapping, coverEnd map[mem.PageSize]mem.VAddr) error {
	done := make([]*sizeRegion, 0, len(m.cfg.Sizes))
	for _, s := range m.cfg.Sizes {
		cover, frames := framesFor(mp.Start, mp.End, s)
		if m.cfg.OnDemand && frames > OnDemandInitialFrames {
			frames = OnDemandInitialFrames
			if ce, ok := coverEnd[s]; ok && ce > cover {
				if _, need := framesFor(mp.Start, ce, s); need > frames {
					frames = need
				}
			}
			if _, full := framesFor(mp.Start, mp.End, s); frames > full {
				frames = full
			}
		}
		key := sharedKey{size: s, cover: cover}
		if se, ok := m.shared[key]; ok && se.region.Frames >= frames {
			// Another mapping covers the same aligned node span: the
			// underlying leaf nodes are shared radix structures, so share
			// the TEA instead of fighting over node placement. Join only
			// when the existing window already covers this mapping's need
			// — growing a region out from under its sharers would leave
			// them with stale geometry. A mapping that needs more gets a
			// private region; nodes the span still shares are rescued by
			// evacuation when either region is released.
			se.ref.refs++
			mp.regions[s] = &sizeRegion{size: s, coverVA: cover, region: se.region, nodeSpan: nodeSpanOf(s), shared: se.ref}
			continue
		}
		r, err := m.backend.AllocTEA(frames)
		if err != nil {
			for _, sr := range done {
				m.releaseRegion(sr)
			}
			return err
		}
		sr := &sizeRegion{size: s, coverVA: cover, region: r, nodeSpan: nodeSpanOf(s)}
		if _, taken := m.shared[key]; !taken {
			ref := &sharedRegion{key: key, refs: 1}
			m.shared[key] = &sharedEntry{region: r, ref: ref}
			sr.shared = ref
		}
		mp.regions[s] = sr
		done = append(done, sr)
		m.Stats.FramesLive += int64(frames)
	}
	return nil
}

// releaseRegion drops one reference to a sizeRegion's TEA, freeing it when
// unshared.
func (m *Manager) releaseRegion(sr *sizeRegion) {
	if sr.shared != nil {
		sr.shared.refs--
		if sr.shared.refs > 0 {
			return
		}
		// Only remove the registry entry if it still belongs to this
		// sharedRegion: after a migration completes, the key may have been
		// re-taken by a freshly-allocated region with the same geometry,
		// and deleting that entry would strand its owner's refcount.
		if se, ok := m.shared[sr.shared.key]; ok && se.ref == sr.shared {
			delete(m.shared, sr.shared.key)
		}
	}
	m.freeStorage(sr, sr.region)
}

// freeStorage returns a region's frames to the backend after evacuating
// any page-table node still living inside them. A TEA slot's node can
// outlive the mapping that placed it: a level-2 node spans 1 GiB of VA, so
// every VMA under the same upper-level entry walks through it, and it must
// survive until the last of them is unmapped. Each straggler is relocated
// to a kernel-allocated frame with the same parent-rewrite primitive as
// §4.3 migration; once the region is gone OwnsNode stops claiming the new
// frame and normal teardown frees it like any buddy-placed node. When
// evacuation cannot complete (allocator exhaustion), the storage is
// quarantined instead of freed — a bounded, accounted leak is strictly
// better than recycling frames a live page table still references.
func (m *Manager) freeStorage(sr *sizeRegion, r Region) {
	for i := 0; i < r.Frames; i++ {
		pa := r.NodeBase + mem.PAddr(uint64(i)<<mem.PageShift4K)
		if _, live := m.as.Pool.NodeAt(pa); !live {
			continue
		}
		va := sr.coverVA + mem.VAddr(uint64(i)*sr.nodeSpan)
		target, err := m.as.AllocNodeFrame()
		if err != nil {
			m.orphans = append(m.orphans, r)
			m.Stats.OrphanedRegions++
			return
		}
		if m.as.PT.RelocateNode(va, sr.size.LeafLevel(), target) != nil {
			m.as.FreeNodeFrame(target)
			m.orphans = append(m.orphans, r)
			m.Stats.OrphanedRegions++
			return
		}
		m.Stats.EvacuatedNodes++
	}
	m.backend.FreeTEA(r)
	m.Stats.FramesLive -= int64(r.Frames)
}

// OrphanedFrames returns the frame count of quarantined regions — storage
// that could not be evacuated and is kept claimed rather than recycled.
func (m *Manager) OrphanedFrames() int {
	frames := 0
	for _, r := range m.orphans {
		frames += r.Frames
	}
	return frames
}

// detachSharedKey removes sr's entry from the shared-region registry at
// migration start: the registry advertises the *old* region, and a mapping
// joining it mid-migration would take a reference on storage that
// PumpMigration is about to free. The entry is restored (pointing at the
// new region) when the migration completes.
func (m *Manager) detachSharedKey(sr *sizeRegion) {
	if sr.shared == nil {
		return
	}
	if se, ok := m.shared[sr.shared.key]; ok && se.ref == sr.shared {
		delete(m.shared, sr.shared.key)
	}
}

func (m *Manager) dropMapping(mp *Mapping) {
	for _, s := range mp.sizesInOrder() {
		sr := mp.regions[s]
		m.releaseRegion(sr)
		if sr.migrate != nil {
			m.freeStorage(sr, sr.migrate.to)
		}
	}
	m.removeMapping(mp)
	m.Stats.Deleted++
}

// splitAndAlloc implements §4.2.2: when a TEA allocation fails, cover the
// VMA with two half-size mappings, splitting recursively until allocation
// succeeds (or the pieces reach one node span, at which point the remainder
// is left to the legacy walker).
func (m *Manager) splitAndAlloc(v *kernel.VMA, start, end mem.VAddr, depth int) {
	if uint64(end-start) <= nodeSpanOf(mem.Size4K) || depth > 16 {
		return
	}
	mid := mem.AlignDown(start+(end-start)/2, mem.PageBytes2M)
	if mid <= start || mid >= end {
		return
	}
	m.Stats.Splits++
	for _, half := range [][2]mem.VAddr{{start, mid}, {mid, end}} {
		mp := &Mapping{Start: half[0], End: half[1], regions: map[mem.PageSize]*sizeRegion{}, vmas: []*kernel.VMA{v}}
		if err := m.allocRegions(mp); err != nil {
			m.Stats.AllocFailures++
			m.splitAndAlloc(v, half[0], half[1], depth+1)
			continue
		}
		m.insertMapping(mp)
		m.Stats.Created++
	}
}

// tryMerge attempts to cluster v with the nearest existing mapping when
// the resulting bubble ratio is below the threshold (§4.2.1). It returns
// whether a merge happened.
func (m *Manager) tryMerge(v *kernel.VMA) bool {
	if m.cfg.MergeThreshold <= 0 {
		return false
	}
	var best *Mapping
	var bestRatio = m.cfg.MergeThreshold
	for _, mp := range m.mappings {
		var gap, span uint64
		switch {
		case mp.End <= v.Start:
			gap = uint64(v.Start - mp.End)
			span = uint64(v.End - mp.Start)
		case v.End <= mp.Start:
			gap = uint64(mp.Start - v.End)
			span = uint64(mp.End - v.Start)
		default:
			continue
		}
		if span == 0 {
			continue
		}
		ratio := float64(gap) / float64(span)
		if ratio <= bestRatio {
			best, bestRatio = mp, ratio
		}
	}
	if best == nil {
		return false
	}
	newStart, newEnd := best.Start, best.End
	if v.Start < newStart {
		newStart = v.Start
	}
	if v.End > newEnd {
		newEnd = v.End
	}
	// Build the merged mapping with fresh TEAs, then migrate the old
	// TEA contents into it (§4.2.1: expansion + migration).
	merged := &Mapping{Start: newStart, End: newEnd, regions: map[mem.PageSize]*sizeRegion{},
		vmas: append(append([]*kernel.VMA{}, best.vmas...), v)}
	if err := m.allocRegionsCovering(merged, coverageNeeds(best)); err != nil {
		m.Stats.AllocFailures++
		return false
	}
	m.migrateMappingInto(best, merged)
	m.removeMapping(best)
	m.insertMapping(merged)
	m.Stats.Merges++
	return true
}

// tryMergeNeighbours merges one pair of adjacent mappings whose combined
// bubble ratio stays below the threshold; it reports whether a merge
// happened (callers loop until it returns false).
func (m *Manager) tryMergeNeighbours() bool {
	if m.cfg.MergeThreshold <= 0 {
		return false
	}
	for i := 0; i+1 < len(m.mappings); i++ {
		a, b := m.mappings[i], m.mappings[i+1]
		gap := uint64(b.Start - a.End)
		span := uint64(b.End - a.Start)
		if span == 0 || float64(gap)/float64(span) > m.cfg.MergeThreshold {
			continue
		}
		merged := &Mapping{Start: a.Start, End: b.End, regions: map[mem.PageSize]*sizeRegion{},
			vmas: append(append([]*kernel.VMA{}, a.vmas...), b.vmas...)}
		if err := m.allocRegionsCovering(merged, coverageNeeds(a, b)); err != nil {
			m.Stats.AllocFailures++
			return false
		}
		m.migrateMappingInto(a, merged)
		m.migrateMappingInto(b, merged)
		m.removeMapping(a)
		m.removeMapping(b)
		m.insertMapping(merged)
		m.Stats.Merges++
		return true
	}
	return false
}

// migrateMappingInto relocates every live node of old's TEAs into the
// corresponding slots of the freshly-allocated regions of merged.
func (m *Manager) migrateMappingInto(old, merged *Mapping) {
	for _, s := range old.sizesInOrder() {
		osr := old.regions[s]
		nsr, ok := merged.regions[s]
		if !ok {
			// No counterpart in the merged mapping: release through the
			// refcount — freeing the backend region directly would strand
			// any mapping still sharing it.
			m.releaseRegion(osr)
			if osr.migrate != nil {
				m.freeStorage(osr, osr.migrate.to)
			}
			continue
		}
		if osr.shared != nil && osr.shared.refs > 1 {
			// Shared with another mapping: leave the region (and its
			// nodes) in place; the merged TEA serves future placements.
			m.releaseRegion(osr)
			continue
		}
		// An in-flight migration means nodes can live in either region —
		// PlaceNode routes new nodes to migrate.to, which may be larger
		// than the old window. relocateNode finds each node wherever it
		// is, so sweep the union of both windows.
		slots := osr.region.Frames
		if osr.migrate != nil && osr.migrate.to.Frames > slots {
			slots = osr.migrate.to.Frames
		}
		for slot := 0; slot < slots; slot++ {
			va := osr.coverVA + mem.VAddr(uint64(slot)*osr.nodeSpan)
			newSlot := (uint64(va) - uint64(nsr.coverVA)) / nsr.nodeSpan
			if int(newSlot) >= nsr.region.Frames {
				// The merged window does not reach this slot (it should,
				// by allocRegionsCovering); never relocate into frames the
				// region does not own.
				continue
			}
			target := nsr.region.NodeBase + mem.PAddr(newSlot*mem.PageBytes4K)
			if m.relocateNode(s, va, target) {
				m.Stats.MigratedNodes++
			}
		}
		m.releaseRegion(osr)
		if osr.migrate != nil {
			// The abandoned migration target should hold no nodes any
			// more (the sweep above moved them); freeStorage evacuates
			// any relocation-failure stragglers.
			m.freeStorage(osr, osr.migrate.to)
			osr.migrate = nil
		}
		m.Stats.Migrations++
	}
}

// coverageNeeds returns, per page size, the furthest VA any of the given
// mappings' regions (or in-flight migration targets) already cover — the
// floor a merged on-demand window must honour so existing nodes keep a slot.
func coverageNeeds(ms ...*Mapping) map[mem.PageSize]mem.VAddr {
	need := map[mem.PageSize]mem.VAddr{}
	for _, mp := range ms {
		for s, sr := range mp.regions {
			if sr.shared != nil && sr.shared.refs > 1 {
				continue // left in place, not migrated into the merge
			}
			ce := sr.coveredEnd()
			if sr.migrate != nil {
				if e := sr.coverVA + mem.VAddr(uint64(sr.migrate.to.Frames)*sr.nodeSpan); e > ce {
					ce = e
				}
			}
			if ce > need[s] {
				need[s] = ce
			}
		}
	}
	return need
}

// relocateNode moves the level-(s+1) node covering va to target if one
// exists there.
func (m *Manager) relocateNode(s mem.PageSize, va mem.VAddr, target mem.PAddr) bool {
	level := s.LeafLevel()
	node := m.as.PT.NodeForLevel(va, level)
	if node == nil || node.Base == target {
		return false
	}
	if level == 1 {
		return m.as.PT.RelocateL1(va, target) == nil
	}
	// Level-2 nodes: the table API relocates L1; emulate for L2 via the
	// same parent-rewrite primitive.
	return m.as.PT.RelocateNode(va, level, target) == nil
}

// expandMapping grows the mapping's TEAs to cover newEnd (§4.2.3), first
// in place, then by migration to a larger region (§4.3).
func (m *Manager) expandMapping(mp *Mapping, newEnd mem.VAddr) {
	for _, s := range mp.sizesInOrder() {
		sr := mp.regions[s]
		_, needFrames := framesFor(mp.Start, newEnd, s)
		extra := needFrames - sr.region.Frames
		if extra <= 0 {
			continue
		}
		if sr.shared != nil && sr.shared.refs > 1 {
			// Another mapping still references this TEA; growing it in
			// place would invalidate the sharer's coverage. The grown
			// tail falls back to the legacy walker until the sharer
			// releases the region.
			m.Stats.AllocFailures++
			continue
		}
		if grown, ok := m.backend.ExpandTEAInPlace(sr.region, extra); ok {
			m.updateSharedRegion(sr, grown)
			m.Stats.ExpandsInPlace++
			m.Stats.FramesLive += int64(extra)
			continue
		}
		newRegion, err := m.backend.AllocTEA(needFrames)
		if err != nil {
			m.Stats.AllocFailures++
			continue // stale TEA keeps covering the old span; rest falls back
		}
		m.Stats.FramesLive += int64(needFrames)
		m.detachSharedKey(sr)
		sr.migrate = &migration{to: newRegion}
		m.Stats.Migrations++
		if !m.cfg.GradualMigration {
			m.PumpMigration(1 << 30)
		}
	}
	mp.End = newEnd
}

func (m *Manager) shrinkMapping(mp *Mapping, newEnd mem.VAddr) {
	// TEA frames beyond the new coverage stay allocated until deletion
	// (the paper shrinks lazily; splitting frames out of a contiguous
	// region would defeat contiguity anyway). Only the span changes, so
	// register coverage and bounds checks tighten immediately.
	mp.End = newEnd
}

// PumpMigration advances all in-flight gradual TEA migrations by at most
// batch node relocations (the background-worker analogue of §4.3). While a
// region is migrating its register entry is absent (P-bit clear), so
// translations fall back to the legacy walker. It returns the number of
// nodes moved.
func (m *Manager) PumpMigration(batch int) int {
	moved := 0
	for _, mp := range m.mappings {
		for _, s := range mp.sizesInOrder() {
			sr := mp.regions[s]
			if sr.migrate == nil {
				continue
			}
			mg := sr.migrate
			for mg.nextSlot < sr.region.Frames && moved < batch {
				va := sr.coverVA + mem.VAddr(uint64(mg.nextSlot)*sr.nodeSpan)
				slot := (uint64(va) - uint64(sr.coverVA)) / sr.nodeSpan
				target := mg.to.NodeBase + mem.PAddr(slot*mem.PageBytes4K)
				if m.relocateNode(s, va, target) {
					m.Stats.MigratedNodes++
				}
				mg.nextSlot++
				moved++
			}
			if mg.nextSlot >= sr.region.Frames {
				old := sr.region
				if sr.shared != nil {
					// The registry entry was detached when the migration
					// started (so no mapping could join the doomed old
					// region); re-register pointing at the new storage
					// unless a fresh allocation took the key meanwhile.
					if _, taken := m.shared[sr.shared.key]; !taken {
						m.shared[sr.shared.key] = &sharedEntry{region: mg.to, ref: sr.shared}
					}
				}
				// A node relocation can fail (an occupied target slot);
				// whatever still lives in the old storage must be walked
				// out to vanilla kernel frames before the frames recycle.
				m.freeStorage(sr, old)
				sr.region = mg.to
				sr.migrate = nil
			}
		}
	}
	if moved > 0 {
		m.reloadRegisters()
	}
	return moved
}

// MigrationsPending reports whether any TEA migration is in flight.
func (m *Manager) MigrationsPending() bool {
	for _, mp := range m.mappings {
		for _, sr := range mp.regions {
			if sr.migrate != nil {
				return true
			}
		}
	}
	return false
}

// reloadRegisters re-sorts mappings by covered size and loads the largest
// into the register file (§4.2: large VMAs cause the page-table walks;
// small hot VMAs rarely miss the TLB).
func (m *Manager) reloadRegisters() {
	order := make([]*Mapping, len(m.mappings))
	copy(order, m.mappings)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Span() != order[j].Span() {
			return order[i].Span() > order[j].Span()
		}
		return order[i].Start < order[j].Start
	})
	for i := range m.regs {
		m.regs[i] = Register{}
	}
	n := 0
	for _, mp := range order {
		if n == len(m.regs) {
			break
		}
		r := Register{Present: true, Base: mp.Start, Limit: mp.End}
		for _, s := range mp.sizesInOrder() {
			sr := mp.regions[s]
			if sr.migrate != nil {
				// P-bit clear during migration: skip this size; if no
				// size remains the register is not loaded.
				continue
			}
			r.FetchBase[s] = sr.region.FetchBase
			r.CoverVA[s] = sr.coverVA
			r.Covered[s] = true
			r.GTEAID[s] = sr.region.ID
			// On-demand regions expose only their covered window.
			if ce := sr.coveredEnd(); ce < r.Limit {
				r.Limit = ce
			}
		}
		any := false
		for _, c := range r.Covered {
			any = any || c
		}
		if !any {
			continue
		}
		m.regs[n] = r
		n++
	}
}

// Lookup finds the register covering va, mirroring the hardware filter in
// Figure 10. It returns nil when no register matches (fallback path).
func (m *Manager) Lookup(va mem.VAddr) *Register {
	for i := range m.regs {
		if m.regs[i].Match(va) {
			return &m.regs[i]
		}
	}
	return nil
}

// String summarizes the manager state.
func (m *Manager) String() string {
	return fmt.Sprintf("tea.Manager{mappings=%d, regs=%d, live=%d frames}",
		len(m.mappings), m.cfg.Registers, m.Stats.FramesLive)
}

// SharedCount returns the number of distinct TEA regions currently shared
// or singly owned (diagnostics).
func (m *Manager) SharedCount() int { return len(m.shared) }
