package tea

import (
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// fuzzMachine drives a manager through the byte-encoded op stream: each op
// consumes three bytes (opcode, two args) and exercises VMA create, grow,
// shrink, delete, touch, THP churn, and migration. It returns the manager
// and address space for invariant checks.
func fuzzMachine(t *testing.T, data []byte, thp bool) (*Manager, *kernel.AddressSpace) {
	t.Helper()
	pa := phys.New(0, 1<<16)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{THP: thp})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(thp)
	cfg.GradualMigration = true // keep migration windows open across ops
	mgr := NewManager(as, NewPhysBackend(pa), cfg)
	as.SetHooks(mgr)

	const base = mem.VAddr(0x4000_0000)
	const slotSpan = mem.VAddr(64 << 20)
	for i := 0; i+2 < len(data); i += 3 {
		op, a, b := data[i], uint64(data[i+1]), uint64(data[i+2])
		slot := mem.VAddr(a%24) * slotSpan
		switch op % 8 {
		case 0: // create
			length := (b%16 + 1) << 21 // 2..32 MiB, 2M aligned
			_, _ = as.MMap(base+slot, length, kernel.VMAHeap, "fuzz")
		case 1: // delete
			if v, ok := as.FindVMA(base + slot); ok {
				_ = as.MUnmap(v)
			}
		case 2: // grow
			if v, ok := as.FindVMA(base + slot); ok {
				_ = as.Grow(v, v.End+mem.VAddr((b%8+1)<<21))
			}
		case 3: // shrink
			if v, ok := as.FindVMA(base + slot); ok {
				newEnd := v.Start + mem.VAddr((b%4+1)<<21)
				if newEnd < v.End {
					_ = as.Shrink(v, newEnd)
				}
			}
		case 4: // touch pages
			if v, ok := as.FindVMA(base + slot); ok {
				off := mem.VAddr(b<<12) % mem.VAddr(v.Size())
				_, _ = as.Touch(v.Start+off, true)
			}
		case 5: // THP churn
			if v, ok := as.FindVMA(base + slot); ok {
				if b%2 == 0 {
					as.PromoteTHP(v)
				} else {
					_ = as.SplitHugePage(v, v.Start+mem.VAddr(b<<12)%mem.VAddr(v.Size()))
				}
			}
		case 6: // migration churn
			if b%2 == 0 {
				mgr.StartMigration(base + slot)
			} else {
				mgr.PumpMigration(int(b%7) + 1)
			}
		case 7: // unmap a single page
			if v, ok := as.FindVMA(base + slot); ok {
				off := mem.VAddr(b<<12) % mem.VAddr(v.Size())
				_ = as.UnmapPage(v, v.Start+off)
			}
		}
	}
	return mgr, as
}

// checkRegisterContainment asserts every loaded register only ever
// computes PTE addresses inside the TEA region that owns its VMA's nodes —
// the isolation property the DMT fetcher's bounds check relies on (§4.5.2).
func checkRegisterContainment(t *testing.T, mgr *Manager) {
	t.Helper()
	for _, reg := range mgr.Registers() {
		if !reg.Present {
			continue
		}
		for _, s := range []mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G} {
			if !reg.Covered[s] {
				continue
			}
			lo, hi := pteAddrBounds(t, mgr, reg, s)
			span := mem.VAddr(s.Bytes() / 8 * mem.PageBytes4K) // VA per TEA frame
			for va := reg.Base; va < reg.Limit; va += span / 2 {
				addr := reg.PTEAddr(s)(va)
				if addr < lo || addr >= hi {
					t.Fatalf("PTEAddr(%v)(%#x) = %#x outside owning region [%#x, %#x)",
						s, uint64(va), uint64(addr), uint64(lo), uint64(hi))
				}
				if !mgr.OwnsNode(addr) {
					t.Fatalf("PTEAddr(%v)(%#x) = %#x not owned by any TEA region",
						s, uint64(va), uint64(addr))
				}
			}
		}
	}
}

// pteAddrBounds returns the physical bounds of the TEA region serving
// (reg, size), located through the introspection API.
func pteAddrBounds(t *testing.T, mgr *Manager, reg Register, s mem.PageSize) (mem.PAddr, mem.PAddr) {
	t.Helper()
	for _, mp := range mgr.Mappings() {
		if mp.Start != reg.Base {
			continue
		}
		for _, ri := range mp.SizeRegions() {
			if ri.Size != s {
				continue
			}
			lo := ri.Region.NodeBase
			return lo, lo + mem.PAddr(uint64(ri.Region.Frames)<<mem.PageShift4K)
		}
	}
	t.Fatalf("register with base %#x has no backing mapping region for %v", uint64(reg.Base), s)
	return 0, 0
}

// FuzzManagerLookup drives random VMA lifecycles and asserts that Lookup
// answers are always consistent: a hit must come from the mapping that
// contains the address, and its covered sizes must have live TEA regions.
func FuzzManagerLookup(f *testing.F) {
	f.Add([]byte{0, 0, 4, 4, 0, 9, 0, 1, 8, 2, 0, 3, 6, 0, 0, 6, 0, 1}, true)
	f.Add([]byte{0, 1, 15, 0, 2, 2, 3, 1, 0, 1, 1, 0, 5, 0, 2, 7, 0, 7}, false)
	f.Add([]byte{0, 0, 1, 2, 0, 7, 6, 0, 2, 6, 0, 3, 1, 0, 0, 0, 0, 0}, true)
	f.Fuzz(func(t *testing.T, data []byte, thp bool) {
		mgr, as := fuzzMachine(t, data, thp)
		for _, v := range as.VMAs() {
			for _, va := range []mem.VAddr{v.Start, v.Start + mem.VAddr(v.Size()/2), v.End - 1} {
				reg := mgr.Lookup(va)
				if reg == nil {
					continue // spilled or migrating: legal, falls back
				}
				if va < reg.Base || va >= reg.Limit {
					t.Fatalf("Lookup(%#x) returned register covering [%#x, %#x)",
						uint64(va), uint64(reg.Base), uint64(reg.Limit))
				}
			}
		}
		// Addresses no VMA covers must miss.
		for _, va := range []mem.VAddr{0x1000, 0x7fff_ffff_f000} {
			if _, ok := as.FindVMA(va); !ok && mgr.Lookup(va) != nil {
				t.Fatalf("Lookup(%#x) hit outside any VMA", uint64(va))
			}
		}
		checkRegisterContainment(t, mgr)
	})
}

// FuzzRegisterPTEAddr hammers the arithmetic PTE-address computation of
// every loaded register across its whole covered span (including the very
// last byte) and asserts it never addresses outside the owning TEA region.
func FuzzRegisterPTEAddr(f *testing.F) {
	f.Add([]byte{0, 0, 9, 0, 1, 3, 2, 0, 5, 4, 0, 40}, uint64(0x3fff), true)
	f.Add([]byte{0, 2, 2, 6, 0, 0, 6, 0, 1, 5, 0, 4}, uint64(1<<21), false)
	f.Fuzz(func(t *testing.T, data []byte, off uint64, thp bool) {
		mgr, _ := fuzzMachine(t, data, thp)
		for _, reg := range mgr.Registers() {
			if !reg.Present {
				continue
			}
			span := uint64(reg.Limit - reg.Base)
			va := reg.Base + mem.VAddr(off%span)
			for _, s := range []mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G} {
				if !reg.Covered[s] {
					continue
				}
				lo, hi := pteAddrBounds(t, mgr, reg, s)
				for _, probe := range []mem.VAddr{va, reg.Base, reg.Limit - 1} {
					addr := reg.PTEAddr(s)(probe)
					if addr < lo || addr >= hi {
						t.Fatalf("PTEAddr(%v)(%#x) = %#x outside owning region [%#x, %#x)",
							s, uint64(probe), uint64(addr), uint64(lo), uint64(hi))
					}
				}
			}
		}
	})
}
