package tea

import (
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// PhysBackend is the native TEA backend: TEAs are carved out of the local
// buddy allocator with the contiguous page allocator, exactly as DMT-Linux
// uses alloc_contig_pages (§4.6.2). In a guest without paravirtualization
// this yields guest-physically-contiguous gTEAs (plain DMT, §3.1).
type PhysBackend struct {
	a *phys.Allocator

	// Compactions counts defragmentation passes triggered by failed
	// contiguous allocations.
	Compactions uint64
}

// NewPhysBackend wraps a buddy allocator as a TEA backend.
func NewPhysBackend(a *phys.Allocator) *PhysBackend { return &PhysBackend{a: a} }

// AllocTEA allocates a physically-contiguous TEA. On failure it instructs
// the allocator to defragment (§4.3: "DMT-Linux also instructs the memory
// allocator to defragment the memory to resolve moveable fragmentations")
// and retries once before reporting ErrNoTEA — which then triggers the
// §4.2.2 mapping split.
func (b *PhysBackend) AllocTEA(frames int) (Region, error) {
	pa, err := b.a.AllocContig(frames, phys.KindPageTable)
	if err != nil {
		if b.a.Compact() == 0 {
			return Region{}, ErrNoTEA
		}
		b.Compactions++
		pa, err = b.a.AllocContig(frames, phys.KindPageTable)
		if err != nil {
			return Region{}, ErrNoTEA
		}
	}
	return Region{NodeBase: pa, FetchBase: pa, Frames: frames}, nil
}

// FreeTEA returns the region to the buddy allocator.
func (b *PhysBackend) FreeTEA(r Region) {
	b.a.FreeContig(r.NodeBase, r.Frames)
}

// ExpandTEAInPlace grows the region at its end when the following frames
// are free.
func (b *PhysBackend) ExpandTEAInPlace(r Region, extra int) (Region, bool) {
	if !b.a.ExpandContigInPlace(r.NodeBase, r.Frames, extra) {
		return r, false
	}
	r.Frames += extra
	return r, true
}

var _ Backend = (*PhysBackend)(nil)

// SlotAddr is a convenience for tests: the fetch address of the PTE for va
// given a region covering from coverVA at page size s.
func SlotAddr(r Region, coverVA, va mem.VAddr, s mem.PageSize) mem.PAddr {
	idx := (uint64(va) - uint64(coverVA)) >> s.Shift()
	return r.FetchBase + mem.PAddr(idx*mem.PTEBytes)
}
