package tea

import (
	"dmt/internal/mem"
)

// On-demand TEA allocation with dynamic expansion — the §7 extension the
// paper sketches for workloads where eager allocation is wasteful ("e.g.,
// mmapping a 1TB file to memory but accessing a small portion of it").
//
// In this mode a mapping's TEA initially covers only a small window at the
// VMA's start; the first leaf-node placement beyond the window grows the
// TEA (in place when the adjacent frames are free, by migration otherwise,
// reusing the §4.3 machinery). The register's Limit tracks the covered
// span, so translations beyond it fall back to the legacy walker instead
// of fetching garbage — exactly the P-bit discipline of §4.6.1.

// OnDemandInitialFrames is the initial TEA window (frames); each frame
// covers one leaf node's span (2 MiB of VA for 4K pages).
const OnDemandInitialFrames = 4

// onDemandCoveredEnd returns the VA limit currently covered by the
// region's frames.
func (sr *sizeRegion) coveredEnd() mem.VAddr {
	return sr.coverVA + mem.VAddr(uint64(sr.region.Frames)*sr.nodeSpan)
}

// ensureCovered grows an on-demand region until it covers va, returning
// false when growth fails (the caller falls back to buddy placement and
// the legacy walker serves the VA).
func (m *Manager) ensureCovered(mp *Mapping, sr *sizeRegion, va mem.VAddr) bool {
	if va < sr.coveredEnd() {
		return true
	}
	if sr.shared != nil && sr.shared.refs > 1 {
		return false // cannot grow a region another mapping depends on
	}
	// Grow to cover va plus slack, bounded by the mapping span.
	_, maxFrames := framesFor(mp.Start, mp.End, sr.size)
	want := int((uint64(va)-uint64(sr.coverVA))/sr.nodeSpan) + 1 + OnDemandInitialFrames
	if want > maxFrames {
		want = maxFrames
	}
	extra := want - sr.region.Frames
	if extra <= 0 {
		return true
	}
	if grown, ok := m.backend.ExpandTEAInPlace(sr.region, extra); ok {
		m.updateSharedRegion(sr, grown)
		m.Stats.ExpandsInPlace++
		m.Stats.FramesLive += int64(extra)
		m.reloadRegisters()
		return true
	}
	// Migrate to a larger region (synchronously: the faulting page's
	// placement must be resolved now).
	newRegion, err := m.backend.AllocTEA(want)
	if err != nil {
		m.Stats.AllocFailures++
		return false
	}
	m.Stats.FramesLive += int64(want)
	m.detachSharedKey(sr)
	sr.migrate = &migration{to: newRegion}
	m.Stats.Migrations++
	m.PumpMigration(1 << 30)
	return true
}

// updateSharedRegion keeps the shared-region registry consistent when an
// in-place expansion changes a region's frame count.
func (m *Manager) updateSharedRegion(sr *sizeRegion, grown Region) {
	if sr.shared != nil {
		// Identity-checked: sr's key may have been re-taken by an
		// unrelated region after an earlier migration, and overwriting
		// that entry would strand its owner. The key describes the node
		// span, which in-place growth does not change.
		if se, ok := m.shared[sr.shared.key]; ok && se.ref == sr.shared {
			se.region = grown
		}
	}
	sr.region = grown
}
