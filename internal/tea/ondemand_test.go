package tea

import (
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/mem"
)

func newOnDemandEnv(t *testing.T) *env {
	t.Helper()
	cfg := DefaultConfig(false)
	cfg.OnDemand = true
	return newEnv(t, 1<<15, cfg, kernel.Config{})
}

func TestOnDemandStartsSmall(t *testing.T) {
	e := newOnDemandEnv(t)
	v, err := e.as.MMap(0x40000000, 256<<20, kernel.VMAHeap, "sparse") // would need 128 eager frames
	if err != nil {
		t.Fatal(err)
	}
	mp := e.mg.Mappings()[0]
	sr := mp.regions[mem.Size4K]
	if sr.region.Frames != OnDemandInitialFrames {
		t.Fatalf("initial on-demand TEA = %d frames, want %d", sr.region.Frames, OnDemandInitialFrames)
	}
	// The register exposes only the covered window.
	reg := e.mg.Lookup(v.Start)
	if reg == nil {
		t.Fatal("no register")
	}
	wantLimit := sr.coverVA + mem.VAddr(uint64(OnDemandInitialFrames)*nodeSpanOf(mem.Size4K))
	if reg.Limit != wantLimit {
		t.Fatalf("register limit %#x, want covered end %#x", uint64(reg.Limit), uint64(wantLimit))
	}
	if e.mg.Lookup(v.End-1) != nil {
		t.Fatal("uncovered tail must not match any register")
	}
}

func TestOnDemandGrowsWithFaults(t *testing.T) {
	e := newOnDemandEnv(t)
	v, _ := e.as.MMap(0x40000000, 128<<20, kernel.VMAHeap, "sparse")
	// Touch a page 40 MiB in: the window must grow to cover it.
	va := v.Start + 40<<20
	if _, err := e.as.Touch(va, true); err != nil {
		t.Fatal(err)
	}
	reg := e.mg.Lookup(va)
	if reg == nil || !reg.Covered[mem.Size4K] {
		t.Fatal("register does not cover the touched page after growth")
	}
	// Fetch arithmetic must land on the walker's leaf.
	w := e.as.PT.Walk(va)
	if got := reg.PTEAddr(mem.Size4K)(va); got != w.Steps[len(w.Steps)-1].Addr {
		t.Fatalf("on-demand fetch %#x != walker leaf %#x", uint64(got), uint64(w.Steps[len(w.Steps)-1].Addr))
	}
	if e.mg.Stats.ExpandsInPlace == 0 && e.mg.Stats.Migrations == 0 {
		t.Fatal("growth recorded neither expansion nor migration")
	}
}

func TestOnDemandGrowthPreservesEarlierNodes(t *testing.T) {
	e := newOnDemandEnv(t)
	v, _ := e.as.MMap(0x40000000, 128<<20, kernel.VMAHeap, "sparse")
	// Touch pages across a growing range, re-verifying all earlier ones
	// each time (growth may migrate the TEA; arithmetic must follow).
	var touched []mem.VAddr
	for off := uint64(0); off < 96<<20; off += 7 << 21 {
		va := v.Start + mem.VAddr(off)
		if _, err := e.as.Touch(va, true); err != nil {
			t.Fatal(err)
		}
		touched = append(touched, va)
		for _, prev := range touched {
			reg := e.mg.Lookup(prev)
			if reg == nil {
				t.Fatalf("page %#x lost register coverage after growth", uint64(prev))
			}
			w := e.as.PT.Walk(prev)
			if !w.OK {
				t.Fatalf("page %#x unwalkable", uint64(prev))
			}
			if got := reg.PTEAddr(mem.Size4K)(prev); got != w.Steps[len(w.Steps)-1].Addr {
				t.Fatalf("page %#x: fetch arithmetic broken after growth", uint64(prev))
			}
		}
	}
}

func TestOnDemandSparseSavesMemory(t *testing.T) {
	// The §7 scenario: a large mapping of which only the front is used.
	eager := newEnv(t, 1<<15, DefaultConfig(false), kernel.Config{})
	lazy := newOnDemandEnv(t)
	for _, e := range []*env{eager, lazy} {
		v, err := e.as.MMap(0x40000000, 192<<20, kernel.VMAFile, "bigfile")
		if err != nil {
			t.Fatal(err)
		}
		for off := mem.VAddr(0); off < 4<<20; off += mem.PageBytes4K {
			if _, err := e.as.Touch(v.Start+off, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	eagerFrames := eager.mg.Stats.FramesLive
	lazyFrames := lazy.mg.Stats.FramesLive
	if eagerFrames != 96 { // 192 MiB / 2 MiB per frame
		t.Fatalf("eager TEA = %d frames, want 96", eagerFrames)
	}
	if lazyFrames >= eagerFrames/4 {
		t.Fatalf("on-demand TEA = %d frames, want far below eager %d", lazyFrames, eagerFrames)
	}
	// Both modes translate the touched region identically.
	for _, e := range []*env{eager, lazy} {
		va := mem.VAddr(0x40000000) + 2<<20 + 0x123
		reg := e.mg.Lookup(va)
		if reg == nil {
			t.Fatal("touched page uncovered")
		}
		w := e.as.PT.Walk(va)
		if got := reg.PTEAddr(mem.Size4K)(va); got != w.Steps[len(w.Steps)-1].Addr {
			t.Fatal("fetch arithmetic mismatch")
		}
	}
}

func TestOnDemandFullLifecycleNoLeaks(t *testing.T) {
	e := newOnDemandEnv(t)
	free0 := e.pa.FreeFrames()
	v, _ := e.as.MMap(0x40000000, 64<<20, kernel.VMAHeap, "heap")
	if err := e.as.Populate(v); err != nil {
		t.Fatal(err)
	}
	if err := e.as.MUnmap(v); err != nil {
		t.Fatal(err)
	}
	if e.pa.FreeFrames() != free0 {
		t.Fatalf("leaked %d frames", free0-e.pa.FreeFrames())
	}
	if e.mg.Stats.FramesLive != 0 {
		t.Fatalf("TEA accounting shows %d live frames", e.mg.Stats.FramesLive)
	}
}
