package tea

import (
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// teardownBalanced unmaps every VMA and asserts the full boot→churn→destroy
// cycle conserved frames: no TEA region leaked, none double-freed.
func teardownBalanced(t *testing.T, e *env, baselineFree int, vmas ...*kernel.VMA) {
	t.Helper()
	for _, v := range vmas {
		if err := e.as.MUnmap(v); err != nil {
			t.Fatalf("MUnmap(%s): %v", v.Name, err)
		}
	}
	if e.mg.Stats.FramesLive != 0 {
		t.Fatalf("FramesLive = %d after full teardown, want 0", e.mg.Stats.FramesLive)
	}
	if got := e.pa.FreeFrames(); got != baselineFree {
		t.Fatalf("FreeFrames = %d after teardown, want %d (TEA leak or double free)", got, baselineFree)
	}
	if err := e.pa.Audit(); err != nil {
		t.Fatalf("allocator audit: %v", err)
	}
	if n := e.mg.SharedCount(); n != 0 {
		t.Fatalf("shared registry holds %d entries after teardown", n)
	}
}

// TestMidMigrationSharedJoin pins the migration-start registry detach: the
// shared-region registry used to keep advertising a region whose migration
// was in flight, so a mapping created mid-window joined storage that
// PumpMigration then freed — a dangling fetch base for the joiner and a
// double free at its eventual release. A mid-migration twin must get fresh
// storage instead.
func TestMidMigrationSharedJoin(t *testing.T) {
	cfg := Config{
		Registers:        DefaultRegisters,
		MergeThreshold:   -1, // isolate sharing from clustering
		Sizes:            []mem.PageSize{mem.Size4K},
		MinVMABytes:      mem.PageBytes4K,
		GradualMigration: true,
	}
	e := newEnv(t, 1<<14, cfg, kernel.Config{})
	baseline := e.pa.FreeFrames()
	// Two VMAs inside the same 2 MiB node span share one TEA key.
	const base = mem.VAddr(1 << 30)
	va, err := e.as.MMap(base, 1<<20, kernel.VMAHeap, "a")
	if err != nil {
		t.Fatal(err)
	}
	oldRegion := e.mg.Mappings()[0].SizeRegions()[0].Region
	if !e.mg.StartMigration(base) {
		t.Fatal("StartMigration did not start")
	}
	vb, err := e.as.MMap(base+1<<20, 1<<20, kernel.VMAHeap, "b")
	if err != nil {
		t.Fatal(err)
	}
	var bInfo RegionInfo
	for _, mp := range e.mg.Mappings() {
		if mp.Start == vb.Start {
			bInfo = mp.SizeRegions()[0]
		}
	}
	if bInfo.Region.NodeBase == oldRegion.NodeBase {
		t.Fatal("new mapping joined a TEA that is mid-migration")
	}
	if bInfo.SharedRefs != 1 {
		t.Fatalf("new mapping's region has %d refs, want 1", bInfo.SharedRefs)
	}
	if e.mg.PumpMigration(1<<30) == 0 && e.mg.MigrationsPending() {
		t.Fatal("migration did not drain")
	}
	teardownBalanced(t, e, baseline, va, vb)
}

// TestReleaseRegionIdentityCheck pins the releaseRegion fix: when a
// migration completes after its key was re-taken by a fresh region, the
// migrated mapping's release must not delete the registry entry now owned
// by someone else — doing so breaks sharing for every later twin and sets
// up a double free when the usurped entry's owner releases.
func TestReleaseRegionIdentityCheck(t *testing.T) {
	cfg := Config{
		Registers:        DefaultRegisters,
		MergeThreshold:   -1,
		Sizes:            []mem.PageSize{mem.Size4K},
		MinVMABytes:      mem.PageBytes4K,
		GradualMigration: true,
	}
	e := newEnv(t, 1<<14, cfg, kernel.Config{})
	baseline := e.pa.FreeFrames()
	const base = mem.VAddr(1 << 30)
	va, err := e.as.MMap(base, 1<<20, kernel.VMAHeap, "a")
	if err != nil {
		t.Fatal(err)
	}
	e.mg.StartMigration(base)
	// B takes A's vacated key with a fresh region while A migrates.
	vb, err := e.as.MMap(base+1<<20, 1<<20, kernel.VMAHeap, "b")
	if err != nil {
		t.Fatal(err)
	}
	// A's migration completes into the same geometry: the key is taken, so
	// A's shared ref stays unregistered.
	e.mg.PumpMigration(1 << 30)
	// Releasing A must leave B's registry entry alone: a third twin must
	// share B's storage, not allocate again.
	if err := e.as.MUnmap(va); err != nil {
		t.Fatal(err)
	}
	vc, err := e.as.MMap(base, 1<<20, kernel.VMAHeap, "c")
	if err != nil {
		t.Fatal(err)
	}
	var bInfo, cInfo RegionInfo
	for _, mp := range e.mg.Mappings() {
		switch mp.Start {
		case vb.Start:
			bInfo = mp.SizeRegions()[0]
		case vc.Start:
			cInfo = mp.SizeRegions()[0]
		}
	}
	if cInfo.Region.NodeBase != bInfo.Region.NodeBase {
		t.Fatalf("twin did not share the registered region (B at %#x, C at %#x)",
			uint64(bInfo.Region.NodeBase), uint64(cInfo.Region.NodeBase))
	}
	if cInfo.SharedRefs != 2 {
		t.Fatalf("shared refs = %d, want 2", cInfo.SharedRefs)
	}
	teardownBalanced(t, e, baseline, vb, vc)
}

// TestMergeFreesAbandonedMigrationTarget pins the migrateMappingInto fix: a
// cluster merge that absorbed a mapping with an in-flight migration used to
// leak the migration's target region (and its FramesLive accounting)
// forever — the classic slow leak under VM churn with background migration.
func TestMergeFreesAbandonedMigrationTarget(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.GradualMigration = true
	cfg.MinVMABytes = mem.PageBytes4K
	e := newEnv(t, 1<<14, cfg, kernel.Config{})
	baseline := e.pa.FreeFrames()
	const base = mem.VAddr(1 << 30)
	va, err := e.as.MMap(base, 4<<20, kernel.VMAHeap, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !e.mg.StartMigration(base) {
		t.Fatal("StartMigration did not start")
	}
	// The adjacent VMA triggers a cluster merge that absorbs the
	// mid-migration mapping.
	vb, err := e.as.MMap(base+4<<20, 4<<20, kernel.VMAHeap, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.mg.Mappings()) != 1 {
		t.Fatalf("mappings = %d after merge, want 1", len(e.mg.Mappings()))
	}
	if e.mg.MigrationsPending() {
		t.Fatal("absorbed migration still pending")
	}
	// FramesLive must now be exactly the merged mapping's regions.
	var want int64
	for _, ri := range e.mg.Mappings()[0].SizeRegions() {
		want += int64(ri.Region.Frames)
	}
	if e.mg.Stats.FramesLive != want {
		t.Fatalf("FramesLive = %d after merge, want %d (abandoned migration target leaked)",
			e.mg.Stats.FramesLive, want)
	}
	teardownBalanced(t, e, baseline, va, vb)
}

// TestOnDemandMergePreservesNodeSlots pins allocRegionsCovering: merging
// grown on-demand mappings into a freshly-truncated initial window used to
// compute relocation targets beyond the merged region's frames. The merged
// window must start at least as large as the coverage the old TEAs reached.
func TestOnDemandMergePreservesNodeSlots(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.OnDemand = true
	cfg.MinVMABytes = mem.PageBytes4K
	e := newEnv(t, 1<<15, cfg, kernel.Config{})
	baseline := e.pa.FreeFrames()
	const base = mem.VAddr(1 << 30)
	va, err := e.as.MMap(base, 64<<20, kernel.VMAHeap, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Populate grows the on-demand window far past OnDemandInitialFrames.
	if err := e.as.Populate(va); err != nil {
		t.Fatal(err)
	}
	grownEnd := e.mg.Mappings()[0].SizeRegions()[0].CoveredEnd
	if grownEnd <= base+mem.VAddr(uint64(OnDemandInitialFrames)*nodeSpanOf(mem.Size4K)) {
		t.Fatalf("precondition: window did not grow (end %#x)", uint64(grownEnd))
	}
	vb, err := e.as.MMap(base+64<<20, 16<<20, kernel.VMAHeap, "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.mg.Mappings()) != 1 {
		t.Fatalf("mappings = %d after merge, want 1", len(e.mg.Mappings()))
	}
	ri := e.mg.Mappings()[0].SizeRegions()[0]
	if ri.CoveredEnd < grownEnd {
		t.Fatalf("merged window covers to %#x, old coverage reached %#x", uint64(ri.CoveredEnd), uint64(grownEnd))
	}
	// Every populated page must still walk, and every placed leaf node
	// must live inside storage the manager owns.
	for off := mem.VAddr(0); off < 64<<20; off += 2 << 20 {
		r := e.as.PT.Walk(base + off)
		if !r.OK {
			t.Fatalf("walk failed at %#x after merge", uint64(base+off))
		}
		leafNode := r.Steps[len(r.Steps)-1].Addr &^ (mem.PageBytes4K - 1)
		if !e.mg.OwnsNode(mem.PAddr(leafNode)) && e.pa.FrameKind(mem.PAddr(leafNode)) != phys.KindPageTable {
			t.Fatalf("leaf node at %#x is in unowned storage", uint64(leafNode))
		}
	}
	teardownBalanced(t, e, baseline, va, vb)
}

// TestSameSpanDifferentWindows pins the shared-registry keying bug the
// aging scenario's conservation oracle caught: two mappings whose node
// coverage starts at the same aligned VA walk through the same leaf nodes,
// but the registry used to key sharing on the window's frame count as
// well, so mappings with different spans silently got private regions over
// one node span. The first mapper's region physically hosted the shared
// node; its death freed storage the survivor's page table still
// referenced, and the survivor's eventual teardown double-freed the frame.
func TestSameSpanDifferentWindows(t *testing.T) {
	cfg := Config{
		Registers:      DefaultRegisters,
		MergeThreshold: -1, // isolate sharing from clustering
		Sizes:          []mem.PageSize{mem.Size4K},
		MinVMABytes:    mem.PageBytes4K,
	}
	e := newEnv(t, 1<<14, cfg, kernel.Config{})
	baseline := e.pa.FreeFrames()
	const gib = mem.VAddr(1 << 30)
	// a starts mid-node-span and covers four node spans; b covers only the
	// first. Both cover VAs align down to the same node span, but their
	// window sizes differ — the case the old frames-keyed registry split.
	va, err := e.as.MMap(gib+1<<20, 7<<20, kernel.VMAHeap, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.as.Touch(gib+1<<20, true); err != nil {
		t.Fatal(err) // a hosts the shared node span's leaf node
	}
	vb, err := e.as.MMap(gib, 1<<20, kernel.VMAHeap, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.as.Touch(gib, true); err != nil {
		t.Fatal(err)
	}
	ra := e.mg.Mappings()[0].SizeRegions()[0]
	rb := e.mg.Mappings()[1].SizeRegions()[0]
	if ra.Region.NodeBase != rb.Region.NodeBase {
		t.Fatalf("same node span got two regions (%#x vs %#x); sharing broken",
			uint64(rb.Region.NodeBase), uint64(ra.Region.NodeBase))
	}
	if ra.SharedRefs != 2 {
		t.Fatalf("SharedRefs = %d, want 2", ra.SharedRefs)
	}
	// The first mapper dies; the shared node must survive for b.
	if err := e.as.MUnmap(va); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := e.as.PT.Lookup(gib); !ok {
		t.Fatal("b's page lost its translation when a died")
	}
	teardownBalanced(t, e, baseline, vb)
}

// TestEvacuationRescuesStraddlingNode pins the release-time evacuation
// backstop: a mapping that straddles an upper-level node span gets a
// different cover VA than its neighbour, so the sharing registry cannot
// pair them — yet a level-2 node spans 1 GiB of VA and serves both. When
// the hosting mapping dies, the node must be walked out to a vanilla
// kernel frame instead of being freed (and later recycled) with the TEA.
func TestEvacuationRescuesStraddlingNode(t *testing.T) {
	cfg := DefaultConfig(true)
	cfg.MergeThreshold = -1 // adjacent VMAs must stay separate mappings
	e := newEnv(t, 1<<14, cfg, kernel.Config{THP: true})
	baseline := e.pa.FreeFrames()
	const boundary = mem.VAddr(2 << 30) // a 1 GiB level-2 node span edge
	va, err := e.as.MMap(boundary-4<<20, 8<<20, kernel.VMAHeap, "straddle")
	if err != nil {
		t.Fatal(err)
	}
	// a's huge page beyond the boundary places the second GiB's L2 node
	// in a's 2M-size region (cover aligns to the PREVIOUS GiB).
	if _, err := e.as.Touch(boundary, true); err != nil {
		t.Fatal(err)
	}
	if s, ok := e.as.VMAs()[0].PresentSize(boundary); !ok || s != mem.Size2M {
		t.Skip("THP fault did not map a huge page; straddle setup ineffective")
	}
	vb, err := e.as.MMap(boundary+4<<20, 8<<20, kernel.VMAHeap, "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.as.Touch(boundary+4<<20, true); err != nil {
		t.Fatal(err) // b's huge PTE lives in the L2 node a placed
	}
	if err := e.as.MUnmap(va); err != nil {
		t.Fatal(err)
	}
	if e.mg.Stats.EvacuatedNodes == 0 {
		t.Fatal("straddling L2 node was not evacuated at release")
	}
	if _, _, ok := e.as.PT.Lookup(boundary + 4<<20); !ok {
		t.Fatal("b's huge page lost its translation when the straddler died")
	}
	teardownBalanced(t, e, baseline, vb)
}
