package tea

import (
	"dmt/internal/mem"
)

// Introspection and fault-injection entry points. The differential checker
// (internal/check) uses the read-only snapshots to verify structural
// invariants — every mapped leaf reachable through exactly one TEA slot per
// size, registers consistent with mappings — and the fault injector
// (internal/fault) uses StartMigration to open the §4.3 migration window
// (register P-bit clear) at arbitrary points of a run.

// RegionInfo is a read-only snapshot of one size-region of a mapping.
type RegionInfo struct {
	Size       mem.PageSize
	CoverVA    mem.VAddr // first VA covered by the region's frames
	CoveredEnd mem.VAddr // one past the last VA covered (on-demand growth)
	Region     Region
	Migrating  bool
	MigrateTo  Region // valid only when Migrating
	SharedRefs int    // mappings referencing the backing region (>=1)
}

// SizeRegions returns snapshots of the mapping's size-regions,
// smallest page size first.
func (m *Mapping) SizeRegions() []RegionInfo {
	out := make([]RegionInfo, 0, len(m.regions))
	for _, s := range m.sizesInOrder() {
		sr := m.regions[s]
		ri := RegionInfo{
			Size:       s,
			CoverVA:    sr.coverVA,
			CoveredEnd: sr.coveredEnd(),
			Region:     sr.region,
			Migrating:  sr.migrate != nil,
			SharedRefs: 1,
		}
		if sr.migrate != nil {
			ri.MigrateTo = sr.migrate.to
		}
		if sr.shared != nil {
			ri.SharedRefs = sr.shared.refs
		}
		out = append(out, ri)
	}
	return out
}

// Config returns the manager's configuration (post-default resolution).
func (m *Manager) Config() Config { return m.cfg }

// StartMigration forces a gradual TEA migration of the mapping covering va:
// same-sized destination regions are allocated and each size-region enters
// the migration window — register P-bit clear per §4.6.1, so translations
// fall back to the legacy walker until PumpMigration completes the move.
// Regions already migrating, and regions shared with other mappings (whose
// fetch addresses a relocation would silently strand), are skipped. It
// returns whether at least one migration started.
func (m *Manager) StartMigration(va mem.VAddr) bool {
	mp := m.mappingAt(va)
	if mp == nil {
		return false
	}
	started := false
	for _, s := range mp.sizesInOrder() {
		sr := mp.regions[s]
		if sr.migrate != nil {
			continue
		}
		if sr.shared != nil && sr.shared.refs > 1 {
			continue
		}
		to, err := m.backend.AllocTEA(sr.region.Frames)
		if err != nil {
			m.Stats.AllocFailures++
			continue
		}
		m.Stats.FramesLive += int64(to.Frames)
		m.detachSharedKey(sr)
		sr.migrate = &migration{to: to}
		m.Stats.Migrations++
		started = true
	}
	if started {
		m.reloadRegisters()
	}
	return started
}
