package pagetable

import (
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// PhysAlloc returns the vanilla-Linux node placement policy: every node
// takes an arbitrary frame from the buddy allocator, so last-level PTE
// pages end up scattered across physical memory (§4.3, "last-level PTEs
// are randomly scattered").
func PhysAlloc(a *phys.Allocator) NodeAllocFunc {
	return func(level int, va mem.VAddr) (mem.PAddr, error) {
		return a.AllocFrame(phys.KindPageTable)
	}
}

// PhysFree returns the matching release policy.
func PhysFree(a *phys.Allocator) NodeFreeFunc {
	return func(level int, pa mem.PAddr) { a.FreeFrame(pa) }
}

// BumpAlloc is a trivial placement policy for unit tests: nodes are laid
// out sequentially from base.
func BumpAlloc(base mem.PAddr) NodeAllocFunc {
	next := base
	return func(level int, va mem.VAddr) (mem.PAddr, error) {
		pa := next
		next += mem.PageBytes4K
		return pa, nil
	}
}
