package pagetable

import (
	"testing"

	"dmt/internal/mem"
)

// The arena-clone contract (DESIGN.md §9): Clone copies the slab arena, so
// the clone and its parent must share no mutable storage — mutating either
// side's tables (map, unmap, relocate) must never show through on the other,
// even though the copy is flat slab memcpys rather than a tree walk.

// snapshot captures everything a translation consumer can observe for a VA:
// the resolved PA and the exact PTE fetch addresses of a full walk.
type snapshot struct {
	pa    mem.PAddr
	ok    bool
	steps []Step
}

func snap(t *Table, va mem.VAddr) snapshot {
	r := t.Walk(va)
	s := snapshot{pa: r.PA, ok: r.OK}
	s.steps = append(s.steps, r.Steps...)
	return s
}

func requireSnap(t *testing.T, tbl *Table, va mem.VAddr, want snapshot, side string) {
	t.Helper()
	got := snap(tbl, va)
	if got.ok != want.ok || got.pa != want.pa {
		t.Fatalf("%s: walk(%#x) = (%#x, %v), want (%#x, %v)",
			side, uint64(va), uint64(got.pa), got.ok, uint64(want.pa), want.ok)
	}
	if len(got.steps) != len(want.steps) {
		t.Fatalf("%s: walk(%#x) took %d steps, want %d", side, uint64(va), len(got.steps), len(want.steps))
	}
	for i := range got.steps {
		if got.steps[i] != want.steps[i] {
			t.Fatalf("%s: walk(%#x) step %d = %+v, want %+v", side, uint64(va), i, got.steps[i], want.steps[i])
		}
	}
}

func TestCloneDoesNotAliasParentSlabs(t *testing.T) {
	parent := newTestTable(t)
	vas := []mem.VAddr{0x7f00_0000_0000, 0x7f00_0020_0000, 0x10_0000_0000}
	for i, va := range vas {
		if err := parent.Map(va, mem.PAddr(0x40_000000+i*0x1000), mem.Size4K, mem.PTEWritable); err != nil {
			t.Fatal(err)
		}
	}
	if err := parent.Map(0x7f10_0000_0000, 0x8000_0000, mem.Size2M, mem.PTEWritable); err != nil {
		t.Fatal(err)
	}
	huge := mem.VAddr(0x7f10_0000_0000)

	before := make(map[mem.VAddr]snapshot)
	for _, va := range append(vas, huge) {
		before[va] = snap(parent, va)
	}
	parentNodes := parent.Pool().NodeCount()

	clone := parent.Clone(BumpAlloc(0x8000000), nil)
	for _, va := range append(vas, huge) {
		requireSnap(t, clone, va, before[va], "fresh clone")
	}
	if got := clone.Pool().NodeCount(); got != parentNodes {
		t.Fatalf("clone NodeCount = %d, want %d", got, parentNodes)
	}

	// Mutate the clone every way a table can change: a new mapping (arena
	// slot allocation), an unmap that prunes nodes (slot release), a PTE
	// flag update, and a node relocation (index rewrite).
	if err := clone.Map(0x7f20_0000_0000, 0x50_000000, mem.Size4K, mem.PTEWritable); err != nil {
		t.Fatal(err)
	}
	if err := clone.Unmap(vas[2], mem.Size4K); err != nil {
		t.Fatal(err)
	}
	if !clone.SetAccessed(vas[0], true) {
		t.Fatal("SetAccessed missed a mapped leaf")
	}
	if err := clone.RelocateL1(vas[1], 0x9000000); err != nil {
		t.Fatal(err)
	}

	// The parent must be bit-identical to its pre-clone snapshots.
	for _, va := range append(vas, huge) {
		requireSnap(t, parent, va, before[va], "parent after clone mutation")
	}
	if got := parent.Pool().NodeCount(); got != parentNodes {
		t.Fatalf("parent NodeCount = %d after clone mutation, want %d", got, parentNodes)
	}
	if pte, ok := parent.LeafPTE(vas[0]); !ok || pte.Accessed() {
		t.Fatalf("parent leaf PTE for %#x picked up the clone's A-bit: %v %v", uint64(vas[0]), pte, ok)
	}
	if _, ok := parent.Pool().NodeAt(0x9000000); ok {
		t.Fatal("parent pool indexes the clone's relocated node")
	}

	// And the reverse: parent mutations must not leak into the clone.
	cloneSnap := make(map[mem.VAddr]snapshot)
	for _, va := range []mem.VAddr{vas[0], vas[1], huge, 0x7f20_0000_0000} {
		cloneSnap[va] = snap(clone, va)
	}
	if err := parent.Unmap(vas[0], mem.Size4K); err != nil {
		t.Fatal(err)
	}
	if err := parent.Map(0x7f30_0000_0000, 0x60_000000, mem.Size4K, mem.PTEWritable); err != nil {
		t.Fatal(err)
	}
	for va, want := range cloneSnap {
		requireSnap(t, clone, va, want, "clone after parent mutation")
	}
	if r := clone.Walk(0x7f30_0000_0000); r.OK {
		t.Fatal("parent's new mapping leaked into the clone")
	}
}

// TestCloneAfterChurnCopiesFreelist pins the slot-recycling half of the
// contract: a table that has unmapped (releasing arena slots) clones with
// the freelist intact, so parent and clone recycle independently and new
// nodes on one side never alias the other's arena.
func TestCloneAfterChurnCopiesFreelist(t *testing.T) {
	parent := newTestTable(t)
	for i := 0; i < 8; i++ {
		va := mem.VAddr(0x7f00_0000_0000 + uint64(i)<<30)
		if err := parent.Map(va, mem.PAddr(0x40_000000+i*0x1000), mem.Size4K, mem.PTEWritable); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		va := mem.VAddr(0x7f00_0000_0000 + uint64(i)<<30)
		if err := parent.Unmap(va, mem.Size4K); err != nil {
			t.Fatal(err)
		}
	}
	keep := mem.VAddr(0x7f00_0000_0000 + 5<<30)
	before := snap(parent, keep)

	clone := parent.Clone(BumpAlloc(0x8000000), nil)
	// Both sides refill the recycled slots independently.
	for i := 0; i < 4; i++ {
		va := mem.VAddr(0x7e00_0000_0000 + uint64(i)<<30)
		if err := clone.Map(va, mem.PAddr(0x70_000000+i*0x1000), mem.Size4K, mem.PTEWritable); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		va := mem.VAddr(0x7d00_0000_0000 + uint64(i)<<30)
		if err := parent.Map(va, mem.PAddr(0x50_000000+i*0x1000), mem.Size4K, mem.PTEWritable); err != nil {
			t.Fatal(err)
		}
	}
	requireSnap(t, parent, keep, before, "parent after churn refill")
	requireSnap(t, clone, keep, before, "clone after churn refill")
	if r := parent.Walk(0x7e00_0000_0000); r.OK {
		t.Fatal("clone's refill mapping leaked into the parent")
	}
	if r := clone.Walk(0x7d00_0000_0000); r.OK {
		t.Fatal("parent's refill mapping leaked into the clone")
	}
}
