package pagetable

import (
	"testing"
	"testing/quick"

	"dmt/internal/mem"
	"dmt/internal/phys"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New(NewPool(), mem.Levels4, BumpAlloc(0x100000), nil)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestMapWalkRoundTrip(t *testing.T) {
	tbl := newTestTable(t)
	va, pa := mem.VAddr(0x7f12_3456_7000), mem.PAddr(0xabc000)
	if err := tbl.Map(va, pa, mem.Size4K, mem.PTEWritable); err != nil {
		t.Fatal(err)
	}
	r := tbl.Walk(va + 0x123)
	if !r.OK {
		t.Fatal("walk faulted on mapped address")
	}
	if r.PA != pa+0x123 {
		t.Fatalf("PA = %#x, want %#x", uint64(r.PA), uint64(pa+0x123))
	}
	if len(r.Steps) != 4 {
		t.Fatalf("4-level walk took %d steps, want 4", len(r.Steps))
	}
	for i, s := range r.Steps {
		if s.Level != 4-i {
			t.Fatalf("step %d at level %d, want %d", i, s.Level, 4-i)
		}
	}
}

func TestWalkUnmappedFaults(t *testing.T) {
	tbl := newTestTable(t)
	if r := tbl.Walk(0x1000); r.OK {
		t.Fatal("walk of empty table succeeded")
	}
	// Map one page; a neighbour in the same L1 node must still fault but
	// take the full 4 steps (present intermediate levels).
	if err := tbl.Map(0x2000, 0x9000, mem.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	r := tbl.Walk(0x3000)
	if r.OK || len(r.Steps) != 4 {
		t.Fatalf("neighbour fault: ok=%v steps=%d, want fault after 4 steps", r.OK, len(r.Steps))
	}
}

func TestHugePageWalkLengths(t *testing.T) {
	tbl := newTestTable(t)
	if err := tbl.Map(0x4000_0000, 0x8000_0000, mem.Size1G, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x8020_0000, 0x4020_0000, mem.Size2M, 0); err != nil {
		t.Fatal(err)
	}
	r1g := tbl.Walk(0x4000_1234)
	if !r1g.OK || len(r1g.Steps) != 2 || r1g.Size != mem.Size1G {
		t.Fatalf("1G walk: ok=%v steps=%d size=%v", r1g.OK, len(r1g.Steps), r1g.Size)
	}
	if r1g.PA != 0x8000_1234 {
		t.Fatalf("1G PA = %#x", uint64(r1g.PA))
	}
	r2m := tbl.Walk(0x8020_5678)
	if !r2m.OK || len(r2m.Steps) != 3 || r2m.Size != mem.Size2M {
		t.Fatalf("2M walk: ok=%v steps=%d size=%v", r2m.OK, len(r2m.Steps), r2m.Size)
	}
	if r2m.PA != 0x4020_5678 {
		t.Fatalf("2M PA = %#x", uint64(r2m.PA))
	}
}

func TestFiveLevelWalk(t *testing.T) {
	tbl, err := New(NewPool(), mem.Levels5, BumpAlloc(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	va := mem.VAddr(1)<<52 | 0x1000
	if err := tbl.Map(va, 0xf000, mem.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	r := tbl.Walk(va)
	if !r.OK || len(r.Steps) != 5 {
		t.Fatalf("5-level walk: ok=%v steps=%d, want 5", r.OK, len(r.Steps))
	}
}

func TestDoubleMapRejected(t *testing.T) {
	tbl := newTestTable(t)
	if err := tbl.Map(0x1000, 0x2000, mem.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x1000, 0x3000, mem.Size4K, 0); err != ErrAlreadyMapped {
		t.Fatalf("remap err = %v, want ErrAlreadyMapped", err)
	}
	// Mapping a 4K page under an existing 1G leaf must also fail.
	if err := tbl.Map(0x4000_0000, 0, mem.Size1G, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x4000_0000, 0x5000, mem.Size4K, 0); err != ErrAlreadyMapped {
		t.Fatalf("map under huge leaf err = %v, want ErrAlreadyMapped", err)
	}
}

func TestUnmapPrunesNodes(t *testing.T) {
	pool := NewPool()
	freed := map[mem.PAddr]bool{}
	tbl, err := New(pool, mem.Levels4, BumpAlloc(0), func(level int, pa mem.PAddr) { freed[pa] = true })
	if err != nil {
		t.Fatal(err)
	}
	before := pool.NodeCount()
	if err := tbl.Map(0x1000, 0x2000, mem.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if pool.NodeCount() != before+3 {
		t.Fatalf("mapping created %d nodes, want 3", pool.NodeCount()-before)
	}
	if err := tbl.Unmap(0x1000, mem.Size4K); err != nil {
		t.Fatal(err)
	}
	if pool.NodeCount() != before {
		t.Fatalf("unmap left %d nodes, want %d", pool.NodeCount(), before)
	}
	if len(freed) != 3 {
		t.Fatalf("free callback saw %d nodes, want 3", len(freed))
	}
	if r := tbl.Walk(0x1000); r.OK {
		t.Fatal("walk succeeded after unmap")
	}
}

func TestUnmapNotMapped(t *testing.T) {
	tbl := newTestTable(t)
	if err := tbl.Unmap(0x5000, mem.Size4K); err != ErrNotMapped {
		t.Fatalf("err = %v, want ErrNotMapped", err)
	}
}

func TestReadPTEPhysical(t *testing.T) {
	pool := NewPool()
	tbl, err := New(pool, mem.Levels4, BumpAlloc(0x400000), nil)
	if err != nil {
		t.Fatal(err)
	}
	va, pa := mem.VAddr(0x7000), mem.PAddr(0xdead000)
	if err := tbl.Map(va, pa, mem.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	r := tbl.Walk(va)
	leafAddr := r.Steps[len(r.Steps)-1].Addr
	pte, ok := pool.ReadPTE(leafAddr)
	if !ok {
		t.Fatal("ReadPTE missed a registered node")
	}
	if pte.Frame() != pa {
		t.Fatalf("ReadPTE frame = %#x, want %#x", uint64(pte.Frame()), uint64(pa))
	}
	if _, ok := pool.ReadPTE(0xffff_f000); ok {
		t.Fatal("ReadPTE of unregistered memory must miss")
	}
}

func TestWalkFromSkipsLevels(t *testing.T) {
	tbl := newTestTable(t)
	va := mem.VAddr(0x12345000)
	if err := tbl.Map(va, 0x99000, mem.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	l1 := tbl.NodeForLevel(va, 1)
	if l1 == nil {
		t.Fatal("L1 node missing")
	}
	r := tbl.WalkFrom(l1, 1, va, nil)
	if !r.OK || len(r.Steps) != 1 {
		t.Fatalf("PWC-skipped walk: ok=%v steps=%d, want 1", r.OK, len(r.Steps))
	}
	if r.PA != 0x99000 {
		t.Fatalf("PA = %#x", uint64(r.PA))
	}
}

func TestSetAccessedDirty(t *testing.T) {
	tbl := newTestTable(t)
	va := mem.VAddr(0x1000)
	if err := tbl.Map(va, 0x2000, mem.Size4K, mem.PTEWritable); err != nil {
		t.Fatal(err)
	}
	if !tbl.SetAccessed(va, false) {
		t.Fatal("SetAccessed failed on mapped page")
	}
	pte, _ := tbl.LeafPTE(va)
	if !pte.Accessed() || pte.Dirty() {
		t.Fatal("read access must set A only")
	}
	tbl.SetAccessed(va, true)
	pte, _ = tbl.LeafPTE(va)
	if !pte.Dirty() {
		t.Fatal("write access must set D")
	}
}

func TestRelocateL1PreservesTranslation(t *testing.T) {
	pool := NewPool()
	tbl, err := New(pool, mem.Levels4, BumpAlloc(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	va := mem.VAddr(0x7f00_0000_0000)
	for i := 0; i < 8; i++ {
		if err := tbl.Map(va+mem.VAddr(i)<<12, mem.PAddr(0x1000*(i+1)), mem.Size4K, 0); err != nil {
			t.Fatal(err)
		}
	}
	oldLeaf := tbl.Walk(va).Steps[3].Addr
	newBase := mem.PAddr(0x800000)
	if err := tbl.RelocateL1(va, newBase); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r := tbl.Walk(va + mem.VAddr(i)<<12)
		if !r.OK || r.PA != mem.PAddr(0x1000*(i+1)) {
			t.Fatalf("translation %d broken after relocation", i)
		}
		if got := r.Steps[3].Addr; mem.AlignDownP(got, mem.PageBytes4K) != newBase {
			t.Fatalf("leaf PTE still fetched from %#x, want inside %#x", uint64(got), uint64(newBase))
		}
	}
	if _, ok := pool.ReadPTE(oldLeaf); ok {
		t.Fatal("old node still registered after relocation")
	}
}

func TestPhysAllocIntegration(t *testing.T) {
	a := phys.New(0, 4096)
	pool := NewPool()
	tbl, err := New(pool, mem.Levels4, PhysAlloc(a), PhysFree(a))
	if err != nil {
		t.Fatal(err)
	}
	free0 := a.FreeFrames()
	if err := tbl.Map(0x1000, 0x2000, mem.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != free0-3 {
		t.Fatalf("page-table frames not taken from buddy allocator")
	}
	if err := tbl.Unmap(0x1000, mem.Size4K); err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != free0 {
		t.Fatalf("page-table frames not returned to buddy allocator")
	}
}

// Property: for random sets of mappings, every mapped page walks to its
// frame and every unmapped probe faults.
func TestMapWalkProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		tbl, err := New(NewPool(), mem.Levels4, BumpAlloc(1<<40), nil)
		if err != nil {
			return false
		}
		mapped := map[mem.VAddr]mem.PAddr{}
		for i, s := range seeds {
			va := mem.VAddr(uint64(s)) << 12
			pa := mem.PAddr(uint64(i+1)) << 12
			if _, dup := mapped[va]; dup {
				continue
			}
			if tbl.Map(va, pa, mem.Size4K, 0) != nil {
				return false
			}
			mapped[va] = pa
		}
		for va, pa := range mapped {
			r := tbl.Walk(va)
			if !r.OK || r.PA != pa {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
