// Package pagetable implements x86-64-style radix page tables with
// physically-placed nodes, the foundation both for the legacy sequential
// walker (Figure 1) and for DMT's direct fetch.
//
// Every page-table node occupies a real (simulated) physical frame, so each
// PTE has a concrete physical address: the legacy walker's per-level fetches
// and the DMT fetcher's arithmetically-computed fetch hit the *same* PTE
// words, which is the paper's no-copy property (§3) — no extra coherence or
// TLB shootdowns are needed because there is only one copy of each PTE.
//
// Node placement is pluggable: the default policy takes frames from the
// buddy allocator (scattering last-level nodes the way vanilla Linux does),
// while the TEA-aware policy used by DMT-Linux places each last-level node
// at its designated slot inside a TEA (§4.3).
package pagetable

import (
	"errors"
	"fmt"

	"dmt/internal/mem"
)

// ErrNotMapped is returned by Walk for an absent translation.
var ErrNotMapped = errors.New("pagetable: not mapped")

// ErrAlreadyMapped is returned by Map when a conflicting entry exists.
var ErrAlreadyMapped = errors.New("pagetable: already mapped")

// NodeAllocFunc decides the physical placement of a new page-table node for
// the given level and the virtual address being mapped.
type NodeAllocFunc func(level int, va mem.VAddr) (mem.PAddr, error)

// NodeFreeFunc releases a node frame when its last entry is cleared.
type NodeFreeFunc func(level int, pa mem.PAddr)

// nodeID addresses a Node inside its Pool's slab arena: 0 is the null
// reference, id−1 is the global slot index (slab = slot>>slabShift, offset =
// slot&slabMask). IDs — not pointers — are what nodes store for their
// children, which is what lets Clone copy a table as flat slab memcpys with
// no pointer rewriting, and makes the simulated walk index-chasing over
// contiguous slabs instead of pointer-chasing the heap.
type nodeID int32

const (
	slabShift = 8
	slabNodes = 1 << slabShift // nodes per slab (~1.6 MiB of arena each)
	slabMask  = slabNodes - 1
)

// Node is one 4 KiB page-table page (512 entries). Nodes live in their
// Pool's slab arena; child references are nodeIDs into the same arena.
type Node struct {
	Level    int
	Base     mem.PAddr
	entries  [mem.EntriesPerNode]mem.PTE
	children [mem.EntriesPerNode]nodeID
	live     int
}

// Entry returns the PTE at idx.
func (n *Node) Entry(idx int) mem.PTE { return n.entries[idx] }

// EntryAddr returns the physical address of the PTE at idx.
func (n *Node) EntryAddr(idx int) mem.PAddr {
	return n.Base + mem.PAddr(idx*mem.PTEBytes)
}

// Pool owns the slab arena holding one address space's page-table nodes and
// indexes them by their base frame, giving physical-address PTE reads to
// components (the DMT fetcher) that compute PTE locations arithmetically
// rather than walking.
//
// Storage is arena-backed: nodes live in fixed-size contiguous slabs and are
// addressed by nodeID, so node creation is a slot bump (no per-node heap
// allocation), a walk descends by index into memory the previous level's
// fetch just pulled near, and Clone is a flat copy of the slabs. Slab
// backing arrays are append-only and never reallocate, so *Node pointers
// handed out (NodeAt, NodeForLevel) stay valid for the Pool's lifetime.
// Released slots are zeroed and recycled through a freelist, bounding arena
// growth under map/unmap churn.
//
// The frame index is a slice rather than a map: NodeAt sits on the walk hot
// path (every DMT fetch reads a PTE through it). Frames beyond denseFrames
// (simulated physical memory is far smaller) fall back to a map so arbitrary
// addresses — property tests, sentinel placements — stay cheap instead of
// forcing a multi-terabyte slice.
type Pool struct {
	slabs  [][]Node // fixed-size slabs; backing arrays never reallocate
	used   int      // slots ever handed out (arena high-water mark)
	free   []nodeID // recycled slots, zeroed on release
	dense  []nodeID // indexed by frame number (base PA >> 12); 0 = none
	sparse map[mem.PAddr]nodeID
	count  int
}

// denseFrames bounds the frame-indexed slice: 1<<22 frames covers 16 GiB of
// simulated physical memory, beyond anything the experiments configure.
const denseFrames = 1 << 22

// NewPool creates an empty node pool.
func NewPool() *Pool { return &Pool{} }

// node resolves a non-null nodeID to its slab slot.
func (p *Pool) node(id nodeID) *Node {
	slot := int(id) - 1
	return &p.slabs[slot>>slabShift][slot&slabMask]
}

// allocSlot hands out an arena slot: a recycled one when available (already
// zeroed by release), else the next slot of the last slab, growing the
// arena by one slab when full. Appending to slabs never moves existing slab
// backing arrays, so outstanding *Node pointers stay valid.
func (p *Pool) allocSlot() nodeID {
	if n := len(p.free); n > 0 {
		id := p.free[n-1]
		p.free = p.free[:n-1]
		return id
	}
	if p.used>>slabShift == len(p.slabs) {
		p.slabs = append(p.slabs, make([]Node, slabNodes))
	}
	p.used++
	return nodeID(p.used)
}

// release returns a node's slot to the freelist, zeroed so the next
// allocation (and every slab copy a Clone takes) starts from a blank node.
func (p *Pool) release(id nodeID) {
	n := p.node(id)
	p.unindex(n.Base)
	*n = Node{}
	p.free = append(p.free, id)
}

// NodeAt returns the node based at the frame containing pa.
func (p *Pool) NodeAt(pa mem.PAddr) (*Node, bool) {
	if id, ok := p.idAt(pa); ok {
		return p.node(id), true
	}
	return nil, false
}

// idAt is NodeAt at the nodeID level.
func (p *Pool) idAt(pa mem.PAddr) (nodeID, bool) {
	f := uint64(pa) >> mem.PageShift4K
	if f < uint64(len(p.dense)) {
		if id := p.dense[f]; id != 0 {
			return id, true
		}
		return 0, false
	}
	if f < denseFrames || p.sparse == nil {
		return 0, false
	}
	id, ok := p.sparse[pa&^mem.PAddr(mem.PageBytes4K-1)]
	return id, ok
}

func (p *Pool) put(base mem.PAddr, id nodeID) {
	f := uint64(base) >> mem.PageShift4K
	if f < denseFrames {
		if f >= uint64(len(p.dense)) {
			if f >= uint64(cap(p.dense)) {
				// Amortized doubling: frames arrive mostly ascending, and
				// growing by exactly one would copy the slice per node.
				newCap := 2 * (f + 1)
				if newCap > denseFrames {
					newCap = denseFrames
				}
				grown := make([]nodeID, f+1, newCap)
				copy(grown, p.dense)
				p.dense = grown
			} else {
				p.dense = p.dense[:f+1]
			}
		}
		p.dense[f] = id
	} else {
		if p.sparse == nil {
			p.sparse = make(map[mem.PAddr]nodeID)
		}
		p.sparse[base] = id
	}
	p.count++
}

// unindex drops the frame-index entry for base without touching the node's
// arena slot — the index half of a release, and all a relocation needs.
func (p *Pool) unindex(base mem.PAddr) {
	f := uint64(base) >> mem.PageShift4K
	if f < uint64(len(p.dense)) {
		if p.dense[f] != 0 {
			p.dense[f] = 0
			p.count--
		}
		return
	}
	if _, ok := p.sparse[base]; ok {
		delete(p.sparse, base)
		p.count--
	}
}

// ReadPTE reads the PTE word stored at physical address pa, which must lie
// inside a registered page-table node. The second result reports whether a
// node covers pa — a miss models the machine consuming arbitrary memory as
// a PTE, which the isolation checks of §4.5.2 are designed to prevent.
func (p *Pool) ReadPTE(pa mem.PAddr) (mem.PTE, bool) {
	n, ok := p.NodeAt(pa)
	if !ok {
		return 0, false
	}
	idx := int(pa-n.Base) / mem.PTEBytes
	return n.entries[idx], true
}

// NodeCount returns the number of live page-table nodes (×4 KiB gives the
// page-table memory footprint reported in §6.3).
func (p *Pool) NodeCount() int { return p.count }

// CountNodes returns how many live nodes satisfy pred (e.g. how many are
// placed inside TEAs, for the §6.3 memory-overhead accounting).
func (p *Pool) CountNodes(pred func(*Node) bool) int {
	n := 0
	for _, id := range p.dense {
		if id != 0 && pred(p.node(id)) {
			n++
		}
	}
	for _, id := range p.sparse {
		if pred(p.node(id)) {
			n++
		}
	}
	return n
}

// Table is one radix page table (4- or 5-level). Each Table owns its Pool
// exclusively (the arena Clone copies the whole pool, so sharing one pool
// between tables would clone strangers' nodes too).
type Table struct {
	pool   *Pool
	levels int
	root   nodeID
	alloc  NodeAllocFunc
	free   NodeFreeFunc

	// Mapped counts live leaf entries per page size.
	Mapped [3]int
}

// New creates a table with the given depth (mem.Levels4 or mem.Levels5).
// The root node is allocated immediately.
func New(pool *Pool, levels int, alloc NodeAllocFunc, free NodeFreeFunc) (*Table, error) {
	if levels != mem.Levels4 && levels != mem.Levels5 {
		return nil, fmt.Errorf("pagetable: unsupported depth %d", levels)
	}
	t := &Table{pool: pool, levels: levels, alloc: alloc, free: free}
	root, err := t.newNode(levels, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Levels returns the table depth.
func (t *Table) Levels() int { return t.levels }

// RootPA returns the physical address of the root node (the CR3 analogue).
func (t *Table) RootPA() mem.PAddr { return t.pool.node(t.root).Base }

// Pool returns the node pool backing this table.
func (t *Table) Pool() *Pool { return t.pool }

func (t *Table) newNode(level int, va mem.VAddr) (nodeID, error) {
	pa, err := t.alloc(level, va)
	if err != nil {
		return 0, err
	}
	if !mem.IsAligned(uint64(pa), mem.PageBytes4K) {
		return 0, fmt.Errorf("pagetable: node placement %#x unaligned", uint64(pa))
	}
	if _, exists := t.pool.idAt(pa); exists {
		return 0, fmt.Errorf("pagetable: node placement %#x already in use", uint64(pa))
	}
	id := t.pool.allocSlot()
	n := t.pool.node(id)
	n.Level, n.Base = level, pa
	t.pool.put(pa, id)
	return id, nil
}

// Map installs a translation va→pa of the given page size. Intermediate
// nodes are created as needed; va and pa must be size-aligned.
func (t *Table) Map(va mem.VAddr, pa mem.PAddr, size mem.PageSize, flags mem.PTE) error {
	if !mem.IsAligned(uint64(va), size.Bytes()) || !mem.IsAligned(uint64(pa), size.Bytes()) {
		return fmt.Errorf("pagetable: unaligned %v mapping va=%#x pa=%#x", size, uint64(va), uint64(pa))
	}
	leaf := size.LeafLevel()
	node := t.pool.node(t.root)
	for level := t.levels; level > leaf; level-- {
		idx := mem.Index(va, level)
		child := node.children[idx]
		if child == 0 {
			if node.entries[idx].Present() {
				return ErrAlreadyMapped // huge leaf blocks this subtree
			}
			var err error
			child, err = t.newNode(level-1, va)
			if err != nil {
				return err
			}
			node.children[idx] = child
			node.entries[idx] = mem.MakePTE(t.pool.node(child).Base, 0)
			node.live++
		}
		node = t.pool.node(child)
	}
	idx := mem.Index(va, leaf)
	if node.entries[idx].Present() {
		return ErrAlreadyMapped
	}
	if leaf > 1 {
		flags |= mem.PTEHuge
	}
	node.entries[idx] = mem.MakePTE(pa, flags)
	node.live++
	t.Mapped[size]++
	return nil
}

// Unmap removes the translation of va with the given page size. Emptied
// intermediate nodes are released (except the root).
func (t *Table) Unmap(va mem.VAddr, size mem.PageSize) error {
	leaf := size.LeafLevel()
	var path [mem.Levels5]*Node
	node := t.pool.node(t.root)
	for level := t.levels; level > leaf; level-- {
		path[level-1] = node
		id := node.children[mem.Index(va, level)]
		if id == 0 {
			return ErrNotMapped
		}
		node = t.pool.node(id)
	}
	idx := mem.Index(va, leaf)
	if !node.entries[idx].Present() {
		return ErrNotMapped
	}
	node.entries[idx] = 0
	node.live--
	t.Mapped[size]--
	// Prune empty nodes bottom-up, recycling each freed node's arena slot.
	for level := leaf; level < t.levels && node.live == 0; level++ {
		parent := path[level]
		pidx := mem.Index(va, level+1)
		id := parent.children[pidx]
		parent.children[pidx] = 0
		parent.entries[pidx] = 0
		parent.live--
		freedLevel, freedBase := node.Level, node.Base
		t.pool.release(id)
		if t.free != nil {
			t.free(freedLevel, freedBase)
		}
		node = parent
	}
	return nil
}

// Step records one PTE fetch of a sequential walk.
type Step struct {
	Level int
	Addr  mem.PAddr
}

// WalkResult describes a completed (or faulted) walk.
type WalkResult struct {
	Steps []Step
	PTE   mem.PTE
	PA    mem.PAddr
	Size  mem.PageSize
	OK    bool
}

// Walk performs a full sequential walk from the root (Figure 1), recording
// the physical address of every PTE fetched.
func (t *Table) Walk(va mem.VAddr) WalkResult {
	return t.WalkFrom(t.pool.node(t.root), t.levels, va, make([]Step, 0, t.levels))
}

// WalkInto is Walk with a caller-provided step buffer (pass steps[:0] of a
// per-walker scratch slice), keeping the walk hot path allocation-free.
func (t *Table) WalkInto(va mem.VAddr, steps []Step) WalkResult {
	return t.WalkFrom(t.pool.node(t.root), t.levels, va, steps)
}

// WalkFrom resumes a walk at the given node and level — this is how a
// page-walk-cache hit skips upper levels.
func (t *Table) WalkFrom(node *Node, level int, va mem.VAddr, steps []Step) WalkResult {
	pool := t.pool
	for {
		idx := mem.Index(va, level)
		steps = append(steps, Step{Level: level, Addr: node.EntryAddr(idx)})
		pte := node.entries[idx]
		if !pte.Present() {
			return WalkResult{Steps: steps}
		}
		if level == 1 || pte.Huge() {
			size := mem.PageSize(level - 1)
			return WalkResult{
				Steps: steps,
				PTE:   pte,
				PA:    pte.Frame() + mem.PAddr(mem.PageOffset(va, size)),
				Size:  size,
				OK:    true,
			}
		}
		node = pool.node(node.children[idx])
		level--
	}
}

// NodeForLevel returns the node that a walk for va reaches at the given
// level, or nil when absent; used to service PWC refills.
func (t *Table) NodeForLevel(va mem.VAddr, level int) *Node {
	node := t.pool.node(t.root)
	for l := t.levels; l > level; l-- {
		id := node.children[mem.Index(va, l)]
		if id == 0 {
			return nil
		}
		node = t.pool.node(id)
	}
	return node
}

// Lookup resolves va without recording steps (OS-side helper; also the
// checker's reference translation, so it must not allocate).
func (t *Table) Lookup(va mem.VAddr) (mem.PAddr, mem.PageSize, bool) {
	pool := t.pool
	node := pool.node(t.root)
	for level := t.levels; ; level-- {
		idx := mem.Index(va, level)
		pte := node.entries[idx]
		if !pte.Present() {
			return 0, 0, false
		}
		if level == 1 || pte.Huge() {
			size := mem.PageSize(level - 1)
			return pte.Frame() + mem.PAddr(mem.PageOffset(va, size)), size, true
		}
		node = pool.node(node.children[idx])
	}
}

// SetAccessed sets the A (and optionally D) bit on the leaf PTE mapping va,
// modelling the hardware walker's A/D updates. It reports whether a leaf
// was found.
func (t *Table) SetAccessed(va mem.VAddr, write bool) bool {
	node, idx, ok := t.leafSlot(va)
	if !ok {
		return false
	}
	node.entries[idx] = node.entries[idx].WithAccessed(write)
	return true
}

func (t *Table) leafSlot(va mem.VAddr) (*Node, int, bool) {
	node := t.pool.node(t.root)
	for level := t.levels; ; level-- {
		idx := mem.Index(va, level)
		pte := node.entries[idx]
		if !pte.Present() {
			return nil, 0, false
		}
		if level == 1 || pte.Huge() {
			return node, idx, true
		}
		node = t.pool.node(node.children[idx])
	}
}

// LeafPTE returns the leaf PTE mapping va.
func (t *Table) LeafPTE(va mem.VAddr) (mem.PTE, bool) {
	node, idx, ok := t.leafSlot(va)
	if !ok {
		return 0, false
	}
	return node.entries[idx], true
}

// RelocateL1 moves the last-level node that maps va to a new physical
// placement, preserving its entries — the mechanism behind gradual TEA
// migration (§4.3). The old frame is reported to the free callback.
func (t *Table) RelocateL1(va mem.VAddr, newBase mem.PAddr) error {
	return t.RelocateNode(va, 1, newBase)
}

// RelocateNode moves the level-`level` node on va's walk path to a new
// physical placement, rewriting the parent entry. Entries are preserved,
// so translations are unaffected; only the fetch address changes.
func (t *Table) RelocateNode(va mem.VAddr, level int, newBase mem.PAddr) error {
	if !mem.IsAligned(uint64(newBase), mem.PageBytes4K) {
		return errors.New("pagetable: unaligned relocation target")
	}
	if level < 1 || level >= t.levels {
		return fmt.Errorf("pagetable: cannot relocate level-%d node", level)
	}
	if _, exists := t.pool.idAt(newBase); exists {
		return fmt.Errorf("pagetable: relocation target %#x occupied", uint64(newBase))
	}
	parent := t.NodeForLevel(va, level+1)
	if parent == nil {
		return ErrNotMapped
	}
	idx := mem.Index(va, level+1)
	id := parent.children[idx]
	if id == 0 {
		return ErrNotMapped
	}
	node := t.pool.node(id)
	old := node.Base
	t.pool.unindex(old)
	node.Base = newBase
	t.pool.put(newBase, id)
	parent.entries[idx] = mem.MakePTE(newBase, 0)
	if t.free != nil {
		t.free(level, old)
	}
	return nil
}
