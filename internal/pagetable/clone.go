package pagetable

import "dmt/internal/mem"

// Clone deep-copies the table into a fresh Pool, preserving every node's
// physical placement (clones translate identically, PTE addresses included)
// while sharing no arena or index storage with the original. Because nodes
// reference their children by nodeID rather than pointer, the copy is a flat
// memcpy of the arena slabs plus the frame index — no recursive traversal,
// no pointer rewriting — so clone cost is proportional to arena size with
// slab-copy constants, not to tree shape. The placement callbacks are NOT
// copied: they close over the prototype's allocator and TEA manager, so the
// caller must supply replacements bound to the cloned substrate
// (kernel.AddressSpace.Clone passes its own allocNode/freeNode).
func (t *Table) Clone(alloc NodeAllocFunc, free NodeFreeFunc) *Table {
	return &Table{
		pool:   t.pool.clone(),
		levels: t.levels,
		root:   t.root,
		alloc:  alloc,
		free:   free,
		Mapped: t.Mapped,
	}
}

// clone copies the pool: slab contents, freelist, and both frame indexes.
// nodeIDs are arena-relative, so they remain valid verbatim in the copy;
// released slots are zeroed at release time, so copying them leaks nothing.
func (p *Pool) clone() *Pool {
	c := &Pool{used: p.used, count: p.count}
	c.slabs = make([][]Node, len(p.slabs))
	for i, s := range p.slabs {
		ns := make([]Node, slabNodes)
		copy(ns, s)
		c.slabs[i] = ns
	}
	if len(p.free) > 0 {
		c.free = make([]nodeID, len(p.free))
		copy(c.free, p.free)
	}
	if len(p.dense) > 0 {
		c.dense = make([]nodeID, len(p.dense))
		copy(c.dense, p.dense)
	}
	if len(p.sparse) > 0 {
		c.sparse = make(map[mem.PAddr]nodeID, len(p.sparse))
		for k, v := range p.sparse {
			c.sparse[k] = v
		}
	}
	return c
}
