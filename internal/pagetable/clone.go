package pagetable

// Clone deep-copies the table into a fresh Pool, preserving every node's
// physical placement (clones translate identically, PTE addresses included)
// while sharing no Node or Pool storage with the original. The placement
// callbacks are NOT copied: they close over the prototype's allocator and
// TEA manager, so the caller must supply replacements bound to the cloned
// substrate (kernel.AddressSpace.Clone passes its own allocNode/freeNode).
func (t *Table) Clone(alloc NodeAllocFunc, free NodeFreeFunc) *Table {
	c := &Table{pool: NewPool(), levels: t.levels, alloc: alloc, free: free, Mapped: t.Mapped}
	c.root = c.cloneNode(t.root)
	return c
}

// cloneNode copies one subtree into the clone's pool at the same base
// addresses. The entry and child arrays are value-copied; only the child
// pointers need rewriting.
func (t *Table) cloneNode(n *Node) *Node {
	cn := &Node{Level: n.Level, Base: n.Base, entries: n.entries, live: n.live}
	t.pool.put(n.Base, cn)
	for i, ch := range n.children {
		if ch != nil {
			cn.children[i] = t.cloneNode(ch)
		}
	}
	return cn
}
