package fault

// Named fault schedules. Each builder scales its event times to the run's
// operation count so the same schedule stresses short unit-test runs and
// long simulation campaigns alike. Suite returns the standard set used by
// the differential-correctness tests and the dmtsim -faults campaign.

// MigrationStorm opens the §4.6.1 migration window early and drains it in
// small pumps, keeping walkers in the P-bit-clear fallback regime for most
// of the run; a second storm near the end is drained synchronously.
func MigrationStorm(ops int) Plan {
	q := ops / 8
	ev := []Event{{At: q, Kind: StartMigration}}
	for i := 1; i <= 16; i++ {
		ev = append(ev, Event{At: q + i*(ops/4)/16, Kind: PumpMigration, Arg: 2})
	}
	ev = append(ev,
		Event{At: 3 * q, Kind: PumpMigration}, // drain
		Event{At: 5 * q, Kind: StartMigration},
		Event{At: 6 * q, Kind: PumpMigration}, // drain
	)
	return Plan{Name: "migration-storm", Seed: 1, Events: ev}
}

// RegisterSpill spills the register file with decoy VMAs mid-run, then
// releases them, forcing spill/reload transitions in both directions.
func RegisterSpill(ops int) Plan {
	q := ops / 8
	return Plan{Name: "register-pressure", Seed: 2, Events: []Event{
		{At: q, Kind: RegisterPressure, Arg: 20},
		{At: 5 * q, Kind: DropDecoys},
		{At: 6 * q, Kind: RegisterPressure, Arg: 8},
		{At: 7 * q, Kind: DropDecoys},
	}}
}

// AllocFailure arms backend allocation failures around VMA churn and a
// forced migration, exercising split-and-retry, the no-TEA mapping path,
// and migration-start failure.
func AllocFailure(ops int) Plan {
	q := ops / 8
	return Plan{Name: "alloc-pressure", Seed: 3, Events: []Event{
		{At: q, Kind: AllocPressure, Arg: 6},
		{At: q, Kind: RegisterPressure, Arg: 4},
		{At: 3 * q, Kind: AllocPressure, Arg: 2},
		{At: 3 * q, Kind: StartMigration},
		{At: 4 * q, Kind: PumpMigration},
		{At: 5 * q, Kind: DropDecoys},
	}}
}

// PageChurn transiently unmaps hot pages in waves (with cold caches in the
// middle), relying on demand faulting to bring them back.
func PageChurn(ops int) Plan {
	q := ops / 8
	return Plan{Name: "page-churn", Seed: 4, Events: []Event{
		{At: q, Kind: UnmapHot, Arg: 16},
		{At: 2 * q, Kind: TouchUnmapped},
		{At: 3 * q, Kind: FlushCaches},
		{At: 4 * q, Kind: UnmapHot, Arg: 32},
		{At: 6 * q, Kind: TouchUnmapped},
	}}
}

// HugeFlip splits 2M leaves into 4K pages and collapses them back,
// exercising the §4.4 multi-TEA fan-out under size churn. A no-op for
// runs without THP.
func HugeFlip(ops int) Plan {
	q := ops / 8
	return Plan{Name: "huge-flip", Seed: 5, Events: []Event{
		{At: q, Kind: SplitHuge, Arg: 8},
		{At: 3 * q, Kind: PromoteHuge},
		{At: 5 * q, Kind: SplitHuge, Arg: 16},
		{At: 7 * q, Kind: PromoteHuge},
	}}
}

// Chaos mixes every fault class in one run.
func Chaos(ops int) Plan {
	q := ops / 16
	return Plan{Name: "chaos", Seed: 6, Events: []Event{
		{At: q, Kind: UnmapHot, Arg: 8},
		{At: 2 * q, Kind: RegisterPressure, Arg: 20},
		{At: 3 * q, Kind: StartMigration},
		{At: 4 * q, Kind: SplitHuge, Arg: 4},
		{At: 5 * q, Kind: PumpMigration, Arg: 8},
		{At: 6 * q, Kind: TouchUnmapped},
		{At: 7 * q, Kind: AllocPressure, Arg: 4},
		{At: 8 * q, Kind: DropDecoys},
		{At: 9 * q, Kind: FlushCaches},
		{At: 10 * q, Kind: PumpMigration},
		{At: 11 * q, Kind: UnmapHot, Arg: 16},
		{At: 12 * q, Kind: PromoteHuge},
		{At: 13 * q, Kind: TouchUnmapped},
	}}
}

// Suite returns the standard fault schedules for an ops-long run.
func Suite(ops int) []Plan {
	return []Plan{
		MigrationStorm(ops),
		RegisterSpill(ops),
		AllocFailure(ops),
		PageChurn(ops),
		HugeFlip(ops),
		Chaos(ops),
	}
}
