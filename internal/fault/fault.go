// Package fault is a deterministic, seeded fault injector for the DMT
// simulation. It perturbs a running translation environment at scheduled
// operation counts with the events the paper's design must degrade
// gracefully under: TEA migrations that open the §4.6.1 P-bit-clear
// register window, register-file spills from VMA pressure (§4.2), TEA
// allocation failure under backend pressure (§4.3), transient unmap/remap
// of hot pages (demand paging), and 4K/2M leaf flips (§4.4 THP split and
// collapse). The differential checker (internal/check) then asserts that
// every walker still translates correctly while degraded.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/tea"
)

// Kind identifies one class of injected fault.
type Kind int

const (
	// StartMigration opens a TEA migration window on the hot mapping:
	// registers lose the size (P-bit clear) until pumps complete the move.
	StartMigration Kind = iota
	// PumpMigration advances pending migrations by Arg node slots
	// (a background-kthread analogue; Arg<=0 means drain completely).
	PumpMigration
	// RegisterPressure mmaps Arg decoy VMAs whose spans out-rank the
	// workload's mappings, spilling the 16-entry register file.
	RegisterPressure
	// DropDecoys munmaps every decoy VMA created so far.
	DropDecoys
	// AllocPressure makes the next Arg TEA allocations fail, driving the
	// manager down its split-and-retry and no-TEA fallback paths.
	AllocPressure
	// UnmapHot transiently unmaps Arg random populated pages of the hot
	// VMA (madvise(DONTNEED) analogue); the workload demand-faults them
	// back in.
	UnmapHot
	// TouchUnmapped faults every still-unmapped hot page back in.
	TouchUnmapped
	// FlushCaches empties the cache hierarchy and the TLBs (cold restart).
	FlushCaches
	// SplitHuge splits Arg random 2M leaves of the hot VMA into 4K pages.
	SplitHuge
	// PromoteHuge re-collapses eligible 4K runs of the hot VMA into 2M
	// pages (khugepaged analogue).
	PromoteHuge
)

func (k Kind) String() string {
	switch k {
	case StartMigration:
		return "start-migration"
	case PumpMigration:
		return "pump-migration"
	case RegisterPressure:
		return "register-pressure"
	case DropDecoys:
		return "drop-decoys"
	case AllocPressure:
		return "alloc-pressure"
	case UnmapHot:
		return "unmap-hot"
	case TouchUnmapped:
		return "touch-unmapped"
	case FlushCaches:
		return "flush-caches"
	case SplitHuge:
		return "split-huge"
	case PromoteHuge:
		return "promote-huge"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault: when the operation counter reaches At, the
// injector applies Kind with parameter Arg.
type Event struct {
	At   int
	Kind Kind
	Arg  int
}

// Plan is a named, fully deterministic fault schedule.
type Plan struct {
	Name   string
	Seed   int64
	Events []Event
}

// decoyBase places decoy VMAs far above any workload mapping; decoySpace
// spaces them so the bubble ratio defeats mapping merge (§4.2).
const (
	decoyBase  mem.VAddr = 0x7000_0000_0000
	decoySpan            = 1 << 30 // 1 GiB VA span out-ranks workload mappings
	decoySpace           = 4 << 30
)

// Target is the set of handles through which the injector perturbs one
// translation environment. Nil fields make the corresponding event kinds
// no-ops (recorded in the log), so one plan applies to every design.
type Target struct {
	// AS is the address space whose virtual addresses the workload
	// translates (the guest's under virtualization).
	AS *kernel.AddressSpace
	// Hot is the workload VMA whose pages fault events perturb.
	Hot *kernel.VMA
	// Mgr is the TEA manager of AS; nil for non-DMT designs.
	Mgr *tea.Manager
	// Backend is the flaky wrapper installed under Mgr; nil without one.
	Backend *FlakyBackend
	Hier    *cache.Hierarchy
	// FlushTLB empties the TLBs (and walker caches) of the environment.
	FlushTLB func()
	// Resync rebuilds derived translation structures (shadow page table,
	// ECPT, FPT, agile mirror) after a mapping mutation; nil for designs
	// that walk the live page tables.
	Resync func() error
}

// Injector applies a Plan to a Target as the simulation's operation counter
// advances. All randomness derives from the plan seed, so a fixed
// (plan, workload) pair perturbs identical pages in every run.
type Injector struct {
	plan     Plan
	tgt      Target
	rng      *rand.Rand
	next     int
	decoys   []*kernel.VMA
	unmapped map[mem.VAddr]struct{}

	Applied  int      // events applied
	Skipped  int      // events that were no-ops for this target
	Refaults int      // demand-paging waves served via Refault
	Log      []string // one line per applied/skipped event
}

// New builds an injector for plan against tgt. Events are applied in
// (At, declaration) order.
func New(plan Plan, tgt Target) *Injector {
	events := make([]Event, len(plan.Events))
	copy(events, plan.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	plan.Events = events
	return &Injector{
		plan:     plan,
		tgt:      tgt,
		rng:      rand.New(rand.NewSource(plan.Seed)),
		unmapped: make(map[mem.VAddr]struct{}),
	}
}

// Tick applies every event due at or before op. It returns an error only on
// environment corruption (a kernel operation that must succeed failing);
// injected degradation is never an error.
func (in *Injector) Tick(op int) error {
	for in.next < len(in.plan.Events) && in.plan.Events[in.next].At <= op {
		ev := in.plan.Events[in.next]
		in.next++
		if err := in.apply(ev); err != nil {
			return fmt.Errorf("fault %s@%d: %w", ev.Kind, ev.At, err)
		}
	}
	return nil
}

// Drain applies all remaining events (used at end of run so every schedule
// fully executes regardless of op count).
func (in *Injector) Drain() error { return in.Tick(1 << 62) }

// NextAt returns the trigger op of the next pending event, or a sentinel far
// beyond any trace once the schedule is exhausted. The batched engine sizes
// its spans with it: ticking once at the start of a span whose end never
// overshoots NextAt applies every event at exactly the op a per-op Tick
// would, because ticks between events are no-ops.
func (in *Injector) NextAt() int {
	if in.next >= len(in.plan.Events) {
		return 1 << 62
	}
	return in.plan.Events[in.next].At
}

func (in *Injector) apply(ev Event) error {
	switch ev.Kind {
	case StartMigration:
		if in.tgt.Mgr == nil || in.tgt.Hot == nil {
			return in.skip(ev)
		}
		if !in.tgt.Mgr.StartMigration(in.tgt.Hot.Start) {
			return in.skip(ev)
		}
		// The migration target occupies freshly mapped TEA space: derived
		// host-side structures (the nested compressed shadow) must learn
		// the new frames before any node is placed or relocated there.
		return in.resync(ev)
	case PumpMigration:
		if in.tgt.Mgr == nil {
			return in.skip(ev)
		}
		batch := ev.Arg
		if batch <= 0 {
			batch = 1 << 30
		}
		in.tgt.Mgr.PumpMigration(batch)
		return in.resync(ev)
	case RegisterPressure:
		if in.tgt.AS == nil {
			return in.skip(ev)
		}
		for i := 0; i < ev.Arg; i++ {
			base := decoyBase + mem.VAddr(len(in.decoys))*decoySpace
			v, err := in.tgt.AS.MMap(base, decoySpan, kernel.VMAAnon, fmt.Sprintf("decoy%d", len(in.decoys)))
			if err != nil {
				return err
			}
			in.decoys = append(in.decoys, v)
		}
	case DropDecoys:
		if in.tgt.AS == nil || len(in.decoys) == 0 {
			return in.skip(ev)
		}
		for _, v := range in.decoys {
			if err := in.tgt.AS.MUnmap(v); err != nil {
				return err
			}
		}
		in.decoys = in.decoys[:0]
	case AllocPressure:
		if in.tgt.Backend == nil {
			return in.skip(ev)
		}
		in.tgt.Backend.FailNext(ev.Arg)
	case UnmapHot:
		if in.tgt.AS == nil || in.tgt.Hot == nil {
			return in.skip(ev)
		}
		pages := in.tgt.Hot.PresentPages()
		if len(pages) == 0 {
			return in.skip(ev)
		}
		for i := 0; i < ev.Arg; i++ {
			p := pages[in.rng.Intn(len(pages))]
			if _, gone := in.unmapped[p.VA]; gone {
				continue
			}
			if err := in.tgt.AS.UnmapPage(in.tgt.Hot, p.VA); err != nil {
				continue // page may share a since-unmapped 2M leaf
			}
			in.unmapped[p.VA] = struct{}{}
		}
		return in.resync(ev)
	case TouchUnmapped:
		if in.tgt.AS == nil || len(in.unmapped) == 0 {
			return in.skip(ev)
		}
		if err := in.touchAll(); err != nil {
			return err
		}
		return in.resync(ev)
	case FlushCaches:
		if in.tgt.Hier != nil {
			in.tgt.Hier.Flush()
		}
		if in.tgt.FlushTLB != nil {
			in.tgt.FlushTLB()
		}
	case SplitHuge:
		if in.tgt.AS == nil || in.tgt.Hot == nil {
			return in.skip(ev)
		}
		var huge []kernel.PresentPage
		for _, p := range in.tgt.Hot.PresentPages() {
			if p.Size == mem.Size2M {
				huge = append(huge, p)
			}
		}
		if len(huge) == 0 {
			return in.skip(ev)
		}
		split := 0
		for i := 0; i < ev.Arg && len(huge) > 0; i++ {
			j := in.rng.Intn(len(huge))
			if err := in.tgt.AS.SplitHugePage(in.tgt.Hot, huge[j].VA); err == nil {
				split++
			}
			huge = append(huge[:j], huge[j+1:]...)
		}
		if split == 0 {
			return in.skip(ev)
		}
		return in.resync(ev)
	case PromoteHuge:
		if in.tgt.AS == nil || in.tgt.Hot == nil {
			return in.skip(ev)
		}
		if in.tgt.AS.PromoteTHP(in.tgt.Hot) == 0 {
			return in.skip(ev)
		}
		return in.resync(ev)
	default:
		return fmt.Errorf("unknown fault kind %d", int(ev.Kind))
	}
	in.Applied++
	in.Log = append(in.Log, fmt.Sprintf("%8d  %s(%d)", ev.At, ev.Kind, ev.Arg))
	return nil
}

// resync records the event and rebuilds derived structures: a mapping
// mutation leaves one-shot structures (shadow PT, ECPT, FPT, agile mirror)
// stale, which is a correctness hazard rather than a latency one.
func (in *Injector) resync(ev Event) error {
	in.Applied++
	in.Log = append(in.Log, fmt.Sprintf("%8d  %s(%d)", ev.At, ev.Kind, ev.Arg))
	if in.tgt.Resync != nil {
		return in.tgt.Resync()
	}
	return nil
}

func (in *Injector) skip(ev Event) error {
	in.Skipped++
	in.Log = append(in.Log, fmt.Sprintf("%8d  %s(%d) [no-op]", ev.At, ev.Kind, ev.Arg))
	return nil
}

// Unmapped reports how many hot pages are currently unmapped by the
// injector (the demand path in the simulator faults them back in).
func (in *Injector) Unmapped() int { return len(in.unmapped) }

// Refault is the simulator's demand-paging path: when the workload trips
// over an injected unmap, every still-unmapped page is faulted back in and
// derived structures are resynced, in one wave (batching keeps rebuild
// cost bounded for the one-shot designs).
func (in *Injector) Refault() error {
	if len(in.unmapped) == 0 {
		return nil
	}
	if err := in.touchAll(); err != nil {
		return err
	}
	in.Refaults++
	if in.tgt.Resync != nil {
		return in.tgt.Resync()
	}
	return nil
}

func (in *Injector) touchAll() error {
	vas := make([]mem.VAddr, 0, len(in.unmapped))
	for va := range in.unmapped {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	for _, va := range vas {
		if _, err := in.tgt.AS.Touch(va, true); err != nil {
			return err
		}
		delete(in.unmapped, va)
	}
	return nil
}

// FlakyBackend wraps a TEA backend and fails the next N allocations on
// demand, modelling machine-contiguous memory exhaustion (§4.3's motivation
// for split-and-retry and the no-TEA fallback).
type FlakyBackend struct {
	Inner    tea.Backend
	failN    int
	Failures int
}

// NewFlakyBackend wraps inner with zero pending failures.
func NewFlakyBackend(inner tea.Backend) *FlakyBackend { return &FlakyBackend{Inner: inner} }

// FailNext arms the next n AllocTEA calls to fail.
func (b *FlakyBackend) FailNext(n int) { b.failN = n }

// AllocTEA implements tea.Backend.
func (b *FlakyBackend) AllocTEA(frames int) (tea.Region, error) {
	if b.failN > 0 {
		b.failN--
		b.Failures++
		return tea.Region{}, fmt.Errorf("fault: injected TEA allocation failure (%d frames)", frames)
	}
	return b.Inner.AllocTEA(frames)
}

// FreeTEA implements tea.Backend.
func (b *FlakyBackend) FreeTEA(r tea.Region) { b.Inner.FreeTEA(r) }

// ExpandTEAInPlace implements tea.Backend; armed failures also refuse
// expansion (without consuming a failure credit).
func (b *FlakyBackend) ExpandTEAInPlace(r tea.Region, extra int) (tea.Region, bool) {
	if b.failN > 0 {
		return r, false
	}
	return b.Inner.ExpandTEAInPlace(r, extra)
}

var _ tea.Backend = (*FlakyBackend)(nil)
