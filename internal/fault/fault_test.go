package fault

import (
	"strings"
	"testing"
)

// The injector's scheduling contract is what the batched engine builds its
// fault-boundary spans on (internal/sim): events fire at exactly their At
// op, NextAt never moves backwards, and a drained schedule accounts for
// every event as either applied or skipped. These tests pin that contract
// without a simulation around it — an empty Target makes every
// environment-touching kind a recorded no-op.

const sentinel = 1 << 62

// TestNewSortsEventsStablyByAt: New orders the schedule by At while
// preserving declaration order among equal trigger ops, and it operates on
// its own copy of the event slice.
func TestNewSortsEventsStablyByAt(t *testing.T) {
	events := []Event{
		{At: 30, Kind: FlushCaches},
		{At: 10, Kind: DropDecoys}, // no-op for the empty target
		{At: 10, Kind: FlushCaches},
		{At: 20, Kind: AllocPressure, Arg: 3}, // no-op for the empty target
	}
	plan := Plan{Name: "sort", Events: events}
	in := New(plan, Target{})
	events[0].At = 0 // New must have copied; mutating the original is inert

	if got := in.NextAt(); got != 10 {
		t.Fatalf("NextAt before any tick = %d, want 10", got)
	}
	if err := in.Drain(); err != nil {
		t.Fatal(err)
	}
	want := []string{"drop-decoys", "flush-caches", "alloc-pressure", "flush-caches"}
	if len(in.Log) != len(want) {
		t.Fatalf("log has %d lines, want %d:\n%s", len(in.Log), len(want), strings.Join(in.Log, "\n"))
	}
	for i, kind := range want {
		if !strings.Contains(in.Log[i], kind) {
			t.Errorf("log[%d] = %q, want kind %q (stable At order)", i, in.Log[i], kind)
		}
	}
	if in.Applied != 2 || in.Skipped != 2 {
		t.Fatalf("Applied/Skipped = %d/%d, want 2/2", in.Applied, in.Skipped)
	}
}

// TestTickFiresAtExactOp: an event with At == op fires on Tick(op) and not
// one op earlier — the At <= op semantics the engine's span sizing assumes.
func TestTickFiresAtExactOp(t *testing.T) {
	in := New(Plan{Events: []Event{{At: 100, Kind: FlushCaches}}}, Target{})
	if err := in.Tick(99); err != nil {
		t.Fatal(err)
	}
	if in.Applied != 0 {
		t.Fatalf("event at 100 fired on Tick(99)")
	}
	if got := in.NextAt(); got != 100 {
		t.Fatalf("NextAt after Tick(99) = %d, want 100", got)
	}
	if err := in.Tick(100); err != nil {
		t.Fatal(err)
	}
	if in.Applied != 1 {
		t.Fatalf("event at 100 did not fire on Tick(100)")
	}
	if got := in.NextAt(); got != sentinel {
		t.Fatalf("NextAt after exhaustion = %d, want the 1<<62 sentinel", got)
	}
}

// TestNextAtMonotonicAcrossSuite walks every standard schedule tick by
// tick: NextAt never decreases, ticking at NextAt always consumes at least
// one event, and the exhausted injector reports the sentinel with every
// event accounted for.
func TestNextAtMonotonicAcrossSuite(t *testing.T) {
	const ops = 1600
	for _, plan := range Suite(ops) {
		t.Run(plan.Name, func(t *testing.T) {
			in := New(plan, Target{})
			prev := -1
			for steps := 0; in.NextAt() != sentinel; steps++ {
				if steps > len(plan.Events) {
					t.Fatalf("schedule did not drain after %d ticks", steps)
				}
				at := in.NextAt()
				if at < prev {
					t.Fatalf("NextAt went backwards: %d after %d", at, prev)
				}
				if at < 0 || at >= ops {
					t.Fatalf("event scheduled at %d, outside the %d-op run", at, ops)
				}
				before := in.Applied + in.Skipped
				if err := in.Tick(at); err != nil {
					t.Fatal(err)
				}
				if in.Applied+in.Skipped == before {
					t.Fatalf("Tick(%d) at NextAt consumed no event", at)
				}
				prev = at
			}
			if got := in.Applied + in.Skipped; got != len(plan.Events) {
				t.Fatalf("%d of %d events accounted for", got, len(plan.Events))
			}
		})
	}
}

// TestDrainAppliesRemainingSchedule: Drain executes everything still
// pending regardless of the op counter's position.
func TestDrainAppliesRemainingSchedule(t *testing.T) {
	plan := Chaos(1 << 20)
	in := New(plan, Target{})
	if err := in.Tick(plan.Events[0].At); err != nil {
		t.Fatal(err)
	}
	if err := in.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := in.Applied + in.Skipped; got != len(plan.Events) {
		t.Fatalf("after Drain %d of %d events accounted for", got, len(plan.Events))
	}
	if got := in.NextAt(); got != sentinel {
		t.Fatalf("NextAt after Drain = %d, want the sentinel", got)
	}
}

// TestSkipSemanticsForNilTargets: one event of every kind against an empty
// Target — everything needing a handle is a logged no-op, while
// FlushCaches (whose handles are both optional) still applies.
func TestSkipSemanticsForNilTargets(t *testing.T) {
	kinds := []Kind{StartMigration, PumpMigration, RegisterPressure, DropDecoys,
		AllocPressure, UnmapHot, TouchUnmapped, FlushCaches, SplitHuge, PromoteHuge}
	var events []Event
	for i, k := range kinds {
		events = append(events, Event{At: i, Kind: k, Arg: 1})
	}
	in := New(Plan{Name: "nil-targets", Events: events}, Target{})
	if err := in.Drain(); err != nil {
		t.Fatal(err)
	}
	if in.Applied != 1 || in.Skipped != len(kinds)-1 {
		t.Fatalf("Applied/Skipped = %d/%d, want 1/%d:\n%s",
			in.Applied, in.Skipped, len(kinds)-1, strings.Join(in.Log, "\n"))
	}
	noops := 0
	for _, line := range in.Log {
		if strings.Contains(line, "[no-op]") {
			noops++
		}
	}
	if noops != in.Skipped {
		t.Fatalf("%d [no-op] log lines for %d skips", noops, in.Skipped)
	}
}

// TestSuiteShape: the standard suite stays usable by campaigns — named,
// uniquely seeded, non-empty schedules.
func TestSuiteShape(t *testing.T) {
	suite := Suite(4000)
	if len(suite) == 0 {
		t.Fatal("empty suite")
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, p := range suite {
		if p.Name == "" {
			t.Fatal("unnamed plan")
		}
		if names[p.Name] {
			t.Fatalf("duplicate plan name %q", p.Name)
		}
		names[p.Name] = true
		if seeds[p.Seed] {
			t.Fatalf("duplicate plan seed %d (%s)", p.Seed, p.Name)
		}
		seeds[p.Seed] = true
		if len(p.Events) == 0 {
			t.Fatalf("plan %q has no events", p.Name)
		}
	}
}
