package serve

import (
	"fmt"

	"dmt/internal/sim"
	"dmt/internal/workload"
)

// RunRequest is the wire form of one simulation job: the result-determining
// subset of sim.Config that the service exposes, plus scheduling hints
// (Workers) and the requester's patience (TimeoutMs). Zero values defer to
// the engine's defaults (sim.Config.Normalized), so the minimal request is
// just {env, design, workload}.
type RunRequest struct {
	Env      string `json:"env"`
	Design   string `json:"design"`
	Workload string `json:"workload"`
	THP      bool   `json:"thp,omitempty"`
	// Ops is the trace length (0 = engine default).
	Ops int `json:"ops,omitempty"`
	// Seed drives trace generation (0 = engine default).
	Seed int64 `json:"seed,omitempty"`
	// WSMiB overrides the workload's scaled default working set.
	WSMiB int `json:"ws_mib,omitempty"`
	// CacheScale is the structure-scaling divisor (0 = engine default).
	CacheScale int `json:"cache_scale,omitempty"`
	// Workers schedules shard execution; it never changes results.
	Workers int `json:"workers,omitempty"`
	// Shards decomposes the trace; results depend on it (see DESIGN.md §8).
	Shards int `json:"shards,omitempty"`
	// Verify arms the differential oracle on every translation.
	Verify bool `json:"verify,omitempty"`
	// TimeoutMs bounds how long this requester waits for the result; the
	// job itself is governed by the server's per-job deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Config validates the request and converts it to an engine configuration.
// maxOps, when positive, caps the admitted trace length.
func (q *RunRequest) Config(maxOps int) (sim.Config, error) {
	env, err := sim.ParseEnvironment(q.Env)
	if err != nil {
		return sim.Config{}, err
	}
	design, err := sim.ParseDesign(q.Design)
	if err != nil {
		return sim.Config{}, err
	}
	wl, err := workload.ByName(q.Workload)
	if err != nil {
		return sim.Config{}, err
	}
	switch {
	case q.Ops < 0:
		return sim.Config{}, fmt.Errorf("serve: ops must be >= 0 (got %d)", q.Ops)
	case maxOps > 0 && q.Ops > maxOps:
		return sim.Config{}, fmt.Errorf("serve: ops %d exceeds the admission cap %d", q.Ops, maxOps)
	case q.WSMiB < 0:
		return sim.Config{}, fmt.Errorf("serve: ws_mib must be >= 0 (got %d)", q.WSMiB)
	case q.CacheScale < 0:
		return sim.Config{}, fmt.Errorf("serve: cache_scale must be >= 0 (got %d)", q.CacheScale)
	case q.Workers < 0:
		return sim.Config{}, fmt.Errorf("serve: workers must be >= 0 (got %d)", q.Workers)
	case q.Shards < 0:
		return sim.Config{}, fmt.Errorf("serve: shards must be >= 0 (got %d)", q.Shards)
	case q.TimeoutMs < 0:
		return sim.Config{}, fmt.Errorf("serve: timeout_ms must be >= 0 (got %d)", q.TimeoutMs)
	}
	return sim.Config{
		Env: env, Design: design, THP: q.THP, Workload: wl,
		WSBytes: uint64(q.WSMiB) << 20, Ops: q.Ops, Seed: q.Seed,
		CacheScale: q.CacheScale, Workers: q.Workers, Shards: q.Shards,
		Verify: q.Verify,
	}, nil
}

// jobKey is the request-coalescing key: the result-determining fields of a
// normalized configuration. It extends the engine's buildKey (env, design,
// THP, workload, working set, cache scale) with the trace-level fields the
// wire exposes (ops, seed, shards, verify). Workers is deliberately
// excluded — it schedules shards but never changes results (DESIGN.md §8)
// — so two requests differing only in worker count share one simulation.
type jobKey struct {
	env    sim.Environment
	design sim.Design
	thp    bool
	wl     string
	ws     uint64
	scale  int
	ops    int
	seed   int64
	shards int
	verify bool
}

// CanonicalKey renders the result-determining subset of a configuration —
// the same fields as the in-memory coalescing jobKey, in the same spirit —
// as one stable text line. It is the durable identity of a simulation: the
// sweep fabric's cell key and the content address of the persistent result
// store (internal/store) are both derived from it, so a result computed by
// any worker anywhere can be recognized by any coordinator later. The
// leading version tag invalidates every stored entry if the key schema
// ever changes. Workers is excluded (it schedules, never changes results);
// the engine-only knobs the wire does not expose (fault plans, TEA
// ablations, fragmentation targets) are zero by construction for every
// request that can reach this layer.
func CanonicalKey(cfg sim.Config) string {
	cfg = cfg.Normalized()
	return fmt.Sprintf("v1 env=%s design=%s thp=%t wl=%s ws=%d scale=%d ops=%d seed=%d shards=%d verify=%t",
		cfg.Env, cfg.Design, cfg.THP, cfg.Workload.Name, cfg.WSBytes,
		cfg.CacheScale, cfg.Ops, cfg.Seed, cfg.Shards, cfg.Verify)
}

// keyFor derives the coalescing key; cfg must already be normalized.
func keyFor(cfg sim.Config) jobKey {
	return jobKey{
		env: cfg.Env, design: cfg.Design, thp: cfg.THP, wl: cfg.Workload.Name,
		ws: cfg.WSBytes, scale: cfg.CacheScale, ops: cfg.Ops, seed: cfg.Seed,
		shards: cfg.Shards, verify: cfg.Verify,
	}
}

// RunResponse is the wire form of a Result. Every integer field is carried
// verbatim, so a response can be compared bit-for-bit against a direct
// sim.Run of the same configuration (the serve smoke test does exactly
// that); the float fields are pure functions of the integers.
type RunResponse struct {
	Env      string `json:"env"`
	Design   string `json:"design"`
	Workload string `json:"workload"`
	THP      bool   `json:"thp"`
	Shards   int    `json:"shards"`

	Ops             int     `json:"ops"`
	TLBMisses       uint64  `json:"tlb_misses"`
	Walks           uint64  `json:"walks"`
	WalkCycles      uint64  `json:"walk_cycles"`
	AvgWalkCycles   float64 `json:"avg_walk_cycles"`
	WalkP50         uint64  `json:"walk_p50"`
	WalkP99         uint64  `json:"walk_p99"`
	WalkMax         uint64  `json:"walk_max"`
	SeqRefs         uint64  `json:"seq_refs"`
	TotalRefs       uint64  `json:"total_refs"`
	DataCycles      uint64  `json:"data_cycles"`
	Coverage        float64 `json:"coverage"`
	Fallbacks       uint64  `json:"fallbacks"`
	Hypercalls      uint64  `json:"hypercalls"`
	VMExits         uint64  `json:"vm_exits"`
	ShadowSyncs     uint64  `json:"shadow_syncs"`
	IsolationFaults uint64  `json:"isolation_faults"`
	PTEBytes        int     `json:"pte_bytes"`
	Checked         uint64  `json:"checked"`
	Mismatches      uint64  `json:"mismatches"`

	// Counters is the run's named-counter snapshot (TLB/PWC/cache splits,
	// walker-chain attribution — DESIGN.md §10).
	Counters map[string]uint64 `json:"counters"`

	// Coalesced reports that this response rode a flight another request
	// started (transport metadata, not part of the simulation result).
	Coalesced bool `json:"coalesced,omitempty"`
}

// ResponseFor flattens a Result into its wire form.
func ResponseFor(res *sim.Result) RunResponse {
	cfg := res.Config.Normalized()
	var max uint64
	if res.WalkHist != nil {
		max = res.WalkHist.Max
	}
	return RunResponse{
		Env: cfg.Env.String(), Design: string(cfg.Design), Workload: cfg.Workload.Name,
		THP: cfg.THP, Shards: cfg.Shards,
		Ops:       res.Ops,
		TLBMisses: res.TLBMisses, Walks: res.Walks, WalkCycles: res.WalkCycles,
		AvgWalkCycles: res.AvgWalkCycles(),
		WalkP50:       res.WalkPercentile(50), WalkP99: res.WalkPercentile(99), WalkMax: max,
		SeqRefs: res.SeqRefs, TotalRefs: res.TotalRefs, DataCycles: res.DataCycles,
		Coverage: res.Coverage, Fallbacks: res.Fallbacks,
		Hypercalls: res.Hypercalls, VMExits: res.VMExits,
		ShadowSyncs: res.ShadowSyncs, IsolationFaults: res.IsolationFaults,
		PTEBytes: res.PTEBytes, Checked: res.Checked, Mismatches: res.Mismatches,
		Counters: res.Counters,
	}
}
