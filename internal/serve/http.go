package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the service's HTTP surface:
//
//	POST /run      submit a simulation and wait for its result
//	GET  /livez    liveness: 200 as long as the process serves requests,
//	               even while draining (in-flight jobs are still finishing)
//	GET  /readyz   readiness: 200 while admitting new jobs, 503 once
//	               draining — load balancers and the sweep coordinator stop
//	               routing here without killing in-flight work
//	GET  /healthz  back-compat alias for /readyz
//	GET  /metrics  the obs registry as sorted "name value" text lines
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /healthz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	cfg, err := req.Config(s.cfg.MaxOps)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx := r.Context()
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	res, coalesced, err := s.Submit(ctx, cfg)
	switch {
	case err == nil:
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, context.DeadlineExceeded):
		// The job's own deadline, or this requester's timeout_ms.
		writeError(w, http.StatusGatewayTimeout, err.Error())
		return
	case errors.Is(err, ErrAborted), errors.Is(err, context.Canceled):
		// Server-side abort (shutdown or abandoned flight) — transient; a
		// retry lands on a fresh flight, so advertise it (a disconnected
		// client never reads this code, but a coalesced or relaying one
		// does).
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := ResponseFor(res)
	resp.Coalesced = coalesced
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Response already committed; nothing sane to send.
		return
	}
}

// handleLivez is the liveness probe: 200 for as long as the process can
// answer HTTP at all. A draining server is still live — its in-flight jobs
// are finishing — so orchestrators must not kill it off this endpoint.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	queued, capacity, inflight := s.queueStats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{
		"status":    "ok",
		"queued":    queued,
		"queue_cap": capacity,
		"inflight":  inflight,
	})
}

// handleReadyz is the readiness probe: 200 while the server admits new
// jobs, 503 once draining. The sweep coordinator routes cells only to
// ready workers, so a draining daemon stops receiving work while its
// in-flight cells run to completion (it stays live — see handleLivez).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	queued, capacity, inflight := s.queueStats()
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]interface{}{
		"status":    status,
		"queued":    queued,
		"queue_cap": capacity,
		"inflight":  inflight,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, _, inflight := s.queueStats()
	s.reg.Set("serve.queue_depth", uint64(queued))
	s.reg.Set("serve.inflight", uint64(inflight))
	s.reg.Handler().ServeHTTP(w, r)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
