// Package serve turns the sharded simulation engine into a long-running
// HTTP/JSON service: a bounded job queue with admission control (429 when
// full), singleflight coalescing of identical configurations layered on the
// engine's prototype cache, per-job deadlines, graceful drain, and
// /healthz + /metrics endpoints backed by the internal/obs registry. The
// service contract — queue bounds, the coalescing key, cancellation
// granularity, drain semantics — is documented in DESIGN.md §11.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dmt/internal/obs"
	"dmt/internal/sim"
)

// Config sizes the service.
type Config struct {
	// QueueDepth bounds how many distinct jobs may be admitted but not yet
	// started; a full queue rejects new work (HTTP 429). Coalesced requests
	// ride an existing job and never consume a slot. Default 64.
	QueueDepth int
	// Workers is how many jobs execute concurrently (each job additionally
	// runs its shards on its own sim worker pool). Default 2.
	Workers int
	// JobTimeout bounds one job's execution, measured from the moment a
	// worker picks it up (queue wait is bounded by the requester's own
	// timeout instead). Default 2 minutes; negative disables.
	JobTimeout time.Duration
	// MaxOps caps the trace length a request may ask for. Default 50M;
	// negative disables.
	MaxOps int
	// Registry receives the service counters and backs /metrics.
	// Default obs.Default.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxOps == 0 {
		c.MaxOps = 50_000_000
	}
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	return c
}

// Sentinel admission errors; the HTTP layer maps them to 503 and 429.
var (
	ErrDraining  = errors.New("serve: draining, not accepting new jobs")
	ErrQueueFull = errors.New("serve: job queue full")
)

// ErrAborted marks a run the server gave up on before completion — the last
// waiter abandoned the flight, or the server shut down mid-run. It is a
// transient condition: the same configuration re-submitted later succeeds,
// so retrying clients (the sweep fabric's classifier, internal/sweep) treat
// it as retryable. Errors carrying it also carry context.Canceled, keeping
// the existing counter and status mapping intact. The HTTP layer answers
// 503 with Retry-After.
var ErrAborted = errors.New("serve: run aborted server-side")

// flight is one admitted simulation shared by every request that coalesced
// onto it. Its context is detached from any single requester: it dies when
// the last waiter abandons it, when its per-job deadline expires, or when
// the server closes — never when just one of several waiters goes away.
type flight struct {
	key     jobKey
	cfg     sim.Config
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	res     *sim.Result
	err     error
	waiters int // guarded by Server.mu
}

// Server is the long-running simulation service. Create with New, mount
// Handler on an http.Server, and shut down with Drain then Close.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	baseCtx context.Context
	stop    context.CancelFunc

	mu       sync.Mutex
	flights  map[jobKey]*flight // admitted or running, coalescing targets
	draining bool
	closed   bool

	queue   chan *flight
	workers sync.WaitGroup // worker goroutines
	jobs    sync.WaitGroup // admitted jobs not yet finished
}

// New starts a server's worker pool and returns it ready to admit jobs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Registry,
		baseCtx: ctx,
		stop:    stop,
		flights: map[jobKey]*flight{},
		queue:   make(chan *flight, cfg.QueueDepth),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Submit admits (or coalesces) one job and waits for its result or for
// reqCtx to expire. The bool reports whether the request coalesced onto a
// flight another requester started. cfg is normalized internally.
func (s *Server) Submit(reqCtx context.Context, cfg sim.Config) (*sim.Result, bool, error) {
	cfg = cfg.Normalized()
	f, coalesced, err := s.admit(keyFor(cfg), cfg)
	if err != nil {
		return nil, false, err
	}
	select {
	case <-f.done:
		return f.res, coalesced, f.err
	case <-reqCtx.Done():
		s.abandon(f)
		return nil, coalesced, reqCtx.Err()
	}
}

// admit either attaches the request to an in-flight identical job or
// enqueues a new one, enforcing drain and queue bounds.
func (s *Server) admit(key jobKey, cfg sim.Config) (*flight, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.reg.Add("serve.rejected_draining", 1)
		return nil, false, ErrDraining
	}
	if f, ok := s.flights[key]; ok {
		f.waiters++
		s.reg.Add("serve.coalesced", 1)
		return f, true, nil
	}
	fctx, fcancel := context.WithCancel(s.baseCtx)
	f := &flight{key: key, cfg: cfg, ctx: fctx, cancel: fcancel, done: make(chan struct{}), waiters: 1}
	select {
	case s.queue <- f:
	default:
		fcancel()
		s.reg.Add("serve.rejected_full", 1)
		return nil, false, ErrQueueFull
	}
	s.flights[key] = f
	s.jobs.Add(1)
	s.reg.Add("serve.admitted", 1)
	return f, false, nil
}

// abandon detaches one waiter. The last waiter out cancels the flight —
// nobody wants the result — and frees its key so a later identical request
// starts fresh instead of coalescing onto a dying run.
func (s *Server) abandon(f *flight) {
	s.mu.Lock()
	f.waiters--
	orphaned := f.waiters == 0
	if orphaned && s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.mu.Unlock()
	if orphaned {
		f.cancel()
		s.reg.Add("serve.abandoned", 1)
	}
}

func (s *Server) worker() {
	defer s.workers.Done()
	for f := range s.queue {
		s.runFlight(f)
		s.jobs.Done()
	}
}

// runFlight executes one job under its per-job deadline and publishes the
// result. The key is released before done is closed, so a submission racing
// the completion either coalesces onto the still-useful result or starts a
// fresh flight — never attaches to a closed one.
func (s *Server) runFlight(f *flight) {
	defer f.cancel()
	ctx := f.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	start := time.Now()
	if err := ctx.Err(); err != nil {
		f.err = err // abandoned or shut down while queued; skip the run
	} else {
		f.res, f.err = sim.RunCtx(ctx, f.cfg)
	}
	if f.err != nil && errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
		// A server-side abort (abandoned flight or shutdown), not the job
		// deadline: type it so waiters — and through the HTTP layer, the
		// sweep retry classifier — can tell transient from permanent.
		f.err = fmt.Errorf("%w: %w", ErrAborted, f.err)
	}
	s.mu.Lock()
	if s.flights[f.key] == f {
		delete(s.flights, f.key)
	}
	s.mu.Unlock()
	close(f.done)
	switch {
	case f.err == nil:
		s.reg.Add("serve.completed", 1)
		s.reg.Add("serve.run_ns", uint64(time.Since(start).Nanoseconds()))
	case errors.Is(f.err, context.DeadlineExceeded):
		s.reg.Add("serve.deadline_exceeded", 1)
	case errors.Is(f.err, context.Canceled):
		s.reg.Add("serve.cancelled", 1)
	default:
		s.reg.Add("serve.failed", 1)
	}
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission — new submissions fail with ErrDraining (HTTP 503)
// — and waits until every already-admitted job has finished, or until ctx
// expires. In-flight jobs run to completion; nothing is aborted.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts the server down: admission stops, every still-running job is
// cancelled (its waiters observe context.Canceled), and the worker pool is
// joined. Graceful shutdown is Drain (finish in-flight work) then Close;
// Close alone is the abrupt path. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.draining = true
	s.closed = true
	// Safe: admissions send under the same mutex and draining is already
	// set, so no send can follow this close.
	close(s.queue)
	s.mu.Unlock()
	s.stop()
	s.workers.Wait()
}

// queueStats snapshots queue occupancy for /healthz and /metrics gauges.
func (s *Server) queueStats() (queued, capacity, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), cap(s.queue), len(s.flights)
}
