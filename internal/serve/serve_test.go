package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dmt/internal/obs"
	"dmt/internal/sim"
)

// postRun submits one request and decodes the response (or the error body).
func postRun(t *testing.T, client *http.Client, url string, req RunRequest) (int, RunResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, RunResponse{}, e["error"]
	}
	var out RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out, ""
}

func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, now)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestServeSmoke is the acceptance smoke: 100 concurrent submissions of 4
// distinct configurations all complete, at least one rides another's
// flight (coalescing), and every response is bit-identical to a direct
// sim.Run of the same configuration.
func TestServeSmoke(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	srv := New(Config{QueueDepth: 16, Workers: 4, JobTimeout: 2 * time.Minute, Registry: reg})
	ts := httptest.NewServer(srv.Handler())

	reqs := make([]RunRequest, 4)
	for i := range reqs {
		reqs[i] = RunRequest{
			Env: "native", Design: "dmt", Workload: "GUPS", THP: true,
			Ops: 20_000, Seed: int64(i + 1), WSMiB: 24, Workers: 2, Shards: 2,
		}
	}

	const n = 100
	type reply struct {
		status int
		resp   RunResponse
		msg    string
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, resp, msg := postRun(t, ts.Client(), ts.URL, reqs[i%len(reqs)])
			replies[i] = reply{status, resp, msg}
		}(i)
	}
	wg.Wait()

	// Ground truth: the same configurations run directly.
	want := make([]RunResponse, len(reqs))
	for i, rq := range reqs {
		cfg, err := rq.Config(0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ResponseFor(res)
	}

	coalescedSeen := 0
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, r.status, r.msg)
		}
		got := r.resp
		if got.Coalesced {
			coalescedSeen++
		}
		got.Coalesced = false
		if !reflect.DeepEqual(got, want[i%len(reqs)]) {
			t.Fatalf("request %d: served result differs from direct sim.Run:\ngot  %+v\nwant %+v",
				i, got, want[i%len(reqs)])
		}
	}
	if hits := reg.Snapshot()["serve.coalesced"]; hits == 0 {
		t.Fatalf("100 concurrent submissions of 4 configs recorded no coalescing hits")
	} else {
		t.Logf("coalescing hits: %d of %d requests (%d responses flagged)", hits, n, coalescedSeen)
	}

	ts.Close()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	srv.Close()
	waitForGoroutines(t, goroutinesBefore)
}

// TestServeDrain: draining finishes in-flight jobs, rejects new ones with
// 503, and leaks no goroutines.
func TestServeDrain(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	srv := New(Config{QueueDepth: 4, Workers: 1, Registry: reg})
	ts := httptest.NewServer(srv.Handler())

	slow := RunRequest{
		Env: "native", Design: "vanilla", Workload: "GUPS", THP: true,
		Ops: 800_000, Seed: 3, WSMiB: 24, Workers: 1, Shards: 1,
	}
	type reply struct {
		status int
		resp   RunResponse
	}
	inflight := make(chan reply, 1)
	go func() {
		status, resp, _ := postRun(t, ts.Client(), ts.URL, slow)
		inflight <- reply{status, resp}
	}()

	// Give the job time to be admitted, then drain.
	waitFor(t, time.Second, func() bool { return reg.Snapshot()["serve.admitted"] >= 1 })
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, time.Second, func() bool { return srv.Draining() })

	// New work is rejected while draining.
	rejected := slow
	rejected.Seed = 99
	if status, _, _ := postRun(t, ts.Client(), ts.URL, rejected); status != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: status %d, want 503", status)
	}
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz during drain: status %d, want 503", resp.StatusCode)
		}
	}

	// The in-flight job still completes, and the drain then finishes.
	r := <-inflight
	if r.status != http.StatusOK {
		t.Fatalf("in-flight job during drain: status %d, want 200", r.status)
	}
	if r.resp.Ops != slow.Ops {
		t.Fatalf("in-flight job returned %d ops, want %d", r.resp.Ops, slow.Ops)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	srv.Close()
	waitForGoroutines(t, goroutinesBefore)
}

// TestServeQueueFull: with one worker and one queue slot, a third distinct
// concurrent job must be rejected with 429.
func TestServeQueueFull(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	srv := New(Config{QueueDepth: 1, Workers: 1, Registry: reg})
	ts := httptest.NewServer(srv.Handler())

	statuses := make([]int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := RunRequest{
				Env: "native", Design: "vanilla", Workload: "GUPS", THP: true,
				Ops: 20_000_000, Seed: int64(i + 1), WSMiB: 24, Workers: 1, Shards: 1,
			}
			statuses[i], _, _ = postRun(t, ts.Client(), ts.URL, req)
		}(i)
	}
	// One job can run, one can queue; the third submission must bounce.
	waitFor(t, 10*time.Second, func() bool { return reg.Snapshot()["serve.rejected_full"] >= 1 })

	// Abort the slow runs: Close cancels them, their waiters get 503s.
	srv.Close()
	wg.Wait()
	got429 := 0
	for _, s := range statuses {
		if s == http.StatusTooManyRequests {
			got429++
		}
	}
	if got429 == 0 {
		t.Fatalf("no 429 among concurrent submissions beyond queue capacity: %v", statuses)
	}
	ts.Close()
	waitForGoroutines(t, goroutinesBefore)
}

// TestServeClientCancel: a requester disconnecting cancels the orphaned
// run (context.Canceled, counted as cancelled+abandoned) without poisoning
// the prototype cache — the same machine then serves a fresh request whose
// result matches a direct run.
func TestServeClientCancel(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	srv := New(Config{QueueDepth: 4, Workers: 2, Registry: reg})
	ts := httptest.NewServer(srv.Handler())

	big := RunRequest{
		Env: "native", Design: "dmt", Workload: "GUPS", THP: true,
		Ops: 40_000_000, Seed: 5, WSMiB: 24, Workers: 1, Shards: 2,
	}
	body, _ := json.Marshal(big)
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(httpReq)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("cancelled request got status %d", resp.StatusCode)
		}
		errc <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return reg.Snapshot()["serve.admitted"] >= 1 })
	cancel()
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled request: %v", err)
	}
	// The orphaned flight is cancelled and the worker freed.
	waitFor(t, 10*time.Second, func() bool {
		s := reg.Snapshot()
		return s["serve.abandoned"] >= 1 && s["serve.cancelled"] >= 1
	})

	// Same build, sane trace length: must succeed and match a direct run.
	small := big
	small.Ops = 20_000
	status, got, msg := postRun(t, ts.Client(), ts.URL, small)
	if status != http.StatusOK {
		t.Fatalf("post-cancel run: status %d (%s)", status, msg)
	}
	cfg, err := small.Config(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("direct post-cancel run: %v", err)
	}
	want := ResponseFor(res)
	got.Coalesced = false
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-cancel served result differs from direct run:\ngot  %+v\nwant %+v", got, want)
	}

	ts.Close()
	srv.Drain(context.Background())
	srv.Close()
	waitForGoroutines(t, goroutinesBefore)
}

// TestServeValidation: malformed and nonsensical requests are rejected with
// 400 before touching the queue.
func TestServeValidation(t *testing.T) {
	srv := New(Config{QueueDepth: 1, Workers: 1, MaxOps: 1000, Registry: obs.NewRegistry()})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  RunRequest
	}{
		{"bad env", RunRequest{Env: "bare-metal", Design: "dmt", Workload: "GUPS"}},
		{"bad design", RunRequest{Env: "native", Design: "speculative", Workload: "GUPS"}},
		{"bad workload", RunRequest{Env: "native", Design: "dmt", Workload: "nope"}},
		{"negative ops", RunRequest{Env: "native", Design: "dmt", Workload: "GUPS", Ops: -1}},
		{"ops over cap", RunRequest{Env: "native", Design: "dmt", Workload: "GUPS", Ops: 2000}},
		{"negative workers", RunRequest{Env: "native", Design: "dmt", Workload: "GUPS", Workers: -2}},
		{"negative shards", RunRequest{Env: "native", Design: "dmt", Workload: "GUPS", Shards: -2}},
		{"negative timeout", RunRequest{Env: "native", Design: "dmt", Workload: "GUPS", TimeoutMs: -5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, msg := postRun(t, ts.Client(), ts.URL, tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d (%s), want 400", status, msg)
			}
			if msg == "" {
				t.Fatal("400 without an error message")
			}
		})
	}

	// Metrics and health endpoints respond while idle.
	for _, path := range []string{"/metrics", "/healthz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestServeLivezReadyz: liveness stays 200 through a drain (in-flight work
// is still finishing) while readiness — and its back-compat alias /healthz
// — flips to 503, so a coordinator stops routing without killing the
// worker.
func TestServeLivezReadyz(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	srv := New(Config{QueueDepth: 4, Workers: 1, Registry: reg})
	ts := httptest.NewServer(srv.Handler())

	get := func(path string) int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, path := range []string{"/livez", "/readyz", "/healthz"} {
		if code := get(path); code != http.StatusOK {
			t.Fatalf("%s while idle: status %d, want 200", path, code)
		}
	}

	// Keep one slow job in flight so the drain below has work to wait on —
	// the liveness probe must stay green exactly in that window.
	slow := RunRequest{
		Env: "native", Design: "vanilla", Workload: "GUPS", THP: true,
		Ops: 800_000, Seed: 7, WSMiB: 24, Workers: 1, Shards: 1,
	}
	inflight := make(chan int, 1)
	go func() {
		status, _, _ := postRun(t, ts.Client(), ts.URL, slow)
		inflight <- status
	}()
	waitFor(t, time.Second, func() bool { return reg.Snapshot()["serve.admitted"] >= 1 })
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, time.Second, func() bool { return srv.Draining() })

	if code := get("/livez"); code != http.StatusOK {
		t.Fatalf("/livez while draining: status %d, want 200 (draining is live)", code)
	}
	for _, path := range []string{"/readyz", "/healthz"} {
		if code := get(path); code != http.StatusServiceUnavailable {
			t.Fatalf("%s while draining: status %d, want 503", path, code)
		}
	}

	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("in-flight job during drain: status %d, want 200", status)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	srv.Close()
	waitForGoroutines(t, goroutinesBefore)
}

// TestServeAbortedTyped: a run the server abandons mid-flight surfaces as
// ErrAborted — typed and retryable — still carrying context.Canceled, and
// the HTTP layer answers 503 with Retry-After so a retry classifier sees a
// transient failure, not a permanent one.
func TestServeAbortedTyped(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	srv := New(Config{QueueDepth: 4, Workers: 1, Registry: reg})

	cfg, err := (&RunRequest{
		Env: "native", Design: "vanilla", Workload: "GUPS", THP: true,
		Ops: 40_000_000, Seed: 11, WSMiB: 24, Workers: 1, Shards: 1,
	}).Config(0)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := srv.Submit(context.Background(), cfg)
		errc <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return reg.Snapshot()["serve.admitted"] >= 1 })
	srv.Close() // abrupt shutdown cancels the in-flight run
	got := <-errc
	if !errors.Is(got, ErrAborted) {
		t.Fatalf("aborted run returned %v, want errors.Is(_, ErrAborted)", got)
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("aborted run returned %v, want it to still carry context.Canceled", got)
	}
	if reg.Snapshot()["serve.cancelled"] != 1 {
		t.Fatalf("serve.cancelled = %d, want 1", reg.Snapshot()["serve.cancelled"])
	}
	waitForGoroutines(t, goroutinesBefore)

	// Same condition over HTTP: 503 + Retry-After, error body names the
	// abort.
	srv2 := New(Config{QueueDepth: 4, Workers: 1, Registry: obs.NewRegistry()})
	ts := httptest.NewServer(srv2.Handler())
	body, _ := json.Marshal(RunRequest{
		Env: "native", Design: "vanilla", Workload: "GUPS", THP: true,
		Ops: 40_000_000, Seed: 12, WSMiB: 24, Workers: 1, Shards: 1,
	})
	type httpReply struct {
		status     int
		retryAfter string
		msg        string
	}
	replyc := make(chan httpReply, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("POST /run: %v", err)
			replyc <- httpReply{}
			return
		}
		defer resp.Body.Close()
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		replyc <- httpReply{resp.StatusCode, resp.Header.Get("Retry-After"), e["error"]}
	}()
	waitFor(t, 5*time.Second, func() bool { return srv2.reg.Snapshot()["serve.admitted"] >= 1 })
	srv2.Close()
	r := <-replyc
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("aborted run over HTTP: status %d (%s), want 503", r.status, r.msg)
	}
	if r.retryAfter == "" {
		t.Fatal("aborted run over HTTP: no Retry-After header")
	}
	if !strings.Contains(r.msg, "aborted") {
		t.Fatalf("aborted run over HTTP: error %q does not name the abort", r.msg)
	}
	ts.Close() // also closes the test client's idle keep-alive conns
	waitForGoroutines(t, goroutinesBefore)
}

// TestCanonicalKeyStable: the durable cell identity is normalization-
// invariant (defaults applied or not, Workers ignored) and distinguishes
// every result-determining field.
func TestCanonicalKeyStable(t *testing.T) {
	req := RunRequest{Env: "native", Design: "dmt", Workload: "GUPS", THP: true,
		Ops: 20_000, Seed: 3, WSMiB: 24, Shards: 2}
	cfg, err := req.Config(0)
	if err != nil {
		t.Fatal(err)
	}
	key := CanonicalKey(cfg)
	want := "v1 env=native design=dmt thp=true wl=GUPS ws=25165824 scale=16 ops=20000 seed=3 shards=2 verify=false"
	if key != want {
		t.Fatalf("CanonicalKey = %q, want %q", key, want)
	}
	workers := cfg
	workers.Workers = 8
	if CanonicalKey(workers) != key {
		t.Fatal("CanonicalKey must ignore Workers (scheduling only)")
	}
	if CanonicalKey(cfg.Normalized()) != key {
		t.Fatal("CanonicalKey must be normalization-invariant")
	}
	seed := cfg
	seed.Seed = 4
	if CanonicalKey(seed) == key {
		t.Fatal("CanonicalKey must distinguish seeds")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within %v", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
