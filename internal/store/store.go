// Package store is the durable, content-addressed result store of the
// sweep fabric: the serving layer's coalescing key (the normalized,
// result-determining configuration subset — serve.CanonicalKey) made
// persistent on disk. Each entry maps that canonical key to one completed
// simulation's result payload, wrapped in an envelope carrying a SHA-256
// checksum and the key text itself. Completed cells therefore survive
// coordinator crashes: a restarted sweep re-reads the store and re-runs
// only the cells that are missing, and any later re-request of a known
// configuration costs one file read instead of a simulation.
//
// Integrity contract: Get verifies the envelope checksum (and the embedded
// key) on every read. A corrupt, truncated, or mismatched entry is treated
// as a miss — it is removed so the cell re-simulates and overwrites it —
// and is never returned as a result. Writes are atomic (temp file +
// rename), so a crash mid-Put leaves either the old entry or none, never a
// torn one. Layout and semantics are documented in DESIGN.md §12.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"dmt/internal/obs"
)

// envelopeVersion tags the on-disk schema; bumping it orphans (and thereby
// invalidates) every existing entry.
const envelopeVersion = 1

// envelope is the on-disk form of one entry. Payload is the result JSON
// exactly as the serving layer produced it; Checksum is the SHA-256 of
// those payload bytes; Key is the canonical key text, kept as a collision
// and misfile guard (the filename is only a hash of it).
type envelope struct {
	Version  int             `json:"version"`
	Key      string          `json:"key"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// Store is a directory of checksummed result entries, addressed by the
// canonical configuration key. Safe for concurrent use by one process;
// cross-process writers are safe against each other thanks to atomic
// renames (last writer wins with an identical payload — entries are pure
// functions of their key).
type Store struct {
	dir string
	reg *obs.Registry
	seq atomic.Uint64 // unique temp-file suffix within the process
}

// Open creates (if needed) and returns the store rooted at dir. reg
// receives the store.* counters; nil uses obs.Default.
func Open(dir string, reg *obs.Registry) (*Store, error) {
	if reg == nil {
		reg = obs.Default
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	return &Store{dir: dir, reg: reg}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// HashKey is the content address of a canonical key: its SHA-256 in hex.
// It names the entry file, sharded by the first two hex digits so huge
// sweeps do not pile every entry into one directory.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// path maps a key to its entry file: dir/<hh>/<hash>.json.
func (s *Store) path(key string) string {
	h := HashKey(key)
	return filepath.Join(s.dir, h[:2], h+".json")
}

// Get returns the stored payload for key, or ok=false on a miss. Any
// integrity failure — unreadable file, bad JSON, version or key mismatch,
// checksum mismatch — counts as a miss: the entry is removed so the caller
// re-simulates and overwrites it, and store.corrupt records the event.
// Corruption is never an error; errors are reserved for the caller's own
// misuse (none today).
func (s *Store) Get(key string) (json.RawMessage, bool) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.reg.Add("store.misses", 1)
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, s.corrupt(key, fmt.Sprintf("undecodable envelope: %v", err))
	}
	switch {
	case env.Version != envelopeVersion:
		return nil, s.corrupt(key, fmt.Sprintf("envelope version %d, want %d", env.Version, envelopeVersion))
	case env.Key != key:
		return nil, s.corrupt(key, "entry key does not match its address")
	case env.Checksum != payloadChecksum(env.Payload):
		return nil, s.corrupt(key, "payload checksum mismatch")
	case len(env.Payload) == 0:
		return nil, s.corrupt(key, "empty payload")
	}
	s.reg.Add("store.hits", 1)
	return env.Payload, true
}

// corrupt quarantines a bad entry (removes it so the next Put rebuilds it)
// and reports a miss.
func (s *Store) corrupt(key, reason string) bool {
	_ = os.Remove(s.path(key))
	s.reg.Add("store.corrupt", 1)
	s.reg.Add("store.misses", 1)
	_ = reason // kept for debuggability at call sites; not logged here
	return false
}

// Put durably records payload under key, overwriting any existing entry.
// The write is atomic: the envelope lands in a temp file in the final
// directory and is renamed into place, so readers (and a crash at any
// instant) see either the previous entry or the complete new one.
func (s *Store) Put(key string, payload json.RawMessage) error {
	if len(payload) == 0 {
		return fmt.Errorf("store: refusing to record an empty payload for %q", key)
	}
	env := envelope{
		Version:  envelopeVersion,
		Key:      key,
		Checksum: payloadChecksum(payload),
		Payload:  payload,
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: encoding entry for %q: %w", key, err)
	}
	final := s.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("store: sharding dir for %q: %w", key, err)
	}
	tmp := fmt.Sprintf("%s.tmp.%d.%d", final, os.Getpid(), s.seq.Add(1))
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("store: writing entry for %q: %w", key, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: committing entry for %q: %w", key, err)
	}
	s.reg.Add("store.puts", 1)
	s.reg.Add("store.put_bytes", uint64(len(raw)))
	return nil
}

// Len counts the entries currently on disk (a full directory walk — meant
// for CLI summaries and tests, not hot paths).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}

// payloadChecksum is the hex SHA-256 of the payload bytes.
func payloadChecksum(p json.RawMessage) string {
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:])
}
