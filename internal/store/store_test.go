package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dmt/internal/obs"
)

const testKey = "v1 env=native design=dmt thp=true wl=GUPS ws=25165824 scale=16 ops=20000 seed=3 shards=2 verify=false"

func openTest(t *testing.T) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func TestStoreRoundtrip(t *testing.T) {
	s, reg := openTest(t)
	payload := json.RawMessage(`{"env":"native","walks":12345,"counters":{"tlb.l1_hits":7}}`)

	if _, ok := s.Get(testKey); ok {
		t.Fatal("Get on an empty store reported a hit")
	}
	if err := s.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(testKey)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round-trip: got %s, want %s", got, payload)
	}
	snap := reg.Snapshot()
	if snap["store.hits"] != 1 || snap["store.misses"] != 1 || snap["store.puts"] != 1 {
		t.Fatalf("counters hits=%d misses=%d puts=%d, want 1/1/1",
			snap["store.hits"], snap["store.misses"], snap["store.puts"])
	}

	// Overwrite: a second Put replaces the entry.
	payload2 := json.RawMessage(`{"env":"native","walks":99}`)
	if err := s.Put(testKey, payload2); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(testKey); !ok || string(got) != string(payload2) {
		t.Fatalf("overwritten entry: ok=%v got %s, want %s", ok, got, payload2)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d (%v), want 1", n, err)
	}
}

// TestStoreCorruptBitFlip is the integrity regression: flipping any single
// bit of a stored entry must turn it into a miss — never a served result —
// and the entry must be removed so a re-simulation overwrites it cleanly.
func TestStoreCorruptBitFlip(t *testing.T) {
	payload := json.RawMessage(`{"env":"native","design":"dmt","walks":4242,"avg_walk_cycles":31.25}`)
	s, _ := openTest(t)
	if err := s.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(testKey))
	if err != nil {
		t.Fatal(err)
	}

	// Every byte position, one flipped bit: exhaustive over the whole
	// envelope (structure, key, checksum, payload).
	for pos := 0; pos < len(raw); pos++ {
		reg := obs.NewRegistry()
		s2, err := Open(t.TempDir(), reg)
		if err != nil {
			t.Fatal(err)
		}
		flipped := append([]byte(nil), raw...)
		flipped[pos] ^= 0x10
		if flipped[pos] == raw[pos] { // same byte (cannot happen with a real xor, but be safe)
			continue
		}
		entry := s2.path(testKey)
		if err := os.MkdirAll(filepath.Dir(entry), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(entry, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s2.Get(testKey); ok {
			t.Fatalf("bit flip at byte %d served a result: %s", pos, got)
		}
		snap := reg.Snapshot()
		if snap["store.corrupt"] != 1 {
			t.Fatalf("bit flip at byte %d: store.corrupt = %d, want 1", pos, snap["store.corrupt"])
		}
		if _, err := os.Stat(entry); !os.IsNotExist(err) {
			t.Fatalf("bit flip at byte %d: corrupt entry not removed (stat err %v)", pos, err)
		}
		// Re-simulating overwrites the quarantined entry and it reads back.
		if err := s2.Put(testKey, payload); err != nil {
			t.Fatal(err)
		}
		if got, ok := s2.Get(testKey); !ok || string(got) != string(payload) {
			t.Fatalf("bit flip at byte %d: re-put entry unreadable (ok=%v got %s)", pos, ok, got)
		}
	}
}

// TestStoreTruncated: a partially written entry (crash mid-write without
// the atomic rename) is a miss, not a result.
func TestStoreTruncated(t *testing.T) {
	payload := json.RawMessage(`{"walks":1}`)
	s, reg := openTest(t)
	if err := s.Put(testKey, payload); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(testKey))
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if err := os.WriteFile(s.path(testKey), raw[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(testKey); ok {
			t.Fatalf("truncated entry (%d of %d bytes) served a result: %s", keep, len(raw), got)
		}
	}
	if snap := reg.Snapshot(); snap["store.corrupt"] == 0 {
		t.Fatal("truncation never counted as corruption")
	}
}

// TestStoreMisfiledEntry: an entry whose embedded key disagrees with its
// address (e.g. a hand-copied file) is rejected even though its checksum
// is internally consistent.
func TestStoreMisfiledEntry(t *testing.T) {
	s, reg := openTest(t)
	if err := s.Put(testKey, json.RawMessage(`{"walks":1}`)); err != nil {
		t.Fatal(err)
	}
	otherKey := strings.Replace(testKey, "seed=3", "seed=4", 1)
	raw, err := os.ReadFile(s.path(testKey))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path(otherKey)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(otherKey), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(otherKey); ok {
		t.Fatalf("misfiled entry served a result: %s", got)
	}
	if snap := reg.Snapshot(); snap["store.corrupt"] != 1 {
		t.Fatalf("store.corrupt = %d, want 1", snap["store.corrupt"])
	}
}

// TestStoreConcurrent: concurrent writers and readers of overlapping keys
// never observe a torn entry (atomic rename) — run under -race in CI.
func TestStoreConcurrent(t *testing.T) {
	s, _ := openTest(t)
	const writers, keys = 8, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := fmt.Sprintf("v1 key=%d", (w+i)%keys)
				payload := json.RawMessage(fmt.Sprintf(`{"walks":%d}`, (w+i)%keys))
				if err := s.Put(k, payload); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok := s.Get(k); ok {
					// Entries are pure functions of their key, so any
					// winning writer stored exactly this payload.
					if string(got) != string(payload) {
						t.Errorf("torn read for %q: %s", k, got)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n, err := s.Len(); err != nil || n != keys {
		t.Fatalf("Len = %d (%v), want %d", n, err, keys)
	}
}
