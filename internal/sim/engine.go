package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dmt/internal/check"
	"dmt/internal/core"
	"dmt/internal/fault"
	"dmt/internal/mem"
	"dmt/internal/obs"
	"dmt/internal/tlb"
)

// This file is the deterministic parallel execution engine. A run is
// decomposed into Config.Shards independent sub-runs; each shard owns a full
// machine replica (address space, TLB, caches, walker, injector, oracle) and
// drives a decorrelated slice of the trace through it. Shard results are
// pure functions of (Config, shard index), so any scheduling — serial, or a
// pool of Config.Workers goroutines — produces identical parts, and
// MergeShards combines them with commutative integer arithmetic. The
// determinism contract is spelled out in DESIGN.md ("sharded determinism")
// and enforced by TestDeterminism* in this package.

// Instance is one in-flight simulation: a machine plus the measurement
// harness, stepped one trace operation at a time. Benchmarks use it to move
// machine construction out of the timed region; the engine uses it as the
// unit of shard execution.
type Instance struct {
	cfg   Config
	m     *machine
	mmu   *core.MMU
	inj   *fault.Injector
	chk   *check.Checker
	res   *Result
	ring  *obs.Ring
	shard int
	op    int
	ops   int
	done  bool

	// Batched-walk state (DESIGN.md §13): the reusable request/result
	// buffers trace generation fills per span, the per-instance Batch the
	// canonical loop runs against, the walker's batch entry point when it
	// has one, and the latency buffer armed on rec during StepBatch. All
	// fixed-size and allocated at assembly, so stepping allocates nothing
	// and clone cost stays independent of trace length.
	rec   *recordingWalker
	bw    core.BatchWalker
	batch *core.Batch
	reqs  []core.Req
	bres  []core.Res
	lats  []uint64
}

// NewInstance builds the machine for cfg and returns an unstarted instance
// covering the whole (unsharded) trace. Call Step until Ops is exhausted —
// or as many times as desired — then Finish.
func NewInstance(cfg Config) (*Instance, error) {
	return newShardInstance(cfg.withDefaults(), 0, 1)
}

// newShardInstance builds shard `shard` of `shards` for an already-defaulted
// config: its slice of the op budget, a decorrelated trace seed, and a fault
// plan rescaled into shard-local op space. With shards == 1 everything is
// used verbatim, reproducing the classic serial run bit-exactly.
func newShardInstance(cfg Config, shard, shards int) (*Instance, error) {
	scfg := cfg
	scfg.Ops = shardOps(cfg.Ops, shard, shards)
	if shards > 1 {
		scfg.traceSeed = shardSeed(cfg.Seed, shard)
	}
	m, err := buildMachine(scfg)
	if err != nil {
		return nil, fmt.Errorf("sim: building %v/%v/%s: %w", cfg.Env, cfg.Design, cfg.Workload.Name, err)
	}
	return assembleInstance(cfg, scfg, m, shard, shards)
}

// buildMachine returns a drivable machine for scfg. By default it clones
// from the prototype cache — every shard of a run shares one build, as do
// all runs whose build keys agree (the matrix workloads). cfg.ColdBuild
// forces the from-scratch path, used by differential tests proving clones
// bit-identical to cold builds.
func buildMachine(scfg Config) (*machine, error) {
	if scfg.ColdBuild {
		obs.Default.Add("build.cold_forced", 1)
		return coldBuild(scfg)
	}
	proto, err := cachedPrototype(scfg)
	if err != nil {
		return nil, err
	}
	return proto.wire(scfg)
}

// coldBuild constructs a machine from scratch without touching the cache.
func coldBuild(scfg Config) (*machine, error) {
	switch scfg.Env {
	case EnvNative:
		return buildNative(scfg)
	case EnvVirt:
		return buildVirt(scfg)
	case EnvNested:
		return buildNested(scfg)
	default:
		return nil, fmt.Errorf("sim: unknown environment %v", scfg.Env)
	}
}

// assembleInstance wires the measurement harness (recorder, TLB, MMU,
// oracle, fault injector) around an already-built machine. cfg is the
// run-level config the Result reports; scfg is the shard-level config
// (sliced ops, per-shard trace seed) the instance executes.
func assembleInstance(cfg, scfg Config, m *machine, shard, shards int) (*Instance, error) {
	res := &Result{Config: cfg, breakdown: map[string]*StepAgg{}, WalkHist: &obs.Hist{}}
	rec := &recordingWalker{
		inner:  m.walker,
		res:    res,
		sink:   m.sink,
		hist:   res.WalkHist,
		labels: map[labelKey]*StepAgg{},
		fast:   make([]*StepAgg, labelFastSize),
	}
	var ring *obs.Ring
	if cfg.Trace {
		cap := cfg.TraceCap
		if cap == 0 {
			cap = 4096
		}
		ring = obs.NewRing(cap)
		rec.ring = ring
	}
	dtlb, err := tlb.New(scaledTLB(cfg.CacheScale))
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	mmu := core.NewMMU(dtlb, rec, 1)
	// Injected unmaps must shoot down stale TLB entries, as the kernel's
	// MMU-notifier path would.
	if m.target.AS != nil {
		m.target.AS.OnInvalidate(func(va mem.VAddr) { dtlb.Invalidate(va, 1) })
	}

	var chk *check.Checker
	if cfg.Verify {
		if m.ref == nil {
			return nil, fmt.Errorf("sim: verification not supported for %v/%v", cfg.Env, cfg.Design)
		}
		chk = check.New(check.Config{
			Ref:        m.ref,
			FastPath:   m.fastPath,
			SizeExact:  m.sizeExact,
			Invariants: m.invariants,
		})
		rec.chk = chk
	}
	var inj *fault.Injector
	if cfg.FaultPlan != nil {
		m.target.Hier = m.hier
		m.target.FlushTLB = dtlb.Flush
		plan := shardPlan(*cfg.FaultPlan, cfg.Ops, scfg.Ops, shard, shards)
		inj = fault.New(plan, m.target)
	}
	in := &Instance{cfg: cfg, m: m, mmu: mmu, inj: inj, chk: chk, res: res, ring: ring, shard: shard, ops: scfg.Ops}
	in.rec = rec
	in.reqs = make([]core.Req, BatchOps)
	in.bres = make([]core.Res, BatchOps)
	in.lats = make([]uint64, 0, BatchOps)
	in.bw, _ = m.walker.(core.BatchWalker)
	// The checker converts to its interface only when present: boxing a nil
	// *check.Checker would read as a non-nil TranslateChecker and crash the
	// loop's presence check.
	var bchk core.TranslateChecker
	if chk != nil {
		bchk = chk
	}
	in.batch = core.NewBatch(mmu, m.hier, m.sink, rec, bchk)
	in.batch.Reserve(BatchOps)
	return in, nil
}

// Ops returns the instance's op budget (the shard's slice of Config.Ops).
func (in *Instance) Ops() int { return in.ops }

// Step advances the trace by one operation: tick the fault injector,
// generate a reference, translate it (demand-faulting injected unmaps back
// in), and charge the data access.
func (in *Instance) Step() error {
	i := in.op
	if in.inj != nil {
		before := in.inj.Applied + in.inj.Skipped
		if err := in.inj.Tick(i); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if in.chk != nil && in.inj.Applied+in.inj.Skipped != before {
			in.chk.CheckInvariants()
		}
	}
	va, _ := in.m.gen()
	pa, _, ok := in.mmu.Translate(va)
	if !ok && in.inj != nil && in.inj.Unmapped() > 0 {
		// Demand paging: the workload tripped over an injected unmap;
		// fault the pages back in and retry once.
		if err := in.inj.Refault(); err != nil {
			return fmt.Errorf("sim: refault at %#x (op %d): %w", uint64(va), i, err)
		}
		in.res.DemandFaults++
		pa, _, ok = in.mmu.Translate(va)
	}
	if !ok {
		return fmt.Errorf("sim: translation fault at %#x (op %d, %v/%v)", uint64(va), i, in.cfg.Env, in.cfg.Design)
	}
	if in.chk != nil {
		in.chk.CheckTranslate(va, pa)
	}
	in.res.DataCycles += uint64(in.m.hier.Access(pa).Cycles)
	in.op++
	return nil
}

// StepBatch advances the trace by up to n operations through the batched
// walk path (DESIGN.md §13) and returns how many completed. The batch is
// split into spans at fault-event boundaries — batchSpan sizes each span so
// its end never overshoots the injector's next trigger op, which makes one
// Tick per span bit-identical to the scalar path's per-op Tick (ticks
// between events are no-ops). Trace generation fills the reusable request
// buffer, the canonical loop (the walker's own WalkBatch when it has one,
// the scalar adapter otherwise) runs the span, and failed translations are
// demand-faulted back in and resumed exactly as Step does. Histogram
// observation and the data-cycle fold happen once per call, on every exit
// path. n is clamped to both BatchOps and the remaining op budget.
func (in *Instance) StepBatch(n int) (int, error) {
	if n > BatchOps {
		n = BatchOps
	}
	if rem := in.ops - in.op; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0, nil
	}
	in.rec.lats = in.lats[:0]
	defer func() {
		in.res.DataCycles += in.batch.DataCycles
		in.batch.DataCycles = 0
		in.res.WalkHist.ObserveBatch(in.rec.lats)
		in.lats = in.rec.lats[:0]
		in.rec.lats = nil
	}()
	total := 0
	for total < n {
		i := in.op
		nextAt := 1 << 62
		if in.inj != nil {
			before := in.inj.Applied + in.inj.Skipped
			if err := in.inj.Tick(i); err != nil {
				return total, fmt.Errorf("sim: %w", err)
			}
			if in.chk != nil && in.inj.Applied+in.inj.Skipped != before {
				in.chk.CheckInvariants()
			}
			nextAt = in.inj.NextAt()
		}
		span := batchSpan(i, n-total, nextAt)
		reqs, bres := in.reqs[:span], in.bres[:span]
		for k := range reqs {
			reqs[k].VA, _ = in.m.gen()
		}
		for k := 0; k < span; {
			k += in.walkBatch(reqs[k:span], bres[k:span])
			if k >= span {
				break
			}
			// bres[k] is a failed translation at op i+k: demand paging, as
			// in Step — fault injected unmaps back in and retry that op once.
			va := reqs[k].VA
			if in.inj != nil && in.inj.Unmapped() > 0 {
				if err := in.inj.Refault(); err != nil {
					in.op = i + k
					return total + k, fmt.Errorf("sim: refault at %#x (op %d): %w", uint64(va), i+k, err)
				}
				in.res.DemandFaults++
				if in.walkBatch(reqs[k:k+1], bres[k:k+1]) == 1 {
					k++
					continue
				}
			}
			in.op = i + k
			return total + k, fmt.Errorf("sim: translation fault at %#x (op %d, %v/%v)", uint64(va), i+k, in.cfg.Env, in.cfg.Design)
		}
		in.op = i + span
		total += span
	}
	return total, nil
}

// walkBatch dispatches a span to the walker's batch entry point, falling
// back to the canonical adapter for designs without one.
func (in *Instance) walkBatch(reqs []core.Req, res []core.Res) int {
	if in.bw != nil {
		return in.bw.WalkBatch(in.batch, reqs, res)
	}
	return core.ScalarWalkBatch(in.batch, in.m.walker, reqs, res)
}

// batchSpan returns how many ops, starting at op, a span may run before the
// injector must tick again: the remaining limit, shortened so the span
// never crosses nextAt (the next fault event's trigger op). Pure integer
// arithmetic — FuzzBatchSpan exercises it directly — and always positive
// for a positive limit, so the batched loop cannot stall.
func batchSpan(op, limit, nextAt int) int {
	if limit < 1 {
		return 0
	}
	if nextAt <= op {
		// An overdue event (impossible after a Tick at op, but kept safe):
		// run a single op so the next span re-ticks immediately.
		return 1
	}
	if d := nextAt - op; d < limit {
		return d
	}
	return limit
}

// Finish drains the fault injector, runs the final invariant sweep, and
// seals the instance's Result.
func (in *Instance) Finish() (*Result, error) {
	if in.done {
		return in.res, nil
	}
	in.done = true
	res := in.res
	res.Ops = in.op
	if in.inj != nil {
		if err := in.inj.Drain(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		res.FaultsApplied = in.inj.Applied
		res.FaultsSkipped = in.inj.Skipped
		res.FaultLog = in.inj.Log
	}
	if in.chk != nil {
		in.chk.CheckInvariants()
		res.Checked = in.chk.Checked
		res.Mismatches = in.chk.Mismatched
		if err := in.chk.Err(); err != nil {
			return nil, fmt.Errorf("sim: %v/%v/%s: %w", in.cfg.Env, in.cfg.Design, in.cfg.Workload.Name, err)
		}
	}
	res.TLBMisses = in.mmu.Misses
	if in.m.coverage != nil {
		hits, total := in.m.coverage()
		res.covHits, res.covTotal, res.covSet = hits, total, true
		if total == 0 {
			res.Coverage = 0
		} else {
			res.Coverage = float64(hits) / float64(total)
		}
	} else {
		res.Coverage = 1
	}
	if in.m.footer != nil {
		in.m.footer(res)
	}
	in.sealObservability(res)
	return res, nil
}

// sealObservability snapshots the instance's named counters and trace ring
// into the Result. It runs once, at Finish, so the walk hot path never
// formats a counter name; everything recorded here merges commutatively
// across shards (MergeShards) and is a pure function of (Config, shard) —
// cross-run machine state like prototype-cache warmth stays out and goes to
// the process-global obs.Default registry instead.
func (in *Instance) sealObservability(res *Result) {
	c := obs.Counters{}
	if t := in.mmu.TLB; t != nil {
		c.Add("tlb.l1_hits", t.L1Hits)
		c.Add("tlb.l2_hits", t.L2Hits)
		c.Add("tlb.misses", t.Misses)
	}
	c.Add("mmu.lookups", in.mmu.Lookups)
	if h := in.m.hier; h != nil {
		c.Add("cache.l1d_hits", h.L1D.Hits)
		c.Add("cache.l1d_misses", h.L1D.Misses)
		c.Add("cache.l2_hits", h.L2.Hits)
		c.Add("cache.l2_misses", h.L2.Misses)
		c.Add("cache.llc_hits", h.LLC.Hits)
		c.Add("cache.llc_misses", h.LLC.Misses)
		c.Add("cache.accesses", h.Accesses)
		c.Add("cache.mem_fetches", h.MemFetches)
	}
	core.EmitChained(in.m.walker, c.Add)
	if in.inj != nil {
		c.Add("fault.applied", uint64(in.inj.Applied))
		c.Add("fault.skipped", uint64(in.inj.Skipped))
		c.Add("fault.refaults", uint64(in.inj.Refaults))
		c.Add("fault.demand", res.DemandFaults)
	}
	if in.chk != nil {
		c.Add("check.checked", res.Checked)
		c.Add("check.mismatches", res.Mismatches)
	}
	c.Add("hyp.vmexits", res.VMExits)
	c.Add("hyp.hypercalls", res.Hypercalls)
	c.Add("hyp.shadow_syncs", res.ShadowSyncs)
	c.Add("hyp.isolation_faults", res.IsolationFaults)
	res.Counters = c
	if in.ring != nil {
		res.Trace = in.ring.Events()
		for i := range res.Trace {
			res.Trace[i].Shard = int32(in.shard)
		}
		res.TraceTotal = in.ring.Total()
	}
}

// ShardResult pairs one shard's Result with its index so merge order never
// matters.
type ShardResult struct {
	Shard int
	Res   *Result
}

// BatchOps is the engine's walk-batch size AND its cancellation
// granularity: a shard checks its context between batches, never inside
// one, so cancellation lands within one batch of simulated work per
// running shard — prompt at simulation timescales — while the walk hot
// path itself never touches the context. The two roles are deliberately
// one constant: splitting them would let a batch span multiple
// cancellation windows (or vice versa) and silently loosen the bound
// TestRunCtx* pins.
const BatchOps = 1024

// RunShards executes every shard of cfg — concurrently when cfg.Workers > 1
// — and returns the per-shard results. Each part depends only on (cfg,
// shard), never on scheduling, so callers may merge them in any order.
func RunShards(cfg Config) ([]ShardResult, error) {
	return RunShardsCtx(context.Background(), cfg)
}

// RunShardsCtx is RunShards under a context: cancellation (or deadline
// expiry) aborts every shard at its next step-batch boundary and returns
// ctx.Err(). When one shard fails on its own, its siblings are aborted the
// same way — finishing them cannot change the outcome, only burn the full
// simulation cost — and the error reported is deterministically the
// lowest-shard real failure, never a sibling's abort echo.
func RunShardsCtx(ctx context.Context, cfg Config) ([]ShardResult, error) {
	cfg = cfg.withDefaults()
	shards := cfg.Shards
	parts := make([]ShardResult, shards)
	runShard := func(ctx context.Context, s int) error {
		if err := ctx.Err(); err != nil {
			obs.Default.Add("engine.shard_aborts", 1)
			return err
		}
		in, err := newShardInstance(cfg, s, shards)
		if err != nil {
			return err
		}
		// Account executed steps once per shard (off the hot path); the
		// abort regression tests bound this across a failing campaign.
		defer func() { obs.Default.Add("engine.steps_run", uint64(in.op)) }()
		if cfg.scalarWalk {
			// The pre-batch reference loop, kept verbatim for the
			// metamorphic batch-vs-scalar suite.
			for i := 0; i < in.ops; i++ {
				if i > 0 && i%BatchOps == 0 {
					if err := ctx.Err(); err != nil {
						obs.Default.Add("engine.shard_aborts", 1)
						return err
					}
				}
				if err := in.Step(); err != nil {
					return err
				}
			}
		} else {
			lim := cfg.batchCap
			if lim <= 0 || lim > BatchOps {
				lim = BatchOps
			}
			for in.op < in.ops {
				if in.op > 0 {
					if err := ctx.Err(); err != nil {
						obs.Default.Add("engine.shard_aborts", 1)
						return err
					}
				}
				if _, err := in.StepBatch(lim); err != nil {
					return err
				}
			}
		}
		res, err := in.Finish()
		if err != nil {
			return err
		}
		parts[s] = ShardResult{Shard: s, Res: res}
		return nil
	}
	// wrapShard annotates a shard's own failure with its index; the classic
	// single-shard run keeps its historical error text.
	wrapShard := func(s int, err error) error {
		if shards == 1 {
			return err
		}
		return fmt.Errorf("shard %d: %w", s, err)
	}

	workers := cfg.Workers
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			if err := runShard(ctx, s); err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				return nil, wrapShard(s, err)
			}
		}
		return parts, nil
	}

	// ictx aborts the sibling pool on the first shard failure; the parent
	// ctx still distinguishes caller-initiated cancellation afterwards.
	ictx, cancelSiblings := context.WithCancel(ctx)
	defer cancelSiblings()
	errs := make([]error, shards)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				if err := runShard(ictx, s); err != nil {
					errs[s] = err
					cancelSiblings()
				}
			}
		}()
	}
	for s := 0; s < shards; s++ {
		work <- s
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller cancelled (or timed out): report that, not whichever
		// shard noticed first.
		return nil, err
	}
	// Deterministic error selection: the lowest-shard real failure wins.
	// Shards that returned context.Canceled were aborted on a sibling's
	// behalf (the parent context is live here) — their echoes must not mask
	// the failure that triggered the abort.
	for s := 0; s < shards; s++ {
		if errs[s] == nil || errors.Is(errs[s], context.Canceled) {
			continue
		}
		return nil, wrapShard(s, errs[s])
	}
	for s := 0; s < shards; s++ {
		if errs[s] != nil {
			return nil, wrapShard(s, errs[s])
		}
	}
	return parts, nil
}

// MergeShards combines per-shard results into the run's Result. The merge is
// a commutative fold: integer counters sum, breakdowns sum per label,
// coverage is recomputed from summed hit/total counters, structural
// footprints (PTEBytes) come from shard 0's replica, and the fault log is
// concatenated in shard order with an "s<N> " prefix. Parts may be supplied
// in any permutation. A single part is returned as-is, keeping the serial
// path bit-identical to the pre-sharding engine.
func MergeShards(cfg Config, parts []ShardResult) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sim: merge of zero shards")
	}
	sorted := make([]ShardResult, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	for i, p := range sorted {
		if p.Res == nil {
			return nil, fmt.Errorf("sim: merge: shard %d has no result", p.Shard)
		}
		if i > 0 && sorted[i-1].Shard == p.Shard {
			return nil, fmt.Errorf("sim: merge: duplicate shard %d", p.Shard)
		}
	}
	if len(sorted) == 1 {
		return sorted[0].Res, nil
	}

	cfg = cfg.withDefaults()
	out := &Result{Config: cfg, breakdown: map[string]*StepAgg{}, WalkHist: &obs.Hist{}, Counters: obs.Counters{}}
	traces := make([][]obs.WalkEvent, 0, len(sorted))
	for _, p := range sorted {
		r := p.Res
		out.Ops += r.Ops
		out.TLBMisses += r.TLBMisses
		out.Walks += r.Walks
		out.WalkCycles += r.WalkCycles
		out.SeqRefs += r.SeqRefs
		out.TotalRefs += r.TotalRefs
		out.DataCycles += r.DataCycles
		out.Fallbacks += r.Fallbacks
		out.Hypercalls += r.Hypercalls
		out.VMExits += r.VMExits
		out.ShadowSyncs += r.ShadowSyncs
		out.IsolationFaults += r.IsolationFaults
		out.FaultsApplied += r.FaultsApplied
		out.FaultsSkipped += r.FaultsSkipped
		out.DemandFaults += r.DemandFaults
		out.Checked += r.Checked
		out.Mismatches += r.Mismatches
		out.covHits += r.covHits
		out.covTotal += r.covTotal
		out.covSet = out.covSet || r.covSet
		out.WalkHist.Merge(r.WalkHist)
		out.Counters.Merge(r.Counters)
		if len(r.Trace) > 0 {
			traces = append(traces, r.Trace)
		}
		out.TraceTotal += r.TraceTotal
		for label, agg := range r.breakdown {
			dst := out.breakdown[label]
			if dst == nil {
				dst = &StepAgg{Label: label}
				out.breakdown[label] = dst
			}
			dst.Cycles += agg.Cycles
			dst.Count += agg.Count
		}
		for _, line := range r.FaultLog {
			out.FaultLog = append(out.FaultLog, fmt.Sprintf("s%d %s", p.Shard, line))
		}
	}
	// Structural footprint: every shard builds an identical replica, so the
	// figure comes from one of them rather than summing copies.
	out.PTEBytes = sorted[0].Res.PTEBytes
	if len(traces) > 0 {
		out.Trace = obs.MergeEvents(traces...)
	}
	if out.covSet {
		if out.covTotal == 0 {
			out.Coverage = 0
		} else {
			out.Coverage = float64(out.covHits) / float64(out.covTotal)
		}
	} else {
		out.Coverage = 1
	}
	return out, nil
}

// shardOps slices the op budget: ops/shards each, the remainder spread one
// op at a time over the leading shards.
func shardOps(ops, shard, shards int) int {
	base := ops / shards
	if shard < ops%shards {
		base++
	}
	return base
}

// shardSeed decorrelates per-shard randomness with a splitmix64 step, so
// shard traces are independent streams rather than offset copies.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1 // a zero seed would be re-defaulted downstream
	}
	return s
}

// shardPlan rescales a fault plan into shard-local op space: event trigger
// points map proportionally onto the shard's shorter trace (every shard
// replays the full schedule against its own machine replica), and the
// plan's own RNG is decorrelated per shard. With one shard the plan is used
// verbatim.
func shardPlan(p fault.Plan, totalOps, ops, shard, shards int) fault.Plan {
	if shards == 1 {
		return p
	}
	events := make([]fault.Event, len(p.Events))
	for i, e := range p.Events {
		at := e.At
		if totalOps > 0 {
			at = int(int64(e.At) * int64(ops) / int64(totalOps))
			// Clamp into the shard's op range: an event at the end of the
			// full trace (At == totalOps-1) scales to at == ops on shorter
			// shards, which would never fire in-trace — the injector would
			// only apply it in Drain, after the last walk, silently
			// weakening the schedule on every shard count > 1.
			if at >= ops {
				at = ops - 1
			}
			if at < 0 {
				at = 0
			}
		}
		e.At = at
		events[i] = e
	}
	return fault.Plan{Name: p.Name, Seed: shardSeed(p.Seed, shard), Events: events}
}
