package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"dmt/internal/fault"
	"dmt/internal/obs"
)

// These tests pin the engine's cancellation contract (DESIGN.md §11): a
// cancelled RunCtx/RunShardsCtx returns context.Canceled within one step
// batch per running shard, a failing shard aborts its siblings instead of
// letting them burn the full simulation cost, the error reported is
// deterministically the lowest-shard real failure, and neither path leaks
// goroutines or poisons the prototype cache.

// poisonPlan returns a fault plan whose single event has an unknown kind,
// so the injector errors the moment it fires. Placed mid-trace it poisons
// every shard at roughly half its local op budget.
func poisonPlan(ops int) *fault.Plan {
	return &fault.Plan{Name: "poison", Seed: 9, Events: []fault.Event{
		{At: ops / 2, Kind: fault.Kind(99)},
	}}
}

func stepsRun(t *testing.T) uint64 {
	t.Helper()
	return obs.Default.Snapshot()["engine.steps_run"]
}

// TestRunShardsAbortOnFirstError is the regression for the worker pool
// running every remaining shard to completion after one shard errors: with
// 64 shards poisoned mid-trace, only the shards already in flight when the
// first failure lands may finish their (half) traces — everything else must
// abort before stepping — and the returned error is shard 0's own failure,
// not a later shard's or a sibling-abort echo.
func TestRunShardsAbortOnFirstError(t *testing.T) {
	const (
		ops     = 64_000
		shards  = 64
		workers = 8
	)
	wl := detWorkload(t)
	cfg := Config{
		Env: EnvNative, Design: DesignVanilla, THP: true, Workload: wl,
		WSBytes: detWS, Ops: ops, Seed: 7,
		Shards: shards, Workers: workers,
		FaultPlan: poisonPlan(ops),
	}
	before := stepsRun(t)
	parts, err := RunShards(cfg)
	executed := stepsRun(t) - before
	if err == nil {
		t.Fatalf("poisoned run succeeded with %d parts", len(parts))
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("sibling-abort echo masked the real failure: %v", err)
	}
	if !strings.Contains(err.Error(), "unknown fault kind") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(err.Error(), "shard 0:") {
		t.Fatalf("error is not the lowest-shard failure: %v", err)
	}
	// Without the abort, all 64 shards run to their mid-trace poison:
	// ~32_000 steps. With it, only the <= 8 in-flight shards do (~4_000).
	// The bound sits well under the no-abort cost with room for scheduling
	// slack.
	if limit := uint64(ops / 4); executed > limit {
		t.Fatalf("executed %d steps after first failure; want <= %d (no-abort cost is ~%d)",
			executed, limit, ops/2)
	}
	t.Logf("executed %d steps across aborted campaign (no-abort cost ~%d)", executed, ops/2)
}

// TestRunCtxCancelPromptlyMatrix cancels an in-flight run for every
// environment × design cell and requires context.Canceled back promptly,
// with no goroutines leaked by the shard pool.
func TestRunCtxCancelPromptlyMatrix(t *testing.T) {
	wl := detWorkload(t)
	goroutinesBefore := runtime.NumGoroutine()
	for _, env := range []Environment{EnvNative, EnvVirt, EnvNested} {
		for _, d := range detDesigns(env) {
			t.Run(fmt.Sprintf("%v/%s", env, d), func(t *testing.T) {
				cfg := Config{
					Env: env, Design: d, THP: true, Workload: wl,
					WSBytes: detWS, Ops: 50_000_000, Seed: 7,
					Shards: 8, Workers: 4,
				}
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(15 * time.Millisecond)
					cancel()
				}()
				start := time.Now()
				res, err := RunCtx(ctx, cfg)
				elapsed := time.Since(start)
				cancel()
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("want context.Canceled, got res=%v err=%v", res, err)
				}
				if res != nil {
					t.Fatalf("cancelled run returned a result")
				}
				// 50M ops would run for minutes; a prompt abort is bounded
				// by machine build time plus one step batch per shard.
				if elapsed > 30*time.Second {
					t.Fatalf("cancellation took %v", elapsed)
				}
			})
		}
	}
	waitForGoroutines(t, goroutinesBefore)
}

// TestRunCtxPreCancelled: an already-dead context never builds a machine.
func TestRunCtxPreCancelled(t *testing.T) {
	wl := detWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	misses := ReadBuildCacheStats().Misses
	_, err := RunCtx(ctx, Config{
		Env: EnvNative, Design: DesignDMT, THP: true, Workload: wl,
		WSBytes: detWS, Ops: 1_000_000, Seed: 11, Shards: 4, Workers: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := ReadBuildCacheStats().Misses; got != misses {
		t.Fatalf("pre-cancelled run still built a prototype (%d -> %d misses)", misses, got)
	}
}

// TestRunCtxDeadline: deadline expiry is reported as DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	wl := detWorkload(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := RunCtx(ctx, Config{
		Env: EnvNative, Design: DesignVanilla, THP: true, Workload: wl,
		WSBytes: detWS, Ops: 50_000_000, Seed: 7, Shards: 4, Workers: 2,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestProtoCacheBuildErrorNotMemoized is the regression for sync.Once
// poisoning: a transient build failure must fail the runs that raced on it,
// then heal — the next identical lookup re-probes the build instead of
// replaying the memoized error forever.
func TestProtoCacheBuildErrorNotMemoized(t *testing.T) {
	ResetBuildCache()
	transient := errors.New("transient build failure")
	failing := true
	buildFailureHook = func(Config) error {
		if failing {
			return transient
		}
		return nil
	}
	defer func() {
		buildFailureHook = nil
		ResetBuildCache()
	}()

	wl := detWorkload(t)
	cfg := Config{
		Env: EnvNative, Design: DesignVanilla, THP: true, Workload: wl,
		WSBytes: detWS, Ops: 5_000, Seed: 7,
	}
	if _, err := Run(cfg); !errors.Is(err, transient) {
		t.Fatalf("want injected build failure, got %v", err)
	}
	// Still failing: the retry must re-probe (a fresh miss), not replay a
	// memoized error from a wedged entry.
	if _, err := Run(cfg); !errors.Is(err, transient) {
		t.Fatalf("want injected build failure on re-probe, got %v", err)
	}
	failing = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("identical run still failing after transient error healed: %v", err)
	}
	if res.Ops != 5_000 {
		t.Fatalf("healed run returned %d ops", res.Ops)
	}
	stats := ReadBuildCacheStats()
	if stats.Misses != 3 {
		t.Fatalf("want 3 build probes (2 failed + 1 healed), got %d misses / %d hits",
			stats.Misses, stats.Hits)
	}
}

// TestRunCtxCancelDoesNotPoisonCache: cancelling a running job leaves the
// prototype cache fully usable — the machine built for the cancelled run
// serves the next identical configuration as a clone.
func TestRunCtxCancelDoesNotPoisonCache(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()
	wl := detWorkload(t)
	cfg := Config{
		Env: EnvNative, Design: DesignDMT, THP: true, Workload: wl,
		WSBytes: detWS, Ops: 50_000_000, Seed: 7, Shards: 4, Workers: 2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	if _, err := RunCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	cancel()

	cfg.Ops = 5_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("post-cancel run failed: %v", err)
	}
	if res.Ops != 5_000 {
		t.Fatalf("post-cancel run returned %d ops", res.Ops)
	}
	if stats := ReadBuildCacheStats(); stats.Hits == 0 {
		t.Fatalf("post-cancel run rebuilt from scratch: %+v (cancelled run's prototype was lost)", stats)
	}
}

// waitForGoroutines retries until the goroutine count returns to (near) the
// baseline; shard workers exit synchronously before RunShardsCtx returns,
// so only runtime bookkeeping should ever lag.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, now)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
