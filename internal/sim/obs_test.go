package sim

import (
	"fmt"
	"testing"

	"dmt/internal/fault"
)

// TestDeterminismObservability extends the metamorphic determinism suite to
// the observability surface: with tracing enabled, a run at Workers 1 must
// produce bit-identical merged histograms, counter snapshots, and trace
// event streams to the same run at Workers 8, for every environment ×
// design cell with and without a fault plan. requireEqualResults covers the
// new Result fields through DeepEqual; the explicit checks below pin the
// internal consistency of what was captured.
func TestDeterminismObservability(t *testing.T) {
	wl := detWorkload(t)
	suite := fault.Suite(detOps)
	if len(suite) == 0 {
		t.Fatal("empty fault suite")
	}
	plans := []*fault.Plan{nil, &suite[0]}

	for _, env := range []Environment{EnvNative, EnvVirt, EnvNested} {
		for _, d := range detDesigns(env) {
			for _, plan := range plans {
				name := fmt.Sprintf("%v/%s", env, d)
				if plan != nil {
					name += "/" + plan.Name
				}
				t.Run(name, func(t *testing.T) {
					cfg := detConfig(env, d, plan)
					cfg.Workload = wl
					cfg.Trace = true
					cfg.TraceCap = 512

					serialCfg := cfg
					serialCfg.Workers = 1
					serial, err := Run(serialCfg)
					if err != nil {
						t.Fatal(err)
					}
					parCfg := cfg
					parCfg.Workers = 8
					parallel, err := Run(parCfg)
					if err != nil {
						t.Fatal(err)
					}
					requireEqualResults(t, serial, parallel)

					if serial.WalkHist == nil || serial.WalkHist.Count != serial.Walks {
						t.Fatalf("WalkHist covers %v walks, Result has %d",
							serial.WalkHist, serial.Walks)
					}
					if got := serial.WalkPercentile(100); got != serial.WalkHist.Max {
						t.Fatalf("WalkPercentile(100) = %d, want max %d", got, serial.WalkHist.Max)
					}
					if serial.TraceTotal != serial.Walks {
						t.Fatalf("TraceTotal = %d, want every walk (%d)", serial.TraceTotal, serial.Walks)
					}
					if len(serial.Trace) == 0 {
						t.Fatal("tracing enabled but no events retained")
					}
					for i := range serial.Trace {
						ev := &serial.Trace[i]
						if int(ev.Shard) < 0 || int(ev.Shard) >= cfg.Shards {
							t.Fatalf("event %d has shard %d outside [0,%d)", i, ev.Shard, cfg.Shards)
						}
						if i > 0 {
							prev := &serial.Trace[i-1]
							if ev.Shard < prev.Shard ||
								(ev.Shard == prev.Shard && ev.Seq <= prev.Seq) {
								t.Fatalf("trace not ordered by (shard, seq) at %d: %v then %v",
									i, prev, ev)
							}
						}
					}
					if got := serial.Counters["tlb.misses"]; got != serial.TLBMisses {
						t.Fatalf("counter tlb.misses = %d, Result.TLBMisses = %d", got, serial.TLBMisses)
					}
					if plan != nil {
						applied := serial.Counters["fault.applied"] + serial.Counters["fault.skipped"]
						if applied != uint64(serial.FaultsApplied+serial.FaultsSkipped) {
							t.Fatalf("fault counters = %d, Result reports %d",
								applied, serial.FaultsApplied+serial.FaultsSkipped)
						}
					}
				})
			}
		}
	}
}

// TestShardPlanClampsEndOfTrace pins the shardPlan rounding fix: an event
// anywhere in the full trace's op range — including the very last op and
// schedule entries placed at or past the end — must land inside the shard's
// [0, ops-1] range, so it fires while the shard is still walking rather
// than in the post-trace Drain.
func TestShardPlanClampsEndOfTrace(t *testing.T) {
	const totalOps = 10_000
	plan := fault.Plan{
		Name: "clamp",
		Seed: 3,
		Events: []fault.Event{
			{At: 0, Kind: fault.FlushCaches},
			{At: totalOps / 2, Kind: fault.FlushCaches},
			{At: totalOps - 1, Kind: fault.FlushCaches},
			{At: totalOps, Kind: fault.FlushCaches},      // at-end schedule entry
			{At: totalOps + 99, Kind: fault.FlushCaches}, // pathological overshoot
		},
	}
	for _, shards := range []int{2, 3, 4, 7, 8} {
		for shard := 0; shard < shards; shard++ {
			ops := shardOps(totalOps, shard, shards)
			sp := shardPlan(plan, totalOps, ops, shard, shards)
			if len(sp.Events) != len(plan.Events) {
				t.Fatalf("shards=%d shard=%d: %d events, want %d",
					shards, shard, len(sp.Events), len(plan.Events))
			}
			for i, e := range sp.Events {
				if e.At < 0 || e.At >= ops {
					t.Errorf("shards=%d shard=%d event %d: At=%d outside [0,%d)",
						shards, shard, i, e.At, ops)
				}
			}
			if sp.Seed == plan.Seed {
				t.Errorf("shards=%d shard=%d: plan RNG not decorrelated", shards, shard)
			}
		}
	}
}

// TestFaultEventCountsShardInvariant is the integration half of the clamp
// fix: every shard replays the full schedule against its own replica, so
// each shard must execute exactly len(plan.Events) events regardless of the
// shard count — none may slip past the end of a short shard's trace.
func TestFaultEventCountsShardInvariant(t *testing.T) {
	wl := detWorkload(t)
	suite := fault.Suite(detOps)
	plan := &suite[0]
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := Config{
			Env: EnvNative, Design: DesignDMT, THP: true, Workload: wl,
			WSBytes: detWS, Ops: detOps, Seed: 7,
			FaultPlan: plan, Shards: shards, Workers: 1,
		}
		parts, err := RunShards(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for _, p := range parts {
			got := p.Res.FaultsApplied + p.Res.FaultsSkipped
			if got != len(plan.Events) {
				t.Errorf("shards=%d shard=%d: executed %d events, want %d",
					shards, p.Shard, got, len(plan.Events))
			}
		}
	}
}
