package sim

import (
	"fmt"
	"sync"
	"time"

	"dmt/internal/obs"
)

// This file implements build-once, clone-many machine construction. A
// machine build (physical layout, address space, workload VMAs, TEA state,
// per-design translation structures) is a pure function of the
// build-relevant subset of Config, while the engine instantiates one
// machine per shard — so an 8-shard run used to pay the build eight times,
// and a figure matrix re-paid it for every (ops, verify, fault-plan)
// variation of the same machine. Prototypes snapshot the built substrate
// once; shards and repeated cells clone it structurally instead.

// buildKey is the build-relevant subset of Config: the fields the parts
// builders read. Trace-level fields (Ops, Workers, Shards, Verify,
// FaultPlan, traceSeed) never reach a parts builder and are deliberately
// excluded, so runs differing only in them share one prototype. Seed leaks
// into the build in exactly one place — pre-fragmentation — so it joins
// the key only when FragmentTarget is set.
type buildKey struct {
	env      Environment
	design   Design
	thp      bool
	workload string // Spec carries a func and is not map-comparable; Name identifies it
	ws       uint64
	scale    int
	teaRegs  int
	teaMerge float64
	frag     float64
	fragSeed int64
}

func buildKeyFor(cfg Config) buildKey {
	k := buildKey{
		env:      cfg.Env,
		design:   cfg.Design,
		thp:      cfg.THP,
		workload: cfg.Workload.Name,
		ws:       cfg.WSBytes,
		scale:    cfg.CacheScale,
		teaRegs:  cfg.TEARegisters,
		teaMerge: cfg.TEAMergeThreshold,
		frag:     cfg.FragmentTarget,
	}
	if cfg.FragmentTarget > 0 {
		k.fragSeed = cfg.Seed
	}
	return k
}

// Prototype is a built-once machine snapshot. It is never driven: every
// drivable machine is wired over a structural clone of its parts, so
// concurrent NewInstance calls from shard workers only ever read it.
type Prototype struct {
	cfg    Config
	native *nativeParts
	virt   *virtParts
	nested *nestedParts
}

// buildFailureHook, when non-nil, may veto a prototype build. Tests install
// it to simulate transient build failures (exhausted physical layouts,
// backend pressure) and prove they do not wedge the cache.
var buildFailureHook func(Config) error

// NewPrototype builds the substrate for cfg once, uncached. Most callers
// want the engine's transparent cache (just run with ColdBuild unset);
// this entry point exists for benchmarks and tests that need to measure or
// isolate a single build.
func NewPrototype(cfg Config) (*Prototype, error) {
	cfg = cfg.withDefaults()
	if buildFailureHook != nil {
		if err := buildFailureHook(cfg); err != nil {
			return nil, err
		}
	}
	p := &Prototype{cfg: cfg}
	var err error
	switch cfg.Env {
	case EnvNative:
		p.native, err = buildNativeParts(cfg)
	case EnvVirt:
		p.virt, err = buildVirtParts(cfg)
	case EnvNested:
		p.nested, err = buildNestedParts(cfg)
	default:
		err = fmt.Errorf("sim: unknown environment %v", cfg.Env)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

// wire clones the prototype's parts and wires a drivable machine for cfg,
// which must agree with the prototype on every buildKey field (the engine
// guarantees this; Prototype.NewInstance checks it).
func (p *Prototype) wire(cfg Config) (*machine, error) {
	start := time.Now()
	var m *machine
	var err error
	switch {
	case p.native != nil:
		var c *nativeParts
		if c, err = p.native.clone(); err == nil {
			m, err = wireNative(cfg, c)
		}
	case p.virt != nil:
		var c *virtParts
		if c, err = p.virt.clone(); err == nil {
			m, err = wireVirt(cfg, c)
		}
	case p.nested != nil:
		var c *nestedParts
		if c, err = p.nested.clone(); err == nil {
			m, err = wireNested(cfg, c)
		}
	default:
		err = fmt.Errorf("sim: empty prototype")
	}
	if err != nil {
		return nil, err
	}
	addCloneNs(time.Since(start).Nanoseconds())
	return m, nil
}

// NewInstance clones the prototype into a fresh, unstarted full-trace
// Instance for cfg. cfg may vary from the prototype's build config in
// trace-level fields only.
func (p *Prototype) NewInstance(cfg Config) (*Instance, error) {
	cfg = cfg.withDefaults()
	if buildKeyFor(cfg) != buildKeyFor(p.cfg) {
		return nil, fmt.Errorf("sim: config build-incompatible with prototype (%v/%v/%s)",
			p.cfg.Env, p.cfg.Design, p.cfg.Workload.Name)
	}
	m, err := p.wire(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: cloning %v/%v/%s: %w", cfg.Env, cfg.Design, cfg.Workload.Name, err)
	}
	return assembleInstance(cfg, cfg, m, 0, 1)
}

// BuildCacheStats summarizes prototype-cache behaviour: how many machine
// constructions were requested, how many were satisfied by cloning, and
// the cumulative nanoseconds spent building vs cloning.
type BuildCacheStats struct {
	Hits    uint64 // machine requests served by cloning a cached prototype
	Misses  uint64 // requests that had to build a prototype first
	BuildNs int64  // cumulative time inside parts builders
	CloneNs int64  // cumulative time cloning + wiring instances
}

// protoEntry is one cache slot; once guarantees a single build per key
// even when shard workers race on a cold cache.
type protoEntry struct {
	once  sync.Once
	proto *Prototype
	err   error
}

// protoCacheCap bounds resident prototypes. A full figure matrix touches
// well under this many distinct machines at a time; LRU eviction keeps
// long-lived processes (test binaries running many configurations) from
// pinning every substrate ever built.
const protoCacheCap = 16

var protoCache = struct {
	mu      sync.Mutex
	entries map[buildKey]*protoEntry
	order   []buildKey // LRU: front is oldest
	stats   BuildCacheStats
}{entries: map[buildKey]*protoEntry{}}

// cachedPrototype returns the (possibly concurrently-built) prototype for
// cfg's build key, building it at most once per residency.
func cachedPrototype(cfg Config) (*Prototype, error) {
	key := buildKeyFor(cfg)
	protoCache.mu.Lock()
	e, ok := protoCache.entries[key]
	if ok {
		protoCache.stats.Hits++
		obs.Default.Add("build.clone", 1)
		touchLocked(key)
	} else {
		protoCache.stats.Misses++
		obs.Default.Add("build.cold", 1)
		e = &protoEntry{}
		protoCache.entries[key] = e
		protoCache.order = append(protoCache.order, key)
		for len(protoCache.order) > protoCacheCap {
			evict := protoCache.order[0]
			protoCache.order = protoCache.order[1:]
			delete(protoCache.entries, evict)
		}
	}
	protoCache.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		e.proto, e.err = NewPrototype(cfg)
		ns := time.Since(start).Nanoseconds()
		protoCache.mu.Lock()
		protoCache.stats.BuildNs += ns
		protoCache.mu.Unlock()
	})
	if e.err != nil {
		// Errors are not memoized: a failed build must not poison its key
		// for the life of the process. Concurrent waiters on this entry all
		// observe the failure (they asked while it was in flight), but the
		// entry is dropped so the next lookup re-probes the build —
		// transient failures heal on retry instead of wedging every
		// subsequent identical run.
		protoCache.mu.Lock()
		if cur, ok := protoCache.entries[key]; ok && cur == e {
			delete(protoCache.entries, key)
			for i, k := range protoCache.order {
				if k == key {
					protoCache.order = append(protoCache.order[:i], protoCache.order[i+1:]...)
					break
				}
			}
		}
		protoCache.mu.Unlock()
		obs.Default.Add("build.failed", 1)
		return nil, e.err
	}
	return e.proto, nil
}

func touchLocked(key buildKey) {
	for i, k := range protoCache.order {
		if k == key {
			protoCache.order = append(append(protoCache.order[:i:i], protoCache.order[i+1:]...), key)
			return
		}
	}
}

func addCloneNs(ns int64) {
	protoCache.mu.Lock()
	protoCache.stats.CloneNs += ns
	protoCache.mu.Unlock()
}

// ReadBuildCacheStats snapshots the cache counters.
func ReadBuildCacheStats() BuildCacheStats {
	protoCache.mu.Lock()
	defer protoCache.mu.Unlock()
	return protoCache.stats
}

// ResetBuildCache empties the prototype cache and zeroes its counters.
// Tests use it to isolate cache behaviour; in-flight builds complete into
// their (now unreachable) entries harmlessly.
func ResetBuildCache() {
	protoCache.mu.Lock()
	defer protoCache.mu.Unlock()
	protoCache.entries = map[buildKey]*protoEntry{}
	protoCache.order = nil
	protoCache.stats = BuildCacheStats{}
}
