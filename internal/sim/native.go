package sim

import (
	"math/rand"

	"fmt"

	"dmt/internal/baseline/asap"
	"dmt/internal/baseline/ecpt"
	"dmt/internal/baseline/fpt"
	"dmt/internal/cache"
	"dmt/internal/check"
	"dmt/internal/core"
	"dmt/internal/fault"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
	"dmt/internal/tea"
	"dmt/internal/tlb"
)

// frames computes an allocator size: the working set plus headroom for
// page tables, TEAs, hash tables, and allocator slack.
func frames(ws uint64, slack float64, extra uint64) int {
	return int((uint64(float64(ws)*slack) + extra) >> mem.PageShift4K)
}

// teaConfig derives the TEA-manager configuration with ablation overrides.
func teaConfig(cfg Config) tea.Config {
	t := tea.DefaultConfig(cfg.THP)
	if cfg.TEARegisters > 0 {
		t.Registers = cfg.TEARegisters
	}
	if cfg.TEAMergeThreshold != 0 {
		t.MergeThreshold = cfg.TEAMergeThreshold
	}
	return t
}

func ecptSizes(thp bool) []mem.PageSize {
	if thp {
		return []mem.PageSize{mem.Size4K, mem.Size2M}
	}
	return []mem.PageSize{mem.Size4K}
}

// buildNative assembles a native-environment machine.
func buildNative(cfg Config) (*machine, error) {
	headroom := 1.35
	if cfg.FragmentTarget > 0 {
		headroom = 2.9 // fragmentation pins roughly half the zone
	}
	pa := phys.New(0, frames(cfg.WSBytes, headroom, 256<<20))
	if cfg.FragmentTarget > 0 {
		pa.Fragment(rand.New(rand.NewSource(cfg.Seed)), 4, cfg.FragmentTarget)
	}
	as, err := kernel.NewAddressSpace(pa, kernel.Config{THP: cfg.THP, ASID: 1})
	if err != nil {
		return nil, err
	}

	// DMT's TEA hooks must observe VMA creation, so install them before
	// the workload lays out its VMAs. The flaky wrapper stays transparent
	// until a fault schedule arms it.
	var mgr *tea.Manager
	var flaky *fault.FlakyBackend
	if cfg.Design == DesignDMT {
		flaky = fault.NewFlakyBackend(tea.NewPhysBackend(pa))
		mgr = tea.NewManager(as, flaky, teaConfig(cfg))
		as.SetHooks(mgr)
	}

	built, err := cfg.Workload.Build(as, cfg.WSBytes)
	if err != nil {
		return nil, err
	}

	hier, err := cache.NewHierarchy(cache.ScaledConfig(cfg.CacheScale))
	if err != nil {
		return nil, err
	}
	radix := core.NewRadixWalker(as.PT, hier, tlb.NewPWCScaled(cfg.CacheScale), as.ASID())

	m := &machine{hier: hier, gen: built.NewGen(cfg.genSeed())}
	m.target = fault.Target{AS: as, Mgr: mgr, Backend: flaky}
	if len(built.Major) > 0 {
		m.target.Hot = built.Major[0]
	}
	m.ref = as.PT.Lookup
	m.sizeExact = true
	switch cfg.Design {
	case DesignVanilla:
		m.sink = &core.RefSink{}
		radix.Sink = m.sink
		m.walker = radix
		m.footer = func(r *Result) { r.PTEBytes = as.Pool.NodeCount() * mem.PageBytes4K }
	case DesignDMT:
		d := core.NewDMTWalker(mgr, as.Pool, hier, radix)
		m.sink = &core.RefSink{}
		d.Sink = m.sink
		radix.Sink = m.sink // fallback walks share the chain's buffer
		m.walker = d
		m.coverage = d.CoverageCounts
		m.fastPath = d.Probe
		m.invariants = check.TEAInvariants(mgr, as)
		m.footer = func(r *Result) {
			r.PTEBytes = as.Pool.NodeCount() * mem.PageBytes4K
		}
	case DesignECPT:
		buildSys := func() (*ecpt.System, error) {
			sys, err := ecpt.NewSystem(pa, ecptSizes(cfg.THP), int(cfg.WSBytes>>mem.PageShift4K)/ecpt.GroupPages)
			if err != nil {
				return nil, err
			}
			if err := sys.Sync(as); err != nil {
				return nil, err
			}
			return sys, nil
		}
		sys, err := buildSys()
		if err != nil {
			return nil, err
		}
		m.sink = &core.RefSink{}
		w := &ecpt.Walker{Sys: sys, Hier: hier, Sink: m.sink}
		m.walker = w
		// The hash tables are a one-shot sync of the page tables; mapping
		// mutations must rebuild them or stale entries would mistranslate.
		m.target.Resync = func() error {
			sys, err := buildSys()
			if err != nil {
				return err
			}
			w.Sys = sys
			return nil
		}
		m.footer = func(r *Result) { r.PTEBytes = w.Sys.Table(mem.Size4K).FootprintBytes() }
	case DesignFPT:
		buildTable := func() (*fpt.Table, error) {
			t, err := fpt.New(pa)
			if err != nil {
				return nil, err
			}
			if err := t.Sync(as); err != nil {
				return nil, err
			}
			return t, nil
		}
		t, err := buildTable()
		if err != nil {
			return nil, err
		}
		m.sink = &core.RefSink{}
		w := &fpt.Walker{T: t, Hier: hier, Sink: m.sink}
		m.walker = w
		m.target.Resync = func() error {
			t, err := buildTable()
			if err != nil {
				return err
			}
			w.T = t
			return nil
		}
		m.footer = func(r *Result) { r.PTEBytes = w.T.FootprintBytes() }
	case DesignASAP:
		var steps []pagetable.Step
		var refs []core.MemRef
		src := asap.LastTwoLevelSource(func(va mem.VAddr) []core.MemRef {
			refs = refs[:0]
			walk := as.PT.WalkInto(va, steps[:0])
			steps = walk.Steps
			for _, s := range walk.Steps {
				refs = append(refs, core.MemRef{Addr: s.Addr, Level: s.Level})
			}
			return refs
		})
		m.sink = &core.RefSink{}
		radix.Sink = m.sink
		m.walker = &asap.Walker{Inner: radix, Hier: hier, Source: src, MemLatency: hier.Config().MemLatency}
		m.footer = func(r *Result) { r.PTEBytes = as.Pool.NodeCount() * mem.PageBytes4K }
	default:
		return nil, fmt.Errorf("design %q not available natively", cfg.Design)
	}
	return m, nil
}
