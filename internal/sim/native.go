package sim

import (
	"math/rand"

	"fmt"

	"dmt/internal/baseline/asap"
	"dmt/internal/baseline/ecpt"
	"dmt/internal/baseline/fpt"
	"dmt/internal/baseline/utopia"
	"dmt/internal/baseline/victima"
	"dmt/internal/cache"
	"dmt/internal/check"
	"dmt/internal/core"
	"dmt/internal/fault"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
	"dmt/internal/tea"
	"dmt/internal/tlb"
	"dmt/internal/workload"
)

// frames computes an allocator size: the working set plus headroom for
// page tables, TEAs, hash tables, and allocator slack.
func frames(ws uint64, slack float64, extra uint64) int {
	return int((uint64(float64(ws)*slack) + extra) >> mem.PageShift4K)
}

// teaConfig derives the TEA-manager configuration with ablation overrides.
func teaConfig(cfg Config) tea.Config {
	t := tea.DefaultConfig(cfg.THP)
	if cfg.TEARegisters > 0 {
		t.Registers = cfg.TEARegisters
	}
	if cfg.TEAMergeThreshold != 0 {
		t.MergeThreshold = cfg.TEAMergeThreshold
	}
	return t
}

func ecptSizes(thp bool) []mem.PageSize {
	if thp {
		return []mem.PageSize{mem.Size4K, mem.Size2M}
	}
	return []mem.PageSize{mem.Size4K}
}

// buildECPTSystem creates and syncs the per-size cuckoo tables from the
// current page-table contents of as, allocating from pa. Used both at parts
// build time and by the wire-time Resync closures (which rebuild against an
// instance's own allocator/address space after mapping mutations).
func buildECPTSystem(cfg Config, pa *phys.Allocator, as *kernel.AddressSpace) (*ecpt.System, error) {
	sys, err := ecpt.NewSystem(pa, ecptSizes(cfg.THP), int(cfg.WSBytes>>mem.PageShift4K)/ecpt.GroupPages)
	if err != nil {
		return nil, err
	}
	if err := sys.Sync(as); err != nil {
		return nil, err
	}
	return sys, nil
}

// buildFPTTable creates and syncs a flattened table from as, allocating
// from pa. Shared by parts build and Resync, like buildECPTSystem.
func buildFPTTable(pa *phys.Allocator, as *kernel.AddressSpace) (*fpt.Table, error) {
	t, err := fpt.New(pa)
	if err != nil {
		return nil, err
	}
	if err := t.Sync(as); err != nil {
		return nil, err
	}
	return t, nil
}

// buildUtopiaSeg creates and syncs Utopia's RestSegs from as, allocating
// storage from alloc (machine memory under virtualization). resolve is the
// host-dimension composition (nil native). Shared by parts build and
// Resync, like buildECPTSystem.
func buildUtopiaSeg(alloc *phys.Allocator, as *kernel.AddressSpace, ws uint64, resolve func(mem.PAddr) (mem.PAddr, bool)) (*utopia.Seg, error) {
	seg, err := utopia.NewSeg(alloc, ws)
	if err != nil {
		return nil, err
	}
	if err := seg.Sync(as, resolve); err != nil {
		return nil, err
	}
	return seg, nil
}

// nativeParts is the cloneable substrate of a native machine: everything
// whose construction cost the prototype cache amortizes. Walkers, TLBs,
// sinks, and trace generators are NOT parts — they are created fresh per
// instance by wireNative, so nothing here may alias a driven machine.
type nativeParts struct {
	pa    *phys.Allocator
	as    *kernel.AddressSpace
	mgr   *tea.Manager        // DMT only
	flaky *fault.FlakyBackend // DMT only
	built *workload.Built     // immutable after build; shared across clones
	hier  *cache.Hierarchy
	sys   *ecpt.System   // ECPT only
	ft    *fpt.Table     // FPT only
	vic   *victima.Store // Victima only
	seg   *utopia.Seg    // Utopia only
}

// buildNativeParts lays out the native substrate: physical zone (optionally
// pre-fragmented), address space, TEA manager, workload VMAs, cache
// hierarchy, and any design-specific translation structures. It reads only
// the build-relevant Config fields (those in buildKey) — trace-level fields
// (Ops, seeds, verification) must not influence the result, or the
// prototype cache would conflate distinct machines.
func buildNativeParts(cfg Config) (*nativeParts, error) {
	headroom := 1.35
	if cfg.FragmentTarget > 0 {
		headroom = 2.9 // fragmentation pins roughly half the zone
	}
	pa := phys.New(0, frames(cfg.WSBytes, headroom, 256<<20))
	if cfg.FragmentTarget > 0 {
		pa.Fragment(rand.New(rand.NewSource(cfg.Seed)), 4, cfg.FragmentTarget)
	}
	as, err := kernel.NewAddressSpace(pa, kernel.Config{THP: cfg.THP, ASID: 1})
	if err != nil {
		return nil, err
	}
	p := &nativeParts{pa: pa, as: as}

	// DMT's TEA hooks must observe VMA creation, so install them before
	// the workload lays out its VMAs. The flaky wrapper stays transparent
	// until a fault schedule arms it.
	if cfg.Design == DesignDMT {
		p.flaky = fault.NewFlakyBackend(tea.NewPhysBackend(pa))
		p.mgr = tea.NewManager(as, p.flaky, teaConfig(cfg))
		as.SetHooks(p.mgr)
	}

	p.built, err = cfg.Workload.Build(as, cfg.WSBytes)
	if err != nil {
		return nil, err
	}

	p.hier, err = cache.NewHierarchy(cache.ScaledConfig(cfg.CacheScale))
	if err != nil {
		return nil, err
	}
	switch cfg.Design {
	case DesignECPT:
		if p.sys, err = buildECPTSystem(cfg, pa, as); err != nil {
			return nil, err
		}
	case DesignFPT:
		if p.ft, err = buildFPTTable(pa, as); err != nil {
			return nil, err
		}
	case DesignVictima:
		if p.vic, err = victima.NewStore(pa, p.hier.Config().L2); err != nil {
			return nil, err
		}
	case DesignUtopia:
		if p.seg, err = buildUtopiaSeg(pa, as, cfg.WSBytes, nil); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// clone snapshots the parts: an independent allocator/address-space pair,
// re-bound TEA manager over a fresh backend (compaction counts carried
// over so footers match a cold build), warm cache hierarchy, and per-design
// translation structures. The workload's Built is shared — its generators
// capture sizes at NewGen time and read only immutable VMA bases.
func (p *nativeParts) clone() (*nativeParts, error) {
	pa := p.pa.Clone()
	as := p.as.Clone(pa)
	c := &nativeParts{pa: pa, as: as, built: p.built, hier: p.hier.Clone()}
	if p.mgr != nil {
		pb := tea.NewPhysBackend(pa)
		if old, ok := p.flaky.Inner.(*tea.PhysBackend); ok {
			pb.Compactions = old.Compactions
		}
		c.flaky = fault.NewFlakyBackend(pb)
		mgr, err := p.mgr.Clone(as, c.flaky)
		if err != nil {
			return nil, err
		}
		c.mgr = mgr
	}
	if p.sys != nil {
		c.sys = p.sys.Clone(pa)
	}
	if p.ft != nil {
		c.ft = p.ft.Clone(pa)
	}
	if p.vic != nil {
		c.vic = p.vic.Clone()
	}
	if p.seg != nil {
		c.seg = p.seg.Clone()
	}
	return c, nil
}

// wireNative assembles a drivable machine over the given parts (fresh from
// buildNativeParts or a clone): walkers, walk caches, ref sink, fault
// target, and trace generator are all created here, never cloned, so every
// closure binds to exactly this instance's substrate.
func wireNative(cfg Config, p *nativeParts) (*machine, error) {
	pa, as, hier := p.pa, p.as, p.hier
	radix := core.NewRadixWalker(as.PT, hier, tlb.NewPWCScaled(cfg.CacheScale), as.ASID())

	m := &machine{hier: hier, gen: p.built.NewGen(cfg.genSeed())}
	m.target = fault.Target{AS: as, Mgr: p.mgr, Backend: p.flaky}
	if len(p.built.Major) > 0 {
		hot, ok := as.FindVMA(p.built.Major[0].Start)
		if !ok {
			return nil, fmt.Errorf("hot VMA missing at %#x", uint64(p.built.Major[0].Start))
		}
		m.target.Hot = hot
	}
	m.ref = as.PT.Lookup
	m.sizeExact = true
	switch cfg.Design {
	case DesignVanilla:
		m.sink = &core.RefSink{}
		radix.Sink = m.sink
		m.walker = radix
		m.footer = func(r *Result) { r.PTEBytes = as.Pool.NodeCount() * mem.PageBytes4K }
	case DesignDMT:
		d := core.NewDMTWalker(p.mgr, as.Pool, hier, radix)
		m.sink = &core.RefSink{}
		d.Sink = m.sink
		radix.Sink = m.sink // fallback walks share the chain's buffer
		m.walker = d
		m.coverage = d.CoverageCounts
		m.fastPath = d.Probe
		m.invariants = check.TEAInvariants(p.mgr, as)
		m.footer = func(r *Result) {
			r.PTEBytes = as.Pool.NodeCount() * mem.PageBytes4K
		}
	case DesignECPT:
		m.sink = &core.RefSink{}
		w := &ecpt.Walker{Sys: p.sys, Hier: hier, Sink: m.sink}
		m.walker = w
		// The hash tables are a one-shot sync of the page tables; mapping
		// mutations must rebuild them or stale entries would mistranslate.
		m.target.Resync = func() error {
			sys, err := buildECPTSystem(cfg, pa, as)
			if err != nil {
				return err
			}
			w.Sys = sys
			return nil
		}
		m.footer = func(r *Result) { r.PTEBytes = w.Sys.Table(mem.Size4K).FootprintBytes() }
	case DesignFPT:
		m.sink = &core.RefSink{}
		w := &fpt.Walker{T: p.ft, Hier: hier, Sink: m.sink}
		m.walker = w
		m.target.Resync = func() error {
			t, err := buildFPTTable(pa, as)
			if err != nil {
				return err
			}
			w.T = t
			return nil
		}
		m.footer = func(r *Result) { r.PTEBytes = w.T.FootprintBytes() }
	case DesignASAP:
		var steps []pagetable.Step
		var refs []core.MemRef
		src := asap.LastTwoLevelSource(func(va mem.VAddr) []core.MemRef {
			refs = refs[:0]
			walk := as.PT.WalkInto(va, steps[:0])
			steps = walk.Steps
			for _, s := range walk.Steps {
				refs = append(refs, core.MemRef{Addr: s.Addr, Level: s.Level})
			}
			return refs
		})
		m.sink = &core.RefSink{}
		radix.Sink = m.sink
		m.walker = &asap.Walker{Inner: radix, Hier: hier, Source: src, MemLatency: hier.Config().MemLatency}
		m.footer = func(r *Result) { r.PTEBytes = as.Pool.NodeCount() * mem.PageBytes4K }
	case DesignVictima:
		m.sink = &core.RefSink{}
		radix.Sink = m.sink
		w := victima.NewWalker(p.vic, hier, radix, m.sink)
		m.walker = w
		m.coverage = w.CoverageCounts
		// Spilled translations cache PT contents outside the TLB, so
		// mapping mutations must drop them like a TLB shootdown would.
		m.target.Resync = func() error {
			w.Flush()
			return nil
		}
		m.footer = func(r *Result) { r.PTEBytes = as.Pool.NodeCount() * mem.PageBytes4K }
	case DesignUtopia:
		m.sink = &core.RefSink{}
		radix.Sink = m.sink
		w := &utopia.Walker{Seg: p.seg, Hier: hier, Fallback: radix, Sink: m.sink}
		m.walker = w
		m.coverage = w.CoverageCounts
		// The RestSegs are a one-shot sync of the page tables; mapping
		// mutations must rebuild them or stale entries would mistranslate.
		m.target.Resync = func() error {
			seg, err := buildUtopiaSeg(pa, as, cfg.WSBytes, nil)
			if err != nil {
				return err
			}
			w.Seg = seg
			return nil
		}
		m.footer = func(r *Result) {
			r.PTEBytes = as.Pool.NodeCount()*mem.PageBytes4K + w.Seg.FootprintBytes()
		}
	default:
		return nil, fmt.Errorf("design %q not available natively", cfg.Design)
	}
	return m, nil
}

// buildNative assembles a native-environment machine from scratch (the
// cold path; the prototype cache goes through buildNativeParts + clone +
// wireNative instead).
func buildNative(cfg Config) (*machine, error) {
	p, err := buildNativeParts(cfg)
	if err != nil {
		return nil, err
	}
	return wireNative(cfg, p)
}
