// Package sim is the measurement engine of the reproduction: it assembles
// a (environment × translation-design × page-size) machine, drives a
// workload trace through TLB → walker → cache hierarchy, and collects the
// quantities the paper's evaluation reports — average page-walk latency,
// sequential reference counts, per-step walk breakdowns (Figure 16),
// register coverage, VM exits, and hypercalls.
package sim

import (
	"context"
	"fmt"
	"sort"

	"dmt/internal/cache"
	"dmt/internal/check"
	"dmt/internal/core"
	"dmt/internal/fault"
	"dmt/internal/mem"
	"dmt/internal/obs"
	"dmt/internal/tlb"
	"dmt/internal/workload"
)

// Environment selects the virtualization depth.
type Environment int

const (
	EnvNative Environment = iota
	EnvVirt
	EnvNested
)

func (e Environment) String() string {
	switch e {
	case EnvNative:
		return "native"
	case EnvVirt:
		return "virtualized"
	case EnvNested:
		return "nested"
	}
	return fmt.Sprintf("Environment(%d)", int(e))
}

// ParseEnvironment maps an environment name (as accepted by the CLIs and
// the serving API) to its Environment.
func ParseEnvironment(name string) (Environment, error) {
	switch name {
	case "native":
		return EnvNative, nil
	case "virt", "virtualized":
		return EnvVirt, nil
	case "nested":
		return EnvNested, nil
	}
	return 0, fmt.Errorf("sim: unknown environment %q (want native, virt, nested)", name)
}

// Design selects the translation design under test.
type Design string

// The designs of the evaluation: the vanilla baseline (radix walk native,
// hardware-assisted nested paging virtualized, shadow-over-nested for
// nested virtualization), shadow paging, DMT and pvDMT, the four
// comparison designs of §6.2, and the two related-work contenders the
// paper never ran head-to-head (Victima's L2-way TLB spill and Utopia's
// restrictive/flexible hybrid mapping).
const (
	DesignVanilla Design = "vanilla"
	DesignShadow  Design = "shadow"
	DesignDMT     Design = "dmt"
	DesignPvDMT   Design = "pvdmt"
	DesignECPT    Design = "ecpt"
	DesignFPT     Design = "fpt"
	DesignAgile   Design = "agile"
	DesignASAP    Design = "asap"
	DesignVictima Design = "victima"
	DesignUtopia  Design = "utopia"
)

// allDesigns is the design registry: ParseDesign validates against it, and
// the batch-walk registry test walks it to assert every design's walker in
// every supported environment implements core.BatchWalker (no silent
// ScalarWalkBatch fallback). Register new designs here.
var allDesigns = []Design{
	DesignVanilla, DesignShadow, DesignDMT, DesignPvDMT,
	DesignECPT, DesignFPT, DesignAgile, DesignASAP,
	DesignVictima, DesignUtopia,
}

// ParseDesign validates a design name against the known set.
func ParseDesign(name string) (Design, error) {
	for _, d := range allDesigns {
		if Design(name) == d {
			return d, nil
		}
	}
	return "", fmt.Errorf("sim: unknown design %q (want vanilla, shadow, dmt, pvdmt, ecpt, fpt, agile, asap, victima, utopia)", name)
}

// Config describes one run.
type Config struct {
	Env      Environment
	Design   Design
	THP      bool
	Workload workload.Spec
	// WSBytes overrides the workload's scaled default working set.
	WSBytes uint64
	// Ops is the trace length.
	Ops int
	// Seed drives the trace generator.
	Seed int64
	// CacheScale divides every cache/TLB capacity (latencies unchanged),
	// keeping structure reach proportional to the scaled working sets
	// (DESIGN.md §6). Default 16.
	CacheScale int
	// TEARegisters overrides the DMT register-file size (0 = the paper's
	// 16); used by the register-count ablation.
	TEARegisters int
	// TEAMergeThreshold overrides the VMA-clustering bubble threshold
	// (0 = the paper's 2%; negative disables merging); used by the
	// merge-threshold ablation.
	TEAMergeThreshold float64
	// FragmentTarget, when positive, pre-fragments physical memory to
	// the given order-4 fragmentation index before the workload is laid
	// out (the §6.3 methodology).
	FragmentTarget float64
	// FaultPlan, when non-nil, injects the schedule's faults (TEA
	// migrations, register spills, allocation failures, page churn, huge
	// flips — internal/fault) as the trace advances.
	FaultPlan *fault.Plan
	// Verify re-translates every reference through the live page tables
	// (internal/check), asserting PA/size agreement, fallback-iff-miss
	// for DMT designs, and TEA structural invariants after fault events.
	Verify bool
	// Workers bounds how many shards simulate concurrently (default 1).
	// Workers only schedules; it never changes results — a run with any
	// worker count is bit-identical to the same run at Workers 1.
	Workers int
	// Shards decomposes the trace into per-shard sub-traces, each driven
	// through its own deterministic machine replica and merged
	// order-independently (DESIGN.md, "sharded determinism"). Default: 1
	// when Workers <= 1 (the classic serial run), else Workers. Results
	// are a function of Shards, not Workers.
	Shards int
	// ColdBuild bypasses the prototype cache, constructing every shard's
	// machine from scratch (the pre-snapshot behaviour). Results are
	// bit-identical either way — the differential clone-equality tests
	// enforce it — so this exists for those tests and for benchmarking
	// the cold path, not for correctness.
	ColdBuild bool
	// Trace enables per-walk structured trace capture (internal/obs): each
	// shard records its walks into a fixed-size overwrite-oldest ring, and
	// MergeShards concatenates the rings ordered by (shard, seq) into
	// Result.Trace. Off by default — the ring is the only observability
	// feature with per-walk hot-path cost (the latency histogram and the
	// Finish-time counter snapshot are always on and allocation-free).
	Trace bool
	// TraceCap bounds each shard's trace ring (default 4096 events when
	// Trace is set; ignored otherwise). Result.TraceTotal counts every
	// walk offered, so TraceTotal - len(Trace) were overwritten.
	TraceCap int

	// traceSeed, when non-zero, overrides Seed for trace generation only;
	// the engine sets it per shard so machine construction (layout,
	// fragmentation) stays identical across replicas while each shard
	// draws a decorrelated reference stream.
	traceSeed int64

	// scalarWalk forces the engine's pre-batch per-op loop (Instance.Step
	// per trace operation). The batched loop is bit-identical by contract —
	// the metamorphic suite in batch_equiv_test.go drives both paths over
	// the full env×design matrix — so this knob exists only as that suite's
	// reference leg, never for production runs.
	scalarWalk bool
	// batchCap, when positive, caps the engine's walk-batch size below
	// BatchOps. Results are independent of the cap (spans only restructure
	// the loop around the ops); the metamorphic suite sweeps awkward caps
	// (1, 7, sizes not dividing Ops) to prove it.
	batchCap int
}

func (c Config) withDefaults() Config {
	if c.Ops == 0 {
		c.Ops = 200_000
	}
	if c.CacheScale == 0 {
		c.CacheScale = 16
	}
	if c.WSBytes == 0 {
		c.WSBytes = c.Workload.DefaultWS
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Shards == 0 {
		if c.Workers > 1 {
			c.Shards = c.Workers
		} else {
			c.Shards = 1
		}
	}
	return c
}

// Normalized returns the configuration with the engine's defaults applied
// — the form in which every result-determining field is explicit. Two
// configurations with equal normalized result-determining fields (Workers
// aside, which only schedules) produce bit-identical Results; the serving
// layer keys request coalescing on exactly this form.
func (c Config) Normalized() Config { return c.withDefaults() }

// genSeed is the seed driving this configuration's trace generator.
func (c Config) genSeed() int64 {
	if c.traceSeed != 0 {
		return c.traceSeed
	}
	return c.Seed
}

// StepAgg aggregates one architectural walk step across all walks.
type StepAgg struct {
	Label  string
	Cycles uint64
	Count  uint64
}

// Result is the measured outcome of a run.
type Result struct {
	Config Config

	Ops        int
	TLBMisses  uint64
	Walks      uint64
	WalkCycles uint64
	SeqRefs    uint64
	TotalRefs  uint64
	DataCycles uint64
	// Coverage is the fraction of walks served by DMT registers without
	// fallback (1.0 for non-DMT designs' notion of "always").
	Coverage  float64
	Fallbacks uint64

	Hypercalls      uint64
	VMExits         uint64
	ShadowSyncs     uint64
	IsolationFaults uint64

	// PTEBytes is the design's translation-structure footprint.
	PTEBytes int

	// Fault-injection and verification outcome (zero unless enabled).
	FaultsApplied int
	FaultsSkipped int
	FaultLog      []string
	DemandFaults  uint64
	Checked       uint64
	Mismatches    uint64

	// WalkHist is the power-of-two-bucketed walk-latency histogram
	// (internal/obs): exact count/sum/extrema, quantiles within one bucket
	// of the true order statistic. Always collected — observing is one
	// array increment — and merged bucket-wise across shards.
	WalkHist *obs.Hist
	// Counters is the named-counter snapshot taken at Finish: TLB, PWC and
	// cache hit splits, walker-chain attribution (core.CounterSource),
	// hypervisor exits, fault and verification outcomes. Shard merging
	// sums per name.
	Counters obs.Counters
	// Trace holds the merged per-walk events when Config.Trace is set,
	// ordered by (shard, seq); TraceTotal counts every walk offered to the
	// rings, including overwritten ones.
	Trace      []obs.WalkEvent
	TraceTotal uint64

	breakdown map[string]*StepAgg

	// covHits/covTotal are the integer counters behind Coverage; shard
	// merging sums these so parallel coverage reproduces serial coverage
	// bit-exactly instead of averaging floats. covSet records whether the
	// design reports coverage at all (DMT family) — merged runs recompute
	// Coverage from the summed counters only when it does.
	covHits, covTotal uint64
	covSet            bool
}

// AvgWalkCycles is the mean page-walk latency.
func (r *Result) AvgWalkCycles() float64 {
	if r.Walks == 0 {
		return 0
	}
	return float64(r.WalkCycles) / float64(r.Walks)
}

// AvgSeqRefs is the mean number of sequential references per walk.
func (r *Result) AvgSeqRefs() float64 {
	if r.Walks == 0 {
		return 0
	}
	return float64(r.SeqRefs) / float64(r.Walks)
}

// WalkPercentile returns the p-th percentile walk latency in cycles from
// the walk-latency histogram: the upper bound of the containing
// power-of-two bucket, clamped to the observed extrema (so p=0 and p=100
// are exact).
func (r *Result) WalkPercentile(p float64) uint64 {
	if r.WalkHist == nil {
		return 0
	}
	return r.WalkHist.Quantile(p)
}

// MissRatio is the TLB miss ratio of the trace.
func (r *Result) MissRatio() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.TLBMisses) / float64(r.Ops)
}

// Breakdown returns the per-step aggregation sorted by label (architectural
// step number first for nested walks).
func (r *Result) Breakdown() []StepAgg {
	out := make([]StepAgg, 0, len(r.breakdown))
	for _, a := range r.breakdown {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// recordingWalker decorates a walker with per-step aggregation, fall-back
// counting, and (when verifying) the differential oracle. It owns the
// per-machine ref sink: resetting it before each walk lets the whole walker
// chain stream refs into one reusable buffer instead of allocating per walk.
type recordingWalker struct {
	inner core.Walker
	res   *Result
	chk   *check.Checker
	sink  *core.RefSink

	// hist observes every walk's latency; ring (nil unless Config.Trace)
	// captures per-walk structured events. Both are per-shard and merged
	// by the engine, like every other counter.
	hist *obs.Hist
	ring *obs.Ring

	// labels interns (step, level, dim) → aggregate so the hot path skips
	// refLabel's Sprintf (and its allocations) after the first encounter.
	// fast is the first-line intern table: every label emitted by the ten
	// designs packs into 12 bits (labelIndex), so the common case is one
	// array load instead of a map probe (hashing the dim string was ~15%
	// of the pre-batch walk profile). labels remains the fallback for keys
	// outside the packed range.
	labels map[labelKey]*StepAgg
	fast   []*StepAgg

	// lats, when non-nil, buffers walk latencies for a batch-boundary
	// ObserveBatch flush instead of observing into hist per walk; the
	// engine arms it around StepBatch and flushes on every exit path.
	lats []uint64
}

// labelKey identifies one architectural walk step; it mirrors the fields
// refLabel formats.
type labelKey struct {
	step, level int
	dim         string
}

// labelFastSize bounds the packed label space: 3 bits of dimension code,
// 3 bits of level, 6 bits of step.
const labelFastSize = 1 << 12

// labelIndex packs a ref's identity into the fast-table index, or reports
// that it doesn't fit (unknown dimension, step ≥ 64, level ≥ 8) and must
// take the map path. The dimension set is closed over the walker
// implementations: native/guest/host/shadow radix dims, DMT's bare labels,
// and pvDMT's nested "L0"–"L2" step names.
func labelIndex(ref *core.MemRef) (int, bool) {
	var dim int
	switch ref.Dim {
	case "n":
		dim = 0
	case "g":
		dim = 1
	case "h":
		dim = 2
	case "s":
		dim = 3
	case "":
		dim = 4
	case "L0":
		dim = 5
	case "L1":
		dim = 6
	case "L2":
		dim = 7
	default:
		return 0, false
	}
	if uint(ref.Step) >= 64 || uint(ref.Level) >= 8 {
		return 0, false
	}
	return dim<<9 | ref.Level<<6 | ref.Step, true
}

func (w *recordingWalker) Name() string { return w.inner.Name() }

func (w *recordingWalker) Walk(va mem.VAddr) core.WalkOutcome {
	if w.sink != nil {
		w.sink.Reset()
	}
	out := w.inner.Walk(va)
	w.RecordWalk(va, &out)
	return out
}

// RecordWalk aggregates one walker invocation: the differential oracle,
// whole-walk counters, per-step label aggregation, latency observation,
// and trace-ring capture. It is the measurement half of Walk, factored out
// so the batched engine (core.RunBatch) can invoke it directly as a
// core.WalkRecorder at exactly the scalar path's sequence point — after
// the walk, before the TLB refill.
func (w *recordingWalker) RecordWalk(va mem.VAddr, out *core.WalkOutcome) {
	if w.chk != nil {
		w.chk.CheckWalk(va, *out)
	}
	w.res.Walks++
	w.res.WalkCycles += uint64(out.Cycles)
	w.res.SeqRefs += uint64(out.SeqSteps)
	w.res.TotalRefs += uint64(len(out.Refs))
	if out.Fallback {
		w.res.Fallbacks++
	}
	for i := range out.Refs {
		ref := &out.Refs[i]
		var agg *StepAgg
		if idx, ok := labelIndex(ref); ok {
			agg = w.fast[idx]
			if agg == nil {
				agg = w.intern(ref)
				w.fast[idx] = agg
			}
		} else {
			k := labelKey{step: ref.Step, level: ref.Level, dim: ref.Dim}
			agg = w.labels[k]
			if agg == nil {
				agg = w.intern(ref)
				w.labels[k] = agg
			}
		}
		agg.Cycles += uint64(ref.Cycles)
		agg.Count++
	}
	if w.lats != nil {
		w.lats = append(w.lats, uint64(out.Cycles))
	} else if w.hist != nil {
		w.hist.Observe(uint64(out.Cycles))
	}
	if w.ring != nil {
		w.capture(va, out)
	}
}

// intern resolves (or creates) the breakdown aggregate for ref's label;
// the formatting cost is paid once per distinct label per shard.
func (w *recordingWalker) intern(ref *core.MemRef) *StepAgg {
	label := refLabel(*ref)
	agg := w.res.breakdown[label]
	if agg == nil {
		agg = &StepAgg{Label: label}
		w.res.breakdown[label] = agg
	}
	return agg
}

// capture records one walk into the trace ring: VA, whole-walk latency,
// fallback flag, and up to obs.MaxSteps per-fetch step records (dimension,
// architectural step, level, serving cache level, cycles). The slot is
// reused in place across ring laps, so every field — including the step
// prefix — is overwritten here.
func (w *recordingWalker) capture(va mem.VAddr, out *core.WalkOutcome) {
	ev := w.ring.Next()
	if ev == nil {
		return
	}
	ev.VA = uint64(va)
	ev.Cycles = uint32(out.Cycles)
	ev.Fallback = out.Fallback
	n := len(out.Refs)
	ev.Truncated = n > obs.MaxSteps
	if n > obs.MaxSteps {
		n = obs.MaxSteps
	}
	ev.NumSteps = int32(n)
	for i := 0; i < n; i++ {
		ref := &out.Refs[i]
		ev.Steps[i] = obs.StepTrace{
			Dim:    ref.Dim,
			Step:   int16(ref.Step),
			Level:  int16(ref.Level),
			Served: uint8(ref.Served),
			Cycles: uint32(ref.Cycles),
		}
	}
}

func refLabel(ref core.MemRef) string {
	if ref.Step > 0 {
		return fmt.Sprintf("%02d %sL%d", ref.Step, ref.Dim, ref.Level)
	}
	if ref.Level > 0 {
		return fmt.Sprintf("%s L%d", ref.Dim, ref.Level)
	}
	return ref.Dim
}

// machine is the assembled simulation target returned by the builders.
type machine struct {
	hier   *cache.Hierarchy
	walker core.Walker
	gen    workload.Gen
	// coverage returns the walker's raw hit/total counters (nil for
	// designs without a fast-path notion of coverage); results keep the
	// integers so shard merges stay bit-exact.
	coverage func() (hits, total uint64)
	footer   func(*Result) // copies counters (exits, footprints) at the end
	// sink is the shared ref buffer installed into sink-aware walker
	// chains (vanilla/shadow/DMT/pvDMT); nil for designs whose wrappers
	// still allocate per walk.
	sink *core.RefSink

	// Fault/verification harness, filled by the builders.
	target     fault.Target         // handles the injector perturbs
	ref        check.Ref            // ground-truth translation (live PTs)
	fastPath   func(mem.VAddr) bool // side-effect-free DMT fast-path probe
	sizeExact  bool                 // outcome size must equal reference size
	invariants func() []string      // TEA structural invariants
}

// Run executes one configuration and returns its measurements. The trace is
// decomposed into cfg.Shards deterministic sub-runs simulated by up to
// cfg.Workers goroutines and merged order-independently (engine.go); with
// the defaults (one shard, one worker) this is the classic serial run.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context: cancellation or deadline expiry aborts
// every shard at its next step-batch boundary (engine.go) and returns
// ctx.Err(). An aborted run leaves no residue — the prototype cache keeps
// only successfully built machines, so the same configuration re-runs
// cleanly afterwards.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	parts, err := RunShardsCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	res, err := MergeShards(cfg, parts)
	if err != nil {
		return nil, err
	}
	// Fold the run's counter snapshot into the process-global registry the
	// expvar endpoint exports; Result.Counters itself stays per-run.
	obs.Default.AddAll(res.Counters)
	return res, nil
}

// scaledTLB divides the Table 3 TLB capacities by scale.
func scaledTLB(scale int) tlb.Config {
	cfg := tlb.DefaultConfig()
	cfg.L1Entries = maxInt(cfg.L1Ways, cfg.L1Entries/scale)
	cfg.L2Entries = maxInt(cfg.L2Ways, cfg.L2Entries/scale)
	// Keep entries divisible by ways.
	cfg.L1Entries -= cfg.L1Entries % cfg.L1Ways
	cfg.L2Entries -= cfg.L2Entries % cfg.L2Ways
	return cfg
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
