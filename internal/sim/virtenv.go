package sim

import (
	"fmt"

	"dmt/internal/baseline/agile"
	"dmt/internal/baseline/asap"
	"dmt/internal/baseline/ecpt"
	"dmt/internal/baseline/fpt"
	"dmt/internal/cache"
	"dmt/internal/check"
	"dmt/internal/core"
	"dmt/internal/fault"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tea"
	"dmt/internal/tlb"
	"dmt/internal/virt"
	"dmt/internal/workload"
)

// scaleWalkerCaches replaces a 2D walker's MMU caches with working-set-
// scaled versions (DESIGN.md §6).
func scaleWalkerCaches(w *virt.NestedWalker, scale int) {
	w.GuestPWC = tlb.NewPWCScaled(scale)
	w.HostPWC = tlb.NewPWCScaled(scale)
	w.Nested = tlb.NewNestedCacheSized(38 / scale)
}

// virtEnv is the assembled single-level virtualized stack.
type virtEnv struct {
	hyp   *virt.Hypervisor
	vm    *virt.VM
	guest *kernel.AddressSpace
	gmgr  *tea.Manager
	flaky *fault.FlakyBackend
	built *workload.Built
}

// ref is the ground-truth translation for guest VAs: the live guest page
// table composed with the host (and, under nesting, parent) tables.
func (e *virtEnv) ref(gva mem.VAddr) (mem.PAddr, mem.PageSize, bool) {
	gpa, gsize, ok := e.guest.PT.Lookup(gva)
	if !ok {
		return 0, 0, false
	}
	ma, ok := e.vm.MachineAddr(gpa)
	return ma, gsize, ok
}

func setupVirt(cfg Config) (*virtEnv, error) {
	guestRAM := mem.AlignUp(mem.VAddr(uint64(float64(cfg.WSBytes)*1.3)+256<<20), mem.PageBytes2M)
	machineFrames := frames(uint64(guestRAM), 1.25, 384<<20)
	hyp, err := virt.NewHypervisor(machineFrames, cache.ScaledConfig(cfg.CacheScale))
	if err != nil {
		return nil, err
	}

	needHostDMT := cfg.Design == DesignDMT || cfg.Design == DesignPvDMT
	vm, err := hyp.NewVM(virt.VMConfig{
		Name:             "vm0",
		RAMBytes:         uint64(guestRAM),
		HostTHP:          cfg.THP,
		HostDMT:          needHostDMT,
		ASID:             100,
		PvTEAWindowBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	guest, err := vm.NewGuestProcess(cfg.THP, 1)
	if err != nil {
		return nil, err
	}
	var gmgr *tea.Manager
	var flaky *fault.FlakyBackend
	switch cfg.Design {
	case DesignDMT:
		flaky = fault.NewFlakyBackend(tea.NewPhysBackend(vm.GuestPhys))
		gmgr = tea.NewManager(guest, flaky, teaConfig(cfg))
		guest.SetHooks(gmgr)
	case DesignPvDMT:
		flaky = fault.NewFlakyBackend(virt.NewHypercallBackend(vm))
		gmgr = tea.NewManager(guest, flaky, teaConfig(cfg))
		guest.SetHooks(gmgr)
	}
	built, err := cfg.Workload.Build(guest, cfg.WSBytes)
	if err != nil {
		return nil, err
	}
	return &virtEnv{hyp: hyp, vm: vm, guest: guest, gmgr: gmgr, flaky: flaky, built: built}, nil
}

func (e *virtEnv) counters(r *Result) {
	r.Hypercalls = e.hyp.Hypercalls
	r.VMExits = e.hyp.VMExits
	r.ShadowSyncs = e.hyp.ShadowSyncs
	r.IsolationFaults = e.hyp.IsolationFaults
	r.PTEBytes = (e.guest.Pool.NodeCount() + e.vm.HostAS.Pool.NodeCount()) * mem.PageBytes4K
}

// buildVirt assembles a single-level virtualized machine.
func buildVirt(cfg Config) (*machine, error) {
	e, err := setupVirt(cfg)
	if err != nil {
		return nil, err
	}
	hier := e.hyp.Hier
	nested := virt.NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, hier, 1)
	scaleWalkerCaches(nested, cfg.CacheScale)

	m := &machine{hier: hier, gen: e.built.NewGen(cfg.genSeed()), footer: e.counters}
	m.target = fault.Target{AS: e.guest, Mgr: e.gmgr, Backend: e.flaky}
	if len(e.built.Major) > 0 {
		m.target.Hot = e.built.Major[0]
	}
	m.ref = e.ref
	m.sizeExact = true
	switch cfg.Design {
	case DesignVanilla:
		m.sink = &core.RefSink{}
		nested.Sink = m.sink
		m.walker = nested
	case DesignShadow:
		spt, err := virt.BuildShadowVA(e.vm, e.guest)
		if err != nil {
			return nil, err
		}
		rw := core.NewRadixWalker(spt, hier, tlb.NewPWCScaled(cfg.CacheScale), 1)
		m.sink = &core.RefSink{}
		rw.Sink = m.sink
		m.walker = rw
		// The shadow table splinters guest huge pages into host-sized
		// leaves, so only the physical address is asserted exactly; and
		// as a one-shot VA→machine sync it must be rebuilt after every
		// guest mapping mutation.
		m.sizeExact = false
		m.target.Resync = func() error {
			spt, err := virt.BuildShadowVA(e.vm, e.guest)
			if err != nil {
				return err
			}
			rw.PT = spt
			return nil
		}
	case DesignDMT:
		w := &virt.DMTVirtWalker{
			Guest: e.gmgr, GuestPool: e.guest.Pool,
			Host: e.vm.HostTEA, HostPool: e.vm.HostAS.Pool,
			Hier: hier, Fallback: nested,
		}
		m.sink = &core.RefSink{}
		w.Sink = m.sink
		nested.Sink = m.sink // fallback walks share the chain's buffer
		m.walker = w
		m.fastPath = w.Probe
		m.invariants = check.TEAInvariants(e.gmgr, e.guest)
		m.coverage = w.CoverageCounts
	case DesignPvDMT:
		w := virt.NewPvDMTWalker(e.vm, e.gmgr, e.guest.Pool, hier, nested)
		m.sink = &core.RefSink{}
		w.Sink = m.sink
		nested.Sink = m.sink
		m.walker = w
		m.coverage = w.CoverageCounts
		m.fastPath = w.Probe
		m.invariants = check.TEAInvariants(e.gmgr, e.guest)
	case DesignECPT:
		buildGuestSys := func() (*ecpt.System, error) {
			gsys, err := ecpt.NewSystem(e.vm.GuestPhys, ecptSizes(cfg.THP), int(cfg.WSBytes>>mem.PageShift4K)/ecpt.GroupPages)
			if err != nil {
				return nil, err
			}
			if err := gsys.Sync(e.guest); err != nil {
				return nil, err
			}
			return gsys, nil
		}
		gsys, err := buildGuestSys()
		if err != nil {
			return nil, err
		}
		hsys, err := ecpt.NewSystem(e.hyp.MachinePhys, ecptSizes(cfg.THP), e.vm.HostAS.Pool.NodeCount()*mem.EntriesPerNode/ecpt.GroupPages)
		if err != nil {
			return nil, err
		}
		if err := hsys.Sync(e.vm.HostAS); err != nil {
			return nil, err
		}
		m.sink = &core.RefSink{}
		w := &ecpt.VirtWalker{Guest: gsys, Host: hsys, Hier: hier, Sink: m.sink}
		m.walker = w
		// Guest mutations only: the host tables are not perturbed.
		m.target.Resync = func() error {
			gsys, err := buildGuestSys()
			if err != nil {
				return err
			}
			w.Guest = gsys
			return nil
		}
	case DesignFPT:
		buildGuestTable := func() (*fpt.Table, error) {
			gt, err := fpt.New(e.vm.GuestPhys)
			if err != nil {
				return nil, err
			}
			if err := gt.Sync(e.guest); err != nil {
				return nil, err
			}
			return gt, nil
		}
		gt, err := buildGuestTable()
		if err != nil {
			return nil, err
		}
		ht, err := fpt.New(e.hyp.MachinePhys)
		if err != nil {
			return nil, err
		}
		if err := ht.Sync(e.vm.HostAS); err != nil {
			return nil, err
		}
		m.sink = &core.RefSink{}
		w := &fpt.VirtWalker{Guest: gt, Host: ht, Hier: hier, Sink: m.sink}
		m.walker = w
		m.target.Resync = func() error {
			gt, err := buildGuestTable()
			if err != nil {
				return err
			}
			w.Guest = gt
			return nil
		}
	case DesignAgile:
		mirror, err := agile.BuildMirror(e.vm, e.guest)
		if err != nil {
			return nil, err
		}
		aw := agile.NewWalker(mirror, e.guest.PT, e.vm.HostAS.PT, hier, 1)
		aw.HostPWC = tlb.NewPWCScaled(cfg.CacheScale)
		aw.NestedC = tlb.NewNestedCacheSized(38 / cfg.CacheScale)
		m.sink = &core.RefSink{}
		aw.Sink = m.sink
		m.walker = aw
		m.sizeExact = false
		m.target.Resync = func() error {
			mirror, err := agile.BuildMirror(e.vm, e.guest)
			if err != nil {
				return err
			}
			aw.Mirror = mirror
			return nil
		}
	case DesignASAP:
		// Only the guest-dimension PTE lines are prefetchable in a
		// virtualized setup: ASAP's contiguity arithmetic can compute
		// gPTE locations, but the data page's host-dimension PTEs
		// depend on the gPTE *content* and stay demand-fetched
		// (§6.2.2's dependency-chain argument).
		var steps []pagetable.Step
		var lines []mem.PAddr
		var stages [1][]mem.PAddr
		src := func(gva mem.VAddr) [][]mem.PAddr {
			lines = lines[:0]
			walk := e.guest.PT.WalkInto(gva, steps[:0])
			steps = walk.Steps
			for _, s := range walk.Steps {
				if s.Level > 2 {
					continue
				}
				if machineAddr, ok := e.vm.MachineAddr(s.Addr); ok {
					lines = append(lines, machineAddr)
				}
			}
			stages[0] = lines
			return stages[:]
		}
		m.sink = &core.RefSink{}
		nested.Sink = m.sink
		m.walker = &asap.Walker{Inner: nested, Hier: hier, Source: src, MemLatency: hier.Config().MemLatency}
	default:
		return nil, fmt.Errorf("design %q not available in a virtualized environment", cfg.Design)
	}
	return m, nil
}

// buildNested assembles the nested-virtualization machine: the baseline is
// shadow-compressed nested paging (Figure 3); pvDMT is the three-register
// chain of Figure 9.
func buildNested(cfg Config) (*machine, error) {
	l2RAM := mem.AlignUp(mem.VAddr(uint64(float64(cfg.WSBytes)*1.3)+192<<20), mem.PageBytes2M)
	l1RAM := mem.AlignUp(l2RAM+mem.VAddr(uint64(float64(l2RAM)*0.25)+256<<20), mem.PageBytes2M)
	machineFrames := frames(uint64(l1RAM), 1.2, 384<<20)
	hyp, err := virt.NewHypervisor(machineFrames, cache.ScaledConfig(cfg.CacheScale))
	if err != nil {
		return nil, err
	}

	needDMT := cfg.Design == DesignPvDMT
	l1, err := hyp.NewVM(virt.VMConfig{
		Name: "L1", RAMBytes: uint64(l1RAM), HostTHP: cfg.THP, HostDMT: needDMT,
		ASID: 100, PvTEAWindowBytes: 96 << 20,
	})
	if err != nil {
		return nil, err
	}
	l2, err := hyp.NewNestedVM(l1, virt.VMConfig{
		Name: "L2", RAMBytes: uint64(l2RAM), HostTHP: cfg.THP, HostDMT: needDMT,
		ASID: 101, PvTEAWindowBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	guest, err := l2.NewGuestProcess(cfg.THP, 1)
	if err != nil {
		return nil, err
	}
	var gmgr *tea.Manager
	var flaky *fault.FlakyBackend
	if needDMT {
		flaky = fault.NewFlakyBackend(virt.NewHypercallBackend(l2))
		gmgr = tea.NewManager(guest, flaky, tea.DefaultConfig(cfg.THP))
		guest.SetHooks(gmgr)
	}
	built, err := cfg.Workload.Build(guest, cfg.WSBytes)
	if err != nil {
		return nil, err
	}
	spt, err := virt.BuildNestedShadow(l2)
	if err != nil {
		return nil, err
	}
	hier := hyp.Hier
	baseline := virt.NewNestedWalker(guest.PT, spt, hier, 1)
	scaleWalkerCaches(baseline, cfg.CacheScale)

	m := &machine{hier: hier, gen: built.NewGen(cfg.genSeed())}
	m.footer = func(r *Result) {
		r.Hypercalls = hyp.Hypercalls
		r.VMExits = hyp.VMExits
		r.ShadowSyncs = hyp.ShadowSyncs
		r.IsolationFaults = hyp.IsolationFaults
		r.PTEBytes = (guest.Pool.NodeCount() + l2.HostAS.Pool.NodeCount() + l1.HostAS.Pool.NodeCount()) * mem.PageBytes4K
	}
	m.target = fault.Target{AS: guest, Mgr: gmgr, Backend: flaky}
	if len(built.Major) > 0 {
		m.target.Hot = built.Major[0]
	}
	// The compressed shadow covers all of L2's RAM, but TEA regions
	// allocated after build time (migration targets, decoys) map fresh
	// pv-TEA window pages that the one-shot spt has never seen — a guest
	// PT node placed or relocated there would be unresolvable by the
	// fallback walker. Resync rebuilds the L2PA→L0PA composition.
	m.target.Resync = func() error {
		nspt, err := virt.BuildNestedShadow(l2)
		if err != nil {
			return err
		}
		baseline.HostPT = nspt
		return nil
	}
	// Ground truth: the live guest table composed down through L1 and L0.
	m.ref = func(gva mem.VAddr) (mem.PAddr, mem.PageSize, bool) {
		gpa, gsize, ok := guest.PT.Lookup(gva)
		if !ok {
			return 0, 0, false
		}
		ma, ok := l2.MachineAddr(gpa)
		return ma, gsize, ok
	}
	m.sizeExact = true
	switch cfg.Design {
	case DesignVanilla:
		m.sink = &core.RefSink{}
		baseline.Sink = m.sink
		m.walker = baseline
	case DesignPvDMT:
		w := virt.NewPvDMTNestedWalker(l2, gmgr, guest.Pool, hier, baseline)
		m.sink = &core.RefSink{}
		w.Sink = m.sink
		baseline.Sink = m.sink
		m.walker = w
		m.coverage = w.CoverageCounts
		m.fastPath = w.Probe
		m.invariants = check.TEAInvariants(gmgr, guest)
	default:
		return nil, fmt.Errorf("design %q not available under nested virtualization", cfg.Design)
	}
	return m, nil
}
