package sim

import (
	"fmt"

	"dmt/internal/baseline/agile"
	"dmt/internal/baseline/asap"
	"dmt/internal/baseline/ecpt"
	"dmt/internal/baseline/fpt"
	"dmt/internal/baseline/utopia"
	"dmt/internal/baseline/victima"
	"dmt/internal/cache"
	"dmt/internal/check"
	"dmt/internal/core"
	"dmt/internal/fault"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tea"
	"dmt/internal/tlb"
	"dmt/internal/virt"
	"dmt/internal/workload"
)

// scaleWalkerCaches replaces a 2D walker's MMU caches with working-set-
// scaled versions (DESIGN.md §6).
func scaleWalkerCaches(w *virt.NestedWalker, scale int) {
	w.GuestPWC = tlb.NewPWCScaled(scale)
	w.HostPWC = tlb.NewPWCScaled(scale)
	w.Nested = tlb.NewNestedCacheSized(38 / scale)
}

// virtParts is the cloneable substrate of a single-level virtualized
// machine: the hypervisor (machine allocator + cache hierarchy), the VM
// (host address space, host TEA, gTEA), the guest process, the guest TEA
// manager, and the design-specific translation structures. Walkers and
// their MMU caches are wire-time-fresh, never parts.
type virtParts struct {
	hyp   *virt.Hypervisor
	vm    *virt.VM
	guest *kernel.AddressSpace
	gmgr  *tea.Manager        // DMT / pvDMT only
	flaky *fault.FlakyBackend // DMT / pvDMT only
	built *workload.Built     // immutable after build; shared across clones

	spt        *pagetable.Table // Shadow only
	gsys, hsys *ecpt.System     // ECPT only
	gt, ht     *fpt.Table       // FPT only
	mirror     *agile.Mirror    // Agile only
	vic        *victima.Store   // Victima only
	seg        *utopia.Seg      // Utopia only
}

// ref is the ground-truth translation for guest VAs: the live guest page
// table composed with the host (and, under nesting, parent) tables.
func (p *virtParts) ref(gva mem.VAddr) (mem.PAddr, mem.PageSize, bool) {
	gpa, gsize, ok := p.guest.PT.Lookup(gva)
	if !ok {
		return 0, 0, false
	}
	ma, ok := p.vm.MachineAddr(gpa)
	return ma, gsize, ok
}

func (p *virtParts) counters(r *Result) {
	r.Hypercalls = p.hyp.Hypercalls
	r.VMExits = p.hyp.VMExits
	r.ShadowSyncs = p.hyp.ShadowSyncs
	r.IsolationFaults = p.hyp.IsolationFaults
	r.PTEBytes = (p.guest.Pool.NodeCount() + p.vm.HostAS.Pool.NodeCount()) * mem.PageBytes4K
}

// buildVirtParts stands up the virtualized stack: hypervisor, VM, guest
// process, guest TEA manager, workload, and any design-specific structures.
// Like buildNativeParts it reads only the build-relevant Config fields.
func buildVirtParts(cfg Config) (*virtParts, error) {
	guestRAM := mem.AlignUp(mem.VAddr(uint64(float64(cfg.WSBytes)*1.3)+256<<20), mem.PageBytes2M)
	machineFrames := frames(uint64(guestRAM), 1.25, 384<<20)
	hyp, err := virt.NewHypervisor(machineFrames, cache.ScaledConfig(cfg.CacheScale))
	if err != nil {
		return nil, err
	}

	needHostDMT := cfg.Design == DesignDMT || cfg.Design == DesignPvDMT
	vm, err := hyp.NewVM(virt.VMConfig{
		Name:             "vm0",
		RAMBytes:         uint64(guestRAM),
		HostTHP:          cfg.THP,
		HostDMT:          needHostDMT,
		ASID:             100,
		PvTEAWindowBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	guest, err := vm.NewGuestProcess(cfg.THP, 1)
	if err != nil {
		return nil, err
	}
	p := &virtParts{hyp: hyp, vm: vm, guest: guest}
	switch cfg.Design {
	case DesignDMT:
		p.flaky = fault.NewFlakyBackend(tea.NewPhysBackend(vm.GuestPhys))
		p.gmgr = tea.NewManager(guest, p.flaky, teaConfig(cfg))
		guest.SetHooks(p.gmgr)
	case DesignPvDMT:
		p.flaky = fault.NewFlakyBackend(virt.NewHypercallBackend(vm))
		p.gmgr = tea.NewManager(guest, p.flaky, teaConfig(cfg))
		guest.SetHooks(p.gmgr)
	}
	p.built, err = cfg.Workload.Build(guest, cfg.WSBytes)
	if err != nil {
		return nil, err
	}

	switch cfg.Design {
	case DesignShadow:
		if p.spt, err = virt.BuildShadowVA(vm, guest); err != nil {
			return nil, err
		}
	case DesignECPT:
		if p.gsys, err = buildECPTSystem(cfg, vm.GuestPhys, guest); err != nil {
			return nil, err
		}
		p.hsys, err = ecpt.NewSystem(hyp.MachinePhys, ecptSizes(cfg.THP), vm.HostAS.Pool.NodeCount()*mem.EntriesPerNode/ecpt.GroupPages)
		if err != nil {
			return nil, err
		}
		if err := p.hsys.Sync(vm.HostAS); err != nil {
			return nil, err
		}
	case DesignFPT:
		if p.gt, err = buildFPTTable(vm.GuestPhys, guest); err != nil {
			return nil, err
		}
		if p.ht, err = buildFPTTable(hyp.MachinePhys, vm.HostAS); err != nil {
			return nil, err
		}
	case DesignAgile:
		if p.mirror, err = agile.BuildMirror(vm, guest); err != nil {
			return nil, err
		}
	case DesignVictima:
		// The spill blocks occupy machine L2 ways, so the region lives in
		// machine memory.
		if p.vic, err = victima.NewStore(hyp.MachinePhys, hyp.Hier.Config().L2); err != nil {
			return nil, err
		}
	case DesignUtopia:
		// RestSegs map guest-virtual straight to machine addresses and
		// live in machine memory: a restrictive hit needs no second
		// dimension, which is the design's collapsed-2D-walk claim.
		if p.seg, err = buildUtopiaSeg(hyp.MachinePhys, guest, cfg.WSBytes, vm.MachineAddr); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// clone snapshots the virtualized stack bottom-up: hypervisor first, then
// the VM onto the cloned hypervisor, then the guest onto the cloned VM's
// guest-physical allocator, then the guest TEA manager over a recreated
// backend (PhysBackend compactions carried over; hypercall backends bound
// to the cloned VM), and finally the design structures onto the allocators
// they were built from.
func (p *virtParts) clone() (*virtParts, error) {
	hyp := p.hyp.Clone()
	vm, err := p.vm.Clone(hyp, nil)
	if err != nil {
		return nil, err
	}
	guest := p.guest.Clone(vm.GuestPhys)
	c := &virtParts{hyp: hyp, vm: vm, guest: guest, built: p.built}
	if p.gmgr != nil {
		var inner tea.Backend
		if old, ok := p.flaky.Inner.(*tea.PhysBackend); ok {
			pb := tea.NewPhysBackend(vm.GuestPhys)
			pb.Compactions = old.Compactions
			inner = pb
		} else {
			inner = virt.NewHypercallBackend(vm)
		}
		c.flaky = fault.NewFlakyBackend(inner)
		gmgr, err := p.gmgr.Clone(guest, c.flaky)
		if err != nil {
			return nil, err
		}
		c.gmgr = gmgr
	}
	if p.spt != nil {
		c.spt = hyp.CloneShadow(p.spt)
	}
	if p.gsys != nil {
		c.gsys = p.gsys.Clone(vm.GuestPhys)
	}
	if p.hsys != nil {
		c.hsys = p.hsys.Clone(hyp.MachinePhys)
	}
	if p.gt != nil {
		c.gt = p.gt.Clone(vm.GuestPhys)
	}
	if p.ht != nil {
		c.ht = p.ht.Clone(hyp.MachinePhys)
	}
	if p.mirror != nil {
		c.mirror = p.mirror.Clone(hyp.MachinePhys)
	}
	if p.vic != nil {
		c.vic = p.vic.Clone()
	}
	if p.seg != nil {
		c.seg = p.seg.Clone()
	}
	return c, nil
}

// wireVirt assembles a drivable single-level virtualized machine over the
// given parts; every walker, cache, sink, and closure binds to exactly
// this instance's substrate.
func wireVirt(cfg Config, p *virtParts) (*machine, error) {
	hier := p.hyp.Hier
	nested := virt.NewNestedWalker(p.guest.PT, p.vm.HostAS.PT, hier, 1)
	scaleWalkerCaches(nested, cfg.CacheScale)

	m := &machine{hier: hier, gen: p.built.NewGen(cfg.genSeed()), footer: p.counters}
	m.target = fault.Target{AS: p.guest, Mgr: p.gmgr, Backend: p.flaky}
	if len(p.built.Major) > 0 {
		hot, ok := p.guest.FindVMA(p.built.Major[0].Start)
		if !ok {
			return nil, fmt.Errorf("hot VMA missing at %#x", uint64(p.built.Major[0].Start))
		}
		m.target.Hot = hot
	}
	m.ref = p.ref
	m.sizeExact = true
	switch cfg.Design {
	case DesignVanilla:
		m.sink = &core.RefSink{}
		nested.Sink = m.sink
		m.walker = nested
	case DesignShadow:
		rw := core.NewRadixWalker(p.spt, hier, tlb.NewPWCScaled(cfg.CacheScale), 1)
		m.sink = &core.RefSink{}
		rw.Sink = m.sink
		m.walker = rw
		// The shadow table splinters guest huge pages into host-sized
		// leaves, so only the physical address is asserted exactly; and
		// as a one-shot VA→machine sync it must be rebuilt after every
		// guest mapping mutation.
		m.sizeExact = false
		m.target.Resync = func() error {
			spt, err := virt.BuildShadowVA(p.vm, p.guest)
			if err != nil {
				return err
			}
			rw.PT = spt
			return nil
		}
	case DesignDMT:
		w := &virt.DMTVirtWalker{
			Guest: p.gmgr, GuestPool: p.guest.Pool,
			Host: p.vm.HostTEA, HostPool: p.vm.HostAS.Pool,
			Hier: hier, Fallback: nested,
		}
		m.sink = &core.RefSink{}
		w.Sink = m.sink
		nested.Sink = m.sink // fallback walks share the chain's buffer
		m.walker = w
		m.fastPath = w.Probe
		m.invariants = check.TEAInvariants(p.gmgr, p.guest)
		m.coverage = w.CoverageCounts
	case DesignPvDMT:
		w := virt.NewPvDMTWalker(p.vm, p.gmgr, p.guest.Pool, hier, nested)
		m.sink = &core.RefSink{}
		w.Sink = m.sink
		nested.Sink = m.sink
		m.walker = w
		m.coverage = w.CoverageCounts
		m.fastPath = w.Probe
		m.invariants = check.TEAInvariants(p.gmgr, p.guest)
	case DesignECPT:
		m.sink = &core.RefSink{}
		w := &ecpt.VirtWalker{Guest: p.gsys, Host: p.hsys, Hier: hier, Sink: m.sink}
		m.walker = w
		// Guest mutations only: the host tables are not perturbed.
		m.target.Resync = func() error {
			gsys, err := buildECPTSystem(cfg, p.vm.GuestPhys, p.guest)
			if err != nil {
				return err
			}
			w.Guest = gsys
			return nil
		}
	case DesignFPT:
		m.sink = &core.RefSink{}
		w := &fpt.VirtWalker{Guest: p.gt, Host: p.ht, Hier: hier, Sink: m.sink}
		m.walker = w
		m.target.Resync = func() error {
			gt, err := buildFPTTable(p.vm.GuestPhys, p.guest)
			if err != nil {
				return err
			}
			w.Guest = gt
			return nil
		}
	case DesignAgile:
		aw := agile.NewWalker(p.mirror, p.guest.PT, p.vm.HostAS.PT, hier, 1)
		aw.HostPWC = tlb.NewPWCScaled(cfg.CacheScale)
		aw.NestedC = tlb.NewNestedCacheSized(38 / cfg.CacheScale)
		m.sink = &core.RefSink{}
		aw.Sink = m.sink
		m.walker = aw
		m.sizeExact = false
		m.target.Resync = func() error {
			mirror, err := agile.BuildMirror(p.vm, p.guest)
			if err != nil {
				return err
			}
			aw.Mirror = mirror
			return nil
		}
	case DesignASAP:
		// Only the guest-dimension PTE lines are prefetchable in a
		// virtualized setup: ASAP's contiguity arithmetic can compute
		// gPTE locations, but the data page's host-dimension PTEs
		// depend on the gPTE *content* and stay demand-fetched
		// (§6.2.2's dependency-chain argument).
		var steps []pagetable.Step
		var lines []mem.PAddr
		var stages [1][]mem.PAddr
		src := func(gva mem.VAddr) [][]mem.PAddr {
			lines = lines[:0]
			walk := p.guest.PT.WalkInto(gva, steps[:0])
			steps = walk.Steps
			for _, s := range walk.Steps {
				if s.Level > 2 {
					continue
				}
				if machineAddr, ok := p.vm.MachineAddr(s.Addr); ok {
					lines = append(lines, machineAddr)
				}
			}
			stages[0] = lines
			return stages[:]
		}
		m.sink = &core.RefSink{}
		nested.Sink = m.sink
		m.walker = &asap.Walker{Inner: nested, Hier: hier, Source: src, MemLatency: hier.Config().MemLatency}
	case DesignVictima:
		// The spilled entries hold full gVA→machine translations (that is
		// what the L2 TLB holds), so a spill hit skips the whole 2D walk.
		m.sink = &core.RefSink{}
		nested.Sink = m.sink
		w := victima.NewWalker(p.vic, hier, nested, m.sink)
		m.walker = w
		m.coverage = w.CoverageCounts
		m.target.Resync = func() error {
			w.Flush()
			return nil
		}
	case DesignUtopia:
		m.sink = &core.RefSink{}
		nested.Sink = m.sink
		w := &utopia.Walker{Seg: p.seg, Hier: hier, Fallback: nested, Sink: m.sink}
		m.walker = w
		m.coverage = w.CoverageCounts
		// Guest mutations only: the host dimension is re-resolved through
		// the live VM mapping at rebuild time.
		m.target.Resync = func() error {
			seg, err := buildUtopiaSeg(p.hyp.MachinePhys, p.guest, cfg.WSBytes, p.vm.MachineAddr)
			if err != nil {
				return err
			}
			w.Seg = seg
			return nil
		}
	default:
		return nil, fmt.Errorf("design %q not available in a virtualized environment", cfg.Design)
	}
	return m, nil
}

// buildVirt assembles a single-level virtualized machine from scratch (the
// cold path).
func buildVirt(cfg Config) (*machine, error) {
	p, err := buildVirtParts(cfg)
	if err != nil {
		return nil, err
	}
	return wireVirt(cfg, p)
}

// nestedParts is the cloneable substrate of the nested-virtualization
// machine: the L0 hypervisor, the L1 and L2 VMs, the guest process inside
// L2, the (pvDMT) guest TEA manager, and the compressed nested shadow.
type nestedParts struct {
	hyp    *virt.Hypervisor
	l1, l2 *virt.VM
	guest  *kernel.AddressSpace
	gmgr   *tea.Manager        // pvDMT only
	flaky  *fault.FlakyBackend // pvDMT only
	built  *workload.Built     // immutable after build; shared across clones
	spt    *pagetable.Table
	vic    *victima.Store // Victima only
	seg    *utopia.Seg    // Utopia only
}

// buildNestedParts stands up the two-level stack of Figure 9.
func buildNestedParts(cfg Config) (*nestedParts, error) {
	l2RAM := mem.AlignUp(mem.VAddr(uint64(float64(cfg.WSBytes)*1.3)+192<<20), mem.PageBytes2M)
	l1RAM := mem.AlignUp(l2RAM+mem.VAddr(uint64(float64(l2RAM)*0.25)+256<<20), mem.PageBytes2M)
	machineFrames := frames(uint64(l1RAM), 1.2, 384<<20)
	hyp, err := virt.NewHypervisor(machineFrames, cache.ScaledConfig(cfg.CacheScale))
	if err != nil {
		return nil, err
	}

	needDMT := cfg.Design == DesignPvDMT
	l1, err := hyp.NewVM(virt.VMConfig{
		Name: "L1", RAMBytes: uint64(l1RAM), HostTHP: cfg.THP, HostDMT: needDMT,
		ASID: 100, PvTEAWindowBytes: 96 << 20,
	})
	if err != nil {
		return nil, err
	}
	l2, err := hyp.NewNestedVM(l1, virt.VMConfig{
		Name: "L2", RAMBytes: uint64(l2RAM), HostTHP: cfg.THP, HostDMT: needDMT,
		ASID: 101, PvTEAWindowBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	guest, err := l2.NewGuestProcess(cfg.THP, 1)
	if err != nil {
		return nil, err
	}
	p := &nestedParts{hyp: hyp, l1: l1, l2: l2, guest: guest}
	if needDMT {
		p.flaky = fault.NewFlakyBackend(virt.NewHypercallBackend(l2))
		p.gmgr = tea.NewManager(guest, p.flaky, tea.DefaultConfig(cfg.THP))
		guest.SetHooks(p.gmgr)
	}
	p.built, err = cfg.Workload.Build(guest, cfg.WSBytes)
	if err != nil {
		return nil, err
	}
	p.spt, err = virt.BuildNestedShadow(l2)
	if err != nil {
		return nil, err
	}
	switch cfg.Design {
	case DesignVictima:
		if p.vic, err = victima.NewStore(hyp.MachinePhys, hyp.Hier.Config().L2); err != nil {
			return nil, err
		}
	case DesignUtopia:
		if p.seg, err = buildUtopiaSeg(hyp.MachinePhys, guest, cfg.WSBytes, l2.MachineAddr); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// clone snapshots the two-level stack: hypervisor, then L1, then L2 onto
// the cloned L1 (so its cascaded hypercalls land in the right parent),
// then the guest and its TEA manager, then the compressed shadow.
func (p *nestedParts) clone() (*nestedParts, error) {
	hyp := p.hyp.Clone()
	l1, err := p.l1.Clone(hyp, nil)
	if err != nil {
		return nil, err
	}
	l2, err := p.l2.Clone(hyp, l1)
	if err != nil {
		return nil, err
	}
	guest := p.guest.Clone(l2.GuestPhys)
	c := &nestedParts{hyp: hyp, l1: l1, l2: l2, guest: guest, built: p.built}
	if p.gmgr != nil {
		c.flaky = fault.NewFlakyBackend(virt.NewHypercallBackend(l2))
		gmgr, err := p.gmgr.Clone(guest, c.flaky)
		if err != nil {
			return nil, err
		}
		c.gmgr = gmgr
	}
	c.spt = hyp.CloneShadow(p.spt)
	if p.vic != nil {
		c.vic = p.vic.Clone()
	}
	if p.seg != nil {
		c.seg = p.seg.Clone()
	}
	return c, nil
}

// wireNested assembles the nested-virtualization machine over the given
// parts: the baseline is shadow-compressed nested paging (Figure 3); pvDMT
// is the three-register chain of Figure 9.
func wireNested(cfg Config, p *nestedParts) (*machine, error) {
	hier := p.hyp.Hier
	baseline := virt.NewNestedWalker(p.guest.PT, p.spt, hier, 1)
	scaleWalkerCaches(baseline, cfg.CacheScale)

	m := &machine{hier: hier, gen: p.built.NewGen(cfg.genSeed())}
	m.footer = func(r *Result) {
		r.Hypercalls = p.hyp.Hypercalls
		r.VMExits = p.hyp.VMExits
		r.ShadowSyncs = p.hyp.ShadowSyncs
		r.IsolationFaults = p.hyp.IsolationFaults
		r.PTEBytes = (p.guest.Pool.NodeCount() + p.l2.HostAS.Pool.NodeCount() + p.l1.HostAS.Pool.NodeCount()) * mem.PageBytes4K
	}
	m.target = fault.Target{AS: p.guest, Mgr: p.gmgr, Backend: p.flaky}
	if len(p.built.Major) > 0 {
		hot, ok := p.guest.FindVMA(p.built.Major[0].Start)
		if !ok {
			return nil, fmt.Errorf("hot VMA missing at %#x", uint64(p.built.Major[0].Start))
		}
		m.target.Hot = hot
	}
	// The compressed shadow covers all of L2's RAM, but TEA regions
	// allocated after build time (migration targets, decoys) map fresh
	// pv-TEA window pages that the one-shot spt has never seen — a guest
	// PT node placed or relocated there would be unresolvable by the
	// fallback walker. Resync rebuilds the L2PA→L0PA composition.
	m.target.Resync = func() error {
		nspt, err := virt.BuildNestedShadow(p.l2)
		if err != nil {
			return err
		}
		baseline.HostPT = nspt
		return nil
	}
	// Ground truth: the live guest table composed down through L1 and L0.
	m.ref = func(gva mem.VAddr) (mem.PAddr, mem.PageSize, bool) {
		gpa, gsize, ok := p.guest.PT.Lookup(gva)
		if !ok {
			return 0, 0, false
		}
		ma, ok := p.l2.MachineAddr(gpa)
		return ma, gsize, ok
	}
	m.sizeExact = true
	switch cfg.Design {
	case DesignVanilla:
		m.sink = &core.RefSink{}
		baseline.Sink = m.sink
		m.walker = baseline
	case DesignPvDMT:
		w := virt.NewPvDMTNestedWalker(p.l2, p.gmgr, p.guest.Pool, hier, baseline)
		m.sink = &core.RefSink{}
		w.Sink = m.sink
		baseline.Sink = m.sink
		m.walker = w
		m.coverage = w.CoverageCounts
		m.fastPath = w.Probe
		m.invariants = check.TEAInvariants(p.gmgr, p.guest)
	case DesignVictima:
		m.sink = &core.RefSink{}
		baseline.Sink = m.sink
		w := victima.NewWalker(p.vic, hier, baseline, m.sink)
		m.walker = w
		m.coverage = w.CoverageCounts
		// Compose with the pre-assigned baseline Resync: mapping mutations
		// must both rebuild the compressed nested shadow and drop the
		// now-stale spilled translations.
		shadowResync := m.target.Resync
		m.target.Resync = func() error {
			if err := shadowResync(); err != nil {
				return err
			}
			w.Flush()
			return nil
		}
	case DesignUtopia:
		m.sink = &core.RefSink{}
		baseline.Sink = m.sink
		w := &utopia.Walker{Seg: p.seg, Hier: hier, Fallback: baseline, Sink: m.sink}
		m.walker = w
		m.coverage = w.CoverageCounts
		// Compose with the pre-assigned baseline Resync, then rebuild the
		// RestSegs through the live two-level composition.
		shadowResync := m.target.Resync
		m.target.Resync = func() error {
			if err := shadowResync(); err != nil {
				return err
			}
			seg, err := buildUtopiaSeg(p.hyp.MachinePhys, p.guest, cfg.WSBytes, p.l2.MachineAddr)
			if err != nil {
				return err
			}
			w.Seg = seg
			return nil
		}
	default:
		return nil, fmt.Errorf("design %q not available under nested virtualization", cfg.Design)
	}
	return m, nil
}

// buildNested assembles the nested-virtualization machine from scratch
// (the cold path).
func buildNested(cfg Config) (*machine, error) {
	p, err := buildNestedParts(cfg)
	if err != nil {
		return nil, err
	}
	return wireNested(cfg, p)
}
