package sim

import (
	"fmt"
	"sort"
	"testing"

	"dmt/internal/fault"
)

// The batch-walk contract (DESIGN.md §13): the batched engine loop is a
// pure restructuring of the scalar one — every Result field, counter,
// histogram bucket, and trace event must be bit-identical to the per-op
// reference path, for every environment, design, fault plan, verification
// mode, and batch size, including sizes that don't divide the op count.
// These are metamorphic tests: the scalar leg (Config.scalarWalk) is the
// oracle for the batched leg, and CI runs the suite under -race.

// batchEquivConfig is detConfig plus the observability surfaces the
// equivalence must cover: trace capture on (with a small ring so the
// overwrite path is compared too) and two workers so the batched path also
// runs concurrently under the race detector.
func batchEquivConfig(t *testing.T, env Environment, d Design, plan *fault.Plan, verify bool) Config {
	cfg := detConfig(env, d, plan)
	cfg.Workload = detWorkload(t)
	cfg.Verify = verify
	cfg.Workers = 2
	cfg.Trace = true
	cfg.TraceCap = 128
	return cfg
}

// runBatchVsScalar runs cfg through both engine loops and asserts
// bit-identical Results.
func runBatchVsScalar(t *testing.T, cfg Config) (*Result, *Result) {
	t.Helper()
	scfg := cfg
	scfg.scalarWalk = true
	want, err := Run(scfg)
	if err != nil {
		t.Fatalf("scalar leg: %v", err)
	}
	got, err := Run(cfg)
	if err != nil {
		t.Fatalf("batched leg: %v", err)
	}
	requireEqualResults(t, want, got)
	return want, got
}

// TestBatchScalarEquivalenceMatrix is the full metamorphic sweep: every
// (environment × design) cell, with and without a fault plan, with and
// without the verification oracle, batched at the production span size.
func TestBatchScalarEquivalenceMatrix(t *testing.T) {
	suite := fault.Suite(detOps)
	if len(suite) == 0 {
		t.Fatal("empty fault suite")
	}
	churn := &suite[0]

	for _, env := range []Environment{EnvNative, EnvVirt, EnvNested} {
		for _, d := range detDesigns(env) {
			for _, plan := range []*fault.Plan{nil, churn} {
				for _, verify := range []bool{false, true} {
					name := fmt.Sprintf("%v/%s/verify=%v", env, d, verify)
					if plan != nil {
						name += "/" + plan.Name
					}
					t.Run(name, func(t *testing.T) {
						cfg := batchEquivConfig(t, env, d, plan, verify)
						want, _ := runBatchVsScalar(t, cfg)
						if want.Walks == 0 || want.TLBMisses == 0 {
							t.Fatalf("degenerate run: %d walks, %d misses", want.Walks, want.TLBMisses)
						}
						if want.WalkHist == nil || want.WalkHist.Count != want.Walks {
							t.Fatalf("histogram lost walks: %+v vs %d walks", want.WalkHist, want.Walks)
						}
					})
				}
			}
		}
	}
}

// TestBatchCapSweep pins span-size independence on representative cells:
// awkward caps (1, 7) and the production cap, against an op count chosen so
// no cap divides it and every shard ends mid-span. The fault plan makes
// event boundaries land inside, between, and exactly on spans.
func TestBatchCapSweep(t *testing.T) {
	const oddOps = 2003 // prime: not divisible by any cap or shard count
	suite := fault.Suite(oddOps)
	if len(suite) == 0 {
		t.Fatal("empty fault suite")
	}
	churn := &suite[0]

	cells := []struct {
		env Environment
		d   Design
	}{
		{EnvNative, DesignDMT},
		{EnvVirt, DesignVanilla},
		{EnvVirt, DesignPvDMT},
		{EnvNested, DesignPvDMT},
	}
	for _, cell := range cells {
		for _, cap := range []int{1, 7, BatchOps} {
			t.Run(fmt.Sprintf("%v/%s/cap=%d", cell.env, cell.d, cap), func(t *testing.T) {
				cfg := batchEquivConfig(t, cell.env, cell.d, churn, true)
				cfg.Ops = oddOps
				cfg.TraceCap = 32 // exercise ring overwrite on both legs
				cfg.batchCap = cap
				want, _ := runBatchVsScalar(t, cfg)
				if want.Ops != oddOps {
					t.Fatalf("merged Ops = %d, want %d", want.Ops, oddOps)
				}
				if want.FaultsApplied+want.FaultsSkipped == 0 {
					t.Fatal("no fault events executed")
				}
			})
		}
	}
}

// TestBatchInstanceResume pins StepBatch's public contract on a bare
// instance: arbitrary interleavings of StepBatch sizes (including calls
// larger than BatchOps, which clamp) finish with the same Result as the
// scalar Step loop, and a finished instance reports zero further progress.
func TestBatchInstanceResume(t *testing.T) {
	cfg := Config{
		Env: EnvVirt, Design: DesignPvDMT, THP: true, Workload: detWorkload(t),
		WSBytes: detWS, Ops: 2003, Seed: 7, Verify: true, Shards: 1,
	}

	scalar, err := NewInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < scalar.Ops(); i++ {
		if err := scalar.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want, err := scalar.Finish()
	if err != nil {
		t.Fatal(err)
	}

	batched, err := NewInstance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{1, 7, 100, 3 * BatchOps, 13, 1024}
	done := 0
	for i := 0; done < batched.Ops(); i++ {
		n, err := batched.StepBatch(sizes[i%len(sizes)])
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("no progress at op %d", done)
		}
		if n > BatchOps {
			t.Fatalf("StepBatch(%d) completed %d ops, above the %d clamp", sizes[i%len(sizes)], n, BatchOps)
		}
		done += n
	}
	if n, err := batched.StepBatch(BatchOps); err != nil || n != 0 {
		t.Fatalf("StepBatch on exhausted instance = (%d, %v), want (0, nil)", n, err)
	}
	got, err := batched.Finish()
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, want, got)
}

// fuzzBatchWalkCell drives one (environment × design) cell through both
// engine legs at a fuzzed op count, batch cap, and trace seed, asserting
// bit-identical Results — the walker-level extension of the span fuzzing
// below: instead of checking the seam arithmetic in isolation, it checks
// that a real walker fed through those seams (including the batch probe
// paths tlb.LookupBatch / cache.AccessBatch) never diverges from the
// scalar oracle.
func fuzzBatchWalkCell(t *testing.T, env Environment, d Design, rawOps uint16, rawCap uint8, seed int64, withPlan bool) {
	ops := int(rawOps)%997 + 32 // small but non-degenerate; 997 prime, so caps rarely divide it
	var plan *fault.Plan
	if withPlan {
		suite := fault.Suite(ops)
		if len(suite) == 0 {
			t.Fatal("empty fault suite")
		}
		plan = &suite[0]
	}
	cfg := batchEquivConfig(t, env, d, plan, true)
	cfg.Ops = ops
	cfg.Seed = seed
	cfg.batchCap = int(rawCap)%BatchOps + 1
	cfg.TraceCap = 32
	runBatchVsScalar(t, cfg)
}

// FuzzBatchWalkECPT covers a baseline walker whose walks fan out into many
// parallel probes per step (the richest per-walk hierarchy traffic).
func FuzzBatchWalkECPT(f *testing.F) {
	f.Add(uint16(200), uint8(0), int64(7), false)
	f.Add(uint16(1023), uint8(6), int64(11), true)
	f.Add(uint16(64), uint8(255), int64(3), true)
	f.Fuzz(func(t *testing.T, rawOps uint16, rawCap uint8, seed int64, withPlan bool) {
		fuzzBatchWalkCell(t, EnvNative, DesignECPT, rawOps, rawCap, seed, withPlan)
	})
}

// FuzzBatchWalkShadow covers a virt walker: shadow paging runs a radix walk
// over the shadow table, so this exercises the arena-backed page-table walk
// behind the batch seams as well.
func FuzzBatchWalkShadow(f *testing.F) {
	f.Add(uint16(200), uint8(0), int64(7), false)
	f.Add(uint16(1023), uint8(6), int64(11), true)
	f.Add(uint16(64), uint8(255), int64(3), true)
	f.Fuzz(func(t *testing.T, rawOps uint16, rawCap uint8, seed int64, withPlan bool) {
		fuzzBatchWalkCell(t, EnvVirt, DesignShadow, rawOps, rawCap, seed, withPlan)
	})
}

// FuzzBatchWalkVictima covers the L2-spill walker: its batch path threads
// spill-block probes, the shared LRU clock, and inner-radix fills through
// the RunBatch seam, so fuzzing it guards the fill/evict bookkeeping
// against batch/scalar divergence.
func FuzzBatchWalkVictima(f *testing.F) {
	f.Add(uint16(200), uint8(0), int64(7), false)
	f.Add(uint16(1023), uint8(6), int64(11), true)
	f.Add(uint16(64), uint8(255), int64(3), true)
	f.Fuzz(func(t *testing.T, rawOps uint16, rawCap uint8, seed int64, withPlan bool) {
		fuzzBatchWalkCell(t, EnvNative, DesignVictima, rawOps, rawCap, seed, withPlan)
	})
}

// FuzzBatchSpan fuzzes the span arithmetic directly: spans always make
// progress, never exceed the remaining limit, and never cross the next
// fault-event boundary from below.
func FuzzBatchSpan(f *testing.F) {
	f.Add(0, 1024, 500)
	f.Add(500, 1024, 500)
	f.Add(0, 1, 0)
	f.Add(1000, 24, 1<<62)
	f.Add(7, 0, 3)
	f.Fuzz(func(t *testing.T, op, limit, nextAt int) {
		span := batchSpan(op, limit, nextAt)
		if limit < 1 {
			if span != 0 {
				t.Fatalf("batchSpan(%d, %d, %d) = %d, want 0 for empty limit", op, limit, nextAt, span)
			}
			return
		}
		if span < 1 || span > limit {
			t.Fatalf("batchSpan(%d, %d, %d) = %d, outside [1, %d]", op, limit, nextAt, span, limit)
		}
		if nextAt > op && op+span > nextAt {
			t.Fatalf("batchSpan(%d, %d, %d) = %d crosses the event at %d", op, limit, nextAt, span, nextAt)
		}
	})
}

// FuzzBatchBoundaries fuzzes the engine's span-slicing loop against a pure
// model of the scalar tick schedule: for arbitrary op counts, batch caps,
// and fault-event offsets, every event fires exactly once, at exactly the
// op a per-op Tick would fire it (no drops, no double-fires, no late fires
// at batch seams), and the loop always terminates with full coverage.
func FuzzBatchBoundaries(f *testing.F) {
	f.Add(uint16(2000), uint8(255), uint16(0), uint16(1023), uint16(1024))
	f.Add(uint16(5), uint8(1), uint16(0), uint16(0), uint16(4))
	f.Add(uint16(3000), uint8(7), uint16(1999), uint16(2000), uint16(2001))
	f.Add(uint16(1), uint8(255), uint16(500), uint16(500), uint16(500))
	f.Fuzz(func(t *testing.T, rawOps uint16, rawCap uint8, e1, e2, e3 uint16) {
		ops := int(rawOps)%5000 + 1
		cap := int(rawCap)%BatchOps + 1
		events := []int{int(e1) % (ops + 2), int(e2) % (ops + 2), int(e3) % (ops + 2)}
		sort.Ints(events)

		fired := make([]bool, len(events))
		nextEvent := func(op int) int {
			for i, at := range events {
				if !fired[i] && at > op {
					return at
				}
			}
			return 1 << 62
		}
		op, iter := 0, 0
		for op < ops {
			if iter++; iter > 3*ops+len(events)+8 {
				t.Fatalf("loop failed to terminate: op %d of %d, cap %d, events %v", op, ops, cap, events)
			}
			// The tick at the span start: everything due fires now, and
			// must be due *exactly* now — a later At reached here would be
			// a premature fire, an earlier unfired At a late one.
			for i, at := range events {
				if !fired[i] && at <= op {
					if at != op {
						t.Fatalf("event at %d fired late at op %d (cap %d, events %v)", at, op, cap, events)
					}
					fired[i] = true
				}
			}
			limit := cap
			if rem := ops - op; limit > rem {
				limit = rem
			}
			span := batchSpan(op, limit, nextEvent(op))
			if span < 1 {
				t.Fatalf("stalled span at op %d (cap %d, events %v)", op, cap, events)
			}
			if next := nextEvent(op); next > op && op+span > next {
				t.Fatalf("span [%d, %d) crosses event at %d (cap %d)", op, op+span, next, cap)
			}
			op += span
		}
		if op != ops {
			t.Fatalf("coverage hole: ended at op %d of %d", op, ops)
		}
		for i, at := range events {
			if at < ops && !fired[i] {
				t.Fatalf("event at %d (< %d ops) never fired at a batch seam (cap %d, events %v)", at, ops, cap, events)
			}
			if at >= ops && fired[i] {
				t.Fatalf("event at %d fired inside a %d-op trace (cap %d, events %v)", at, ops, cap, events)
			}
		}
	})
}
