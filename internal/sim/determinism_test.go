package sim

import (
	"fmt"
	"reflect"
	"testing"

	"dmt/internal/fault"
	"dmt/internal/workload"
)

// The sharded-determinism contract (DESIGN.md): a run's Result is a pure
// function of (Config minus Workers) — the worker count schedules shards
// onto goroutines but never changes what they compute. These tests pin
// Shards and compare serial against maximally-parallel execution for every
// (environment × design) cell, with and without a fault plan, under the
// race detector in CI.

const (
	detOps = 2000
	detWS  = 24 << 20
)

func detWorkload(t testing.TB) workload.Spec {
	t.Helper()
	wl, err := workload.ByName("GUPS")
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func detDesigns(env Environment) []Design {
	switch env {
	case EnvNative:
		return []Design{DesignVanilla, DesignDMT, DesignECPT, DesignFPT, DesignASAP,
			DesignVictima, DesignUtopia}
	case EnvVirt:
		return []Design{DesignVanilla, DesignShadow, DesignDMT, DesignPvDMT,
			DesignECPT, DesignFPT, DesignAgile, DesignASAP,
			DesignVictima, DesignUtopia}
	case EnvNested:
		return []Design{DesignVanilla, DesignPvDMT, DesignVictima, DesignUtopia}
	}
	return nil
}

// requireEqualResults asserts two results are identical in every measured
// field (Config aside, which legitimately records the differing Workers).
func requireEqualResults(t *testing.T, a, b *Result) {
	t.Helper()
	ac, bc := *a, *b
	ac.Config, bc.Config = Config{}, Config{}
	if reflect.DeepEqual(&ac, &bc) {
		return
	}
	if !reflect.DeepEqual(a.Breakdown(), b.Breakdown()) {
		t.Errorf("breakdowns differ:\nA: %+v\nB: %+v", a.Breakdown(), b.Breakdown())
	}
	ac.breakdown, bc.breakdown = nil, nil
	t.Fatalf("results differ:\nA: %+v\nB: %+v", ac, bc)
}

func detConfig(env Environment, d Design, plan *fault.Plan) Config {
	return Config{
		Env: env, Design: d, THP: true,
		WSBytes: detWS, Ops: detOps, Seed: 7,
		FaultPlan: plan, Verify: true,
		Shards: 4, // pinned: results depend on Shards, never on Workers
	}
}

// TestDeterminismMatrix is the metamorphic suite: for every cell, a run at
// Workers 1 must be bit-identical to the same run at Workers 8.
func TestDeterminismMatrix(t *testing.T) {
	wl := detWorkload(t)
	var plans []*fault.Plan
	plans = append(plans, nil)
	suite := fault.Suite(detOps)
	if len(suite) == 0 {
		t.Fatal("empty fault suite")
	}
	churn := &suite[0]
	plans = append(plans, churn)

	for _, env := range []Environment{EnvNative, EnvVirt, EnvNested} {
		for _, d := range detDesigns(env) {
			for _, plan := range plans {
				name := fmt.Sprintf("%v/%s", env, d)
				if plan != nil {
					name += "/" + plan.Name
				}
				t.Run(name, func(t *testing.T) {
					cfg := detConfig(env, d, plan)
					cfg.Workload = wl

					serialCfg := cfg
					serialCfg.Workers = 1
					serial, err := Run(serialCfg)
					if err != nil {
						t.Fatal(err)
					}
					parCfg := cfg
					parCfg.Workers = 8
					parallel, err := Run(parCfg)
					if err != nil {
						t.Fatal(err)
					}
					requireEqualResults(t, serial, parallel)
					if serial.Ops != detOps {
						t.Fatalf("merged Ops = %d, want %d", serial.Ops, detOps)
					}
					if serial.Walks == 0 || serial.TLBMisses == 0 {
						t.Fatalf("degenerate run: %d walks, %d misses", serial.Walks, serial.TLBMisses)
					}
					if cfg.Verify && serial.Checked == 0 {
						t.Fatal("verification ran zero checks")
					}
					if plan != nil && serial.FaultsApplied+serial.FaultsSkipped == 0 {
						t.Fatal("no fault events executed")
					}
				})
			}
		}
	}
}

// TestDeterminismSingleShardMatchesLegacy pins the other edge of the
// contract: Shards 1 under any worker count is the classic serial engine.
func TestDeterminismSingleShardMatchesLegacy(t *testing.T) {
	wl := detWorkload(t)
	base := Config{
		Env: EnvNative, Design: DesignDMT, THP: true, Workload: wl,
		WSBytes: detWS, Ops: detOps, Seed: 7, Verify: true, Shards: 1,
	}
	a := base
	a.Workers = 1
	b := base
	b.Workers = 8
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, ra, rb)
}

// TestMergePermutationProperty: folding shard results in any order yields
// the same aggregate as the in-order merge — the merge is commutative.
func TestMergePermutationProperty(t *testing.T) {
	wl := detWorkload(t)
	suite := fault.Suite(detOps)
	cfg := Config{
		Env: EnvVirt, Design: DesignPvDMT, THP: true, Workload: wl,
		WSBytes: detWS, Ops: detOps, Seed: 9, Verify: true,
		FaultPlan: &suite[0], Shards: 5, Workers: 1,
	}
	parts, err := RunShards(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MergeShards(cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]int{
		{0, 1, 2, 3, 4},
		{4, 3, 2, 1, 0},
		{2, 0, 4, 1, 3},
		{1, 4, 0, 3, 2},
		{3, 2, 4, 0, 1},
	}
	for _, p := range perms {
		shuffled := make([]ShardResult, len(p))
		for i, idx := range p {
			shuffled[i] = parts[idx]
		}
		got, err := MergeShards(cfg, shuffled)
		if err != nil {
			t.Fatalf("perm %v: %v", p, err)
		}
		requireEqualResults(t, want, got)
	}

	if _, err := MergeShards(cfg, nil); err == nil {
		t.Fatal("merge of zero shards should fail")
	}
	dup := []ShardResult{parts[0], parts[0]}
	if _, err := MergeShards(cfg, dup); err == nil {
		t.Fatal("merge of duplicate shards should fail")
	}
}
