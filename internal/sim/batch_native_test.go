package sim

import (
	"fmt"
	"testing"

	"dmt/internal/core"
)

// The native-batch-walk guarantee (DESIGN.md §13): every design the registry
// knows, in every environment that assembles it, must hand the engine a
// walker with a native WalkBatch. The engine would silently route a walker
// without one through core.ScalarWalkBatch — correct, but paying per-op
// interface dispatch — so a design losing its batch entry point is a perf
// regression that no correctness test would ever catch. This test makes it
// loud instead: it walks the design registry (allDesigns, the same list
// ParseDesign validates against), so a future design registered without a
// WalkBatch fails here by name before it ever reaches a benchmark.

// TestAllDesignsHaveNativeBatchWalk asserts no registered (environment ×
// design) cell resolves to the ScalarWalkBatch fallback. Cells an
// environment doesn't support are expected to fail assembly — but only the
// cells detDesigns doesn't list, so a supported cell breaking its build is
// also caught.
func TestAllDesignsHaveNativeBatchWalk(t *testing.T) {
	wl := detWorkload(t)
	for _, env := range []Environment{EnvNative, EnvVirt, EnvNested} {
		supported := make(map[Design]bool)
		for _, d := range detDesigns(env) {
			supported[d] = true
		}
		for _, d := range allDesigns {
			t.Run(fmt.Sprintf("%v/%s", env, d), func(t *testing.T) {
				cfg := detConfig(env, d, nil)
				cfg.Workload = wl
				cfg.Ops = 8
				in, err := NewInstance(cfg)
				if err != nil {
					if supported[d] {
						t.Fatalf("supported cell failed to assemble: %v", err)
					}
					t.Skipf("environment does not assemble this design: %v", err)
				}
				if !supported[d] {
					t.Fatalf("cell assembles but detDesigns does not list it; add %v/%s to the determinism matrix", env, d)
				}
				if in.bw == nil {
					t.Fatalf("walker %q (%T) does not implement core.BatchWalker: the engine would fall back to ScalarWalkBatch, paying per-op interface dispatch — add a native WalkBatch (see DESIGN.md §13 checklist)",
						in.m.walker.Name(), in.m.walker)
				}
				if _, ok := in.m.walker.(core.BatchWalker); !ok {
					t.Fatalf("instance batch walker set but %T lacks WalkBatch", in.m.walker)
				}
			})
		}
	}
}
