package sim

import (
	"fmt"
	"runtime"
	"testing"

	"dmt/internal/fault"
)

// These tests enforce the snapshot/clone contract (DESIGN.md §8): a machine
// cloned from a prototype is indistinguishable from one built from scratch
// — same Result, bit for bit, under every design, environment, fault plan,
// and verification mode — and driving a clone never leaks state back into
// the prototype or across to sibling clones. They carry "Determinism" in
// their names so CI's race-detector determinism job picks them up.

// TestDeterminismCloneEquality is the differential suite: for every
// (environment × design) cell, with and without a fault plan, with and
// without the verification oracle, a cache-served run (prototype + clones)
// must be bit-identical to a cold build.
func TestDeterminismCloneEquality(t *testing.T) {
	wl := detWorkload(t)
	suite := fault.Suite(detOps)
	if len(suite) == 0 {
		t.Fatal("empty fault suite")
	}
	churn := &suite[0]

	ResetBuildCache()
	for _, env := range []Environment{EnvNative, EnvVirt, EnvNested} {
		for _, d := range detDesigns(env) {
			for _, plan := range []*fault.Plan{nil, churn} {
				for _, verify := range []bool{false, true} {
					name := fmt.Sprintf("%v/%s/verify=%v", env, d, verify)
					if plan != nil {
						name += "/" + plan.Name
					}
					t.Run(name, func(t *testing.T) {
						cfg := detConfig(env, d, plan)
						cfg.Workload = wl
						cfg.Verify = verify
						cfg.Workers = 2 // schedule shards concurrently too

						cold := cfg
						cold.ColdBuild = true
						want, err := Run(cold)
						if err != nil {
							t.Fatal(err)
						}
						got, err := Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						requireEqualResults(t, want, got)

						// A second cached run clones the same resident
						// prototype — including one the first run's fault
						// plan already exercised clones of.
						again, err := Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						requireEqualResults(t, want, again)
					})
				}
			}
		}
	}
	stats := ReadBuildCacheStats()
	if stats.Misses == 0 || stats.Hits == 0 {
		t.Fatalf("cache not exercised: %+v", stats)
	}
	// Every cell ran 4 shards twice from the cache; hits must dwarf builds.
	if stats.Hits < stats.Misses {
		t.Fatalf("expected hit-dominated cache, got %+v", stats)
	}
}

// TestDeterminismCloneIsolation is the aliasing audit: drive one clone
// through a mutation-heavy plan (TEA migrations, unmaps, huge-page flips,
// register spills), then check that a sibling clone made *before* the run
// and one made *after* produce identical results — i.e. nothing the driven
// clone did (hook callbacks, TLB shootdowns, arena writes, backend
// allocation) reached the prototype they share.
func TestDeterminismCloneIsolation(t *testing.T) {
	wl := detWorkload(t)
	suite := fault.Suite(detOps)
	churn := &suite[0]

	for _, tc := range []struct {
		env Environment
		d   Design
	}{
		{EnvNative, DesignDMT},
		{EnvVirt, DesignPvDMT},
		{EnvNested, DesignPvDMT},
	} {
		t.Run(fmt.Sprintf("%v/%s", tc.env, tc.d), func(t *testing.T) {
			cfg := detConfig(tc.env, tc.d, churn)
			cfg.Workload = wl
			cfg.Shards = 1
			cfg.Workers = 1

			proto, err := NewPrototype(cfg)
			if err != nil {
				t.Fatal(err)
			}
			runClone := func() *Result {
				in, err := proto.NewInstance(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < in.Ops(); i++ {
					if err := in.Step(); err != nil {
						t.Fatal(err)
					}
				}
				res, err := in.Finish()
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			before := runClone() // mutation-heavy run over clone A
			after := runClone()  // clone B, minted from the same prototype
			requireEqualResults(t, before, after)

			// The prototype must also still match a from-scratch build.
			cold := cfg
			cold.ColdBuild = true
			want, err := Run(cold)
			if err != nil {
				t.Fatal(err)
			}
			requireEqualResults(t, want, after)
		})
	}
}

// TestMulticoreSmokeClonedShards is the CI multicore smoke: a 4-worker run
// must actually take the cloned-shard path — one prototype build, every
// other shard machine minted by cloning — and still produce the same result
// as a serial cold-build run. CI runs it explicitly (and under -race via
// the package test run) so a scheduling or cache regression that silently
// reverts shards to cold builds fails the build rather than just slowing it.
func TestMulticoreSmokeClonedShards(t *testing.T) {
	wl := detWorkload(t)
	cfg := detConfig(EnvVirt, DesignPvDMT, nil)
	cfg.Workload = wl
	cfg.Workers = 4 // withDefaults: Shards = Workers = 4
	cfg.Shards = 0

	ResetBuildCache()
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := ReadBuildCacheStats()
	if stats.Misses != 1 {
		t.Fatalf("expected exactly one prototype build for one configuration, got %+v", stats)
	}
	if stats.Hits < 3 {
		t.Fatalf("cloned-shard path not exercised: want >=3 cache hits for 4 shards, got %+v", stats)
	}

	cold := cfg
	cold.ColdBuild = true
	cold.Workers = 1
	cold.Shards = 4 // results are a function of Shards, not Workers
	want, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, want, got)
}

// TestDeterminismCloneCostIndependentOfOps pins the snapshot property the
// clone benchmarks rely on: instantiating from a prototype does work
// proportional to the machine, never to the trace length. Allocation
// counts are scheduler-independent, so the assertion is exact.
func TestDeterminismCloneCostIndependentOfOps(t *testing.T) {
	wl := detWorkload(t)
	cfg := detConfig(EnvNative, DesignDMT, nil)
	cfg.Workload = wl
	cfg.Verify = false
	cfg.Shards = 1

	proto, err := NewPrototype(cfg)
	if err != nil {
		t.Fatal(err)
	}
	allocsAt := func(ops int) float64 {
		c := cfg
		c.Ops = ops
		// Start each measurement from a collected heap: a GC landing inside
		// one window but not the other empties fmt's internal pools and
		// shows up as a spurious one-alloc difference.
		runtime.GC()
		return testing.AllocsPerRun(3, func() {
			if _, err := proto.NewInstance(c); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := allocsAt(detOps), allocsAt(100*detOps)
	if short != long {
		t.Fatalf("clone cost scales with trace length: %v allocs at %d ops, %v at %d",
			short, detOps, long, 100*detOps)
	}
}
