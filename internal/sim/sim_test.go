package sim

import (
	"testing"

	"dmt/internal/workload"
)

// small returns a quick test configuration.
func small(env Environment, design Design, thp bool, wl workload.Spec) Config {
	return Config{
		Env: env, Design: design, THP: thp, Workload: wl,
		WSBytes: 96 << 20, Ops: 30_000, Seed: 7, CacheScale: 16,
	}
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNativeDesignMatrix(t *testing.T) {
	wl := workload.GUPS()
	for _, d := range []Design{DesignVanilla, DesignDMT, DesignECPT, DesignFPT, DesignASAP} {
		d := d
		t.Run(string(d), func(t *testing.T) {
			r := run(t, small(EnvNative, d, false, wl))
			if r.TLBMisses == 0 {
				t.Fatal("no TLB misses: trace does not stress translation")
			}
			if r.AvgWalkCycles() <= 0 {
				t.Fatal("no walk cycles recorded")
			}
		})
	}
}

func TestVirtDesignMatrix(t *testing.T) {
	wl := workload.GUPS()
	for _, d := range []Design{DesignVanilla, DesignShadow, DesignDMT, DesignPvDMT, DesignECPT, DesignFPT, DesignAgile, DesignASAP} {
		d := d
		t.Run(string(d), func(t *testing.T) {
			r := run(t, small(EnvVirt, d, false, wl))
			if r.TLBMisses == 0 || r.AvgWalkCycles() <= 0 {
				t.Fatalf("degenerate run: misses=%d avg=%.1f", r.TLBMisses, r.AvgWalkCycles())
			}
		})
	}
}

func TestNestedDesigns(t *testing.T) {
	wl := workload.Canneal()
	for _, d := range []Design{DesignVanilla, DesignPvDMT} {
		r := run(t, small(EnvNested, d, false, wl))
		if r.TLBMisses == 0 || r.AvgWalkCycles() <= 0 {
			t.Fatalf("%s: degenerate nested run", d)
		}
	}
}

func TestSequentialRefCountsMatchTable6(t *testing.T) {
	wl := workload.GUPS()
	cases := []struct {
		env  Environment
		d    Design
		want float64
		tol  float64
	}{
		{EnvNative, DesignDMT, 1, 0.05},
		{EnvNative, DesignECPT, 1, 0.01},
		{EnvNative, DesignFPT, 2, 0.01},
		{EnvVirt, DesignDMT, 3, 0.1},
		{EnvVirt, DesignPvDMT, 2, 0.05},
		{EnvVirt, DesignECPT, 3, 0.01},
		{EnvVirt, DesignFPT, 8, 0.01},
		{EnvNested, DesignPvDMT, 3, 0.05},
	}
	for _, c := range cases {
		r := run(t, small(c.env, c.d, false, wl))
		if got := r.AvgSeqRefs(); got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%v/%v: avg sequential refs %.3f, want %.1f (Table 6)", c.env, c.d, got, c.want)
		}
	}
}

func TestDMTCoverageHigh(t *testing.T) {
	for _, wl := range []workload.Spec{workload.GUPS(), workload.Redis(), workload.Memcached()} {
		r := run(t, small(EnvNative, DesignDMT, false, wl))
		if r.Coverage < 0.99 {
			t.Errorf("%s: DMT coverage %.4f < 0.99 (§6.1)", wl.Name, r.Coverage)
		}
	}
}

func TestPvDMTBeatsBaselineWalkLatency(t *testing.T) {
	wl := workload.GUPS()
	base := run(t, small(EnvVirt, DesignVanilla, false, wl))
	pv := run(t, small(EnvVirt, DesignPvDMT, false, wl))
	if pv.AvgWalkCycles() >= base.AvgWalkCycles() {
		t.Fatalf("pvDMT avg walk %.1f not faster than nested paging %.1f",
			pv.AvgWalkCycles(), base.AvgWalkCycles())
	}
	speedup := base.AvgWalkCycles() / pv.AvgWalkCycles()
	if speedup < 1.1 {
		t.Fatalf("pvDMT walk speedup %.2fx implausibly low", speedup)
	}
}

func TestNativeDMTBeatsVanilla(t *testing.T) {
	wl := workload.GUPS()
	base := run(t, small(EnvNative, DesignVanilla, false, wl))
	d := run(t, small(EnvNative, DesignDMT, false, wl))
	if d.AvgWalkCycles() >= base.AvgWalkCycles() {
		t.Fatalf("DMT avg walk %.1f not faster than radix %.1f", d.AvgWalkCycles(), base.AvgWalkCycles())
	}
}

func TestDeterminism(t *testing.T) {
	cfg := small(EnvVirt, DesignPvDMT, false, workload.GUPS())
	a := run(t, cfg)
	b := run(t, cfg)
	if a.WalkCycles != b.WalkCycles || a.TLBMisses != b.TLBMisses || a.DataCycles != b.DataCycles {
		t.Fatal("identical configs produced different measurements")
	}
}

func TestBreakdownStepsForNestedWalk(t *testing.T) {
	r := run(t, small(EnvVirt, DesignVanilla, false, workload.GUPS()))
	bd := r.Breakdown()
	if len(bd) == 0 {
		t.Fatal("no breakdown recorded")
	}
	// The 24 architectural steps must appear (possibly with low counts
	// for PWC-skipped ones, but the leaf steps must dominate).
	labels := map[string]bool{}
	for _, s := range bd {
		labels[s.Label] = true
	}
	for _, must := range []string{"05 gL4", "20 gL1", "24 hL1"} {
		if !labels[must] {
			t.Errorf("breakdown missing step %q; have %v", must, labels)
		}
	}
}

func TestTHPRunsAndReducesMisses(t *testing.T) {
	wl := workload.GUPS()
	base := run(t, small(EnvNative, DesignVanilla, false, wl))
	thp := run(t, small(EnvNative, DesignVanilla, true, wl))
	if thp.MissRatio() >= base.MissRatio() {
		t.Fatalf("THP miss ratio %.4f not below 4K %.4f", thp.MissRatio(), base.MissRatio())
	}
}

func TestShadowCheaperWalkButExits(t *testing.T) {
	wl := workload.GUPS()
	sh := run(t, small(EnvVirt, DesignShadow, false, wl))
	nested := run(t, small(EnvVirt, DesignVanilla, false, wl))
	if sh.AvgSeqRefs() >= nested.AvgSeqRefs() {
		t.Fatalf("shadow refs %.1f not below nested %.1f", sh.AvgSeqRefs(), nested.AvgSeqRefs())
	}
	if sh.ShadowSyncs == 0 {
		t.Fatal("shadow paging recorded no sync work")
	}
}

func TestAblationKnobs(t *testing.T) {
	wl := workload.Redis()
	// One register covers only the largest mapping: coverage must drop
	// far below the default-16 run.
	cfg := small(EnvNative, DesignDMT, false, wl)
	cfg.TEARegisters = 1
	cfg.TEAMergeThreshold = -1
	one := run(t, cfg)
	cfg16 := small(EnvNative, DesignDMT, false, wl)
	full := run(t, cfg16)
	if one.Coverage >= 0.5 || full.Coverage < 0.99 {
		t.Fatalf("register knob ineffective: 1-reg coverage %.2f, 16-reg %.2f", one.Coverage, full.Coverage)
	}
	// Fragmentation forces splits and costs coverage.
	fcfg := small(EnvNative, DesignDMT, false, workload.GUPS())
	fcfg.FragmentTarget = 0.99
	frag := run(t, fcfg)
	if frag.Coverage >= 0.9 {
		t.Fatalf("fragmentation knob ineffective: coverage %.2f", frag.Coverage)
	}
}
