// Package core defines the translation-design abstraction shared by every
// walker in the reproduction and implements the two native designs: the
// baseline x86 radix walker (Figure 1) and the DMT fetcher (Figures 7/10).
//
// A Walker is invoked on a TLB miss and issues PTE fetches through the
// simulated cache hierarchy; the walk latency is the sum of the sequential
// fetch latencies (parallel fetches — DMT's multi-size fan-out, ECPT's
// cuckoo ways — contribute the maximum of their group) plus any fixed logic
// cost (PWC probes, hash computation).
package core

import (
	"dmt/internal/cache"
	"dmt/internal/mem"
)

// MemRef records one PTE fetch of a walk.
type MemRef struct {
	Addr   mem.PAddr
	Cycles int
	Served cache.Level
	// Level is the page-table level fetched (1–5), when meaningful.
	Level int
	// Dim distinguishes dimensions of nested walks: "n" native, "g"
	// guest, "h" host, "s" shadow, "L2"/"L1"/"L0" for nested virt.
	Dim string
	// Step is the 1-based position in the paper's step numbering (e.g.
	// Figure 2's 1..24 for a nested walk).
	Step int
}

// WalkOutcome is the result of one translation walk.
type WalkOutcome struct {
	PA   mem.PAddr
	Size mem.PageSize
	OK   bool

	// Cycles is the total walk latency.
	Cycles int
	// Refs lists every memory reference issued (including parallel ones).
	Refs []MemRef
	// SeqSteps counts *sequential* dependency steps: a group of parallel
	// fetches counts once (Table 6's metric).
	SeqSteps int
	// Fallback reports that an accelerated design fell back to the
	// legacy x86 walker for this translation.
	Fallback bool
}

// Walker is one address-translation design.
type Walker interface {
	Name() string
	// Walk translates va, charging PTE fetches to the memory hierarchy.
	Walk(va mem.VAddr) WalkOutcome
}

// CounterSource is implemented by walkers that export named counters to
// the observability layer (internal/obs): per-design walk counts, PWC and
// register-file hit attribution, fallback and prefetch statistics. Emit is
// invoked once per run when the instance finishes — never on the walk hot
// path — so implementations may format names freely. A walker owning an
// inner or fallback walker emits that walker's counters too, so the
// simulation harness only queries the top of the chain.
type CounterSource interface {
	EmitCounters(emit func(name string, value uint64))
}

// EmitChained forwards to w's EmitCounters when it exports counters; the
// helper keeps fallback-chain emission one line at every call site.
func EmitChained(w Walker, emit func(name string, value uint64)) {
	if cs, ok := w.(CounterSource); ok {
		cs.EmitCounters(emit)
	}
}
