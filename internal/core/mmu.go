package core

import (
	"dmt/internal/mem"
	"dmt/internal/tlb"
)

// MMU is the translation front-end: the TLB backed by one translation
// design. TLB hits cost nothing beyond the pipelined lookup; misses invoke
// the walker and install the result (Figure 10's flow).
type MMU struct {
	TLB    *tlb.TLB
	Walker Walker
	ASID   uint16

	// Stats
	Lookups    uint64
	Misses     uint64
	WalkCycles uint64
}

// NewMMU builds an MMU.
func NewMMU(t *tlb.TLB, w Walker, asid uint16) *MMU {
	return &MMU{TLB: t, Walker: w, ASID: asid}
}

// Translate resolves va, returning the physical address and the translation
// overhead in cycles (zero on a TLB hit).
func (m *MMU) Translate(va mem.VAddr) (mem.PAddr, int, bool) {
	m.Lookups++
	if pa, _, ok := m.TLB.Lookup(va, m.ASID); ok {
		return pa, 0, true
	}
	m.Misses++
	out := m.Walker.Walk(va)
	if !out.OK {
		return 0, out.Cycles, false
	}
	m.WalkCycles += uint64(out.Cycles)
	m.TLB.Insert(va, mem.AlignDownP(out.PA, out.Size.Bytes()), out.Size, m.ASID)
	return out.PA, out.Cycles, true
}

// MissRatio returns the TLB miss ratio observed so far.
func (m *MMU) MissRatio() float64 {
	if m.Lookups == 0 {
		return 0
	}
	return float64(m.Misses) / float64(m.Lookups)
}

// AvgWalkCycles returns the mean page-walk latency.
func (m *MMU) AvgWalkCycles() float64 {
	if m.Misses == 0 {
		return 0
	}
	return float64(m.WalkCycles) / float64(m.Misses)
}
