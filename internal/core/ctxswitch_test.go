package core

import (
	"math/rand"
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/tea"
	"dmt/internal/tlb"
)

func newManagerFor(as *kernel.AddressSpace) *tea.Manager {
	return tea.NewManager(as, tea.NewPhysBackend(as.Phys), tea.DefaultConfig(false))
}

// twoProcessRig builds two processes with disjoint heaps sharing one cache
// hierarchy, each with its own TEA manager and DMT walker.
func twoProcessRig(t *testing.T) (*Scheduler, []*kernel.VMA) {
	t.Helper()
	ra := newRig(t, false)
	// Second process on the same physical allocator & hierarchy.
	as2, err := kernel.NewAddressSpace(ra.as.Phys, kernel.Config{ASID: 2})
	if err != nil {
		t.Fatal(err)
	}
	mg2 := newManagerFor(as2)
	as2.SetHooks(mg2)
	v2, err := as2.MMap(0x40000000, 32<<20, kernel.VMAHeap, "heap2")
	if err != nil {
		t.Fatal(err)
	}
	if err := as2.Populate(v2); err != nil {
		t.Fatal(err)
	}
	v1, err := ra.as.MMap(0x40000000, 32<<20, kernel.VMAHeap, "heap1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.as.Populate(v1); err != nil {
		t.Fatal(err)
	}
	radix2 := NewRadixWalker(as2.PT, ra.hier, tlb.NewPWC(), as2.ASID())
	dmt2 := NewDMTWalker(mg2, as2.Pool, ra.hier, radix2)

	dtlb, err := tlb.New(tlb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mmu := NewMMU(dtlb, ra.dmt, ra.as.ASID())
	sched := NewScheduler(mmu,
		&Task{Name: "p1", Walker: ra.dmt, ASID: ra.as.ASID(), UsesDMT: true},
		&Task{Name: "p2", Walker: dmt2, ASID: as2.ASID(), UsesDMT: true},
	)
	return sched, []*kernel.VMA{v1, v2}
}

func TestSchedulerIsolatesASIDs(t *testing.T) {
	sched, heaps := twoProcessRig(t)
	// Same VA in both processes must translate to different frames.
	va := heaps[0].Start + 0x5000
	pa1, ok := sched.Translate(va)
	if !ok {
		t.Fatal("p1 translate failed")
	}
	sched.Switch()
	pa2, ok := sched.Translate(va)
	if !ok {
		t.Fatal("p2 translate failed")
	}
	if pa1 == pa2 {
		t.Fatal("two processes share a frame for the same VA — ASID isolation broken")
	}
	// Switching back, p1's translation is unchanged (and TLB-resident:
	// ASID tags survive the switch).
	sched.Switch()
	misses := sched.MMU.Misses
	pa1b, _ := sched.Translate(va)
	if pa1b != pa1 {
		t.Fatal("p1 translation changed across switches")
	}
	if sched.MMU.Misses != misses {
		t.Fatal("ASID-tagged TLB entry did not survive the round trip")
	}
}

func TestSchedulerChargesRegisterReload(t *testing.T) {
	sched, _ := twoProcessRig(t)
	for i := 0; i < 10; i++ {
		sched.Switch()
	}
	if sched.SwitchCycles != 10*RegisterReloadCycles {
		t.Fatalf("switch cycles = %d, want %d", sched.SwitchCycles, 10*RegisterReloadCycles)
	}
}

// TestSwitchOverheadNegligible quantifies §4.1's implicit claim: at an
// aggressive switch rate (every 1,000 accesses — orders of magnitude more
// frequent than real timeslices), the DMT register reload is noise against
// translation work.
func TestSwitchOverheadNegligible(t *testing.T) {
	sched, heaps := twoProcessRig(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		if i%1000 == 999 {
			sched.Switch()
		}
		h := heaps[sched.cur]
		va := h.Start + mem.VAddr(rng.Int63n(int64(h.Size()))&^0x7)
		if _, ok := sched.Translate(va); !ok {
			t.Fatalf("translate failed at %#x", uint64(va))
		}
	}
	reloadShare := float64(sched.SwitchCycles) / float64(sched.AccessCycles+sched.SwitchCycles)
	if reloadShare > 0.001 {
		t.Fatalf("register-reload share %.4f%% exceeds 0.1%% at switch-every-1000", reloadShare*100)
	}
}
