package core

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tea"
	"dmt/internal/tlb"
)

// rig assembles a native machine: kernel + TEA manager + hierarchy + both
// walkers.
type rig struct {
	as    *kernel.AddressSpace
	mg    *tea.Manager
	hier  *cache.Hierarchy
	radix *RadixWalker
	dmt   *DMTWalker
}

func newRig(t *testing.T, thp bool) *rig {
	t.Helper()
	pa := phys.New(0, 1<<16) // 256 MiB
	as, err := kernel.NewAddressSpace(pa, kernel.Config{THP: thp})
	if err != nil {
		t.Fatal(err)
	}
	mg := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(thp))
	as.SetHooks(mg)
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	radix := NewRadixWalker(as.PT, hier, tlb.NewPWC(), as.ASID())
	dmt := NewDMTWalker(mg, as.Pool, hier, radix)
	return &rig{as: as, mg: mg, hier: hier, radix: radix, dmt: dmt}
}

func (r *rig) heap(t *testing.T, bytes uint64) *kernel.VMA {
	t.Helper()
	v, err := r.as.MMap(0x40000000, bytes, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.as.Populate(v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRadixWalkFourSteps(t *testing.T) {
	r := newRig(t, false)
	v := r.heap(t, 16<<20)
	out := r.radix.Walk(v.Start + 0x5123)
	if !out.OK {
		t.Fatal("walk faulted")
	}
	if out.SeqSteps != 4 || len(out.Refs) != 4 {
		t.Fatalf("cold radix walk took %d steps, want 4", out.SeqSteps)
	}
	pa, _, ok := r.as.PT.Lookup(v.Start + 0x5123)
	if !ok || out.PA != pa {
		t.Fatal("radix walk PA mismatch")
	}
}

func TestRadixPWCSkips(t *testing.T) {
	r := newRig(t, false)
	v := r.heap(t, 16<<20)
	r.radix.Walk(v.Start) // warms PWC
	out := r.radix.Walk(v.Start + mem.PageBytes4K)
	if out.SeqSteps != 1 {
		t.Fatalf("PWC-warm walk took %d steps, want 1 (skip to L1)", out.SeqSteps)
	}
	if out.Refs[0].Level != 1 {
		t.Fatalf("remaining step at level %d, want 1", out.Refs[0].Level)
	}
}

func TestDMTSingleReference(t *testing.T) {
	r := newRig(t, false)
	v := r.heap(t, 64<<20)
	out := r.dmt.Walk(v.Start + 0x7123)
	if !out.OK || out.Fallback {
		t.Fatalf("DMT walk: ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if out.SeqSteps != 1 || len(out.Refs) != 1 {
		t.Fatalf("DMT took %d seq steps / %d refs, want 1/1", out.SeqSteps, len(out.Refs))
	}
	pa, _, _ := r.as.PT.Lookup(v.Start + 0x7123)
	if out.PA != pa {
		t.Fatal("DMT PA disagrees with page table")
	}
}

func TestDMTMatchesRadixEverywhere(t *testing.T) {
	r := newRig(t, false)
	v := r.heap(t, 32<<20)
	for off := uint64(0); off < v.Size(); off += 123 << 12 {
		va := v.Start + mem.VAddr(off)
		d := r.dmt.Walk(va)
		x := r.radix.Walk(va)
		if !d.OK || !x.OK || d.PA != x.PA {
			t.Fatalf("divergence at %#x: dmt=%#x radix=%#x", uint64(va), uint64(d.PA), uint64(x.PA))
		}
	}
}

func TestDMTFallbackOutsideRegisters(t *testing.T) {
	r := newRig(t, false)
	r.heap(t, 16<<20)
	// A second tiny VMA, too small for a TEA under MinVMABytes=0 but we
	// force no-register coverage by filling registers with a custom cfg;
	// simpler: address in a VMA without TEA — create VMA while bypassing
	// hooks by unsetting them.
	r.as.SetHooks(nil)
	v2, err := r.as.MMap(0x9_0000_0000, 1<<20, kernel.VMAAnon, "naked")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.as.Populate(v2); err != nil {
		t.Fatal(err)
	}
	r.as.SetHooks(r.mg)
	out := r.dmt.Walk(v2.Start)
	if !out.OK || !out.Fallback {
		t.Fatalf("expected fallback walk, got ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if r.dmt.FallbackWalks == 0 {
		t.Fatal("fallback not counted")
	}
}

func TestDMTTHPParallelFanout(t *testing.T) {
	r := newRig(t, true)
	v := r.heap(t, 64<<20)
	out := r.dmt.Walk(v.Start + 0x123456)
	if !out.OK || out.Fallback {
		t.Fatalf("THP DMT walk: ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if out.Size != mem.Size2M {
		t.Fatalf("size = %v, want 2M", out.Size)
	}
	if out.SeqSteps != 1 {
		t.Fatalf("seq steps = %d, want 1 (parallel fan-out)", out.SeqSteps)
	}
	if len(out.Refs) != 2 {
		t.Fatalf("refs = %d, want 2 (4K + 2M TEAs probed in parallel)", len(out.Refs))
	}
	if r.dmt.ParallelFetch2 == 0 {
		t.Fatal("parallel fan-out not counted")
	}
}

func TestDMTCoverage(t *testing.T) {
	r := newRig(t, false)
	v := r.heap(t, 32<<20)
	for off := uint64(0); off < v.Size(); off += 7 << 12 {
		r.dmt.Walk(v.Start + mem.VAddr(off))
	}
	if c := r.dmt.Coverage(); c != 1.0 {
		t.Fatalf("coverage = %.3f, want 1.0 for a single-VMA workload", c)
	}
}

func TestDMTFasterThanRadixCold(t *testing.T) {
	// With a cold cache hierarchy, a DMT walk (1 memory reference) must
	// be cheaper than a cold radix walk (4 references).
	rd := newRig(t, false)
	v := rd.heap(t, 16<<20)
	dmtOut := rd.dmt.Walk(v.Start)

	rr := newRig(t, false)
	v2 := rr.heap(t, 16<<20)
	radixOut := rr.radix.Walk(v2.Start)

	if dmtOut.Cycles >= radixOut.Cycles {
		t.Fatalf("cold DMT (%d cyc) not faster than cold radix (%d cyc)", dmtOut.Cycles, radixOut.Cycles)
	}
}

func TestMMUCachesTranslations(t *testing.T) {
	r := newRig(t, false)
	v := r.heap(t, 16<<20)
	dtlb, err := tlb.New(tlb.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mmu := NewMMU(dtlb, r.dmt, r.as.ASID())
	pa1, cyc1, ok := mmu.Translate(v.Start + 0x1234)
	if !ok || cyc1 == 0 {
		t.Fatalf("first translate: ok=%v cycles=%d (want a walk)", ok, cyc1)
	}
	pa2, cyc2, ok := mmu.Translate(v.Start + 0x1234)
	if !ok || cyc2 != 0 {
		t.Fatalf("second translate: ok=%v cycles=%d (want TLB hit)", ok, cyc2)
	}
	if pa1 != pa2 {
		t.Fatal("TLB returned a different PA")
	}
	if mmu.Misses != 1 || mmu.Lookups != 2 {
		t.Fatalf("stats: misses=%d lookups=%d", mmu.Misses, mmu.Lookups)
	}
}

func TestDMTAndWalkerShareAD(t *testing.T) {
	// DMT does not copy PTEs: A/D bits set via the kernel path must be
	// visible through the DMT fetch address and vice versa (§3).
	r := newRig(t, false)
	v := r.heap(t, 8<<20)
	va := v.Start + 0x3000
	if _, err := r.as.Touch(va, true); err != nil {
		t.Fatal(err)
	}
	reg := r.mg.Lookup(va)
	pte, ok := r.as.Pool.ReadPTE(reg.PTEAddr(mem.Size4K)(va))
	if !ok || !pte.Dirty() {
		t.Fatal("D bit set via kernel not visible at the DMT fetch address")
	}
}
