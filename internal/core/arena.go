package core

// RefSink is a reusable MemRef buffer shared by every walker along one
// machine's fallback chain. With a sink installed, walkers append their
// PTE fetches to it instead of allocating per-walk Refs slices, and each
// WalkOutcome's Refs alias the sink's buffer — valid only until the next
// Reset. The simulation loop resets the sink at the start of every walk
// and consumes the refs before the next translation, so the walk hot path
// stays allocation-free. A nil sink preserves the legacy allocate-per-walk
// behavior for standalone walker use.
//
// Sharing one sink across a chain (e.g. DMTWalker and its radix fallback)
// also removes the old merge-copy on the fallback path: the fast-path
// prefix refs are already in the buffer when the fallback walker appends
// its own, so the final Refs slice is simply the whole sink.
type RefSink struct {
	buf []MemRef
}

// Reset empties the sink, retaining capacity.
func (s *RefSink) Reset() { s.buf = s.buf[:0] }

// Append records one memory reference.
func (s *RefSink) Append(r MemRef) { s.buf = append(s.buf, r) }

// Refs returns the references recorded since the last Reset. The slice
// aliases the sink's buffer.
func (s *RefSink) Refs() []MemRef { return s.buf }
