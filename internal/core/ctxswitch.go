package core

import (
	"dmt/internal/mem"
	"dmt/internal/tea"
)

// RegisterReloadCycles is the cost of loading the 16 DMT registers on a
// context switch or VM exit (§4.1: "these registers ... are exposed to the
// OS as part of the task state. The registers are updated by the OS on
// events like context switches and interrupts in virtual machines"). The
// 192-bit registers load like any architectural state save/restore; we
// charge one cycle per register, matching the MSR-write granularity the
// paper's footnote implies.
const RegisterReloadCycles = tea.DefaultRegisters

// Task couples one process's MMU state for multi-process simulation: its
// walker, its ASID, and — for DMT — its register file (reloaded on switch).
type Task struct {
	Name   string
	Walker Walker
	ASID   uint16
	// UsesDMT charges the register reload on switch-in.
	UsesDMT bool
}

// Scheduler round-robins Tasks over a shared MMU front-end (shared TLB and
// cache hierarchy, per-task walkers), charging context-switch costs: the
// DMT register reload for DMT tasks. TLB entries are ASID-tagged, so they
// survive switches exactly as PCID-tagged entries do on real hardware.
type Scheduler struct {
	MMU   *MMU
	Tasks []*Task

	cur int

	// Stats
	Switches     uint64
	SwitchCycles uint64
	AccessCycles uint64
	Translations uint64
}

// NewScheduler builds a scheduler over a shared MMU. The MMU's walker and
// ASID are overridden per-task on each switch.
func NewScheduler(mmu *MMU, tasks ...*Task) *Scheduler {
	s := &Scheduler{MMU: mmu, Tasks: tasks}
	if len(tasks) > 0 {
		s.install(0)
	}
	return s
}

func (s *Scheduler) install(i int) {
	s.cur = i
	s.MMU.Walker = s.Tasks[i].Walker
	s.MMU.ASID = s.Tasks[i].ASID
}

// Current returns the running task.
func (s *Scheduler) Current() *Task { return s.Tasks[s.cur] }

// Switch moves to the next task, charging the register reload when the
// incoming task uses DMT.
func (s *Scheduler) Switch() {
	next := (s.cur + 1) % len(s.Tasks)
	s.install(next)
	s.Switches++
	if s.Tasks[next].UsesDMT {
		s.SwitchCycles += RegisterReloadCycles
	}
}

// Translate resolves va for the current task, accumulating translation
// overhead.
func (s *Scheduler) Translate(va mem.VAddr) (mem.PAddr, bool) {
	pa, cycles, ok := s.MMU.Translate(va)
	s.AccessCycles += uint64(cycles)
	s.Translations++
	return pa, ok
}

// OverheadPerAccess returns the mean translation + switch overhead per
// access.
func (s *Scheduler) OverheadPerAccess() float64 {
	if s.Translations == 0 {
		return 0
	}
	return float64(s.AccessCycles+s.SwitchCycles) / float64(s.Translations)
}
