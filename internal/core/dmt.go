package core

import (
	"dmt/internal/cache"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tea"
)

// FetchLogicCycles is the fixed cost of the DMT fetcher's register filter
// and address arithmetic (Figure 10): a register CAM match plus two adds,
// modelled at one cycle like a PWC probe.
const FetchLogicCycles = 1

// DMTWalker is the native DMT fetcher (§3, §4.1): on a TLB miss it matches
// the VA against the VMA-to-TEA registers; on a match it computes the
// last-level PTE address arithmetically (Figure 7) and fetches it with a
// single memory reference. VAs not covered by any register — and fetches
// that find no valid leaf (e.g. during TEA migration, P-bit clear) — fall
// back to the legacy x86 walker.
type DMTWalker struct {
	Mgr      *tea.Manager
	Pool     *pagetable.Pool
	Hier     *cache.Hierarchy
	Fallback Walker
	// Dim labels refs in breakdowns.
	Dim string
	// Sink, when set, collects refs for the whole fetch+fallback chain
	// (share it with Fallback); outcomes then alias the sink's buffer.
	Sink *RefSink

	// Stats
	RegisterHits   uint64
	FallbackWalks  uint64
	ParallelFetch2 uint64 // walks that fanned out to two TEAs (§4.4)
}

// fetchSizes is the §4.4 fan-out probe order.
var fetchSizes = [...]mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G}

// NewDMTWalker builds the native DMT design over the TEA manager's
// register file, with the given fallback walker (normally a RadixWalker on
// the same page table).
func NewDMTWalker(mgr *tea.Manager, pool *pagetable.Pool, h *cache.Hierarchy, fallback Walker) *DMTWalker {
	return &DMTWalker{Mgr: mgr, Pool: pool, Hier: h, Fallback: fallback, Dim: "n"}
}

// Name implements Walker.
func (w *DMTWalker) Name() string { return "DMT" }

// EmitCounters implements CounterSource: the fetcher's register-file hit
// attribution plus the TEA manager's structural activity (migrations,
// splits, allocation failures — what the fault injector perturbs), then
// the fallback chain's own counters.
func (w *DMTWalker) EmitCounters(emit func(name string, value uint64)) {
	emit("dmt.register_hits", w.RegisterHits)
	emit("dmt.fallback_walks", w.FallbackWalks)
	emit("dmt.parallel_fetch2", w.ParallelFetch2)
	if w.Mgr != nil {
		s := &w.Mgr.Stats
		emit("tea.created", s.Created)
		emit("tea.deleted", s.Deleted)
		emit("tea.merges", s.Merges)
		emit("tea.splits", s.Splits)
		emit("tea.migrations", s.Migrations)
		emit("tea.alloc_failures", s.AllocFailures)
	}
	if w.Fallback != nil {
		EmitChained(w.Fallback, emit)
	}
}

// Walk implements Walker.
func (w *DMTWalker) Walk(va mem.VAddr) WalkOutcome {
	reg := w.Mgr.Lookup(va)
	if reg == nil {
		w.FallbackWalks++
		out := w.Fallback.Walk(va)
		out.Fallback = true
		return out
	}
	out := WalkOutcome{Cycles: FetchLogicCycles}
	// Huge-page support (§4.4): issue one fetch per covered page size in
	// parallel; exactly one TEA holds a valid leaf. The group counts as a
	// single sequential step whose critical path is the *valid* leaf's
	// line latency — the fetcher proceeds as soon as a fetch returns a
	// valid leaf of its size; non-leaf/invalid returns never gate it.
	groupCycles := 0 // latency of the valid leaf (fallback: slowest probe)
	slowest := 0
	fanout := 0
	for _, s := range fetchSizes {
		if !reg.Covered[s] {
			continue
		}
		fanout++
		pteAddr := reg.PTEAddrAt(s, va)
		r := w.Hier.Access(pteAddr)
		ref := MemRef{Addr: pteAddr, Cycles: r.Cycles, Served: r.Served, Level: s.LeafLevel(), Dim: w.Dim}
		if w.Sink != nil {
			w.Sink.Append(ref)
		} else {
			out.Refs = append(out.Refs, ref)
		}
		if r.Cycles > slowest {
			slowest = r.Cycles
		}
		pte, ok := w.Pool.ReadPTE(pteAddr)
		if !ok || !leafValid(pte, s) {
			continue
		}
		out.PA = pte.Frame() + mem.PAddr(mem.PageOffset(va, s))
		out.Size = s
		out.OK = true
		groupCycles = r.Cycles
	}
	if !out.OK {
		groupCycles = slowest // absence is known only when all return
	}
	out.Cycles += groupCycles
	out.SeqSteps = 1
	if fanout > 1 {
		w.ParallelFetch2++
	}
	if !out.OK {
		// No valid leaf in any TEA (unfaulted page, migration window):
		// the request falls back to the x86 page table walker (§4.1).
		w.FallbackWalks++
		fb := w.Fallback.Walk(va)
		fb.Cycles += out.Cycles
		if w.Sink != nil {
			// The shared sink already holds prefix + fallback refs in order.
			fb.Refs = w.Sink.Refs()
		} else {
			// Merge into a fresh slice: appending to out.Refs could hand the
			// caller a view into a backing array later clobbered by another
			// fallback reusing the same prefix capacity.
			merged := make([]MemRef, 0, len(out.Refs)+len(fb.Refs))
			merged = append(merged, out.Refs...)
			fb.Refs = append(merged, fb.Refs...)
		}
		fb.SeqSteps += out.SeqSteps
		fb.Fallback = true
		return fb
	}
	w.RegisterHits++
	if w.Sink != nil {
		out.Refs = w.Sink.Refs()
	}
	return out
}

// leafValid reports whether pte is a valid leaf for page size s: base pages
// must not carry the PS bit; huge pages must (so a non-leaf L2 entry read
// from the 2M TEA is rejected, §4.4).
func leafValid(pte mem.PTE, s mem.PageSize) bool {
	if !pte.Present() {
		return false
	}
	if s == mem.Size4K {
		return !pte.Huge()
	}
	return pte.Huge()
}

// Probe reports whether the DMT fast path would serve va — a register
// matches and one of its TEAs holds a valid leaf — without touching the
// cache hierarchy or any statistics. The differential checker uses it to
// assert that Walk falls back exactly when the fast path cannot serve.
func (w *DMTWalker) Probe(va mem.VAddr) bool {
	reg := w.Mgr.Lookup(va)
	if reg == nil {
		return false
	}
	for _, s := range fetchSizes {
		if !reg.Covered[s] {
			continue
		}
		if pte, ok := w.Pool.ReadPTE(reg.PTEAddrAt(s, va)); ok && leafValid(pte, s) {
			return true
		}
	}
	return false
}

// Coverage returns the fraction of walks served by the DMT fetcher without
// fallback (the 99+% claim of §6.1).
func (w *DMTWalker) Coverage() float64 {
	total := w.RegisterHits + w.FallbackWalks
	if total == 0 {
		return 0
	}
	return float64(w.RegisterHits) / float64(total)
}

// CoverageCounts returns the raw hit/total counters behind Coverage; shard
// results merge these integers so parallel runs reproduce serial coverage
// bit-exactly.
func (w *DMTWalker) CoverageCounts() (hits, total uint64) {
	return w.RegisterHits, w.RegisterHits + w.FallbackWalks
}

var _ Walker = (*DMTWalker)(nil)
var _ BatchWalker = (*DMTWalker)(nil)

// WalkBatch runs a batch of translations through the canonical loop against
// the concrete walker. DMT's one-reference fast path makes the per-op
// harness overhead proportionally largest, so it gains the most from the
// batched loop keeping TLB and translation-table lines resident.
func (w *DMTWalker) WalkBatch(b *Batch, reqs []Req, res []Res) int {
	return RunBatch(b, w, reqs, res)
}
