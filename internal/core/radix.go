package core

import (
	"dmt/internal/cache"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tlb"
)

// RadixWalker is the baseline x86 sequential page-table walker (§2.1.1,
// Figure 1) with the Table 3 page-walk caches: on a TLB miss it probes the
// PWC for the deepest skip, then fetches the remaining levels one by one
// through the cache hierarchy.
type RadixWalker struct {
	PT   *pagetable.Table
	Hier *cache.Hierarchy
	PWC  *tlb.PWC
	ASID uint16
	// Dim labels this walker's refs in breakdowns ("n" by default).
	Dim string
	// Sink, when set, receives this walker's refs instead of per-walk
	// slices (see RefSink); the outcome's Refs then alias the sink.
	Sink *RefSink

	Walks uint64

	steps []pagetable.Step // per-walker scratch, reused across walks
}

// NewRadixWalker builds the baseline walker.
func NewRadixWalker(pt *pagetable.Table, h *cache.Hierarchy, pwc *tlb.PWC, asid uint16) *RadixWalker {
	return &RadixWalker{PT: pt, Hier: h, PWC: pwc, ASID: asid, Dim: "n"}
}

// Name implements Walker.
func (w *RadixWalker) Name() string { return "x86-radix" }

// Walk implements Walker.
func (w *RadixWalker) Walk(va mem.VAddr) WalkOutcome {
	w.Walks++
	full := w.PT.WalkInto(va, w.steps[:0])
	w.steps = full.Steps[:0]
	out := WalkOutcome{PA: full.PA, Size: full.Size, OK: full.OK}

	steps := full.Steps
	if w.PWC != nil {
		out.Cycles += tlb.PWCLatency
		if _, nextLevel, ok := w.PWC.Lookup(va, w.ASID); ok {
			// Skip the steps above nextLevel; the PWC hands us the node
			// to read next.
			for i, s := range steps {
				if s.Level <= nextLevel {
					steps = steps[i:]
					break
				}
			}
		}
	}
	for _, s := range steps {
		r := w.Hier.Access(s.Addr)
		ref := MemRef{Addr: s.Addr, Cycles: r.Cycles, Served: r.Served, Level: s.Level, Dim: w.Dim}
		if w.Sink != nil {
			w.Sink.Append(ref)
		} else {
			out.Refs = append(out.Refs, ref)
		}
		out.Cycles += r.Cycles
		out.SeqSteps++
	}
	if w.PWC != nil && full.OK {
		w.refillPWC(va, full.Steps)
	}
	if w.Sink != nil {
		out.Refs = w.Sink.Refs()
	}
	return out
}

// EmitCounters implements CounterSource. The dim qualifier separates
// multiple radix walkers in one machine (e.g. the shadow-table walker's
// "s" dimension from a native "n" walker).
func (w *RadixWalker) EmitCounters(emit func(name string, value uint64)) {
	emit("radix."+w.Dim+".walks", w.Walks)
	if w.PWC != nil {
		emit("radix."+w.Dim+".pwc_hits", w.PWC.Hits)
		emit("radix."+w.Dim+".pwc_misses", w.PWC.Misses)
	}
}

// refillPWC installs skip entries for the internal levels traversed: after
// fetching the level-L entry we know the physical base of the level-(L-1)
// node, which is what a PWC entry at level L records.
func (w *RadixWalker) refillPWC(va mem.VAddr, steps []pagetable.Step) {
	for i := 0; i+1 < len(steps); i++ {
		child := mem.AlignDownP(steps[i+1].Addr, mem.PageBytes4K)
		w.PWC.Insert(va, steps[i].Level, child, w.ASID)
	}
}

var _ Walker = (*RadixWalker)(nil)
var _ BatchWalker = (*RadixWalker)(nil)

// WalkBatch runs a batch of translations through the canonical loop against
// the concrete walker. Consecutive radix walks share PWC sets and the upper
// page-table lines, so batching keeps that metadata hot across ops.
func (w *RadixWalker) WalkBatch(b *Batch, reqs []Req, res []Res) int {
	return RunBatch(b, w, reqs, res)
}
