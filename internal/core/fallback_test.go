package core

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tea"
	"dmt/internal/tlb"
)

// newGradualRig builds a native rig whose TEA manager leaves migrations
// in flight until PumpMigration is called, so tests can hold the
// migration window open (P-bit clear, §4.3) across walks.
func newGradualRig(t *testing.T, thp bool) *rig {
	t.Helper()
	pa := phys.New(0, 1<<16)
	as, err := kernel.NewAddressSpace(pa, kernel.Config{THP: thp})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tea.DefaultConfig(thp)
	cfg.GradualMigration = true
	mg := tea.NewManager(as, tea.NewPhysBackend(pa), cfg)
	as.SetHooks(mg)
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	radix := NewRadixWalker(as.PT, hier, tlb.NewPWC(), as.ASID())
	dmt := NewDMTWalker(mg, as.Pool, hier, radix)
	return &rig{as: as, mg: mg, hier: hier, radix: radix, dmt: dmt}
}

// TestDMTFallbackMergeRefs pins the merge semantics of the no-valid-leaf
// fallback: the outcome must carry the TEA probe refs followed by the
// radix walk refs, and the refs of one outcome must stay intact after a
// later fallback walk (the merge must not hand out a slice whose backing
// array a subsequent walk can clobber).
func TestDMTFallbackMergeRefs(t *testing.T) {
	r := newRig(t, false)
	v := r.heap(t, 32<<20)

	// Two pages whose leaves we remove: the register still covers them,
	// so the walk probes the 4K TEA (1 ref) and then merges the radix
	// walk's refs behind it.
	vaA := v.Start + 3*mem.PageBytes4K
	vaB := v.Start + 9*mem.PageBytes4K
	for _, va := range []mem.VAddr{vaA, vaB} {
		if err := r.as.UnmapPage(v, va); err != nil {
			t.Fatal(err)
		}
	}

	outA := r.dmt.Walk(vaA)
	if !outA.Fallback || outA.OK {
		t.Fatalf("walk of unmapped covered page: fallback=%v ok=%v, want fallback miss", outA.Fallback, outA.OK)
	}
	radixRefs := len(r.radix.Walk(vaA).Refs)
	if want := 1 + radixRefs; len(outA.Refs) != want {
		t.Fatalf("merged outcome has %d refs, want %d (1 TEA probe + %d radix)", len(outA.Refs), want, radixRefs)
	}
	if outA.Refs[0].Dim != "n" || outA.Refs[0].Level != mem.Size4K.LeafLevel() {
		t.Fatalf("first merged ref is not the TEA probe: %+v", outA.Refs[0])
	}

	snapshot := make([]MemRef, len(outA.Refs))
	copy(snapshot, outA.Refs)
	outB := r.dmt.Walk(vaB) // second fallback: must not clobber outA's refs
	if !outB.Fallback {
		t.Fatal("second walk did not fall back")
	}
	for i := range snapshot {
		if snapshot[i] != outA.Refs[i] {
			t.Fatalf("ref %d of the first outcome changed after a later fallback walk:\n  was %+v\n  now %+v",
				i, snapshot[i], outA.Refs[i])
		}
	}
}

// TestDMTMigrationWindowFallback drives the §4.3 migration window: while a
// TEA migration is in flight the register's P-bit is clear, every walk
// must take the legacy path with Fallback=true and the correct PA, and
// cycle accounting must stay monotone (fallback at least as expensive as
// the radix walk alone). Draining the migration restores the fast path.
func TestDMTMigrationWindowFallback(t *testing.T) {
	r := newGradualRig(t, true)
	v := r.heap(t, 32<<20)

	va := v.Start + 5*mem.PageBytes2M + 0x1234
	pre := r.dmt.Walk(va)
	if !pre.OK || pre.Fallback {
		t.Fatalf("pre-migration walk: ok=%v fallback=%v", pre.OK, pre.Fallback)
	}

	if !r.mg.StartMigration(v.Start) {
		t.Fatal("StartMigration did not begin a migration")
	}
	wantPA, _, ok := r.as.PT.Lookup(va)
	if !ok {
		t.Fatal("page not mapped")
	}
	fbBefore := r.dmt.FallbackWalks
	out := r.dmt.Walk(va)
	if !out.OK || !out.Fallback {
		t.Fatalf("mid-migration walk: ok=%v fallback=%v, want fallback hit", out.OK, out.Fallback)
	}
	if out.PA != wantPA {
		t.Fatalf("mid-migration PA %#x, want %#x", uint64(out.PA), uint64(wantPA))
	}
	if r.dmt.FallbackWalks != fbBefore+1 {
		t.Fatalf("FallbackWalks %d, want %d", r.dmt.FallbackWalks, fbBefore+1)
	}
	radix := r.radix.Walk(va)
	if out.Cycles < radix.Cycles {
		t.Fatalf("fallback outcome cheaper than the radix walk it contains: %d < %d", out.Cycles, radix.Cycles)
	}

	for r.mg.MigrationsPending() {
		if r.mg.PumpMigration(1<<30) == 0 {
			t.Fatal("migration pump made no progress")
		}
	}
	post := r.dmt.Walk(va)
	if !post.OK || post.Fallback {
		t.Fatalf("post-migration walk: ok=%v fallback=%v, want fast path", post.OK, post.Fallback)
	}
	if post.PA != wantPA {
		t.Fatalf("post-migration PA %#x, want %#x", uint64(post.PA), uint64(wantPA))
	}
}
