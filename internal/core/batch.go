package core

import (
	"dmt/internal/cache"
	"dmt/internal/mem"
)

// This file is the batch-walk entry point (DESIGN.md §13). The simulation
// engine generates trace operations into a reusable buffer and hands whole
// batches to the walker, so per-op harness work (injector ticks, context
// checks, histogram flushes) is hoisted to batch boundaries while the
// per-op machine semantics — TLB probe, walk on miss, TLB refill, data
// access, in exactly that order for every op — are preserved bit for bit.
// Ops inside a batch stay fully interleaved: every data access and TLB
// refill mutates state the next op observes, so batching restructures the
// loop around the ops, never the ops themselves. What the batch buys is
// locality (TLB/PWC/cache-set metadata stays hot in host caches across
// consecutive walks) and the removal of per-op dispatch and bookkeeping.

// Req is one translation request of a batch: the trace operation's virtual
// address.
type Req struct {
	VA mem.VAddr
}

// Res is the per-op outcome of a batch walk.
type Res struct {
	PA     mem.PAddr
	Cycles int  // translation cycles charged (0 on a TLB hit)
	Missed bool // the TLB missed and the walker ran
	OK     bool
}

// WalkRecorder observes every walker invocation inside a batch — the
// engine's measurement harness (per-step aggregation, latency capture,
// trace ring, differential oracle) implements it. RecordWalk runs after
// the walk and before the TLB refill, exactly where the scalar path's
// recording wrapper sits.
type WalkRecorder interface {
	RecordWalk(va mem.VAddr, out *WalkOutcome)
}

// TranslateChecker is the per-op oracle assertion (check.Checker satisfies
// it); nil disables verification.
type TranslateChecker interface {
	CheckTranslate(va mem.VAddr, pa mem.PAddr)
}

// Batch carries the shared machine state a batch of walks runs against.
// One Batch lives per engine instance and is reused across batches; the
// DataCycles accumulator is drained by the engine at batch boundaries.
type Batch struct {
	MMU  *MMU
	Hier *cache.Hierarchy
	// Sink, when set, is reset before every walker invocation, mirroring
	// the scalar recording wrapper: each outcome's Refs alias the refs of
	// that walk alone.
	Sink *RefSink
	Rec  WalkRecorder
	Chk  TranslateChecker

	// DataCycles accumulates the data-access charge of completed ops.
	DataCycles uint64

	// out is the reusable walk-outcome scratch. Passing a stack outcome's
	// address through the Rec interface would move it to the heap on every
	// miss; one preallocated slot keeps the loop allocation-free.
	out WalkOutcome

	// vas/pas are the hit-run scratch buffers handed to tlb.LookupBatch and
	// cache.AccessBatch; sized once (Reserve, or lazily on the first batch)
	// so steady-state batches stay allocation-free.
	vas []mem.VAddr
	pas []mem.PAddr
}

// Reserve sizes the hit-run scratch for batches of up to n requests; the
// engine calls it once at instance assembly so the first timed batch is as
// allocation-free as the rest.
func (b *Batch) Reserve(n int) {
	if cap(b.vas) < n {
		b.vas = make([]mem.VAddr, n)
		b.pas = make([]mem.PAddr, n)
	}
}

// NewBatch returns a Batch over the given machine state; rec and chk may be
// nil (interface fields must stay nil, not hold typed nils, for the loop's
// presence checks to work).
func NewBatch(mmu *MMU, hier *cache.Hierarchy, sink *RefSink, rec WalkRecorder, chk TranslateChecker) *Batch {
	b := &Batch{MMU: mmu, Hier: hier, Sink: sink}
	if rec != nil {
		b.Rec = rec
	}
	if chk != nil {
		b.Chk = chk
	}
	return b
}

// BatchWalker is a walker with a batch entry point. The engine feeds any
// design through the canonical loop via ScalarWalkBatch; designs on the
// paper's critical path (radix, DMT, pvDMT, nested 2D) implement the
// interface so their batches run against a concrete walker type.
type BatchWalker interface {
	Walker
	WalkBatch(b *Batch, reqs []Req, res []Res) int
}

// RunBatch is the canonical batch loop: for each request, in op order —
// TLB probe; on a miss, walk and refill the TLB; verify; charge the data
// access. The sequence per op is exactly MMU.Translate plus the engine's
// per-op epilogue, so a batch of n ops is bit-identical to n scalar steps.
//
// It returns the number of fully completed ops. A short return means
// res[returned] holds a failed translation (out-of-sync page tables, e.g.
// an injected unmap): the op's TLB probe and walk have been charged, but
// no TLB refill or data access happened — the caller resolves the fault
// (demand paging) and resumes from that index, which is precisely the
// scalar engine's retry behaviour.
// Inside a run of consecutive TLB hits the per-op work decomposes into two
// independent state machines: the TLB probe touches only TLB state (LRU,
// promotion, hit counters) and the data access touches only hierarchy state
// (fills, LRU clock, level counters) — and the checker reads neither. The
// loop therefore unzips each hit-run's L,D,L,D,… interleave into one
// tlb.LookupBatch pass over the run followed by one cache.AccessBatch pass:
// every structure is driven by a tight per-structure loop with its metadata
// hot, and every counter, LRU stamp, and hit/miss outcome is bit-identical
// to the scalar interleave. The first miss ends the run (its walk touches
// the hierarchy, so it must stay ordered after the run's data accesses).
func RunBatch[W Walker](b *Batch, w W, reqs []Req, res []Res) int {
	m := b.MMU
	n := len(reqs)
	b.Reserve(n)
	vas, pas := b.vas[:n], b.pas[:n]
	for i := range reqs {
		vas[i] = reqs[i].VA
	}
	for i := 0; i < n; {
		hits, missProbed := m.TLB.LookupBatch(vas[i:], m.ASID, pas[i:])
		m.Lookups += uint64(hits)
		for k := i; k < i+hits; k++ {
			res[k] = Res{PA: pas[k], OK: true}
		}
		if b.Chk != nil {
			for k := i; k < i+hits; k++ {
				b.Chk.CheckTranslate(vas[k], pas[k])
			}
		}
		b.DataCycles += b.Hier.AccessBatch(pas[i : i+hits])
		i += hits
		if !missProbed {
			break
		}
		// Op i missed: its TLB probe is already charged (LookupBatch probed
		// it exactly once); walk, refill, and run its epilogue.
		va := vas[i]
		m.Lookups++
		m.Misses++
		if b.Sink != nil {
			b.Sink.Reset()
		}
		out := &b.out
		*out = w.Walk(va)
		if b.Rec != nil {
			b.Rec.RecordWalk(va, out)
		}
		if !out.OK {
			res[i] = Res{Cycles: out.Cycles, Missed: true}
			return i
		}
		m.WalkCycles += uint64(out.Cycles)
		m.TLB.Insert(va, mem.AlignDownP(out.PA, out.Size.Bytes()), out.Size, m.ASID)
		res[i] = Res{PA: out.PA, Cycles: out.Cycles, Missed: true, OK: true}
		if b.Chk != nil {
			b.Chk.CheckTranslate(va, out.PA)
		}
		b.DataCycles += uint64(b.Hier.Access(out.PA).Cycles)
		i++
	}
	return n
}

// ScalarWalkBatch drives a walker without a batch entry point through the
// canonical loop — the adapter that keeps every design working under the
// batched engine.
func ScalarWalkBatch(b *Batch, w Walker, reqs []Req, res []Res) int {
	return RunBatch(b, w, reqs, res)
}
