package scenario

import (
	"fmt"
	"math/rand"

	"dmt/internal/cache"
	"dmt/internal/check"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/obs"
	"dmt/internal/phys"
	"dmt/internal/tea"
	"dmt/internal/tlb"
	"dmt/internal/virt"
)

// vmBase is where every VM's (or native process's) first VMA starts.
const vmBase = mem.VAddr(1 << 30)

// pvdmt per-VM geometry: guest RAM must be 2 MiB-aligned; the pv-TEA
// window's gPA space is bump-allocated and retired lazily, so it is sized
// with slack for a VM lifetime of gTEA churn.
const (
	pvRAMBytes    = 2 << 20
	pvWindowBytes = 2 << 20
	pvHeapBytes   = 1 << 20
)

// nodeVM is one tenant of the simulated node. Under "dmt" it is a native
// process (as + mgr); under "pvdmt" a virtual machine with one guest
// process whose TEAs are host-allocated gTEAs (vm + guest + gmgr).
type nodeVM struct {
	id int

	// dmt design
	as  *kernel.AddressSpace
	mgr *tea.Manager

	// pvdmt design
	vm    *virt.VM
	guest *kernel.AddressSpace
	gmgr  *tea.Manager

	vmas   []*kernel.VMA // workload VMAs (guest-side under pvdmt)
	nextVA mem.VAddr
}

// workloadAS returns the address space the churn events operate on.
func (v *nodeVM) workloadAS() *kernel.AddressSpace {
	if v.guest != nil {
		return v.guest
	}
	return v.as
}

// teaMgr returns the manager whose TEAs the design under test fetches from.
func (v *nodeVM) teaMgr() *tea.Manager {
	if v.gmgr != nil {
		return v.gmgr
	}
	return v.mgr
}

// relocRouter fans the shared machine allocator's single Relocate callback
// out to every live address space carved from it. NewAddressSpace installs
// the newest space as the allocator's relocator, which is right for a
// single-tenant allocator and wrong for a node: compaction would only ever
// consult the last tenant booted. Each space refuses frames it does not
// own, so trying tenants in boot order finds the owner deterministically.
type relocRouter struct {
	spaces []*kernel.AddressSpace
}

func (r *relocRouter) Relocate(old, new mem.PAddr) bool {
	for _, as := range r.spaces {
		if as.Relocate(old, new) {
			return true
		}
	}
	return false
}

func (r *relocRouter) add(as *kernel.AddressSpace) { r.spaces = append(r.spaces, as) }

func (r *relocRouter) remove(as *kernel.AddressSpace) {
	for i, s := range r.spaces {
		if s == as {
			r.spaces = append(r.spaces[:i], r.spaces[i+1:]...)
			return
		}
	}
}

// counters are node-lifetime event totals; epoch rows report deltas.
type counters struct {
	Boots, BootFailures, Kills uint64
	Mmaps, Munmaps, Touches    uint64
	Splits, Promotes           uint64
	MigStarts, Compacts        uint64
}

// node is one shard's simulated cloud node.
type node struct {
	cfg     Config
	rng     *rand.Rand
	machine *phys.Allocator
	hier    *cache.Hierarchy
	hyp     *virt.Hypervisor // pvdmt only
	router  *relocRouter

	teaCfg      tea.Config // native / guest manager configuration
	vms         []*nodeVM
	pending     []*tea.Manager // managers with in-flight TEA migrations
	nextID      int
	nextASID    uint16
	ctr         counters
	retiredFail uint64 // AllocFailures harvested from dead VMs' managers
	checks      int

	// previous-boundary snapshots for per-epoch deltas
	prevCtr     counters
	prevContig  uint64
	prevMigr    uint64
	prevTEAFail uint64
}

func newNode(cfg Config, seed int64) (*node, error) {
	n := &node{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		router: &relocRouter{},
	}
	n.teaCfg = tea.DefaultConfig(cfg.THP && cfg.Design == "dmt")
	n.teaCfg.GradualMigration = true
	frames := cfg.MemMiB << 8
	if cfg.Design == "pvdmt" {
		hyp, err := virt.NewHypervisor(frames, cache.DefaultConfig())
		if err != nil {
			return nil, err
		}
		n.hyp = hyp
		n.machine = hyp.MachinePhys
		n.hier = hyp.Hier
	} else {
		hier, err := cache.NewHierarchy(cache.DefaultConfig())
		if err != nil {
			return nil, err
		}
		n.machine = phys.New(0, frames)
		n.hier = hier
	}
	n.machine.SetRelocator(n.router)
	return n, nil
}

func (n *node) asid() uint16 {
	n.nextASID++
	if n.nextASID == 0 {
		n.nextASID = 1
	}
	return n.nextASID
}

// step processes one churn event. The event mix keeps occupancy
// oscillating in [VMs/2, VMs]: boots fire below the target, kills above
// half of it, and the rest is guest VMA churn, demand faults, THP flips,
// and background TEA-migration windows.
func (n *node) step() error {
	n.pump()
	p := n.rng.Intn(100)
	switch {
	case p < 6:
		if len(n.vms) < n.cfg.VMs {
			return n.boot()
		}
		return n.mmapEvent()
	case p < 10:
		if len(n.vms) > n.cfg.VMs/2 {
			return n.kill()
		}
		return n.touchEvent()
	case p < 35:
		return n.mmapEvent()
	case p < 50:
		return n.munmapEvent()
	case p < 75:
		return n.touchEvent()
	case p < 81:
		return n.splitEvent()
	case p < 87:
		return n.promoteEvent()
	default:
		return n.migrateEvent()
	}
}

// pump advances the oldest in-flight TEA migration by one batch — the
// §4.3 gradual-migration window running as steady-state background work.
func (n *node) pump() {
	if len(n.pending) == 0 {
		return
	}
	m := n.pending[0]
	m.PumpMigration(64)
	if !m.MigrationsPending() {
		n.pending = n.pending[1:]
	}
}

func (n *node) dropPending(m *tea.Manager) {
	for i, p := range n.pending {
		if p == m {
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			return
		}
	}
}

func (n *node) boot() error {
	if n.cfg.Design == "pvdmt" {
		return n.bootVM()
	}
	return n.bootProcess()
}

// bootProcess boots a native DMT-Linux process: address space + TEA
// manager over the shared machine allocator, one populated heap.
func (n *node) bootProcess() error {
	heapBytes := uint64(1+n.rng.Intn(2)) << 20
	if n.machine.FreeFrames() < int(heapBytes>>mem.PageShift4K)+64 {
		n.ctr.BootFailures++
		return nil
	}
	as, err := kernel.NewAddressSpace(n.machine, kernel.Config{THP: n.cfg.THP, ASID: n.asid()})
	if err != nil {
		n.ctr.BootFailures++
		return nil
	}
	n.machine.SetRelocator(n.router) // NewAddressSpace stole the slot
	n.router.add(as)
	mgr := tea.NewManager(as, tea.NewPhysBackend(n.machine), n.teaCfg)
	as.SetHooks(mgr)
	v, err := as.MMap(vmBase, heapBytes, kernel.VMAHeap, "heap")
	if err != nil {
		return err
	}
	_ = as.Populate(v) // partial population under pressure is the workload
	vm := &nodeVM{id: n.nextID, as: as, mgr: mgr, vmas: []*kernel.VMA{v}}
	vm.nextVA = vmBase + mem.VAddr(mem.AlignUp(mem.VAddr(heapBytes), mem.PageBytes2M))
	n.nextID++
	n.vms = append(n.vms, vm)
	n.ctr.Boots++
	return nil
}

// bootVM boots a pvDMT virtual machine: host-backed RAM, a pv-TEA window,
// and one guest process whose TEAs arrive via KVM_HC_ALLOC_TEA.
func (n *node) bootVM() error {
	if n.machine.FreeFrames() < (pvRAMBytes>>mem.PageShift4K)+96 {
		n.ctr.BootFailures++
		return nil
	}
	vm, err := n.hyp.NewVM(virt.VMConfig{
		Name: fmt.Sprintf("vm%d", n.nextID), RAMBytes: pvRAMBytes,
		HostTHP: n.cfg.THP, HostDMT: true, ASID: n.asid(),
		PvTEAWindowBytes: pvWindowBytes,
	})
	if err != nil {
		return fmt.Errorf("boot vm%d: %w", n.nextID, err)
	}
	n.machine.SetRelocator(n.router)
	n.router.add(vm.HostAS)
	guest, err := vm.NewGuestProcess(false, 1)
	if err != nil {
		return err
	}
	gmgr := tea.NewManager(guest, virt.NewHypercallBackend(vm), n.teaCfg)
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(vmBase, pvHeapBytes, kernel.VMAHeap, "heap")
	if err != nil {
		return err
	}
	_ = guest.Populate(heap)
	nv := &nodeVM{id: n.nextID, vm: vm, guest: guest, gmgr: gmgr, vmas: []*kernel.VMA{heap}}
	nv.nextVA = vmBase + mem.VAddr(mem.AlignUp(mem.VAddr(pvHeapBytes), mem.PageBytes2M))
	n.nextID++
	n.vms = append(n.vms, nv)
	n.ctr.Boots++
	return nil
}

// kill destroys a random VM: workload VMAs are unmapped (draining the
// guest's gTEAs through FreeTEA hypercalls under pvdmt), then the VM's
// host-side structures are torn down. Every frame the tenant ever claimed
// must flow back — the conservation oracle holds kill to that.
func (n *node) kill() error {
	i := n.rng.Intn(len(n.vms))
	vm := n.vms[i]
	mgr := vm.teaMgr()
	n.retiredFail += mgr.Stats.AllocFailures
	n.dropPending(mgr)
	as := vm.workloadAS()
	for _, v := range append([]*kernel.VMA(nil), vm.vmas...) {
		if err := as.MUnmap(v); err != nil {
			return fmt.Errorf("kill vm%d: %w", vm.id, err)
		}
	}
	if vm.vm != nil {
		n.router.remove(vm.vm.HostAS)
		if err := vm.vm.Destroy(); err != nil {
			return fmt.Errorf("kill vm%d: %w", vm.id, err)
		}
	} else {
		n.router.remove(vm.as)
		n.machine.FreeFrame(vm.as.PT.RootPA())
	}
	n.vms = append(n.vms[:i], n.vms[i+1:]...)
	n.ctr.Kills++
	return nil
}

func (n *node) pickVM() *nodeVM {
	if len(n.vms) == 0 {
		return nil
	}
	return n.vms[n.rng.Intn(len(n.vms))]
}

func (n *node) mmapEvent() error {
	vm := n.pickVM()
	if vm == nil {
		return nil
	}
	maxShift := 7 // 64 KiB .. 4 MiB
	if vm.guest != nil {
		maxShift = 4 // guests are small: 64 KiB .. 512 KiB
	}
	size := uint64(64<<10) << n.rng.Intn(maxShift)
	as := vm.workloadAS()
	v, err := as.MMap(vm.nextVA, size, kernel.VMAHeap, "anon")
	if err != nil {
		return err
	}
	vm.nextVA += mem.VAddr(mem.AlignUp(mem.VAddr(size), mem.PageBytes2M))
	vm.vmas = append(vm.vmas, v)
	n.ctr.Mmaps++
	if n.rng.Intn(2) == 0 {
		_ = as.Populate(v) // ENOMEM mid-populate is tolerated pressure
	}
	return nil
}

func (n *node) munmapEvent() error {
	vm := n.pickVM()
	if vm == nil {
		return nil
	}
	if len(vm.vmas) < 2 {
		return n.touchOne(vm)
	}
	i := 1 + n.rng.Intn(len(vm.vmas)-1) // keep the boot heap
	v := vm.vmas[i]
	if err := vm.workloadAS().MUnmap(v); err != nil {
		return fmt.Errorf("munmap vm%d: %w", vm.id, err)
	}
	vm.vmas = append(vm.vmas[:i], vm.vmas[i+1:]...)
	n.ctr.Munmaps++
	return nil
}

func (n *node) touchEvent() error {
	vm := n.pickVM()
	if vm == nil {
		return nil
	}
	return n.touchOne(vm)
}

func (n *node) touchOne(vm *nodeVM) error {
	v := vm.vmas[n.rng.Intn(len(vm.vmas))]
	as := vm.workloadAS()
	for k := 0; k < 4; k++ {
		va := v.Start + mem.VAddr(n.rng.Intn(v.Pages()))<<mem.PageShift4K
		_, _ = as.Touch(va, true) // ENOMEM faults are tolerated pressure
	}
	n.ctr.Touches++
	return nil
}

func (n *node) splitEvent() error {
	vm := n.pickVM()
	if vm == nil {
		return nil
	}
	if !n.cfg.THP || vm.guest != nil {
		return n.touchOne(vm)
	}
	v := vm.vmas[n.rng.Intn(len(vm.vmas))]
	huges := int(v.Size() >> 21)
	if huges == 0 {
		return n.touchOne(vm)
	}
	base := v.Start + mem.VAddr(n.rng.Intn(huges))<<21
	if size, ok := v.PresentSize(base); !ok || size != mem.Size2M {
		return n.touchOne(vm)
	}
	if err := vm.workloadAS().SplitHugePage(v, base); err == nil {
		n.ctr.Splits++
	}
	return nil
}

func (n *node) promoteEvent() error {
	vm := n.pickVM()
	if vm == nil {
		return nil
	}
	if !n.cfg.THP || vm.guest != nil {
		return n.touchOne(vm)
	}
	v := vm.vmas[n.rng.Intn(len(vm.vmas))]
	n.ctr.Promotes += uint64(vm.workloadAS().PromoteTHP(v))
	return nil
}

// migrateEvent opens a §4.3 gradual-migration window on a random tenant's
// TEA; pump() drains it over the following events (live-migration
// steady-state background).
func (n *node) migrateEvent() error {
	vm := n.pickVM()
	if vm == nil {
		return nil
	}
	mgr := vm.teaMgr()
	v := vm.vmas[n.rng.Intn(len(vm.vmas))]
	if mgr.StartMigration(v.Start) {
		n.ctr.MigStarts++
		for _, p := range n.pending {
			if p == mgr {
				return nil
			}
		}
		n.pending = append(n.pending, mgr)
	}
	return nil
}

// sample closes an epoch: per-epoch counter deltas, boundary gauges
// (fragmentation, occupancy, register coverage), and a walk-latency
// sampling pass over up to eight tenants.
func (n *node) sample(eventsInEpoch int) EpochRow {
	teaFail := n.retiredFail
	for _, vm := range n.vms {
		teaFail += vm.teaMgr().Stats.AllocFailures
	}
	st := n.machine.Stats
	row := EpochRow{
		Events:         eventsInEpoch,
		LiveVMs:        len(n.vms),
		Boots:          n.ctr.Boots - n.prevCtr.Boots,
		BootFailures:   n.ctr.BootFailures - n.prevCtr.BootFailures,
		Kills:          n.ctr.Kills - n.prevCtr.Kills,
		TEAAllocs:      st.ContigAllocs - n.prevContig,
		TEAFailures:    teaFail - n.prevTEAFail,
		FramesMigrated: st.Migrations - n.prevMigr,
		Frag4Sum:       n.machine.FragmentationIndex(4),
		Frag9Sum:       n.machine.FragmentationIndex(9),
		Shards:         1,
	}
	for _, vm := range n.vms {
		mgr := vm.teaMgr()
		for _, r := range mgr.Registers() {
			if r.Present {
				row.RegCovered += uint64(r.Limit - r.Base)
			}
		}
		for _, mp := range mgr.Mappings() {
			row.RegSpan += uint64(mp.End - mp.Start)
		}
	}
	n.sampleWalks(&row.Walk)
	n.prevCtr = n.ctr
	n.prevContig = st.ContigAllocs
	n.prevMigr = st.Migrations
	n.prevTEAFail = teaFail
	return row
}

// sampleWalks records walk latencies (simulated cycles) through the design
// under test for a spread of tenants. Walkers are built fresh each epoch —
// the tail reflects the node's current state, not warmed caches.
func (n *node) sampleWalks(h *obs.Hist) {
	if len(n.vms) == 0 {
		return
	}
	stride := 1
	if len(n.vms) > 8 {
		stride = len(n.vms) / 8
	}
	for i := 0; i < len(n.vms); i += stride {
		vm := n.vms[i]
		w := n.walkerFor(vm)
		for k := 0; k < n.cfg.WalkSamples; k++ {
			v := vm.vmas[n.rng.Intn(len(vm.vmas))]
			va := v.Start + mem.VAddr(n.rng.Intn(v.Pages()))<<mem.PageShift4K
			out := w.Walk(va)
			h.Observe(uint64(out.Cycles))
		}
	}
}

func (n *node) walkerFor(vm *nodeVM) core.Walker {
	if vm.vm != nil {
		nested := virt.NewNestedWalker(vm.guest.PT, vm.vm.HostAS.PT, n.hier, 1)
		return virt.NewPvDMTWalker(vm.vm, vm.gmgr, vm.guest.Pool, n.hier, nested)
	}
	radix := core.NewRadixWalker(vm.as.PT, n.hier, tlb.NewPWCScaled(4), vm.as.ASID())
	return core.NewDMTWalker(vm.mgr, vm.as.Pool, n.hier, radix)
}

// verify runs the lifecycle conservation oracle: the machine's frame
// ledger must tile exactly across free frames and every tenant's claims
// (data frames + buddy-placed page-table nodes + live TEA frames), every
// address space must be structurally sound, and every TEA manager's
// FramesLive must equal the storage reachable from its mappings.
func (n *node) verify() error {
	var bad []string
	claimed := 0
	for _, vm := range n.vms {
		if vm.vm != nil {
			claimed += check.DataFrames(vm.vm.HostAS) +
				check.NodeFrames(vm.vm.HostAS, vm.vm.HostTEA.OwnsNode) +
				int(vm.vm.HostTEA.Stats.FramesLive) +
				int(vm.gmgr.Stats.FramesLive)
			bad = appendTagged(bad, fmt.Sprintf("vm%d host", vm.id), check.ASInvariants(vm.vm.HostAS))
			bad = appendTagged(bad, fmt.Sprintf("vm%d htea", vm.id), check.TEAAccounting(vm.vm.HostTEA))
			bad = appendTagged(bad, fmt.Sprintf("vm%d guest", vm.id), check.ASInvariants(vm.guest))
			bad = appendTagged(bad, fmt.Sprintf("vm%d gtea", vm.id), check.TEAAccounting(vm.gmgr))
			gclaim := check.DataFrames(vm.guest) + check.NodeFrames(vm.guest, vm.gmgr.OwnsNode)
			bad = appendTagged(bad, fmt.Sprintf("vm%d guestphys", vm.id), check.Conservation(vm.vm.GuestPhys, gclaim))
		} else {
			claimed += check.DataFrames(vm.as) +
				check.NodeFrames(vm.as, vm.mgr.OwnsNode) +
				int(vm.mgr.Stats.FramesLive)
			bad = appendTagged(bad, fmt.Sprintf("vm%d", vm.id), check.ASInvariants(vm.as))
			bad = appendTagged(bad, fmt.Sprintf("vm%d tea", vm.id), check.TEAAccounting(vm.mgr))
		}
	}
	bad = appendTagged(bad, "machine", check.Conservation(n.machine, claimed))
	n.checks++
	if len(bad) > 0 {
		return fmt.Errorf("conservation oracle (%d violations): %s", len(bad), bad[0])
	}
	return nil
}

func appendTagged(dst []string, tag string, msgs []string) []string {
	for _, m := range msgs {
		dst = append(dst, tag+": "+m)
	}
	return dst
}

func runShard(cfg Config, shard int) shardResult {
	events := shardOps(cfg.Events, shard, cfg.Shards)
	n, err := newNode(cfg, shardSeed(cfg.Seed, shard))
	if err != nil {
		return shardResult{err: err}
	}
	epochLen := events / cfg.Epochs
	if epochLen < 1 {
		epochLen = 1
	}
	compactEvery := epochLen / 4
	if compactEvery < 64 {
		compactEvery = 64
	}
	rows := make([]EpochRow, 0, cfg.Epochs)
	since := 0
	for i := 1; i <= events; i++ {
		if err := n.step(); err != nil {
			return shardResult{err: fmt.Errorf("event %d: %w", i, err)}
		}
		since++
		if i%compactEvery == 0 {
			n.machine.Compact()
			n.ctr.Compacts++
		}
		if cfg.CheckEvery > 0 && i%cfg.CheckEvery == 0 {
			if err := n.verify(); err != nil {
				return shardResult{err: fmt.Errorf("event %d: %w", i, err)}
			}
		}
		if len(rows) < cfg.Epochs && i%epochLen == 0 {
			if cfg.Verify {
				if err := n.verify(); err != nil {
					return shardResult{err: fmt.Errorf("epoch %d (event %d): %w", len(rows), i, err)}
				}
			}
			rows = append(rows, n.sample(since))
			since = 0
		}
	}
	for len(rows) < cfg.Epochs {
		rows = append(rows, n.sample(since))
		since = 0
	}
	return shardResult{rows: rows, checks: n.checks}
}
