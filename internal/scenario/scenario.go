// Package scenario drives long-horizon cloud-node aging experiments: one
// simulated node hosting hundreds of VMs over millions of lifecycle events
// — boots, deaths, guest mmap/munmap churn, THP splits and collapses,
// periodic compaction, and background TEA-migration windows reusing the
// §4.3 machinery. Where internal/sim measures steady-state walk latency,
// this package measures what a node looks like after days of churn: TEA
// allocation success versus fragmentation, the defrag cost of keeping TEAs
// machine-contiguous, and how register coverage and walk tails age.
//
// Determinism contract (DESIGN.md §8/§14): a run's Result is a pure
// function of its Config. Shards are independent node replicas seeded by
// splitmix64(Seed, shard); Workers only decides which goroutine simulates
// which shard, and per-epoch rows are merged in shard order — Workers: 1
// and Workers: 8 are bit-identical.
//
// With Verify set, the lifecycle conservation oracle (internal/check) runs
// at every epoch boundary: every frame allocated is freed exactly once,
// FreeFrames plus live claims tiles the machine at all times, VMAs never
// overlap, and TEA region/register bookkeeping stays consistent after
// every churn event. An oracle violation aborts the run with an error.
package scenario

import (
	"fmt"
	"sync"

	"dmt/internal/obs"
)

// Config parameterizes one aging campaign cell.
type Config struct {
	// Design selects the node's translation stack: "dmt" runs native
	// processes under DMT-Linux (TEA manager + phys backend); "pvdmt"
	// boots real virt.VMs whose guests allocate gTEAs by hypercall.
	Design string
	Seed   int64
	// Events is the total number of churn events across all shards.
	Events int
	// VMs is the per-shard target of concurrently live VMs; the event mix
	// boots toward it and kills above half of it, so occupancy oscillates
	// in [VMs/2, VMs] at steady state.
	VMs int
	// Epochs is the number of node-age sampling points per shard.
	Epochs int
	// Shards is the number of independent node replicas.
	Shards int
	// Workers sizes the goroutine pool over shards (results-invariant).
	Workers int
	// MemMiB is each node's physical memory.
	MemMiB int
	// THP enables transparent huge pages (and the split/collapse events).
	THP bool
	// Verify runs the conservation oracle at every epoch boundary.
	Verify bool
	// CheckEvery adds an oracle run every N events (0 = epochs only).
	CheckEvery int
	// WalkSamples is the number of translation walks sampled per VM at
	// each epoch boundary for the latency-tail histogram.
	WalkSamples int
}

// WithDefaults returns the config with every unset field filled in,
// exactly as Run applies them — callers (the experiments campaign) use it
// to report the effective cell parameters.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Design == "" {
		c.Design = "dmt"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Events <= 0 {
		c.Events = 200_000
	}
	if c.VMs <= 0 {
		c.VMs = 64
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Workers <= 0 {
		c.Workers = c.Shards
	}
	if c.MemMiB <= 0 {
		c.MemMiB = 256
	}
	if c.WalkSamples <= 0 {
		c.WalkSamples = 48
	}
	return c
}

// EpochRow is one node-age sample, merged across shards: counters are
// per-epoch deltas summed over shards, fragmentation indices are summed
// (divide by Shards for the mean), and the walk histogram is merged.
type EpochRow struct {
	Epoch   int
	Events  int // events processed during this epoch (all shards)
	LiveVMs int // live VMs at the boundary (all shards)

	Boots, BootFailures, Kills uint64

	// TEAAllocs counts successful machine-contiguous TEA allocations
	// (phys.AllocContig successes: every TEA and gTEA goes through it);
	// TEAFailures counts TEA allocation failures reported by the managers.
	TEAAllocs   uint64
	TEAFailures uint64
	// FramesMigrated counts buddy-allocator frame migrations — the work
	// spent defragmenting for contiguity (AllocContig windows + Compact).
	FramesMigrated uint64

	// Frag4Sum and Frag9Sum are FragmentationIndex(4) and (9) summed over
	// shards at the boundary.
	Frag4Sum, Frag9Sum float64

	// RegCovered / RegSpan are bytes of VA covered by present DMT
	// registers versus bytes of VA carrying TEA mappings.
	RegCovered, RegSpan uint64

	// Walk is the latency histogram (simulated cycles) of the boundary's
	// sampled translations.
	Walk obs.Hist

	// Shards is the replica count the row aggregates (for means).
	Shards int
}

// TEASuccessRate returns successful TEA allocations over attempts.
func (r *EpochRow) TEASuccessRate() float64 {
	attempts := r.TEAAllocs + r.TEAFailures
	if attempts == 0 {
		return 1
	}
	return float64(r.TEAAllocs) / float64(attempts)
}

// DefragCost returns frames migrated per successful contiguous allocation.
func (r *EpochRow) DefragCost() float64 {
	if r.TEAAllocs == 0 {
		return 0
	}
	return float64(r.FramesMigrated) / float64(r.TEAAllocs)
}

// Frag4 and Frag9 return the mean fragmentation index across shards.
func (r *EpochRow) Frag4() float64 { return r.Frag4Sum / float64(r.Shards) }
func (r *EpochRow) Frag9() float64 { return r.Frag9Sum / float64(r.Shards) }

// RegisterCoverage returns the fraction of TEA-mapped VA bytes covered by
// a present register.
func (r *EpochRow) RegisterCoverage() float64 {
	if r.RegSpan == 0 {
		return 1
	}
	return float64(r.RegCovered) / float64(r.RegSpan)
}

// Result is the outcome of one aging run.
type Result struct {
	Config       Config
	Rows         []EpochRow
	OracleChecks int // conservation-oracle executions across shards
}

type shardResult struct {
	rows   []EpochRow
	checks int
	err    error
}

// Run executes the scenario and merges per-shard epoch rows in shard
// order. The Result is bit-identical for any Workers value.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Design != "dmt" && cfg.Design != "pvdmt" {
		return nil, fmt.Errorf("scenario: unknown design %q (want dmt or pvdmt)", cfg.Design)
	}
	outs := make([]shardResult, cfg.Shards)
	idx := make(chan int)
	workers := cfg.Workers
	if workers > cfg.Shards {
		workers = cfg.Shards
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range idx {
				outs[s] = runShard(cfg, s)
			}
		}()
	}
	for s := 0; s < cfg.Shards; s++ {
		idx <- s
	}
	close(idx)
	wg.Wait()

	res := &Result{Config: cfg, Rows: make([]EpochRow, cfg.Epochs)}
	for e := range res.Rows {
		res.Rows[e].Epoch = e
		res.Rows[e].Shards = cfg.Shards
	}
	for s := 0; s < cfg.Shards; s++ {
		out := outs[s]
		if out.err != nil {
			return nil, fmt.Errorf("scenario: shard %d: %w", s, out.err)
		}
		res.OracleChecks += out.checks
		for e, row := range out.rows {
			dst := &res.Rows[e]
			dst.Events += row.Events
			dst.LiveVMs += row.LiveVMs
			dst.Boots += row.Boots
			dst.BootFailures += row.BootFailures
			dst.Kills += row.Kills
			dst.TEAAllocs += row.TEAAllocs
			dst.TEAFailures += row.TEAFailures
			dst.FramesMigrated += row.FramesMigrated
			dst.Frag4Sum += row.Frag4Sum
			dst.Frag9Sum += row.Frag9Sum
			dst.RegCovered += row.RegCovered
			dst.RegSpan += row.RegSpan
			dst.Walk.Merge(&row.Walk)
		}
	}
	return res, nil
}

// shardOps splits total ops across shards, front-loading the remainder —
// the same partition the sweep engine uses.
func shardOps(ops, shard, shards int) int {
	base := ops / shards
	if shard < ops%shards {
		base++
	}
	return base
}

// shardSeed derives a shard's seed from the campaign seed via splitmix64,
// so shard streams are decorrelated but reproducible.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1
	}
	return s
}
