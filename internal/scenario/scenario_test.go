package scenario

import (
	"reflect"
	"testing"
)

// shortCfg is the bounded aging configuration the suite runs: small enough
// for -race CI, long enough that every event class (boot, kill, mmap,
// munmap, touch, split, promote, migrate) fires many times per epoch and
// the node visits genuinely fragmented states.
func shortCfg(design string) Config {
	return Config{
		Design: design, Seed: 7, Events: 30_000, VMs: 24, Epochs: 5,
		Shards: 2, Workers: 2, MemMiB: 96, THP: true, Verify: true,
	}
}

// TestAgingRuns exercises both designs end to end with the conservation
// oracle armed and sanity-checks the sampled metrics: churn actually
// happened, the TEA managers allocated storage, and walk sampling filled
// the histograms.
func TestAgingRuns(t *testing.T) {
	for _, design := range []string{"dmt", "pvdmt"} {
		t.Run(design, func(t *testing.T) {
			r, err := Run(shortCfg(design))
			if err != nil {
				t.Fatal(err)
			}
			if r.OracleChecks == 0 {
				t.Fatal("oracle never ran")
			}
			var boots, kills, allocs uint64
			for _, row := range r.Rows {
				t.Logf("epoch %d: live=%d boots=%d kills=%d teaOK=%.3f defrag=%.2f frag9=%.2f cov=%.2f p99=%d",
					row.Epoch, row.LiveVMs, row.Boots, row.Kills, row.TEASuccessRate(),
					row.DefragCost(), row.Frag9(), row.RegisterCoverage(), row.Walk.Quantile(0.99))
				boots += row.Boots
				kills += row.Kills
				allocs += row.TEAAllocs
				if row.Walk.Count == 0 {
					t.Errorf("epoch %d: empty walk histogram", row.Epoch)
				}
				if cov := row.RegisterCoverage(); cov < 0 || cov > 1 {
					t.Errorf("epoch %d: register coverage %.3f out of range", row.Epoch, cov)
				}
			}
			if boots == 0 || kills == 0 {
				t.Fatalf("no churn: %d boots, %d kills", boots, kills)
			}
			if allocs == 0 {
				t.Fatal("no TEA allocations recorded")
			}
			t.Logf("oracle checks: %d", r.OracleChecks)
		})
	}
}

// TestWorkerInvariance is the metamorphic determinism check of the
// DESIGN.md §14 contract: Workers decides only which goroutine simulates
// which shard, so a 1-worker and an 8-worker run of the same configuration
// must produce bit-identical results. Run under -race this also shakes out
// any shared state between shard replicas.
func TestWorkerInvariance(t *testing.T) {
	for _, design := range []string{"dmt", "pvdmt"} {
		t.Run(design, func(t *testing.T) {
			narrow := shortCfg(design)
			narrow.Shards = 4
			narrow.Workers = 1
			wide := narrow
			wide.Workers = 8

			a, err := Run(narrow)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(wide)
			if err != nil {
				t.Fatal(err)
			}
			// Config records the requested worker count; everything else
			// must match exactly.
			if !reflect.DeepEqual(a.Rows, b.Rows) {
				t.Errorf("epoch rows differ between Workers=1 and Workers=8:\nA: %+v\nB: %+v", a.Rows, b.Rows)
			}
			if a.OracleChecks != b.OracleChecks {
				t.Errorf("oracle check counts differ: %d vs %d", a.OracleChecks, b.OracleChecks)
			}
		})
	}
}

// TestRepeatDeterminism pins the pure-function contract: the same Config
// run twice yields a deeply equal Result.
func TestRepeatDeterminism(t *testing.T) {
	for _, design := range []string{"dmt", "pvdmt"} {
		t.Run(design, func(t *testing.T) {
			cfg := shortCfg(design)
			cfg.Events = 15_000
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("repeat run diverged:\nA: %+v\nB: %+v", a, b)
			}
		})
	}
}

// TestSeedSensitivity guards against the opposite failure: a driver that
// ignores its seed would pass every determinism check while measuring
// nothing. Different seeds must produce different event streams.
func TestSeedSensitivity(t *testing.T) {
	cfg := shortCfg("dmt")
	cfg.Events = 10_000
	cfg.Verify = false
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 8
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Rows, b.Rows) {
		t.Error("seeds 7 and 8 produced identical epoch rows")
	}
}

// TestCheckEvery verifies the mid-epoch oracle cadence: CheckEvery adds
// conservation runs between epoch boundaries.
func TestCheckEvery(t *testing.T) {
	cfg := shortCfg("dmt")
	cfg.Events = 10_000
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CheckEvery = 500
	dense, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dense.OracleChecks <= base.OracleChecks {
		t.Errorf("CheckEvery=500 ran %d checks, epoch-only ran %d", dense.OracleChecks, base.OracleChecks)
	}
}

// TestUnknownDesign pins the config validation error.
func TestUnknownDesign(t *testing.T) {
	if _, err := Run(Config{Design: "shadow"}); err == nil {
		t.Fatal("expected error for unknown design")
	}
}
