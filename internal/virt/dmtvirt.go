package virt

import (
	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tea"
)

// fetchGroup accumulates one parallel fan-out of PTE fetches (§4.4). The
// group counts as one sequential step whose critical path is the fetch
// that produced the valid leaf (the fetcher proceeds on first valid
// return); only when nothing matches must it wait for the slowest probe.
type fetchGroup struct {
	cycles  int // critical path: the matched fetch
	slowest int
	matched bool
	refs    []core.MemRef
}

func (g *fetchGroup) add(r core.MemRef) {
	g.refs = append(g.refs, r)
	if r.Cycles > g.slowest {
		g.slowest = r.Cycles
	}
}

// markMatched records that the most recently added ref carried the valid
// leaf.
func (g *fetchGroup) markMatched() {
	g.matched = true
	if n := len(g.refs); n > 0 && g.refs[n-1].Cycles > g.cycles {
		g.cycles = g.refs[n-1].Cycles
	}
}

func (g *fetchGroup) commit(out *core.WalkOutcome) {
	out.Refs = append(out.Refs, g.refs...)
	if g.matched {
		out.Cycles += g.cycles
	} else {
		out.Cycles += g.slowest
	}
	out.SeqSteps++
}

// DMTVirtWalker is DMT applied to a virtualized environment *without*
// paravirtualization (§3.1, §4.5): three sequential memory references.
//
//  1. The gVMA-to-gTEA register yields the guest-physical address of the
//     gPTE; the hVMA-to-hTEA register yields the hPTE that locates the
//     gPTE's page in machine memory (fetch 1).
//  2. Fetch the gPTE itself (fetch 2), obtaining the data page's gPA.
//  3. Fetch the hPTE of the data page via the host register (fetch 3).
type DMTVirtWalker struct {
	Guest     *tea.Manager
	GuestPool *pagetable.Pool
	Host      *tea.Manager
	HostPool  *pagetable.Pool
	Hier      *cache.Hierarchy
	Fallback  core.Walker

	RegisterHits  uint64
	FallbackWalks uint64
}

// Name implements core.Walker.
func (w *DMTVirtWalker) Name() string { return "DMT-virt" }

// Walk implements core.Walker.
func (w *DMTVirtWalker) Walk(gva mem.VAddr) core.WalkOutcome {
	greg := w.Guest.Lookup(gva)
	if greg == nil {
		return w.fallback(gva, core.WalkOutcome{})
	}
	out := core.WalkOutcome{Cycles: core.FetchLogicCycles}

	// Candidate gPTE locations, one per covered guest page size.
	type cand struct {
		size    mem.PageSize
		gpteGPA mem.PAddr
		machine mem.PAddr
		ok      bool
	}
	var cands []cand
	for _, s := range []mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G} {
		if greg.Covered[s] {
			cands = append(cands, cand{size: s, gpteGPA: greg.PTEAddr(s)(gva)})
		}
	}
	if len(cands) == 0 {
		return w.fallback(gva, out)
	}

	// Fetch 1 (parallel across candidates): host PTE locating each gPTE.
	g1 := fetchGroup{}
	for i := range cands {
		m, ok := w.hostFetch(cands[i].gpteGPA, &g1)
		cands[i].machine, cands[i].ok = m, ok
	}
	g1.commit(&out)

	// Fetch 2 (parallel): the gPTEs themselves.
	g2 := fetchGroup{}
	var dataGPA mem.PAddr
	var guestSize mem.PageSize
	found := false
	for _, c := range cands {
		if !c.ok {
			continue
		}
		r := w.Hier.Access(c.machine)
		g2.add(core.MemRef{Addr: c.machine, Cycles: r.Cycles, Served: r.Served, Level: c.size.LeafLevel(), Dim: "g"})
		pte, ok := w.GuestPool.ReadPTE(c.gpteGPA)
		if ok && pteLeafValid(pte, c.size) {
			dataGPA = pte.Frame() + mem.PAddr(mem.PageOffset(gva, c.size))
			guestSize = c.size
			found = true
			g2.markMatched()
		}
	}
	g2.commit(&out)
	if !found {
		return w.fallback(gva, out)
	}

	// Fetch 3: host PTE of the data page.
	g3 := fetchGroup{}
	mData, ok := w.hostFetch(dataGPA, &g3)
	g3.commit(&out)
	if !ok {
		return w.fallback(gva, out)
	}
	out.PA = mData
	out.Size = guestSize
	out.OK = true
	w.RegisterHits++
	return out
}

// Probe reports whether the three-fetch fast path would serve gva, without
// touching the cache hierarchy or any statistics.
func (w *DMTVirtWalker) Probe(gva mem.VAddr) bool {
	greg := w.Guest.Lookup(gva)
	if greg == nil {
		return false
	}
	for _, s := range []mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G} {
		if !greg.Covered[s] {
			continue
		}
		gpteGPA := greg.PTEAddr(s)(gva)
		if _, ok := w.hostProbe(gpteGPA); !ok {
			continue
		}
		pte, ok := w.GuestPool.ReadPTE(gpteGPA)
		if !ok || !pteLeafValid(pte, s) {
			continue
		}
		dataGPA := pte.Frame() + mem.PAddr(mem.PageOffset(gva, s))
		if _, ok := w.hostProbe(dataGPA); ok {
			return true
		}
	}
	return false
}

// hostProbe is hostFetch without cache accesses or ref accounting.
func (w *DMTVirtWalker) hostProbe(gpa mem.PAddr) (mem.PAddr, bool) {
	hreg := w.Host.Lookup(mem.VAddr(gpa))
	if hreg == nil {
		return 0, false
	}
	for _, s := range []mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G} {
		if !hreg.Covered[s] {
			continue
		}
		pte, ok := w.HostPool.ReadPTE(hreg.PTEAddr(s)(mem.VAddr(gpa)))
		if ok && pteLeafValid(pte, s) {
			return pte.Frame() + mem.PAddr(mem.PageOffset(mem.VAddr(gpa), s)), true
		}
	}
	return 0, false
}

// hostFetch performs one host-side DMT fetch: locate the hPTE of gpa via
// the hVMA-to-hTEA register, access it, and return the machine address the
// hPTE maps gpa to. Refs are added to g (the caller's parallel group).
func (w *DMTVirtWalker) hostFetch(gpa mem.PAddr, g *fetchGroup) (mem.PAddr, bool) {
	hreg := w.Host.Lookup(mem.VAddr(gpa))
	if hreg == nil {
		return 0, false
	}
	for _, s := range []mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G} {
		if !hreg.Covered[s] {
			continue
		}
		hpteAddr := hreg.PTEAddr(s)(mem.VAddr(gpa))
		r := w.Hier.Access(hpteAddr)
		g.add(core.MemRef{Addr: hpteAddr, Cycles: r.Cycles, Served: r.Served, Level: s.LeafLevel(), Dim: "h"})
		pte, ok := w.HostPool.ReadPTE(hpteAddr)
		if ok && pteLeafValid(pte, s) {
			g.markMatched()
			return pte.Frame() + mem.PAddr(mem.PageOffset(mem.VAddr(gpa), s)), true
		}
	}
	return 0, false
}

func (w *DMTVirtWalker) fallback(gva mem.VAddr, partial core.WalkOutcome) core.WalkOutcome {
	w.FallbackWalks++
	fb := w.Fallback.Walk(gva)
	fb.Cycles += partial.Cycles
	fb.Refs = mergeRefs(partial.Refs, fb.Refs)
	fb.SeqSteps += partial.SeqSteps
	fb.Fallback = true
	return fb
}

// mergeRefs concatenates the fast-path prefix and fallback refs into a
// fresh slice: appending to the prefix in place could hand the caller a
// view into a backing array later clobbered by another fallback reusing
// the same prefix capacity.
func mergeRefs(prefix, fb []core.MemRef) []core.MemRef {
	merged := make([]core.MemRef, 0, len(prefix)+len(fb))
	merged = append(merged, prefix...)
	return append(merged, fb...)
}

func pteLeafValid(pte mem.PTE, s mem.PageSize) bool {
	if !pte.Present() {
		return false
	}
	if s == mem.Size4K {
		return !pte.Huge()
	}
	return pte.Huge()
}

var _ core.Walker = (*DMTVirtWalker)(nil)
