package virt

import (
	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tea"
)

// fetchGroup accumulates one parallel fan-out of PTE fetches (§4.4). The
// group counts as one sequential step whose critical path is the fetch
// that produced the valid leaf (the fetcher proceeds on first valid
// return); only when nothing matches must it wait for the slowest probe.
// With a sink installed refs stream straight into the shared buffer;
// otherwise they collect in the group's own slice (legacy allocation).
type fetchGroup struct {
	sink    *core.RefSink
	cycles  int // critical path: the matched fetch
	slowest int
	last    int // cycles of the most recently added ref
	matched bool
	refs    []core.MemRef // used only when sink is nil
}

// reset prepares a (reusable) group for one fan-out.
func (g *fetchGroup) reset(sink *core.RefSink) {
	*g = fetchGroup{sink: sink, refs: g.refs[:0]}
}

func (g *fetchGroup) add(r core.MemRef) {
	g.last = r.Cycles
	if g.sink != nil {
		g.sink.Append(r)
	} else {
		g.refs = append(g.refs, r)
	}
	if r.Cycles > g.slowest {
		g.slowest = r.Cycles
	}
}

// markMatched records that the most recently added ref carried the valid
// leaf.
func (g *fetchGroup) markMatched() {
	g.matched = true
	if g.last > g.cycles {
		g.cycles = g.last
	}
}

func (g *fetchGroup) commit(out *core.WalkOutcome) {
	if g.sink == nil {
		out.Refs = append(out.Refs, g.refs...)
	}
	if g.matched {
		out.Cycles += g.cycles
	} else {
		out.Cycles += g.slowest
	}
	out.SeqSteps++
}

// DMTVirtWalker is DMT applied to a virtualized environment *without*
// paravirtualization (§3.1, §4.5): three sequential memory references.
//
//  1. The gVMA-to-gTEA register yields the guest-physical address of the
//     gPTE; the hVMA-to-hTEA register yields the hPTE that locates the
//     gPTE's page in machine memory (fetch 1).
//  2. Fetch the gPTE itself (fetch 2), obtaining the data page's gPA.
//  3. Fetch the hPTE of the data page via the host register (fetch 3).
type DMTVirtWalker struct {
	Guest     *tea.Manager
	GuestPool *pagetable.Pool
	Host      *tea.Manager
	HostPool  *pagetable.Pool
	Hier      *cache.Hierarchy
	Fallback  core.Walker
	// Sink, when set, collects refs for the whole fetch+fallback chain
	// (share it with Fallback); outcomes then alias the sink's buffer.
	Sink *core.RefSink

	RegisterHits  uint64
	FallbackWalks uint64

	g fetchGroup // per-walker scratch, reused across fan-outs
}

// pvSizes is the §4.4 fan-out probe order.
var pvSizes = [...]mem.PageSize{mem.Size4K, mem.Size2M, mem.Size1G}

// Name implements core.Walker.
func (w *DMTVirtWalker) Name() string { return "DMT-virt" }

// EmitCounters implements core.CounterSource: the three-fetch fast path's
// hit/fallback split, both TEA managers' structural activity, and the
// nested baseline it falls back to.
func (w *DMTVirtWalker) EmitCounters(emit func(name string, value uint64)) {
	emit("dmtvirt.register_hits", w.RegisterHits)
	emit("dmtvirt.fallback_walks", w.FallbackWalks)
	if w.Guest != nil {
		s := &w.Guest.Stats
		emit("dmtvirt.guest.tea.migrations", s.Migrations)
		emit("dmtvirt.guest.tea.splits", s.Splits)
		emit("dmtvirt.guest.tea.alloc_failures", s.AllocFailures)
	}
	if w.Host != nil {
		s := &w.Host.Stats
		emit("dmtvirt.host.tea.migrations", s.Migrations)
		emit("dmtvirt.host.tea.splits", s.Splits)
		emit("dmtvirt.host.tea.alloc_failures", s.AllocFailures)
	}
	if w.Fallback != nil {
		core.EmitChained(w.Fallback, emit)
	}
}

// Walk implements core.Walker.
func (w *DMTVirtWalker) Walk(gva mem.VAddr) core.WalkOutcome {
	greg := w.Guest.Lookup(gva)
	if greg == nil {
		return w.fallback(gva, core.WalkOutcome{})
	}
	out := core.WalkOutcome{Cycles: core.FetchLogicCycles}

	// Candidate gPTE locations, one per covered guest page size.
	type cand struct {
		size    mem.PageSize
		gpteGPA mem.PAddr
		machine mem.PAddr
		ok      bool
	}
	var cands [3]cand
	nc := 0
	for _, s := range pvSizes {
		if greg.Covered[s] {
			cands[nc] = cand{size: s, gpteGPA: greg.PTEAddrAt(s, gva)}
			nc++
		}
	}
	if nc == 0 {
		return w.fallback(gva, out)
	}

	// Fetch 1 (parallel across candidates): host PTE locating each gPTE.
	g := &w.g
	g.reset(w.Sink)
	for i := 0; i < nc; i++ {
		m, ok := w.hostFetch(cands[i].gpteGPA, g)
		cands[i].machine, cands[i].ok = m, ok
	}
	g.commit(&out)

	// Fetch 2 (parallel): the gPTEs themselves.
	g.reset(w.Sink)
	var dataGPA mem.PAddr
	var guestSize mem.PageSize
	found := false
	for _, c := range cands[:nc] {
		if !c.ok {
			continue
		}
		r := w.Hier.Access(c.machine)
		g.add(core.MemRef{Addr: c.machine, Cycles: r.Cycles, Served: r.Served, Level: c.size.LeafLevel(), Dim: "g"})
		pte, ok := w.GuestPool.ReadPTE(c.gpteGPA)
		if ok && pteLeafValid(pte, c.size) {
			dataGPA = pte.Frame() + mem.PAddr(mem.PageOffset(gva, c.size))
			guestSize = c.size
			found = true
			g.markMatched()
		}
	}
	g.commit(&out)
	if !found {
		return w.fallback(gva, out)
	}

	// Fetch 3: host PTE of the data page.
	g.reset(w.Sink)
	mData, ok := w.hostFetch(dataGPA, g)
	g.commit(&out)
	if !ok {
		return w.fallback(gva, out)
	}
	out.PA = mData
	out.Size = guestSize
	out.OK = true
	w.RegisterHits++
	if w.Sink != nil {
		out.Refs = w.Sink.Refs()
	}
	return out
}

// Probe reports whether the three-fetch fast path would serve gva, without
// touching the cache hierarchy or any statistics.
func (w *DMTVirtWalker) Probe(gva mem.VAddr) bool {
	greg := w.Guest.Lookup(gva)
	if greg == nil {
		return false
	}
	for _, s := range pvSizes {
		if !greg.Covered[s] {
			continue
		}
		gpteGPA := greg.PTEAddrAt(s, gva)
		if _, ok := w.hostProbe(gpteGPA); !ok {
			continue
		}
		pte, ok := w.GuestPool.ReadPTE(gpteGPA)
		if !ok || !pteLeafValid(pte, s) {
			continue
		}
		dataGPA := pte.Frame() + mem.PAddr(mem.PageOffset(gva, s))
		if _, ok := w.hostProbe(dataGPA); ok {
			return true
		}
	}
	return false
}

// hostProbe is hostFetch without cache accesses or ref accounting.
func (w *DMTVirtWalker) hostProbe(gpa mem.PAddr) (mem.PAddr, bool) {
	hreg := w.Host.Lookup(mem.VAddr(gpa))
	if hreg == nil {
		return 0, false
	}
	for _, s := range pvSizes {
		if !hreg.Covered[s] {
			continue
		}
		pte, ok := w.HostPool.ReadPTE(hreg.PTEAddrAt(s, mem.VAddr(gpa)))
		if ok && pteLeafValid(pte, s) {
			return pte.Frame() + mem.PAddr(mem.PageOffset(mem.VAddr(gpa), s)), true
		}
	}
	return 0, false
}

// hostFetch performs one host-side DMT fetch: locate the hPTE of gpa via
// the hVMA-to-hTEA register, access it, and return the machine address the
// hPTE maps gpa to. Refs are added to g (the caller's parallel group).
func (w *DMTVirtWalker) hostFetch(gpa mem.PAddr, g *fetchGroup) (mem.PAddr, bool) {
	hreg := w.Host.Lookup(mem.VAddr(gpa))
	if hreg == nil {
		return 0, false
	}
	for _, s := range pvSizes {
		if !hreg.Covered[s] {
			continue
		}
		hpteAddr := hreg.PTEAddrAt(s, mem.VAddr(gpa))
		r := w.Hier.Access(hpteAddr)
		g.add(core.MemRef{Addr: hpteAddr, Cycles: r.Cycles, Served: r.Served, Level: s.LeafLevel(), Dim: "h"})
		pte, ok := w.HostPool.ReadPTE(hpteAddr)
		if ok && pteLeafValid(pte, s) {
			g.markMatched()
			return pte.Frame() + mem.PAddr(mem.PageOffset(mem.VAddr(gpa), s)), true
		}
	}
	return 0, false
}

func (w *DMTVirtWalker) fallback(gva mem.VAddr, partial core.WalkOutcome) core.WalkOutcome {
	w.FallbackWalks++
	fb := w.Fallback.Walk(gva)
	fb.Cycles += partial.Cycles
	if w.Sink != nil {
		// The shared sink already holds prefix + fallback refs in order.
		fb.Refs = w.Sink.Refs()
	} else {
		fb.Refs = mergeRefs(partial.Refs, fb.Refs)
	}
	fb.SeqSteps += partial.SeqSteps
	fb.Fallback = true
	return fb
}

// CoverageCounts returns the raw hit/total counters behind the walker's
// coverage fraction (see core.DMTWalker.CoverageCounts).
func (w *DMTVirtWalker) CoverageCounts() (hits, total uint64) {
	return w.RegisterHits, w.RegisterHits + w.FallbackWalks
}

// mergeRefs concatenates the fast-path prefix and fallback refs into a
// fresh slice: appending to the prefix in place could hand the caller a
// view into a backing array later clobbered by another fallback reusing
// the same prefix capacity.
func mergeRefs(prefix, fb []core.MemRef) []core.MemRef {
	merged := make([]core.MemRef, 0, len(prefix)+len(fb))
	merged = append(merged, prefix...)
	return append(merged, fb...)
}

func pteLeafValid(pte mem.PTE, s mem.PageSize) bool {
	if !pte.Present() {
		return false
	}
	if s == mem.Size4K {
		return !pte.Huge()
	}
	return pte.Huge()
}

var _ core.Walker = (*DMTVirtWalker)(nil)
var _ core.BatchWalker = (*DMTVirtWalker)(nil)

// WalkBatch runs a batch of translations through the canonical loop against
// the concrete walker. Like native DMT, the direct fetch's short reference
// chain makes per-op dispatch proportionally expensive, so the virt variant
// gains the most from the batched loop keeping its translation-table and
// host-fallback lines resident.
func (w *DMTVirtWalker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}
