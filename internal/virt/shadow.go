package virt

import (
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
)

// BuildShadowVA constructs a shadow page table mapping gVA → machine PA by
// composing the guest process table with the host tables (§2.1.2): the
// hypervisor-maintained sPT of classic shadow paging. Every synchronized
// leaf is counted as a shadow sync (each would cost a VM exit when it
// happens at runtime — the overhead quantified in §2.2).
//
// Guest huge pages are preserved in the shadow only when the backing
// guest-physical range is machine-contiguous and aligned; otherwise the
// leaf is splintered into base pages, as real shadow paging must.
func BuildShadowVA(vm *VM, guestAS *kernel.AddressSpace) (*pagetable.Table, error) {
	return buildShadow(vm, shadowSources(guestAS), func(gpa mem.PAddr) (mem.PAddr, bool) {
		return vm.MachineAddr(gpa)
	})
}

// BuildNestedShadow constructs the compressed shadow table of nested
// virtualization (Figure 3): L2PA → L0PA, combining the L1 table
// (L2PA→L1PA) with the L0 table (L1PA→L0PA). vm must be an L2 VM.
func BuildNestedShadow(vm *VM) (*pagetable.Table, error) {
	srcs := shadowSources(vm.HostAS)
	return buildShadow(vm, srcs, func(l1pa mem.PAddr) (mem.PAddr, bool) {
		return vm.Parent.MachineAddr(l1pa)
	})
}

type shadowSource struct {
	va   mem.VAddr
	size mem.PageSize
	dst  mem.PAddr // next-level physical address
}

func shadowSources(as *kernel.AddressSpace) []shadowSource {
	var srcs []shadowSource
	for _, v := range as.VMAs() {
		for _, p := range v.PresentPages() {
			if dst, size, ok := as.PT.Lookup(p.VA); ok {
				srcs = append(srcs, shadowSource{va: p.VA, size: size, dst: mem.AlignDownP(dst, size.Bytes())})
			}
		}
	}
	return srcs
}

func buildShadow(vm *VM, srcs []shadowSource, resolve func(mem.PAddr) (mem.PAddr, bool)) (*pagetable.Table, error) {
	machine := vm.Hyp.MachinePhys
	pool := pagetable.NewPool()
	spt, err := pagetable.New(pool, mem.Levels4,
		func(level int, va mem.VAddr) (mem.PAddr, error) {
			return machine.AllocFrame(phys.KindPageTable)
		},
		func(level int, pa mem.PAddr) { machine.FreeFrame(pa) })
	if err != nil {
		return nil, err
	}
	for _, s := range srcs {
		if s.size == mem.Size4K {
			m, ok := resolve(s.dst)
			if !ok {
				continue
			}
			if err := spt.Map(s.va, mem.AlignDownP(m, mem.PageBytes4K), mem.Size4K, mem.PTEWritable); err != nil {
				return nil, err
			}
			vm.Hyp.ShadowSyncs++
			continue
		}
		// Huge leaf: keep it huge only if the machine backing is
		// contiguous and aligned.
		if base, ok := contiguousMachine(s, resolve); ok {
			if err := spt.Map(s.va, base, s.size, mem.PTEWritable); err != nil {
				return nil, err
			}
			vm.Hyp.ShadowSyncs++
			continue
		}
		for off := uint64(0); off < s.size.Bytes(); off += mem.PageBytes4K {
			m, ok := resolve(s.dst + mem.PAddr(off))
			if !ok {
				continue
			}
			if err := spt.Map(s.va+mem.VAddr(off), mem.AlignDownP(m, mem.PageBytes4K), mem.Size4K, mem.PTEWritable); err != nil {
				return nil, err
			}
			vm.Hyp.ShadowSyncs++
		}
	}
	return spt, nil
}

func contiguousMachine(s shadowSource, resolve func(mem.PAddr) (mem.PAddr, bool)) (mem.PAddr, bool) {
	base, ok := resolve(s.dst)
	if !ok || !mem.IsAligned(uint64(base), s.size.Bytes()) {
		return 0, false
	}
	for off := uint64(mem.PageBytes4K); off < s.size.Bytes(); off += mem.PageBytes4K {
		m, ok := resolve(s.dst + mem.PAddr(off))
		if !ok || m != base+mem.PAddr(off) {
			return 0, false
		}
	}
	return base, true
}
