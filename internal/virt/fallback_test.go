package virt

import (
	"testing"

	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/tea"
)

// newGradualVEnv is newVEnv with gradual TEA migration, so a test can hold
// the §4.3 migration window open (register P-bit clear) across walks.
func newGradualVEnv(t *testing.T, thp, pv bool) *venv {
	t.Helper()
	hyp := mustHyp(t, testMachineFrames)
	vm, err := hyp.NewVM(VMConfig{
		Name: "vm0", RAMBytes: testRAMBytes, HostTHP: thp, HostDMT: true,
		ASID: 100, PvTEAWindowBytes: testWindowBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := vm.NewGuestProcess(thp, 1)
	if err != nil {
		t.Fatal(err)
	}
	var backend tea.Backend
	if pv {
		backend = NewHypercallBackend(vm)
	} else {
		backend = tea.NewPhysBackend(vm.GuestPhys)
	}
	cfg := tea.DefaultConfig(thp)
	cfg.GradualMigration = true
	gmgr := tea.NewManager(guest, backend, cfg)
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(0x40000000, 32<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	return &venv{hyp: hyp, vm: vm, guest: guest, gmgr: gmgr, heap: heap}
}

func drainMigration(t *testing.T, mgr *tea.Manager) {
	t.Helper()
	for mgr.MigrationsPending() {
		if mgr.PumpMigration(1<<30) == 0 {
			t.Fatal("migration pump made no progress")
		}
	}
}

// refCycleSum totals the per-reference latencies of an outcome; the
// outcome's critical path must never undercut it minus parallel overlap —
// for the serial fallback walkers it must be at least this sum.
func refCycleSum(out core.WalkOutcome) int {
	s := 0
	for _, r := range out.Refs {
		s += r.Cycles
	}
	return s
}

// TestDMTVirtMigrationWindowFallback holds a guest TEA migration open and
// asserts the 3-fetch virtualized walker degrades to its nested fallback:
// Fallback=true, machine PA still correct, the fallback counter moves, and
// cycle accounting stays monotone. Draining the migration restores the
// fast path.
func TestDMTVirtMigrationWindowFallback(t *testing.T) {
	e := newGradualVEnv(t, false, false)
	fb := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	w := &DMTVirtWalker{
		Guest: e.gmgr, GuestPool: e.guest.Pool,
		Host: e.vm.HostTEA, HostPool: e.vm.HostAS.Pool,
		Hier: e.hyp.Hier, Fallback: fb,
	}
	va := e.heap.Start + 7*mem.PageBytes4K + 0x123
	if pre := w.Walk(va); !pre.OK || pre.Fallback {
		t.Fatalf("pre-migration walk: ok=%v fallback=%v", pre.OK, pre.Fallback)
	}

	if !e.gmgr.StartMigration(e.heap.Start) {
		t.Fatal("StartMigration did not begin a migration")
	}
	fbBefore := w.FallbackWalks
	out := w.Walk(va)
	if !out.OK || !out.Fallback {
		t.Fatalf("mid-migration walk: ok=%v fallback=%v, want fallback hit", out.OK, out.Fallback)
	}
	if want := e.machineOf(t, va); out.PA != want {
		t.Fatalf("mid-migration PA %#x, want %#x", uint64(out.PA), uint64(want))
	}
	if w.FallbackWalks != fbBefore+1 {
		t.Fatalf("FallbackWalks %d, want %d", w.FallbackWalks, fbBefore+1)
	}
	if len(out.Refs) == 0 || out.Cycles < refCycleSum(out) {
		t.Fatalf("non-monotone cycle accounting: %d cycles for refs summing %d", out.Cycles, refCycleSum(out))
	}

	drainMigration(t, e.gmgr)
	post := w.Walk(va)
	if !post.OK || post.Fallback {
		t.Fatalf("post-migration walk: ok=%v fallback=%v, want fast path", post.OK, post.Fallback)
	}
	if post.SeqSteps != 3 {
		t.Fatalf("post-migration fast path took %d steps, want 3", post.SeqSteps)
	}
	if want := e.machineOf(t, va); post.PA != want {
		t.Fatalf("post-migration PA %#x, want %#x", uint64(post.PA), uint64(want))
	}
}

// TestPvDMTMigrationWindowFallback is the same window driven through the
// paravirtualized walker: the migration target is allocated via
// KVM_HC_ALLOC_TEA, walks degrade to the nested fallback without a single
// isolation fault, and the 2-step fast path returns after the drain.
func TestPvDMTMigrationWindowFallback(t *testing.T) {
	e := newGradualVEnv(t, false, true)
	fb := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	w := NewPvDMTWalker(e.vm, e.gmgr, e.guest.Pool, e.hyp.Hier, fb)
	va := e.heap.Start + 11*mem.PageBytes4K + 0x456
	if pre := w.Walk(va); !pre.OK || pre.Fallback {
		t.Fatalf("pre-migration walk: ok=%v fallback=%v", pre.OK, pre.Fallback)
	}

	hcBefore := e.hyp.Hypercalls
	if !e.gmgr.StartMigration(e.heap.Start) {
		t.Fatal("StartMigration did not begin a migration")
	}
	if e.hyp.Hypercalls == hcBefore {
		t.Fatal("migration target was not allocated through the hypercall backend")
	}
	fbBefore := w.FallbackWalks
	out := w.Walk(va)
	if !out.OK || !out.Fallback {
		t.Fatalf("mid-migration walk: ok=%v fallback=%v, want fallback hit", out.OK, out.Fallback)
	}
	if want := e.machineOf(t, va); out.PA != want {
		t.Fatalf("mid-migration PA %#x, want %#x", uint64(out.PA), uint64(want))
	}
	if w.FallbackWalks != fbBefore+1 {
		t.Fatalf("FallbackWalks %d, want %d", w.FallbackWalks, fbBefore+1)
	}
	if len(out.Refs) == 0 || out.Cycles < refCycleSum(out) {
		t.Fatalf("non-monotone cycle accounting: %d cycles for refs summing %d", out.Cycles, refCycleSum(out))
	}

	drainMigration(t, e.gmgr)
	post := w.Walk(va)
	if !post.OK || post.Fallback {
		t.Fatalf("post-migration walk: ok=%v fallback=%v, want fast path", post.OK, post.Fallback)
	}
	if post.SeqSteps != 2 {
		t.Fatalf("post-migration fast path took %d steps, want 2", post.SeqSteps)
	}
	if want := e.machineOf(t, va); post.PA != want {
		t.Fatalf("post-migration PA %#x, want %#x", uint64(post.PA), uint64(want))
	}
	if e.hyp.IsolationFaults != 0 {
		t.Fatalf("%d gTEA isolation faults during migration", e.hyp.IsolationFaults)
	}
}
