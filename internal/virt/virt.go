// Package virt models the virtualization stack of the paper: a KVM-style
// hypervisor with hardware-assisted nested paging (Figure 2), shadow paging
// (§2.1.2), nested virtualization (Figure 3), and the paravirtualized TEA
// machinery of pvDMT — the KVM_HC_ALLOC_TEA hypercall, the gTEA table, and
// its isolation rules (§4.5).
//
// Address spaces compose as in the paper: a guest process translates gVA →
// gPA through its own page table; the host translates gPA → hPA through a
// per-VM host table (EPT analogue). Under nested virtualization an L2
// physical address resolves through L1's table and then L0's. Every cache-
// hierarchy access uses the final machine (L0) physical address, because
// that is what a real cache sees.
package virt

import (
	"errors"
	"fmt"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tea"
)

// Hypervisor aggregates machine-wide state and exit accounting.
type Hypervisor struct {
	MachinePhys *phys.Allocator
	Hier        *cache.Hierarchy

	// Exit/hypercall accounting (§2.2, §6.3).
	Hypercalls      uint64
	VMExits         uint64
	ShadowSyncs     uint64
	IsolationFaults uint64
}

// NewHypervisor creates the machine: the L0 physical memory and the cache
// hierarchy.
func NewHypervisor(machineFrames int, hcfg cache.HierarchyConfig) (*Hypervisor, error) {
	hier, err := cache.NewHierarchy(hcfg)
	if err != nil {
		return nil, fmt.Errorf("virt: %w", err)
	}
	return &Hypervisor{
		MachinePhys: phys.New(0, machineFrames),
		Hier:        hier,
	}, nil
}

// VMConfig controls VM creation.
type VMConfig struct {
	Name string
	// RAMBytes is the guest-physical memory size.
	RAMBytes uint64
	// HostTHP backs guest RAM with 2 MiB host mappings.
	HostTHP bool
	// HostDMT maintains host VMA-to-TEA mappings (needed by DMT designs).
	HostDMT bool
	// ASID tags the host address space.
	ASID uint16
	// PTLevels selects the host page-table depth (mem.Levels4 default;
	// mem.Levels5 models the five-level extension of §2.1.1, where a 2D
	// walk grows to 35 references).
	PTLevels int
	// PvTEAWindowBytes reserves guest-physical address space for
	// host-allocated gTEAs (pvDMT); 0 disables the window.
	PvTEAWindowBytes uint64
}

// VM is one virtual machine: its guest-physical space and the host-side
// structures that map it. For an L2 VM, the "host" is the L1 hypervisor and
// Parent points at the L1 VM, forming the Figure 3 chain.
type VM struct {
	Name string
	Hyp  *Hypervisor

	// GuestPhys allocates guest-physical frames in [0, RAMBytes).
	GuestPhys *phys.Allocator
	// HostPhys is the allocator of the hosting level (L0's machine
	// allocator, or the L1 VM's GuestPhys for an L2 VM).
	HostPhys *phys.Allocator
	// HostAS maps guest-physical addresses (as VAs) to host-physical
	// addresses: the nested page table (hPT / EPT analogue).
	HostAS *kernel.AddressSpace
	// HostTEA maintains the hVMA-to-hTEA mappings over HostAS (§3.1:
	// "an hVMA is the hypervisor's VMA corresponding to the guest
	// physical address space").
	HostTEA *tea.Manager
	// RAMVMA is the host VMA representing guest RAM.
	RAMVMA *kernel.VMA
	// TEAVMA is the host VMA representing the pv-TEA window.
	TEAVMA *kernel.VMA

	// Parent is the VM hosting this VM's host level (nil when the host
	// is the machine).
	Parent *VM

	// GTEA is the gTEA table for this VM (§4.5.2): host-maintained,
	// read-only to the guest.
	GTEA *GTEATable

	teaWindowNext mem.VAddr
	teaWindowEnd  mem.VAddr
}

// NewVM creates a VM hosted directly on the machine (single-level
// virtualization).
func (h *Hypervisor) NewVM(cfg VMConfig) (*VM, error) {
	return newVM(h, nil, h.MachinePhys, cfg)
}

// NewNestedVM creates a VM hosted *inside* parent — parent's guest plays
// the L1 hypervisor and the new VM is the L2 guest (§2.1.3).
func (h *Hypervisor) NewNestedVM(parent *VM, cfg VMConfig) (*VM, error) {
	return newVM(h, parent, parent.GuestPhys, cfg)
}

func newVM(h *Hypervisor, parent *VM, hostPhys *phys.Allocator, cfg VMConfig) (*VM, error) {
	if !mem.IsAligned(cfg.RAMBytes, mem.PageBytes2M) {
		return nil, errors.New("virt: RAMBytes must be 2 MiB-aligned")
	}
	hostAS, err := kernel.NewAddressSpace(hostPhys, kernel.Config{THP: cfg.HostTHP, ASID: cfg.ASID, Levels: cfg.PTLevels})
	if err != nil {
		return nil, err
	}
	vm := &VM{
		Name:      cfg.Name,
		Hyp:       h,
		GuestPhys: phys.New(0, int(cfg.RAMBytes>>mem.PageShift4K)),
		HostPhys:  hostPhys,
		HostAS:    hostAS,
		Parent:    parent,
		GTEA:      NewGTEATable(),
	}
	if cfg.HostDMT {
		var backend tea.Backend
		if parent == nil {
			backend = tea.NewPhysBackend(hostPhys)
		} else {
			// The L1 hypervisor's own DMT-Linux allocates its TEAs via
			// the cascaded hypercall so they are L0-contiguous (§4.5.3).
			backend = NewHypercallBackend(parent)
		}
		vm.HostTEA = tea.NewManager(hostAS, backend, tea.DefaultConfig(cfg.HostTHP))
		hostAS.SetHooks(vm.HostTEA)
	}
	ram, err := hostAS.MMap(0, cfg.RAMBytes, kernel.VMAAnon, "guest-ram")
	if err != nil {
		return nil, err
	}
	vm.RAMVMA = ram
	if err := hostAS.Populate(ram); err != nil {
		return nil, fmt.Errorf("virt: backing guest RAM: %w", err)
	}
	if cfg.PvTEAWindowBytes > 0 {
		win := mem.AlignUp(mem.VAddr(cfg.RAMBytes), mem.PageBytes2M)
		teaVMA, err := hostAS.MMap(win, cfg.PvTEAWindowBytes, kernel.VMAAnon, "pv-tea-window")
		if err != nil {
			return nil, err
		}
		vm.TEAVMA = teaVMA
		vm.teaWindowNext = win
		vm.teaWindowEnd = win + mem.VAddr(cfg.PvTEAWindowBytes)
	}
	return vm, nil
}

// Destroy tears down the VM's host-side structures: any gTEAs the guest
// did not release (a crashed guest kernel never issues its FreeTEA
// hypercalls), the pv-TEA window and guest-RAM VMAs, and finally the host
// page-table root frame. Guest-internal state (processes, the guest's own
// allocator) needs no teardown — it lives entirely inside guest RAM, which
// is returned wholesale. After Destroy the VM must not be used.
func (vm *VM) Destroy() error {
	for id := 1; id <= len(vm.GTEA.entries); id++ {
		e := vm.GTEA.entries[id-1]
		if e.Frames == 0 {
			continue
		}
		vm.FreePvTEA(tea.Region{NodeBase: e.GPABase, FetchBase: e.MachineBase, Frames: e.Frames, ID: id})
	}
	if vm.TEAVMA != nil {
		if err := vm.HostAS.MUnmap(vm.TEAVMA); err != nil {
			return err
		}
		vm.TEAVMA = nil
	}
	if vm.RAMVMA != nil {
		if err := vm.HostAS.MUnmap(vm.RAMVMA); err != nil {
			return err
		}
		vm.RAMVMA = nil
	}
	vm.HostPhys.FreeFrame(vm.HostAS.PT.RootPA())
	return nil
}

// MachineAddr resolves a guest-physical address of this VM to the final
// machine (L0) physical address by composing the host tables downward.
func (vm *VM) MachineAddr(gpa mem.PAddr) (mem.PAddr, bool) {
	hpa, _, ok := vm.HostAS.PT.Lookup(mem.VAddr(gpa))
	if !ok {
		return 0, false
	}
	if vm.Parent == nil {
		return hpa, true
	}
	return vm.Parent.MachineAddr(hpa)
}

// Depth returns the virtualization depth: 1 for a directly-hosted VM, 2
// for an L2 guest, etc.
func (vm *VM) Depth() int {
	if vm.Parent == nil {
		return 1
	}
	return vm.Parent.Depth() + 1
}

// NewGuestProcess creates a process address space inside the VM: gVA → gPA
// over the guest's physical memory.
func (vm *VM) NewGuestProcess(thp bool, asid uint16) (*kernel.AddressSpace, error) {
	return kernel.NewAddressSpace(vm.GuestPhys, kernel.Config{THP: thp, ASID: asid})
}

// NewGuestProcessCfg creates a guest process with full kernel configuration
// control (page-table depth, THP, ASID).
func (vm *VM) NewGuestProcessCfg(cfg kernel.Config) (*kernel.AddressSpace, error) {
	return kernel.NewAddressSpace(vm.GuestPhys, cfg)
}
