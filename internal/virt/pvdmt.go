package virt

import (
	"fmt"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tea"
)

// PvLevel is one stage of the pvDMT translation chain (§3.1, §3.2): a TEA
// register file translating this level's addresses to the next level's,
// the page-table pool holding the PTE contents, and — for paravirtualized
// levels — the gTEA table that both resolves fetch addresses back to node
// addresses and enforces isolation (§4.5.2).
type PvLevel struct {
	Name string
	Mgr  *tea.Manager
	Pool *pagetable.Pool
	// Table is nil for levels whose TEAs live directly in machine memory
	// (the innermost host level); otherwise fetch addresses are machine
	// addresses validated and translated through the gTEA table.
	Table *GTEATable
}

// PvDMTWalker is paravirtualized DMT: exactly one memory reference per
// virtualization level — two for single-level virtualization (Figure 8),
// three for nested virtualization (Figure 9). All TEAs are contiguous in
// machine physical memory, so every fetch address is a machine address and
// no intermediate translation is needed.
type PvDMTWalker struct {
	Levels   []PvLevel
	Hier     *cache.Hierarchy
	Hyp      *Hypervisor
	Fallback core.Walker
	// Sink, when set, collects refs for the whole fetch+fallback chain
	// (share it with Fallback); outcomes then alias the sink's buffer.
	Sink *core.RefSink

	RegisterHits  uint64
	FallbackWalks uint64

	g fetchGroup // per-walker scratch, reused across fan-outs
}

// Name implements core.Walker.
func (w *PvDMTWalker) Name() string {
	if len(w.Levels) > 2 {
		return "pvDMT-nested"
	}
	return "pvDMT"
}

// EmitCounters implements core.CounterSource: the paravirtual fetcher's
// hit/fallback split, each level's TEA-manager activity, then the nested
// baseline it falls back to.
func (w *PvDMTWalker) EmitCounters(emit func(name string, value uint64)) {
	emit("pvdmt.register_hits", w.RegisterHits)
	emit("pvdmt.fallback_walks", w.FallbackWalks)
	for i, lvl := range w.Levels {
		if lvl.Mgr == nil {
			continue
		}
		prefix := fmt.Sprintf("pvdmt.l%d.tea.", i)
		s := &lvl.Mgr.Stats
		emit(prefix+"migrations", s.Migrations)
		emit(prefix+"splits", s.Splits)
		emit(prefix+"alloc_failures", s.AllocFailures)
	}
	if w.Fallback != nil {
		core.EmitChained(w.Fallback, emit)
	}
}

// Walk implements core.Walker.
func (w *PvDMTWalker) Walk(va mem.VAddr) core.WalkOutcome {
	out := core.WalkOutcome{Cycles: core.FetchLogicCycles}
	addr := uint64(va) // current address in the current level's space
	var size mem.PageSize
	for li := range w.Levels {
		lv := &w.Levels[li]
		reg := lv.Mgr.Lookup(mem.VAddr(addr))
		if reg == nil {
			return w.fallback(va, out)
		}
		g := &w.g
		g.reset(w.Sink)
		next := uint64(0)
		found := false
		for _, s := range pvSizes {
			if !reg.Covered[s] {
				continue
			}
			fetchAddr := reg.PTEAddrAt(s, mem.VAddr(addr))
			nodeAddr := fetchAddr
			if lv.Table != nil {
				var err error
				nodeAddr, err = lv.Table.Resolve(reg.GTEAID[s], fetchAddr)
				if err != nil {
					// Out-of-bounds or invalid gTEA ID: the hardware
					// raises a page fault in the host (§4.5.2).
					w.Hyp.IsolationFaults++
					out.OK = false
					if w.Sink != nil {
						out.Refs = w.Sink.Refs()
					}
					return out
				}
			}
			r := w.Hier.Access(fetchAddr)
			g.add(core.MemRef{Addr: fetchAddr, Cycles: r.Cycles, Served: r.Served, Level: s.LeafLevel(), Dim: lv.Name})
			pte, ok := lv.Pool.ReadPTE(nodeAddr)
			if ok && pteLeafValid(pte, s) {
				next = uint64(pte.Frame()) + mem.PageOffset(mem.VAddr(addr), s)
				if li == 0 {
					size = s
				}
				found = true
				g.markMatched()
			}
		}
		g.commit(&out)
		if !found {
			return w.fallback(va, out)
		}
		addr = next
	}
	out.PA = mem.PAddr(addr)
	out.Size = size
	out.OK = true
	w.RegisterHits++
	if w.Sink != nil {
		out.Refs = w.Sink.Refs()
	}
	return out
}

func (w *PvDMTWalker) fallback(va mem.VAddr, partial core.WalkOutcome) core.WalkOutcome {
	w.FallbackWalks++
	fb := w.Fallback.Walk(va)
	fb.Cycles += partial.Cycles
	if w.Sink != nil {
		// The shared sink already holds prefix + fallback refs in order.
		fb.Refs = w.Sink.Refs()
	} else {
		fb.Refs = mergeRefs(partial.Refs, fb.Refs)
	}
	fb.SeqSteps += partial.SeqSteps
	fb.Fallback = true
	return fb
}

// Probe reports whether the pvDMT chain would serve va end to end — every
// level's register matches, gTEA resolution succeeds, and a valid leaf is
// found — without touching the cache hierarchy or any statistics.
func (w *PvDMTWalker) Probe(va mem.VAddr) bool {
	addr := uint64(va)
	for li := range w.Levels {
		lv := &w.Levels[li]
		reg := lv.Mgr.Lookup(mem.VAddr(addr))
		if reg == nil {
			return false
		}
		next := uint64(0)
		found := false
		for _, s := range pvSizes {
			if !reg.Covered[s] {
				continue
			}
			fetchAddr := reg.PTEAddrAt(s, mem.VAddr(addr))
			nodeAddr := fetchAddr
			if lv.Table != nil {
				var err error
				nodeAddr, err = lv.Table.Resolve(reg.GTEAID[s], fetchAddr)
				if err != nil {
					return false
				}
			}
			pte, ok := lv.Pool.ReadPTE(nodeAddr)
			if ok && pteLeafValid(pte, s) {
				next = uint64(pte.Frame()) + mem.PageOffset(mem.VAddr(addr), s)
				found = true
			}
		}
		if !found {
			return false
		}
		addr = next
	}
	return true
}

// Coverage returns the fraction of walks served without fallback.
func (w *PvDMTWalker) Coverage() float64 {
	total := w.RegisterHits + w.FallbackWalks
	if total == 0 {
		return 0
	}
	return float64(w.RegisterHits) / float64(total)
}

// CoverageCounts returns the raw hit/total counters behind Coverage; shard
// results merge these integers so parallel runs reproduce serial coverage
// bit-exactly.
func (w *PvDMTWalker) CoverageCounts() (hits, total uint64) {
	return w.RegisterHits, w.RegisterHits + w.FallbackWalks
}

var _ core.Walker = (*PvDMTWalker)(nil)

// NewPvDMTWalker assembles the single-level pvDMT chain: the guest process
// level (gTEAs machine-contiguous via hypercall) followed by the host level.
func NewPvDMTWalker(vm *VM, guestMgr *tea.Manager, guestPool *pagetable.Pool, h *cache.Hierarchy, fallback core.Walker) *PvDMTWalker {
	return &PvDMTWalker{
		Levels: []PvLevel{
			{Name: "g", Mgr: guestMgr, Pool: guestPool, Table: vm.GTEA},
			{Name: "h", Mgr: vm.HostTEA, Pool: vm.HostAS.Pool},
		},
		Hier:     h,
		Hyp:      vm.Hyp,
		Fallback: fallback,
	}
}

// NewPvDMTNestedWalker assembles the three-level chain of Figure 9 for a
// process in an L2 guest: L2VA → L2PA → L1PA → L0PA, one fetch per level.
func NewPvDMTNestedWalker(l2 *VM, guestMgr *tea.Manager, guestPool *pagetable.Pool, h *cache.Hierarchy, fallback core.Walker) *PvDMTWalker {
	return &PvDMTWalker{
		Levels: []PvLevel{
			{Name: "L2", Mgr: guestMgr, Pool: guestPool, Table: l2.GTEA},
			{Name: "L1", Mgr: l2.HostTEA, Pool: l2.HostAS.Pool, Table: l2.Parent.GTEA},
			{Name: "L0", Mgr: l2.Parent.HostTEA, Pool: l2.Parent.HostAS.Pool},
		},
		Hier:     h,
		Hyp:      l2.Hyp,
		Fallback: fallback,
	}
}

var _ core.BatchWalker = (*PvDMTWalker)(nil)

// WalkBatch runs a batch of translations through the canonical loop against
// the concrete walker, keeping pvDMT's guest translation-table lines and the
// host fallback's cache sets hot across consecutive ops.
func (w *PvDMTWalker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}
