package virt

import (
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tea"
)

// TestMixedPageSizesAcrossDimensions checks the 2D walker when the guest
// uses 4K pages but the host backs RAM with 2M mappings (the common KVM
// deployment): walk depth shortens on the host side only and the combined
// translation stays correct at 4K granularity.
func TestMixedPageSizesAcrossDimensions(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	vm, err := hyp.NewVM(VMConfig{Name: "vm", RAMBytes: 64 << 20, HostTHP: true, ASID: 3})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := vm.NewGuestProcess(false /* guest 4K */, 1)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := guest.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	w := NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 3)
	w.DisableMMUCaches()
	out := w.Walk(heap.Start + 0x6123)
	if !out.OK {
		t.Fatal("mixed walk faulted")
	}
	if out.Size != mem.Size4K {
		t.Fatalf("combined size = %v, want guest granularity 4K", out.Size)
	}
	// 4 guest levels x (3-level host walks + fetch) + 3 final = 19.
	if out.SeqSteps != 19 {
		t.Fatalf("mixed 2D walk took %d refs, want 19 (host walks are 3-deep under 2M backing)", out.SeqSteps)
	}
	gpa, _, _ := guest.PT.Lookup(heap.Start + 0x6123)
	want, _ := vm.MachineAddr(gpa)
	if out.PA != want {
		t.Fatal("mixed walk PA mismatch")
	}
}

// TestPvDMTGuest4KHost2M checks pvDMT with asymmetric page sizes: guest 4K
// TEAs, host 2M TEAs — still exactly two references.
func TestPvDMTGuest4KHost2M(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	vm, err := hyp.NewVM(VMConfig{
		Name: "vm", RAMBytes: 64 << 20, HostTHP: true, HostDMT: true,
		ASID: 3, PvTEAWindowBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := vm.NewGuestProcess(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	gmgr := tea.NewManager(guest, NewHypercallBackend(vm), tea.DefaultConfig(false))
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	fb := NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 3)
	w := NewPvDMTWalker(vm, gmgr, guest.Pool, hyp.Hier, fb)
	out := w.Walk(heap.Start + 0x2123)
	if !out.OK || out.Fallback {
		t.Fatalf("asymmetric pvDMT: ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if out.SeqSteps != 2 {
		t.Fatalf("asymmetric pvDMT took %d refs, want 2", out.SeqSteps)
	}
	gpa, _, _ := guest.PT.Lookup(heap.Start + 0x2123)
	want, _ := vm.MachineAddr(gpa)
	if out.PA != want {
		t.Fatal("asymmetric pvDMT PA mismatch")
	}
}

// TestHypercallWindowExhaustion verifies graceful failure when the pv-TEA
// window runs out: the hypercall reports ErrNoTEA and the manager's
// mapping creation degrades to the fallback path instead of corrupting
// state.
func TestHypercallWindowExhaustion(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	vm, err := hyp.NewVM(VMConfig{
		Name: "vm", RAMBytes: 64 << 20, HostDMT: true,
		ASID: 3, PvTEAWindowBytes: 2 << 20, // tiny window: 512 TEA frames
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, fail := 0, 0
	for i := 0; i < 8; i++ {
		if _, err := vm.AllocPvTEA(128); err != nil {
			fail++
		} else {
			ok++
		}
	}
	if ok != 4 || fail != 4 {
		t.Fatalf("window exhaustion: ok=%d fail=%d, want 4/4", ok, fail)
	}
	// A guest whose TEA allocations all fail must still run correctly
	// via the legacy walker (coverage 0, correctness preserved).
	guest, err := vm.NewGuestProcess(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	gmgr := tea.NewManager(guest, NewHypercallBackend(vm), tea.DefaultConfig(false))
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(0x40000000, 4<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	fb := NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 3)
	w := NewPvDMTWalker(vm, gmgr, guest.Pool, hyp.Hier, fb)
	out := w.Walk(heap.Start + 0x1123)
	if !out.OK {
		t.Fatal("translation must still succeed via fallback")
	}
	gpa, _, _ := guest.PT.Lookup(heap.Start + 0x1123)
	want, _ := vm.MachineAddr(gpa)
	if out.PA != want {
		t.Fatal("fallback PA mismatch")
	}
}

// TestMapResident verifies the vm_insert_pages analogue: resident frames
// are not returned to the address space's allocator on unmap.
func TestMapResident(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	vm, err := hyp.NewVM(VMConfig{Name: "vm", RAMBytes: 32 << 20, ASID: 3, PvTEAWindowBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	hostFree := hyp.MachinePhys.FreeFrames()
	region, err := vm.AllocPvTEA(16)
	if err != nil {
		t.Fatal(err)
	}
	used := hostFree - hyp.MachinePhys.FreeFrames()
	if used < 16 || used > 20 {
		t.Fatalf("host frames consumed = %d, want 16 TEA frames (+ a few host PT nodes)", used)
	}
	// The window mapping resolves every page to the host region.
	for i := 0; i < region.Frames; i++ {
		gpa := region.NodeBase + mem.PAddr(i<<mem.PageShift4K)
		m, ok := vm.MachineAddr(gpa)
		if !ok || m != region.FetchBase+mem.PAddr(i<<mem.PageShift4K) {
			t.Fatalf("window page %d resolves to %#x", i, uint64(m))
		}
	}
}

// TestCrossVMGTEAIsolation verifies that a register forged to carry another
// VM's gTEA ID cannot read that VM's TEAs: IDs resolve only against the
// owning VM's table (per-VM gTEA tables, §4.5.2), and out-of-table IDs
// fault.
func TestCrossVMGTEAIsolation(t *testing.T) {
	hyp := mustHyp(t, 1<<17)
	mkVM := func(name string, asid uint16) (*VM, *kernel.AddressSpace, *tea.Manager, *kernel.VMA) {
		vm, err := hyp.NewVM(VMConfig{Name: name, RAMBytes: 64 << 20, HostDMT: true, ASID: asid, PvTEAWindowBytes: 16 << 20})
		if err != nil {
			t.Fatal(err)
		}
		guest, err := vm.NewGuestProcess(false, 1)
		if err != nil {
			t.Fatal(err)
		}
		mgr := tea.NewManager(guest, NewHypercallBackend(vm), tea.DefaultConfig(false))
		guest.SetHooks(mgr)
		heap, err := guest.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
		if err != nil {
			t.Fatal(err)
		}
		if err := guest.Populate(heap); err != nil {
			t.Fatal(err)
		}
		return vm, guest, mgr, heap
	}
	vm1, _, mgr1, _ := mkVM("vm1", 10)
	vm2, _, _, _ := mkVM("vm2", 20)

	// vm1's TEA region resolves in vm1's table...
	reg := mgr1.Registers()[0]
	fetch := reg.PTEAddr(mem.Size4K)(reg.Base)
	if _, err := vm1.GTEA.Resolve(reg.GTEAID[mem.Size4K], fetch); err != nil {
		t.Fatalf("own-table resolve failed: %v", err)
	}
	// ...but the same (ID, address) against vm2's table must fault:
	// either the ID is out of range or the bounds don't contain vm1's
	// machine region.
	if gpa, err := vm2.GTEA.Resolve(reg.GTEAID[mem.Size4K], fetch); err == nil {
		// The only non-fault outcome allowed is a *different* region of
		// vm2's own (no cross-VM leakage of vm1's PTE bytes): the
		// resolved gPA must not map back to vm1's machine region.
		m, ok := vm2.MachineAddr(gpa)
		if ok && m == fetch {
			t.Fatal("vm2's table resolved vm1's TEA bytes — cross-VM leak")
		}
	}
}

// TestNoCopyCoherenceThroughMigration verifies the §3 no-copy property end
// to end: when the host migrates the machine frame backing a guest page
// (rewriting the hPTE in place), the very next pvDMT walk observes the new
// frame — there is no stale TEA-side copy to invalidate.
func TestNoCopyCoherenceThroughMigration(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	vm, err := hyp.NewVM(VMConfig{
		Name: "vm", RAMBytes: 64 << 20, HostDMT: true,
		ASID: 5, PvTEAWindowBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := vm.NewGuestProcess(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	gmgr := tea.NewManager(guest, NewHypercallBackend(vm), tea.DefaultConfig(false))
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	fb := NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 5)
	w := NewPvDMTWalker(vm, gmgr, guest.Pool, hyp.Hier, fb)

	va := heap.Start + 0x4123
	before := w.Walk(va)
	if !before.OK {
		t.Fatal("initial walk failed")
	}
	// Host-side migration of the machine frame backing this guest page.
	oldFrame := mem.AlignDownP(before.PA, mem.PageBytes4K)
	newFrame, err := hyp.MachinePhys.AllocFrame(phys.KindMovable)
	if err != nil {
		t.Fatal(err)
	}
	if !vm.HostAS.Relocate(oldFrame, newFrame) {
		t.Fatal("host refused to migrate the frame")
	}
	after := w.Walk(va)
	if !after.OK || after.Fallback {
		t.Fatal("post-migration walk failed")
	}
	if mem.AlignDownP(after.PA, mem.PageBytes4K) != newFrame {
		t.Fatalf("pvDMT still sees the old frame %#x (want %#x): stale copy!",
			uint64(after.PA), uint64(newFrame))
	}
	// And the guest-side analogue: the guest migrates a guest-physical
	// frame; the gPTE is rewritten in the TEA-resident node, visible at
	// the next fetch.
	gOld, _, _ := guest.PT.Lookup(va)
	gOldFrame := mem.AlignDownP(gOld, mem.PageBytes4K)
	gNew, err := vm.GuestPhys.AllocFrame(phys.KindMovable)
	if err != nil {
		t.Fatal(err)
	}
	if !guest.Relocate(gOldFrame, gNew) {
		t.Fatal("guest refused to migrate the frame")
	}
	final := w.Walk(va)
	wantMachine, ok := vm.MachineAddr(gNew + mem.PAddr(mem.PageOffset(va, mem.Size4K)))
	if !ok {
		t.Fatal("new guest frame unbacked")
	}
	if !final.OK || final.PA != wantMachine {
		t.Fatalf("pvDMT PA %#x after guest migration, want %#x", uint64(final.PA), uint64(wantMachine))
	}
}
