package virt

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tea"
	"dmt/internal/tlb"
)

const (
	testMachineFrames = 1 << 17 // 512 MiB machine memory
	testRAMBytes      = 128 << 20
	testWindowBytes   = 16 << 20
)

type venv struct {
	hyp   *Hypervisor
	vm    *VM
	guest *kernel.AddressSpace
	gmgr  *tea.Manager
	heap  *kernel.VMA
}

// mustHyp builds a hypervisor with the default cache configuration.
func mustHyp(t testing.TB, frames int) *Hypervisor {
	t.Helper()
	hyp, err := NewHypervisor(frames, cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return hyp
}

// newVEnv builds a single-level virtualized environment with a populated
// guest heap. pv selects the hypercall TEA backend for the guest.
func newVEnv(t *testing.T, thp, pv bool) *venv {
	t.Helper()
	hyp := mustHyp(t, testMachineFrames)
	vm, err := hyp.NewVM(VMConfig{
		Name: "vm0", RAMBytes: testRAMBytes, HostTHP: thp, HostDMT: true,
		ASID: 100, PvTEAWindowBytes: testWindowBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := vm.NewGuestProcess(thp, 1)
	if err != nil {
		t.Fatal(err)
	}
	var backend tea.Backend
	if pv {
		backend = NewHypercallBackend(vm)
	} else {
		backend = tea.NewPhysBackend(vm.GuestPhys)
	}
	gmgr := tea.NewManager(guest, backend, tea.DefaultConfig(thp))
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(0x40000000, 32<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	return &venv{hyp: hyp, vm: vm, guest: guest, gmgr: gmgr, heap: heap}
}

// machineOf resolves a guest virtual address to its machine address by
// composing the page tables directly (the ground truth).
func (e *venv) machineOf(t *testing.T, gva mem.VAddr) mem.PAddr {
	t.Helper()
	gpa, _, ok := e.guest.PT.Lookup(gva)
	if !ok {
		t.Fatalf("gVA %#x unmapped in guest", uint64(gva))
	}
	m, ok := e.vm.MachineAddr(gpa)
	if !ok {
		t.Fatalf("gPA %#x unmapped in host", uint64(gpa))
	}
	return m
}

func TestGuestRAMFullyBacked(t *testing.T) {
	e := newVEnv(t, false, false)
	for gpa := mem.PAddr(0); gpa < testRAMBytes; gpa += 16 << 20 {
		if _, ok := e.vm.MachineAddr(gpa); !ok {
			t.Fatalf("gPA %#x not backed", uint64(gpa))
		}
	}
}

func TestNestedWalk24Steps(t *testing.T) {
	e := newVEnv(t, false, false)
	w := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	w.DisableMMUCaches() // expose the architectural worst case
	va := e.heap.Start + 0x5123
	out := w.Walk(va)
	if !out.OK {
		t.Fatal("nested walk faulted")
	}
	if out.SeqSteps != 24 {
		t.Fatalf("cold 2D walk took %d refs, want 24 (Figure 2)", out.SeqSteps)
	}
	if out.PA != e.machineOf(t, va) {
		t.Fatalf("2D walk PA %#x != ground truth %#x", uint64(out.PA), uint64(e.machineOf(t, va)))
	}
	// Dim pattern: 4 host + 1 guest, repeated, then 4 host.
	if out.Refs[0].Dim != "h" || out.Refs[4].Dim != "g" || out.Refs[23].Dim != "h" {
		t.Fatal("2D walk dimension pattern broken")
	}
	// Steps numbered 1..24.
	for i, r := range out.Refs {
		if r.Step != i+1 {
			t.Fatalf("ref %d numbered %d", i, r.Step)
		}
	}
}

func TestNestedWalkCachesShortenRepeats(t *testing.T) {
	e := newVEnv(t, false, false)
	w := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	w.Walk(e.heap.Start)
	out := w.Walk(e.heap.Start + mem.PageBytes4K)
	if out.SeqSteps >= 24 {
		t.Fatalf("warm 2D walk still took %d refs", out.SeqSteps)
	}
	if out.SeqSteps < 1 {
		t.Fatal("walk must touch at least the leaf")
	}
}

func TestNestedWalkTHP(t *testing.T) {
	e := newVEnv(t, true, false)
	w := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	va := e.heap.Start + 0x212345
	out := w.Walk(va)
	if !out.OK || out.Size != mem.Size2M {
		t.Fatalf("THP 2D walk: ok=%v size=%v", out.OK, out.Size)
	}
	// Guest dim is 3 levels, host 2M-backed walks are 3 deep: 3*(3+1)+3=15.
	if out.SeqSteps >= 24 {
		t.Fatalf("THP 2D walk took %d refs, expected fewer than 4K's 24", out.SeqSteps)
	}
	if out.PA != e.machineOf(t, va) {
		t.Fatal("THP 2D walk PA mismatch")
	}
}

func TestShadowVAWalk(t *testing.T) {
	e := newVEnv(t, false, false)
	spt, err := BuildShadowVA(e.vm, e.guest)
	if err != nil {
		t.Fatal(err)
	}
	if e.hyp.ShadowSyncs == 0 {
		t.Fatal("shadow build recorded no syncs")
	}
	w := core.NewRadixWalker(spt, e.hyp.Hier, tlb.NewPWC(), 1)
	va := e.heap.Start + 0x7123
	out := w.Walk(va)
	if !out.OK || out.SeqSteps != 4 {
		t.Fatalf("shadow walk: ok=%v steps=%d, want 4 (native walk)", out.OK, out.SeqSteps)
	}
	if out.PA != e.machineOf(t, va) {
		t.Fatal("shadow walk PA mismatch")
	}
}

func TestShadowPreservesHugePagesWhenContiguous(t *testing.T) {
	e := newVEnv(t, true, false)
	spt, err := BuildShadowVA(e.vm, e.guest)
	if err != nil {
		t.Fatal(err)
	}
	_, size, ok := spt.Lookup(e.heap.Start)
	if !ok {
		t.Fatal("shadow misses the heap")
	}
	// With THP host backing, guest 2M pages should be machine-contiguous
	// and stay huge in the shadow.
	if size != mem.Size2M {
		t.Fatalf("shadow leaf size = %v, want 2M", size)
	}
}

func TestDMTVirtThreeRefs(t *testing.T) {
	e := newVEnv(t, false, false)
	fb := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	w := &DMTVirtWalker{
		Guest: e.gmgr, GuestPool: e.guest.Pool,
		Host: e.vm.HostTEA, HostPool: e.vm.HostAS.Pool,
		Hier: e.hyp.Hier, Fallback: fb,
	}
	va := e.heap.Start + 0x9123
	out := w.Walk(va)
	if !out.OK || out.Fallback {
		t.Fatalf("DMT-v walk: ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if out.SeqSteps != 3 {
		t.Fatalf("DMT-v took %d sequential steps, want 3 (§3.1)", out.SeqSteps)
	}
	if out.PA != e.machineOf(t, va) {
		t.Fatal("DMT-v PA mismatch")
	}
}

func TestPvDMTTwoRefs(t *testing.T) {
	e := newVEnv(t, false, true)
	fb := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	w := NewPvDMTWalker(e.vm, e.gmgr, e.guest.Pool, e.hyp.Hier, fb)
	va := e.heap.Start + 0xb123
	out := w.Walk(va)
	if !out.OK || out.Fallback {
		t.Fatalf("pvDMT walk: ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if out.SeqSteps != 2 {
		t.Fatalf("pvDMT took %d sequential steps, want 2 (§3.1)", out.SeqSteps)
	}
	if out.PA != e.machineOf(t, va) {
		t.Fatal("pvDMT PA mismatch")
	}
	if e.hyp.Hypercalls == 0 {
		t.Fatal("no KVM_HC_ALLOC_TEA hypercalls recorded")
	}
}

func TestPvDMTTHP(t *testing.T) {
	e := newVEnv(t, true, true)
	fb := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	w := NewPvDMTWalker(e.vm, e.gmgr, e.guest.Pool, e.hyp.Hier, fb)
	va := e.heap.Start + 0x312345
	out := w.Walk(va)
	if !out.OK || out.Fallback {
		t.Fatalf("pvDMT THP walk: ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if out.SeqSteps != 2 {
		t.Fatalf("pvDMT THP took %d steps, want 2", out.SeqSteps)
	}
	if out.Size != mem.Size2M {
		t.Fatalf("size = %v, want 2M", out.Size)
	}
	if len(out.Refs) <= 2 {
		t.Fatalf("THP fan-out missing: %d refs for 2 steps", len(out.Refs))
	}
	if out.PA != e.machineOf(t, va) {
		t.Fatal("pvDMT THP PA mismatch")
	}
}

func TestPvDMTAgainstNestedAgreement(t *testing.T) {
	e := newVEnv(t, false, true)
	nested := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	pv := NewPvDMTWalker(e.vm, e.gmgr, e.guest.Pool, e.hyp.Hier, nested)
	for off := uint64(0); off < e.heap.Size(); off += 97 << 12 {
		va := e.heap.Start + mem.VAddr(off)
		a, b := pv.Walk(va), nested.Walk(va)
		if !a.OK || !b.OK || a.PA != b.PA {
			t.Fatalf("divergence at %#x: pv=%#x nested=%#x", uint64(va), uint64(a.PA), uint64(b.PA))
		}
	}
	if pv.Coverage() != 1.0 {
		t.Fatalf("pvDMT coverage = %.3f, want 1.0", pv.Coverage())
	}
}

func TestGTEAIsolation(t *testing.T) {
	e := newVEnv(t, false, true)
	// Forge a register pointing outside any gTEA: simulate a malicious
	// guest by resolving with a bad ID and an out-of-bounds address.
	if _, err := e.vm.GTEA.Resolve(999, 0x1000); err != ErrIsolation {
		t.Fatalf("invalid ID: err = %v, want ErrIsolation", err)
	}
	if e.vm.GTEA.Len() == 0 {
		t.Fatal("no gTEAs registered")
	}
	// Out-of-bounds within a valid ID.
	ent := e.vm.GTEA.entries[0]
	bad := ent.MachineBase + mem.PAddr(uint64(ent.Frames)<<mem.PageShift4K)
	if _, err := e.vm.GTEA.Resolve(1, bad); err != ErrIsolation {
		t.Fatalf("out-of-bounds: err = %v, want ErrIsolation", err)
	}
	// In-bounds resolves to the right gPA.
	gpa, err := e.vm.GTEA.Resolve(1, ent.MachineBase+0x100)
	if err != nil || gpa != ent.GPABase+0x100 {
		t.Fatalf("in-bounds resolve = (%#x, %v)", uint64(gpa), err)
	}
}

func TestPvDMTIsolationFaultOnForgedRegister(t *testing.T) {
	e := newVEnv(t, false, true)
	fb := NewNestedWalker(e.guest.PT, e.vm.HostAS.PT, e.hyp.Hier, 1)
	w := NewPvDMTWalker(e.vm, e.gmgr, e.guest.Pool, e.hyp.Hier, fb)
	// Malicious guest: point the register's gTEA ID at a bogus entry.
	regs := e.gmgr.Registers()
	for i := range regs {
		if regs[i].Present {
			regs[i].GTEAID[mem.Size4K] = 999
			break
		}
	}
	out := w.Walk(e.heap.Start)
	if out.OK {
		t.Fatal("forged register produced a successful translation")
	}
	if e.hyp.IsolationFaults == 0 {
		t.Fatal("isolation fault not raised")
	}
}

// ---- nested virtualization ----

type nenv struct {
	hyp   *Hypervisor
	l1    *VM
	l2    *VM
	guest *kernel.AddressSpace
	gmgr  *tea.Manager
	heap  *kernel.VMA
}

func newNestedEnv(t *testing.T, thp bool) *nenv {
	t.Helper()
	hyp := mustHyp(t, 1<<17)
	l1, err := hyp.NewVM(VMConfig{Name: "L1", RAMBytes: 256 << 20, HostTHP: thp, HostDMT: true, ASID: 100, PvTEAWindowBytes: testWindowBytes})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := hyp.NewNestedVM(l1, VMConfig{Name: "L2", RAMBytes: 96 << 20, HostTHP: thp, HostDMT: true, ASID: 101, PvTEAWindowBytes: testWindowBytes})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := l2.NewGuestProcess(thp, 1)
	if err != nil {
		t.Fatal(err)
	}
	gmgr := tea.NewManager(guest, NewHypercallBackend(l2), tea.DefaultConfig(thp))
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(0x40000000, 16<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	return &nenv{hyp: hyp, l1: l1, l2: l2, guest: guest, gmgr: gmgr, heap: heap}
}

func (e *nenv) machineOf(t *testing.T, va mem.VAddr) mem.PAddr {
	t.Helper()
	l2pa, _, ok := e.guest.PT.Lookup(va)
	if !ok {
		t.Fatalf("va %#x unmapped in L2 process", uint64(va))
	}
	m, ok := e.l2.MachineAddr(l2pa)
	if !ok {
		t.Fatalf("L2PA %#x unresolvable", uint64(l2pa))
	}
	return m
}

func TestNestedVirtDepth(t *testing.T) {
	e := newNestedEnv(t, false)
	if d := e.l2.Depth(); d != 2 {
		t.Fatalf("L2 depth = %d, want 2", d)
	}
}

func TestNestedShadowBaseline(t *testing.T) {
	e := newNestedEnv(t, false)
	spt, err := BuildNestedShadow(e.l2)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline nested virtualization: 2D walk across L2PT and sPT.
	w := NewNestedWalker(e.guest.PT, spt, e.hyp.Hier, 1)
	w.DisableMMUCaches()
	va := e.heap.Start + 0x3123
	out := w.Walk(va)
	if !out.OK {
		t.Fatal("nested-virt baseline walk faulted")
	}
	if out.PA != e.machineOf(t, va) {
		t.Fatalf("baseline nested PA %#x != truth %#x", uint64(out.PA), uint64(e.machineOf(t, va)))
	}
	if out.SeqSteps != 24 {
		t.Fatalf("cold nested-virt walk took %d refs, want 24", out.SeqSteps)
	}
}

func TestPvDMTNestedThreeRefs(t *testing.T) {
	e := newNestedEnv(t, false)
	spt, err := BuildNestedShadow(e.l2)
	if err != nil {
		t.Fatal(err)
	}
	fb := NewNestedWalker(e.guest.PT, spt, e.hyp.Hier, 1)
	w := NewPvDMTNestedWalker(e.l2, e.gmgr, e.guest.Pool, e.hyp.Hier, fb)
	va := e.heap.Start + 0x5123
	out := w.Walk(va)
	if !out.OK || out.Fallback {
		t.Fatalf("nested pvDMT: ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if out.SeqSteps != 3 {
		t.Fatalf("nested pvDMT took %d steps, want 3 (§3.2)", out.SeqSteps)
	}
	if out.PA != e.machineOf(t, va) {
		t.Fatal("nested pvDMT PA mismatch")
	}
	if out.Refs[0].Dim != "L2" || out.Refs[len(out.Refs)-1].Dim != "L0" {
		t.Fatal("nested pvDMT dims wrong")
	}
}

func TestPvDMTNestedAgreesWithBaselineEverywhere(t *testing.T) {
	e := newNestedEnv(t, false)
	spt, err := BuildNestedShadow(e.l2)
	if err != nil {
		t.Fatal(err)
	}
	base := NewNestedWalker(e.guest.PT, spt, e.hyp.Hier, 1)
	pv := NewPvDMTNestedWalker(e.l2, e.gmgr, e.guest.Pool, e.hyp.Hier, base)
	for off := uint64(0); off < e.heap.Size(); off += 113 << 12 {
		va := e.heap.Start + mem.VAddr(off)
		a, b := pv.Walk(va), base.Walk(va)
		if !a.OK || !b.OK || a.PA != b.PA {
			t.Fatalf("divergence at %#x", uint64(va))
		}
	}
}

func TestCascadedHypercall(t *testing.T) {
	e := newNestedEnv(t, false)
	before := e.hyp.Hypercalls
	region, err := e.l2.AllocPvTEA(4)
	if err != nil {
		t.Fatal(err)
	}
	// The cascade must cross two levels: L2→L1 and L1→L0 (§4.5.3).
	if e.hyp.Hypercalls-before < 2 {
		t.Fatalf("cascaded hypercall crossed %d levels, want >= 2", e.hyp.Hypercalls-before)
	}
	// The region must be machine-contiguous: resolve each window page.
	for i := 0; i < region.Frames; i++ {
		gpa := region.NodeBase + mem.PAddr(i<<mem.PageShift4K)
		m, ok := e.l2.MachineAddr(gpa)
		if !ok {
			t.Fatalf("window page %d unresolvable", i)
		}
		if m != region.FetchBase+mem.PAddr(i<<mem.PageShift4K) {
			t.Fatalf("window page %d not machine-contiguous: %#x", i, uint64(m))
		}
	}
}

// TestPoolNodesAtMachineAddrs sanity-checks the placement invariants the
// walkers rely on: host PT nodes of a directly-hosted VM live at machine
// addresses and guest PT nodes at guest-physical addresses.
func TestPoolNodesAtMachineAddrs(t *testing.T) {
	e := newVEnv(t, false, true)
	va := e.heap.Start
	gpa, _, ok := e.guest.PT.Lookup(va)
	if !ok {
		t.Fatal("unmapped")
	}
	if uint64(gpa) >= uint64(testRAMBytes)+testWindowBytes {
		t.Fatalf("guest data frame %#x outside guest physical space", uint64(gpa))
	}
	hostWalk := e.vm.HostAS.PT.Walk(mem.VAddr(gpa))
	if !hostWalk.OK {
		t.Fatal("host walk failed")
	}
	for _, s := range hostWalk.Steps {
		if uint64(s.Addr) >= uint64(testMachineFrames)<<mem.PageShift4K {
			t.Fatalf("host PT node address %#x beyond machine memory", uint64(s.Addr))
		}
	}
	_ = pagetable.NewPool // silence potential unused import refactors
}

// TestFiveLevelNested35Refs verifies the §1/§2.1.1 claim: with five-level
// page tables, a cold two-dimensional walk takes up to 35 sequential
// memory references (5 guest levels × (5 host + 1) + 5 final host).
func TestFiveLevelNested35Refs(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	vm, err := hyp.NewVM(VMConfig{Name: "vm5", RAMBytes: 64 << 20, ASID: 7, PTLevels: mem.Levels5})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := vm.NewGuestProcessCfg(kernel.Config{ASID: 1, Levels: mem.Levels5})
	if err != nil {
		t.Fatal(err)
	}
	heap, err := guest.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	w := NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 7)
	w.DisableMMUCaches()
	out := w.Walk(heap.Start + 0x3123)
	if !out.OK {
		t.Fatal("5-level 2D walk faulted")
	}
	if out.SeqSteps != 35 {
		t.Fatalf("5-level 2D walk took %d refs, want 35 (§2.1.1)", out.SeqSteps)
	}
	gpa, _, _ := guest.PT.Lookup(heap.Start + 0x3123)
	want, _ := vm.MachineAddr(gpa)
	if out.PA != want {
		t.Fatal("5-level walk PA mismatch")
	}
	// pvDMT is depth-independent: still two fetches under 5-level tables.
	// (The register arithmetic never touches the radix structure.)
}

// TestPvDMTDepthIndependent verifies DMT's scalability claim (§3): pvDMT
// still takes exactly two references under five-level page tables, because
// the direct mapping never touches the radix structure.
func TestPvDMTDepthIndependent(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	vm, err := hyp.NewVM(VMConfig{
		Name: "vm5", RAMBytes: 64 << 20, ASID: 7, PTLevels: mem.Levels5,
		HostDMT: true, PvTEAWindowBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := vm.NewGuestProcessCfg(kernel.Config{ASID: 1, Levels: mem.Levels5})
	if err != nil {
		t.Fatal(err)
	}
	gmgr := tea.NewManager(guest, NewHypercallBackend(vm), tea.DefaultConfig(false))
	guest.SetHooks(gmgr)
	heap, err := guest.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	fb := NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 7)
	w := NewPvDMTWalker(vm, gmgr, guest.Pool, hyp.Hier, fb)
	out := w.Walk(heap.Start + 0x5123)
	if !out.OK || out.Fallback {
		t.Fatalf("5-level pvDMT: ok=%v fallback=%v", out.OK, out.Fallback)
	}
	if out.SeqSteps != 2 {
		t.Fatalf("5-level pvDMT took %d refs, want 2 (depth-independent)", out.SeqSteps)
	}
	gpa, _, _ := guest.PT.Lookup(heap.Start + 0x5123)
	want, _ := vm.MachineAddr(gpa)
	if out.PA != want {
		t.Fatal("5-level pvDMT PA mismatch")
	}
}
