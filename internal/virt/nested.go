package virt

import (
	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/tlb"
)

// NestedWalker is hardware-assisted two-dimensional translation (§2.1.2,
// Figure 2): on a TLB miss it walks the guest page table gL4→gL1, and every
// guest-dimension access first resolves the guest-physical address of the
// PTE through the host page table hL4→hL1, producing up to 24 sequential
// memory references for 4-level tables. Guest-dimension skips come from the
// guest PWC; host-dimension skips from the host PWC and the nested
// translation cache (Table 3).
//
// The same walker implements the nested-virtualization baseline by handing
// it the L2 process table as the guest dimension and the compressed shadow
// table (L2PA→L0PA, Figure 3) as the host dimension.
type NestedWalker struct {
	GuestPT  *pagetable.Table // gVA → gPA, nodes at guest-physical addresses
	HostPT   *pagetable.Table // gPA → machine PA, nodes at machine addresses
	Hier     *cache.Hierarchy
	GuestPWC *tlb.PWC
	HostPWC  *tlb.PWC
	Nested   *tlb.NestedCache
	ASID     uint16
	// Sink, when set, collects refs across the 2D walk (see core.RefSink);
	// outcomes then alias the sink's buffer.
	Sink *core.RefSink

	Walks uint64

	gsteps, hsteps []pagetable.Step // per-walker scratch, reused across walks
}

// NewNestedWalker builds the 2D walker for a single-level setup.
func NewNestedWalker(guestPT, hostPT *pagetable.Table, h *cache.Hierarchy, asid uint16) *NestedWalker {
	return &NestedWalker{
		GuestPT:  guestPT,
		HostPT:   hostPT,
		Hier:     h,
		GuestPWC: tlb.NewPWC(),
		HostPWC:  tlb.NewPWC(),
		Nested:   tlb.NewNestedCache(),
		ASID:     asid,
	}
}

// Name implements core.Walker.
func (w *NestedWalker) Name() string { return "nested-2D" }

// EmitCounters implements core.CounterSource: the 2D walk count plus every
// MMU-cache hit split the walker consults (guest/host PWC, nested cache).
func (w *NestedWalker) EmitCounters(emit func(name string, value uint64)) {
	emit("nested.walks", w.Walks)
	if w.GuestPWC != nil {
		emit("nested.guest_pwc_hits", w.GuestPWC.Hits)
		emit("nested.guest_pwc_misses", w.GuestPWC.Misses)
	}
	if w.HostPWC != nil {
		emit("nested.host_pwc_hits", w.HostPWC.Hits)
		emit("nested.host_pwc_misses", w.HostPWC.Misses)
	}
	if w.Nested != nil {
		emit("nested.ncache_hits", w.Nested.Hits)
		emit("nested.ncache_misses", w.Nested.Misses)
	}
}

// Walk implements core.Walker.
func (w *NestedWalker) Walk(gva mem.VAddr) core.WalkOutcome {
	w.Walks++
	out := core.WalkOutcome{Cycles: tlb.PWCLatency}
	L := w.GuestPT.Levels()
	H := w.HostPT.Levels()

	full := w.GuestPT.WalkInto(gva, w.gsteps[:0])
	w.gsteps = full.Steps[:0]
	steps := full.Steps
	if w.GuestPWC != nil {
		if _, nextLevel, ok := w.GuestPWC.Lookup(gva, w.ASID); ok {
			for i, s := range steps {
				if s.Level <= nextLevel {
					steps = steps[i:]
					break
				}
			}
		}
	}
	// Guest dimension: each gL_i fetch needs the host dimension first.
	// Refs carry the *architectural* step numbers of Figure 2 — e.g. for
	// 4-level tables, guest level gl contributes steps (4-gl)*5+1 ..
	// (4-gl)*5+5 — so skipped steps simply have zero counts in
	// breakdowns.
	for _, s := range steps {
		base := (L - s.Level) * (H + 1)
		mAddr, ok := w.resolveHost(s.Addr, &out, base, H)
		if !ok {
			return w.sealed(out)
		}
		r := w.Hier.Access(mAddr)
		w.emit(&out, core.MemRef{Addr: mAddr, Cycles: r.Cycles, Served: r.Served, Level: s.Level, Dim: "g", Step: base + H + 1})
		out.Cycles += r.Cycles
		out.SeqSteps++
	}
	if !full.OK {
		return w.sealed(out)
	}
	if w.GuestPWC != nil {
		w.refillGuestPWC(gva, full.Steps)
	}
	// Final host dimension: translate the data gPA (steps 21–24).
	mData, ok := w.resolveHost(full.PA, &out, L*(H+1), H)
	if !ok {
		return w.sealed(out)
	}
	out.PA = mData
	out.Size = hostEffectiveSize(full.Size)
	out.OK = true
	return w.sealed(out)
}

// emit records one ref into the sink or the outcome's own slice.
func (w *NestedWalker) emit(out *core.WalkOutcome, r core.MemRef) {
	if w.Sink != nil {
		w.Sink.Append(r)
	} else {
		out.Refs = append(out.Refs, r)
	}
}

// sealed finalizes an outcome: with a sink installed the outcome's Refs are
// whatever the chain accumulated there (including any fast-path prefix from
// a wrapping walker).
func (w *NestedWalker) sealed(out core.WalkOutcome) core.WalkOutcome {
	if w.Sink != nil {
		out.Refs = w.Sink.Refs()
	}
	return out
}

// hostEffectiveSize returns the page size installed into the virtual TLB:
// the combined translation is only as coarse as the guest leaf (the host
// side may be coarser; taking the guest size is conservative and correct).
func hostEffectiveSize(guest mem.PageSize) mem.PageSize { return guest }

// resolveHost translates a guest-physical address to a machine address,
// charging host-dimension PTE fetches. The nested cache short-circuits
// page-granular repeats.
func (w *NestedWalker) resolveHost(gpa mem.PAddr, out *core.WalkOutcome, base, hostLevels int) (mem.PAddr, bool) {
	if w.Nested != nil {
		if m, ok := w.Nested.Lookup(gpa); ok {
			out.Cycles += tlb.PWCLatency
			return m, true
		}
	}
	full := w.HostPT.WalkInto(mem.VAddr(gpa), w.hsteps[:0])
	w.hsteps = full.Steps[:0]
	steps := full.Steps
	out.Cycles += tlb.PWCLatency
	if w.HostPWC != nil {
		if _, nextLevel, ok := w.HostPWC.Lookup(mem.VAddr(gpa), w.ASID); ok {
			for i, s := range steps {
				if s.Level <= nextLevel {
					steps = steps[i:]
					break
				}
			}
		}
	}
	for _, s := range steps {
		r := w.Hier.Access(s.Addr)
		w.emit(out, core.MemRef{Addr: s.Addr, Cycles: r.Cycles, Served: r.Served, Level: s.Level, Dim: "h", Step: base + (hostLevels - s.Level) + 1})
		out.Cycles += r.Cycles
		out.SeqSteps++
	}
	if !full.OK {
		return 0, false
	}
	if w.HostPWC != nil {
		for i := 0; i+1 < len(full.Steps); i++ {
			child := mem.AlignDownP(full.Steps[i+1].Addr, mem.PageBytes4K)
			w.HostPWC.Insert(mem.VAddr(gpa), full.Steps[i].Level, child, w.ASID)
		}
	}
	if w.Nested != nil {
		w.Nested.Insert(gpa, full.PA)
	}
	return full.PA, true
}

// DisableMMUCaches drops the guest/host PWCs and the nested cache, exposing
// the architectural worst case (24 sequential references, Figure 2); used
// to verify Table 6.
func (w *NestedWalker) DisableMMUCaches() {
	w.GuestPWC, w.HostPWC, w.Nested = nil, nil, nil
}

func (w *NestedWalker) refillGuestPWC(gva mem.VAddr, steps []pagetable.Step) {
	for i := 0; i+1 < len(steps); i++ {
		child := mem.AlignDownP(steps[i+1].Addr, mem.PageBytes4K)
		w.GuestPWC.Insert(gva, steps[i].Level, child, w.ASID)
	}
}

var _ core.Walker = (*NestedWalker)(nil)
var _ core.BatchWalker = (*NestedWalker)(nil)

// WalkBatch runs a batch of 2D translations through the canonical loop
// against the concrete walker, keeping the nested walk cache and both
// dimensions' PWC sets hot across consecutive ops.
func (w *NestedWalker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}
