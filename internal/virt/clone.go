package virt

import (
	"fmt"

	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
	"dmt/internal/tea"
)

// Clone deep-copies the machine-wide state: the L0 allocator, the cache
// hierarchy (warm from the build), and the exit accounting — VM creation
// runs hypercalls and shadow syncs at build time, so a clone must carry the
// counters for its final Result footer to match a fresh build's.
func (h *Hypervisor) Clone() *Hypervisor {
	return &Hypervisor{
		MachinePhys:     h.MachinePhys.Clone(),
		Hier:            h.Hier.Clone(),
		Hypercalls:      h.Hypercalls,
		VMExits:         h.VMExits,
		ShadowSyncs:     h.ShadowSyncs,
		IsolationFaults: h.IsolationFaults,
	}
}

// Clone deep-copies the VM onto an already-cloned hypervisor (and, for an
// L2 VM, an already-cloned parent — pass the clone corresponding to
// vm.Parent). The host address space, guest allocator, host TEA manager,
// gTEA table, and pv-TEA window cursors are duplicated; the host TEA's
// backend is recreated over the clone's own allocators (PhysBackend
// compaction counts carried over) so TEA allocation on the clone never
// touches the prototype's memory.
func (vm *VM) Clone(hyp *Hypervisor, parent *VM) (*VM, error) {
	if (vm.Parent == nil) != (parent == nil) {
		return nil, fmt.Errorf("virt: clone of %s: parent mismatch", vm.Name)
	}
	hostPhys := hyp.MachinePhys
	if parent != nil {
		hostPhys = parent.GuestPhys
	}
	c := &VM{
		Name:          vm.Name,
		Hyp:           hyp,
		GuestPhys:     vm.GuestPhys.Clone(),
		HostPhys:      hostPhys,
		HostAS:        vm.HostAS.Clone(hostPhys),
		Parent:        parent,
		GTEA:          &GTEATable{entries: append([]GTEAEntry(nil), vm.GTEA.entries...)},
		teaWindowNext: vm.teaWindowNext,
		teaWindowEnd:  vm.teaWindowEnd,
	}
	if vm.RAMVMA != nil {
		ram, ok := c.HostAS.FindVMA(vm.RAMVMA.Start)
		if !ok {
			return nil, fmt.Errorf("virt: clone of %s: guest-ram VMA missing", vm.Name)
		}
		c.RAMVMA = ram
	}
	if vm.TEAVMA != nil {
		win, ok := c.HostAS.FindVMA(vm.TEAVMA.Start)
		if !ok {
			return nil, fmt.Errorf("virt: clone of %s: pv-tea-window VMA missing", vm.Name)
		}
		c.TEAVMA = win
	}
	if vm.HostTEA != nil {
		var backend tea.Backend
		if parent == nil {
			pb := tea.NewPhysBackend(hostPhys)
			if old, ok := vm.HostTEA.Backend().(*tea.PhysBackend); ok {
				pb.Compactions = old.Compactions
			}
			backend = pb
		} else {
			backend = NewHypercallBackend(parent)
		}
		ht, err := vm.HostTEA.Clone(c.HostAS, backend)
		if err != nil {
			return nil, fmt.Errorf("virt: clone of %s: %w", vm.Name, err)
		}
		c.HostTEA = ht
	}
	return c, nil
}

// CloneShadow clones a shadow table built by BuildShadowVA or
// BuildNestedShadow, re-binding node placement to this (cloned)
// hypervisor's machine allocator so shadow growth on the clone draws from
// its own memory.
func (h *Hypervisor) CloneShadow(spt *pagetable.Table) *pagetable.Table {
	machine := h.MachinePhys
	return spt.Clone(
		func(level int, va mem.VAddr) (mem.PAddr, error) {
			return machine.AllocFrame(phys.KindPageTable)
		},
		func(level int, pa mem.PAddr) { machine.FreeFrame(pa) })
}
