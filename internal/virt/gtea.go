package virt

import (
	"errors"

	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tea"
)

// GTEAEntry is one row of the gTEA table (§4.5.2): the host-maintained
// record of a guest TEA — its base in *machine* physical memory (where the
// DMT fetcher dereferences), its base in the guest's physical address space
// (where the guest's page-table nodes are registered, so the guest can
// update PTEs without VM exits), and its length.
type GTEAEntry struct {
	MachineBase mem.PAddr
	GPABase     mem.PAddr
	Frames      int
}

// GTEATable is the per-VM gTEA table. It is conceptually read-only to the
// guest: entries are only installed by the host's hypercall handler, and
// the DMT fetcher bounds-checks every access against it, which is what
// prevents a malicious guest from pointing a register at arbitrary host
// memory (§4.5.2).
type GTEATable struct {
	entries []GTEAEntry
}

// NewGTEATable creates an empty table.
func NewGTEATable() *GTEATable { return &GTEATable{} }

// Len returns the number of registered gTEAs.
func (t *GTEATable) Len() int { return len(t.entries) }

// add registers an entry (host-side only) and returns its ID (1-based so
// the zero value of a register never aliases a real gTEA).
func (t *GTEATable) add(e GTEAEntry) int {
	t.entries = append(t.entries, e)
	return len(t.entries)
}

// ErrIsolation is reported when a fetch violates the gTEA bounds: an
// invalid ID or an out-of-bounds machine address. The paper's hardware
// raises a page fault in the host (§4.5.2).
var ErrIsolation = errors.New("virt: gTEA isolation violation")

// Resolve validates a fetch against entry id and translates the machine
// fetch address back to the guest-physical address holding the PTE content.
func (t *GTEATable) Resolve(id int, fetchAddr mem.PAddr) (mem.PAddr, error) {
	if id < 1 || id > len(t.entries) {
		return 0, ErrIsolation
	}
	e := t.entries[id-1]
	limit := e.MachineBase + mem.PAddr(uint64(e.Frames)<<mem.PageShift4K)
	if fetchAddr < e.MachineBase || fetchAddr >= limit {
		return 0, ErrIsolation
	}
	return e.GPABase + (fetchAddr - e.MachineBase), nil
}

// AllocPvTEA is the KVM_HC_ALLOC_TEA hypercall handler (§4.5.1): the host
// allocates a machine-contiguous region for a guest TEA, maps it into the
// guest's pv-TEA window, records it in the gTEA table, and returns the
// (gPA window, machine base, ID) triple. Under nested virtualization the
// call cascades: L1 forwards the allocation to L0 and then maps the result
// through its own level (§4.5.3), so the region is machine-contiguous all
// the way down.
func (vm *VM) AllocPvTEA(frames int) (tea.Region, error) {
	vm.Hyp.Hypercalls++
	vm.Hyp.VMExits++
	if vm.TEAVMA == nil {
		return tea.Region{}, errors.New("virt: VM has no pv-TEA window")
	}
	bytes := mem.PAddr(uint64(frames) << mem.PageShift4K)
	if vm.teaWindowNext+mem.VAddr(bytes) > vm.teaWindowEnd {
		return tea.Region{}, tea.ErrNoTEA
	}

	// Obtain a machine-contiguous region at the hosting level.
	var machineBase mem.PAddr
	var hostAddrs []mem.PAddr // host-level PAs backing each frame
	if vm.Parent == nil {
		pa, err := vm.HostPhys.AllocContig(frames, phys.KindPageTable)
		if err != nil {
			return tea.Region{}, tea.ErrNoTEA
		}
		machineBase = pa
		hostAddrs = make([]mem.PAddr, frames)
		for i := range hostAddrs {
			hostAddrs[i] = pa + mem.PAddr(i<<mem.PageShift4K)
		}
	} else {
		// Cascade to the parent: the returned region is machine-
		// contiguous and mapped into the parent guest's (our host's)
		// physical space at region.NodeBase.
		region, err := vm.Parent.AllocPvTEA(frames)
		if err != nil {
			return tea.Region{}, err
		}
		machineBase = region.FetchBase
		hostAddrs = make([]mem.PAddr, frames)
		for i := range hostAddrs {
			hostAddrs[i] = region.NodeBase + mem.PAddr(i<<mem.PageShift4K)
		}
	}

	// Map the region into this VM's pv-TEA window.
	gpaBase := mem.PAddr(vm.teaWindowNext)
	for i := 0; i < frames; i++ {
		gva := vm.teaWindowNext + mem.VAddr(i<<mem.PageShift4K)
		if err := vm.HostAS.MapResident(vm.TEAVMA, gva, hostAddrs[i], mem.Size4K); err != nil {
			return tea.Region{}, err
		}
	}
	vm.teaWindowNext += mem.VAddr(bytes)

	id := vm.GTEA.add(GTEAEntry{MachineBase: machineBase, GPABase: gpaBase, Frames: frames})
	return tea.Region{NodeBase: gpaBase, FetchBase: machineBase, Frames: frames, ID: id}, nil
}

// HypercallBackend is the guest-side TEA backend of pvDMT: TEA storage is
// requested from the host via KVM_HC_ALLOC_TEA so gTEAs are contiguous in
// machine physical memory (§3.1).
type HypercallBackend struct {
	vm *VM
}

// NewHypercallBackend creates the pvDMT backend for a guest of vm.
func NewHypercallBackend(vm *VM) *HypercallBackend { return &HypercallBackend{vm: vm} }

// AllocTEA implements tea.Backend via the hypercall.
func (b *HypercallBackend) AllocTEA(frames int) (tea.Region, error) {
	return b.vm.AllocPvTEA(frames)
}

// FreeTEA releases the gTEA. The window gPA space and table slot are
// retired lazily (IDs stay allocated; reuse is a host policy decision).
func (b *HypercallBackend) FreeTEA(r tea.Region) {
	b.vm.Hyp.Hypercalls++
	b.vm.Hyp.VMExits++
	if b.vm.Parent == nil {
		b.vm.HostPhys.FreeContig(r.FetchBase, r.Frames)
	}
	if r.ID >= 1 && r.ID <= len(b.vm.GTEA.entries) {
		b.vm.GTEA.entries[r.ID-1].Frames = 0 // invalidate bounds
	}
}

// ExpandTEAInPlace cannot be done from the guest side without renegotiating
// with the host; the manager falls back to migration, which issues a fresh
// hypercall (§4.5.1: "only one VM exit would occur when a TEA is created or
// updated").
func (b *HypercallBackend) ExpandTEAInPlace(r tea.Region, extra int) (tea.Region, bool) {
	return r, false
}

var _ tea.Backend = (*HypercallBackend)(nil)
