package virt

import (
	"errors"

	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tea"
)

// GTEAEntry is one row of the gTEA table (§4.5.2): the host-maintained
// record of a guest TEA — its base in *machine* physical memory (where the
// DMT fetcher dereferences), its base in the guest's physical address space
// (where the guest's page-table nodes are registered, so the guest can
// update PTEs without VM exits), and its length.
type GTEAEntry struct {
	MachineBase mem.PAddr
	GPABase     mem.PAddr
	Frames      int

	// parent is the hosting level's region under nested virtualization
	// (zero for a directly-hosted VM); FreePvTEA forwards the release
	// through it so the cascade unwinds the same levels AllocPvTEA built.
	parent tea.Region
}

// GTEATable is the per-VM gTEA table. It is conceptually read-only to the
// guest: entries are only installed by the host's hypercall handler, and
// the DMT fetcher bounds-checks every access against it, which is what
// prevents a malicious guest from pointing a register at arbitrary host
// memory (§4.5.2).
type GTEATable struct {
	entries []GTEAEntry
}

// NewGTEATable creates an empty table.
func NewGTEATable() *GTEATable { return &GTEATable{} }

// Len returns the number of registered gTEAs.
func (t *GTEATable) Len() int { return len(t.entries) }

// add registers an entry (host-side only) and returns its ID (1-based so
// the zero value of a register never aliases a real gTEA).
func (t *GTEATable) add(e GTEAEntry) int {
	t.entries = append(t.entries, e)
	return len(t.entries)
}

// ErrIsolation is reported when a fetch violates the gTEA bounds: an
// invalid ID or an out-of-bounds machine address. The paper's hardware
// raises a page fault in the host (§4.5.2).
var ErrIsolation = errors.New("virt: gTEA isolation violation")

// Resolve validates a fetch against entry id and translates the machine
// fetch address back to the guest-physical address holding the PTE content.
func (t *GTEATable) Resolve(id int, fetchAddr mem.PAddr) (mem.PAddr, error) {
	if id < 1 || id > len(t.entries) {
		return 0, ErrIsolation
	}
	e := t.entries[id-1]
	limit := e.MachineBase + mem.PAddr(uint64(e.Frames)<<mem.PageShift4K)
	if fetchAddr < e.MachineBase || fetchAddr >= limit {
		return 0, ErrIsolation
	}
	return e.GPABase + (fetchAddr - e.MachineBase), nil
}

// AllocPvTEA is the KVM_HC_ALLOC_TEA hypercall handler (§4.5.1): the host
// allocates a machine-contiguous region for a guest TEA, maps it into the
// guest's pv-TEA window, records it in the gTEA table, and returns the
// (gPA window, machine base, ID) triple. Under nested virtualization the
// call cascades: L1 forwards the allocation to L0 and then maps the result
// through its own level (§4.5.3), so the region is machine-contiguous all
// the way down.
func (vm *VM) AllocPvTEA(frames int) (tea.Region, error) {
	vm.Hyp.Hypercalls++
	vm.Hyp.VMExits++
	if vm.TEAVMA == nil {
		return tea.Region{}, errors.New("virt: VM has no pv-TEA window")
	}
	bytes := mem.PAddr(uint64(frames) << mem.PageShift4K)
	if vm.teaWindowNext+mem.VAddr(bytes) > vm.teaWindowEnd {
		return tea.Region{}, tea.ErrNoTEA
	}

	// Obtain a machine-contiguous region at the hosting level.
	var machineBase mem.PAddr
	var parentRegion tea.Region
	var hostAddrs []mem.PAddr // host-level PAs backing each frame
	if vm.Parent == nil {
		pa, err := vm.HostPhys.AllocContig(frames, phys.KindPageTable)
		if err != nil {
			return tea.Region{}, tea.ErrNoTEA
		}
		machineBase = pa
		hostAddrs = make([]mem.PAddr, frames)
		for i := range hostAddrs {
			hostAddrs[i] = pa + mem.PAddr(i<<mem.PageShift4K)
		}
	} else {
		// Cascade to the parent: the returned region is machine-
		// contiguous and mapped into the parent guest's (our host's)
		// physical space at region.NodeBase.
		region, err := vm.Parent.AllocPvTEA(frames)
		if err != nil {
			return tea.Region{}, err
		}
		parentRegion = region
		machineBase = region.FetchBase
		hostAddrs = make([]mem.PAddr, frames)
		for i := range hostAddrs {
			hostAddrs[i] = region.NodeBase + mem.PAddr(i<<mem.PageShift4K)
		}
	}

	// Map the region into this VM's pv-TEA window.
	gpaBase := mem.PAddr(vm.teaWindowNext)
	for i := 0; i < frames; i++ {
		gva := vm.teaWindowNext + mem.VAddr(i<<mem.PageShift4K)
		if err := vm.HostAS.MapResident(vm.TEAVMA, gva, hostAddrs[i], mem.Size4K); err != nil {
			for j := 0; j < i; j++ {
				vm.HostAS.UnmapPage(vm.TEAVMA, vm.teaWindowNext+mem.VAddr(j<<mem.PageShift4K))
			}
			if vm.Parent == nil {
				vm.HostPhys.FreeContig(machineBase, frames)
			} else {
				vm.Parent.FreePvTEA(parentRegion)
			}
			return tea.Region{}, err
		}
	}
	vm.teaWindowNext += mem.VAddr(bytes)

	id := vm.GTEA.add(GTEAEntry{MachineBase: machineBase, GPABase: gpaBase, Frames: frames, parent: parentRegion})
	return tea.Region{NodeBase: gpaBase, FetchBase: machineBase, Frames: frames, ID: id}, nil
}

// FreePvTEA is the KVM_HC_FREE_TEA counterpart: it unmaps the pv-window
// pages that alias the gTEA's frames *before* releasing the storage, so a
// later reuse of those machine frames (another VM's gTEA, a data page) can
// never be reached through a stale window translation. Under nested
// virtualization the release cascades to the allocating level, mirroring
// AllocPvTEA. The gTEA table slot is invalidated but stays allocated (IDs
// are never reused), so in-flight fetches against the dead ID fault.
func (vm *VM) FreePvTEA(r tea.Region) {
	if vm.TEAVMA != nil {
		for i := 0; i < r.Frames; i++ {
			gva := mem.VAddr(r.NodeBase) + mem.VAddr(i<<mem.PageShift4K)
			vm.HostAS.UnmapPage(vm.TEAVMA, gva)
		}
	}
	if vm.Parent == nil {
		vm.HostPhys.FreeContig(r.FetchBase, r.Frames)
	} else if r.ID >= 1 && r.ID <= len(vm.GTEA.entries) {
		if p := vm.GTEA.entries[r.ID-1].parent; p.Frames > 0 {
			vm.Parent.FreePvTEA(p)
		}
	}
	if r.ID >= 1 && r.ID <= len(vm.GTEA.entries) {
		vm.GTEA.entries[r.ID-1].Frames = 0 // invalidate bounds
	}
}

// HypercallBackend is the guest-side TEA backend of pvDMT: TEA storage is
// requested from the host via KVM_HC_ALLOC_TEA so gTEAs are contiguous in
// machine physical memory (§3.1).
type HypercallBackend struct {
	vm *VM
}

// NewHypercallBackend creates the pvDMT backend for a guest of vm.
func NewHypercallBackend(vm *VM) *HypercallBackend { return &HypercallBackend{vm: vm} }

// AllocTEA implements tea.Backend via the hypercall.
func (b *HypercallBackend) AllocTEA(frames int) (tea.Region, error) {
	return b.vm.AllocPvTEA(frames)
}

// FreeTEA releases the gTEA. The window gPA space is retired lazily, but
// the window *translations* and backing frames are torn down eagerly —
// leaving them mapped used to alias the next owner of the recycled frames.
func (b *HypercallBackend) FreeTEA(r tea.Region) {
	b.vm.Hyp.Hypercalls++
	b.vm.Hyp.VMExits++
	b.vm.FreePvTEA(r)
}

// ExpandTEAInPlace cannot be done from the guest side without renegotiating
// with the host; the manager falls back to migration, which issues a fresh
// hypercall (§4.5.1: "only one VM exit would occur when a TEA is created or
// updated").
func (b *HypercallBackend) ExpandTEAInPlace(r tea.Region, extra int) (tea.Region, bool) {
	return r, false
}

var _ tea.Backend = (*HypercallBackend)(nil)
