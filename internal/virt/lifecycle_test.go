package virt

import (
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/mem"
)

// TestFreeTEAUnmapsWindow pins the FreeTEA fix: freeing a gTEA used to
// release the machine frames while leaving the pv-window translations in
// place, so when the host recycled those frames for another VM (or another
// gTEA) the dead window still aliased them. The window pages must stop
// resolving the moment the gTEA is freed.
func TestFreeTEAUnmapsWindow(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	vm, err := hyp.NewVM(VMConfig{
		Name: "vm0", RAMBytes: 64 << 20, HostDMT: true,
		ASID: 1, PvTEAWindowBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := vm.AllocPvTEA(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Frames; i++ {
		gpa := r.NodeBase + mem.PAddr(i<<mem.PageShift4K)
		m, ok := vm.MachineAddr(gpa)
		if !ok || m != r.FetchBase+mem.PAddr(i<<mem.PageShift4K) {
			t.Fatalf("window page %d does not resolve to its frame (ok=%v m=%#x)", i, ok, uint64(m))
		}
	}
	NewHypercallBackend(vm).FreeTEA(r)
	for i := 0; i < r.Frames; i++ {
		gpa := r.NodeBase + mem.PAddr(i<<mem.PageShift4K)
		if _, ok := vm.MachineAddr(gpa); ok {
			t.Fatalf("window page %d still translates after FreeTEA (stale alias)", i)
		}
	}
	// The dead ID must fault any in-flight fetch.
	if _, err := vm.GTEA.Resolve(r.ID, r.FetchBase); err != ErrIsolation {
		t.Fatalf("fetch against freed gTEA: err = %v, want ErrIsolation", err)
	}
	// A fresh gTEA may recycle the same machine frames; the old window gPAs
	// must stay unmapped regardless.
	r2, err := vm.AllocPvTEA(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Frames; i++ {
		gpa := r.NodeBase + mem.PAddr(i<<mem.PageShift4K)
		if m, ok := vm.MachineAddr(gpa); ok {
			t.Fatalf("freed window page %d aliases recycled frame %#x", i, uint64(m))
		}
	}
	NewHypercallBackend(vm).FreeTEA(r2)
}

// TestVMLifecycleConservesMachineFrames runs the full boot→churn→destroy
// cycle and asserts the machine allocator returns to its pristine state:
// no gTEA, host-TEA, RAM, or page-table frame leaked or double-freed.
func TestVMLifecycleConservesMachineFrames(t *testing.T) {
	e := newVEnv(t, false, true)
	const baseline = testMachineFrames // phys.New starts fully free
	// Churn: a second VMA comes and goes, exercising gTEA alloc+free.
	tmp, err := e.guest.MMap(0x60000000, 8<<20, kernel.VMAHeap, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.guest.Populate(tmp); err != nil {
		t.Fatal(err)
	}
	if err := e.guest.MUnmap(tmp); err != nil {
		t.Fatal(err)
	}
	if e.hyp.Hypercalls == 0 {
		t.Fatal("precondition: no hypercalls issued")
	}
	// Guest teardown drains the remaining gTEAs through FreeTEA hypercalls.
	if err := e.guest.MUnmap(e.heap); err != nil {
		t.Fatal(err)
	}
	if e.gmgr.Stats.FramesLive != 0 {
		t.Fatalf("guest TEA FramesLive = %d after teardown, want 0", e.gmgr.Stats.FramesLive)
	}
	if err := e.vm.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if got := e.hyp.MachinePhys.FreeFrames(); got != baseline {
		t.Fatalf("machine FreeFrames = %d after VM death, want %d (leak or double free)", got, baseline)
	}
	if err := e.hyp.MachinePhys.Audit(); err != nil {
		t.Fatalf("machine allocator audit: %v", err)
	}
}

// TestDestroyReclaimsLeakedGTEAs models a crashed guest kernel: gTEAs were
// allocated but the guest never issued its FreeTEA hypercalls. Destroy must
// sweep them, exactly as KVM reclaims a dead VM's resources.
func TestDestroyReclaimsLeakedGTEAs(t *testing.T) {
	hyp := mustHyp(t, 1<<16)
	const baseline = 1 << 16
	vm, err := hyp.NewVM(VMConfig{
		Name: "vm0", RAMBytes: 64 << 20, HostDMT: true,
		ASID: 1, PvTEAWindowBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.AllocPvTEA(4); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.AllocPvTEA(7); err != nil {
		t.Fatal(err)
	}
	if err := vm.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if got := hyp.MachinePhys.FreeFrames(); got != baseline {
		t.Fatalf("machine FreeFrames = %d after Destroy, want %d (leaked gTEA survived)", got, baseline)
	}
	if err := hyp.MachinePhys.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestNestedVMLifecycle runs the cascade: an L2 guest's gTEAs are released
// through L1 down to L0, then both VM levels are destroyed. Machine frames
// must balance across the whole Figure 3 chain.
func TestNestedVMLifecycle(t *testing.T) {
	e := newNestedEnv(t, false)
	const baseline = 1 << 17 // newNestedEnv's machine size, fully free at start
	if err := e.guest.MUnmap(e.heap); err != nil {
		t.Fatal(err)
	}
	if e.gmgr.Stats.FramesLive != 0 {
		t.Fatalf("L2 guest TEA FramesLive = %d after teardown", e.gmgr.Stats.FramesLive)
	}
	if err := e.l2.Destroy(); err != nil {
		t.Fatalf("L2 Destroy: %v", err)
	}
	if err := e.l1.Destroy(); err != nil {
		t.Fatalf("L1 Destroy: %v", err)
	}
	if got := e.hyp.MachinePhys.FreeFrames(); got != baseline {
		t.Fatalf("machine FreeFrames = %d after nested teardown, want %d", got, baseline)
	}
	if err := e.hyp.MachinePhys.Audit(); err != nil {
		t.Fatal(err)
	}
}
