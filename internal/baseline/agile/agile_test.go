package agile

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/tea"
	"dmt/internal/virt"
)

func setup(t *testing.T, thp bool) (*virt.VM, *kernel.AddressSpace, *kernel.VMA, *virt.Hypervisor) {
	t.Helper()
	hyp, err := virt.NewHypervisor(1<<16, cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vm, err := hyp.NewVM(virt.VMConfig{Name: "vm", RAMBytes: 64 << 20, HostTHP: thp, ASID: 9})
	if err != nil {
		t.Fatal(err)
	}
	guest, err := vm.NewGuestProcess(thp, 1)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := guest.MMap(0x40000000, 16<<20, kernel.VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Populate(heap); err != nil {
		t.Fatal(err)
	}
	return vm, guest, heap, hyp
}

func TestAgileWalkCorrectness(t *testing.T) {
	vm, guest, heap, _ := setup(t, false)
	m, err := BuildMirror(vm, guest)
	if err != nil {
		t.Fatal(err)
	}
	if m.Syncs == 0 {
		t.Fatal("mirror recorded no shadow syncs")
	}
	w := NewWalker(m, guest.PT, vm.HostAS.PT, vm.Hyp.Hier, 1)
	for off := uint64(0); off < heap.Size(); off += 251 << 12 {
		va := heap.Start + mem.VAddr(off)
		out := w.Walk(va)
		if !out.OK {
			t.Fatalf("agile walk faulted at %#x", uint64(va))
		}
		gpa, _, _ := guest.PT.Lookup(va)
		want, _ := vm.MachineAddr(gpa)
		if out.PA != want {
			t.Fatalf("agile PA %#x != truth %#x", uint64(out.PA), uint64(want))
		}
	}
}

func TestAgileRefCountBetweenShadowAndNested(t *testing.T) {
	vm, guest, heap, _ := setup(t, false)
	m, err := BuildMirror(vm, guest)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(m, guest.PT, vm.HostAS.PT, vm.Hyp.Hier, 1)
	out := w.Walk(heap.Start + 0x3123)
	// Cold agile walk: 3 shadow + 1 guest level host-resolved (≤5) +
	// final host walk (≤4): between 4 (all cached) and 12 — inside the
	// paper's 4–24 span.
	if out.SeqSteps < 4 || out.SeqSteps > 12 {
		t.Fatalf("agile refs = %d, want within [4,12] (Table 6: 4-24)", out.SeqSteps)
	}
	// Shadowed upper levels contribute exactly 3 "s" refs (L4..L2).
	shadow := 0
	for _, r := range out.Refs {
		if r.Dim == "s" {
			shadow++
		}
	}
	if shadow != 3 {
		t.Fatalf("shadow refs = %d, want 3 (L4..L2 shadowed)", shadow)
	}
}

func TestAgileCheaperThanNestedColdButPricierThanPvDMT(t *testing.T) {
	vm, guest, heap, hyp := setup(t, false)
	m, err := BuildMirror(vm, guest)
	if err != nil {
		t.Fatal(err)
	}
	agile := NewWalker(m, guest.PT, vm.HostAS.PT, hyp.Hier, 1)
	nested := virt.NewNestedWalker(guest.PT, vm.HostAS.PT, hyp.Hier, 2)
	nested.DisableMMUCaches()
	va := heap.Start + 0x9123
	aout := agile.Walk(va)
	hyp.Hier.Flush()
	nout := nested.Walk(va)
	if aout.SeqSteps >= nout.SeqSteps {
		t.Fatalf("agile (%d refs) not cheaper than uncached nested (%d refs)", aout.SeqSteps, nout.SeqSteps)
	}
	_ = tea.DefaultRegisters // keep import symmetry with other baseline tests
}
