package agile

import (
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// Clone deep-copies the shadowed upper levels onto an already-cloned
// machine allocator. Mirror nodes keep their machine bases (shadow fetch
// addresses are identical on both copies) and entries store physical
// addresses rather than pointers, so a value copy per node plus a map
// rebuild suffices; the root is remapped by base. Sync counts carry over
// so footers match a fresh build.
func (m *Mirror) Clone(alloc *phys.Allocator) *Mirror {
	c := &Mirror{nodes: make(map[mem.PAddr]*mirrorNode, len(m.nodes)), alloc: alloc, Syncs: m.Syncs}
	for base, n := range m.nodes {
		cn := *n
		c.nodes[base] = &cn
	}
	c.root = c.nodes[m.root.base]
	return c
}
