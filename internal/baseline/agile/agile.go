// Package agile implements Agile Paging (Gandhi et al., ISCA'16), the
// §6.2.1 comparison point that starts a virtualized walk in a shadow page
// table for the upper radix levels and switches to nested paging for the
// lower levels, trading fewer memory references against shadow-sync VM
// exits for the (rarely-changing) upper levels.
package agile

import (
	"fmt"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
	"dmt/internal/tlb"
	"dmt/internal/virt"
)

// SwitchLevel is the level at which the walk switches from shadow to
// nested mode: levels above it are shadowed (fetched directly from machine
// memory), levels at or below walk nested. Agile paging adapts the switch
// point per page-table subtree; for the evaluated workloads — whose upper
// tables are created once at initialization and never change — the policy
// converges to shadowing L4..L2 and walking only the last level nested.
// Huge-page subtrees (whose leaves live at L2) switch one level higher.
const SwitchLevel = 1

// Mirror is the shadowed upper portion: machine-resident mirror nodes of
// the guest's L4/L3 levels whose switch-point entries hold the
// guest-physical address of the guest L2 node.
type Mirror struct {
	nodes map[mem.PAddr]*mirrorNode // by machine base
	root  *mirrorNode
	alloc *phys.Allocator
	// Syncs counts shadow-synchronized entries (each costs a VM exit
	// when it happens at runtime).
	Syncs uint64
}

type mirrorNode struct {
	level   int
	base    mem.PAddr
	entries [mem.EntriesPerNode]mem.PAddr // child machine base or switch-point gPA
	present [mem.EntriesPerNode]bool
	// nestedAt records, for switch-point entries, the guest level the
	// nested walk resumes at (SwitchLevel normally; SwitchLevel+1 for
	// huge-page subtrees whose leaves are one level higher).
	nestedAt [mem.EntriesPerNode]uint8
}

// BuildMirror constructs the shadowed upper levels for every mapped region
// of the guest process.
func BuildMirror(vm *virt.VM, guest *kernel.AddressSpace) (*Mirror, error) {
	m := &Mirror{nodes: map[mem.PAddr]*mirrorNode{}, alloc: vm.Hyp.MachinePhys}
	root, err := m.newNode(guest.PT.Levels())
	if err != nil {
		return nil, err
	}
	m.root = root
	for _, v := range guest.VMAs() {
		for _, p := range v.PresentPages() {
			if err := m.syncPath(guest, p.VA); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

func (m *Mirror) newNode(level int) (*mirrorNode, error) {
	base, err := m.alloc.AllocFrame(phys.KindPageTable)
	if err != nil {
		return nil, err
	}
	n := &mirrorNode{level: level, base: base}
	m.nodes[base] = n
	return n, nil
}

// syncPath mirrors the upper levels of the walk for va, recording the
// switch-point guest node's gPA (the L1 node, or the L2 node for
// huge-page subtrees).
func (m *Mirror) syncPath(guest *kernel.AddressSpace, va mem.VAddr) error {
	node := m.root
	for level := guest.PT.Levels(); level > SwitchLevel; level-- {
		idx := mem.Index(va, level)
		if level-1 == SwitchLevel {
			target, nestedAt := guest.PT.NodeForLevel(va, SwitchLevel), uint8(SwitchLevel)
			if target == nil {
				// Huge-page subtree: switch at the level whose node
				// holds the huge leaf.
				target, nestedAt = guest.PT.NodeForLevel(va, SwitchLevel+1), uint8(SwitchLevel+1)
			}
			if target == nil {
				return nil
			}
			if !node.present[idx] {
				node.entries[idx] = target.Base // switch point: gPA
				node.present[idx] = true
				node.nestedAt[idx] = nestedAt
				m.Syncs++
			}
			return nil
		}
		if !node.present[idx] {
			child, err := m.newNode(level - 1)
			if err != nil {
				return err
			}
			node.entries[idx] = child.base
			node.present[idx] = true
			m.Syncs++
		}
		node = m.nodes[node.entries[idx]]
		if node == nil {
			return fmt.Errorf("agile: broken mirror at level %d", level)
		}
	}
	return nil
}

// emitRef streams one PTE fetch into the sink when one is installed, or
// appends it to the outcome's own Refs slice (legacy standalone use).
func emitRef(sink *core.RefSink, out *core.WalkOutcome, r core.MemRef) {
	if sink != nil {
		sink.Append(r)
	} else {
		out.Refs = append(out.Refs, r)
	}
}

// walkUpper fetches the shadowed levels, returning the switch-point guest
// node gPA and the level the nested walk resumes at.
func (m *Mirror) walkUpper(va mem.VAddr, hier *cache.Hierarchy, sink *core.RefSink, out *core.WalkOutcome) (mem.PAddr, int, bool) {
	node := m.root
	for level := node.level; level > SwitchLevel; level-- {
		idx := mem.Index(va, level)
		addr := node.base + mem.PAddr(idx*mem.PTEBytes)
		r := hier.Access(addr)
		emitRef(sink, out, core.MemRef{Addr: addr, Cycles: r.Cycles, Served: r.Served, Level: level, Dim: "s"})
		out.Cycles += r.Cycles
		out.SeqSteps++
		if !node.present[idx] {
			return 0, 0, false
		}
		if level-1 == SwitchLevel {
			return node.entries[idx], int(node.nestedAt[idx]), true
		}
		node = m.nodes[node.entries[idx]]
	}
	return 0, 0, false
}

// Walker is the agile-paging translation: shadowed upper levels, nested
// lower levels (4–24 references depending on caching, Table 6).
type Walker struct {
	Mirror  *Mirror
	GuestPT *pagetable.Table
	HostPT  *pagetable.Table // gPA → machine
	Hier    *cache.Hierarchy
	HostPWC *tlb.PWC
	NestedC *tlb.NestedCache
	ASID    uint16
	// Sink, when set, receives the walk's PTE fetches instead of per-walk
	// Refs allocations; outcomes then alias the sink (see core.RefSink).
	Sink *core.RefSink

	Walks uint64

	// Per-walk scratch, reused across walks: guest-dimension steps from
	// WalkFrom and host-dimension steps inside hostResolve.
	gSteps []pagetable.Step
	hSteps []pagetable.Step
}

// NewWalker builds the agile walker.
func NewWalker(m *Mirror, guestPT, hostPT *pagetable.Table, hier *cache.Hierarchy, asid uint16) *Walker {
	return &Walker{
		Mirror: m, GuestPT: guestPT, HostPT: hostPT, Hier: hier,
		HostPWC: tlb.NewPWC(), NestedC: tlb.NewNestedCache(), ASID: asid,
	}
}

// Name implements core.Walker.
func (w *Walker) Name() string { return "AgilePaging" }

// EmitCounters implements core.CounterSource: walk count, shadow-mirror
// sync activity, and the host-dimension MMU-cache splits.
func (w *Walker) EmitCounters(emit func(name string, value uint64)) {
	emit("agile.walks", w.Walks)
	if w.Mirror != nil {
		emit("agile.mirror_syncs", w.Mirror.Syncs)
	}
	if w.HostPWC != nil {
		emit("agile.host_pwc_hits", w.HostPWC.Hits)
		emit("agile.host_pwc_misses", w.HostPWC.Misses)
	}
	if w.NestedC != nil {
		emit("agile.ncache_hits", w.NestedC.Hits)
		emit("agile.ncache_misses", w.NestedC.Misses)
	}
}

// seal fixes up the outcome's Refs for sink mode at every return point.
func (w *Walker) seal(out core.WalkOutcome) core.WalkOutcome {
	if w.Sink != nil {
		out.Refs = w.Sink.Refs()
	}
	return out
}

// Walk implements core.Walker.
func (w *Walker) Walk(gva mem.VAddr) core.WalkOutcome {
	w.Walks++
	out := core.WalkOutcome{}
	switchGPA, nestedAt, ok := w.Mirror.walkUpper(gva, w.Hier, w.Sink, &out)
	if !ok {
		return w.seal(out)
	}
	// Nested portion: walk the remaining guest level(s) from the switch-
	// point node, host-resolving every guest PTE fetch.
	gnode, ok := w.GuestPT.Pool().NodeAt(switchGPA)
	if !ok {
		return w.seal(out)
	}
	walk := w.GuestPT.WalkFrom(gnode, nestedAt, gva, w.gSteps[:0])
	w.gSteps = walk.Steps
	for _, s := range walk.Steps {
		mAddr, ok := w.hostResolve(s.Addr, &out)
		if !ok {
			return w.seal(out)
		}
		r := w.Hier.Access(mAddr)
		emitRef(w.Sink, &out, core.MemRef{Addr: mAddr, Cycles: r.Cycles, Served: r.Served, Level: s.Level, Dim: "g"})
		out.Cycles += r.Cycles
		out.SeqSteps++
	}
	if !walk.OK {
		return w.seal(out)
	}
	mData, ok := w.hostResolve(walk.PA, &out)
	if !ok {
		return w.seal(out)
	}
	out.PA, out.Size, out.OK = mData, walk.Size, true
	return w.seal(out)
}

func (w *Walker) hostResolve(gpa mem.PAddr, out *core.WalkOutcome) (mem.PAddr, bool) {
	if m, ok := w.NestedC.Lookup(gpa); ok {
		out.Cycles += tlb.PWCLatency
		return m, true
	}
	full := w.HostPT.WalkInto(mem.VAddr(gpa), w.hSteps[:0])
	w.hSteps = full.Steps
	steps := full.Steps
	out.Cycles += tlb.PWCLatency
	if _, nextLevel, ok := w.HostPWC.Lookup(mem.VAddr(gpa), w.ASID); ok {
		for i, s := range steps {
			if s.Level <= nextLevel {
				steps = steps[i:]
				break
			}
		}
	}
	for _, s := range steps {
		r := w.Hier.Access(s.Addr)
		emitRef(w.Sink, out, core.MemRef{Addr: s.Addr, Cycles: r.Cycles, Served: r.Served, Level: s.Level, Dim: "h"})
		out.Cycles += r.Cycles
		out.SeqSteps++
	}
	if !full.OK {
		return 0, false
	}
	for i := 0; i+1 < len(full.Steps); i++ {
		child := mem.AlignDownP(full.Steps[i+1].Addr, mem.PageBytes4K)
		w.HostPWC.Insert(mem.VAddr(gpa), full.Steps[i].Level, child, w.ASID)
	}
	w.NestedC.Insert(gpa, full.PA)
	return full.PA, true
}

var _ core.Walker = (*Walker)(nil)
var _ core.BatchWalker = (*Walker)(nil)

// WalkBatch runs a batch of translations through the canonical loop against
// the concrete walker, keeping the per-process mode table and the nested
// dimension's cache sets hot across consecutive ops.
func (w *Walker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}
