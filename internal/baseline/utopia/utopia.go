// Package utopia implements Utopia (Kanellopoulos et al.,
// arXiv:2211.12205), the related-work design that splits the address space
// into *restrictive* and *flexible* mappings: pages whose virtual-to-
// physical placement obeys a set-associative constraint live in flat
// RestSeg arrays that translate in a single memory reference, and
// everything else keeps conventional radix page tables as the flexible
// fallback.
//
// The reproduction models one RestSeg per leaf size (4 KiB and 2 MiB):
// a set-associative translation array whose sets are single 64-byte lines
// of four 16-byte entries, backed by physically contiguous storage so
// probes are real cache-hierarchy accesses. Sync scans the kernel VMAs and
// admits present pages until their set fills; overflowing pages — and,
// under virtualization, guest pages whose machine backing is not
// contiguous (Utopia's restrictive placement requirement) — stay flexible
// and take the fallback walk. Under virtualization the arrays map guest-
// virtual directly to machine addresses and live in machine memory, which
// is how the design collapses the two-dimensional walk for its restrictive
// footprint.
package utopia

import (
	"fmt"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

const (
	// segWays is the set associativity of a RestSeg translation array;
	// four 16-byte entries make one set exactly one cache line, so a set
	// probe is one memory reference.
	segWays = 4
	// entryBytes is the modelled size of one RestSeg entry (tag + frame).
	entryBytes = 16
)

// restSeg is one per-leaf-size translation array.
type restSeg struct {
	base  mem.PAddr
	sets  int // power of two
	shift uint
	// tags hold va>>shift (stored +1, 0 invalid); frames hold the mapped
	// leaf frame (stored +1), set-major like the storage lines.
	tags   []uint64
	frames []mem.PAddr
}

func (r *restSeg) slotAddr(va mem.VAddr) mem.PAddr {
	set := int(uint64(va)>>r.shift) & (r.sets - 1)
	return r.base + mem.PAddr(set*segWays*entryBytes)
}

func (r *restSeg) lookup(va mem.VAddr) (mem.PAddr, bool) {
	tag := uint64(va)>>r.shift + 1
	set := int(uint64(va)>>r.shift) & (r.sets - 1)
	for i := set * segWays; i < (set+1)*segWays; i++ {
		if r.tags[i] == tag {
			return r.frames[i] - 1, true
		}
	}
	return 0, false
}

// insert admits va→frame; a full set reports false (the page stays
// flexible).
func (r *restSeg) insert(va mem.VAddr, frame mem.PAddr) bool {
	tag := uint64(va)>>r.shift + 1
	set := int(uint64(va)>>r.shift) & (r.sets - 1)
	for i := set * segWays; i < (set+1)*segWays; i++ {
		if r.tags[i] == 0 || r.tags[i] == tag {
			r.tags[i] = tag
			r.frames[i] = frame + 1
			return true
		}
	}
	return false
}

func (r *restSeg) clone() *restSeg {
	c := *r
	c.tags = append([]uint64(nil), r.tags...)
	c.frames = append([]mem.PAddr(nil), r.frames...)
	return &c
}

// newRestSeg sizes an array for roughly half the given page population
// (Utopia keeps the hot footprint restrictive, not everything) and
// allocates its contiguous storage.
func newRestSeg(alloc *phys.Allocator, pages int, shift uint) (*restSeg, error) {
	sets := 1
	for sets*segWays*2 < pages {
		sets <<= 1
	}
	bytes := sets * segWays * entryBytes
	nframes := (bytes + mem.PageBytes4K - 1) / mem.PageBytes4K
	base, err := alloc.AllocContig(nframes, phys.KindPageTable)
	if err != nil {
		return nil, fmt.Errorf("utopia: RestSeg allocation: %w", err)
	}
	return &restSeg{
		base:   base,
		sets:   sets,
		shift:  shift,
		tags:   make([]uint64, sets*segWays),
		frames: make([]mem.PAddr, sets*segWays),
	}, nil
}

// Seg is the design's translation structure: one RestSeg per leaf size.
// It is a one-shot sync of the address space — mapping mutations must
// rebuild it (the machine's Resync closure), like ECPT and FPT.
type Seg struct {
	seg4k *restSeg
	seg2m *restSeg

	// Restrictive counts pages admitted to a RestSeg; Flexible counts
	// pages left to the fallback (set overflow or non-contiguous machine
	// backing under virtualization).
	Restrictive int
	Flexible    int
}

// NewSeg allocates empty RestSegs sized for ws bytes of working set.
func NewSeg(alloc *phys.Allocator, ws uint64) (*Seg, error) {
	s4, err := newRestSeg(alloc, int(ws>>mem.PageShift4K), mem.PageShift4K)
	if err != nil {
		return nil, err
	}
	s2, err := newRestSeg(alloc, int(ws>>mem.PageShift2M), mem.PageShift2M)
	if err != nil {
		return nil, err
	}
	return &Seg{seg4k: s4, seg2m: s2}, nil
}

// Clone deep-copies the entry arrays; storage keeps its physical bases
// (already claimed on the cloned allocator), so probe addresses — and
// hence cache behaviour — are identical on both copies.
func (s *Seg) Clone() *Seg {
	return &Seg{
		seg4k:       s.seg4k.clone(),
		seg2m:       s.seg2m.clone(),
		Restrictive: s.Restrictive,
		Flexible:    s.Flexible,
	}
}

// Sync admits every present leaf mapping of as whose placement qualifies.
// resolve, when non-nil, maps a (page-aligned) looked-up address to the
// final translation target — under virtualization it composes the host
// dimension, and Sync additionally requires the whole guest page to be
// machine-contiguous through it (restrictive placement); pages failing
// either stay flexible. A nil resolve is the identity (native).
func (s *Seg) Sync(as *kernel.AddressSpace, resolve func(mem.PAddr) (mem.PAddr, bool)) error {
	for _, v := range as.VMAs() {
		for _, p := range v.PresentPages() {
			pa, size, ok := as.PT.Lookup(p.VA)
			if !ok {
				continue
			}
			frame := mem.AlignDownP(pa, size.Bytes())
			if resolve != nil {
				frame, ok = resolveContig(resolve, frame, size)
				if !ok {
					s.Flexible++
					continue
				}
			}
			if s.segFor(size).insert(p.VA, frame) {
				s.Restrictive++
			} else {
				s.Flexible++
			}
		}
	}
	return nil
}

// resolveContig resolves the page frame through the host dimension and
// verifies the whole page is machine-contiguous.
func resolveContig(resolve func(mem.PAddr) (mem.PAddr, bool), frame mem.PAddr, size mem.PageSize) (mem.PAddr, bool) {
	base, ok := resolve(frame)
	if !ok {
		return 0, false
	}
	for off := uint64(mem.PageBytes4K); off < size.Bytes(); off += mem.PageBytes4K {
		m, ok := resolve(frame + mem.PAddr(off))
		if !ok || m != base+mem.PAddr(off) {
			return 0, false
		}
	}
	return base, true
}

func (s *Seg) segFor(size mem.PageSize) *restSeg {
	if size == mem.Size2M {
		return s.seg2m
	}
	return s.seg4k
}

// Slots returns the set lines probed for va, one per leaf size (the
// hardware probes them in parallel).
func (s *Seg) Slots(va mem.VAddr) (slot4k, slot2m mem.PAddr) {
	return s.seg4k.slotAddr(va), s.seg2m.slotAddr(va)
}

// Lookup resolves va from the RestSegs (content only; the 2 MiB array
// wins, matching the page tables where a 2M leaf shadows any stale 4K
// entry).
func (s *Seg) Lookup(va mem.VAddr) (mem.PAddr, mem.PageSize, bool) {
	if f, ok := s.seg2m.lookup(va); ok {
		return f + mem.PAddr(mem.PageOffset(va, mem.Size2M)), mem.Size2M, true
	}
	if f, ok := s.seg4k.lookup(va); ok {
		return f + mem.PAddr(mem.PageOffset(va, mem.Size4K)), mem.Size4K, true
	}
	return 0, 0, false
}

// FootprintBytes reports the RestSeg storage footprint.
func (s *Seg) FootprintBytes() int {
	return (s.seg4k.sets + s.seg2m.sets) * segWays * entryBytes
}

func emitRef(sink *core.RefSink, out *core.WalkOutcome, r core.MemRef) {
	if sink != nil {
		sink.Append(r)
	} else {
		out.Refs = append(out.Refs, r)
	}
}

func sealRefs(sink *core.RefSink, out core.WalkOutcome) core.WalkOutcome {
	if sink != nil {
		out.Refs = sink.Refs()
	}
	return out
}

// Walker translates through the RestSegs with a single parallel probe
// group, falling back to the environment's full walk for flexible pages.
// One Walker type serves every environment: the Seg's entries and the
// Fallback walker encode the environment.
type Walker struct {
	Seg  *Seg
	Hier *cache.Hierarchy
	// Fallback resolves flexible pages: the native radix walk, or the 2D
	// nested walk under virtualization.
	Fallback core.Walker
	// Sink, when set, receives the walk's fetches instead of per-walk Refs
	// allocations; the fallback walker must share it (see core.RefSink).
	Sink *core.RefSink

	Walks   uint64
	SegHits uint64
	Misses  uint64
}

// Name implements core.Walker.
func (w *Walker) Name() string { return "Utopia(" + w.Fallback.Name() + ")" }

// EmitCounters implements core.CounterSource.
func (w *Walker) EmitCounters(emit func(name string, value uint64)) {
	emit("utopia.walks", w.Walks)
	emit("utopia.restseg_hits", w.SegHits)
	emit("utopia.flexible_walks", w.Misses)
	emit("utopia.restrictive_pages", uint64(w.Seg.Restrictive))
	emit("utopia.flexible_pages", uint64(w.Seg.Flexible))
	core.EmitChained(w.Fallback, emit)
}

// CoverageCounts reports RestSeg hits over total walks.
func (w *Walker) CoverageCounts() (hits, total uint64) { return w.SegHits, w.Walks }

// Walk implements core.Walker: both size-class set lines are probed in
// parallel (one sequential step, the slower probe gates the group); a hit
// completes the translation, a miss takes the fallback walk on top.
func (w *Walker) Walk(va mem.VAddr) core.WalkOutcome {
	w.Walks++
	out := core.WalkOutcome{}
	s4, s2 := w.Seg.Slots(va)
	g := 0
	for _, slot := range [2]mem.PAddr{s4, s2} {
		r := w.Hier.Access(slot)
		emitRef(w.Sink, &out, core.MemRef{Addr: slot, Cycles: r.Cycles, Served: r.Served, Level: 1, Dim: "n"})
		if r.Cycles > g {
			g = r.Cycles
		}
	}
	out.Cycles += g
	out.SeqSteps++
	if pa, size, ok := w.Seg.Lookup(va); ok {
		w.SegHits++
		out.PA, out.Size, out.OK = pa, size, true
		return sealRefs(w.Sink, out)
	}
	w.Misses++
	inner := w.Fallback.Walk(va)
	out.Cycles += inner.Cycles
	out.SeqSteps += inner.SeqSteps
	out.Fallback = true
	out.PA, out.Size, out.OK = inner.PA, inner.Size, inner.OK
	return sealRefs(w.Sink, out)
}

var _ core.Walker = (*Walker)(nil)
var _ core.BatchWalker = (*Walker)(nil)
var _ core.CounterSource = (*Walker)(nil)

// WalkBatch runs a batch of translations through the canonical loop
// against the concrete walker, keeping the RestSeg set lines hot across
// consecutive ops.
func (w *Walker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}
