package utopia

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

func setup(t *testing.T) (*kernel.AddressSpace, *kernel.VMA, *cache.Hierarchy, *Seg) {
	t.Helper()
	a := phys.New(0, 1<<15)
	as, err := kernel.NewAddressSpace(a, kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := as.MMap(0x40000000, 16<<20, kernel.VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewSeg(a, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Sync(as, nil); err != nil {
		t.Fatal(err)
	}
	return as, v, hier, seg
}

func TestSyncLookupMatchesPageTables(t *testing.T) {
	as, v, _, seg := setup(t)
	if seg.Restrictive == 0 {
		t.Fatal("Sync admitted no pages")
	}
	hits := 0
	for off := uint64(0); off < v.Size(); off += mem.PageBytes4K {
		va := v.Start + mem.VAddr(off) + 0x77
		pa, size, ok := seg.Lookup(va)
		if !ok {
			continue
		}
		hits++
		wpa, wsize, wok := as.PT.Lookup(va)
		if !wok || pa != wpa || size != wsize {
			t.Fatalf("%#x: RestSeg says (%#x, %v), page tables say (%#x, %v, %v)",
				va, pa, size, wpa, wsize, wok)
		}
	}
	if hits == 0 {
		t.Fatal("no RestSeg hits across the whole VMA")
	}
}

func TestSetOverflowStaysFlexible(t *testing.T) {
	r := &restSeg{
		sets:   1,
		shift:  mem.PageShift4K,
		tags:   make([]uint64, segWays),
		frames: make([]mem.PAddr, segWays),
	}
	for i := 0; i < segWays; i++ {
		if !r.insert(mem.VAddr(i)<<mem.PageShift4K, mem.PAddr(i)<<mem.PageShift4K) {
			t.Fatalf("insert %d rejected with free ways", i)
		}
	}
	if r.insert(mem.VAddr(segWays)<<mem.PageShift4K, 0x1000) {
		t.Fatal("insert into a full set succeeded; the page must stay flexible")
	}
	// Re-inserting a resident tag updates in place rather than overflowing.
	if !r.insert(0, 0x9000) {
		t.Fatal("re-insert of a resident tag rejected")
	}
	if pa, ok := r.lookup(0); !ok || pa != 0x9000 {
		t.Fatalf("lookup after re-insert = (%#x, %v), want (0x9000, true)", pa, ok)
	}
}

func TestResolveContigRequiresMachineContiguity(t *testing.T) {
	identity := func(pa mem.PAddr) (mem.PAddr, bool) { return pa + 0x100000, true }
	base, ok := resolveContig(identity, 0x200000, mem.Size2M)
	if !ok || base != 0x300000 {
		t.Fatalf("contiguous resolve = (%#x, %v), want (0x300000, true)", base, ok)
	}
	scattered := func(pa mem.PAddr) (mem.PAddr, bool) {
		if pa >= 0x200000+mem.PageBytes4K {
			return pa + 0x40000000, true // second half backed elsewhere
		}
		return pa + 0x100000, true
	}
	if _, ok := resolveContig(scattered, 0x200000, mem.Size2M); ok {
		t.Fatal("non-contiguous machine backing admitted as restrictive")
	}
	if _, ok := resolveContig(identity, 0x5000, mem.Size4K); !ok {
		t.Fatal("4K page needs no contiguity beyond its own frame")
	}
}

func TestWalkerHitIsOneProbeGroupAndMissFallsBack(t *testing.T) {
	as, v, hier, seg := setup(t)
	w := &Walker{Seg: seg, Hier: hier, Fallback: core.NewRadixWalker(as.PT, hier, nil, 0)}
	var hitVA, missVA mem.VAddr
	for off := uint64(0); off < v.Size(); off += mem.PageBytes4K {
		va := v.Start + mem.VAddr(off)
		if _, _, ok := seg.Lookup(va); ok && hitVA == 0 {
			hitVA = va
		} else if !ok && missVA == 0 {
			missVA = va
		}
	}
	if hitVA == 0 || missVA == 0 {
		t.Fatalf("need both a restrictive and a flexible page (hit=%#x miss=%#x)", hitVA, missVA)
	}
	out := w.Walk(hitVA)
	if !out.OK || out.Fallback || out.SeqSteps != 1 {
		t.Fatalf("RestSeg hit: OK=%v fallback=%v steps=%d, want true/false/1", out.OK, out.Fallback, out.SeqSteps)
	}
	if pa, _, _ := as.PT.Lookup(hitVA); out.PA != pa {
		t.Fatalf("hit PA %#x, page tables say %#x", out.PA, pa)
	}
	out = w.Walk(missVA)
	if !out.OK || !out.Fallback {
		t.Fatalf("flexible page: OK=%v fallback=%v, want true/true", out.OK, out.Fallback)
	}
	if pa, _, _ := as.PT.Lookup(missVA); out.PA != pa {
		t.Fatalf("fallback PA %#x, page tables say %#x", out.PA, pa)
	}
	if w.SegHits != 1 || w.Misses != 1 {
		t.Fatalf("seg_hits=%d misses=%d, want 1 and 1", w.SegHits, w.Misses)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	_, v, _, seg := setup(t)
	c := seg.Clone()
	var va mem.VAddr
	for off := uint64(0); off < v.Size(); off += mem.PageBytes4K {
		if _, _, ok := seg.Lookup(v.Start + mem.VAddr(off)); ok {
			va = v.Start + mem.VAddr(off)
			break
		}
	}
	if va == 0 {
		t.Fatal("no restrictive page to test with")
	}
	// Mutating the original must not leak into the clone.
	for i := range seg.seg4k.tags {
		seg.seg4k.tags[i] = 0
	}
	if _, _, ok := seg.Lookup(va); ok {
		t.Fatal("original still resolves after wipe")
	}
	if _, _, ok := c.Lookup(va); !ok {
		t.Fatal("clone lost its entries when the original was wiped")
	}
}
