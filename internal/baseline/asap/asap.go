// Package asap implements the ASAP prefetched-address-translation baseline
// (Margaritov et al., MICRO'19) discussed in §6.2.2: the OS lays out the
// last two levels of page-table entries contiguously so their addresses can
// be *computed* when the TLB miss is detected and prefetched into the cache
// hierarchy while the walk's upper levels proceed.
//
// Two properties of ASAP that the paper leans on are modelled explicitly:
//
//   - Prefetching overlaps but does not remove latency: a prefetch issued
//     at walk start for an uncached line still takes a full memory round
//     trip, so the walk cannot finish earlier than that (it *can* hide the
//     sequential upper-level fetches behind it).
//
//   - The nested dependency chain is unbreakable (§6.2.2): the machine
//     address of a gPTE needs a host walk, and the data page's host PTEs
//     need the gPTE's content, so prefetches happen in dependent stages —
//     each stage with a cold line adds a full memory latency the walk
//     waits for.
package asap

import (
	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/mem"
)

// Accuracy is the fraction of PTE addresses the contiguity-based computation
// predicts correctly (ASAP reports ~95% coverage; mispredicted lines leave
// the demand fetch to pay full latency).
const Accuracy = 0.95

// DefaultTimeliness is the fraction of correctly-predicted prefetches that
// complete before the walk consumes the line. Late prefetches still warm
// the caches for future walks (and still cost bandwidth) but do not help
// the triggering walk.
const DefaultTimeliness = 0.7

// AddrSource computes, ahead of the walk, the machine addresses of the
// prefetchable last-two-level PTEs for a VA, grouped into dependent stages:
// one stage natively; guest-dimension then final-host-dimension lines in a
// virtualized environment.
type AddrSource func(va mem.VAddr) [][]mem.PAddr

// Walker wraps an underlying walker (native radix or virtualized 2D) with
// the ASAP prefetcher.
type Walker struct {
	Inner  core.Walker
	Hier   *cache.Hierarchy
	Source AddrSource
	// MemLatency is the main-memory round trip the penalty model uses.
	MemLatency int
	// Timeliness overrides DefaultTimeliness when non-zero.
	Timeliness float64

	Prefetches     uint64
	ColdPrefetches uint64
	LatePrefetches uint64
	Walks          uint64

	late []mem.PAddr // per-walk scratch, reused across walks
}

// Name implements core.Walker.
func (w *Walker) Name() string { return "ASAP+" + w.Inner.Name() }

// EmitCounters implements core.CounterSource: the prefetcher's issue/cold/
// late attribution plus the wrapped walker's own counters.
func (w *Walker) EmitCounters(emit func(name string, value uint64)) {
	emit("asap.walks", w.Walks)
	emit("asap.prefetches", w.Prefetches)
	emit("asap.cold_prefetches", w.ColdPrefetches)
	emit("asap.late_prefetches", w.LatePrefetches)
	if w.Inner != nil {
		core.EmitChained(w.Inner, emit)
	}
}

// Walk implements core.Walker.
func (w *Walker) Walk(va mem.VAddr) core.WalkOutcome {
	w.Walks++
	timeliness := w.Timeliness
	if timeliness == 0 {
		timeliness = DefaultTimeliness
	}
	// Issue the prefetches the TLB miss triggers, stage by stage; a
	// deterministic hash stands in for prediction accuracy and
	// timeliness. Late prefetches are deferred past the walk. Each
	// stage's fill latency (memory or LLC round trip for its slowest
	// line) is a floor the walk cannot finish before.
	penalty := 0
	late := w.late[:0]
	llcLatency := w.Hier.Config().LLC.LatencyRT
	for stage, addrs := range w.Source(va) {
		stageFill := 0
		for i, pa := range addrs {
			if !hit(va, stage*8+i) {
				continue
			}
			w.Prefetches++
			if !timely(va, stage*8+i, timeliness) {
				w.LatePrefetches++
				late = append(late, pa)
				continue
			}
			switch w.Hier.Prefetch(pa) {
			case cache.LevelMem:
				w.ColdPrefetches++
				if w.MemLatency > stageFill {
					stageFill = w.MemLatency
				}
			case cache.LevelLLC:
				if llcLatency > stageFill {
					stageFill = llcLatency
				}
			}
		}
		penalty += stageFill
	}
	out := w.Inner.Walk(va)
	// The walk observes the timely prefetched lines as cache hits, but it
	// cannot complete before the dependent cold prefetches themselves
	// complete.
	if out.Cycles < penalty {
		out.Cycles = penalty
	}
	// Late prefetches land after the walk: they warm future walks only.
	for _, pa := range late {
		if w.Hier.Prefetch(pa) == cache.LevelMem {
			w.ColdPrefetches++
		}
	}
	w.late = late
	return out
}

func timely(va mem.VAddr, i int, timeliness float64) bool {
	h := (uint64(va)>>12 + 0x51_7cc1b727220a95 + uint64(i)*0xbf58476d1ce4e5b9) * 0x94d049bb133111eb
	h ^= h >> 31
	return h%100 < uint64(timeliness*100)
}

func hit(va mem.VAddr, i int) bool {
	h := (uint64(va)>>12 + uint64(i)*0x9e3779b97f4a7c15) * 0xff51afd7ed558ccd
	h ^= h >> 33
	return h%100 < uint64(Accuracy*100)
}

var _ core.Walker = (*Walker)(nil)
var _ core.BatchWalker = (*Walker)(nil)

// WalkBatch runs a batch of translations through the canonical loop against
// the concrete walker, keeping the prefetch-stage address sources and the
// wrapped walker's set metadata hot across consecutive ops.
func (w *Walker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}

// LastTwoLevelSource builds a single-stage AddrSource from a walk-step
// oracle: the level-2 and level-1 PTE lines (native ASAP). The returned
// source reuses its buffers: each call invalidates the previous result.
func LastTwoLevelSource(steps func(va mem.VAddr) []core.MemRef) AddrSource {
	var out []mem.PAddr
	var stages [1][]mem.PAddr
	return func(va mem.VAddr) [][]mem.PAddr {
		out = out[:0]
		for _, s := range steps(va) {
			if s.Level <= 2 {
				out = append(out, s.Addr)
			}
		}
		stages[0] = out
		return stages[:]
	}
}

// TwoStageSource builds the virtualized AddrSource: the guest-dimension
// lines form stage one and the final host-dimension lines stage two,
// reflecting the dependency chain of the 2D walk. The returned source
// reuses its stage array: each call invalidates the previous result.
func TwoStageSource(guest, host func(va mem.VAddr) []mem.PAddr) AddrSource {
	var stages [2][]mem.PAddr
	return func(va mem.VAddr) [][]mem.PAddr {
		stages[0], stages[1] = guest(va), host(va)
		return stages[:]
	}
}
