package asap

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
	"dmt/internal/tlb"
)

func setup(t *testing.T) (*kernel.AddressSpace, *kernel.VMA, *cache.Hierarchy) {
	t.Helper()
	a := phys.New(0, 1<<15)
	as, err := kernel.NewAddressSpace(a, kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := as.MMap(0x40000000, 16<<20, kernel.VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return as, v, hier
}

func oracle(as *kernel.AddressSpace) AddrSource {
	return LastTwoLevelSource(func(va mem.VAddr) []core.MemRef {
		var refs []core.MemRef
		for _, s := range as.PT.Walk(va).Steps {
			refs = append(refs, core.MemRef{Addr: s.Addr, Level: s.Level})
		}
		return refs
	})
}

func TestASAPStillFourReferences(t *testing.T) {
	as, v, hier := setup(t)
	inner := core.NewRadixWalker(as.PT, hier, nil, 0) // no PWC: isolate prefetch effect
	w := &Walker{Inner: inner, Hier: hier, Source: oracle(as)}
	out := w.Walk(v.Start + 0x5123)
	if !out.OK {
		t.Fatal("walk failed")
	}
	if out.SeqSteps != 4 {
		t.Fatalf("ASAP seq steps = %d, want 4 (prefetching does not shorten the walk)", out.SeqSteps)
	}
	if w.Prefetches == 0 {
		t.Fatal("no prefetches issued")
	}
}

func TestASAPLowersLatencyVsColdRadix(t *testing.T) {
	as, v, hier := setup(t)
	inner := core.NewRadixWalker(as.PT, hier, nil, 0)
	w := &Walker{Inner: inner, Hier: hier, Source: oracle(as)}
	// Pick a VA whose prefetch hash hits for both levels.
	var va mem.VAddr
	for off := uint64(0); off < v.Size(); off += 1 << 12 {
		cand := v.Start + mem.VAddr(off)
		if hit(cand, 0) && hit(cand, 1) {
			va = cand
			break
		}
	}
	if va == 0 {
		t.Fatal("no fully-hitting VA found")
	}
	pref := w.Walk(va)

	as2, v2, hier2 := setup(t)
	cold := core.NewRadixWalker(as2.PT, hier2, nil, 0)
	out2 := cold.Walk(v2.Start + (va - v.Start))
	if pref.Cycles >= out2.Cycles {
		t.Fatalf("prefetched walk (%d cyc) not faster than cold walk (%d cyc)", pref.Cycles, out2.Cycles)
	}
}

func TestASAPConsumesBandwidth(t *testing.T) {
	as, v, hier := setup(t)
	inner := core.NewRadixWalker(as.PT, hier, tlb.NewPWC(), 0)
	w := &Walker{Inner: inner, Hier: hier, Source: oracle(as)}
	before := hier.MemFetches
	w.Walk(v.Start)
	if hier.MemFetches <= before {
		t.Fatal("prefetches consumed no memory bandwidth")
	}
}

func TestASAPAccuracyIsDeterministic(t *testing.T) {
	hits := 0
	for i := 0; i < 10000; i++ {
		if hit(mem.VAddr(i)<<12, 0) {
			hits++
		}
	}
	frac := float64(hits) / 10000
	if frac < Accuracy-0.05 || frac > Accuracy+0.05 {
		t.Fatalf("hit fraction %.3f far from accuracy %.2f", frac, Accuracy)
	}
	// Determinism: same VA, same result.
	if hit(0x1234000, 1) != hit(0x1234000, 1) {
		t.Fatal("hit() nondeterministic")
	}
}
