package ecpt

import (
	"math/rand"
	"testing"

	"dmt/internal/mem"
	"dmt/internal/phys"
)

// TestTableAgainstMapModel drives the cuckoo table and a plain map with the
// same random insert/remove/lookup stream — across elastic resizes — and
// checks they always agree.
func TestTableAgainstMapModel(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := phys.New(0, 1<<15)
		tbl, err := NewTable(mem.Size4K, 128, a)
		if err != nil {
			t.Fatal(err)
		}
		model := map[uint64]mem.PTE{}
		vpnSpace := uint64(1 << 16) // dense enough to exercise grouping

		for step := 0; step < 4000; step++ {
			vpn := rng.Uint64() % vpnSpace
			switch rng.Intn(3) {
			case 0: // insert/update
				pte := mem.MakePTE(mem.PAddr(rng.Uint64()&((1<<40)-1))&^(mem.PageBytes4K-1), mem.PTEWritable)
				if err := tbl.Insert(vpn, pte); err != nil {
					t.Fatalf("seed %d step %d: insert: %v", seed, step, err)
				}
				model[vpn] = pte
			case 1: // remove
				tbl.Remove(vpn)
				delete(model, vpn)
			default: // lookup
				got, ok := tbl.Lookup(vpn)
				want, wok := model[vpn]
				if ok != wok || (ok && got != want) {
					t.Fatalf("seed %d step %d: lookup(%#x) = (%#x,%v), want (%#x,%v)",
						seed, step, vpn, uint64(got), ok, uint64(want), wok)
				}
			}
			if tbl.Count() != len(model) {
				t.Fatalf("seed %d step %d: count %d, want %d", seed, step, tbl.Count(), len(model))
			}
		}
		// Exhaustive final agreement.
		for vpn, want := range model {
			got, ok := tbl.Lookup(vpn)
			if !ok || got != want {
				t.Fatalf("seed %d: final lookup(%#x) diverged", seed, vpn)
			}
		}
	}
}

// TestSlotAddrStability checks that SlotAddr changes only across resizes
// (the fetch addresses the walker probes must be stable between them) and
// that grouped VPNs share a line.
func TestSlotAddrStability(t *testing.T) {
	a := phys.New(0, 1<<14)
	tbl, err := NewTable(mem.Size4K, 512, a)
	if err != nil {
		t.Fatal(err)
	}
	before := tbl.SlotAddr(0x1234, 0)
	if err := tbl.Insert(0x1234, mem.MakePTE(0x5000, 0)); err != nil {
		t.Fatal(err)
	}
	if tbl.SlotAddr(0x1234, 0) != before {
		t.Fatal("SlotAddr changed without a resize")
	}
	// VPNs in the same 8-page group probe the same element.
	if tbl.SlotAddr(0x1230, 1) != tbl.SlotAddr(0x1237, 1) {
		t.Fatal("grouped VPNs must share an element line")
	}
	if tbl.SlotAddr(0x1230, 1) == tbl.SlotAddr(0x1238, 1) {
		t.Fatal("different groups must not collide deterministically")
	}
}
