// Package ecpt implements Elastic Cuckoo Page Tables (Skarlatos et al.,
// ASPLOS'20) and Nested ECPT (Stojkovic et al., ASPLOS'22), the strongest
// hash-based comparison points of the paper (§6.2.1).
//
// Each page size has its own d-ary cuckoo hash table whose elements pack
// the PTEs of eight consecutive pages (one cache line per element, as in
// the original design — hashing at single-page granularity would destroy
// the spatial locality that makes PTE lines cacheable). A translation
// probes all ways of all size-tables in parallel; the walk proceeds when
// the *matching* element returns, so the fan-out costs bandwidth and cache
// pollution rather than latency. Natively that is one sequential step; in
// a virtualized setup guest tables (in guest-physical memory) and host
// tables (in machine memory) compose into three sequential steps with up
// to 81 parallel references.
package ecpt

import (
	"fmt"

	"dmt/internal/mem"
	"dmt/internal/phys"
)

// Ways is the cuckoo nesting degree (d = 3 in the evaluated configuration).
const Ways = 3

// HashCycles is the fixed per-lookup cost of computing the way hashes and
// probing the cuckoo walk caches — overhead DMT avoids (§6.2.1).
const HashCycles = 2

// GroupPages is the number of consecutive pages whose PTEs one cuckoo
// element packs.
const GroupPages = 8

// entryBytes is the size of one cuckoo element: one cache line holding the
// group tag and eight PTEs.
const entryBytes = mem.CacheLineBytes

// maxLoadNum/maxLoadDen give the resize threshold (load factor 0.6 on
// element groups).
const (
	maxLoadNum = 3
	maxLoadDen = 5
)

// Table is one elastic cuckoo hash table mapping VPN groups of one page
// size to packed PTEs. Ways occupy disjoint physically-contiguous regions
// so every probe has a concrete physical address for the cache simulation.
type Table struct {
	size  mem.PageSize
	slots int // element slots per way
	ways  [Ways][]entry
	bases [Ways]mem.PAddr
	alloc *phys.Allocator
	seeds [Ways]uint64

	groups int // live element groups
	count  int // live PTEs
	// pending holds elements displaced by a failed relocation chain,
	// reinserted during the next resize.
	pending []entry
	// Resizes counts elastic rehashes.
	Resizes uint64
}

type entry struct {
	group uint64 // vpn >> 3
	ptes  [GroupPages]mem.PTE
	valid bool
}

func (e *entry) empty() bool {
	for _, p := range e.ptes {
		if p.Present() {
			return false
		}
	}
	return true
}

// NewTable creates a cuckoo table for one page size with the given initial
// element-slot count per way (rounded up to a full frame of elements).
func NewTable(size mem.PageSize, slots int, alloc *phys.Allocator) (*Table, error) {
	t := &Table{size: size, alloc: alloc}
	t.seeds = [Ways]uint64{0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9}
	if err := t.allocate(slots); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Table) allocate(slots int) error {
	per := mem.PageBytes4K / entryBytes
	if slots < per {
		slots = per
	}
	slots = ((slots + per - 1) / per) * per
	frames := slots * entryBytes / mem.PageBytes4K
	for w := 0; w < Ways; w++ {
		base, err := t.alloc.AllocContig(frames, phys.KindPageTable)
		if err != nil {
			return fmt.Errorf("ecpt: allocating way %d: %w", w, err)
		}
		t.bases[w] = base
		t.ways[w] = make([]entry, slots)
	}
	t.slots = slots
	return nil
}

func (t *Table) hash(group uint64, way int) int {
	h := group ^ t.seeds[way]
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int(h % uint64(t.slots))
}

// SlotAddr returns the physical address probed for vpn in the given way.
func (t *Table) SlotAddr(vpn uint64, way int) mem.PAddr {
	return t.bases[way] + mem.PAddr(t.hash(vpn/GroupPages, way)*entryBytes)
}

// Lookup probes all ways for vpn without charging latency (content read;
// the walker charges the parallel accesses itself).
func (t *Table) Lookup(vpn uint64) (mem.PTE, bool) {
	group := vpn / GroupPages
	for w := 0; w < Ways; w++ {
		e := &t.ways[w][t.hash(group, w)]
		if e.valid && e.group == group {
			pte := e.ptes[vpn%GroupPages]
			return pte, pte.Present()
		}
	}
	return 0, false
}

// Insert adds vpn→pte, relocating element groups cuckoo-style and resizing
// the table when a relocation chain exceeds the bound or load grows too
// high.
func (t *Table) Insert(vpn uint64, pte mem.PTE) error {
	group := vpn / GroupPages
	// Fast path: the group already exists.
	for w := 0; w < Ways; w++ {
		e := &t.ways[w][t.hash(group, w)]
		if e.valid && e.group == group {
			if !e.ptes[vpn%GroupPages].Present() {
				t.count++
			}
			e.ptes[vpn%GroupPages] = pte
			return nil
		}
	}
	if t.groups*maxLoadDen >= t.slots*Ways*maxLoadNum {
		if err := t.resize(); err != nil {
			return err
		}
	}
	fresh := entry{group: group, valid: true}
	fresh.ptes[vpn%GroupPages] = pte
	for attempt := 0; attempt < 4; attempt++ {
		if t.tryInsert(fresh, 32) {
			t.groups++
			t.count++
			return nil
		}
		if err := t.resize(); err != nil {
			return err
		}
	}
	return fmt.Errorf("ecpt: insertion failed for vpn %#x", vpn)
}

func (t *Table) tryInsert(cur entry, bound int) bool {
	way := 0
	for i := 0; i < bound; i++ {
		slot := t.hash(cur.group, way)
		victim := t.ways[way][slot]
		t.ways[way][slot] = cur
		if !victim.valid {
			return true
		}
		cur = victim
		way = (way + 1) % Ways
	}
	// The displaced element is stashed and re-inserted during the resize
	// rehash.
	t.pending = append(t.pending, cur)
	return false
}

func (t *Table) resize() error {
	old := t.ways
	oldSlots := t.slots
	for w := 0; w < Ways; w++ {
		t.alloc.FreeContig(t.bases[w], oldSlots*entryBytes/mem.PageBytes4K)
	}
	if err := t.allocate(oldSlots * 2); err != nil {
		return err
	}
	t.Resizes++
	moved := t.pending
	t.pending = nil
	for w := range old {
		for _, e := range old[w] {
			if e.valid {
				moved = append(moved, e)
			}
		}
	}
	for _, e := range moved {
		if !t.tryInsert(e, 64) {
			return fmt.Errorf("ecpt: rehash failed")
		}
	}
	return nil
}

// Remove deletes vpn; an element whose last PTE is cleared is freed.
func (t *Table) Remove(vpn uint64) {
	group := vpn / GroupPages
	for w := 0; w < Ways; w++ {
		slot := t.hash(group, w)
		e := &t.ways[w][slot]
		if e.valid && e.group == group {
			if e.ptes[vpn%GroupPages].Present() {
				e.ptes[vpn%GroupPages] = 0
				t.count--
			}
			if e.empty() {
				*e = entry{}
				t.groups--
			}
			return
		}
	}
}

// Count returns the number of live PTEs.
func (t *Table) Count() int { return t.count }

// FootprintBytes returns the table's physical memory footprint.
func (t *Table) FootprintBytes() int { return t.slots * entryBytes * Ways }
