package ecpt

import (
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// Clone deep-copies the cuckoo table onto an already-cloned allocator
// (regions stay at the same physical bases, so probe addresses — and hence
// cache behaviour — are identical on both copies). Future resizes on the
// clone allocate from alloc only.
func (t *Table) Clone(alloc *phys.Allocator) *Table {
	c := &Table{
		size:    t.size,
		slots:   t.slots,
		bases:   t.bases,
		alloc:   alloc,
		seeds:   t.seeds,
		groups:  t.groups,
		count:   t.count,
		pending: append([]entry(nil), t.pending...),
		Resizes: t.Resizes,
	}
	for w := range t.ways {
		c.ways[w] = append([]entry(nil), t.ways[w]...)
	}
	return c
}

// Clone deep-copies every per-size table onto the cloned allocator.
func (s *System) Clone(alloc *phys.Allocator) *System {
	c := &System{
		sizes: append([]mem.PageSize(nil), s.sizes...),
	}
	for sz, t := range s.tables {
		if t != nil {
			c.tables[sz] = t.Clone(alloc)
		}
	}
	return c
}
