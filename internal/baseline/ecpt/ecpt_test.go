package ecpt

import (
	"math/rand"
	"testing"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

func TestInsertLookupRemove(t *testing.T) {
	a := phys.New(0, 1<<14)
	tbl, err := NewTable(mem.Size4K, 512, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := tbl.Insert(i*7, mem.MakePTE(mem.PAddr(i)<<12, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 100; i++ {
		pte, ok := tbl.Lookup(i * 7)
		if !ok || pte.Frame() != mem.PAddr(i)<<12 {
			t.Fatalf("lookup %d: ok=%v frame=%#x", i, ok, uint64(pte.Frame()))
		}
	}
	if _, ok := tbl.Lookup(3); ok {
		t.Fatal("phantom entry")
	}
	tbl.Remove(7)
	if _, ok := tbl.Lookup(7); ok {
		t.Fatal("entry survived Remove")
	}
	if tbl.Count() != 99 {
		t.Fatalf("count = %d, want 99", tbl.Count())
	}
}

func TestElasticResize(t *testing.T) {
	a := phys.New(0, 1<<15)
	tbl, err := NewTable(mem.Size4K, 256, a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	want := map[uint64]mem.PAddr{}
	for i := 0; i < 5000; i++ {
		vpn := rng.Uint64() >> 20
		if _, dup := want[vpn]; dup {
			continue
		}
		pa := mem.PAddr(uint64(i+1)) << 12
		if err := tbl.Insert(vpn, mem.MakePTE(pa, 0)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		want[vpn] = pa
	}
	if tbl.Resizes == 0 {
		t.Fatal("expected elastic resizes under load")
	}
	for vpn, pa := range want {
		pte, ok := tbl.Lookup(vpn)
		if !ok || pte.Frame() != pa {
			t.Fatalf("post-resize lookup %#x failed", vpn)
		}
	}
}

func TestNativeWalkerSingleStep(t *testing.T) {
	a := phys.New(0, 1<<15)
	as, err := kernel.NewAddressSpace(a, kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := as.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(a, []mem.PageSize{mem.Size4K}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Sync(as); err != nil {
		t.Fatal(err)
	}
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := &Walker{Sys: sys, Hier: hier}
	va := v.Start + 0x5123
	out := w.Walk(va)
	if !out.OK {
		t.Fatal("ECPT walk failed")
	}
	if out.SeqSteps != 1 {
		t.Fatalf("ECPT seq steps = %d, want 1 (Table 6)", out.SeqSteps)
	}
	if len(out.Refs) != Ways {
		t.Fatalf("refs = %d, want %d parallel ways", len(out.Refs), Ways)
	}
	pa, _, _ := as.PT.Lookup(va)
	if out.PA != pa {
		t.Fatal("ECPT PA mismatch")
	}
	if out.Cycles < HashCycles {
		t.Fatal("hash cost not charged")
	}
}

func TestNativeWalkerTHPFanout(t *testing.T) {
	a := phys.New(0, 1<<15)
	as, err := kernel.NewAddressSpace(a, kernel.Config{THP: true})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := as.MMap(0x40000000, 16<<20, kernel.VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(a, []mem.PageSize{mem.Size4K, mem.Size2M}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Sync(as); err != nil {
		t.Fatal(err)
	}
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := &Walker{Sys: sys, Hier: hier}
	out := w.Walk(v.Start + 0x212345)
	if !out.OK || out.Size != mem.Size2M {
		t.Fatalf("THP ECPT: ok=%v size=%v", out.OK, out.Size)
	}
	if out.SeqSteps != 1 || len(out.Refs) != 2*Ways {
		t.Fatalf("THP ECPT: steps=%d refs=%d, want 1 step with %d parallel", out.SeqSteps, len(out.Refs), 2*Ways)
	}
}
