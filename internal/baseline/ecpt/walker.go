package ecpt

import (
	"fmt"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// System is the set of per-page-size cuckoo tables replacing one radix page
// table. Tables are held in a dense array indexed by mem.PageSize (a
// three-value enum) rather than a map: the walk hot path resolves a size's
// table on every probe, and an array load costs no hashing.
type System struct {
	tables [3]*Table
	sizes  []mem.PageSize
}

// NewSystem creates tables for the given page sizes, each starting with
// initialSlots slots per way, allocated from alloc.
func NewSystem(alloc *phys.Allocator, sizes []mem.PageSize, initialSlots int) (*System, error) {
	s := &System{sizes: sizes}
	for _, sz := range sizes {
		t, err := NewTable(sz, initialSlots, alloc)
		if err != nil {
			return nil, err
		}
		s.tables[sz] = t
	}
	return s, nil
}

// Sync mirrors every present leaf mapping of as into the cuckoo tables.
func (s *System) Sync(as *kernel.AddressSpace) error {
	for _, v := range as.VMAs() {
		for _, p := range v.PresentPages() {
			pa, size, ok := as.PT.Lookup(p.VA)
			if !ok {
				continue
			}
			t := s.tables[size]
			if t == nil {
				return fmt.Errorf("ecpt: no table for %v pages", size)
			}
			pte := mem.MakePTE(mem.AlignDownP(pa, size.Bytes()), mem.PTEWritable)
			if size != mem.Size4K {
				pte |= mem.PTEHuge
			}
			if err := t.Insert(mem.PageNumber(p.VA, size), pte); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table returns the table for one page size.
func (s *System) Table(sz mem.PageSize) *Table { return s.tables[sz] }

// Lookup resolves va across all size tables (content only, no latency).
func (s *System) Lookup(va mem.VAddr) (mem.PAddr, mem.PageSize, bool) {
	for _, sz := range s.sizes {
		if pte, ok := s.tables[sz].Lookup(mem.PageNumber(va, sz)); ok {
			return pte.Frame() + mem.PAddr(mem.PageOffset(va, sz)), sz, true
		}
	}
	return 0, 0, false
}

// probe charges the parallel accesses of one full lookup (all ways of all
// size tables) to the hierarchy, adding refs to g, and returns the resolved
// translation — the same (pa, size, ok) Lookup computes, captured from the
// matching way's element during the scan so the walkers need no second pass
// over the tables. translate maps a slot's table-space address to the
// machine address to access (identity natively).
//
// The group's critical-path latency is the *matching* way's line latency:
// the probes are issued in parallel, the walk continues as soon as the
// probe whose tag matches returns, and the wrong-way probes only cost
// bandwidth and cache pollution (which the hierarchy records naturally).
// This is what lets ECPT track DMT closely despite the fan-out — DMT's
// remaining edge is the hash computation and the pollution (§6.2.1).
func (s *System) probe(va mem.VAddr, g *groupRecorder, hier *cache.Hierarchy, dim string,
	translate func(mem.PAddr) (mem.PAddr, bool)) (mem.PAddr, mem.PageSize, bool) {
	var (
		pa    mem.PAddr
		psz   mem.PageSize
		found bool
	)
	for _, sz := range s.sizes {
		t := s.tables[sz]
		vpn := mem.PageNumber(va, sz)
		for w := 0; w < Ways; w++ {
			slot, pte, match := t.probeWay(vpn, w)
			if match && !found {
				found = true
				pa = pte.Frame() + mem.PAddr(mem.PageOffset(va, sz))
				psz = sz
			}
			m, ok := translate(slot)
			if !ok {
				continue
			}
			r := hier.Access(m)
			g.addMatch(core.MemRef{Addr: m, Cycles: r.Cycles, Served: r.Served, Level: sz.LeafLevel(), Dim: dim},
				match)
		}
	}
	return pa, psz, found
}

// probeWay resolves one way's probe with a single hash evaluation: the
// slot's physical address, the element's PTE for vpn, and whether that way
// holds a present mapping. It fuses what SlotAddr and a content lookup
// compute separately — both need the same hash(group, way), a
// multiply-heavy mix ending in a hardware divide, so sharing one
// evaluation per way removes half the walk's hash work. A group lives in
// at most one way (the cuckoo relocation invariant), so per-way match
// flags are equivalent to a first-match scan.
func (t *Table) probeWay(vpn uint64, w int) (mem.PAddr, mem.PTE, bool) {
	group := vpn / GroupPages
	slot := t.hash(group, w)
	e := &t.ways[w][slot]
	var pte mem.PTE
	if e.valid && e.group == group {
		pte = e.ptes[vpn%GroupPages]
	}
	return t.bases[w] + mem.PAddr(slot*entryBytes), pte, pte.Present()
}

type groupRecorder struct {
	sink     *core.RefSink // when set, refs stream here instead of refs
	cycles   int           // critical-path latency: the matching probes
	maxAll   int           // slowest probe overall (fallback when nothing matches)
	refs     []core.MemRef
	anyMatch bool
}

func (g *groupRecorder) addMatch(r core.MemRef, matches bool) {
	if g.sink != nil {
		g.sink.Append(r)
	} else {
		g.refs = append(g.refs, r)
	}
	if r.Cycles > g.maxAll {
		g.maxAll = r.Cycles
	}
	if matches {
		g.anyMatch = true
		if r.Cycles > g.cycles {
			g.cycles = r.Cycles
		}
	}
}

func (g *groupRecorder) commit(out *core.WalkOutcome) {
	if g.sink == nil {
		out.Refs = append(out.Refs, g.refs...)
	}
	if g.anyMatch {
		out.Cycles += g.cycles
	} else {
		// No match: the walker must wait for every probe to report
		// absence before faulting.
		out.Cycles += g.maxAll
	}
	out.SeqSteps++
}

func identity(pa mem.PAddr) (mem.PAddr, bool) { return pa, true }

// Walker is native ECPT: one sequential step of parallel probes plus the
// hash-computation cost.
type Walker struct {
	Sys  *System
	Hier *cache.Hierarchy
	// Sink, when set, receives the walk's PTE fetches instead of per-walk
	// Refs allocations; outcomes then alias the sink (see core.RefSink).
	Sink *core.RefSink

	Walks uint64
}

// Name implements core.Walker.
func (w *Walker) Name() string { return "ECPT" }

// EmitCounters implements core.CounterSource.
func (w *Walker) EmitCounters(emit func(name string, value uint64)) {
	emit("ecpt.walks", w.Walks)
}

// Walk implements core.Walker.
func (w *Walker) Walk(va mem.VAddr) core.WalkOutcome {
	w.Walks++
	out := core.WalkOutcome{Cycles: HashCycles}
	g := groupRecorder{sink: w.Sink}
	pa, sz, ok := w.Sys.probe(va, &g, w.Hier, "n", identity)
	g.commit(&out)
	if w.Sink != nil {
		out.Refs = w.Sink.Refs()
	}
	if !ok {
		return out
	}
	out.PA, out.Size, out.OK = pa, sz, true
	return out
}

var _ core.Walker = (*Walker)(nil)
var _ core.BatchWalker = (*Walker)(nil)

// WalkBatch runs a batch of translations through the canonical loop against
// the concrete walker, keeping the cuckoo ways' cache sets and the size
// tables' slot lines hot across consecutive ops.
func (w *Walker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}

// VirtWalker is Nested ECPT (§6.2.1): guest cuckoo tables in guest-physical
// memory and host cuckoo tables in machine memory, three sequential steps
// with up to 81 parallel references.
type VirtWalker struct {
	Guest *System // gVA → gPA, slots at guest-physical addresses
	Host  *System // gPA → machine, slots at machine addresses
	Hier  *cache.Hierarchy
	// Sink, when set, receives the walk's PTE fetches instead of per-walk
	// Refs allocations; outcomes then alias the sink (see core.RefSink).
	Sink *core.RefSink

	Walks uint64

	cands []cand // per-walk scratch, reused across walks
}

// cand is one guest candidate slot of the step-1 fan-out.
type cand struct {
	slot    mem.PAddr // guest-physical slot address
	isMatch bool
	machine mem.PAddr
	ok      bool
}

// Name implements core.Walker.
func (w *VirtWalker) Name() string { return "NestedECPT" }

// EmitCounters implements core.CounterSource.
func (w *VirtWalker) EmitCounters(emit func(name string, value uint64)) {
	emit("ecpt_virt.walks", w.Walks)
}

// seal fixes up the outcome's Refs for sink mode at every return point.
func (w *VirtWalker) seal(out core.WalkOutcome) core.WalkOutcome {
	if w.Sink != nil {
		out.Refs = w.Sink.Refs()
	}
	return out
}

// Walk implements core.Walker.
func (w *VirtWalker) Walk(gva mem.VAddr) core.WalkOutcome {
	w.Walks++
	out := core.WalkOutcome{Cycles: 2 * HashCycles}

	// Step 1: host-resolve the machine addresses of every guest candidate
	// slot (fan-out: guest ways × host ways, the "up to 81 parallel" of
	// §3.1). Only the chain of the eventually-matching guest way is on
	// the critical path.
	cands := w.cands[:0]
	var (
		dataGPA mem.PAddr
		gsz     mem.PageSize
		gok     bool
	)
	for _, sz := range w.Guest.sizes {
		t := w.Guest.tables[sz]
		vpn := mem.PageNumber(gva, sz)
		for way := 0; way < Ways; way++ {
			slot, pte, match := t.probeWay(vpn, way)
			if match && !gok {
				gok = true
				dataGPA = pte.Frame() + mem.PAddr(mem.PageOffset(gva, sz))
				gsz = sz
			}
			cands = append(cands, cand{slot: slot, isMatch: match})
		}
	}
	w.cands = cands
	g1 := groupRecorder{sink: w.Sink}
	for i := range cands {
		sub := groupRecorder{sink: w.Sink}
		m, _, ok := w.Host.probe(mem.VAddr(cands[i].slot), &sub, w.Hier, "h", identity)
		cands[i].machine, cands[i].ok = m, ok
		if g1.sink == nil {
			g1.refs = append(g1.refs, sub.refs...)
		}
		if sub.maxAll > g1.maxAll {
			g1.maxAll = sub.maxAll
		}
		if cands[i].isMatch && sub.anyMatch {
			g1.anyMatch = true
			if sub.cycles > g1.cycles {
				g1.cycles = sub.cycles
			}
		}
	}
	g1.commit(&out)

	// Step 2: fetch the guest candidate entries; the matching way's line
	// latency is the critical path.
	g2 := groupRecorder{sink: w.Sink}
	for _, c := range cands {
		if !c.ok {
			continue
		}
		r := w.Hier.Access(c.machine)
		g2.addMatch(core.MemRef{Addr: c.machine, Cycles: r.Cycles, Served: r.Served, Dim: "g"}, c.isMatch)
	}
	g2.commit(&out)
	if !gok {
		return w.seal(out)
	}

	// Step 3: host-resolve the data gPA.
	g3 := groupRecorder{sink: w.Sink}
	m, _, ok := w.Host.probe(mem.VAddr(dataGPA), &g3, w.Hier, "h", identity)
	g3.commit(&out)
	if !ok {
		return w.seal(out)
	}
	out.PA, out.Size, out.OK = m, gsz, true
	return w.seal(out)
}

var _ core.Walker = (*VirtWalker)(nil)
var _ core.BatchWalker = (*VirtWalker)(nil)

// WalkBatch runs a batch of 2D translations through the canonical loop
// against the concrete walker, keeping the guest and host cuckoo slot lines
// and the candidate fan-out's cache sets hot across consecutive ops.
func (w *VirtWalker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}
