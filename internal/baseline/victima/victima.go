// Package victima implements Victima (Kanellopoulos et al.,
// arXiv:2310.04158), the related-work design that spills TLB entries into
// underutilized L2 cache ways: on an L2-TLB miss the MMU probes a small
// number of stolen L2 ways for a block of spilled translations before
// paying for a page walk, and walk results are filled back into those ways
// as ordinary cache blocks — so data traffic evicting a spill block
// silently drops its translations, which is exactly the cost/benefit the
// design trades on.
//
// The reproduction models the spill store as a physically contiguous
// region of SpillWays 64-byte blocks per L2 set. Each block holds eight
// 4 KiB-granule entries (one 32 KiB-aligned VA window per block); an entry
// records the mapping's true leaf size, so 2 MiB mappings reconstruct
// exact PA/size. Block residency is tracked in the *real* simulated L2
// (cache.Cache.Lookup / Insert on the block's machine address, stamped on
// the hierarchy's own LRU clock): a probe that finds its block evicted by
// data fills drops the block's entries and falls through to the inner
// walker, charging one L2 round-trip for the probe either way.
package victima

import (
	"fmt"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

const (
	// SpillWays is how many ways per L2 set the design steals for spilled
	// translations (the paper adapts this; the reproduction pins it).
	SpillWays = 2
	// blockShift aligns the VA window one spill block covers: eight
	// 4 KiB-granule entries per 64-byte block.
	blockShift = mem.PageShift4K + 3
	// entriesPerBlock is the translation fan-out of one block.
	entriesPerBlock = 1 << (blockShift - mem.PageShift4K)
)

// Store is the cloneable substrate of the design: the physically
// contiguous block region whose lines the spilled translations occupy.
// It is allocated once at machine-build time; the walker's entry metadata
// is wire-time-fresh (cold like the TLBs), so Clone is a pure geometry
// copy with the frames already claimed on the cloned allocator.
type Store struct {
	base mem.PAddr
	sets int
}

// NewStore allocates the spill region for an L2 of the given geometry:
// SpillWays blocks per L2 set, one 64-byte line each.
func NewStore(alloc *phys.Allocator, l2 cache.Config) (*Store, error) {
	sets := l2.Sets()
	if sets <= 0 {
		return nil, fmt.Errorf("victima: bad L2 geometry %+v", l2)
	}
	bytes := sets * SpillWays * mem.CacheLineBytes
	frames := (bytes + mem.PageBytes4K - 1) / mem.PageBytes4K
	base, err := alloc.AllocContig(frames, phys.KindPageTable)
	if err != nil {
		return nil, fmt.Errorf("victima: spill region allocation: %w", err)
	}
	return &Store{base: base, sets: sets}, nil
}

// Clone returns an independent Store over the same physical region (the
// cloned allocator already holds the frames; block addresses — and hence
// cache behaviour — are identical on both copies).
func (s *Store) Clone() *Store {
	c := *s
	return &c
}

// Sets returns the number of spill sets (one per L2 set).
func (s *Store) Sets() int { return s.sets }

// BlockAddr returns the machine address of the block at (set, way).
func (s *Store) BlockAddr(set, way int) mem.PAddr {
	return s.base + mem.PAddr((set*SpillWays+way)*mem.CacheLineBytes)
}

// FootprintBytes reports the spill region's size. It is stolen L2
// capacity, not extra memory, but sizing tables want the figure.
func (s *Store) FootprintBytes() int { return s.sets * SpillWays * mem.CacheLineBytes }

// Walker is the Victima MMU extension over any inner walker (native radix,
// or a 2D nested walker under virtualization). All entry metadata is dense
// preallocated arrays, so the walk path allocates nothing.
type Walker struct {
	Store *Store
	Hier  *cache.Hierarchy
	// Inner resolves spill misses: the environment's full page walk.
	Inner core.Walker
	// Sink, when set, receives the walk's fetches instead of per-walk Refs
	// allocations; the inner walker must share it so fallback walks append
	// to the same buffer (see core.RefSink).
	Sink *core.RefSink

	l2Lat int

	// tags holds per-(set, way) block tags (va>>blockShift, stored +1 so 0
	// means invalid); frames/sizes hold the per-entry leaf frame (stored
	// +1) and leaf size; rr is the per-set fill victim rotor.
	tags   []uint64
	frames []mem.PAddr
	sizes  []mem.PageSize
	rr     []uint8

	Walks     uint64
	SpillHits uint64
	Misses    uint64
	Fills     uint64
	// Evictions counts blocks found evicted from the L2 by data traffic at
	// probe time — the translations Victima silently lost.
	Evictions uint64
}

// NewWalker wires a walker over the store; entry state starts cold.
func NewWalker(store *Store, hier *cache.Hierarchy, inner core.Walker, sink *core.RefSink) *Walker {
	n := store.sets * SpillWays
	return &Walker{
		Store:  store,
		Hier:   hier,
		Inner:  inner,
		Sink:   sink,
		l2Lat:  hier.Config().L2.LatencyRT,
		tags:   make([]uint64, n),
		frames: make([]mem.PAddr, n*entriesPerBlock),
		sizes:  make([]mem.PageSize, n*entriesPerBlock),
		rr:     make([]uint8, store.sets),
	}
}

// Name implements core.Walker.
func (w *Walker) Name() string { return "Victima(" + w.Inner.Name() + ")" }

// EmitCounters implements core.CounterSource.
func (w *Walker) EmitCounters(emit func(name string, value uint64)) {
	emit("victima.walks", w.Walks)
	emit("victima.spill_hits", w.SpillHits)
	emit("victima.spill_misses", w.Misses)
	emit("victima.fills", w.Fills)
	emit("victima.evictions", w.Evictions)
	core.EmitChained(w.Inner, emit)
}

// CoverageCounts reports spill hits over total walks — the fraction of
// walks the stolen L2 ways served without a page walk.
func (w *Walker) CoverageCounts() (hits, total uint64) { return w.SpillHits, w.Walks }

// Flush drops every spilled translation (mapping mutations leave them
// stale; the fault harness calls this through the machine's Resync).
func (w *Walker) Flush() {
	for i := range w.tags {
		w.tags[i] = 0
	}
	for i := range w.frames {
		w.frames[i] = 0
	}
}

func (w *Walker) clearBlock(bi int) {
	w.tags[bi] = 0
	base := bi * entriesPerBlock
	for i := base; i < base+entriesPerBlock; i++ {
		w.frames[i] = 0
	}
}

func emitRef(sink *core.RefSink, out *core.WalkOutcome, r core.MemRef) {
	if sink != nil {
		sink.Append(r)
	} else {
		out.Refs = append(out.Refs, r)
	}
}

func sealRefs(sink *core.RefSink, out core.WalkOutcome) core.WalkOutcome {
	if sink != nil {
		out.Refs = sink.Refs()
	}
	return out
}

// Walk implements core.Walker: probe the spill block for va's window, and
// on a live hit return the spilled translation at one L2 round-trip;
// otherwise delegate to the inner walker and fill the result back.
func (w *Walker) Walk(va mem.VAddr) core.WalkOutcome {
	w.Walks++
	out := core.WalkOutcome{}
	tag := uint64(va) >> blockShift
	set := int(tag % uint64(w.Store.sets))
	way := -1
	for i := 0; i < SpillWays; i++ {
		if w.tags[set*SpillWays+i] == tag+1 {
			way = i
			break
		}
	}
	// One probe group: the stolen ways are checked alongside the normal L2
	// tag match, so the probe costs one L2 round-trip hit or miss.
	probeWay := way
	if probeWay < 0 {
		probeWay = 0
	}
	addr := w.Store.BlockAddr(set, probeWay)
	emitRef(w.Sink, &out, core.MemRef{Addr: addr, Cycles: w.l2Lat, Served: cache.LevelL2, Level: 2, Dim: "n"})
	out.Cycles += w.l2Lat
	out.SeqSteps++
	if way >= 0 {
		bi := set*SpillWays + way
		if w.Hier.L2.Lookup(addr, w.Hier.Tick()) {
			slot := int(uint64(va)>>mem.PageShift4K) & (entriesPerBlock - 1)
			if f := w.frames[bi*entriesPerBlock+slot]; f != 0 {
				w.SpillHits++
				size := w.sizes[bi*entriesPerBlock+slot]
				out.PA = (f - 1) + mem.PAddr(mem.PageOffset(va, size))
				out.Size = size
				out.OK = true
				return sealRefs(w.Sink, out)
			}
		} else {
			// Data traffic evicted the block: its translations are gone.
			w.Evictions++
			w.clearBlock(bi)
			way = -1
		}
	}
	w.Misses++
	inner := w.Inner.Walk(va)
	out.Cycles += inner.Cycles
	out.SeqSteps += inner.SeqSteps
	out.Fallback = inner.Fallback
	out.PA, out.Size, out.OK = inner.PA, inner.Size, inner.OK
	if inner.OK {
		w.fill(va, set, way, tag, inner.PA, inner.Size)
	}
	return sealRefs(w.Sink, out)
}

// fill installs a walk result into the spill store: reuse the tag-matching
// block when one exists, else claim the first invalid way, else rotate the
// per-set victim. The block line is (re)inserted into the real L2 so it
// competes with data traffic from now on.
func (w *Walker) fill(va mem.VAddr, set, way int, tag uint64, pa mem.PAddr, size mem.PageSize) {
	if way < 0 {
		for i := 0; i < SpillWays; i++ {
			if w.tags[set*SpillWays+i] == 0 {
				way = i
				break
			}
		}
		if way < 0 {
			way = int(w.rr[set]) % SpillWays
			w.rr[set]++
		}
		w.clearBlock(set*SpillWays + way)
		w.tags[set*SpillWays+way] = tag + 1
	}
	slot := int(uint64(va)>>mem.PageShift4K) & (entriesPerBlock - 1)
	ei := (set*SpillWays+way)*entriesPerBlock + slot
	w.frames[ei] = mem.AlignDownP(pa, size.Bytes()) + 1
	w.sizes[ei] = size
	w.Hier.L2.Insert(w.Store.BlockAddr(set, way), w.Hier.Tick())
	w.Fills++
}

var _ core.Walker = (*Walker)(nil)
var _ core.BatchWalker = (*Walker)(nil)
var _ core.CounterSource = (*Walker)(nil)

// WalkBatch runs a batch of translations through the canonical loop
// against the concrete walker, keeping the spill metadata and the stolen
// L2 ways hot across consecutive ops.
func (w *Walker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}
