package victima

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

func setup(t *testing.T, thp bool) (*kernel.AddressSpace, *kernel.VMA, *cache.Hierarchy, *Walker) {
	t.Helper()
	a := phys.New(0, 1<<15)
	as, err := kernel.NewAddressSpace(a, kernel.Config{THP: thp})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := as.MMap(0x40000000, 16<<20, kernel.VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(a, hier.Config().L2)
	if err != nil {
		t.Fatal(err)
	}
	inner := core.NewRadixWalker(as.PT, hier, nil, 0)
	return as, v, hier, NewWalker(store, hier, inner, nil)
}

func TestSpillHitAfterFill(t *testing.T) {
	as, v, hier, w := setup(t, false)
	va := v.Start + 0x3042
	first := w.Walk(va)
	if !first.OK || w.SpillHits != 0 || w.Fills != 1 {
		t.Fatalf("cold walk: OK=%v spill_hits=%d fills=%d", first.OK, w.SpillHits, w.Fills)
	}
	second := w.Walk(va)
	if !second.OK || w.SpillHits != 1 {
		t.Fatalf("warm walk: OK=%v spill_hits=%d", second.OK, w.SpillHits)
	}
	if want := hier.Config().L2.LatencyRT; second.Cycles != want {
		t.Fatalf("spill hit cost %d cycles, want one L2 round-trip (%d)", second.Cycles, want)
	}
	if second.SeqSteps != 1 {
		t.Fatalf("spill hit took %d sequential steps, want 1", second.SeqSteps)
	}
	pa, size, ok := as.PT.Lookup(va)
	if !ok || second.PA != pa || second.Size != size {
		t.Fatalf("spill hit = (%#x, %v), page tables say (%#x, %v)", second.PA, second.Size, pa, size)
	}
}

func TestDataTrafficEvictionDropsSpilledTranslations(t *testing.T) {
	_, v, hier, w := setup(t, false)
	va := v.Start + 0x8000
	w.Walk(va)
	// Stream data lines through the hierarchy: four L2 capacities of
	// distinct addresses force the spill block out of the shared LRU array.
	l2 := hier.Config().L2
	for off := 0; off < 4*l2.SizeBytes; off += mem.CacheLineBytes {
		hier.Access(mem.PAddr(1<<30 + off))
	}
	out := w.Walk(va)
	if !out.OK {
		t.Fatal("post-eviction walk failed")
	}
	if w.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (data traffic must drop the block)", w.Evictions)
	}
	if w.SpillHits != 0 {
		t.Fatalf("spill_hits = %d after eviction, want 0", w.SpillHits)
	}
}

func TestFlushDropsSpilledState(t *testing.T) {
	_, v, _, w := setup(t, false)
	va := v.Start + 0x11000
	w.Walk(va)
	w.Flush()
	out := w.Walk(va)
	if !out.OK {
		t.Fatal("post-flush walk failed")
	}
	if w.SpillHits != 0 || w.Misses != 2 {
		t.Fatalf("after flush: spill_hits=%d misses=%d, want 0 and 2", w.SpillHits, w.Misses)
	}
}

func Test2MLeafReconstructedFromSpillEntry(t *testing.T) {
	as, v, _, w := setup(t, true)
	// An offset deep inside a 2 MiB page: the 4 KiB-granule spill entry
	// records the true leaf size, so the hit must rebuild the exact PA.
	va := v.Start + 5<<12 + 0x123
	first := w.Walk(va)
	if !first.OK {
		t.Fatal("cold walk failed")
	}
	if first.Size != mem.Size2M {
		t.Skipf("THP populate did not map 2M pages (got %v)", first.Size)
	}
	second := w.Walk(va)
	if w.SpillHits != 1 {
		t.Fatalf("spill_hits = %d, want 1", w.SpillHits)
	}
	pa, size, ok := as.PT.Lookup(va)
	if !ok || second.PA != pa || second.Size != size {
		t.Fatalf("spill hit = (%#x, %v), page tables say (%#x, %v)", second.PA, second.Size, pa, size)
	}
}
