package fpt

import (
	"testing"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

func TestMapLookup(t *testing.T) {
	a := phys.New(0, 1<<14)
	tbl, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x40001000, 0xabc000, mem.Size4K); err != nil {
		t.Fatal(err)
	}
	pa, size, ok := tbl.Lookup(0x40001234)
	if !ok || size != mem.Size4K || pa != 0xabc234 {
		t.Fatalf("lookup = (%#x, %v, %v)", uint64(pa), size, ok)
	}
	if _, _, ok := tbl.Lookup(0x40002000); ok {
		t.Fatal("phantom mapping")
	}
	if err := tbl.Map(0x80200000, 0x40200000, mem.Size2M); err != nil {
		t.Fatal(err)
	}
	pa, size, ok = tbl.Lookup(0x80234567)
	if !ok || size != mem.Size2M || pa != 0x40234567 {
		t.Fatalf("2M lookup = (%#x, %v, %v)", uint64(pa), size, ok)
	}
}

func TestNativeWalkerTwoSteps(t *testing.T) {
	a := phys.New(0, 1<<15)
	as, err := kernel.NewAddressSpace(a, kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := as.MMap(0x40000000, 8<<20, kernel.VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	tbl, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Sync(as); err != nil {
		t.Fatal(err)
	}
	hier, err := cache.NewHierarchy(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := &Walker{T: tbl, Hier: hier}
	va := v.Start + 0x7123
	out := w.Walk(va)
	if !out.OK {
		t.Fatal("FPT walk failed")
	}
	if out.SeqSteps != 2 {
		t.Fatalf("FPT seq steps = %d, want 2 (Table 6)", out.SeqSteps)
	}
	pa, _, _ := as.PT.Lookup(va)
	if out.PA != pa {
		t.Fatal("FPT PA mismatch")
	}
}

func TestSlotAddressesDistinct(t *testing.T) {
	a := phys.New(0, 1<<14)
	tbl, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(0x40000000, 0x1000, mem.Size4K); err != nil {
		t.Fatal(err)
	}
	s4, s2, ok := tbl.LeafSlots(0x40000000)
	if !ok || s4 == s2 {
		t.Fatal("leaf slots must be distinct")
	}
	root := tbl.RootSlot(0x40000000)
	if root == s4 || root == s2 {
		t.Fatal("root slot collides with leaf slots")
	}
	// Root slots of addresses 1 GiB apart must differ.
	if tbl.RootSlot(0x40000000) == tbl.RootSlot(0x40000000+1<<30) {
		t.Fatal("root index ignores VA[47:30]")
	}
}

func TestFootprint(t *testing.T) {
	a := phys.New(0, 1<<15)
	tbl, err := New(a)
	if err != nil {
		t.Fatal(err)
	}
	base := tbl.FootprintBytes()
	if base != flatEntries*mem.PTEBytes {
		t.Fatalf("empty footprint = %d", base)
	}
	if err := tbl.Map(0x40000000, 0x1000, mem.Size4K); err != nil {
		t.Fatal(err)
	}
	if tbl.FootprintBytes() <= base {
		t.Fatal("leaf allocation not reflected in footprint")
	}
}
