// Package fpt implements Flattened Page Tables (Park et al., ASPLOS'22),
// the paper's §6.2.1 comparison point that merges adjacent radix levels:
// L4 with L3 and L2 with L1, so a native walk takes two sequential memory
// references and a virtualized two-dimensional walk takes eight.
//
// Each flattened node is a physically-contiguous 2 MiB + 4 KiB region:
// 2^18 base-page PTEs indexed by VA[29:12] plus a 512-entry huge-page array
// indexed by VA[29:21] (so 2 MiB mappings also resolve in two references,
// probed in parallel with the base-page slot).
package fpt

import (
	"fmt"

	"dmt/internal/cache"
	"dmt/internal/core"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

const (
	// flatBits is the number of VA bits consumed per flattened level.
	flatBits = 18
	// flatEntries is the fan-out of a flattened node.
	flatEntries = 1 << flatBits
	// leafFrames is the size of one flattened leaf node: 2 MiB of 4K
	// PTEs plus one frame of 2M PTEs.
	leafFrames = flatEntries*mem.PTEBytes/mem.PageBytes4K + 1
	// hugeArrayOffset is the byte offset of the 2M-PTE array.
	hugeArrayOffset = flatEntries * mem.PTEBytes
)

func rootIndex(va mem.VAddr) int { return int(uint64(va)>>30) & (flatEntries - 1) }
func leafIndex(va mem.VAddr) int { return int(uint64(va)>>12) & (flatEntries - 1) }
func hugeIndex(va mem.VAddr) int { return int(uint64(va)>>21) & 511 }

// Table is one flattened page table.
type Table struct {
	alloc    *phys.Allocator
	rootBase mem.PAddr
	root     []mem.PTE
	leaves   map[int]*leafNode
}

type leafNode struct {
	base  mem.PAddr
	pte4k []mem.PTE
	pte2m []mem.PTE
}

// New creates an empty flattened table; the merged L4L3 root occupies a
// contiguous 2 MiB region.
func New(alloc *phys.Allocator) (*Table, error) {
	rootFrames := flatEntries * mem.PTEBytes / mem.PageBytes4K
	base, err := alloc.AllocContig(rootFrames, phys.KindPageTable)
	if err != nil {
		return nil, fmt.Errorf("fpt: root allocation: %w", err)
	}
	return &Table{
		alloc:    alloc,
		rootBase: base,
		root:     make([]mem.PTE, flatEntries),
		leaves:   map[int]*leafNode{},
	}, nil
}

func (t *Table) leafFor(va mem.VAddr, create bool) (*leafNode, error) {
	idx := rootIndex(va)
	if n, ok := t.leaves[idx]; ok {
		return n, nil
	}
	if !create {
		return nil, nil
	}
	base, err := t.alloc.AllocContig(leafFrames, phys.KindPageTable)
	if err != nil {
		return nil, fmt.Errorf("fpt: leaf allocation: %w", err)
	}
	n := &leafNode{base: base, pte4k: make([]mem.PTE, flatEntries), pte2m: make([]mem.PTE, 512)}
	t.leaves[idx] = n
	t.root[idx] = mem.MakePTE(base, 0)
	return n, nil
}

// Map installs va→pa at the given page size (4K or 2M; 1G pages resolve at
// the root level and are unsupported in this reproduction's workloads).
func (t *Table) Map(va mem.VAddr, pa mem.PAddr, size mem.PageSize) error {
	n, err := t.leafFor(va, true)
	if err != nil {
		return err
	}
	switch size {
	case mem.Size4K:
		n.pte4k[leafIndex(va)] = mem.MakePTE(pa, mem.PTEWritable)
	case mem.Size2M:
		n.pte2m[hugeIndex(va)] = mem.MakePTE(pa, mem.PTEWritable|mem.PTEHuge)
	default:
		return fmt.Errorf("fpt: unsupported page size %v", size)
	}
	return nil
}

// Lookup resolves va (content only).
func (t *Table) Lookup(va mem.VAddr) (mem.PAddr, mem.PageSize, bool) {
	n, _ := t.leafFor(va, false)
	if n == nil {
		return 0, 0, false
	}
	if pte := n.pte2m[hugeIndex(va)]; pte.Present() {
		return pte.Frame() + mem.PAddr(mem.PageOffset(va, mem.Size2M)), mem.Size2M, true
	}
	if pte := n.pte4k[leafIndex(va)]; pte.Present() {
		return pte.Frame() + mem.PAddr(mem.PageOffset(va, mem.Size4K)), mem.Size4K, true
	}
	return 0, 0, false
}

// RootSlot returns the physical address of the root entry for va.
func (t *Table) RootSlot(va mem.VAddr) mem.PAddr {
	return t.rootBase + mem.PAddr(rootIndex(va)*mem.PTEBytes)
}

// LeafSlots returns the physical addresses probed at the leaf level: the
// 4K slot and the 2M slot (parallel probe).
func (t *Table) LeafSlots(va mem.VAddr) (slot4k, slot2m mem.PAddr, ok bool) {
	n, _ := t.leafFor(va, false)
	if n == nil {
		return 0, 0, false
	}
	return n.base + mem.PAddr(leafIndex(va)*mem.PTEBytes),
		n.base + hugeArrayOffset + mem.PAddr(hugeIndex(va)*mem.PTEBytes), true
}

// leafMatch reports which leaf probe holds the valid entry for va:
// 0 for the 4K slot, 1 for the 2M slot, -1 when unmapped.
func (t *Table) leafMatch(va mem.VAddr) int {
	n, _ := t.leafFor(va, false)
	if n == nil {
		return -1
	}
	if n.pte2m[hugeIndex(va)].Present() {
		return 1
	}
	if n.pte4k[leafIndex(va)].Present() {
		return 0
	}
	return -1
}

// Sync mirrors every present leaf mapping of as.
func (t *Table) Sync(as *kernel.AddressSpace) error {
	for _, v := range as.VMAs() {
		for _, p := range v.PresentPages() {
			pa, size, ok := as.PT.Lookup(p.VA)
			if !ok {
				continue
			}
			if err := t.Map(p.VA, mem.AlignDownP(pa, size.Bytes()), size); err != nil {
				return err
			}
		}
	}
	return nil
}

// FootprintBytes reports the table's physical footprint (root + leaves).
func (t *Table) FootprintBytes() int {
	return flatEntries*mem.PTEBytes + len(t.leaves)*leafFrames*mem.PageBytes4K
}

// emitRef streams one PTE fetch into the sink when one is installed, or
// appends it to the outcome's own Refs slice (legacy standalone use).
func emitRef(sink *core.RefSink, out *core.WalkOutcome, r core.MemRef) {
	if sink != nil {
		sink.Append(r)
	} else {
		out.Refs = append(out.Refs, r)
	}
}

// sealRefs points the outcome at the sink's buffer; call at every return.
func sealRefs(sink *core.RefSink, out core.WalkOutcome) core.WalkOutcome {
	if sink != nil {
		out.Refs = sink.Refs()
	}
	return out
}

// Walker is native FPT: two sequential references (root, then the leaf
// probes in parallel).
type Walker struct {
	T    *Table
	Hier *cache.Hierarchy
	// Sink, when set, receives the walk's PTE fetches instead of per-walk
	// Refs allocations; outcomes then alias the sink (see core.RefSink).
	Sink *core.RefSink

	Walks uint64
}

// Name implements core.Walker.
func (w *Walker) Name() string { return "FPT" }

// EmitCounters implements core.CounterSource.
func (w *Walker) EmitCounters(emit func(name string, value uint64)) {
	emit("fpt.walks", w.Walks)
}

// Walk implements core.Walker.
func (w *Walker) Walk(va mem.VAddr) core.WalkOutcome {
	w.Walks++
	out := core.WalkOutcome{}
	r := w.Hier.Access(w.T.RootSlot(va))
	emitRef(w.Sink, &out, core.MemRef{Addr: w.T.RootSlot(va), Cycles: r.Cycles, Served: r.Served, Level: 3, Dim: "n"})
	out.Cycles += r.Cycles
	out.SeqSteps++
	s4, s2, ok := w.T.LeafSlots(va)
	if !ok {
		return sealRefs(w.Sink, out)
	}
	// The parallel 4K/2M probes resolve on the valid entry's return; the
	// other probe never gates the walk.
	match := w.T.leafMatch(va)
	g, slowest := 0, 0
	for i, slot := range [2]mem.PAddr{s4, s2} {
		rr := w.Hier.Access(slot)
		emitRef(w.Sink, &out, core.MemRef{Addr: slot, Cycles: rr.Cycles, Served: rr.Served, Level: 1, Dim: "n"})
		if rr.Cycles > slowest {
			slowest = rr.Cycles
		}
		if i == match {
			g = rr.Cycles
		}
	}
	if match < 0 {
		g = slowest
	}
	out.Cycles += g
	out.SeqSteps++
	pa, size, ok := w.T.Lookup(va)
	if !ok {
		return sealRefs(w.Sink, out)
	}
	out.PA, out.Size, out.OK = pa, size, true
	return sealRefs(w.Sink, out)
}

var _ core.Walker = (*Walker)(nil)
var _ core.BatchWalker = (*Walker)(nil)

// WalkBatch runs a batch of translations through the canonical loop against
// the concrete walker, keeping the flattened table's root and leaf slot
// lines hot across consecutive ops.
func (w *Walker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}

// VirtWalker is FPT in a virtualized environment: a two-dimensional walk
// over a guest flattened table (in guest-physical memory) and a host
// flattened table (in machine memory): 2×(2+1)+2 = 8 sequential references.
type VirtWalker struct {
	Guest *Table // gVA → gPA, slots at guest-physical addresses
	Host  *Table // gPA → machine, slots at machine addresses
	Hier  *cache.Hierarchy
	// Sink, when set, receives the walk's PTE fetches instead of per-walk
	// Refs allocations; outcomes then alias the sink (see core.RefSink).
	Sink *core.RefSink

	Walks uint64
}

// Name implements core.Walker.
func (w *VirtWalker) Name() string { return "FPT-virt" }

// EmitCounters implements core.CounterSource.
func (w *VirtWalker) EmitCounters(emit func(name string, value uint64)) {
	emit("fpt_virt.walks", w.Walks)
}

// Walk implements core.Walker.
func (w *VirtWalker) Walk(gva mem.VAddr) core.WalkOutcome {
	w.Walks++
	out := core.WalkOutcome{}
	// Guest root fetch (host-resolved first).
	if !w.guestFetch(gva, [2]mem.PAddr{w.Guest.RootSlot(gva)}, 1, &out) {
		return sealRefs(w.Sink, out)
	}
	// Guest leaf fetch: parallel 4K/2M probes, each host-resolved.
	s4, s2, ok := w.Guest.LeafSlots(gva)
	if !ok {
		return sealRefs(w.Sink, out)
	}
	if !w.guestFetch(gva, [2]mem.PAddr{s4, s2}, 2, &out) {
		return sealRefs(w.Sink, out)
	}
	dataGPA, size, ok := w.Guest.Lookup(gva)
	if !ok {
		return sealRefs(w.Sink, out)
	}
	// Final host resolution of the data gPA.
	m, ok := w.hostResolve(dataGPA, &out)
	if !ok {
		return sealRefs(w.Sink, out)
	}
	out.PA, out.Size, out.OK = m, size, true
	return sealRefs(w.Sink, out)
}

// guestFetch host-resolves the first n guest slots and fetches the guest
// entries. The host resolutions of parallel guest probes overlap: one
// host-root group, one host-leaf group, one guest-fetch group — three
// sequential steps regardless of the probe fan-out, so a full virtualized
// walk costs 3+3+2 = 8 sequential references as the paper reports (Table 6).
func (w *VirtWalker) guestFetch(guestVA mem.VAddr, slots [2]mem.PAddr, n int, out *core.WalkOutcome) bool {
	// Host root probes for every slot (parallel).
	g := 0
	for _, s := range slots[:n] {
		root := w.Host.RootSlot(mem.VAddr(s))
		r := w.Hier.Access(root)
		emitRef(w.Sink, out, core.MemRef{Addr: root, Cycles: r.Cycles, Served: r.Served, Level: 3, Dim: "h"})
		if r.Cycles > g {
			g = r.Cycles
		}
	}
	out.Cycles += g
	out.SeqSteps++
	// Host leaf probes for every slot (parallel; the valid entry's line
	// is the critical path per slot, the slowest valid chain gates the
	// group).
	g = 0
	var machines [2]mem.PAddr
	for mi, s := range slots[:n] {
		s4, s2, ok := w.Host.LeafSlots(mem.VAddr(s))
		if !ok {
			return false
		}
		match := w.Host.leafMatch(mem.VAddr(s))
		slotCritical, slowest := 0, 0
		for i, slot := range [2]mem.PAddr{s4, s2} {
			rr := w.Hier.Access(slot)
			emitRef(w.Sink, out, core.MemRef{Addr: slot, Cycles: rr.Cycles, Served: rr.Served, Level: 1, Dim: "h"})
			if rr.Cycles > slowest {
				slowest = rr.Cycles
			}
			if i == match {
				slotCritical = rr.Cycles
			}
		}
		if match < 0 {
			slotCritical = slowest
		}
		if slotCritical > g {
			g = slotCritical
		}
		m, _, ok := w.Host.Lookup(mem.VAddr(s))
		if !ok {
			return false
		}
		machines[mi] = m
	}
	out.Cycles += g
	out.SeqSteps++
	// Guest entry fetches (parallel; the valid guest entry resolves the
	// group).
	g = 0
	slowest := 0
	for i, m := range machines[:n] {
		r := w.Hier.Access(m)
		emitRef(w.Sink, out, core.MemRef{Addr: m, Cycles: r.Cycles, Served: r.Served, Dim: "g"})
		if r.Cycles > slowest {
			slowest = r.Cycles
		}
		// For the root call there is one slot (always the match); for
		// the leaf call slot 0 is the 4K probe and slot 1 the 2M probe.
		if n == 1 || i == w.Guest.leafMatch(guestVA) {
			g = r.Cycles
		}
	}
	if g == 0 {
		g = slowest
	}
	out.Cycles += g
	out.SeqSteps++
	return true
}

// hostResolve walks the host flattened table for gpa: two sequential refs.
func (w *VirtWalker) hostResolve(gpa mem.PAddr, out *core.WalkOutcome) (mem.PAddr, bool) {
	root := w.Host.RootSlot(mem.VAddr(gpa))
	r := w.Hier.Access(root)
	emitRef(w.Sink, out, core.MemRef{Addr: root, Cycles: r.Cycles, Served: r.Served, Level: 3, Dim: "h"})
	out.Cycles += r.Cycles
	out.SeqSteps++
	s4, s2, ok := w.Host.LeafSlots(mem.VAddr(gpa))
	if !ok {
		return 0, false
	}
	match := w.Host.leafMatch(mem.VAddr(gpa))
	g, slowest := 0, 0
	for i, slot := range [2]mem.PAddr{s4, s2} {
		rr := w.Hier.Access(slot)
		emitRef(w.Sink, out, core.MemRef{Addr: slot, Cycles: rr.Cycles, Served: rr.Served, Level: 1, Dim: "h"})
		if rr.Cycles > slowest {
			slowest = rr.Cycles
		}
		if i == match {
			g = rr.Cycles
		}
	}
	if match < 0 {
		g = slowest
	}
	out.Cycles += g
	out.SeqSteps++
	m, _, ok := w.Host.Lookup(mem.VAddr(gpa))
	return m, ok
}

var _ core.Walker = (*VirtWalker)(nil)
var _ core.BatchWalker = (*VirtWalker)(nil)

// WalkBatch runs a batch of 2D translations through the canonical loop
// against the concrete walker, keeping both dimensions' flattened-table
// slot lines hot across consecutive ops.
func (w *VirtWalker) WalkBatch(b *core.Batch, reqs []core.Req, res []core.Res) int {
	return core.RunBatch(b, w, reqs, res)
}
