package fpt

import (
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// Clone deep-copies the flattened table onto an already-cloned allocator.
// Root and leaf regions keep their physical bases (slot addresses — and
// hence cache behaviour — are identical on both copies); future leaf
// allocations on the clone draw from alloc only.
func (t *Table) Clone(alloc *phys.Allocator) *Table {
	c := &Table{
		alloc:    alloc,
		rootBase: t.rootBase,
		root:     append([]mem.PTE(nil), t.root...),
		leaves:   make(map[int]*leafNode, len(t.leaves)),
	}
	for idx, n := range t.leaves {
		c.leaves[idx] = &leafNode{
			base:  n.base,
			pte4k: append([]mem.PTE(nil), n.pte4k...),
			pte2m: append([]mem.PTE(nil), n.pte2m...),
		}
	}
	return c
}
