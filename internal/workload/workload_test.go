package workload

import (
	"testing"

	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// buildSmall instantiates a workload with a tiny working set for tests.
func buildSmall(t *testing.T, s Spec, ws uint64) (*kernel.AddressSpace, *Built) {
	t.Helper()
	as, err := kernel.NewAddressSpace(phys.New(0, 1<<17), kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build(as, ws)
	if err != nil {
		t.Fatal(err)
	}
	return as, b
}

func TestAllWorkloadsGenerateInBounds(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			as, b := buildSmall(t, s, 96<<20)
			gen := b.NewGen(1)
			for i := 0; i < 20000; i++ {
				va, _ := gen()
				if _, ok := as.FindVMA(va); !ok {
					t.Fatalf("%s: access %d at %#x outside every VMA", s.Name, i, uint64(va))
				}
				if _, _, ok := as.PT.Lookup(va); !ok {
					t.Fatalf("%s: access %d at %#x not populated", s.Name, i, uint64(va))
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, s := range All() {
		_, b := buildSmall(t, s, 64<<20)
		g1, g2 := b.NewGen(7), b.NewGen(7)
		for i := 0; i < 1000; i++ {
			va1, w1 := g1()
			va2, w2 := g2()
			if va1 != va2 || w1 != w2 {
				t.Fatalf("%s: divergence at op %d", s.Name, i)
			}
		}
		g3 := b.NewGen(8)
		same := true
		for i := 0; i < 100; i++ {
			va1, _ := b.NewGen(7)()
			va3, _ := g3()
			if va1 != va3 {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical traces", s.Name)
		}
	}
}

func TestVMACountsMatchTable1(t *testing.T) {
	want := map[string]int{
		"Redis": 182, "Memcached": 1065, "GUPS": 103, "BTree": 109,
		"Canneal": 116, "XSBench": 111, "Graph500": 105,
	}
	for _, s := range All() {
		as, _ := buildSmall(t, s, 64<<20)
		if got := len(as.VMAs()); got != want[s.Name] {
			t.Errorf("%s: %d VMAs, want %d (Table 1)", s.Name, got, want[s.Name])
		}
	}
}

func TestVMAStatsMatchTable1(t *testing.T) {
	// Expected Table 1 values. Cov99 is layout-derived so we check it
	// against the paper's column with a tolerance of ±1 for workloads
	// whose split between heap and secondary VMAs is a modelling choice.
	type row struct{ cov, clusters int }
	want := map[string]row{
		"GUPS":      {1, 1},
		"Graph500":  {1, 1},
		"XSBench":   {1, 1},
		"BTree":     {2, 2},
		"Canneal":   {2, 2},
		"Redis":     {6, 6},
		"Memcached": {778, 2},
	}
	for _, s := range All() {
		as, _ := buildSmall(t, s, 256<<20)
		st := ComputeVMAStats(RegionsOf(as))
		w := want[s.Name]
		if s.Name == "Memcached" {
			// At 1/100 scale the 1% residual absorbs a couple of slab
			// VMAs, so the measured count sits just under the paper's
			// 778; the shape (hundreds of covering VMAs, 2 clusters)
			// is the reproduction target.
			if st.Cov99 < w.cov-5 || st.Cov99 > w.cov {
				t.Errorf("%s: Cov99 = %d, want within [%d,%d]", s.Name, st.Cov99, w.cov-5, w.cov)
			}
		} else if st.Cov99 != w.cov {
			t.Errorf("%s: Cov99 = %d, want %d", s.Name, st.Cov99, w.cov)
		}
		if st.Clusters != w.clusters {
			t.Errorf("%s: Clusters = %d, want %d", s.Name, st.Clusters, w.clusters)
		}
	}
}

func TestComputeVMAStatsEdgeCases(t *testing.T) {
	if st := ComputeVMAStats(nil); st.Total != 0 {
		t.Fatal("empty layout must yield zero stats")
	}
	one := []Region{{Start: 0x1000, End: 0x2000}}
	st := ComputeVMAStats(one)
	if st.Total != 1 || st.Cov99 != 1 || st.Clusters != 1 {
		t.Fatalf("single region stats = %+v", st)
	}
	// Two equal regions with a huge gap: 2 covering VMAs, 2 clusters.
	two := []Region{{0x1000, 0x10000000}, {0x40000000000, 0x4000FFFF000}}
	st = ComputeVMAStats(two)
	if st.Cov99 != 2 || st.Clusters != 2 {
		t.Fatalf("two-region stats = %+v", st)
	}
	// Two adjacent regions with a tiny bubble cluster into 1.
	adj := []Region{{0x1000, 0x10000000}, {0x10002000, 0x20000000}}
	st = ComputeVMAStats(adj)
	if st.Clusters != 1 {
		t.Fatalf("adjacent regions did not cluster: %+v", st)
	}
}

func TestSpecCorporaRanges(t *testing.T) {
	for _, tc := range []struct {
		year, n, minT, maxT, maxCov, maxCl int
	}{
		{2006, 30, 18, 39, 14, 8},
		{2017, 47, 24, 70, 21, 12},
	} {
		corpus := SpecCorpus(tc.year)
		if len(corpus) != tc.n {
			t.Fatalf("SPEC %d corpus has %d workloads, want %d", tc.year, len(corpus), tc.n)
		}
		for _, wl := range corpus {
			st := ComputeVMAStats(wl.Regions)
			if st.Total < tc.minT || st.Total > tc.maxT {
				t.Errorf("SPEC %d %s: total %d outside [%d,%d]", tc.year, wl.Name, st.Total, tc.minT, tc.maxT)
			}
			if st.Cov99 < 1 || st.Cov99 > tc.maxCov {
				t.Errorf("SPEC %d %s: cov99 %d outside [1,%d]", tc.year, wl.Name, st.Cov99, tc.maxCov)
			}
			if st.Clusters < 1 || st.Clusters > tc.maxCl {
				t.Errorf("SPEC %d %s: clusters %d outside [1,%d]", tc.year, wl.Name, st.Clusters, tc.maxCl)
			}
			if st.Clusters > st.Cov99 {
				t.Errorf("SPEC %d %s: clusters %d > cov99 %d", tc.year, wl.Name, st.Clusters, st.Cov99)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Redis"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBTreeLocalityGradient(t *testing.T) {
	// The B-tree generator must reuse upper-level nodes heavily: the
	// root page should be touched far more often than any leaf page.
	_, b := buildSmall(t, BTree(), 96<<20)
	gen := b.NewGen(3)
	counts := map[mem.VAddr]int{}
	for i := 0; i < 50000; i++ {
		va, _ := gen()
		counts[mem.AlignDown(va, mem.PageBytes4K)]++
	}
	rootPage := b.Major[0].Start
	rootCount := counts[rootPage]
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if rootCount != max {
		t.Fatalf("root page count %d is not the maximum %d", rootCount, max)
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct pages touched; tree traversal too narrow", len(counts))
	}
}

func TestGUPSUniformity(t *testing.T) {
	_, b := buildSmall(t, GUPS(), 64<<20)
	gen := b.NewGen(5)
	half := b.Major[0].Start + mem.VAddr(b.Major[0].Size()/2)
	lo := 0
	const n = 20000
	for i := 0; i < n; i++ {
		va, write := gen()
		if !write {
			t.Fatal("GUPS must be 100% updates")
		}
		if va < half {
			lo++
		}
	}
	frac := float64(lo) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("GUPS split %.3f not uniform", frac)
	}
}
