package workload

import (
	"dmt/internal/kernel"
	"dmt/internal/mem"
)

// GUPS is the HPC Challenge RandomAccess kernel (Table 4): uniformly
// random 8-byte updates over one huge array — the least cacheable pattern
// and a single dominant VMA (Table 1: 103 VMAs, 1 covers 99 %).
func GUPS() Spec {
	return Spec{
		Name:        "GUPS",
		Description: "Random memory accesses, 100% updates",
		PaperWSGiB:  128,
		DefaultWS:   13 * gib / 10, // 1.3 GiB
		build: func(as *kernel.AddressSpace, ws uint64) (*Built, error) {
			heap, err := as.MMap(heapBase, uint64(mem.AlignUp(mem.VAddr(ws), mem.PageBytes2M)), kernel.VMAHeap, "table")
			if err != nil {
				return nil, err
			}
			if err := smallVMAs(as, 102, 0x7f0000000000); err != nil {
				return nil, err
			}
			return &Built{
				Major: []*kernel.VMA{heap},
				NewGen: func(seed int64) Gen {
					r := rng(seed)
					n := int64(heap.Size() / 8)
					return func() (mem.VAddr, bool) {
						return heap.Start + mem.VAddr(r.Int63n(n)*8), true
					}
				},
			}, nil
		},
	}
}

// Redis models the in-memory key-value store under 100 % GETs: a uniform
// hash-bucket probe followed by a dependent value fetch in a separate
// allocator arena. Table 1: 182 VMAs, 6 covering 99 % — the jemalloc-style
// arenas appear as six large mappings.
func Redis() Spec {
	return Spec{
		Name:        "Redis",
		Description: "In-memory key-value store, 100% reads",
		PaperWSGiB:  155,
		DefaultWS:   16 * gib / 10, // 1.6 GiB
		build: func(as *kernel.AddressSpace, ws uint64) (*Built, error) {
			// One hash-table VMA (~1/8 of WS) + five value arenas.
			htBytes := alignedPart(ws, 8)
			arenaBytes := alignedPart(ws-htBytes, 5)
			ht, err := as.MMap(heapBase, htBytes, kernel.VMAHeap, "hashtable")
			if err != nil {
				return nil, err
			}
			var arenas []*kernel.VMA
			addr := mem.AlignUp(ht.End+0x10000000, mem.PageBytes2M)
			for i := 0; i < 5; i++ {
				a, err := as.MMap(addr, arenaBytes, kernel.VMAFile, "arena")
				if err != nil {
					return nil, err
				}
				arenas = append(arenas, a)
				addr = mem.AlignUp(a.End+0x10000000, mem.PageBytes2M)
			}
			if err := smallVMAs(as, 176, 0x7f0000000000); err != nil {
				return nil, err
			}
			major := append([]*kernel.VMA{ht}, arenas...)
			return &Built{
				Major: major,
				NewGen: func(seed int64) Gen {
					r := rng(seed)
					buckets := int64(ht.Size() / 64)
					per := int64(arenaBytes / 256)
					pending := mem.VAddr(0)
					return func() (mem.VAddr, bool) {
						if pending != 0 {
							va := pending
							pending = 0
							return va, false
						}
						// Bucket probe now; dependent value fetch next.
						a := arenas[r.Intn(len(arenas))]
						pending = a.Start + mem.VAddr(r.Int63n(per)*256)
						return ht.Start + mem.VAddr(r.Int63n(buckets)*64), false
					}
				},
			}, nil
		},
	}
}

// Memcached reproduces the distinctive Table 1 layout: 1,065 VMAs of which
// 778 slab mappings cover 99 % of the footprint, packed into two clusters
// with sub-16 KiB bubbles. Accesses are hash probe + slab item fetch.
func Memcached() Spec {
	return Spec{
		Name:        "Memcached",
		Description: "Distributed-memory object cache, 100% reads",
		PaperWSGiB:  95,
		DefaultWS:   gib, // 1.0 GiB
		build: func(as *kernel.AddressSpace, ws uint64) (*Built, error) {
			htBytes := alignedPart(ws, 10)
			ht, err := as.MMap(heapBase, htBytes, kernel.VMAHeap, "hashtable")
			if err != nil {
				return nil, err
			}
			// 778 slab VMAs in 2 clusters, 8 KiB bubbles between them.
			slabBytes := uint64(mem.AlignUp(mem.VAddr((ws-htBytes)/778), mem.PageBytes4K))
			var slabs []*kernel.VMA
			addr := ht.End + 1<<12 // adjacent: the hash table joins slab cluster 1
			for i := 0; i < 778; i++ {
				if i == 389 {
					addr += 0x40000000 // the inter-cluster gap
				}
				s, err := as.MMap(addr, slabBytes, kernel.VMAFile, "slab")
				if err != nil {
					return nil, err
				}
				slabs = append(slabs, s)
				addr = s.End + 1<<12 // 4 KiB bubble (paper: <16 KiB)
			}
			if err := smallVMAs(as, 1065-1-778, 0x7f0000000000); err != nil {
				return nil, err
			}
			major := append([]*kernel.VMA{ht}, slabs...)
			return &Built{
				Major: major,
				NewGen: func(seed int64) Gen {
					r := rng(seed)
					buckets := int64(ht.Size() / 64)
					pending := mem.VAddr(0)
					return func() (mem.VAddr, bool) {
						if pending != 0 {
							va := pending
							pending = 0
							return va, false
						}
						s := slabs[r.Intn(len(slabs))]
						pending = s.Start + mem.VAddr(r.Int63n(int64(s.Size()/1024))*1024)
						return ht.Start + mem.VAddr(r.Int63n(buckets)*64), false
					}
				},
			}, nil
		},
	}
}

// BTree is the Mitosis B-tree lookup benchmark: root-to-leaf traversals
// where upper levels are hot and leaves are cold (Table 1: 2 VMAs cover
// 99 % — the node pool and the key pool).
func BTree() Spec {
	return Spec{
		Name:        "BTree",
		Description: "B-tree index, 100% lookups",
		PaperWSGiB:  125,
		DefaultWS:   13 * gib / 10,
		build: func(as *kernel.AddressSpace, ws uint64) (*Built, error) {
			nodeBytes := alignedPart(ws*3/4, 1)
			keyBytes := alignedPart(ws/4, 1)
			nodes, err := as.MMap(heapBase, nodeBytes, kernel.VMAHeap, "nodes")
			if err != nil {
				return nil, err
			}
			keys, err := as.MMap(mem.AlignUp(nodes.End+0x10000000, mem.PageBytes2M), keyBytes, kernel.VMAFile, "keys")
			if err != nil {
				return nil, err
			}
			if err := smallVMAs(as, 107, 0x7f0000000000); err != nil {
				return nil, err
			}
			const nodeSize = 512 // bytes per node, fanout 8 of 64-byte slots
			const fanout = 8
			// Level l (0 = root) occupies fanout^l nodes laid out
			// contiguously, level by level.
			levels := 1
			total := int64(1)
			for total*fanout*nodeSize <= int64(nodeBytes) && levels < 10 {
				total = total*fanout + 1
				levels++
			}
			return &Built{
				Major: []*kernel.VMA{nodes, keys},
				NewGen: func(seed int64) Gen {
					r := rng(seed)
					depth := 0
					node := int64(0)
					levelBase := int64(0)
					key := int64(0)
					return func() (mem.VAddr, bool) {
						if depth == 0 {
							key = r.Int63()
							node, levelBase = 0, 0
						}
						va := nodes.Start + mem.VAddr((levelBase+node)*nodeSize)
						depth++
						if depth >= levels {
							// Leaf reached: fetch the key record next
							// round; restart.
							depth = 0
							return keys.Start + mem.VAddr(uint64(key)%(keys.Size()-8))&^7, false
						}
						child := (key >> uint(3*(levels-depth))) & (fanout - 1)
						levelBase = levelBase*fanout + 1
						node = node*fanout + child
						return va, false
					}
				},
			}, nil
		},
	}
}

// Canneal is the PARSEC chip-design annealer: pairs of uniformly random
// element reads followed by swap writes, with neighbour reads.
func Canneal() Spec {
	return Spec{
		Name:        "Canneal",
		Description: "Simulated annealing for chip design",
		PaperWSGiB:  62,
		DefaultWS:   64 * gib / 100, // 0.64 GiB
		build: func(as *kernel.AddressSpace, ws uint64) (*Built, error) {
			elems, err := as.MMap(heapBase, alignedPart(ws*7/8, 1), kernel.VMAHeap, "elements")
			if err != nil {
				return nil, err
			}
			nets, err := as.MMap(mem.AlignUp(elems.End+0x10000000, mem.PageBytes2M), alignedPart(ws/8, 1), kernel.VMAFile, "netlist")
			if err != nil {
				return nil, err
			}
			if err := smallVMAs(as, 114, 0x7f0000000000); err != nil {
				return nil, err
			}
			return &Built{
				Major: []*kernel.VMA{elems, nets},
				NewGen: func(seed int64) Gen {
					r := rng(seed)
					n := int64(elems.Size() / 64)
					m := int64(nets.Size() / 64)
					phase := 0
					var a, b int64
					return func() (mem.VAddr, bool) {
						switch phase {
						case 0: // read element A
							a, b = r.Int63n(n), r.Int63n(n)
							phase = 1
							return elems.Start + mem.VAddr(a*64), false
						case 1: // read element B
							phase = 2
							return elems.Start + mem.VAddr(b*64), false
						case 2: // read a net of A
							phase = 3
							return nets.Start + mem.VAddr((a%m)*64), false
						case 3: // swap write A
							phase = 4
							return elems.Start + mem.VAddr(a*64), true
						default: // swap write B
							phase = 0
							return elems.Start + mem.VAddr(b*64), true
						}
					}
				},
			}, nil
		},
	}
}

// XSBench is the Monte Carlo neutron-transport kernel: each particle
// history binary-searches the unionized energy grid and then gathers
// cross-sections from randomly-selected nuclide tables.
func XSBench() Spec {
	return Spec{
		Name:        "XSBench",
		Description: "Monte Carlo particle transport macro-kernel",
		PaperWSGiB:  84,
		DefaultWS:   88 * gib / 100, // 0.88 GiB
		build: func(as *kernel.AddressSpace, ws uint64) (*Built, error) {
			grid, err := as.MMap(heapBase, alignedPart(ws, 1), kernel.VMAHeap, "grid")
			if err != nil {
				return nil, err
			}
			if err := smallVMAs(as, 110, 0x7f0000000000); err != nil {
				return nil, err
			}
			return &Built{
				Major: []*kernel.VMA{grid},
				NewGen: func(seed int64) Gen {
					r := rng(seed)
					entries := int64(grid.Size() / 16)
					lo, hi := int64(0), entries
					searching := false
					gathers := 0
					return func() (mem.VAddr, bool) {
						if !searching && gathers == 0 {
							// New particle: restart the binary search.
							lo, hi = 0, entries
							searching = true
						}
						if searching {
							mid := (lo + hi) / 2
							va := grid.Start + mem.VAddr(mid*16)
							if hi-lo <= 1 {
								searching = false
								gathers = 5 // nuclide gathers follow
							} else if r.Intn(2) == 0 {
								hi = mid
							} else {
								lo = mid
							}
							return va, false
						}
						gathers--
						return grid.Start + mem.VAddr(r.Int63n(entries)*16), false
					}
				},
			}, nil
		},
	}
}

// Graph500 is BFS over a scale-free graph: a mostly-sequential edge scan
// interleaved with uniformly random visited-bitmap and vertex updates.
func Graph500() Spec {
	return Spec{
		Name:        "Graph500",
		Description: "Breadth-first search graph benchmark",
		PaperWSGiB:  123,
		DefaultWS:   125 * gib / 100, // 1.25 GiB
		build: func(as *kernel.AddressSpace, ws uint64) (*Built, error) {
			graph, err := as.MMap(heapBase, alignedPart(ws, 1), kernel.VMAHeap, "graph")
			if err != nil {
				return nil, err
			}
			if err := smallVMAs(as, 104, 0x7f0000000000); err != nil {
				return nil, err
			}
			// Edge array: first 3/4; vertex array: last 1/4.
			edgeBytes := graph.Size() * 3 / 4
			return &Built{
				Major: []*kernel.VMA{graph},
				NewGen: func(seed int64) Gen {
					r := rng(seed)
					cursor := uint64(0)
					vtx := int64((graph.Size() - edgeBytes) / 8)
					phase := 0
					return func() (mem.VAddr, bool) {
						if phase == 0 {
							phase = 1
							cursor = (cursor + 8) % edgeBytes
							return graph.Start + mem.VAddr(cursor), false
						}
						phase = 0
						return graph.Start + mem.VAddr(edgeBytes) + mem.VAddr(r.Int63n(vtx)*8), true
					}
				},
			}, nil
		},
	}
}

// alignedPart divides total by parts and rounds the share up to a 2 MiB
// multiple (so VMAs stay huge-page-friendly).
func alignedPart(total uint64, parts int) uint64 {
	return uint64(mem.AlignUp(mem.VAddr(total/uint64(parts)), mem.PageBytes2M))
}
