package workload

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	_, b := buildSmall(t, GUPS(), 64<<20)
	var buf bytes.Buffer
	const n = 5000
	if err := Record(&buf, b.NewGen(9), n); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	refs, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Replay must match a fresh generator exactly.
	gen := b.NewGen(9)
	for i, ref := range refs {
		va, w := gen()
		if ref.VA != va || ref.Write != w {
			t.Fatalf("ref %d: (%#x,%v) != generator (%#x,%v)", i, uint64(ref.VA), ref.Write, uint64(va), w)
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := NewTraceReader(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := NewTraceReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Truncated body.
	_, b := buildSmall(t, GUPS(), 64<<20)
	var buf bytes.Buffer
	if err := Record(&buf, b.NewGen(1), 100); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	tr, err := NewTraceReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReadAll(); err == nil {
		t.Fatal("truncated trace read without error")
	}
}

func TestTraceCompactness(t *testing.T) {
	_, b := buildSmall(t, GUPS(), 64<<20)
	var buf bytes.Buffer
	if err := Record(&buf, b.NewGen(2), 10000); err != nil {
		t.Fatal(err)
	}
	// Uvarint of 48-bit VAs: at most 8 bytes per reference plus header.
	if buf.Len() > 10000*8+32 {
		t.Fatalf("trace too large: %d bytes for 10k refs", buf.Len())
	}
}
