package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dmt/internal/mem"
)

// Trace serialization: the paper's methodology drives the simulator with
// recorded memory traces (§5, DynamoRIO). This file provides the same
// decoupling for the synthetic generators — a trace can be recorded once
// and replayed into any number of configurations, guaranteeing identical
// reference streams across designs without re-running the generator.
//
// Format: an 8-byte magic, a version byte, a uvarint reference count, then
// one uvarint per reference holding va<<1 | writeBit (canonical 48-bit VAs
// fit comfortably).

var traceMagic = [8]byte{'D', 'M', 'T', 'T', 'R', 'A', 'C', 'E'}

const traceVersion = 1

// ErrBadTrace is returned for malformed trace streams.
var ErrBadTrace = errors.New("workload: malformed trace")

// Record writes n references produced by gen to w.
func Record(w io.Writer, gen Gen, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(n))
	if _, err := bw.Write(buf[:k]); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		va, write := gen()
		v := uint64(va) << 1
		if write {
			v |= 1
		}
		k := binary.PutUvarint(buf[:], v)
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceReader streams references from a recorded trace.
type TraceReader struct {
	br   *bufio.Reader
	n    int
	read int
}

// NewTraceReader validates the header and prepares streaming.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil || ver != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return &TraceReader{br: br, n: int(n)}, nil
}

// Len returns the total number of references in the trace.
func (t *TraceReader) Len() int { return t.n }

// Next returns the next reference; ok is false at end of trace.
func (t *TraceReader) Next() (va mem.VAddr, write, ok bool, err error) {
	if t.read >= t.n {
		return 0, false, false, nil
	}
	v, e := binary.ReadUvarint(t.br)
	if e != nil {
		return 0, false, false, fmt.Errorf("%w: truncated at ref %d: %v", ErrBadTrace, t.read, e)
	}
	t.read++
	return mem.VAddr(v >> 1), v&1 == 1, true, nil
}

// GenFromRefs adapts decoded references to the Gen interface, wrapping
// around at the end (finite traces are looped in simulation).
func GenFromRefs(refs []TraceRef) Gen {
	i := 0
	return func() (mem.VAddr, bool) {
		ref := refs[i%len(refs)]
		i++
		return ref.VA, ref.Write
	}
}

// TraceRef is one decoded reference.
type TraceRef struct {
	VA    mem.VAddr
	Write bool
}

// ReadAll decodes the remaining references.
func (t *TraceReader) ReadAll() ([]TraceRef, error) {
	out := make([]TraceRef, 0, t.n-t.read)
	for {
		va, w, ok, err := t.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, TraceRef{VA: va, Write: w})
	}
}
