package workload_test

import (
	"fmt"

	"dmt/internal/workload"
)

// Measuring the Table 1 VMA characteristics of an arbitrary layout.
func ExampleComputeVMAStats() {
	regions := []workload.Region{
		{Start: 0x4000_0000, End: 0x5000_0000},           // 256 MiB heap
		{Start: 0x5000_2000, End: 0x5040_2000},           // adjacent 4 MiB, 8 KiB bubble
		{Start: 0x7f00_0000_0000, End: 0x7f00_0000_4000}, // tiny lib
	}
	st := workload.ComputeVMAStats(regions)
	fmt.Printf("total=%d cov99=%d clusters=%d\n", st.Total, st.Cov99, st.Clusters)
	// Output:
	// total=3 cov99=2 clusters=1
}
