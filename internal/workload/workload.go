// Package workload provides synthetic reproductions of the paper's seven
// evaluation benchmarks (Table 4) and of the SPEC CPU 2006/2017 VMA-layout
// corpora (Table 1, Figure 5).
//
// The paper drives its simulator with DynamoRIO memory traces of the real
// applications on 62–155 GiB working sets. We cannot run those here, so
// each workload is substituted by a generator that reproduces the two
// things translation performance depends on (DESIGN.md §2):
//
//   - the documented memory-access pattern (uniform random updates for
//     GUPS, hash-probe + value fetch for the key-value stores, root-to-leaf
//     pointer chases for BTree, random swap pairs for Canneal, binary
//     searches over energy grids for XSBench, frontier/neighbour accesses
//     for Graph500), and
//   - the documented VMA layout (Table 1: how many VMAs, how many cover
//     99 % of the footprint, and how they cluster — including Memcached's
//     1,065-VMA / 2-cluster shape).
//
// Working sets default to the paper's sizes divided by 100 (155 GiB →
// ~1.6 GiB) and every generator is deterministic under its seed.
package workload

import (
	"fmt"
	"math/rand"

	"dmt/internal/kernel"
	"dmt/internal/mem"
)

// Gen produces the next memory reference of a trace.
type Gen func() (va mem.VAddr, write bool)

// Built is an instantiated workload: its VMAs exist in the address space
// and NewGen mints deterministic trace generators.
type Built struct {
	Spec   Spec
	Major  []*kernel.VMA // the VMAs forming the working set (populated)
	NewGen func(seed int64) Gen
}

// Spec describes one benchmark (Table 4).
type Spec struct {
	Name string
	// Description matches Table 4's summary.
	Description string
	// PaperWSGiB is the paper's working-set size.
	PaperWSGiB float64
	// DefaultWS is the scaled default working set in bytes.
	DefaultWS uint64
	// build lays out VMAs and returns the generator factory.
	build func(as *kernel.AddressSpace, ws uint64) (*Built, error)
}

// Build instantiates the workload with the given working-set size (0 uses
// the scaled default), creating and populating its VMAs.
func (s Spec) Build(as *kernel.AddressSpace, ws uint64) (*Built, error) {
	if ws == 0 {
		ws = s.DefaultWS
	}
	b, err := s.build(as, ws)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	b.Spec = s
	for _, v := range b.Major {
		if err := as.Populate(v); err != nil {
			return nil, fmt.Errorf("workload %s: populating %s: %w", s.Name, v.Name, err)
		}
	}
	return b, nil
}

const gib = 1 << 30

// All returns the seven benchmarks in the paper's order.
func All() []Spec {
	return []Spec{
		Redis(), Memcached(), GUPS(), BTree(), Canneal(), XSBench(), Graph500(),
	}
}

// ByName finds a benchmark case-sensitively.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// heapBase is where the main data VMAs start.
const heapBase = mem.VAddr(0x40000000)

// smallVMAs adds n small "background" VMAs (libraries, stacks, arenas —
// the long tail of Table 1's Total column) far from the working set. They
// are not populated: they exist to exercise VMA-count pressure on the
// register file.
func smallVMAs(as *kernel.AddressSpace, n int, base mem.VAddr) error {
	addr := base
	for i := 0; i < n; i++ {
		size := uint64(4+(i%2)*4) << 10 // 4 or 8 KiB
		if _, err := as.MMap(addr, size, kernel.VMALib, fmt.Sprintf("lib%d", i)); err != nil {
			return err
		}
		addr += mem.VAddr(size) + 0x40000 // scattered: 256 KiB gaps
	}
	return nil
}

// rng returns a deterministic generator for a workload/seed pair.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
