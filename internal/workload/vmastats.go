package workload

import (
	"math/rand"
	"sort"

	"dmt/internal/kernel"
	"dmt/internal/mem"
)

// VMAStats are the three characteristics of Table 1: the Total number of
// VMAs, the number of (largest) VMAs covering 99 % of the total mapped
// bytes, and the number of VMA clusters — formed by merging adjacent VMAs
// while keeping the bubbles below 2 % of the total — needed for the same
// 99 % coverage.
type VMAStats struct {
	Total    int
	Cov99    int
	Clusters int
}

// Region is a bare address range, the unit the statistics operate on.
type Region struct {
	Start, End mem.VAddr
}

func (r Region) size() uint64 { return uint64(r.End - r.Start) }

// RegionsOf extracts regions from an address space's VMAs.
func RegionsOf(as *kernel.AddressSpace) []Region {
	var out []Region
	for _, v := range as.VMAs() {
		out = append(out, Region{Start: v.Start, End: v.End})
	}
	return out
}

// ComputeVMAStats measures the Table 1 metrics on a VMA layout. The bubble
// allowance is the paper's 2 % threshold.
func ComputeVMAStats(regions []Region) VMAStats {
	const bubbleAllowance = 0.02
	if len(regions) == 0 {
		return VMAStats{}
	}
	sorted := make([]Region, len(regions))
	copy(sorted, regions)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	var total uint64
	for _, r := range sorted {
		total += r.size()
	}

	// 99 % coverage by the largest VMAs.
	bySize := make([]uint64, len(sorted))
	for i, r := range sorted {
		bySize[i] = r.size()
	}
	sort.Slice(bySize, func(i, j int) bool { return bySize[i] > bySize[j] })
	cov99 := countToCover(bySize, total)

	// Clustering: merge across the smallest gaps first while total
	// bubbles stay within 2 % of the total mapped bytes, then count the
	// largest clusters covering 99 %.
	type gap struct {
		idx   int // boundary between sorted[idx] and sorted[idx+1]
		bytes uint64
	}
	gaps := make([]gap, 0, len(sorted)-1)
	for i := 0; i+1 < len(sorted); i++ {
		gaps = append(gaps, gap{idx: i, bytes: uint64(sorted[i+1].Start - sorted[i].End)})
	}
	sort.Slice(gaps, func(i, j int) bool {
		if gaps[i].bytes != gaps[j].bytes {
			return gaps[i].bytes < gaps[j].bytes
		}
		return gaps[i].idx < gaps[j].idx
	})
	merged := make([]bool, len(sorted)) // merged[i]: boundary i..i+1 merged
	budget := uint64(float64(total) * bubbleAllowance)
	var used uint64
	for _, g := range gaps {
		if used+g.bytes > budget {
			break
		}
		used += g.bytes
		merged[g.idx] = true
	}
	var clusterSizes []uint64
	cur := sorted[0].size()
	for i := 0; i+1 < len(sorted); i++ {
		if merged[i] {
			cur += sorted[i+1].size()
		} else {
			clusterSizes = append(clusterSizes, cur)
			cur = sorted[i+1].size()
		}
	}
	clusterSizes = append(clusterSizes, cur)
	sort.Slice(clusterSizes, func(i, j int) bool { return clusterSizes[i] > clusterSizes[j] })
	return VMAStats{
		Total:    len(sorted),
		Cov99:    cov99,
		Clusters: countToCover(clusterSizes, total),
	}
}

func countToCover(sizesDesc []uint64, total uint64) int {
	target := uint64(float64(total) * 0.99)
	var sum uint64
	for i, s := range sizesDesc {
		sum += s
		if sum >= target {
			return i + 1
		}
	}
	return len(sizesDesc)
}

// SpecLayout is one synthetic SPEC CPU workload layout (no trace — Table 1
// and Figure 5 only report VMA characteristics for SPEC).
type SpecLayout struct {
	Name    string
	Regions []Region
}

// SpecCorpus generates the synthetic SPEC CPU 2006 (30 workloads) or 2017
// (47 workloads) layout corpora. Layout parameters are drawn, under a fixed
// seed, from the ranges the paper reports in Table 1: totals of 18–39
// (2006) / 24–70 (2017), 99 %-coverage counts of 1–14 / 1–21, and cluster
// counts of 1–8 / 1–12.
func SpecCorpus(year int) []SpecLayout {
	var n, minTotal, maxTotal, maxCov, maxClusters int
	var seed int64
	switch year {
	case 2006:
		n, minTotal, maxTotal, maxCov, maxClusters, seed = 30, 18, 39, 14, 8, 2006
	case 2017:
		n, minTotal, maxTotal, maxCov, maxClusters, seed = 47, 24, 70, 21, 12, 2017
	default:
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]SpecLayout, 0, n)
	for i := 0; i < n; i++ {
		total := minTotal + r.Intn(maxTotal-minTotal+1)
		big := 1 + r.Intn(maxCov)
		if big >= total {
			big = total - 1
		}
		maxCl := maxClusters
		if big < maxCl {
			maxCl = big
		}
		clusters := 1 + r.Intn(maxCl)
		out = append(out, SpecLayout{
			Name:    specName(year, i),
			Regions: synthLayout(r, total, big, clusters),
		})
	}
	return out
}

func specName(year, i int) string {
	return map[int]string{2006: "spec06", 2017: "spec17"}[year] + "-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// synthLayout builds a layout with `total` VMAs where `big` large VMAs
// dominate the footprint, grouped into `clusters` address-space clusters.
func synthLayout(r *rand.Rand, total, big, clusters int) []Region {
	var regions []Region
	addr := mem.VAddr(0x40000000)
	perCluster := (big + clusters - 1) / clusters
	placed := 0
	for c := 0; c < clusters && placed < big; c++ {
		for j := 0; j < perCluster && placed < big; j++ {
			size := uint64(256+r.Intn(768)) << 20 // 256 MiB – 1 GiB
			regions = append(regions, Region{Start: addr, End: addr + mem.VAddr(size)})
			addr += mem.VAddr(size) + mem.VAddr(uint64(4+r.Intn(3))<<12) // tiny bubble
			placed++
		}
		addr = mem.AlignUp(addr+mem.VAddr(32<<30), mem.PageBytes2M) // inter-cluster gap
	}
	// The long tail of small mappings far away.
	tail := mem.VAddr(0x7f0000000000)
	for i := big; i < total; i++ {
		size := uint64(8+r.Intn(24)) << 10
		size = uint64(mem.AlignUp(mem.VAddr(size), mem.PageBytes4K))
		regions = append(regions, Region{Start: tail, End: tail + mem.VAddr(size)})
		tail += mem.VAddr(size) + 0x100000
	}
	return regions
}
