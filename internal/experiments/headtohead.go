package experiments

import (
	"fmt"

	"dmt/internal/sim"
	"dmt/internal/stats"
	"dmt/internal/workload"
)

// headToHeadDesigns picks the paper's design against the two strongest
// related-work contenders per environment: DMT proper where it exists and
// pvDMT under nested virtualization (the paper's design for that regime),
// against Victima's L2-spilled TLB and Utopia's restrictive segments.
func headToHeadDesigns(env sim.Environment) []sim.Design {
	dmt := sim.DesignDMT
	if env == sim.EnvNested {
		dmt = sim.DesignPvDMT
	}
	return []sim.Design{dmt, sim.DesignVictima, sim.DesignUtopia}
}

// HeadToHead renders the comparison the paper never ran: DMT against
// Victima (arXiv:2310.04158) and Utopia (arXiv:2211.12205) on the same
// traces, caches, and environments. Per (environment × design × workload):
// mean and p99 walk latency, the walk-cycle ratio against the vanilla radix
// baseline of the same environment, structure coverage (register hits for
// DMT, spill hits for Victima, restrictive-segment hits for Utopia),
// fallback rate, and translation-structure footprint.
func HeadToHead(r *Runner) (string, error) {
	var out string
	for _, wl := range r.Options().Workloads {
		t := &stats.Table{
			Title: fmt.Sprintf("Head-to-head: DMT vs Victima vs Utopia (%s)", wl.Name),
			Header: []string{"Env", "Design", "Walk mean", "p99",
				"vs vanilla", "Coverage", "Fallback", "Struct bytes"},
		}
		for _, env := range []sim.Environment{sim.EnvNative, sim.EnvVirt, sim.EnvNested} {
			if err := headToHeadRows(t, r, env, wl); err != nil {
				return "", err
			}
		}
		out += t.String() + "\n"
	}
	return out, nil
}

func headToHeadRows(t *stats.Table, r *Runner, env sim.Environment, wl workload.Spec) error {
	for _, d := range headToHeadDesigns(env) {
		res, err := r.Run(env, d, false, wl)
		if err != nil {
			return fmt.Errorf("head-to-head %v/%s %s: %w", env, d, wl.Name, err)
		}
		ratio, err := r.WalkRatio(env, d, false, wl)
		if err != nil {
			return fmt.Errorf("head-to-head %v/%s %s: %w", env, d, wl.Name, err)
		}
		t.Add(env.String(), string(d),
			res.AvgWalkCycles(), res.WalkPercentile(99),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%.1f%%", res.Coverage*100),
			fmt.Sprintf("%.2f%%", fallbackRate(res)*100),
			res.PTEBytes)
	}
	return nil
}
