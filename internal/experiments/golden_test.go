package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dmt/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden figure files under testdata/")

// The golden-figure suite locks the rendered evaluation outputs under a
// fixed seed: any change to the walkers, the caches, the workload
// generators, or the renderers that shifts a reported number shows up as a
// readable diff against testdata/. Regenerate intentionally with
//
//	go test ./internal/experiments -run Golden -update
//
// The options are deliberately small (the goldens assert determinism and
// rendering, not paper-scale magnitudes) but identical to the shape tests'.

func goldenRunner() *Runner {
	return NewRunner(Options{
		Ops: 20_000, WSBytes: 96 << 20, CacheScale: 16, Seed: 3,
		Workloads: []workload.Spec{workload.GUPS(), workload.Redis()},
		Parallel:  2,
		Workers:   2, // sharded runs must reproduce the same goldens
	})
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file %s.\ngot:\n%s\nwant:\n%s", name, path, got, want)
	}
}

// TestGoldenLayoutFigures covers the simulation-free renders (VMA layout
// statistics): cheap enough to run always.
func TestGoldenLayoutFigures(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func() (string, error)
	}{
		{"table1", Table1},
		{"figure5", Figure5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.fn()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, out)
		})
	}
}

// TestGoldenSimFigures locks every simulation-backed figure and table the
// harness renders. One memoizing runner serves all of them, exactly as
// cmd/figures does.
func TestGoldenSimFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := goldenRunner()
	for _, tc := range []struct {
		name string
		fn   func(*Runner) (string, error)
	}{
		{"figure4", Figure4},
		{"figure14", Figure14},
		{"figure15", Figure15},
		{"figure17", Figure17},
		{"table5", Table5},
		{"table6", Table6},
		{"headtohead", HeadToHead},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.fn(r)
			if err != nil {
				t.Fatal(err)
			}
			if out == "" {
				t.Fatal("empty render")
			}
			checkGolden(t, tc.name, out)
		})
	}
}

// TestGoldenParallelismInvariance re-renders one speedup figure with
// different runner-level concurrency (and the same sim worker/shard counts)
// and asserts identical bytes: scheduling must never leak into reported
// numbers. Sim-level worker invariance is covered by the determinism suite
// in internal/sim.
func TestGoldenParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	base := Options{
		Ops: 20_000, WSBytes: 96 << 20, CacheScale: 16, Seed: 3,
		Workloads: []workload.Spec{workload.GUPS()},
		Workers:   2,
	}
	wide := base
	wide.Parallel = 4
	fa, err := Figure14(NewRunner(base))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Figure14(NewRunner(wide))
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("Figure 14 depends on runner parallelism:\nA:\n%s\nB:\n%s", fa, fb)
	}
}
