package experiments

import (
	"fmt"

	"dmt/internal/sim"
	"dmt/internal/stats"
	"dmt/internal/workload"
)

// tailDesigns is the headline comparison per environment — the same cells
// Figures 14/15/17 report means for, so a LatencyTails run after the figure
// set reuses every simulation through the Runner's memoization.
func tailDesigns(env sim.Environment) []sim.Design {
	switch env {
	case sim.EnvNative:
		return []sim.Design{sim.DesignVanilla, sim.DesignDMT}
	case sim.EnvVirt:
		return []sim.Design{sim.DesignVanilla, sim.DesignShadow, sim.DesignDMT, sim.DesignPvDMT}
	case sim.EnvNested:
		return []sim.Design{sim.DesignVanilla, sim.DesignPvDMT}
	}
	return nil
}

// LatencyTails renders the walk-latency distribution table from the
// observability histograms (DESIGN.md §10): per (environment × design ×
// workload), the mean plus the p50/p90/p99/max simulated walk cycles and
// the p99/p50 tail ratio. The paper reports means; the tails show what the
// means hide — a register hit is flat, while radix walks under pressure
// stretch into the memory-latency tail.
func LatencyTails(r *Runner) (string, error) {
	var out string
	for _, wl := range r.Options().Workloads {
		t := &stats.Table{
			Title:  fmt.Sprintf("Walk-latency tails (%s, simulated cycles per walk)", wl.Name),
			Header: []string{"Env", "Design", "Mean", "p50", "p90", "p99", "Max", "p99/p50"},
		}
		for _, env := range []sim.Environment{sim.EnvNative, sim.EnvVirt, sim.EnvNested} {
			if err := tailRows(t, r, env, wl); err != nil {
				return "", err
			}
		}
		out += t.String() + "\n"
	}
	return out, nil
}

func tailRows(t *stats.Table, r *Runner, env sim.Environment, wl workload.Spec) error {
	for _, d := range tailDesigns(env) {
		res, err := r.Run(env, d, false, wl)
		if err != nil {
			return fmt.Errorf("tails %v/%s %s: %w", env, d, wl.Name, err)
		}
		if res.WalkHist == nil || res.WalkHist.Count == 0 {
			return fmt.Errorf("tails %v/%s %s: no walk histogram", env, d, wl.Name)
		}
		p50, p99 := res.WalkPercentile(50), res.WalkPercentile(99)
		ratio := 0.0
		if p50 > 0 {
			ratio = float64(p99) / float64(p50)
		}
		t.Add(env.String(), string(d), res.AvgWalkCycles(),
			p50, res.WalkPercentile(90), p99, res.WalkHist.Max,
			fmt.Sprintf("%.2fx", ratio))
	}
	return nil
}
