package experiments

import (
	"fmt"

	"dmt/internal/scenario"
	"dmt/internal/stats"
)

// AgingOptions sizes the long-horizon cloud-node aging campaign (§7 of the
// paper's discussion: TEA contiguity under memory fragmentation). Unlike
// the trace-driven experiments above, an aging cell is not a sim.Config —
// it drives real kernel/tea/virt state through millions of lifecycle
// events — so the campaign takes its own options rather than a Runner.
type AgingOptions struct {
	// Designs lists the node stacks to age (nil = native dmt and pvdmt).
	Designs []string
	// Events is the lifecycle-event count per design cell.
	Events int
	// VMs is the per-shard live-VM target.
	VMs int
	// Epochs is the number of node-age sampling points.
	Epochs int
	// Shards / Workers configure the replica pool (results depend on
	// Shards only; Workers is results-invariant).
	Shards  int
	Workers int
	// MemMiB is each node's physical memory.
	MemMiB int
	// Seed drives the event streams.
	Seed int64
	// THP enables transparent huge pages and the split/collapse events.
	THP bool
	// Verify arms the lifecycle conservation oracle at every epoch.
	Verify bool
	// CheckEvery adds an oracle run every N events (0 = epochs only).
	CheckEvery int
	// Logf emits progress lines.
	Logf func(format string, args ...interface{})
}

func (o AgingOptions) withDefaults() AgingOptions {
	if len(o.Designs) == 0 {
		o.Designs = []string{"dmt", "pvdmt"}
	}
	if o.Events <= 0 {
		o.Events = 200_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// AgingCampaign ages one simulated cloud node per design through the full
// lifecycle-churn scenario and renders the node-age × metric table: TEA
// allocation success against fragmentation, the defrag cost of keeping
// TEAs machine-contiguous, free-memory fragmentation indices, DMT register
// coverage, and the sampled walk-latency tail. With Verify set the
// conservation oracle runs at every epoch boundary and any leak or double
// free aborts the campaign with an error.
func AgingCampaign(opt AgingOptions) (string, error) {
	opt = opt.withDefaults()
	t := &stats.Table{
		Title: fmt.Sprintf("Node aging: lifecycle churn over %d events (seed %d, %d MiB nodes, THP=%v)",
			opt.Events, opt.Seed, cfgFor(opt, "dmt").MemMiB, opt.THP),
		Header: []string{"Design", "Epoch", "Live", "Boots", "Kills",
			"TEA ok", "Defrag", "Frag(4)", "Frag(9)", "Reg cov", "p50", "p99", "Max"},
	}
	checks := 0
	for _, design := range opt.Designs {
		opt.Logf("aging %s: %d events x %d shards ...", design, opt.Events, cfgFor(opt, design).Shards)
		res, err := scenario.Run(cfgFor(opt, design))
		if err != nil {
			return "", fmt.Errorf("aging %s: %w", design, err)
		}
		checks += res.OracleChecks
		for i := range res.Rows {
			row := &res.Rows[i]
			t.Add(design, row.Epoch, row.LiveVMs, row.Boots, row.Kills,
				fmt.Sprintf("%.1f%%", row.TEASuccessRate()*100),
				fmt.Sprintf("%.1f", row.DefragCost()),
				fmt.Sprintf("%.2f", row.Frag4()),
				fmt.Sprintf("%.2f", row.Frag9()),
				fmt.Sprintf("%.1f%%", row.RegisterCoverage()*100),
				row.Walk.Quantile(0.50), row.Walk.Quantile(0.99), row.Walk.Max)
		}
	}
	out := t.String()
	if opt.Verify {
		out += fmt.Sprintf("conservation oracle: %d checks, every frame accounted at every epoch.\n\n", checks)
	}
	return out, nil
}

// cfgFor builds the scenario config for one design cell.
func cfgFor(opt AgingOptions, design string) scenario.Config {
	return scenario.Config{
		Design: design, Seed: opt.Seed, Events: opt.Events, VMs: opt.VMs,
		Epochs: opt.Epochs, Shards: opt.Shards, Workers: opt.Workers,
		MemMiB: opt.MemMiB, THP: opt.THP, Verify: opt.Verify,
		CheckEvery: opt.CheckEvery,
	}.WithDefaults()
}
