package experiments

import (
	"strings"
	"testing"
)

// goldenAgingOptions is the short-horizon cell the golden locks: small
// enough for CI, long enough that fragmentation and churn metrics are
// non-trivial for both designs.
func goldenAgingOptions() AgingOptions {
	return AgingOptions{
		Events: 20_000, VMs: 24, Epochs: 4, Shards: 2, Workers: 2,
		MemMiB: 96, Seed: 3, THP: true, Verify: true,
	}
}

// TestGoldenAging locks the rendered node-age table under a fixed seed.
// Any change to the scenario driver, the TEA manager's lifecycle paths,
// the buddy allocator, or the virt stack that shifts an aging metric shows
// up as a readable diff. Regenerate intentionally with
//
//	go test ./internal/experiments -run GoldenAging -update
func TestGoldenAging(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	out, err := AgingCampaign(goldenAgingOptions())
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty render")
	}
	checkGolden(t, "aging", out)
}

// TestAgingWorkerInvariance re-renders the campaign with a different
// worker count and asserts identical bytes — the rendered table must be a
// pure function of the scenario configuration, never of scheduling.
func TestAgingWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	narrow := goldenAgingOptions()
	narrow.Designs = []string{"dmt"}
	narrow.Workers = 1
	wide := narrow
	wide.Workers = 4
	a, err := AgingCampaign(narrow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AgingCampaign(wide)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("aging table depends on worker count:\nA:\n%s\nB:\n%s", a, b)
	}
}

// TestAgingUnknownDesign pins the error path.
func TestAgingUnknownDesign(t *testing.T) {
	opt := goldenAgingOptions()
	opt.Designs = []string{"shadow"}
	opt.Events = 10
	if _, err := AgingCampaign(opt); err == nil || !strings.Contains(err.Error(), "shadow") {
		t.Fatalf("want unknown-design error, got %v", err)
	}
}
