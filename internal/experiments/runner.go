// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index of DESIGN.md §4). It is shared by
// cmd/figures and the root benchmark harness: each experiment runs the
// relevant (environment × design × page size × workload) simulations and
// renders the same rows/series the paper reports.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dmt/internal/sim"
	"dmt/internal/workload"
)

// Options scales the experiment runs. The defaults are sized for the
// command-line harness; benchmarks pass smaller values.
type Options struct {
	// Ops is the trace length per configuration.
	Ops int
	// WSBytes overrides every workload's working set (0 keeps each
	// workload's scaled default).
	WSBytes uint64
	// CacheScale is the structure-scaling divisor (DESIGN.md §6).
	CacheScale int
	// Seed drives trace generation.
	Seed int64
	// Workloads restricts the benchmark set (nil = all seven).
	Workloads []workload.Spec
	// Parallel bounds how many simulations run concurrently when an
	// experiment warms its configuration matrix (1 = sequential). Each
	// in-flight simulation holds its machine in memory, so size this to
	// available RAM.
	Parallel int
	// Workers is passed through to sim.Config.Workers: each simulation
	// shards its trace and runs the shards on this many goroutines.
	// Results are identical for any value (sharded determinism).
	Workers int
	// ColdBuild is passed through to sim.Config.ColdBuild, forcing every
	// shard to build its machine from scratch instead of cloning from
	// sim's prototype cache. Results are bit-identical either way; leave
	// it unset so matrix cells sharing a machine (the Vanilla baselines
	// every WalkRatio call re-requests, cross-Runner repeats in the
	// benchmark harness) build it once and clone thereafter.
	ColdBuild bool
	// Verbose emits progress lines via Logf.
	Logf func(format string, args ...interface{})
}

func (o Options) withDefaults() Options {
	if o.Ops == 0 {
		o.Ops = 400_000
	}
	if o.CacheScale == 0 {
		o.CacheScale = 16
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Workloads) == 0 {
		o.Workloads = workload.All()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	if o.Parallel == 0 {
		o.Parallel = 1
	}
	return o
}

// Runner memoizes simulation results across experiments (Figures 14/15 and
// Table 5 share the same runs). Each configuration runs exactly once even
// under concurrent callers (singleflight), and Warm fans the matrix out
// across Options.Parallel goroutines.
type Runner struct {
	opt   Options
	mu    sync.Mutex
	cache map[string]*flight
	sem   chan struct{}
}

type flight struct {
	once sync.Once
	res  *sim.Result
	err  error
}

// NewRunner creates a runner.
func NewRunner(opt Options) *Runner {
	o := opt.withDefaults()
	return &Runner{opt: o, cache: map[string]*flight{}, sem: make(chan struct{}, o.Parallel)}
}

// Options returns the effective options.
func (r *Runner) Options() Options { return r.opt }

// Run returns the (memoized) result for one configuration; concurrent
// callers of the same configuration share a single simulation.
func (r *Runner) Run(env sim.Environment, design sim.Design, thp bool, wl workload.Spec) (*sim.Result, error) {
	return r.RunCtx(context.Background(), env, design, thp, wl)
}

// RunCtx is Run under a context: the simulation aborts at its next shard
// step batch when ctx dies. The memoized entry belongs to whichever caller
// ran it — a cancelled entry memoizes context.Canceled like any other
// failure, which is the desired campaign semantics (one context governs a
// whole campaign; once it is cancelled, every cell is).
func (r *Runner) RunCtx(ctx context.Context, env sim.Environment, design sim.Design, thp bool, wl workload.Spec) (*sim.Result, error) {
	key := fmt.Sprintf("%d/%s/%v/%s", env, design, thp, wl.Name)
	r.mu.Lock()
	f, ok := r.cache[key]
	if !ok {
		f = &flight{}
		r.cache[key] = f
	}
	r.mu.Unlock()
	f.once.Do(func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		r.opt.Logf("running %v/%s thp=%v %s ...", env, design, thp, wl.Name)
		f.res, f.err = sim.RunCtx(ctx, sim.Config{
			Env: env, Design: design, THP: thp, Workload: wl,
			WSBytes: r.opt.WSBytes, Ops: r.opt.Ops, Seed: r.opt.Seed,
			CacheScale: r.opt.CacheScale, Workers: r.opt.Workers,
			ColdBuild: r.opt.ColdBuild,
		})
	})
	return f.res, f.err
}

// Warm runs the given configuration matrix concurrently (bounded by
// Options.Parallel), so subsequent Run calls return memoized results. All
// configurations are attempted; every failure is reported, joined in matrix
// order and annotated with its cell.
func (r *Runner) Warm(env sim.Environment, designs []sim.Design, thps []bool, wls []workload.Spec) error {
	return r.WarmCtx(context.Background(), env, designs, thps, wls)
}

// WarmCtx is Warm under a context: cancellation aborts the in-flight cells
// at their next step batch and the remaining cells report the context error.
func (r *Runner) WarmCtx(ctx context.Context, env sim.Environment, designs []sim.Design, thps []bool, wls []workload.Spec) error {
	if r.opt.Parallel <= 1 {
		return nil // nothing to gain; let callers run lazily
	}
	type cell struct {
		d   sim.Design
		thp bool
		wl  workload.Spec
	}
	var cells []cell
	for _, d := range designs {
		for _, thp := range thps {
			for _, wl := range wls {
				cells = append(cells, cell{d, thp, wl})
			}
		}
	}
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.RunCtx(ctx, env, c.d, c.thp, c.wl); err != nil {
				errs[i] = fmt.Errorf("warm %v/%s thp=%v %s: %w", env, c.d, c.thp, c.wl.Name, err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// WalkRatio returns O_sim_target / O_sim_vanilla for a configuration: the
// quantity the §5 model consumes.
func (r *Runner) WalkRatio(env sim.Environment, design sim.Design, thp bool, wl workload.Spec) (float64, error) {
	base, err := r.Run(env, sim.DesignVanilla, thp, wl)
	if err != nil {
		return 0, err
	}
	target, err := r.Run(env, design, thp, wl)
	if err != nil {
		return 0, err
	}
	if target.WalkCycles == 0 {
		return 0, fmt.Errorf("experiments: zero walk cycles for %v/%s", env, design)
	}
	return float64(target.WalkCycles) / float64(base.WalkCycles), nil
}
