package experiments

import (
	"strings"
	"testing"

	"dmt/internal/workload"
)

func TestFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := NewRunner(Options{
		Ops: 4_000, WSBytes: 24 << 20, CacheScale: 1, Seed: 42,
		Workloads: []workload.Spec{workload.GUPS()},
	})
	s, err := FaultCampaign(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"graceful degradation", "chaos", "pvdmt", "nested",
		"0 mismatches", "Walk infl."} {
		if !strings.Contains(s, frag) {
			t.Errorf("campaign output missing %q", frag)
		}
	}
	// Deterministic for a fixed seed: the degradation table is the
	// artifact the docs quote, so it must be bit-for-bit repeatable.
	s2, err := FaultCampaign(NewRunner(Options{
		Ops: 4_000, WSBytes: 24 << 20, CacheScale: 1, Seed: 42,
		Workloads: []workload.Spec{workload.GUPS()},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if s != s2 {
		t.Error("fault campaign output is not deterministic")
	}
}
