package experiments

import (
	"strings"
	"testing"

	"dmt/internal/sim"
	"dmt/internal/workload"
)

func testRunner(t *testing.T, wls ...workload.Spec) *Runner {
	t.Helper()
	if len(wls) == 0 {
		wls = []workload.Spec{workload.GUPS(), workload.Redis()}
	}
	return NewRunner(Options{
		Ops: 20_000, WSBytes: 96 << 20, CacheScale: 16, Seed: 3,
		Workloads: wls,
	})
}

func TestTable1AndFigure5(t *testing.T) {
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Memcached", "SPEC CPU 2006", "SPEC CPU 2017", "99% Cov."} {
		if !strings.Contains(s, frag) {
			t.Errorf("Table 1 output missing %q", frag)
		}
	}
	f5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5, "p50") || !strings.Contains(f5, "Clusters") {
		t.Error("Figure 5 output incomplete")
	}
}

func TestFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := testRunner(t, workload.GUPS())
	s, err := Figure4(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Geo. Mean") || !strings.Contains(s, "GUPS") {
		t.Errorf("Figure 4 output incomplete:\n%s", s)
	}
}

func TestFigure14And15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := testRunner(t)
	// Native: DMT must win the page-walk geomean against vanilla.
	cells, err := speedups(r, sim.EnvNative, nativeDesigns, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range r.Options().Workloads {
		dmtPW := lookupCell(cells, wl.Name, sim.DesignDMT, true)
		if dmtPW <= 1 {
			t.Errorf("native %s: DMT page-walk speedup %.2f <= 1", wl.Name, dmtPW)
		}
		app := lookupCell(cells, wl.Name, sim.DesignDMT, false)
		if app <= 1 || app >= dmtPW {
			t.Errorf("native %s: app speedup %.2f not in (1, pw %.2f)", wl.Name, app, dmtPW)
		}
	}
	// Virtualized: pvDMT must beat DMT, which must beat 1.
	vcells, err := speedups(r, sim.EnvVirt, virtDesigns, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range r.Options().Workloads {
		pv := lookupCell(vcells, wl.Name, sim.DesignPvDMT, true)
		d := lookupCell(vcells, wl.Name, sim.DesignDMT, true)
		if !(pv > d && d > 1) {
			t.Errorf("virt %s: expected pvDMT (%.2f) > DMT (%.2f) > 1", wl.Name, pv, d)
		}
		// pvDMT must also beat every comparison design (§6.2 headline).
		for _, other := range []sim.Design{sim.DesignFPT, sim.DesignECPT, sim.DesignAgile, sim.DesignASAP} {
			o := lookupCell(vcells, wl.Name, other, true)
			if pv <= o {
				t.Errorf("virt %s: pvDMT (%.2f) not above %s (%.2f)", wl.Name, pv, other, o)
			}
		}
	}
	// Rendering must include both metric tables.
	out, err := Figure15(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Page walk speedup") || !strings.Contains(out, "Application speedup") {
		t.Error("Figure 15 rendering incomplete")
	}
}

func TestFigure16Breakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := testRunner(t, workload.Redis())
	out, err := Figure16(r)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline table must show the Figure 2 leaf steps; the pvDMT
	// table must show exactly the two direct fetches.
	for _, frag := range []string{"05 gL4", "24 hL1", "pvdmt"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Figure 16 output missing %q", frag)
		}
	}
}

func TestFigure17NestedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := testRunner(t, workload.GUPS())
	cells, err := speedups(r, sim.EnvNested, []sim.Design{sim.DesignPvDMT}, false)
	if err != nil {
		t.Fatal(err)
	}
	app := lookupCell(cells, "GUPS", sim.DesignPvDMT, false)
	if app <= 1.2 {
		t.Errorf("nested GUPS app speedup %.2f; eliminating shadow paging should gain more", app)
	}
}

func TestTable6Refs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := testRunner(t, workload.GUPS())
	out, err := Table6(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"pvdmt", "ecpt", "fpt", "asap", "2 / 8"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 6 missing %q:\n%s", frag, out)
		}
	}
}

func TestOverheads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := testRunner(t, workload.GUPS())
	out, err := Overheads(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"TEA allocation latency", "fragmentation", "translation-structure memory", "register coverage"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(frag)) {
			t.Errorf("overheads output missing %q", frag)
		}
	}
}
