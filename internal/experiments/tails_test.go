package experiments

import (
	"strings"
	"testing"

	"dmt/internal/workload"
)

func TestLatencyTails(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := Options{
		Ops: 4_000, WSBytes: 24 << 20, CacheScale: 1, Seed: 42,
		Workloads: []workload.Spec{workload.GUPS()},
	}
	s, err := LatencyTails(NewRunner(opt))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Walk-latency tails", "p99/p50", "pvdmt", "nested", "shadow"} {
		if !strings.Contains(s, frag) {
			t.Errorf("tails output missing %q:\n%s", frag, s)
		}
	}
	// The quantiles come straight from the deterministic walk histograms,
	// so the rendered table must be bit-for-bit repeatable.
	s2, err := LatencyTails(NewRunner(opt))
	if err != nil {
		t.Fatal(err)
	}
	if s != s2 {
		t.Error("latency-tail table is not deterministic")
	}
}
