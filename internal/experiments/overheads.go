package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dmt/internal/cache"
	"dmt/internal/kernel"
	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
	"dmt/internal/sim"
	"dmt/internal/stats"
	"dmt/internal/tea"
	"dmt/internal/virt"
	"dmt/internal/workload"
)

// Overheads reproduces the §6.3 analyses: TEA allocation latency for
// 50/100/200 MB TEAs under single and nested virtualization, hypercall
// counts, DMT's management overhead under heavy fragmentation (index
// 0.99), page-table memory consumption vs the baseline, and the register
// coverage of the DMT fetcher.
//
// Absolute times are Go wall-clock measurements of the simulated kernel's
// management work, not cycle-accurate hardware times; the §6.3 claims under
// reproduction are the *relationships* (allocation cost grows with TEA
// size, nested costs more than single-level, management overhead is
// negligible next to execution time, extra memory is a few percent).
func Overheads(r *Runner) (string, error) {
	var b strings.Builder

	if s, err := teaAllocLatency(); err == nil {
		b.WriteString(s)
	} else {
		return "", err
	}
	if s, err := managementUnderFragmentation(); err == nil {
		b.WriteString(s)
	} else {
		return "", err
	}
	if s, err := pageTableMemory(r); err == nil {
		b.WriteString(s)
	} else {
		return "", err
	}
	if s, err := registerCoverage(r); err == nil {
		b.WriteString(s)
	} else {
		return "", err
	}
	return b.String(), nil
}

// teaAllocLatency times KVM_HC_ALLOC_TEA for the paper's 50/100/200 MB TEA
// sizes in single-level and nested setups.
func teaAllocLatency() (string, error) {
	t := &stats.Table{
		Title:  "§6.3: TEA allocation latency (KVM_HC_ALLOC_TEA, wall clock of the simulated kernel work)",
		Header: []string{"TEA size", "Virtualized", "Nested virt.", "Hypercalls (virt/nested)"},
	}
	hyp, err := virt.NewHypervisor(1<<19 /* 2 GiB */, cache.DefaultConfig())
	if err != nil {
		return "", err
	}
	l1, err := hyp.NewVM(virt.VMConfig{Name: "L1", RAMBytes: 512 << 20, ASID: 1, PvTEAWindowBytes: 768 << 20})
	if err != nil {
		return "", err
	}
	l2, err := hyp.NewNestedVM(l1, virt.VMConfig{Name: "L2", RAMBytes: 256 << 20, ASID: 2, PvTEAWindowBytes: 384 << 20})
	if err != nil {
		return "", err
	}
	for _, mb := range []int{50, 100, 200} {
		frames := mb << 20 >> mem.PageShift4K
		h0 := hyp.Hypercalls
		t0 := time.Now()
		if _, err := l1.AllocPvTEA(frames); err != nil {
			return "", fmt.Errorf("virt TEA alloc %dMB: %w", mb, err)
		}
		dVirt := time.Since(t0)
		hVirt := hyp.Hypercalls - h0

		h0 = hyp.Hypercalls
		t0 = time.Now()
		if _, err := l2.AllocPvTEA(frames); err != nil {
			return "", fmt.Errorf("nested TEA alloc %dMB: %w", mb, err)
		}
		dNested := time.Since(t0)
		hNested := hyp.Hypercalls - h0
		t.Add(fmt.Sprintf("%d MB", mb), dVirt.String(), dNested.String(), fmt.Sprintf("%d / %d", hVirt, hNested))
	}
	return t.String() + "\n", nil
}

// managementUnderFragmentation measures DMT-Linux's VMA-to-TEA management
// work while physical memory is fragmented to index 0.99, the §6.3
// methodology. It reports the wall time of all management procedures and
// the split/migration work that fragmentation forces.
func managementUnderFragmentation() (string, error) {
	t := &stats.Table{
		Title:  "§6.3: DMT management under fragmentation (free-memory fragmentation index 0.99)",
		Header: []string{"Case", "Mgmt wall time", "Mappings", "Splits", "Migrations", "Contig failures"},
	}
	for _, fragmented := range []bool{false, true} {
		pa := phys.New(0, 1<<17)
		if fragmented {
			// Occupy half the zone and shatter the free half.
			pa.Fragment(rand.New(rand.NewSource(1)), 4, 0.99)
		}
		as, err := kernel.NewAddressSpace(pa, kernel.Config{})
		if err != nil {
			return "", err
		}
		mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(false))
		as.SetHooks(mgr)
		t0 := time.Now()
		wl := workload.Redis() // largest management load in §6.3
		if _, err := wl.Build(as, 64<<20); err != nil {
			return "", err
		}
		elapsed := time.Since(t0)
		label := "pristine memory"
		if fragmented {
			label = fmt.Sprintf("fragmented (idx %.2f)", pa.FragmentationIndex(4))
		}
		t.Add(label, elapsed.String(), len(mgr.Mappings()),
			int(mgr.Stats.Splits), int(mgr.Stats.Migrations), int(mgr.Stats.AllocFailures))
	}
	return t.String() + "\n", nil
}

// pageTableMemory compares translation-structure memory: vanilla page
// tables vs DMT (page tables + eagerly-allocated TEA space), the §6.3
// "extra memory is negligible (<2.5%)" claim.
func pageTableMemory(r *Runner) (string, error) {
	t := &stats.Table{
		Title:  "§6.3: translation-structure memory",
		Header: []string{"Workload", "Baseline PT", "DMT (PT+TEA)", "Overhead"},
	}
	const ws = 768 << 20 // larger scale so TEA alignment rounding amortizes
	for _, wl := range r.Options().Workloads {
		pa := phys.New(0, 1<<19)
		as, err := kernel.NewAddressSpace(pa, kernel.Config{})
		if err != nil {
			return "", err
		}
		mgr := tea.NewManager(as, tea.NewPhysBackend(pa), tea.DefaultConfig(false))
		as.SetHooks(mgr)
		if _, err := wl.Build(as, ws); err != nil {
			return "", err
		}
		// DMT footprint: upper-level nodes outside TEAs + the full
		// eager TEA reservation.
		outside := as.Pool.CountNodes(func(n *pagetable.Node) bool { return !mgr.OwnsNode(n.Base) })
		dmtBytes := outside*mem.PageBytes4K + int(mgr.Stats.FramesLive)*mem.PageBytes4K

		// Baseline: same workload without hooks.
		pa2 := phys.New(0, 1<<19)
		as2, err := kernel.NewAddressSpace(pa2, kernel.Config{})
		if err != nil {
			return "", err
		}
		if _, err := wl.Build(as2, ws); err != nil {
			return "", err
		}
		baseBytes := as2.Pool.NodeCount() * mem.PageBytes4K
		t.Add(wl.Name, fmtMB(baseBytes), fmtMB(dmtBytes),
			fmt.Sprintf("%+.1f%%", 100*(float64(dmtBytes)/float64(baseBytes)-1)))
	}
	out := t.String() + "\n"
	sparse, err := sparseMmapMemory()
	if err != nil {
		return "", err
	}
	return out + sparse, nil
}

// sparseMmapMemory demonstrates the §7 caveat and its fix: a 1 GiB mmap of
// which only the first 16 MiB is touched wastes eager TEA space, and the
// on-demand allocation policy (tea.Config.OnDemand) recovers it.
func sparseMmapMemory() (string, error) {
	t := &stats.Table{
		Title:  "§7: eager vs on-demand TEA allocation (1 GiB mmap, 16 MiB touched)",
		Header: []string{"Policy", "Page tables", "TEA reservation", "Total"},
	}
	for _, onDemand := range []bool{false, true} {
		pa := phys.New(0, 1<<19)
		as, err := kernel.NewAddressSpace(pa, kernel.Config{})
		if err != nil {
			return "", err
		}
		cfg := tea.DefaultConfig(false)
		cfg.OnDemand = onDemand
		mgr := tea.NewManager(as, tea.NewPhysBackend(pa), cfg)
		as.SetHooks(mgr)
		v, err := as.MMap(0x40000000, 1<<30, kernel.VMAFile, "bigfile")
		if err != nil {
			return "", err
		}
		for off := mem.VAddr(0); off < 16<<20; off += mem.PageBytes4K {
			if _, err := as.Touch(v.Start+off, false); err != nil {
				return "", err
			}
		}
		ptBytes := as.Pool.CountNodes(func(n *pagetable.Node) bool { return !mgr.OwnsNode(n.Base) }) * mem.PageBytes4K
		teaBytes := int(mgr.Stats.FramesLive) * mem.PageBytes4K
		label := "eager (§4.3 default)"
		if onDemand {
			label = "on-demand (§7 extension)"
		}
		t.Add(label, fmtMB(ptBytes), fmtMB(teaBytes), fmtMB(ptBytes+teaBytes))
	}
	return t.String() + "\n", nil
}

func fmtMB(b int) string { return fmt.Sprintf("%.2f MB", float64(b)/(1<<20)) }

// registerCoverage reports the fraction of walks served by the DMT fetcher
// (the "99+% of page-table walk requests" claim of §4.1).
func registerCoverage(r *Runner) (string, error) {
	t := &stats.Table{
		Title:  "§4.1/§6.1: DMT register coverage",
		Header: []string{"Workload", "Native", "Virtualized (pvDMT)"},
	}
	for _, wl := range r.Options().Workloads {
		nat, err := r.Run(sim.EnvNative, sim.DesignDMT, false, wl)
		if err != nil {
			return "", err
		}
		pv, err := r.Run(sim.EnvVirt, sim.DesignPvDMT, false, wl)
		if err != nil {
			return "", err
		}
		t.Add(wl.Name, fmt.Sprintf("%.2f%%", nat.Coverage*100), fmt.Sprintf("%.2f%%", pv.Coverage*100))
	}
	return t.String() + "\n", nil
}
