package experiments

import (
	"fmt"
	"strings"

	"dmt/internal/kernel"
	"dmt/internal/perfmodel"
	"dmt/internal/phys"
	"dmt/internal/sim"
	"dmt/internal/stats"
	"dmt/internal/workload"
)

func layoutOnly(s workload.Spec) (*kernel.AddressSpace, *workload.Built, error) {
	as, err := kernel.NewAddressSpace(phys.New(0, 1<<17), kernel.Config{})
	if err != nil {
		return nil, nil, err
	}
	// 256 MiB keeps the small-VMA tail below the 1% residual, so the
	// measured layout statistics match the full-scale shape.
	b, err := s.Build(as, 256<<20)
	if err != nil {
		return nil, nil, err
	}
	return as, b, nil
}

// nativeDesigns and virtDesigns are the comparison sets of Figures 14/15.
var nativeDesigns = []sim.Design{sim.DesignFPT, sim.DesignECPT, sim.DesignASAP, sim.DesignDMT}
var virtDesigns = []sim.Design{sim.DesignFPT, sim.DesignECPT, sim.DesignAgile, sim.DesignASAP, sim.DesignDMT, sim.DesignPvDMT}

// SpeedupCell is one bar of a Figure 14/15/17 group.
type SpeedupCell struct {
	Workload string
	Design   sim.Design
	PageWalk float64 // page-walk speedup over the vanilla baseline
	App      float64 // application speedup via the §5 model
}

// speedups computes one environment's speedup bars.
func speedups(r *Runner, env sim.Environment, designs []sim.Design, thp bool) ([]SpeedupCell, error) {
	var out []SpeedupCell
	for _, wl := range r.Options().Workloads {
		calib, err := perfmodel.Get(wl.Name)
		if err != nil {
			return nil, err
		}
		for _, d := range designs {
			ratio, err := r.WalkRatio(env, d, thp, wl)
			if err != nil {
				return nil, err
			}
			cell := SpeedupCell{Workload: wl.Name, Design: d, PageWalk: 1 / ratio}
			switch env {
			case sim.EnvNative:
				cell.App = calib.AppSpeedupNative(ratio)
			case sim.EnvVirt:
				cell.App = calib.AppSpeedupVirt(ratio)
			case sim.EnvNested:
				cell.App = calib.AppSpeedupNested(ratio)
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

func renderSpeedups(title string, designs []sim.Design, cells []SpeedupCell, workloads []workload.Spec) (string, error) {
	var b strings.Builder
	for _, metric := range []string{"Page walk speedup", "Application speedup"} {
		t := &stats.Table{Title: fmt.Sprintf("%s — %s", title, metric)}
		t.Header = append([]string{"Workload"}, designNames(designs)...)
		geo := map[sim.Design][]float64{}
		for _, wl := range workloads {
			row := []interface{}{wl.Name}
			for _, d := range designs {
				v := lookupCell(cells, wl.Name, d, metric == "Page walk speedup")
				row = append(row, v)
				geo[d] = append(geo[d], v)
			}
			t.Add(row...)
		}
		row := []interface{}{"Geo. Mean"}
		var chartVals []float64
		for _, d := range designs {
			g, err := stats.GeoMean(geo[d])
			if err != nil {
				return "", err
			}
			row = append(row, g)
			chartVals = append(chartVals, g)
		}
		t.Add(row...)
		b.WriteString(t.String())
		b.WriteString(stats.BarChart("geomean "+strings.ToLower(metric), designNames(designs), chartVals, 40))
		b.WriteString("\n")
	}
	return b.String(), nil
}

func designNames(ds []sim.Design) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = string(d)
	}
	return out
}

func lookupCell(cells []SpeedupCell, wl string, d sim.Design, pw bool) float64 {
	for _, c := range cells {
		if c.Workload == wl && c.Design == d {
			if pw {
				return c.PageWalk
			}
			return c.App
		}
	}
	return 0
}

// Figure14 renders the native-environment speedups (4K and THP).
func Figure14(r *Runner) (string, error) {
	return pagedFigure(r, "Figure 14: native environment", sim.EnvNative, nativeDesigns)
}

// Figure15 renders the virtualized-environment speedups (4K and THP).
func Figure15(r *Runner) (string, error) {
	return pagedFigure(r, "Figure 15: virtualized environment", sim.EnvVirt, virtDesigns)
}

func pagedFigure(r *Runner, title string, env sim.Environment, designs []sim.Design) (string, error) {
	all := append([]sim.Design{sim.DesignVanilla}, designs...)
	if err := r.Warm(env, all, []bool{false, true}, r.Options().Workloads); err != nil {
		return "", err
	}
	var b strings.Builder
	for _, thp := range []bool{false, true} {
		label := "(a) 4KB"
		if thp {
			label = "(b) THP"
		}
		cells, err := speedups(r, env, designs, thp)
		if err != nil {
			return "", err
		}
		s, err := renderSpeedups(title+" "+label, designs, cells, r.Options().Workloads)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

// Figure17 renders the nested-virtualization speedups of pvDMT over the
// nested-KVM baseline.
func Figure17(r *Runner) (string, error) {
	return pagedFigure(r, "Figure 17: nested virtualization, pvDMT vs nested KVM",
		sim.EnvNested, []sim.Design{sim.DesignPvDMT})
}

// Table5 summarizes DMT/pvDMT's geomean page-walk speedups over the other
// advanced designs (pvDMT in the virtualized rows, matching §6.2).
func Table5(r *Runner) (string, error) {
	t := &stats.Table{
		Title:  "Table 5: DMT/pvDMT page-walk speedup over other designs (geomean)",
		Header: []string{"Environment", "FPT", "ECPT", "Agile Paging", "ASAP"},
	}
	rows := []struct {
		label string
		env   sim.Environment
		ours  sim.Design
		thp   bool
	}{
		{"Native (4KB)", sim.EnvNative, sim.DesignDMT, false},
		{"Native (THP)", sim.EnvNative, sim.DesignDMT, true},
		{"Virtualized (4KB)", sim.EnvVirt, sim.DesignPvDMT, false},
		{"Virtualized (THP)", sim.EnvVirt, sim.DesignPvDMT, true},
	}
	others := []sim.Design{sim.DesignFPT, sim.DesignECPT, sim.DesignAgile, sim.DesignASAP}
	for _, row := range rows {
		cells := []interface{}{row.label}
		for _, other := range others {
			if row.env == sim.EnvNative && other == sim.DesignAgile {
				cells = append(cells, "N/A")
				continue
			}
			var ratios []float64
			for _, wl := range r.Options().Workloads {
				ours, err := r.Run(row.env, row.ours, row.thp, wl)
				if err != nil {
					return "", err
				}
				theirs, err := r.Run(row.env, other, row.thp, wl)
				if err != nil {
					return "", err
				}
				ratios = append(ratios, theirs.AvgWalkCycles()/ours.AvgWalkCycles())
			}
			g, err := stats.GeoMean(ratios)
			if err != nil {
				return "", err
			}
			cells = append(cells, fmt.Sprintf("%.2fx", g))
		}
		t.Add(cells...)
	}
	return t.String(), nil
}

// Table6 reports measured sequential memory references per design and
// environment next to the paper's analytic counts.
func Table6(r *Runner) (string, error) {
	t := &stats.Table{
		Title:  "Table 6: sequential memory references per walk (measured vs paper)",
		Header: []string{"Design", "Native", "Virtualization", "Nested Virt.", "Paper"},
	}
	wl := r.Options().Workloads[0] // GUPS-like single-VMA is cleanest; any works
	for _, s := range r.Options().Workloads {
		if s.Name == "GUPS" {
			wl = s
		}
	}
	type rowSpec struct {
		design sim.Design
		paper  string
		nested bool
	}
	for _, row := range []rowSpec{
		{sim.DesignPvDMT, "1 / 2 / 3 (DMT native is pvDMT's degenerate case)", true},
		{sim.DesignDMT, "1 / 3 / -", false},
		{sim.DesignECPT, "1 / 3 / N/A", false},
		{sim.DesignFPT, "2 / 8 / N/A", false},
		{sim.DesignAgile, "N/A / 4-24 / N/A", false},
		{sim.DesignASAP, "4 / 24 / N/A", false},
	} {
		cells := []interface{}{string(row.design)}
		// Native column: pvDMT natively is DMT; Agile is virt-only.
		switch row.design {
		case sim.DesignPvDMT:
			res, err := r.Run(sim.EnvNative, sim.DesignDMT, false, wl)
			if err != nil {
				return "", err
			}
			cells = append(cells, fmt.Sprintf("%.2f", res.AvgSeqRefs()))
		case sim.DesignAgile:
			cells = append(cells, "N/A")
		default:
			res, err := r.Run(sim.EnvNative, row.design, false, wl)
			if err != nil {
				return "", err
			}
			cells = append(cells, fmt.Sprintf("%.2f", res.AvgSeqRefs()))
		}
		res, err := r.Run(sim.EnvVirt, row.design, false, wl)
		if err != nil {
			return "", err
		}
		cells = append(cells, fmt.Sprintf("%.2f", res.AvgSeqRefs()))
		if row.nested {
			nres, err := r.Run(sim.EnvNested, row.design, false, wl)
			if err != nil {
				return "", err
			}
			cells = append(cells, fmt.Sprintf("%.2f", nres.AvgSeqRefs()))
		} else {
			cells = append(cells, "N/A")
		}
		cells = append(cells, row.paper)
		t.Add(cells...)
	}
	// The vanilla baselines for reference.
	for _, env := range []struct {
		label string
		env   sim.Environment
	}{{"x86 radix (native)", sim.EnvNative}, {"nested paging (virt)", sim.EnvVirt}, {"shadow-on-nested", sim.EnvNested}} {
		res, err := r.Run(env.env, sim.DesignVanilla, false, wl)
		if err != nil {
			return "", err
		}
		t.Add("baseline: "+env.label, "", fmt.Sprintf("%.2f avg refs (max 4/24/24)", res.AvgSeqRefs()), "", "")
	}
	return t.String(), nil
}
