package experiments

import (
	"strings"
	"testing"

	"dmt/internal/sim"
	"dmt/internal/workload"
)

// TestWarmCollectsAllErrors injects failing cells into a Warm matrix —
// designs that don't exist under nested virtualization — and asserts that
// every failure is reported (joined, annotated with its cell) while the
// valid cells still complete and memoize.
func TestWarmCollectsAllErrors(t *testing.T) {
	wl := workload.GUPS()
	r := NewRunner(Options{
		Ops: 2_000, WSBytes: 24 << 20, CacheScale: 16, Seed: 3,
		Workloads: []workload.Spec{wl},
		Parallel:  3,
	})
	err := r.Warm(sim.EnvNested,
		[]sim.Design{sim.DesignVanilla, sim.DesignECPT, sim.DesignFPT},
		[]bool{false}, []workload.Spec{wl})
	if err == nil {
		t.Fatal("Warm swallowed the failing cells")
	}
	msg := err.Error()
	for _, frag := range []string{"ecpt", "fpt"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("joined error missing failing cell %q: %v", frag, msg)
		}
	}
	if strings.Contains(msg, "vanilla") {
		t.Errorf("joined error blames a healthy cell: %v", msg)
	}
	// The healthy cell must have been attempted and memoized despite the
	// failures.
	if _, err := r.Run(sim.EnvNested, sim.DesignVanilla, false, wl); err != nil {
		t.Errorf("healthy cell failed after Warm: %v", err)
	}
}

// TestWarmSequentialSkips pins the lazy path: with Parallel <= 1 Warm is a
// no-op and never surfaces errors early.
func TestWarmSequentialSkips(t *testing.T) {
	wl := workload.GUPS()
	r := NewRunner(Options{
		Ops: 1_000, WSBytes: 24 << 20, Seed: 3,
		Workloads: []workload.Spec{wl},
	})
	if err := r.Warm(sim.EnvNested, []sim.Design{sim.DesignECPT}, []bool{false}, []workload.Spec{wl}); err != nil {
		t.Fatalf("sequential Warm should defer errors to Run, got %v", err)
	}
}
