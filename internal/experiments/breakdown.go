package experiments

import (
	"fmt"
	"strings"

	"dmt/internal/sim"
	"dmt/internal/stats"
	"dmt/internal/workload"
)

// Figure16 renders the per-PTE breakdown of nested page-table walks: for
// the baseline's 24 architectural steps (Figure 2 numbering) and for
// pvDMT's two direct fetches, the amortized cycles per walk and the share
// of the average walk latency — the two numbers of each box in Figure 16.
func Figure16(r *Runner) (string, error) {
	wl, err := pickWorkload(r, "Redis")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, thp := range []bool{false, true} {
		label := "(a) 4KB base pages"
		if thp {
			label = "(b) 2M huge pages (THP)"
		}
		for _, d := range []sim.Design{sim.DesignVanilla, sim.DesignPvDMT} {
			res, err := r.Run(sim.EnvVirt, d, thp, wl)
			if err != nil {
				return "", err
			}
			t := &stats.Table{
				Title:  fmt.Sprintf("Figure 16 %s — %s (%s), avg walk %.1f cycles", label, d, wl.Name, res.AvgWalkCycles()),
				Header: []string{"Step", "Amortized cycles/walk", "Share of walk latency", "Hits"},
			}
			for _, s := range res.Breakdown() {
				amort := float64(s.Cycles) / float64(res.Walks)
				share := float64(s.Cycles) / float64(res.WalkCycles)
				t.Add(s.Label, amort, fmt.Sprintf("%.1f%%", share*100), int(s.Count))
			}
			b.WriteString(t.String())
			if d == sim.DesignPvDMT {
				b.WriteString("(note: per-step cycles include parallel TEA probes off the critical path —\n" +
					" the walk latency is the *matching* probe's; shares can exceed 100%.)\n")
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

func pickWorkload(r *Runner, name string) (workload.Spec, error) {
	for _, wl := range r.Options().Workloads {
		if wl.Name == name {
			return wl, nil
		}
	}
	if len(r.Options().Workloads) > 0 {
		return r.Options().Workloads[0], nil
	}
	return workload.Spec{}, fmt.Errorf("experiments: no workloads configured")
}
