package experiments

import (
	"fmt"
	"strings"

	"dmt/internal/perfmodel"
	"dmt/internal/sim"
	"dmt/internal/stats"
	"dmt/internal/workload"
)

// Figure4 renders the motivation figure: normalized execution time and
// page-walk share under native, virtualized (nested and shadow paging),
// and nested virtualization, cross-checked against the simulator's
// measured average walk latencies for the same environments.
func Figure4(r *Runner) (string, error) {
	t := &stats.Table{
		Title: "Figure 4: normalized execution time (PW = page-walk portion)",
		Header: []string{"Workload", "Native", "PW", "Virt nPT", "PW", "Virt sPT", "PW", "Nested", "PW",
			"simWalk nat", "simWalk virt", "simWalk nested"},
	}
	var geo [4][]float64
	for _, wl := range r.Options().Workloads {
		c, err := perfmodel.Get(wl.Name)
		if err != nil {
			return "", err
		}
		row := perfmodel.Figure4()
		var fr perfmodel.Figure4Row
		for _, x := range row {
			if x.Workload == wl.Name {
				fr = x
			}
		}
		nat, err := r.Run(sim.EnvNative, sim.DesignVanilla, false, wl)
		if err != nil {
			return "", err
		}
		virt, err := r.Run(sim.EnvVirt, sim.DesignVanilla, false, wl)
		if err != nil {
			return "", err
		}
		nested, err := r.Run(sim.EnvNested, sim.DesignVanilla, false, wl)
		if err != nil {
			return "", err
		}
		t.Add(wl.Name, fr.Native, fr.NativePW, fr.Virt, fr.VirtPW, fr.Shadow, fr.ShadowPW, fr.Nested, fr.NestedPW,
			nat.AvgWalkCycles(), virt.AvgWalkCycles(), nested.AvgWalkCycles())
		geo[0] = append(geo[0], fr.Native)
		geo[1] = append(geo[1], fr.Virt)
		geo[2] = append(geo[2], fr.Shadow)
		geo[3] = append(geo[3], fr.Nested)
		_ = c
	}
	var gm [4]float64
	for i := range geo {
		g, err := stats.GeoMean(geo[i])
		if err != nil {
			return "", err
		}
		gm[i] = g
	}
	t.Add("Geo. Mean", gm[0], "", gm[1], "", gm[2], "", gm[3], "", "", "", "")
	return t.String(), nil
}

// Table1 renders the VMA characteristics of the seven benchmarks plus the
// SPEC corpora ranges.
func Table1() (string, error) {
	t := &stats.Table{
		Title:  "Table 1: VMA characteristics",
		Header: []string{"Workload", "Total", "99% Cov.", "Clusters"},
	}
	for _, s := range workload.All() {
		st, err := measureLayout(s)
		if err != nil {
			return "", err
		}
		t.Add(s.Name, st.Total, st.Cov99, st.Clusters)
	}
	for _, year := range []int{2006, 2017} {
		var totals, covs, cls []int
		for _, wl := range workload.SpecCorpus(year) {
			st := workload.ComputeVMAStats(wl.Regions)
			totals = append(totals, st.Total)
			covs = append(covs, st.Cov99)
			cls = append(cls, st.Clusters)
		}
		t.Add(fmt.Sprintf("SPEC CPU %d (%d WLs)", year, len(totals)),
			rangeOf(totals), rangeOf(covs), rangeOf(cls))
	}
	return t.String(), nil
}

func rangeOf(xs []int) string {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// measureLayout instantiates a workload at a small working set (layout
// shape is size-independent) and measures its VMA statistics.
func measureLayout(s workload.Spec) (workload.VMAStats, error) {
	as, built, err := layoutOnly(s)
	if err != nil {
		return workload.VMAStats{}, err
	}
	_ = built
	return workload.ComputeVMAStats(workload.RegionsOf(as)), nil
}

// Figure5 renders the CDFs of the three SPEC VMA metrics as percentile
// series (the paper plots them as CDF curves).
func Figure5() (string, error) {
	var b strings.Builder
	for _, year := range []int{2006, 2017} {
		t := &stats.Table{
			Title:  fmt.Sprintf("Figure 5: SPEC CPU %d VMA-characteristic CDFs", year),
			Header: []string{"Percentile", "Total", "99% Cov.", "Clusters"},
		}
		var totals, covs, cls []float64
		for _, wl := range workload.SpecCorpus(year) {
			st := workload.ComputeVMAStats(wl.Regions)
			totals = append(totals, float64(st.Total))
			covs = append(covs, float64(st.Cov99))
			cls = append(cls, float64(st.Clusters))
		}
		for _, p := range []float64{10, 25, 50, 75, 90, 100} {
			t.Add(fmt.Sprintf("p%.0f", p),
				stats.Percentile(totals, p), stats.Percentile(covs, p), stats.Percentile(cls, p))
		}
		b.WriteString(t.String())
		b.WriteString(stats.CDFPlot(fmt.Sprintf("CDF of clusters (SPEC %d)", year), cls, 40))
		b.WriteString("\n")
	}
	return b.String(), nil
}
