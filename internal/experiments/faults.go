package experiments

import (
	"context"
	"fmt"
	"strings"

	"dmt/internal/fault"
	"dmt/internal/sim"
	"dmt/internal/stats"
	"dmt/internal/workload"
)

// faultDesigns lists the walker designs each environment supports, the
// same matrix the differential tests in internal/check exercise.
func faultDesigns(env sim.Environment) []sim.Design {
	switch env {
	case sim.EnvNative:
		return []sim.Design{sim.DesignVanilla, sim.DesignDMT, sim.DesignECPT, sim.DesignFPT, sim.DesignASAP,
			sim.DesignVictima, sim.DesignUtopia}
	case sim.EnvVirt:
		return []sim.Design{sim.DesignVanilla, sim.DesignShadow, sim.DesignDMT, sim.DesignPvDMT,
			sim.DesignECPT, sim.DesignFPT, sim.DesignAgile, sim.DesignASAP,
			sim.DesignVictima, sim.DesignUtopia}
	case sim.EnvNested:
		return []sim.Design{sim.DesignVanilla, sim.DesignPvDMT, sim.DesignVictima, sim.DesignUtopia}
	}
	return nil
}

// FaultCampaign runs every (environment × design × fault schedule) cell
// with the differential oracle armed and renders the graceful-degradation
// table: register coverage, fallback rate, walk-latency inflation over the
// unfaulted baseline, demand refaults, and the oracle's check count. Any
// PA/size mismatch, out-of-step fallback, or broken TEA invariant aborts
// the campaign with an error — the zero-mismatch claim is the result.
//
// Results are deterministic for a fixed Options.Seed: schedules carry
// their own seeds and the simulator introduces no other randomness.
func FaultCampaign(r *Runner) (string, error) {
	return FaultCampaignCtx(context.Background(), r)
}

// FaultCampaignCtx is FaultCampaign under a context: cancellation aborts the
// in-flight cell at its next step batch and the campaign returns the context
// error instead of a partial table.
func FaultCampaignCtx(ctx context.Context, r *Runner) (string, error) {
	var b strings.Builder
	opt := r.Options()
	for _, wl := range opt.Workloads {
		s, err := faultCampaignFor(ctx, opt, wl)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

func faultCampaignFor(ctx context.Context, opt Options, wl workload.Spec) (string, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Fault campaign: graceful degradation under injected faults (%s, %d ops, seed %d)",
			wl.Name, opt.Ops, opt.Seed),
		Header: []string{"Env", "Design", "Schedule", "Faults", "Refaults",
			"Coverage", "Fallback rate", "Walk infl.", "p99", "Max", "Checks"},
	}
	totalChecked := uint64(0)
	for _, env := range []sim.Environment{sim.EnvNative, sim.EnvVirt, sim.EnvNested} {
		for _, d := range faultDesigns(env) {
			if err := ctx.Err(); err != nil {
				return "", err
			}
			cfg := sim.Config{
				Env: env, Design: d, THP: true, Workload: wl,
				WSBytes: opt.WSBytes, Ops: opt.Ops, Seed: opt.Seed,
				CacheScale: opt.CacheScale,
			}
			opt.Logf("fault campaign baseline %v/%s %s ...", env, d, wl.Name)
			base, err := sim.RunCtx(ctx, cfg)
			if err != nil {
				return "", fmt.Errorf("baseline %v/%s: %w", env, d, err)
			}
			for _, plan := range fault.Suite(opt.Ops) {
				fcfg := cfg
				p := plan
				fcfg.FaultPlan = &p
				fcfg.Verify = true
				opt.Logf("fault campaign %v/%s/%s %s ...", env, d, plan.Name, wl.Name)
				res, err := sim.RunCtx(ctx, fcfg)
				if err != nil {
					return "", fmt.Errorf("%v/%s/%s: %w", env, d, plan.Name, err)
				}
				if res.Mismatches != 0 {
					return "", fmt.Errorf("%v/%s/%s: %d mismatches in %d checks",
						env, d, plan.Name, res.Mismatches, res.Checked)
				}
				totalChecked += res.Checked
				t.Add(env.String(), string(d), plan.Name,
					fmt.Sprintf("%d+%ds", res.FaultsApplied, res.FaultsSkipped),
					res.DemandFaults,
					fmt.Sprintf("%.1f%%", res.Coverage*100),
					fmt.Sprintf("%.2f%%", fallbackRate(res)*100),
					fmt.Sprintf("%.2fx", inflation(res, base)),
					res.WalkPercentile(99),
					res.WalkHist.Max,
					res.Checked)
			}
		}
	}
	return t.String() + fmt.Sprintf("%d translations re-verified against live page tables, 0 mismatches.\n\n",
		totalChecked), nil
}

// fallbackRate is the fraction of page walks the design served through its
// legacy fallback path (always 0 for designs without one).
func fallbackRate(r *sim.Result) float64 {
	if r.Walks == 0 {
		return 0
	}
	return float64(r.Fallbacks) / float64(r.Walks)
}

// inflation compares mean walk latency against the unfaulted baseline of
// the same configuration.
func inflation(res, base *sim.Result) float64 {
	b := base.AvgWalkCycles()
	if b == 0 {
		return 1
	}
	return res.AvgWalkCycles() / b
}
