// Package phys implements the physical-memory substrate of the DMT
// reproduction: a buddy page-frame allocator with per-order free lists,
// contiguous-range allocation in the style of Linux's alloc_contig_pages,
// movability classes, page migration, compaction, and a free-memory
// fragmentation index.
//
// TEAs (§3) require physically-contiguous memory; §4.3 and §7 of the paper
// describe how DMT-Linux leans on the contiguous allocator and on
// defragmentation to satisfy that requirement, splitting VMA-to-TEA mappings
// when contiguity cannot be found. This package provides exactly those
// mechanics so the TEA manager above it behaves like the paper's.
package phys

import (
	"errors"
	"fmt"

	"dmt/internal/mem"
)

// Kind classifies the owner of an allocated frame, mirroring Linux's
// migrate types. Movable frames can be relocated during contiguous
// allocation and compaction; unmovable and page-table frames cannot.
type Kind uint8

const (
	KindFree Kind = iota
	KindMovable
	KindUnmovable
	KindPageTable
)

func (k Kind) String() string {
	switch k {
	case KindFree:
		return "free"
	case KindMovable:
		return "movable"
	case KindUnmovable:
		return "unmovable"
	case KindPageTable:
		return "pagetable"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MaxOrder is the largest buddy order: 2^10 frames = 4 MiB blocks, matching
// Linux's default MAX_ORDER-1 granularity closely enough for TEA sizing.
const MaxOrder = 10

// ErrNoMemory is returned when the allocator cannot satisfy a request.
var ErrNoMemory = errors.New("phys: out of memory")

// ErrNoContig is returned when no contiguous range can be assembled even
// after migrating movable pages; callers (the TEA manager) respond by
// splitting the VMA-to-TEA mapping (§4.2.2).
var ErrNoContig = errors.New("phys: no contiguous range available")

// Relocator is notified when the allocator migrates a movable frame; the
// owner must rewrite any translation structures that reference old. The
// kernel layer registers one so data-page migration updates PTEs.
type Relocator interface {
	Relocate(old, new mem.PAddr) bool
}

// Allocator is a buddy allocator managing a contiguous physical region.
// It is not safe for concurrent use; the simulated kernel serializes calls
// the way a zone lock would.
type Allocator struct {
	base   mem.PAddr
	frames uint32

	// blockOrder[f] is the order of the free block headed at frame f,
	// or -1 when f is allocated or interior to a free block.
	blockOrder []int8
	// free[f] reports whether frame f belongs to any free block.
	free []bool
	// kind[f] records the owner class of an allocated frame.
	kind []Kind

	// freeStacks holds candidate free-block heads per order with lazy
	// deletion: entries are validated against blockOrder when popped,
	// which keeps allocation deterministic (LIFO) and O(1) amortized.
	freeStacks [MaxOrder + 1][]uint32

	freeFrames uint32
	relocator  Relocator

	// Stats counts allocator work for the §6.3 overhead experiments.
	Stats Stats
}

// Stats aggregates allocator activity.
type Stats struct {
	Allocs      uint64
	Frees       uint64
	Splits      uint64
	Coalesces   uint64
	Migrations  uint64
	ContigScans uint64
	// ContigAllocs counts successful AllocContig calls, the denominator of
	// the aging scenario's defrag-cost metric (migrations per contig alloc).
	ContigAllocs uint64
}

// New creates an allocator managing frames 4-KiB frames starting at base.
// base must be 4 KiB-aligned.
func New(base mem.PAddr, frames int) *Allocator {
	if !mem.IsAligned(uint64(base), mem.PageBytes4K) {
		panic("phys: unaligned base")
	}
	if frames <= 0 {
		panic("phys: non-positive frame count")
	}
	a := &Allocator{
		base:       base,
		frames:     uint32(frames),
		blockOrder: make([]int8, frames),
		free:       make([]bool, frames),
		kind:       make([]Kind, frames),
	}
	for i := range a.blockOrder {
		a.blockOrder[i] = -1
	}
	// Seed free lists with maximal aligned blocks.
	f := uint32(0)
	for f < a.frames {
		order := MaxOrder
		for order > 0 && (f&(1<<order-1) != 0 || f+1<<order > a.frames) {
			order--
		}
		a.insertFree(f, order)
		f += 1 << order
	}
	a.freeFrames = a.frames
	return a
}

// SetRelocator registers the migration callback used by AllocContig and
// Compact. Without one, movable frames are treated as unmovable.
func (a *Allocator) SetRelocator(r Relocator) { a.relocator = r }

// Base returns the first managed physical address.
func (a *Allocator) Base() mem.PAddr { return a.base }

// TotalFrames returns the number of managed 4 KiB frames.
func (a *Allocator) TotalFrames() int { return int(a.frames) }

// FreeFrames returns the number of currently free 4 KiB frames.
func (a *Allocator) FreeFrames() int { return int(a.freeFrames) }

// FrameKind returns the owner class of the frame containing pa.
func (a *Allocator) FrameKind(pa mem.PAddr) Kind {
	f := a.frameOf(pa)
	if a.free[f] {
		return KindFree
	}
	return a.kind[f]
}

func (a *Allocator) frameOf(pa mem.PAddr) uint32 {
	if pa < a.base {
		panic("phys: address below managed region")
	}
	f := uint64(pa-a.base) >> mem.PageShift4K
	if f >= uint64(a.frames) {
		panic("phys: address beyond managed region")
	}
	return uint32(f)
}

func (a *Allocator) addrOf(f uint32) mem.PAddr {
	return a.base + mem.PAddr(uint64(f)<<mem.PageShift4K)
}

func (a *Allocator) insertFree(f uint32, order int) {
	a.blockOrder[f] = int8(order)
	for i := f; i < f+1<<order; i++ {
		a.free[i] = true
		a.kind[i] = KindFree
	}
	stack := append(a.freeStacks[order], f)
	// Lazy deletion leaves stale entries behind; over a multi-million-event
	// aging run (carveFrame detaches heads without popping them) the stacks
	// would otherwise grow without bound. Compact once a stack exceeds the
	// maximum possible number of live heads at this order plus slack.
	if len(stack) > int(a.frames>>uint(order))+64 {
		stack = a.compactStack(stack, order)
	}
	a.freeStacks[order] = stack
}

// compactStack drops entries invalidated by lazy deletion and collapses
// duplicates of still-valid heads, keeping only the newest occurrence of
// each. Pops take the newest entry first and claiming a head invalidates
// its older duplicates, so the sequence of successful pops — and therefore
// allocation determinism — is unchanged.
func (a *Allocator) compactStack(stack []uint32, order int) []uint32 {
	seen := make(map[uint32]struct{}, len(stack))
	kept := make([]uint32, 0, len(stack))
	for i := len(stack) - 1; i >= 0; i-- {
		f := stack[i]
		if a.blockOrder[f] != int8(order) {
			continue
		}
		if _, dup := seen[f]; dup {
			continue
		}
		seen[f] = struct{}{}
		kept = append(kept, f)
	}
	// kept is newest-first; restore stack order (oldest at the bottom).
	out := stack[:0]
	for i := len(kept) - 1; i >= 0; i-- {
		out = append(out, kept[i])
	}
	return out
}

// popFree removes and returns a valid free block head of the given order,
// or (0, false) when none exists.
func (a *Allocator) popFree(order int) (uint32, bool) {
	stack := a.freeStacks[order]
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a.blockOrder[f] == int8(order) {
			a.freeStacks[order] = stack
			return f, true
		}
	}
	a.freeStacks[order] = stack
	return 0, false
}

// Alloc allocates a 2^order-frame block and returns its physical address.
func (a *Allocator) Alloc(order int, kind Kind) (mem.PAddr, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("phys: invalid order %d", order)
	}
	if kind == KindFree {
		return 0, errors.New("phys: cannot allocate KindFree")
	}
	for o := order; o <= MaxOrder; o++ {
		f, ok := a.popFree(o)
		if !ok {
			continue
		}
		// Split down to the requested order, freeing upper halves.
		for cur := o; cur > order; cur-- {
			half := uint32(1) << (cur - 1)
			a.insertFree(f+half, cur-1)
			a.Stats.Splits++
		}
		a.claim(f, uint32(1)<<order, kind)
		a.Stats.Allocs++
		return a.addrOf(f), nil
	}
	return 0, ErrNoMemory
}

// AllocFrame allocates a single 4 KiB frame.
func (a *Allocator) AllocFrame(kind Kind) (mem.PAddr, error) {
	return a.Alloc(0, kind)
}

func (a *Allocator) claim(f, n uint32, kind Kind) {
	a.blockOrder[f] = -1
	for i := f; i < f+n; i++ {
		a.free[i] = false
		a.kind[i] = kind
	}
	a.freeFrames -= n
}

// Free releases a block previously returned by Alloc with the same order.
func (a *Allocator) Free(pa mem.PAddr, order int) {
	f := a.frameOf(pa)
	n := uint32(1) << order
	if f&(n-1) != 0 {
		panic("phys: Free of unaligned block")
	}
	for i := f; i < f+n; i++ {
		if a.free[i] {
			panic(fmt.Sprintf("phys: double free of frame %d", i))
		}
	}
	a.freeFrames += n
	a.Stats.Frees++
	a.freeBlock(f, order)
}

// freeBlock inserts a block and coalesces with its buddy while possible.
func (a *Allocator) freeBlock(f uint32, order int) {
	for order < MaxOrder {
		buddy := f ^ (1 << order)
		if buddy >= a.frames || a.blockOrder[buddy] != int8(order) {
			break
		}
		// Detach the buddy (lazy deletion handles the stack entry).
		a.blockOrder[buddy] = -1
		if buddy < f {
			f = buddy
		}
		order++
		a.Stats.Coalesces++
	}
	a.insertFree(f, order)
}

// FreeFrame releases a single 4 KiB frame.
func (a *Allocator) FreeFrame(pa mem.PAddr) { a.Free(pa, 0) }
