package phys

import (
	"math/rand"
	"testing"

	"dmt/internal/mem"
)

// trackingRelocator models the kernel's rmap: it owns a set of movable 4K
// frames and rewrites its own records when the allocator migrates one.
// Frames it does not own (or multi-frame blocks) are refused, mirroring
// how the kernel refuses to migrate huge pages frame-by-frame.
type trackingRelocator struct {
	frames []mem.PAddr
	idx    map[mem.PAddr]int
}

func newTrackingRelocator() *trackingRelocator {
	return &trackingRelocator{idx: make(map[mem.PAddr]int)}
}

func (r *trackingRelocator) Relocate(old, new mem.PAddr) bool {
	i, ok := r.idx[old]
	if !ok {
		return false
	}
	delete(r.idx, old)
	r.frames[i] = new
	r.idx[new] = i
	return true
}

func (r *trackingRelocator) add(pa mem.PAddr) {
	r.idx[pa] = len(r.frames)
	r.frames = append(r.frames, pa)
}

// removeAt swap-deletes the i-th tracked frame and returns its address.
func (r *trackingRelocator) removeAt(i int) mem.PAddr {
	pa := r.frames[i]
	delete(r.idx, pa)
	last := len(r.frames) - 1
	if i != last {
		r.frames[i] = r.frames[last]
		r.idx[r.frames[i]] = i
	}
	r.frames = r.frames[:last]
	return pa
}

// TestSoakConservation drives a randomized mix of buddy allocations,
// contiguous allocations, frees, in-place expansions, and compaction
// cycles, asserting after every single operation that (a) no frame was
// leaked or double-freed (FreeFrames + live claims == TotalFrames) and
// (b) the allocator's internal metadata passes Audit. This is the
// satellite soak test for the long-run invariants: the carveFrame /
// migrateFrame stale-entry handling and FreeContig accounting all get
// exercised thousands of times per seed.
func TestSoakConservation(t *testing.T) {
	type allocation struct {
		pa     mem.PAddr
		order  int // buddy order, or -1 for a contig run
		frames int // total frames currently claimed
	}
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		const frames = 4096
		a := New(0, frames)
		rel := newTrackingRelocator()
		a.SetRelocator(rel)
		var live []allocation // unmovable: never migrated, addresses stable
		liveFrames := 0

		check := func(step int, op string) {
			t.Helper()
			if got := a.FreeFrames() + liveFrames + len(rel.frames); got != frames {
				t.Fatalf("seed %d step %d (%s): free %d + pinned %d + movable %d = %d, want %d",
					seed, step, op, a.FreeFrames(), liveFrames, len(rel.frames), got, frames)
			}
			if err := a.Audit(); err != nil {
				t.Fatalf("seed %d step %d (%s): %v", seed, step, op, err)
			}
		}

		for step := 0; step < 3000; step++ {
			switch p := rng.Intn(100); {
			case p < 20: // movable data frame (relocatable, rmap-tracked)
				if pa, err := a.AllocFrame(KindMovable); err == nil {
					rel.add(pa)
				}
				check(step, "alloc-movable")
			case p < 35: // pinned buddy block
				order := rng.Intn(5)
				kind := KindUnmovable
				if order == 0 && rng.Intn(2) == 0 {
					kind = KindPageTable
				}
				if pa, err := a.Alloc(order, kind); err == nil {
					live = append(live, allocation{pa, order, 1 << order})
					liveFrames += 1 << order
				}
				check(step, "alloc")
			case p < 50: // contig alloc (may migrate movable frames out)
				n := 1 + rng.Intn(600)
				if pa, err := a.AllocContig(n, KindPageTable); err == nil {
					live = append(live, allocation{pa, -1, n})
					liveFrames += n
				}
				check(step, "alloc-contig")
			case p < 70: // free a movable frame
				if len(rel.frames) == 0 {
					continue
				}
				a.FreeFrame(rel.removeAt(rng.Intn(len(rel.frames))))
				check(step, "free-movable")
			case p < 85: // free a pinned allocation
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				al := live[i]
				if al.order >= 0 {
					a.Free(al.pa, al.order)
				} else {
					a.FreeContig(al.pa, al.frames)
				}
				liveFrames -= al.frames
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				check(step, "free")
			case p < 92: // expand a contig run in place
				var contig []int
				for i, al := range live {
					if al.order < 0 {
						contig = append(contig, i)
					}
				}
				if len(contig) == 0 {
					continue
				}
				i := contig[rng.Intn(len(contig))]
				extra := 1 + rng.Intn(32)
				if a.ExpandContigInPlace(live[i].pa, live[i].frames, extra) {
					live[i].frames += extra
					liveFrames += extra
				}
				check(step, "expand")
			default: // compact
				a.Compact()
				check(step, "compact")
			}
		}
		// Drain everything: the zone must coalesce back to a pristine state.
		for _, al := range live {
			if al.order >= 0 {
				a.Free(al.pa, al.order)
			} else {
				a.FreeContig(al.pa, al.frames)
			}
		}
		for len(rel.frames) > 0 {
			a.FreeFrame(rel.removeAt(len(rel.frames) - 1))
		}
		liveFrames = 0
		live = nil
		check(-1, "drain")
		if fi := a.FragmentationIndex(MaxOrder); fi != 0 {
			t.Fatalf("seed %d: FragmentationIndex(MaxOrder) = %v after full drain, want 0", seed, fi)
		}
	}
}

// TestFreeContigDoubleFreePanics pins the FreeContig validation fix: a
// duplicate release used to silently inflate freeFrames and corrupt the
// buddy metadata; it must panic like Free does.
func TestFreeContigDoubleFreePanics(t *testing.T) {
	a := New(0, 256)
	pa, err := a.AllocContig(48, KindPageTable)
	if err != nil {
		t.Fatal(err)
	}
	a.FreeContig(pa, 48)
	defer func() {
		if recover() == nil {
			t.Fatal("second FreeContig of the same range did not panic")
		}
	}()
	a.FreeContig(pa, 48)
}

// TestFragmentConsumesRngDeterministically pins the Fragment rand-state
// fix: the rng draw must happen whether or not the early return fires, so
// a clone sharing the caller's rng stream cannot diverge based on
// allocator state.
func TestFragmentConsumesRngDeterministically(t *testing.T) {
	a := New(0, 512)
	rng := rand.New(rand.NewSource(9))
	a.Fragment(rng, 4, 0.0) // index 0 >= target 0: early return
	ref := rand.New(rand.NewSource(9))
	ref.Intn(2) // the draw Fragment must have consumed
	if got, want := rng.Int63(), ref.Int63(); got != want {
		t.Fatalf("rng state diverged after early-returning Fragment: got %d, want %d", got, want)
	}
}

// TestFreeBlockCountsAfterCarveChurn pins the FragmentationIndex fix:
// counting stack entries double-counted heads that were detached by
// carveFrame and later re-inserted by coalescing, which could push
// "suitable" free memory above the actual free-frame count and drive the
// index negative. After heavy carve/coalesce churn the per-order counts
// must exactly tile the free frames and the index must stay in [0, 1].
func TestFreeBlockCountsAfterCarveChurn(t *testing.T) {
	a := New(0, 2048)
	rng := rand.New(rand.NewSource(3))
	type run struct {
		pa mem.PAddr
		n  int
	}
	var runs []run
	for i := 0; i < 200; i++ {
		if rng.Intn(3) > 0 || len(runs) == 0 {
			n := 1 + rng.Intn(200)
			if pa, err := a.AllocContig(n, KindPageTable); err == nil {
				runs = append(runs, run{pa, n})
			}
		} else {
			j := rng.Intn(len(runs))
			a.FreeContig(runs[j].pa, runs[j].n)
			runs[j] = runs[len(runs)-1]
			runs = runs[:len(runs)-1]
		}
		counts := a.FreeBlockCounts()
		total := 0
		for o, c := range counts {
			total += c << uint(o)
		}
		if total != a.FreeFrames() {
			t.Fatalf("step %d: free blocks tile %d frames, FreeFrames = %d", i, total, a.FreeFrames())
		}
		for order := 0; order <= MaxOrder; order++ {
			if fi := a.FragmentationIndex(order); fi < 0 || fi > 1 {
				t.Fatalf("step %d: FragmentationIndex(%d) = %v out of [0,1]", i, order, fi)
			}
		}
	}
}

// TestFreeStackStaysBounded pins the insertFree compaction: lazy deletion
// must not let a free stack grow past the maximum possible number of live
// heads (plus slack) no matter how much churn the allocator sees.
func TestFreeStackStaysBounded(t *testing.T) {
	const frames = 1024
	a := New(0, frames)
	rel := newTrackingRelocator()
	a.SetRelocator(rel)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 && len(rel.frames) < frames/2 {
			if pa, err := a.AllocFrame(KindMovable); err == nil {
				rel.add(pa)
			}
		} else if len(rel.frames) > 0 {
			a.FreeFrame(rel.removeAt(rng.Intn(len(rel.frames))))
		}
		if i%16 == 0 {
			a.Compact()
		}
		for order := 0; order <= MaxOrder; order++ {
			if n, max := len(a.freeStacks[order]), frames>>uint(order)+64; n > max {
				t.Fatalf("step %d: order-%d stack has %d entries, bound %d", i, order, n, max)
			}
		}
	}
}
