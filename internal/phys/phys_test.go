package phys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmt/internal/mem"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	a := New(0, 1024)
	if a.FreeFrames() != 1024 {
		t.Fatalf("FreeFrames = %d, want 1024", a.FreeFrames())
	}
	pa, err := a.AllocFrame(KindMovable)
	if err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != 1023 {
		t.Fatalf("FreeFrames = %d after alloc, want 1023", a.FreeFrames())
	}
	if got := a.FrameKind(pa); got != KindMovable {
		t.Fatalf("FrameKind = %v, want movable", got)
	}
	a.FreeFrame(pa)
	if a.FreeFrames() != 1024 {
		t.Fatalf("FreeFrames = %d after free, want 1024", a.FreeFrames())
	}
	if got := a.FrameKind(pa); got != KindFree {
		t.Fatalf("FrameKind = %v after free, want free", got)
	}
}

func TestAllocAlignment(t *testing.T) {
	a := New(0x100000, 4096)
	for order := 0; order <= MaxOrder; order++ {
		pa, err := a.Alloc(order, KindUnmovable)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if !mem.IsAligned(uint64(pa-0x100000), uint64(mem.PageBytes4K)<<order) {
			t.Errorf("order-%d block at %#x not naturally aligned", order, uint64(pa))
		}
	}
}

func TestCoalescingRestoresMaxBlocks(t *testing.T) {
	a := New(0, 1<<MaxOrder)
	var frames []mem.PAddr
	for {
		pa, err := a.AllocFrame(KindUnmovable)
		if err != nil {
			break
		}
		frames = append(frames, pa)
	}
	if len(frames) != 1<<MaxOrder {
		t.Fatalf("allocated %d frames, want %d", len(frames), 1<<MaxOrder)
	}
	for _, pa := range frames {
		a.FreeFrame(pa)
	}
	// After freeing everything the allocator must again satisfy a
	// maximal-order allocation (full coalescing).
	if _, err := a.Alloc(MaxOrder, KindUnmovable); err != nil {
		t.Fatalf("max-order alloc after full free: %v", err)
	}
}

func TestExhaustion(t *testing.T) {
	a := New(0, 8)
	for i := 0; i < 8; i++ {
		if _, err := a.AllocFrame(KindMovable); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.AllocFrame(KindMovable); err != ErrNoMemory {
		t.Fatalf("expected ErrNoMemory, got %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(0, 16)
	pa, _ := a.AllocFrame(KindMovable)
	a.FreeFrame(pa)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.FreeFrame(pa)
}

func TestAllocContigExact(t *testing.T) {
	a := New(0, 4096)
	pa, err := a.AllocContig(300, KindPageTable) // non-power-of-two
	if err != nil {
		t.Fatal(err)
	}
	free := a.FreeFrames()
	if free != 4096-300 {
		t.Fatalf("FreeFrames = %d, want %d (tail must be trimmed)", free, 4096-300)
	}
	a.FreeContig(pa, 300)
	if a.FreeFrames() != 4096 {
		t.Fatalf("FreeFrames = %d after FreeContig, want 4096", a.FreeFrames())
	}
	if _, err := a.Alloc(MaxOrder, KindMovable); err != nil {
		t.Fatalf("coalescing after FreeContig broken: %v", err)
	}
}

// pteOwner is a toy relocator that tracks frame ownership like PTEs would.
type pteOwner struct {
	loc     map[mem.PAddr]int // frame -> owner id
	refuses bool
}

func (o *pteOwner) Relocate(old, new mem.PAddr) bool {
	if o.refuses {
		return false
	}
	id, ok := o.loc[old]
	if !ok {
		return false
	}
	delete(o.loc, old)
	o.loc[new] = id
	return true
}

func TestAllocContigMigratesMovable(t *testing.T) {
	a := New(0, 256)
	owner := &pteOwner{loc: map[mem.PAddr]int{}}
	a.SetRelocator(owner)
	// Allocate everything as movable data pages.
	for i := 0; i < 256; i++ {
		pa, err := a.AllocFrame(KindMovable)
		if err != nil {
			t.Fatal(err)
		}
		owner.loc[pa] = i
	}
	// Free every other frame: free memory is shattered, but the other
	// half is movable, so a contiguous range is still assemblable.
	for pa := range owner.loc {
		if (uint64(pa)>>mem.PageShift4K)%2 == 0 {
			a.FreeFrame(pa)
			delete(owner.loc, pa)
		}
	}
	pa, err := a.AllocContig(64, KindPageTable)
	if err != nil {
		t.Fatalf("AllocContig with migration: %v", err)
	}
	// The claimed window must not contain any surviving movable owner.
	for f := pa; f < pa+64*mem.PageBytes4K; f += mem.PageBytes4K {
		if _, ok := owner.loc[f]; ok {
			t.Fatalf("frame %#x still owned after migration", uint64(f))
		}
		if a.FrameKind(f) != KindPageTable {
			t.Fatalf("frame %#x kind = %v, want pagetable", uint64(f), a.FrameKind(f))
		}
	}
	if a.Stats.Migrations == 0 {
		t.Error("expected migrations to occur")
	}
}

func TestAllocContigFailsOnUnmovable(t *testing.T) {
	a := New(0, 64)
	a.SetRelocator(&pteOwner{loc: map[mem.PAddr]int{}})
	// Pin every other frame with unmovable allocations.
	var all []mem.PAddr
	for i := 0; i < 64; i++ {
		pa, err := a.AllocFrame(KindUnmovable)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, pa)
	}
	for i, pa := range all {
		if i%2 == 0 {
			a.FreeFrame(pa)
		}
	}
	if _, err := a.AllocContig(8, KindPageTable); err != ErrNoContig {
		t.Fatalf("expected ErrNoContig, got %v", err)
	}
}

func TestExpandContigInPlace(t *testing.T) {
	a := New(0, 1024)
	pa, err := a.AllocContig(10, KindPageTable)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ExpandContigInPlace(pa, 10, 6) {
		t.Fatal("in-place expansion should succeed in empty zone")
	}
	if a.FreeFrames() != 1024-16 {
		t.Fatalf("FreeFrames = %d, want %d", a.FreeFrames(), 1024-16)
	}
	// Block the expansion path and verify failure.
	blocker, err := a.AllocContig(1, KindUnmovable)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(blocker) != uint64(16*mem.PageBytes4K) {
		// The blocker landed right after the TEA only by construction of
		// the deterministic allocator; skip if layout differs.
		t.Skipf("blocker at %#x, layout differs", uint64(blocker))
	}
	if a.ExpandContigInPlace(pa, 16, 4) {
		t.Fatal("expansion over an allocated frame must fail")
	}
}

func TestCompactCreatesContiguity(t *testing.T) {
	a := New(0, 512)
	owner := &pteOwner{loc: map[mem.PAddr]int{}}
	a.SetRelocator(owner)
	var all []mem.PAddr
	for i := 0; i < 512; i++ {
		pa, err := a.AllocFrame(KindMovable)
		if err != nil {
			t.Fatal(err)
		}
		owner.loc[pa] = i
		all = append(all, pa)
	}
	// Free 3 of every 4 frames: plenty free, heavily fragmented.
	for i, pa := range all {
		if i%4 != 0 {
			a.FreeFrame(pa)
			delete(owner.loc, pa)
		}
	}
	before := a.FragmentationIndex(6)
	migrated := a.Compact()
	after := a.FragmentationIndex(6)
	if migrated == 0 {
		t.Fatal("Compact migrated nothing")
	}
	if after >= before {
		t.Fatalf("fragmentation index did not improve: %.3f -> %.3f", before, after)
	}
}

func TestFragmentationIndexBounds(t *testing.T) {
	a := New(0, 1024)
	if idx := a.FragmentationIndex(4); idx != 0 {
		t.Fatalf("pristine zone index = %.3f, want 0", idx)
	}
	rng := rand.New(rand.NewSource(1))
	a.Fragment(rng, 4, 0.9)
	if idx := a.FragmentationIndex(4); idx < 0.9 {
		t.Fatalf("Fragment() reached only %.3f, want >= 0.9", idx)
	}
}

// TestFreeFramesInvariant checks, under a random alloc/free workload, that
// the allocator's free-frame accounting always matches a direct count of
// the free bitmap, and that no two live allocations overlap.
func TestFreeFramesInvariant(t *testing.T) {
	type block struct {
		pa    mem.PAddr
		order int
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(0, 2048)
		var live []block
		for step := 0; step < 300; step++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				order := rng.Intn(5)
				pa, err := a.Alloc(order, KindMovable)
				if err == nil {
					live = append(live, block{pa, order})
				}
			} else {
				i := rng.Intn(len(live))
				a.Free(live[i].pa, live[i].order)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		count := 0
		for f := uint32(0); f < a.frames; f++ {
			if a.free[f] {
				count++
			}
		}
		return count == a.FreeFrames()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsProgress(t *testing.T) {
	a := New(0, 256)
	pa, _ := a.AllocFrame(KindMovable)
	a.FreeFrame(pa)
	if a.Stats.Allocs == 0 || a.Stats.Frees == 0 || a.Stats.Splits == 0 {
		t.Errorf("stats not recorded: %+v", a.Stats)
	}
}
