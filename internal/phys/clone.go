package phys

// Clone returns a structurally-identical deep copy of the allocator: the
// block map, free lists, owner classes, and statistics are duplicated so
// allocation on the clone and the original diverge independently but start
// from the same state. The relocator is deliberately NOT copied — it points
// at the owning address space, and the clone's owner must re-register its
// own via SetRelocator (kernel.AddressSpace.Clone does) or migration would
// rewrite the prototype's page tables.
func (a *Allocator) Clone() *Allocator {
	c := &Allocator{
		base:       a.base,
		frames:     a.frames,
		blockOrder: append([]int8(nil), a.blockOrder...),
		free:       append([]bool(nil), a.free...),
		kind:       append([]Kind(nil), a.kind...),
		freeFrames: a.freeFrames,
		Stats:      a.Stats,
	}
	for o := range a.freeStacks {
		c.freeStacks[o] = append([]uint32(nil), a.freeStacks[o]...)
	}
	return c
}
