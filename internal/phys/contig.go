package phys

import (
	"errors"
	"fmt"
	"math/rand"

	"dmt/internal/mem"
)

// AllocContig allocates nframes physically-contiguous 4 KiB frames, the
// analogue of Linux's alloc_contig_pages used by DMT-Linux to back TEAs
// (§4.3). It first tries a buddy block of the covering order; failing that
// it scans for a window whose frames are all free or movable, migrates the
// movable ones out (via the registered Relocator), and claims the window.
// It returns ErrNoContig when no window can be assembled, which the TEA
// manager answers by splitting the VMA-to-TEA mapping (§4.2.2).
func (a *Allocator) AllocContig(nframes int, kind Kind) (mem.PAddr, error) {
	if nframes <= 0 {
		return 0, ErrNoContig
	}
	if kind == KindFree {
		return 0, errors.New("phys: cannot allocate KindFree")
	}
	// Fast path: an exact buddy block.
	if order := coveringOrder(nframes); order <= MaxOrder {
		if pa, err := a.Alloc(order, kind); err == nil {
			// Trim the tail beyond nframes back to the free lists.
			f := a.frameOf(pa)
			extra := (uint32(1) << order) - uint32(nframes)
			if extra > 0 {
				a.release(f+uint32(nframes), extra)
			}
			a.Stats.ContigAllocs++
			return pa, nil
		}
	}
	// Slow path: scan for a claimable window, like alloc_contig_range.
	a.Stats.ContigScans++
	n := uint32(nframes)
	if start, ok := a.findWindow(n, false); ok {
		a.claimWindow(start, n, kind)
		a.Stats.ContigAllocs++
		return a.addrOf(start), nil
	}
	if a.relocator != nil {
		if start, ok := a.findWindow(n, true); ok {
			if a.migrateOut(start, n) {
				a.claimWindow(start, n, kind)
				a.Stats.ContigAllocs++
				return a.addrOf(start), nil
			}
		}
	}
	return 0, ErrNoContig
}

// FreeContig releases a range allocated by AllocContig. Like Free, it
// panics on a double free: releaseAllocated feeds frames straight back to
// the free lists without checking, so an unvalidated duplicate release
// would silently inflate freeFrames and corrupt the buddy metadata —
// exactly the slow long-run rot the lifecycle oracle exists to catch.
func (a *Allocator) FreeContig(pa mem.PAddr, nframes int) {
	if nframes <= 0 {
		panic("phys: FreeContig of non-positive length")
	}
	f := a.frameOf(pa)
	n := uint32(nframes)
	if uint64(f)+uint64(n) > uint64(a.frames) {
		panic("phys: FreeContig beyond managed region")
	}
	for i := f; i < f+n; i++ {
		if a.free[i] {
			panic(fmt.Sprintf("phys: double free of frame %d", i))
		}
	}
	a.freeFrames += n
	a.Stats.Frees++
	a.releaseAllocated(f, n)
}

// ExpandContigInPlace tries to extend an existing contiguous allocation by
// extra frames immediately after its current end, implementing the in-place
// TEA expansion of §4.3. It reports whether the expansion succeeded.
func (a *Allocator) ExpandContigInPlace(pa mem.PAddr, cur, extra int) bool {
	f := a.frameOf(pa)
	start := f + uint32(cur)
	end := start + uint32(extra)
	if end > a.frames {
		return false
	}
	for i := start; i < end; i++ {
		if !a.free[i] {
			return false
		}
	}
	kind := a.kind[f]
	a.claimWindow(start, uint32(extra), kind)
	return true
}

func coveringOrder(nframes int) int {
	order := 0
	for 1<<order < nframes {
		order++
	}
	return order
}

// release returns a run of currently-allocated bookkeeping (from a split
// block) to the free lists without touching freeFrames, used when trimming
// an over-allocated buddy block.
func (a *Allocator) release(f, n uint32) {
	a.freeFrames += n
	a.releaseAllocated(f, n)
}

// releaseAllocated frees the run [f, f+n) frame-by-frame in maximal aligned
// buddy chunks so coalescing works.
func (a *Allocator) releaseAllocated(f, n uint32) {
	for n > 0 {
		order := 0
		for order < MaxOrder && f&(1<<(order+1)-1) == 0 && uint32(1)<<(order+1) <= n {
			order++
		}
		a.freeBlock(f, order)
		f += 1 << order
		n -= 1 << order
	}
}

// findWindow scans for n consecutive frames that are free (and, when
// allowMovable is set, movable). The scan is linear from the bottom of the
// zone, like the isolation scanner in alloc_contig_range.
func (a *Allocator) findWindow(n uint32, allowMovable bool) (uint32, bool) {
	var runStart, runLen uint32
	for f := uint32(0); f < a.frames; f++ {
		ok := a.free[f] || (allowMovable && a.kind[f] == KindMovable)
		if !ok {
			runLen = 0
			continue
		}
		if runLen == 0 {
			runStart = f
		}
		runLen++
		if runLen >= n {
			return runStart, true
		}
	}
	return 0, false
}

// migrateOut relocates every movable allocated frame in [start, start+n)
// to frames outside the window. It returns false (leaving successfully
// migrated frames at their new homes) if any migration fails.
func (a *Allocator) migrateOut(start, n uint32) bool {
	for f := start; f < start+n; f++ {
		if a.free[f] || a.kind[f] != KindMovable {
			continue
		}
		if !a.migrateFrame(f, start, n) {
			return false
		}
	}
	return true
}

// migrateFrame moves one movable frame to a free frame outside the window
// [wStart, wStart+wLen).
func (a *Allocator) migrateFrame(f, wStart, wLen uint32) bool {
	dst, ok := a.findFreeOutside(wStart, wLen)
	if !ok || a.relocator == nil {
		return false
	}
	old := a.addrOf(f)
	a.carveFrame(dst)
	a.claim(dst, 1, KindMovable)
	if !a.relocator.Relocate(old, a.addrOf(dst)) {
		// Owner refused; roll back the destination frame.
		a.freeFrames++
		a.freeBlock(dst, 0)
		return false
	}
	a.Stats.Migrations++
	// Release the source frame (it becomes part of the window; the caller
	// claims it, so just mark free here).
	a.freeFrames++
	a.freeBlock(f, 0)
	return true
}

// findFreeOutside locates a free frame outside the given window, searching
// from the top of the zone downward (mirroring compaction's free scanner).
func (a *Allocator) findFreeOutside(wStart, wLen uint32) (uint32, bool) {
	for f := a.frames; f > 0; f-- {
		i := f - 1
		if i >= wStart && i < wStart+wLen {
			continue
		}
		if a.free[i] {
			return i, true
		}
	}
	return 0, false
}

// carveFrame splits free blocks until frame f is the head of an order-0
// free block, then detaches it. The caller must claim it afterwards.
func (a *Allocator) carveFrame(f uint32) {
	head, order := a.containingFreeBlock(f)
	// Detach the containing block.
	a.blockOrder[head] = -1
	for order > 0 {
		half := uint32(1) << (order - 1)
		if f < head+half {
			a.insertFree(head+half, order-1)
			a.blockOrder[head+half] = int8(order - 1)
		} else {
			a.insertFree(head, order-1)
			head += half
		}
		a.blockOrder[head] = -1
		order--
		a.Stats.Splits++
	}
	// f == head: an order-0 detached frame, still free but unlisted. The
	// caller claims it (clearing free and adjusting freeFrames) next.
	a.blockOrder[f] = -1
}

// containingFreeBlock finds the head and order of the free block holding f.
func (a *Allocator) containingFreeBlock(f uint32) (uint32, int) {
	for order := 0; order <= MaxOrder; order++ {
		head := f &^ (uint32(1)<<order - 1)
		if a.blockOrder[head] == int8(order) {
			return head, order
		}
	}
	panic("phys: frame not in any free block")
}

// claimWindow marks an arbitrary free window allocated, splitting any free
// blocks that straddle its edges.
func (a *Allocator) claimWindow(start, n uint32, kind Kind) {
	for f := start; f < start+n; f++ {
		if !a.free[f] {
			panic("phys: claimWindow over non-free frame")
		}
		a.carveFrame(f)
		a.free[f] = false
		a.kind[f] = kind
	}
	a.freeFrames -= n
	a.Stats.Allocs++
}

// Compact migrates movable frames from the top of the zone into free frames
// near the bottom, increasing high-order contiguity the way Linux's memory
// compaction does. It returns the number of frames migrated.
func (a *Allocator) Compact() int {
	if a.relocator == nil {
		return 0
	}
	migrated := 0
	lo, hi := uint32(0), a.frames
	for lo < hi {
		// Advance lo to the next free frame.
		for lo < hi && !a.free[lo] {
			lo++
		}
		// Retreat hi to the next movable frame.
		for lo < hi && (hi == 0 || a.free[hi-1] || a.kind[hi-1] != KindMovable) {
			hi--
		}
		if lo >= hi || hi == 0 {
			break
		}
		src := hi - 1
		dst := lo
		a.carveFrame(dst)
		a.claim(dst, 1, KindMovable)
		if !a.relocator.Relocate(a.addrOf(src), a.addrOf(dst)) {
			a.freeFrames++
			a.freeBlock(dst, 0)
			hi--
			continue
		}
		a.freeFrames++
		a.freeBlock(src, 0)
		a.Stats.Migrations++
		migrated++
		lo++
		hi--
	}
	return migrated
}

// FragmentationIndex reports how fragmented free memory is with respect to
// allocations of the given order, on [0, 1]: 0 means all free memory sits
// in blocks of at least that order; values near 1 mean free memory exists
// only as smaller fragments. It is the analogue of Linux's external
// fragmentation index used in the §6.3 methodology (index 0.99).
func (a *Allocator) FragmentationIndex(order int) float64 {
	if a.freeFrames == 0 {
		return 0
	}
	counts := a.FreeBlockCounts()
	var suitable uint64
	for o := order; o <= MaxOrder; o++ {
		suitable += uint64(counts[o]) << uint(o)
	}
	return 1 - float64(suitable)/float64(a.freeFrames)
}

// FreeBlockCounts returns the number of free blocks at each order, computed
// from the authoritative blockOrder map rather than the lazy-deletion
// stacks: a head detached by carveFrame and later re-inserted by coalescing
// appears twice on its stack, and counting stack entries (as an earlier
// revision did) double-counted such blocks, skewing FragmentationIndex low.
func (a *Allocator) FreeBlockCounts() [MaxOrder + 1]int {
	var counts [MaxOrder + 1]int
	for f := uint32(0); f < a.frames; f++ {
		if o := a.blockOrder[f]; o >= 0 {
			counts[o]++
		}
	}
	return counts
}

// Fragment deliberately fragments free memory until the order-`order`
// fragmentation index reaches at least target, reproducing the methodology
// of §6.3 (a fragmentation tool driving the index to 0.99). It allocates
// every free frame as an unmovable pin, then releases every other frame:
// free memory ends up as isolated single frames (~half the zone stays
// available, none of it contiguous). The surviving pins model background
// load.
func (a *Allocator) Fragment(rng *rand.Rand, order int, target float64) {
	// Consume the rng unconditionally: an early return that skipped the
	// draw made rand-state divergence depend on allocator state, so a
	// Clone() sharing the caller's rng could diverge from the original.
	offset := rng.Intn(2)
	if a.FragmentationIndex(order) >= target {
		return
	}
	var held []mem.PAddr
	for {
		pa, err := a.AllocFrame(KindUnmovable)
		if err != nil {
			break
		}
		held = append(held, pa)
	}
	for i, pa := range held {
		if i%2 == offset {
			a.FreeFrame(pa)
		}
	}
}
