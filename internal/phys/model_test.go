package phys

import (
	"math/rand"
	"testing"

	"dmt/internal/mem"
)

// TestAgainstReferenceModel drives the buddy allocator and a trivial
// reference model (a set of allocated ranges) with the same random
// operation stream and cross-checks every observable after each step:
// no overlapping allocations, free-frame accounting, and kind tracking.
func TestAgainstReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const totalFrames = 4096
			a := New(0, totalFrames)

			type block struct {
				pa     mem.PAddr
				frames int
				order  int // -1 for contig allocations
				kind   Kind
			}
			var live []block
			owned := make([]bool, totalFrames) // reference occupancy

			claim := func(b block) {
				f := int(uint64(b.pa) >> mem.PageShift4K)
				for i := f; i < f+b.frames; i++ {
					if owned[i] {
						t.Fatalf("seed %d: overlap at frame %d", seed, i)
					}
					owned[i] = true
				}
				live = append(live, b)
			}
			releaseAt := func(idx int) {
				b := live[idx]
				f := int(uint64(b.pa) >> mem.PageShift4K)
				for i := f; i < f+b.frames; i++ {
					owned[i] = false
				}
				if b.order >= 0 {
					a.Free(b.pa, b.order)
				} else {
					a.FreeContig(b.pa, b.frames)
				}
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			}

			for step := 0; step < 600; step++ {
				switch op := rng.Intn(6); {
				case op <= 1 || len(live) == 0: // buddy alloc
					order := rng.Intn(6)
					kind := Kind(1 + rng.Intn(3))
					pa, err := a.Alloc(order, kind)
					if err != nil {
						continue
					}
					claim(block{pa: pa, frames: 1 << order, order: order, kind: kind})
				case op == 2: // contig alloc (arbitrary size)
					n := 1 + rng.Intn(200)
					pa, err := a.AllocContig(n, KindPageTable)
					if err != nil {
						continue
					}
					claim(block{pa: pa, frames: n, order: -1, kind: KindPageTable})
				default: // free
					releaseAt(rng.Intn(len(live)))
				}

				// Invariant: allocator accounting matches the model.
				used := 0
				for _, o := range owned {
					if o {
						used++
					}
				}
				if got := totalFrames - a.FreeFrames(); got != used {
					t.Fatalf("seed %d step %d: allocator says %d used, model says %d", seed, step, got, used)
				}
				// Invariant: kinds recorded correctly for a sample.
				if len(live) > 0 {
					b := live[rng.Intn(len(live))]
					if got := a.FrameKind(b.pa); got != b.kind {
						t.Fatalf("seed %d step %d: kind %v, want %v", seed, step, got, b.kind)
					}
				}
			}
			// Drain and verify full recovery.
			for len(live) > 0 {
				releaseAt(0)
			}
			if a.FreeFrames() != totalFrames {
				t.Fatalf("seed %d: %d frames leaked", seed, totalFrames-a.FreeFrames())
			}
			if _, err := a.Alloc(MaxOrder, KindMovable); err != nil {
				t.Fatalf("seed %d: coalescing broken after drain: %v", seed, err)
			}
		})
	}
}
