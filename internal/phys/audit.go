package phys

import "fmt"

// Audit verifies the allocator's internal invariants and returns the first
// violation found, or nil. It is the allocator half of the lifecycle
// conservation oracle (DESIGN.md §14): the aging scenario calls it after
// churn events so a frame leaked or double-freed anywhere in the
// kernel/TEA/virt plumbing above surfaces at the event that caused it
// rather than as an unexplained drift millions of events later.
//
// Invariants checked:
//   - freeFrames equals the population count of the free bitmap;
//   - every free-block head (blockOrder[f] >= 0) is naturally aligned,
//     in bounds, and covers only free KindFree frames;
//   - every free frame is covered by exactly one free-block head;
//   - allocated frames carry a non-free Kind and are not block heads.
//
// Audit is O(frames) and performs no allocation beyond the coverage bitmap.
func (a *Allocator) Audit() error {
	var freeCount uint32
	for f := uint32(0); f < a.frames; f++ {
		if a.free[f] {
			freeCount++
			if a.kind[f] != KindFree {
				return fmt.Errorf("phys: free frame %d has kind %v", f, a.kind[f])
			}
		} else {
			if a.kind[f] == KindFree {
				return fmt.Errorf("phys: allocated frame %d has kind free", f)
			}
			if a.blockOrder[f] >= 0 {
				return fmt.Errorf("phys: allocated frame %d is a free-block head (order %d)", f, a.blockOrder[f])
			}
		}
	}
	if freeCount != a.freeFrames {
		return fmt.Errorf("phys: freeFrames=%d but %d frames are marked free", a.freeFrames, freeCount)
	}
	covered := make([]bool, a.frames)
	for f := uint32(0); f < a.frames; f++ {
		o := a.blockOrder[f]
		if o < 0 {
			continue
		}
		if int(o) > MaxOrder {
			return fmt.Errorf("phys: free block at frame %d has invalid order %d", f, o)
		}
		n := uint32(1) << uint(o)
		if f&(n-1) != 0 {
			return fmt.Errorf("phys: order-%d free block at frame %d is unaligned", o, f)
		}
		if f+n > a.frames {
			return fmt.Errorf("phys: order-%d free block at frame %d overruns the zone", o, f)
		}
		for i := f; i < f+n; i++ {
			if !a.free[i] {
				return fmt.Errorf("phys: order-%d free block at frame %d covers allocated frame %d", o, f, i)
			}
			if covered[i] {
				return fmt.Errorf("phys: frame %d covered by overlapping free blocks", i)
			}
			covered[i] = true
		}
	}
	for f := uint32(0); f < a.frames; f++ {
		if a.free[f] && !covered[f] {
			return fmt.Errorf("phys: free frame %d not covered by any free block", f)
		}
	}
	return nil
}
