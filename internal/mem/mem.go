// Package mem defines the address types, page geometry, and page-table-entry
// encoding shared by every component of the DMT reproduction.
//
// The conventions follow the x86-64 architecture as described in §2.1 of the
// paper: 4 KiB base pages, 2 MiB and 1 GiB huge pages, 8-byte PTEs, 512-entry
// page-table nodes, and 4-level (optionally 5-level) radix page tables whose
// level indices are extracted from VA[47:39], VA[38:30], VA[29:21], and
// VA[20:12].
package mem

import "fmt"

// VAddr is a virtual address. In virtualized setups it may denote a guest
// virtual address (gVA) or, at the L2 level of nested virtualization, an
// L2 VA; the meaning is determined by the owning address space.
type VAddr uint64

// PAddr is a physical address. Depending on context it is a host physical
// address (hPA), a guest physical address (gPA), or an intermediate-level
// physical address in nested virtualization.
type PAddr uint64

// Fundamental x86-64 geometry.
const (
	PageShift4K = 12
	PageShift2M = 21
	PageShift1G = 30

	PageBytes4K = 1 << PageShift4K
	PageBytes2M = 1 << PageShift2M
	PageBytes1G = 1 << PageShift1G

	// PTEBytes is the size of one page-table entry.
	PTEBytes = 8
	// EntriesPerNode is the fan-out of one radix page-table node.
	EntriesPerNode = 512
	// NodeBytes is the size of one page-table node (one 4 KiB page).
	NodeBytes = EntriesPerNode * PTEBytes

	// CacheLineBytes is the cache line size of the simulated hierarchy.
	CacheLineBytes = 64

	// Levels4 and Levels5 are the supported radix page-table depths.
	Levels4 = 4
	Levels5 = 5
)

// PageSize enumerates the three x86-64 translation granularities.
type PageSize uint8

const (
	Size4K PageSize = iota
	Size2M
	Size1G
)

// Shift returns log2 of the page size in bytes.
func (s PageSize) Shift() uint {
	switch s {
	case Size4K:
		return PageShift4K
	case Size2M:
		return PageShift2M
	case Size1G:
		return PageShift1G
	}
	panic(fmt.Sprintf("mem: invalid page size %d", s))
}

// Bytes returns the page size in bytes.
func (s PageSize) Bytes() uint64 { return 1 << s.Shift() }

// LeafLevel returns the page-table level whose entries map pages of this
// size: level 1 for 4 KiB, level 2 for 2 MiB, level 3 for 1 GiB.
func (s PageSize) LeafLevel() int { return int(s) + 1 }

func (s PageSize) String() string {
	switch s {
	case Size4K:
		return "4K"
	case Size2M:
		return "2M"
	case Size1G:
		return "1G"
	}
	return fmt.Sprintf("PageSize(%d)", uint8(s))
}

// LevelShift returns the shift amount of the VA bits indexing the given
// page-table level (level 1 is the last level for 4 KiB pages).
func LevelShift(level int) uint {
	return PageShift4K + 9*uint(level-1)
}

// Index extracts the radix index for the given page-table level from va.
// For level 4 this is VA[47:39], for level 1 it is VA[20:12] (Figure 1).
func Index(va VAddr, level int) int {
	return int(uint64(va)>>LevelShift(level)) & (EntriesPerNode - 1)
}

// PageOffset returns the offset of va within a page of size s.
func PageOffset(va VAddr, s PageSize) uint64 {
	return uint64(va) & (s.Bytes() - 1)
}

// PageNumber returns the virtual page number of va for page size s.
func PageNumber(va VAddr, s PageSize) uint64 {
	return uint64(va) >> s.Shift()
}

// AlignDown rounds va down to a multiple of align (a power of two).
func AlignDown(va VAddr, align uint64) VAddr {
	return VAddr(uint64(va) &^ (align - 1))
}

// AlignUp rounds va up to a multiple of align (a power of two).
func AlignUp(va VAddr, align uint64) VAddr {
	return VAddr((uint64(va) + align - 1) &^ (align - 1))
}

// AlignDownP and AlignUpP are the physical-address analogues.
func AlignDownP(pa PAddr, align uint64) PAddr {
	return PAddr(uint64(pa) &^ (align - 1))
}

// AlignUpP rounds pa up to a multiple of align (a power of two).
func AlignUpP(pa PAddr, align uint64) PAddr {
	return PAddr((uint64(pa) + align - 1) &^ (align - 1))
}

// IsAligned reports whether v is a multiple of align (a power of two).
func IsAligned(v uint64, align uint64) bool { return v&(align-1) == 0 }
