package mem

import (
	"testing"
	"testing/quick"
)

func TestPageSizeGeometry(t *testing.T) {
	cases := []struct {
		s     PageSize
		bytes uint64
		leaf  int
		name  string
	}{
		{Size4K, 4096, 1, "4K"},
		{Size2M, 2 << 20, 2, "2M"},
		{Size1G, 1 << 30, 3, "1G"},
	}
	for _, c := range cases {
		if got := c.s.Bytes(); got != c.bytes {
			t.Errorf("%v.Bytes() = %d, want %d", c.s, got, c.bytes)
		}
		if got := c.s.LeafLevel(); got != c.leaf {
			t.Errorf("%v.LeafLevel() = %d, want %d", c.s, got, c.leaf)
		}
		if got := c.s.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.s, got, c.name)
		}
	}
}

func TestIndexExtraction(t *testing.T) {
	// Figure 1: VA[47:39] indexes L4, ..., VA[20:12] indexes L1.
	va := VAddr(0x0000_7f3a_b5c6_d7e8)
	want := map[int]int{
		4: int(uint64(va) >> 39 & 511),
		3: int(uint64(va) >> 30 & 511),
		2: int(uint64(va) >> 21 & 511),
		1: int(uint64(va) >> 12 & 511),
	}
	for level, w := range want {
		if got := Index(va, level); got != w {
			t.Errorf("Index(level %d) = %d, want %d", level, got, w)
		}
	}
	// 5-level tables index VA[56:48] at level 5.
	va5 := VAddr(1) << 50
	if got := Index(va5, 5); got != 1<<(50-48) {
		t.Errorf("Index(level 5) = %d, want %d", got, 1<<(50-48))
	}
}

func TestIndexReconstruction(t *testing.T) {
	// Property: recombining the four level indices plus the page offset
	// reconstructs the canonical 48-bit virtual address.
	f := func(raw uint64) bool {
		va := VAddr(raw & ((1 << 48) - 1))
		rebuilt := uint64(0)
		for level := 4; level >= 1; level-- {
			rebuilt |= uint64(Index(va, level)) << LevelShift(level)
		}
		rebuilt |= PageOffset(va, Size4K)
		return rebuilt == uint64(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignment(t *testing.T) {
	if AlignDown(0x1fff, 0x1000) != 0x1000 {
		t.Error("AlignDown failed")
	}
	if AlignUp(0x1001, 0x1000) != 0x2000 {
		t.Error("AlignUp failed")
	}
	if AlignUp(0x2000, 0x1000) != 0x2000 {
		t.Error("AlignUp of aligned value changed it")
	}
	if !IsAligned(0x200000, PageBytes2M) || IsAligned(0x201000, PageBytes2M) {
		t.Error("IsAligned failed")
	}
}

func TestAlignmentProperties(t *testing.T) {
	f := func(raw uint64) bool {
		va := VAddr(raw &^ (1 << 63)) // avoid overflow in AlignUp
		d, u := AlignDown(va, PageBytes4K), AlignUp(va, PageBytes4K)
		if d > va || u < va {
			return false
		}
		return IsAligned(uint64(d), PageBytes4K) && IsAligned(uint64(u), PageBytes4K)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPTERoundTrip(t *testing.T) {
	pa := PAddr(0xabcde000)
	p := MakePTE(pa, PTEWritable)
	if !p.Present() || !p.Writable() || p.Huge() {
		t.Errorf("flag bits wrong: %#x", uint64(p))
	}
	if p.Frame() != pa {
		t.Errorf("Frame() = %#x, want %#x", uint64(p.Frame()), uint64(pa))
	}
	if p.Accessed() || p.Dirty() {
		t.Error("fresh PTE must not be accessed/dirty")
	}
	p = p.WithAccessed(false)
	if !p.Accessed() || p.Dirty() {
		t.Error("WithAccessed(false) must set A only")
	}
	p = p.WithAccessed(true)
	if !p.Dirty() {
		t.Error("WithAccessed(true) must set D")
	}
	if p.Frame() != pa {
		t.Error("flag updates must not disturb the frame")
	}
}

func TestPTEFramePreservesFlagsProperty(t *testing.T) {
	f := func(frame uint64, flags uint16) bool {
		pa := PAddr(frame &^ (PageBytes4K - 1) & ((1 << 52) - 1))
		p := MakePTE(pa, PTE(flags)&(PTEWritable|PTEHuge))
		return p.Frame() == pa && p.Present()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
