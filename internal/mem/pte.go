package mem

// PTE is an x86-64-style page-table entry. The reproduction keeps the bits
// that affect translation behaviour and OS bookkeeping:
//
//	bit 0     P    present
//	bit 1     W    writable
//	bit 5     A    accessed
//	bit 6     D    dirty
//	bit 7     PS   page size (leaf at a non-terminal level → huge page)
//	bits 12+  PFN  physical frame number (4 KiB-frame granularity)
//
// Because DMT does not copy PTEs (§3), the same PTE words are read both by
// the legacy radix walker and by the DMT fetcher, so accessed/dirty semantics
// are identical between the two paths.
type PTE uint64

const (
	PTEPresent  PTE = 1 << 0
	PTEWritable PTE = 1 << 1
	PTEAccessed PTE = 1 << 5
	PTEDirty    PTE = 1 << 6
	PTEHuge     PTE = 1 << 7

	pfnShift = 12
)

// MakePTE builds a present PTE pointing at the 4 KiB-aligned physical
// address pa with the given flag bits.
func MakePTE(pa PAddr, flags PTE) PTE {
	return PTE(uint64(pa)&^(PageBytes4K-1))>>0 | (flags & (PageBytes4K - 1)) | PTEPresent
}

// Present reports whether the entry is valid.
func (p PTE) Present() bool { return p&PTEPresent != 0 }

// Huge reports whether the entry is a huge-page leaf (PS bit).
func (p PTE) Huge() bool { return p&PTEHuge != 0 }

// Writable reports whether the mapping permits writes.
func (p PTE) Writable() bool { return p&PTEWritable != 0 }

// Accessed and Dirty report the A/D bits.
func (p PTE) Accessed() bool { return p&PTEAccessed != 0 }

// Dirty reports the D bit.
func (p PTE) Dirty() bool { return p&PTEDirty != 0 }

// Frame returns the physical address held in the entry (4 KiB aligned).
func (p PTE) Frame() PAddr { return PAddr(uint64(p) &^ (PageBytes4K - 1)) }

// WithAccessed returns the entry with the A bit (and optionally D bit) set.
func (p PTE) WithAccessed(write bool) PTE {
	p |= PTEAccessed
	if write {
		p |= PTEDirty
	}
	return p
}
