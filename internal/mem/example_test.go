package mem_test

import (
	"fmt"

	"dmt/internal/mem"
)

// The four radix indices of Figure 1, extracted from a canonical VA.
func ExampleIndex() {
	va := mem.VAddr(0x7f3a_b5c6_d7e8)
	for level := 4; level >= 1; level-- {
		fmt.Printf("L%d index: %d\n", level, mem.Index(va, level))
	}
	fmt.Printf("page offset: %#x\n", mem.PageOffset(va, mem.Size4K))
	// Output:
	// L4 index: 254
	// L3 index: 234
	// L2 index: 430
	// L1 index: 109
	// page offset: 0x7e8
}

func ExamplePTE() {
	pte := mem.MakePTE(0xabc000, mem.PTEWritable)
	fmt.Println(pte.Present(), pte.Writable(), pte.Huge())
	fmt.Printf("%#x\n", uint64(pte.Frame()))
	// Output:
	// true true false
	// 0xabc000
}
