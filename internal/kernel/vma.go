// Package kernel models the OS memory-management layer the paper modifies
// (DMT-Linux, §4.6): Virtual Memory Areas, per-process address spaces with
// mmap/munmap/grow/shrink, demand paging, transparent huge pages, and the
// hook points (mmap_region / __vma_adjust analogues) through which the TEA
// manager observes VMA lifecycle events and controls the placement of
// leaf-level page-table nodes.
package kernel

import (
	"fmt"
	"sort"

	"dmt/internal/mem"
)

// VMAKind classifies a VMA by the data section it represents (§2.3).
type VMAKind uint8

const (
	VMACode VMAKind = iota
	VMAData
	VMAHeap
	VMAStack
	VMAFile // memory-mapped file
	VMALib  // dynamically linked library
	VMAAnon
)

func (k VMAKind) String() string {
	switch k {
	case VMACode:
		return "code"
	case VMAData:
		return "data"
	case VMAHeap:
		return "heap"
	case VMAStack:
		return "stack"
	case VMAFile:
		return "file"
	case VMALib:
		return "lib"
	case VMAAnon:
		return "anon"
	}
	return fmt.Sprintf("VMAKind(%d)", uint8(k))
}

// VMA is a contiguous region of a process's virtual address space with
// uniform protection (§2.3). Start and End are page-aligned; End is
// exclusive.
type VMA struct {
	Start mem.VAddr
	End   mem.VAddr
	Kind  VMAKind
	Name  string

	// present tracks populated pages (leaf mappings) by page base.
	present map[mem.VAddr]mem.PageSize
	// resident marks pages whose frames are owned by an external party
	// (e.g. host-allocated gTEA pages mapped into a guest, §4.5.1) and
	// must not be returned to this allocator on unmap.
	resident map[mem.VAddr]struct{}
}

// Size returns the VMA length in bytes.
func (v *VMA) Size() uint64 { return uint64(v.End - v.Start) }

// Contains reports whether va falls inside the VMA.
func (v *VMA) Contains(va mem.VAddr) bool { return va >= v.Start && va < v.End }

// Pages returns the number of 4 KiB pages spanned.
func (v *VMA) Pages() int { return int(v.Size() >> mem.PageShift4K) }

// PopulatedPages returns the number of populated leaf mappings.
func (v *VMA) PopulatedPages() int { return len(v.present) }

// PresentPage is one populated leaf mapping of a VMA.
type PresentPage struct {
	VA   mem.VAddr
	Size mem.PageSize
}

// PresentPages returns the populated pages sorted by address (deterministic
// iteration for consumers like the shadow-table builder).
func (v *VMA) PresentPages() []PresentPage {
	out := make([]PresentPage, 0, len(v.present))
	for va, size := range v.present {
		out = append(out, PresentPage{VA: va, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VA < out[j].VA })
	return out
}

func (v *VMA) String() string {
	return fmt.Sprintf("%s [%#x,%#x) %s", v.Name, uint64(v.Start), uint64(v.End), v.Kind)
}

// MMHooks is the interface through which DMT-Linux's TEA machinery observes
// VMA lifecycle events (§4.2) and directs leaf page-table-node placement
// into TEAs (§4.3). A nil hook set yields vanilla behaviour.
type MMHooks interface {
	// VMACreated fires after a VMA is inserted (mmap_region analogue).
	VMACreated(v *VMA)
	// VMAResized fires after a VMA grows or shrinks (__vma_adjust).
	VMAResized(v *VMA, oldStart, oldEnd mem.VAddr)
	// VMADeleted fires after a VMA's translations are torn down but
	// before it leaves the VMA list (munmap).
	VMADeleted(v *VMA)
	// PlaceNode is consulted when a new leaf-level page-table node is
	// needed for va at the given level (1 for 4K leaves, 2 for 2M). A
	// false return falls back to the buddy allocator.
	PlaceNode(level int, va mem.VAddr) (mem.PAddr, bool)
	// OwnsNode reports whether a node frame belongs to a TEA (and thus
	// must not be returned to the buddy allocator individually).
	OwnsNode(pa mem.PAddr) bool
}
