// Package kernel models the OS memory-management layer the paper modifies
// (DMT-Linux, §4.6): Virtual Memory Areas, per-process address spaces with
// mmap/munmap/grow/shrink, demand paging, transparent huge pages, and the
// hook points (mmap_region / __vma_adjust analogues) through which the TEA
// manager observes VMA lifecycle events and controls the placement of
// leaf-level page-table nodes.
package kernel

import (
	"fmt"

	"dmt/internal/mem"
)

// VMAKind classifies a VMA by the data section it represents (§2.3).
type VMAKind uint8

const (
	VMACode VMAKind = iota
	VMAData
	VMAHeap
	VMAStack
	VMAFile // memory-mapped file
	VMALib  // dynamically linked library
	VMAAnon
)

func (k VMAKind) String() string {
	switch k {
	case VMACode:
		return "code"
	case VMAData:
		return "data"
	case VMAHeap:
		return "heap"
	case VMAStack:
		return "stack"
	case VMAFile:
		return "file"
	case VMALib:
		return "lib"
	case VMAAnon:
		return "anon"
	}
	return fmt.Sprintf("VMAKind(%d)", uint8(k))
}

// VMA is a contiguous region of a process's virtual address space with
// uniform protection (§2.3). Start and End are page-aligned; End is
// exclusive.
type VMA struct {
	Start mem.VAddr
	End   mem.VAddr
	Kind  VMAKind
	Name  string

	// state tracks populated pages (leaf mappings) with one byte per
	// 4 KiB page, indexed by (va-Start)>>12 and allocated lazily on the
	// first fault. The encoding packs the leaf size and the residency
	// flag (see pageState); a page-indexed slice keeps the fault path
	// free of map churn and makes present-page iteration ordered and
	// allocation-free.
	state     []pageState
	populated int
}

// pageState is the per-page encoding: 0 means absent, otherwise the low
// bits hold the mapped leaf size + 1 and pageResident marks frames owned
// by an external party (e.g. host-allocated gTEA pages mapped into a
// guest, §4.5.1) that must not be returned to this allocator on unmap.
type pageState uint8

const (
	pageAbsent   pageState = 0
	pageResident pageState = 0x80
)

func (v *VMA) pageIndex(base mem.VAddr) int { return int((base - v.Start) >> mem.PageShift4K) }

// pageAt returns the leaf size recorded at the page base, if populated.
func (v *VMA) pageAt(base mem.VAddr) (mem.PageSize, bool) {
	if base < v.Start || base >= v.End || v.state == nil {
		return 0, false
	}
	s := v.state[v.pageIndex(base)] &^ pageResident
	if s == pageAbsent {
		return 0, false
	}
	return mem.PageSize(s - 1), true
}

// isResident reports whether the page's frame is externally owned.
func (v *VMA) isResident(base mem.VAddr) bool {
	if base < v.Start || base >= v.End || v.state == nil {
		return false
	}
	return v.state[v.pageIndex(base)]&pageResident != 0
}

// setPresent records a populated leaf at the page base.
func (v *VMA) setPresent(base mem.VAddr, size mem.PageSize, resident bool) {
	if v.state == nil {
		v.state = make([]pageState, v.Pages())
	}
	i := v.pageIndex(base)
	if v.state[i] == pageAbsent {
		v.populated++
	}
	s := pageState(size) + 1
	if resident {
		s |= pageResident
	}
	v.state[i] = s
}

// clearPresent removes the record of a populated leaf.
func (v *VMA) clearPresent(base mem.VAddr) {
	if base < v.Start || base >= v.End || v.state == nil {
		return
	}
	if i := v.pageIndex(base); v.state[i] != pageAbsent {
		v.state[i] = pageAbsent
		v.populated--
	}
}

// forEachPresent visits every populated page in ascending address order.
// The callback may unmap the page it is handed (but no other).
func (v *VMA) forEachPresent(fn func(base mem.VAddr, size mem.PageSize)) {
	for i, s := range v.state {
		if s &^= pageResident; s != pageAbsent {
			fn(v.Start+mem.VAddr(i)<<mem.PageShift4K, mem.PageSize(s-1))
		}
	}
}

// PresentSize returns the leaf size mapped at the (page-aligned) address,
// if any — the exported read-side view of the population state.
func (v *VMA) PresentSize(base mem.VAddr) (mem.PageSize, bool) { return v.pageAt(base) }

// ResidentAt reports whether the page at the (page-aligned) address is
// backed by an externally-owned frame — one that teardown will unmap but
// not free. Frame-accounting oracles need this to know which present pages
// count against this space's allocator.
func (v *VMA) ResidentAt(base mem.VAddr) bool { return v.isResident(base) }

// Size returns the VMA length in bytes.
func (v *VMA) Size() uint64 { return uint64(v.End - v.Start) }

// Contains reports whether va falls inside the VMA.
func (v *VMA) Contains(va mem.VAddr) bool { return va >= v.Start && va < v.End }

// Pages returns the number of 4 KiB pages spanned.
func (v *VMA) Pages() int { return int(v.Size() >> mem.PageShift4K) }

// PopulatedPages returns the number of populated leaf mappings.
func (v *VMA) PopulatedPages() int { return v.populated }

// PresentPage is one populated leaf mapping of a VMA.
type PresentPage struct {
	VA   mem.VAddr
	Size mem.PageSize
}

// PresentPages returns the populated pages sorted by address (deterministic
// iteration for consumers like the shadow-table builder).
func (v *VMA) PresentPages() []PresentPage {
	out := make([]PresentPage, 0, v.populated)
	v.forEachPresent(func(base mem.VAddr, size mem.PageSize) {
		out = append(out, PresentPage{VA: base, Size: size})
	})
	return out
}

func (v *VMA) String() string {
	return fmt.Sprintf("%s [%#x,%#x) %s", v.Name, uint64(v.Start), uint64(v.End), v.Kind)
}

// MMHooks is the interface through which DMT-Linux's TEA machinery observes
// VMA lifecycle events (§4.2) and directs leaf page-table-node placement
// into TEAs (§4.3). A nil hook set yields vanilla behaviour.
type MMHooks interface {
	// VMACreated fires after a VMA is inserted (mmap_region analogue).
	VMACreated(v *VMA)
	// VMAResized fires after a VMA grows or shrinks (__vma_adjust).
	VMAResized(v *VMA, oldStart, oldEnd mem.VAddr)
	// VMADeleted fires after a VMA's translations are torn down but
	// before it leaves the VMA list (munmap).
	VMADeleted(v *VMA)
	// PlaceNode is consulted when a new leaf-level page-table node is
	// needed for va at the given level (1 for 4K leaves, 2 for 2M). A
	// false return falls back to the buddy allocator.
	PlaceNode(level int, va mem.VAddr) (mem.PAddr, bool)
	// OwnsNode reports whether a node frame belongs to a TEA (and thus
	// must not be returned to the buddy allocator individually).
	OwnsNode(pa mem.PAddr) bool
}
