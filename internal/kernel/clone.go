package kernel

import (
	"dmt/internal/mem"
	"dmt/internal/phys"
)

// Clone returns a deep structural copy of the address space on top of an
// independently-cloned physical allocator (pa must be as.Phys.Clone(), made
// by the caller so substrate and address space stay consistent): the VMA
// list, page table, reverse map, and fault statistics are duplicated frame-
// for-frame, so translations — including the physical PTE addresses the DMT
// fetcher computes — are identical on both copies until they diverge.
//
// Hooks and invalidation callbacks are deliberately dropped: they close over
// the prototype's TEA manager and TLBs. The owner re-installs its own
// (tea.Manager.Clone calls SetHooks; the engine re-registers OnInvalidate
// per instance), mirroring NewAddressSpace's contract that hooks exist
// before they are needed. The clone registers itself as pa's relocator —
// every allocator in the simulator backs exactly one address space.
func (as *AddressSpace) Clone(pa *phys.Allocator) *AddressSpace {
	c := &AddressSpace{
		Phys:       pa,
		cfg:        as.cfg,
		Faults:     as.Faults,
		THPMapped:  as.THPMapped,
		MMapCalls:  as.MMapCalls,
		MergedVMAs: as.MergedVMAs,
	}
	c.vmas = make([]*VMA, len(as.vmas))
	for i, v := range as.vmas {
		c.vmas[i] = v.clone()
	}
	c.rmap = as.rmap.clone()
	c.PT = as.PT.Clone(c.allocNode, c.freeNode)
	c.Pool = c.PT.Pool()
	pa.SetRelocator(c)
	return c
}

// clone value-copies the VMA, duplicating its page-state slice.
func (v *VMA) clone() *VMA {
	c := *v
	if v.state != nil {
		c.state = append([]pageState(nil), v.state...)
	}
	return &c
}

func (r *rmapTable) clone() rmapTable {
	c := rmapTable{dense: append([]uint64(nil), r.dense...)}
	if r.sparse != nil {
		c.sparse = make(map[mem.PAddr]uint64, len(r.sparse))
		for k, v := range r.sparse {
			c.sparse[k] = v
		}
	}
	return c
}
