package kernel

import (
	"errors"
	"fmt"
	"sort"

	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
)

// Common address-space errors.
var (
	ErrOverlap      = errors.New("kernel: VMA overlaps existing mapping")
	ErrNoSuchVMA    = errors.New("kernel: no such VMA")
	ErrBadAddress   = errors.New("kernel: address outside any VMA")
	ErrUnaligned    = errors.New("kernel: unaligned address or length")
	ErrOutOfMemory  = errors.New("kernel: out of physical memory")
	ErrNotPopulated = errors.New("kernel: page not populated")
)

// InvalidateFunc is called when a translation is torn down or changed so
// that simulated TLBs can drop stale entries (the shootdown path).
type InvalidateFunc func(va mem.VAddr)

// Config controls an AddressSpace.
type Config struct {
	// Levels is the page-table depth (mem.Levels4 by default).
	Levels int
	// THP enables transparent-huge-page allocation on faults.
	THP bool
	// ASID identifies the address space in TLB tags.
	ASID uint16
}

// AddressSpace is one process's (or one guest-physical) address space:
// the VMA list, the radix page table, and the demand-paging state.
type AddressSpace struct {
	Phys *phys.Allocator
	Pool *pagetable.Pool
	PT   *pagetable.Table

	cfg   Config
	vmas  []*VMA // sorted by Start
	hooks MMHooks

	// rmap maps data frames back to the page mapping them, enabling
	// movable-page migration.
	rmap rmapTable

	invalidate []InvalidateFunc

	// Stats
	Faults     uint64
	THPMapped  uint64
	MMapCalls  uint64
	MergedVMAs uint64
}

// rmapTable is the reverse map from data frames to the page mapping them.
// Each entry packs the (4 KiB-aligned) VA with the leaf size + 1 in the low
// bits, held in a frame-indexed dense slice grown by amortized doubling,
// with a sparse overflow map for physical addresses beyond the dense
// range — the same hybrid the page-table node pool uses, keeping the
// demand-paging hot path free of map operations.
type rmapTable struct {
	dense  []uint64
	sparse map[mem.PAddr]uint64
}

// rmapDenseFrames caps the dense array at 16 GiB of physical address space.
const rmapDenseFrames = 1 << 22

func (r *rmapTable) set(pa mem.PAddr, va mem.VAddr, size mem.PageSize) {
	enc := uint64(va) | (uint64(size) + 1)
	f := uint64(pa) >> mem.PageShift4K
	if f < rmapDenseFrames {
		if f >= uint64(len(r.dense)) {
			if f < uint64(cap(r.dense)) {
				r.dense = r.dense[:f+1]
			} else {
				newCap := 2 * (f + 1)
				if newCap > rmapDenseFrames {
					newCap = rmapDenseFrames
				}
				grown := make([]uint64, f+1, newCap)
				copy(grown, r.dense)
				r.dense = grown
			}
		}
		r.dense[f] = enc
		return
	}
	if r.sparse == nil {
		r.sparse = make(map[mem.PAddr]uint64)
	}
	r.sparse[pa] = enc
}

func (r *rmapTable) get(pa mem.PAddr) (mem.VAddr, mem.PageSize, bool) {
	var enc uint64
	if f := uint64(pa) >> mem.PageShift4K; f < uint64(len(r.dense)) {
		enc = r.dense[f]
	} else if f >= rmapDenseFrames && r.sparse != nil {
		enc = r.sparse[pa]
	}
	if enc == 0 {
		return 0, 0, false
	}
	return mem.VAddr(enc &^ (mem.PageBytes4K - 1)), mem.PageSize(enc&(mem.PageBytes4K-1)) - 1, true
}

func (r *rmapTable) del(pa mem.PAddr) {
	if f := uint64(pa) >> mem.PageShift4K; f < uint64(len(r.dense)) {
		r.dense[f] = 0
	} else if f >= rmapDenseFrames && r.sparse != nil {
		delete(r.sparse, pa)
	}
}

// NewAddressSpace builds a process address space backed by pa.
func NewAddressSpace(pa *phys.Allocator, cfg Config) (*AddressSpace, error) {
	if cfg.Levels == 0 {
		cfg.Levels = mem.Levels4
	}
	as := &AddressSpace{
		Phys: pa,
		Pool: pagetable.NewPool(),
		cfg:  cfg,
	}
	pt, err := pagetable.New(as.Pool, cfg.Levels, as.allocNode, as.freeNode)
	if err != nil {
		return nil, err
	}
	as.PT = pt
	pa.SetRelocator(as)
	return as, nil
}

// SetHooks installs the DMT-Linux TEA hooks. Must be called before VMAs are
// created for placement to take effect from the start.
func (as *AddressSpace) SetHooks(h MMHooks) { as.hooks = h }

// Hooks returns the installed hook set.
func (as *AddressSpace) Hooks() MMHooks { return as.hooks }

// ASID returns the address-space identifier used in TLB tags.
func (as *AddressSpace) ASID() uint16 { return as.cfg.ASID }

// THPEnabled reports whether transparent huge pages are on.
func (as *AddressSpace) THPEnabled() bool { return as.cfg.THP }

// OnInvalidate registers a TLB-invalidation callback.
func (as *AddressSpace) OnInvalidate(f InvalidateFunc) {
	as.invalidate = append(as.invalidate, f)
}

func (as *AddressSpace) notifyInvalidate(va mem.VAddr) {
	for _, f := range as.invalidate {
		f(va)
	}
}

func (as *AddressSpace) allocNode(level int, va mem.VAddr) (mem.PAddr, error) {
	if as.hooks != nil {
		if pa, ok := as.hooks.PlaceNode(level, va); ok {
			return pa, nil
		}
	}
	return as.Phys.AllocFrame(phys.KindPageTable)
}

func (as *AddressSpace) freeNode(level int, pa mem.PAddr) {
	if as.hooks != nil && as.hooks.OwnsNode(pa) {
		return // TEA-resident node pages are freed with their TEA
	}
	as.Phys.FreeFrame(pa)
}

// AllocNodeFrame allocates a page-table node frame from the space's
// allocator, bypassing placement hooks. The TEA manager uses it to
// evacuate shared nodes out of storage it is about to release; the frame
// is freed by normal teardown once the node empties, like any
// buddy-placed node.
func (as *AddressSpace) AllocNodeFrame() (mem.PAddr, error) {
	return as.Phys.AllocFrame(phys.KindPageTable)
}

// FreeNodeFrame releases a frame obtained from AllocNodeFrame that was
// never installed in the page table.
func (as *AddressSpace) FreeNodeFrame(pa mem.PAddr) { as.Phys.FreeFrame(pa) }

// VMAs returns the VMA list, sorted by start address.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// FindVMA returns the VMA containing va.
func (as *AddressSpace) FindVMA(va mem.VAddr) (*VMA, bool) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > va })
	if i < len(as.vmas) && as.vmas[i].Contains(va) {
		return as.vmas[i], true
	}
	return nil, false
}

// MMap creates a VMA at [start, start+length). Both must be 4 KiB-aligned
// and the range must not overlap an existing VMA.
func (as *AddressSpace) MMap(start mem.VAddr, length uint64, kind VMAKind, name string) (*VMA, error) {
	if !mem.IsAligned(uint64(start), mem.PageBytes4K) || !mem.IsAligned(length, mem.PageBytes4K) || length == 0 {
		return nil, ErrUnaligned
	}
	end := start + mem.VAddr(length)
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > start })
	if i < len(as.vmas) && as.vmas[i].Start < end {
		return nil, fmt.Errorf("%w: [%#x,%#x) vs %s", ErrOverlap, uint64(start), uint64(end), as.vmas[i])
	}
	v := &VMA{Start: start, End: end, Kind: kind, Name: name}
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
	as.MMapCalls++
	if as.hooks != nil {
		as.hooks.VMACreated(v)
	}
	return v, nil
}

// MUnmap removes the VMA, tearing down all of its translations.
func (as *AddressSpace) MUnmap(v *VMA) error {
	i := as.indexOf(v)
	if i < 0 {
		return ErrNoSuchVMA
	}
	// Tear down translations while the TEA mapping is still live so
	// TEA-resident node frames are recognized (OwnsNode) and freed with
	// their TEA rather than individually.
	v.forEachPresent(func(page mem.VAddr, size mem.PageSize) {
		as.unmapPage(v, page)
	})
	if as.hooks != nil {
		as.hooks.VMADeleted(v)
	}
	as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
	return nil
}

// Grow extends the VMA's end (mremap/brk analogue).
func (as *AddressSpace) Grow(v *VMA, newEnd mem.VAddr) error {
	i := as.indexOf(v)
	if i < 0 {
		return ErrNoSuchVMA
	}
	if !mem.IsAligned(uint64(newEnd), mem.PageBytes4K) || newEnd <= v.End {
		return ErrUnaligned
	}
	if i+1 < len(as.vmas) && as.vmas[i+1].Start < newEnd {
		return ErrOverlap
	}
	oldStart, oldEnd := v.Start, v.End
	v.End = newEnd
	if v.state != nil {
		v.state = append(v.state, make([]pageState, v.Pages()-len(v.state))...)
	}
	if as.hooks != nil {
		as.hooks.VMAResized(v, oldStart, oldEnd)
	}
	return nil
}

// Shrink reduces the VMA's end, unmapping pages beyond it.
func (as *AddressSpace) Shrink(v *VMA, newEnd mem.VAddr) error {
	if as.indexOf(v) < 0 {
		return ErrNoSuchVMA
	}
	if !mem.IsAligned(uint64(newEnd), mem.PageBytes4K) || newEnd >= v.End || newEnd <= v.Start {
		return ErrUnaligned
	}
	// A huge page straddling the new end would survive the teardown loop
	// (its recorded base is below newEnd) while still translating VAs
	// beyond it; a later MMap over that range would then alias its tail
	// frames. Shatter it first so the tail unmaps page by page.
	if hbase := mem.AlignDown(newEnd, mem.PageBytes2M); hbase < newEnd {
		if size, ok := v.pageAt(hbase); ok && size == mem.Size2M {
			if err := as.SplitHugePage(v, hbase); err != nil {
				return err
			}
		}
	}
	v.forEachPresent(func(page mem.VAddr, size mem.PageSize) {
		if page >= newEnd {
			as.unmapPage(v, page)
		}
	})
	oldStart, oldEnd := v.Start, v.End
	v.End = newEnd
	if v.state != nil {
		v.state = v.state[:v.Pages()]
	}
	if as.hooks != nil {
		as.hooks.VMAResized(v, oldStart, oldEnd)
	}
	return nil
}

func (as *AddressSpace) indexOf(v *VMA) int {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= v.Start })
	if i < len(as.vmas) && as.vmas[i] == v {
		return i
	}
	return -1
}

// Touch ensures va is mapped, faulting a page in if necessary. It returns
// true when a page fault was taken.
func (as *AddressSpace) Touch(va mem.VAddr, write bool) (bool, error) {
	if _, _, ok := as.PT.Lookup(va); ok {
		as.PT.SetAccessed(va, write)
		return false, nil
	}
	v, ok := as.FindVMA(va)
	if !ok {
		return false, fmt.Errorf("%w: %#x", ErrBadAddress, uint64(va))
	}
	if err := as.faultIn(v, va); err != nil {
		return false, err
	}
	as.PT.SetAccessed(va, write)
	as.Faults++
	return true, nil
}

// faultIn installs a mapping for va, preferring a 2 MiB THP when enabled
// and the aligned 2 MiB region lies fully inside the VMA.
func (as *AddressSpace) faultIn(v *VMA, va mem.VAddr) error {
	if as.cfg.THP {
		base := mem.AlignDown(va, mem.PageBytes2M)
		if base >= v.Start && base+mem.PageBytes2M <= v.End && as.rangeUnmapped(base, mem.PageBytes2M) {
			if pa, err := as.Phys.Alloc(9, phys.KindMovable); err == nil { // 2^9 frames = 2 MiB
				if err := as.PT.Map(base, pa, mem.Size2M, mem.PTEWritable); err != nil {
					as.Phys.Free(pa, 9)
					return err
				}
				v.setPresent(base, mem.Size2M, false)
				as.rmap.set(pa, base, mem.Size2M)
				as.THPMapped++
				return nil
			}
			// Fragmented: fall through to a base page.
		}
	}
	base := mem.AlignDown(va, mem.PageBytes4K)
	pa, err := as.Phys.AllocFrame(phys.KindMovable)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrOutOfMemory, err)
	}
	if err := as.PT.Map(base, pa, mem.Size4K, mem.PTEWritable); err != nil {
		as.Phys.FreeFrame(pa)
		return err
	}
	v.setPresent(base, mem.Size4K, false)
	as.rmap.set(pa, base, mem.Size4K)
	return nil
}

// rangeUnmapped reports whether no leaf is installed anywhere inside
// [base, base+bytes). A THP must not overlay live 4K mappings: a 2 MiB
// region that was split and then partially unmapped still holds base
// pages, and mapping a huge leaf over them would fail (or worse, shadow
// them).
func (as *AddressSpace) rangeUnmapped(base mem.VAddr, bytes uint64) bool {
	for off := uint64(0); off < bytes; off += mem.PageBytes4K {
		if _, _, ok := as.PT.Lookup(base + mem.VAddr(off)); ok {
			return false
		}
	}
	return true
}

func (as *AddressSpace) unmapPage(v *VMA, page mem.VAddr) {
	// Free by what the page table actually holds, not by the VMA's
	// recorded page size: a teardown that races a failed split or
	// promotion can find a leaf of the other size, and freeing a 4 KiB
	// frame at order 9 (or a 2 MiB block at order 0) double-frees
	// neighbours or leaks the tail. The rmap entry is only dropped once
	// the unmap succeeds, so a frame that stays mapped stays migratable.
	if _, size, ok := as.PT.Lookup(page); ok {
		pte, _ := as.PT.LeafPTE(page)
		frame := pte.Frame()
		if err := as.PT.Unmap(page, size); err == nil {
			as.rmap.del(frame)
			if !v.isResident(page) {
				if size == mem.Size4K {
					as.Phys.FreeFrame(frame)
				} else {
					as.Phys.Free(frame, 9)
				}
			}
		}
	}
	v.clearPresent(page)
	as.notifyInvalidate(page)
}

// MapResident installs a translation to a caller-owned frame: the page is
// neither movable nor freed back to this address space's allocator on
// unmap. This is the vm_insert_pages analogue the hypervisor uses to map
// host-allocated gTEAs into the guest physical space (§4.6.2). Any prior
// mapping of the page is torn down first.
func (as *AddressSpace) MapResident(v *VMA, va mem.VAddr, pa mem.PAddr, size mem.PageSize) error {
	if !v.Contains(va) {
		return ErrBadAddress
	}
	base := mem.AlignDown(va, size.Bytes())
	if _, ok := v.pageAt(base); ok {
		as.unmapPage(v, base)
	}
	if err := as.PT.Map(base, pa, size, mem.PTEWritable); err != nil {
		return err
	}
	v.setPresent(base, size, true)
	return nil
}

// UnmapPage releases a single populated page of v (the madvise(DONTNEED)
// analogue), freeing its frame and shooting down the translation.
func (as *AddressSpace) UnmapPage(v *VMA, va mem.VAddr) error {
	base := mem.AlignDown(va, mem.PageBytes4K)
	if _, ok := v.pageAt(base); !ok {
		// The page may be covered by a 2 MiB leaf whose base entry is
		// recorded at the huge-page boundary.
		hbase := mem.AlignDown(va, mem.PageBytes2M)
		if hsize, hok := v.pageAt(hbase); !hok || hsize != mem.Size2M {
			return ErrNotPopulated
		}
		base = hbase
	}
	as.unmapPage(v, base)
	return nil
}

// Populate eagerly faults in the whole VMA, modelling init-time allocation
// by data-intensive workloads (§7: "they typically allocate memory at the
// initialization time").
func (as *AddressSpace) Populate(v *VMA) error {
	step := mem.VAddr(mem.PageBytes4K)
	if as.cfg.THP {
		// Fault at 2 MiB strides first so THP regions allocate as units.
		for va := mem.AlignUp(v.Start, mem.PageBytes2M); va+mem.PageBytes2M <= v.End; va += mem.PageBytes2M {
			if _, err := as.Touch(va, true); err != nil {
				return err
			}
		}
	}
	for va := v.Start; va < v.End; va += step {
		if _, _, ok := as.PT.Lookup(va); ok {
			continue
		}
		if _, err := as.Touch(va, true); err != nil {
			return err
		}
	}
	return nil
}

// Relocate implements phys.Relocator: when the buddy allocator migrates a
// movable data frame, rewrite the PTE and shoot down the stale translation.
func (as *AddressSpace) Relocate(old, new mem.PAddr) bool {
	va, size, ok := as.rmap.get(old)
	if !ok {
		return false
	}
	// Only base pages migrate frame-by-frame. The allocator offers an
	// order-0 destination; remapping a 2 MiB leaf onto it would alias the
	// 511 frames behind it whenever the destination happened to be 2 MiB
	// aligned, and the eventual Free(dst, 9) would release frames owned
	// by strangers. Huge pages must be split before their frames move.
	if size != mem.Size4K {
		return false
	}
	if err := as.PT.Unmap(va, size); err != nil {
		return false
	}
	if err := as.PT.Map(va, new, size, mem.PTEWritable); err != nil {
		// Restore the original mapping; migration is abandoned.
		_ = as.PT.Map(va, old, size, mem.PTEWritable)
		return false
	}
	as.rmap.del(old)
	as.rmap.set(new, va, size)
	as.notifyInvalidate(va)
	return true
}

// SplitHugePage shatters the 2 MiB mapping covering va into 512 base-page
// mappings over the same frames (the THP split path taken under memory
// pressure, partial munmap, or mprotect). Data keeps its physical
// placement; only the leaf level changes — the 4K/2M flip that the DMT
// fetcher's parallel-fetch disambiguation (§4.4) must survive.
func (as *AddressSpace) SplitHugePage(v *VMA, va mem.VAddr) error {
	base := mem.AlignDown(va, mem.PageBytes2M)
	if size, ok := v.pageAt(base); !ok || size != mem.Size2M {
		return ErrNotPopulated
	}
	if v.isResident(base) {
		return fmt.Errorf("kernel: cannot split caller-owned mapping at %#x", uint64(base))
	}
	pte, ok := as.PT.LeafPTE(base)
	if !ok {
		return ErrNotPopulated
	}
	frame := pte.Frame()
	if err := as.PT.Unmap(base, mem.Size2M); err != nil {
		return err
	}
	as.rmap.del(frame)
	v.clearPresent(base)
	as.notifyInvalidate(base)
	for off := mem.VAddr(0); off < mem.PageBytes2M; off += mem.PageBytes4K {
		pa := frame + mem.PAddr(uint64(off))
		if err := as.PT.Map(base+off, pa, mem.Size4K, mem.PTEWritable); err != nil {
			// Unwind: a partial split would leave the tail of the 2 MiB
			// block mapped nowhere but never freed. Tear down the base
			// pages already installed and try to restore the huge leaf;
			// if even that fails, release the block — the data re-faults.
			for undo := mem.VAddr(0); undo < off; undo += mem.PageBytes4K {
				if as.PT.Unmap(base+undo, mem.Size4K) == nil {
					as.rmap.del(frame + mem.PAddr(uint64(undo)))
					v.clearPresent(base + undo)
					as.notifyInvalidate(base + undo)
				}
			}
			if as.PT.Map(base, frame, mem.Size2M, mem.PTEWritable) == nil {
				v.setPresent(base, mem.Size2M, false)
				as.rmap.set(frame, base, mem.Size2M)
			} else {
				as.Phys.Free(frame, 9)
			}
			return err
		}
		v.setPresent(base+off, mem.Size4K, false)
		as.rmap.set(pa, base+off, mem.Size4K)
	}
	return nil
}

// PromoteTHP collapses fully-populated, physically-contiguous... — in this
// model it re-faults an aligned 2 MiB region as a huge page, freeing the
// 512 base frames (khugepaged analogue). It reports promoted regions.
func (as *AddressSpace) PromoteTHP(v *VMA) int {
	if !as.cfg.THP {
		return 0
	}
	promoted := 0
	for base := mem.AlignUp(v.Start, mem.PageBytes2M); base+mem.PageBytes2M <= v.End; base += mem.PageBytes2M {
		if size, ok := v.pageAt(base); ok && size == mem.Size2M {
			continue
		}
		// All 512 base pages must be present and owned by this address
		// space: collapsing over a caller-owned resident page (a mapped
		// gTEA window slot) would silently drop the foreign mapping.
		full := true
		for off := mem.VAddr(0); off < mem.PageBytes2M; off += mem.PageBytes4K {
			if size, ok := v.pageAt(base + off); !ok || size != mem.Size4K || v.isResident(base+off) {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		pa, err := as.Phys.Alloc(9, phys.KindMovable)
		if err != nil {
			return promoted
		}
		for off := mem.VAddr(0); off < mem.PageBytes2M; off += mem.PageBytes4K {
			as.unmapPage(v, base+off)
		}
		if err := as.PT.Map(base, pa, mem.Size2M, mem.PTEWritable); err != nil {
			as.Phys.Free(pa, 9)
			return promoted
		}
		v.setPresent(base, mem.Size2M, false)
		as.rmap.set(pa, base, mem.Size2M)
		as.THPMapped++
		promoted++
	}
	return promoted
}
