package kernel

import (
	"errors"
	"fmt"
	"sort"

	"dmt/internal/mem"
	"dmt/internal/pagetable"
	"dmt/internal/phys"
)

// Common address-space errors.
var (
	ErrOverlap      = errors.New("kernel: VMA overlaps existing mapping")
	ErrNoSuchVMA    = errors.New("kernel: no such VMA")
	ErrBadAddress   = errors.New("kernel: address outside any VMA")
	ErrUnaligned    = errors.New("kernel: unaligned address or length")
	ErrOutOfMemory  = errors.New("kernel: out of physical memory")
	ErrNotPopulated = errors.New("kernel: page not populated")
)

// InvalidateFunc is called when a translation is torn down or changed so
// that simulated TLBs can drop stale entries (the shootdown path).
type InvalidateFunc func(va mem.VAddr)

// Config controls an AddressSpace.
type Config struct {
	// Levels is the page-table depth (mem.Levels4 by default).
	Levels int
	// THP enables transparent-huge-page allocation on faults.
	THP bool
	// ASID identifies the address space in TLB tags.
	ASID uint16
}

// AddressSpace is one process's (or one guest-physical) address space:
// the VMA list, the radix page table, and the demand-paging state.
type AddressSpace struct {
	Phys *phys.Allocator
	Pool *pagetable.Pool
	PT   *pagetable.Table

	cfg   Config
	vmas  []*VMA // sorted by Start
	hooks MMHooks

	// rmap maps data frames back to the page mapping them, enabling
	// movable-page migration.
	rmap map[mem.PAddr]rmapEntry

	invalidate []InvalidateFunc

	// Stats
	Faults     uint64
	THPMapped  uint64
	MMapCalls  uint64
	MergedVMAs uint64
}

type rmapEntry struct {
	va   mem.VAddr
	size mem.PageSize
}

// NewAddressSpace builds a process address space backed by pa.
func NewAddressSpace(pa *phys.Allocator, cfg Config) (*AddressSpace, error) {
	if cfg.Levels == 0 {
		cfg.Levels = mem.Levels4
	}
	as := &AddressSpace{
		Phys: pa,
		Pool: pagetable.NewPool(),
		cfg:  cfg,
		rmap: make(map[mem.PAddr]rmapEntry),
	}
	pt, err := pagetable.New(as.Pool, cfg.Levels, as.allocNode, as.freeNode)
	if err != nil {
		return nil, err
	}
	as.PT = pt
	pa.SetRelocator(as)
	return as, nil
}

// SetHooks installs the DMT-Linux TEA hooks. Must be called before VMAs are
// created for placement to take effect from the start.
func (as *AddressSpace) SetHooks(h MMHooks) { as.hooks = h }

// Hooks returns the installed hook set.
func (as *AddressSpace) Hooks() MMHooks { return as.hooks }

// ASID returns the address-space identifier used in TLB tags.
func (as *AddressSpace) ASID() uint16 { return as.cfg.ASID }

// THPEnabled reports whether transparent huge pages are on.
func (as *AddressSpace) THPEnabled() bool { return as.cfg.THP }

// OnInvalidate registers a TLB-invalidation callback.
func (as *AddressSpace) OnInvalidate(f InvalidateFunc) {
	as.invalidate = append(as.invalidate, f)
}

func (as *AddressSpace) notifyInvalidate(va mem.VAddr) {
	for _, f := range as.invalidate {
		f(va)
	}
}

func (as *AddressSpace) allocNode(level int, va mem.VAddr) (mem.PAddr, error) {
	if as.hooks != nil {
		if pa, ok := as.hooks.PlaceNode(level, va); ok {
			return pa, nil
		}
	}
	return as.Phys.AllocFrame(phys.KindPageTable)
}

func (as *AddressSpace) freeNode(level int, pa mem.PAddr) {
	if as.hooks != nil && as.hooks.OwnsNode(pa) {
		return // TEA-resident node pages are freed with their TEA
	}
	as.Phys.FreeFrame(pa)
}

// VMAs returns the VMA list, sorted by start address.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// FindVMA returns the VMA containing va.
func (as *AddressSpace) FindVMA(va mem.VAddr) (*VMA, bool) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > va })
	if i < len(as.vmas) && as.vmas[i].Contains(va) {
		return as.vmas[i], true
	}
	return nil, false
}

// MMap creates a VMA at [start, start+length). Both must be 4 KiB-aligned
// and the range must not overlap an existing VMA.
func (as *AddressSpace) MMap(start mem.VAddr, length uint64, kind VMAKind, name string) (*VMA, error) {
	if !mem.IsAligned(uint64(start), mem.PageBytes4K) || !mem.IsAligned(length, mem.PageBytes4K) || length == 0 {
		return nil, ErrUnaligned
	}
	end := start + mem.VAddr(length)
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > start })
	if i < len(as.vmas) && as.vmas[i].Start < end {
		return nil, fmt.Errorf("%w: [%#x,%#x) vs %s", ErrOverlap, uint64(start), uint64(end), as.vmas[i])
	}
	v := &VMA{Start: start, End: end, Kind: kind, Name: name,
		present:  make(map[mem.VAddr]mem.PageSize),
		resident: make(map[mem.VAddr]struct{}),
	}
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
	as.MMapCalls++
	if as.hooks != nil {
		as.hooks.VMACreated(v)
	}
	return v, nil
}

// MUnmap removes the VMA, tearing down all of its translations.
func (as *AddressSpace) MUnmap(v *VMA) error {
	i := as.indexOf(v)
	if i < 0 {
		return ErrNoSuchVMA
	}
	// Tear down translations while the TEA mapping is still live so
	// TEA-resident node frames are recognized (OwnsNode) and freed with
	// their TEA rather than individually.
	for page, size := range v.present {
		as.unmapPage(v, page, size)
	}
	if as.hooks != nil {
		as.hooks.VMADeleted(v)
	}
	as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
	return nil
}

// Grow extends the VMA's end (mremap/brk analogue).
func (as *AddressSpace) Grow(v *VMA, newEnd mem.VAddr) error {
	i := as.indexOf(v)
	if i < 0 {
		return ErrNoSuchVMA
	}
	if !mem.IsAligned(uint64(newEnd), mem.PageBytes4K) || newEnd <= v.End {
		return ErrUnaligned
	}
	if i+1 < len(as.vmas) && as.vmas[i+1].Start < newEnd {
		return ErrOverlap
	}
	oldStart, oldEnd := v.Start, v.End
	v.End = newEnd
	if as.hooks != nil {
		as.hooks.VMAResized(v, oldStart, oldEnd)
	}
	return nil
}

// Shrink reduces the VMA's end, unmapping pages beyond it.
func (as *AddressSpace) Shrink(v *VMA, newEnd mem.VAddr) error {
	if as.indexOf(v) < 0 {
		return ErrNoSuchVMA
	}
	if !mem.IsAligned(uint64(newEnd), mem.PageBytes4K) || newEnd >= v.End || newEnd <= v.Start {
		return ErrUnaligned
	}
	for page, size := range v.present {
		if page >= newEnd {
			as.unmapPage(v, page, size)
		}
	}
	oldStart, oldEnd := v.Start, v.End
	v.End = newEnd
	if as.hooks != nil {
		as.hooks.VMAResized(v, oldStart, oldEnd)
	}
	return nil
}

func (as *AddressSpace) indexOf(v *VMA) int {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= v.Start })
	if i < len(as.vmas) && as.vmas[i] == v {
		return i
	}
	return -1
}

// Touch ensures va is mapped, faulting a page in if necessary. It returns
// true when a page fault was taken.
func (as *AddressSpace) Touch(va mem.VAddr, write bool) (bool, error) {
	if _, _, ok := as.PT.Lookup(va); ok {
		as.PT.SetAccessed(va, write)
		return false, nil
	}
	v, ok := as.FindVMA(va)
	if !ok {
		return false, fmt.Errorf("%w: %#x", ErrBadAddress, uint64(va))
	}
	if err := as.faultIn(v, va); err != nil {
		return false, err
	}
	as.PT.SetAccessed(va, write)
	as.Faults++
	return true, nil
}

// faultIn installs a mapping for va, preferring a 2 MiB THP when enabled
// and the aligned 2 MiB region lies fully inside the VMA.
func (as *AddressSpace) faultIn(v *VMA, va mem.VAddr) error {
	if as.cfg.THP {
		base := mem.AlignDown(va, mem.PageBytes2M)
		if base >= v.Start && base+mem.PageBytes2M <= v.End && as.rangeUnmapped(base, mem.PageBytes2M) {
			if pa, err := as.Phys.Alloc(9, phys.KindMovable); err == nil { // 2^9 frames = 2 MiB
				if err := as.PT.Map(base, pa, mem.Size2M, mem.PTEWritable); err != nil {
					as.Phys.Free(pa, 9)
					return err
				}
				v.present[base] = mem.Size2M
				as.rmap[pa] = rmapEntry{va: base, size: mem.Size2M}
				as.THPMapped++
				return nil
			}
			// Fragmented: fall through to a base page.
		}
	}
	base := mem.AlignDown(va, mem.PageBytes4K)
	pa, err := as.Phys.AllocFrame(phys.KindMovable)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrOutOfMemory, err)
	}
	if err := as.PT.Map(base, pa, mem.Size4K, mem.PTEWritable); err != nil {
		as.Phys.FreeFrame(pa)
		return err
	}
	v.present[base] = mem.Size4K
	as.rmap[pa] = rmapEntry{va: base, size: mem.Size4K}
	return nil
}

// rangeUnmapped reports whether no leaf is installed anywhere inside
// [base, base+bytes). A THP must not overlay live 4K mappings: a 2 MiB
// region that was split and then partially unmapped still holds base
// pages, and mapping a huge leaf over them would fail (or worse, shadow
// them).
func (as *AddressSpace) rangeUnmapped(base mem.VAddr, bytes uint64) bool {
	for off := uint64(0); off < bytes; off += mem.PageBytes4K {
		if _, _, ok := as.PT.Lookup(base + mem.VAddr(off)); ok {
			return false
		}
	}
	return true
}

func (as *AddressSpace) unmapPage(v *VMA, page mem.VAddr, size mem.PageSize) {
	pte, ok := as.PT.LeafPTE(page)
	if ok {
		frame := pte.Frame()
		delete(as.rmap, frame)
		if err := as.PT.Unmap(page, size); err == nil {
			if _, external := v.resident[page]; !external {
				if size == mem.Size4K {
					as.Phys.FreeFrame(frame)
				} else {
					as.Phys.Free(frame, 9)
				}
			}
		}
	}
	delete(v.present, page)
	delete(v.resident, page)
	as.notifyInvalidate(page)
}

// MapResident installs a translation to a caller-owned frame: the page is
// neither movable nor freed back to this address space's allocator on
// unmap. This is the vm_insert_pages analogue the hypervisor uses to map
// host-allocated gTEAs into the guest physical space (§4.6.2). Any prior
// mapping of the page is torn down first.
func (as *AddressSpace) MapResident(v *VMA, va mem.VAddr, pa mem.PAddr, size mem.PageSize) error {
	if !v.Contains(va) {
		return ErrBadAddress
	}
	base := mem.AlignDown(va, size.Bytes())
	if old, ok := v.present[base]; ok {
		as.unmapPage(v, base, old)
	}
	if err := as.PT.Map(base, pa, size, mem.PTEWritable); err != nil {
		return err
	}
	v.present[base] = size
	v.resident[base] = struct{}{}
	return nil
}

// UnmapPage releases a single populated page of v (the madvise(DONTNEED)
// analogue), freeing its frame and shooting down the translation.
func (as *AddressSpace) UnmapPage(v *VMA, va mem.VAddr) error {
	base := mem.AlignDown(va, mem.PageBytes4K)
	size, ok := v.present[base]
	if !ok {
		// The page may be covered by a 2 MiB leaf whose base entry is
		// recorded at the huge-page boundary.
		hbase := mem.AlignDown(va, mem.PageBytes2M)
		if hsize, hok := v.present[hbase]; hok && hsize == mem.Size2M {
			base, size, ok = hbase, hsize, true
		}
	}
	if !ok {
		return ErrNotPopulated
	}
	as.unmapPage(v, base, size)
	return nil
}

// Populate eagerly faults in the whole VMA, modelling init-time allocation
// by data-intensive workloads (§7: "they typically allocate memory at the
// initialization time").
func (as *AddressSpace) Populate(v *VMA) error {
	step := mem.VAddr(mem.PageBytes4K)
	if as.cfg.THP {
		// Fault at 2 MiB strides first so THP regions allocate as units.
		for va := mem.AlignUp(v.Start, mem.PageBytes2M); va+mem.PageBytes2M <= v.End; va += mem.PageBytes2M {
			if _, err := as.Touch(va, true); err != nil {
				return err
			}
		}
	}
	for va := v.Start; va < v.End; va += step {
		if _, _, ok := as.PT.Lookup(va); ok {
			continue
		}
		if _, err := as.Touch(va, true); err != nil {
			return err
		}
	}
	return nil
}

// Relocate implements phys.Relocator: when the buddy allocator migrates a
// movable data frame, rewrite the PTE and shoot down the stale translation.
func (as *AddressSpace) Relocate(old, new mem.PAddr) bool {
	e, ok := as.rmap[old]
	if !ok {
		return false
	}
	if err := as.PT.Unmap(e.va, e.size); err != nil {
		return false
	}
	if err := as.PT.Map(e.va, new, e.size, mem.PTEWritable); err != nil {
		// Restore the original mapping; migration is abandoned.
		_ = as.PT.Map(e.va, old, e.size, mem.PTEWritable)
		return false
	}
	delete(as.rmap, old)
	as.rmap[new] = e
	as.notifyInvalidate(e.va)
	return true
}

// SplitHugePage shatters the 2 MiB mapping covering va into 512 base-page
// mappings over the same frames (the THP split path taken under memory
// pressure, partial munmap, or mprotect). Data keeps its physical
// placement; only the leaf level changes — the 4K/2M flip that the DMT
// fetcher's parallel-fetch disambiguation (§4.4) must survive.
func (as *AddressSpace) SplitHugePage(v *VMA, va mem.VAddr) error {
	base := mem.AlignDown(va, mem.PageBytes2M)
	if v.present[base] != mem.Size2M {
		return ErrNotPopulated
	}
	if _, external := v.resident[base]; external {
		return fmt.Errorf("kernel: cannot split caller-owned mapping at %#x", uint64(base))
	}
	pte, ok := as.PT.LeafPTE(base)
	if !ok {
		return ErrNotPopulated
	}
	frame := pte.Frame()
	if err := as.PT.Unmap(base, mem.Size2M); err != nil {
		return err
	}
	delete(as.rmap, frame)
	delete(v.present, base)
	as.notifyInvalidate(base)
	for off := mem.VAddr(0); off < mem.PageBytes2M; off += mem.PageBytes4K {
		pa := frame + mem.PAddr(uint64(off))
		if err := as.PT.Map(base+off, pa, mem.Size4K, mem.PTEWritable); err != nil {
			return err
		}
		v.present[base+off] = mem.Size4K
		as.rmap[pa] = rmapEntry{va: base + off, size: mem.Size4K}
	}
	return nil
}

// PromoteTHP collapses fully-populated, physically-contiguous... — in this
// model it re-faults an aligned 2 MiB region as a huge page, freeing the
// 512 base frames (khugepaged analogue). It reports promoted regions.
func (as *AddressSpace) PromoteTHP(v *VMA) int {
	if !as.cfg.THP {
		return 0
	}
	promoted := 0
	for base := mem.AlignUp(v.Start, mem.PageBytes2M); base+mem.PageBytes2M <= v.End; base += mem.PageBytes2M {
		if v.present[base] == mem.Size2M {
			continue
		}
		// All 512 base pages must be present.
		full := true
		for off := mem.VAddr(0); off < mem.PageBytes2M; off += mem.PageBytes4K {
			if v.present[base+off] != mem.Size4K {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		pa, err := as.Phys.Alloc(9, phys.KindMovable)
		if err != nil {
			return promoted
		}
		for off := mem.VAddr(0); off < mem.PageBytes2M; off += mem.PageBytes4K {
			as.unmapPage(v, base+off, mem.Size4K)
		}
		if err := as.PT.Map(base, pa, mem.Size2M, mem.PTEWritable); err != nil {
			as.Phys.Free(pa, 9)
			return promoted
		}
		v.present[base] = mem.Size2M
		as.rmap[pa] = rmapEntry{va: base, size: mem.Size2M}
		as.THPMapped++
		promoted++
	}
	return promoted
}
