package kernel

import (
	"testing"

	"dmt/internal/mem"
	"dmt/internal/phys"
)

func newAS(t *testing.T, frames int, cfg Config) *AddressSpace {
	t.Helper()
	as, err := NewAddressSpace(phys.New(0, frames), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestMMapAndFind(t *testing.T) {
	as := newAS(t, 4096, Config{})
	v, err := as.MMap(0x400000, 1<<20, VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := as.FindVMA(0x400000 + 1234); !ok || got != v {
		t.Fatal("FindVMA missed inside the VMA")
	}
	if _, ok := as.FindVMA(0x400000 + 1<<20); ok {
		t.Fatal("FindVMA matched past End")
	}
	if _, ok := as.FindVMA(0x3ff000); ok {
		t.Fatal("FindVMA matched below Start")
	}
}

func TestMMapOverlapRejected(t *testing.T) {
	as := newAS(t, 4096, Config{})
	if _, err := as.MMap(0x400000, 1<<20, VMAHeap, "a"); err != nil {
		t.Fatal(err)
	}
	for _, start := range []mem.VAddr{0x400000, 0x4ff000, 0x3ff000} {
		if _, err := as.MMap(start, 2<<12, VMAAnon, "b"); err == nil {
			t.Fatalf("overlap at %#x not rejected", uint64(start))
		}
	}
	// Adjacent (touching) is fine.
	if _, err := as.MMap(0x500000, 4096, VMAAnon, "c"); err != nil {
		t.Fatalf("adjacent mapping rejected: %v", err)
	}
}

func TestVMAsSorted(t *testing.T) {
	as := newAS(t, 4096, Config{})
	for _, start := range []mem.VAddr{0x900000, 0x100000, 0x500000} {
		if _, err := as.MMap(start, 4096, VMAAnon, "x"); err != nil {
			t.Fatal(err)
		}
	}
	vmas := as.VMAs()
	for i := 1; i < len(vmas); i++ {
		if vmas[i-1].Start >= vmas[i].Start {
			t.Fatal("VMA list not sorted")
		}
	}
}

func TestDemandPaging(t *testing.T) {
	as := newAS(t, 4096, Config{})
	v, _ := as.MMap(0x400000, 64<<12, VMAHeap, "heap")
	free0 := as.Phys.FreeFrames()
	faulted, err := as.Touch(0x400000+5<<12+7, false)
	if err != nil || !faulted {
		t.Fatalf("first touch: faulted=%v err=%v", faulted, err)
	}
	faulted, err = as.Touch(0x400000+5<<12+99, true)
	if err != nil || faulted {
		t.Fatalf("second touch must not fault, got faulted=%v err=%v", faulted, err)
	}
	if v.PopulatedPages() != 1 {
		t.Fatalf("PopulatedPages = %d, want 1", v.PopulatedPages())
	}
	// One data frame + three page-table nodes were consumed.
	if used := free0 - as.Phys.FreeFrames(); used != 4 {
		t.Fatalf("frames used = %d, want 4 (1 data + 3 PT)", used)
	}
	pte, ok := as.PT.LeafPTE(0x400000 + 5<<12)
	if !ok || !pte.Accessed() || !pte.Dirty() {
		t.Fatal("A/D bits not maintained by Touch")
	}
}

func TestTouchOutsideVMA(t *testing.T) {
	as := newAS(t, 256, Config{})
	if _, err := as.Touch(0xdead000, false); err == nil {
		t.Fatal("touch outside any VMA must fail")
	}
}

func TestTHPFaultsHugePages(t *testing.T) {
	as := newAS(t, 2048, Config{THP: true})
	v, _ := as.MMap(0x40000000, 4<<20, VMAHeap, "heap") // 2 MiB-aligned, 4 MiB
	if _, err := as.Touch(0x40000000+123, false); err != nil {
		t.Fatal(err)
	}
	if size, ok := v.PresentSize(0x40000000); !ok || size != mem.Size2M {
		t.Fatal("THP fault did not install a 2 MiB page")
	}
	_, size, ok := as.PT.Lookup(0x40000000 + mem.PageBytes2M - 1)
	if !ok || size != mem.Size2M {
		t.Fatal("tail of THP region not covered")
	}
	if as.THPMapped != 1 {
		t.Fatalf("THPMapped = %d, want 1", as.THPMapped)
	}
}

func TestTHPFallsBackWhenFragmented(t *testing.T) {
	as := newAS(t, 768, Config{THP: true}) // < 2 MiB contiguity after PT overhead? force via small zone
	// Exhaust large blocks: 768 frames cannot supply order-9 (512) after
	// a few allocations.
	if _, err := as.Phys.Alloc(9, phys.KindUnmovable); err != nil {
		t.Skip("zone too small for initial order-9")
	}
	_, _ = as.MMap(0x40000000, 2<<20, VMAHeap, "heap")
	if _, err := as.Touch(0x40000000, false); err != nil {
		t.Fatalf("fallback to base page failed: %v", err)
	}
	_, size, _ := as.PT.Lookup(0x40000000)
	if size != mem.Size4K {
		t.Fatal("expected 4K fallback under fragmentation")
	}
}

func TestMUnmapReleasesEverything(t *testing.T) {
	as := newAS(t, 4096, Config{})
	free0 := as.Phys.FreeFrames()
	v, _ := as.MMap(0x400000, 32<<12, VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	if err := as.MUnmap(v); err != nil {
		t.Fatal(err)
	}
	if as.Phys.FreeFrames() != free0 {
		t.Fatalf("leaked %d frames after MUnmap", free0-as.Phys.FreeFrames())
	}
	if _, ok := as.FindVMA(0x400000); ok {
		t.Fatal("VMA still findable after MUnmap")
	}
	if _, _, ok := as.PT.Lookup(0x400000); ok {
		t.Fatal("translation survived MUnmap")
	}
}

func TestShrinkUnmapsTail(t *testing.T) {
	as := newAS(t, 4096, Config{})
	v, _ := as.MMap(0x400000, 16<<12, VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	if err := as.Shrink(v, 0x400000+8<<12); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := as.PT.Lookup(0x400000 + 9<<12); ok {
		t.Fatal("translation beyond new end survived Shrink")
	}
	if _, _, ok := as.PT.Lookup(0x400000); !ok {
		t.Fatal("translation below new end lost")
	}
	if v.PopulatedPages() != 8 {
		t.Fatalf("PopulatedPages = %d, want 8", v.PopulatedPages())
	}
}

func TestGrowChecksNeighbour(t *testing.T) {
	as := newAS(t, 4096, Config{})
	a, _ := as.MMap(0x400000, 4096, VMAHeap, "a")
	if _, err := as.MMap(0x402000, 4096, VMAAnon, "b"); err != nil {
		t.Fatal(err)
	}
	if err := as.Grow(a, 0x402000); err != nil {
		t.Fatalf("grow to touching neighbour should work: %v", err)
	}
	if err := as.Grow(a, 0x403000); err != ErrOverlap {
		t.Fatalf("grow into neighbour err = %v, want ErrOverlap", err)
	}
}

func TestRelocateRewritesPTE(t *testing.T) {
	as := newAS(t, 4096, Config{})
	v, _ := as.MMap(0x400000, 4096, VMAHeap, "heap")
	_ = v
	if _, err := as.Touch(0x400000, true); err != nil {
		t.Fatal(err)
	}
	var shotDown []mem.VAddr
	as.OnInvalidate(func(va mem.VAddr) { shotDown = append(shotDown, va) })
	old, _, _ := as.PT.Lookup(0x400000)
	oldFrame := mem.AlignDownP(old, mem.PageBytes4K)
	newFrame, err := as.Phys.AllocFrame(phys.KindMovable)
	if err != nil {
		t.Fatal(err)
	}
	if !as.Relocate(oldFrame, newFrame) {
		t.Fatal("Relocate refused a movable data frame")
	}
	got, _, ok := as.PT.Lookup(0x400000)
	if !ok || mem.AlignDownP(got, mem.PageBytes4K) != newFrame {
		t.Fatal("PTE not rewritten to the new frame")
	}
	if len(shotDown) == 0 {
		t.Fatal("no TLB shootdown issued for the migrated page")
	}
}

func TestPromoteTHP(t *testing.T) {
	as := newAS(t, 4096, Config{THP: true})
	v, _ := as.MMap(0x40000000, 2<<20, VMAHeap, "heap")
	// Populate with base pages by temporarily disabling THP.
	as.cfg.THP = false
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	as.cfg.THP = true
	if size, ok := v.PresentSize(0x40000000); ok && size == mem.Size2M {
		t.Fatal("precondition: region must start as base pages")
	}
	if n := as.PromoteTHP(v); n != 1 {
		t.Fatalf("PromoteTHP = %d, want 1", n)
	}
	_, size, ok := as.PT.Lookup(0x40000000 + 12345)
	if !ok || size != mem.Size2M {
		t.Fatal("promotion did not install a 2 MiB leaf")
	}
}

// hookRecorder verifies lifecycle hook delivery.
type hookRecorder struct {
	created, resized, deleted int
}

func (h *hookRecorder) VMACreated(*VMA)                       { h.created++ }
func (h *hookRecorder) VMAResized(*VMA, mem.VAddr, mem.VAddr) { h.resized++ }
func (h *hookRecorder) VMADeleted(*VMA)                       { h.deleted++ }
func (h *hookRecorder) PlaceNode(int, mem.VAddr) (mem.PAddr, bool) {
	return 0, false
}
func (h *hookRecorder) OwnsNode(mem.PAddr) bool { return false }

func TestHookDelivery(t *testing.T) {
	as := newAS(t, 4096, Config{})
	rec := &hookRecorder{}
	as.SetHooks(rec)
	v, _ := as.MMap(0x400000, 8<<12, VMAHeap, "heap")
	_ = as.Grow(v, 0x400000+16<<12)
	_ = as.Shrink(v, 0x400000+8<<12)
	_ = as.MUnmap(v)
	if rec.created != 1 || rec.resized != 2 || rec.deleted != 1 {
		t.Fatalf("hooks = %+v, want 1/2/1", *rec)
	}
}

func TestUnmapPage(t *testing.T) {
	as := newAS(t, 4096, Config{})
	v, _ := as.MMap(0x400000, 16<<12, VMAHeap, "heap")
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	free0 := as.Phys.FreeFrames()
	if err := as.UnmapPage(v, 0x400000+3<<12+0x123); err != nil {
		t.Fatal(err)
	}
	if as.Phys.FreeFrames() != free0+1 {
		t.Fatalf("frame not released: %d -> %d", free0, as.Phys.FreeFrames())
	}
	if _, _, ok := as.PT.Lookup(0x400000 + 3<<12); ok {
		t.Fatal("translation survived UnmapPage")
	}
	if _, _, ok := as.PT.Lookup(0x400000 + 4<<12); !ok {
		t.Fatal("neighbour page lost")
	}
	if err := as.UnmapPage(v, 0x400000+3<<12); err != ErrNotPopulated {
		t.Fatalf("double UnmapPage err = %v, want ErrNotPopulated", err)
	}
	// Re-touch repopulates on demand.
	if faulted, err := as.Touch(0x400000+3<<12, false); err != nil || !faulted {
		t.Fatalf("re-touch: faulted=%v err=%v", faulted, err)
	}
}

func TestUnmapPageTHP(t *testing.T) {
	as := newAS(t, 4096, Config{THP: true})
	v, _ := as.MMap(0x40000000, 4<<20, VMAHeap, "heap")
	if _, err := as.Touch(0x40000000+0x123456, false); err != nil {
		t.Fatal(err)
	}
	// Unmapping via any address inside the 2M page removes the whole leaf.
	if err := as.UnmapPage(v, 0x40000000+0x1fffff); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := as.PT.Lookup(0x40000000); ok {
		t.Fatal("2M leaf survived UnmapPage")
	}
}
