package kernel

import (
	"testing"

	"dmt/internal/mem"
	"dmt/internal/phys"
)

// drainCheck tears the VMA down and asserts the allocator returned to its
// pre-workload state: every frame freed exactly once, buddy metadata sound.
func drainCheck(t *testing.T, as *AddressSpace, v *VMA, baselineFree int) {
	t.Helper()
	if err := as.MUnmap(v); err != nil {
		t.Fatalf("MUnmap: %v", err)
	}
	if got := as.Phys.FreeFrames(); got != baselineFree {
		t.Fatalf("FreeFrames = %d after teardown, want %d (leak or double free)", got, baselineFree)
	}
	if err := as.Phys.Audit(); err != nil {
		t.Fatalf("allocator audit after teardown: %v", err)
	}
}

// TestShrinkSplitsStraddlingHugePage pins the Shrink fix: a 2 MiB leaf
// whose base lies below the new end used to survive the teardown loop
// while still translating VAs beyond the shrunk VMA, so a later MMap over
// the vacated range aliased the stale tail frames. Shrink must shatter
// the straddling huge page and unmap its tail.
func TestShrinkSplitsStraddlingHugePage(t *testing.T) {
	as := newAS(t, 8192, Config{THP: true})
	baseline := as.Phys.FreeFrames()
	const start = mem.VAddr(1 << 30)
	v, err := as.MMap(start, 4<<20, VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	if _, size, ok := as.PT.Lookup(start + 2<<20); !ok || size != mem.Size2M {
		t.Fatalf("precondition: second huge page not mapped (ok=%v size=%v)", ok, size)
	}
	newEnd := start + 3<<20 // mid-way through the second huge page
	if err := as.Shrink(v, newEnd); err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if _, _, ok := as.PT.Lookup(newEnd); ok {
		t.Fatal("translation beyond the shrunk VMA survived")
	}
	if _, _, ok := as.PT.Lookup(start + 4<<20 - mem.PageBytes4K); ok {
		t.Fatal("last page of the old range still translates")
	}
	if pa, size, ok := as.PT.Lookup(start + 2<<20); !ok || size != mem.Size4K || pa == 0 {
		t.Fatalf("head of the straddling huge page should remain as base pages (ok=%v size=%v)", ok, size)
	}
	if _, size, ok := as.PT.Lookup(start); !ok || size != mem.Size2M {
		t.Fatal("untouched huge page below the straddle was disturbed")
	}
	// The vacated range must re-fault fresh frames, not alias stale ones.
	nv, err := as.MMap(newEnd, 1<<20, VMAAnon, "reuse")
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := as.Touch(newEnd, true)
	if err != nil {
		t.Fatal(err)
	}
	if !faulted {
		t.Fatal("Touch on the reused range hit a stale translation instead of faulting")
	}
	if err := as.MUnmap(nv); err != nil {
		t.Fatal(err)
	}
	drainCheck(t, as, v, baseline)
}

// TestSplitHugePageRestoresLeafOnFailure pins the SplitHugePage unwind: a
// node-allocation failure mid-split used to leave the 2 MiB frame leaked
// with the region unmapped. The huge leaf must be restored intact.
func TestSplitHugePageRestoresLeafOnFailure(t *testing.T) {
	as := newAS(t, 2048, Config{THP: true})
	baseline := as.Phys.FreeFrames()
	const start = mem.VAddr(1 << 30)
	v, err := as.MMap(start, 2<<20, VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	// Exhaust the allocator so the split cannot allocate its L1 node.
	var held []mem.PAddr
	for {
		pa, err := as.Phys.AllocFrame(phys.KindUnmovable)
		if err != nil {
			break
		}
		held = append(held, pa)
	}
	if err := as.SplitHugePage(v, start); err == nil {
		t.Fatal("SplitHugePage succeeded with an exhausted allocator")
	}
	if pa, size, ok := as.PT.Lookup(start); !ok || size != mem.Size2M || pa == 0 {
		t.Fatalf("huge leaf not restored after failed split (ok=%v size=%v)", ok, size)
	}
	if size, ok := v.pageAt(start); !ok || size != mem.Size2M {
		t.Fatalf("VMA page state not restored after failed split (ok=%v size=%v)", ok, size)
	}
	for _, pa := range held {
		as.Phys.FreeFrame(pa)
	}
	// With memory back, the split must now succeed and teardown balance.
	if err := as.SplitHugePage(v, start); err != nil {
		t.Fatalf("split after refill: %v", err)
	}
	drainCheck(t, as, v, baseline)
}

// TestUnmapPageFreesByInstalledLeaf pins the unmapPage fix: the teardown
// path must free by what the page table actually holds, not by the VMA's
// recorded size — freeing a 4 KiB frame at order 9 corrupts the buddy
// allocator (or panics on alignment) when bookkeeping has drifted.
func TestUnmapPageFreesByInstalledLeaf(t *testing.T) {
	as := newAS(t, 4096, Config{})
	baseline := as.Phys.FreeFrames()
	const start = mem.VAddr(1 << 30)
	v, err := as.MMap(start, 2<<20, VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := as.Touch(start, true); err != nil {
		t.Fatal(err)
	}
	// Simulate drifted bookkeeping: the recorded size says 2 MiB while the
	// installed leaf is a base page.
	v.clearPresent(start)
	v.setPresent(start, mem.Size2M, false)
	drainCheck(t, as, v, baseline)
}

// TestRelocateRefusesHugePages pins the Relocate guard: the buddy
// allocator migrates single frames, and remapping a 2 MiB leaf onto an
// order-0 destination would alias the 511 frames behind it. The owner
// must refuse so the allocator rolls the migration back.
func TestRelocateRefusesHugePages(t *testing.T) {
	as := newAS(t, 4096, Config{THP: true})
	baseline := as.Phys.FreeFrames()
	const start = mem.VAddr(1 << 30)
	v, err := as.MMap(start, 2<<20, VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	old, size, ok := as.PT.Lookup(start)
	if !ok || size != mem.Size2M {
		t.Fatalf("precondition: no huge page (ok=%v size=%v)", ok, size)
	}
	// A 2 MiB-aligned destination is the dangerous case: the remap would
	// succeed and silently alias half a megabyte of strangers' frames.
	dst, err := as.Phys.Alloc(9, phys.KindUnmovable)
	if err != nil {
		t.Fatal(err)
	}
	if as.Relocate(old, dst) {
		t.Fatal("Relocate accepted a huge-page migration")
	}
	if pa, _, _ := as.PT.Lookup(start); pa != old {
		t.Fatalf("huge mapping moved: %#x -> %#x", uint64(old), uint64(pa))
	}
	as.Phys.Free(dst, 9)
	drainCheck(t, as, v, baseline)
}

// TestPromoteTHPSkipsResidentPages pins the PromoteTHP guard: collapsing
// a region containing a caller-owned resident page (a mapped gTEA window
// slot) would replace the foreign mapping with an anonymous huge page.
func TestPromoteTHPSkipsResidentPages(t *testing.T) {
	as := newAS(t, 4096, Config{THP: true})
	const start = mem.VAddr(1 << 30)
	v, err := as.MMap(start, 2<<20, VMAHeap, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Populate(v); err != nil {
		t.Fatal(err)
	}
	if err := as.SplitHugePage(v, start); err != nil {
		t.Fatal(err)
	}
	// Replace one base page with a caller-owned resident frame.
	foreign, err := as.Phys.AllocFrame(phys.KindUnmovable)
	if err != nil {
		t.Fatal(err)
	}
	resVA := start + 5*mem.PageBytes4K
	if err := as.MapResident(v, resVA, foreign, mem.Size4K); err != nil {
		t.Fatal(err)
	}
	if n := as.PromoteTHP(v); n != 0 {
		t.Fatalf("PromoteTHP collapsed over a resident page (promoted %d)", n)
	}
	if pa, _, ok := as.PT.Lookup(resVA); !ok || pa != foreign {
		t.Fatalf("resident mapping disturbed (ok=%v pa=%#x want %#x)", ok, uint64(pa), uint64(foreign))
	}
	if err := as.MUnmap(v); err != nil {
		t.Fatal(err)
	}
	as.Phys.FreeFrame(foreign) // resident frames are the caller's to free
	if err := as.Phys.Audit(); err != nil {
		t.Fatal(err)
	}
}
