package dmt

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"dmt/internal/experiments"
	"dmt/internal/perfmodel"
	"dmt/internal/sim"
	"dmt/internal/workload"
)

// benchJSONOut enables TestEmitBenchJSON and names its output file:
//
//	go test -run EmitBenchJSON -benchjson BENCH_sim.json .
//
// The emitted document is the machine-readable perf record that
// cmd/benchcheck compares against the committed BENCH_sim.json in CI
// (see README "Benchmarks and the regression gate").
var benchJSONOut = flag.String("benchjson", "", "write the machine-readable benchmark record to this file")

// BenchDoc is the schema of BENCH_sim.json. Walk entries come from the
// BenchmarkWalk_* microbenchmarks; the matrix entries time one full
// regeneration of the simulation-backed figure set (Fig 14/15/17 + Table 5)
// at the bench-harness options, serially and with eight workers.
type BenchDoc struct {
	Schema  string `json:"schema"`
	Machine struct {
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"numcpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"machine"`
	Walks  map[string]BenchWalk `json:"walks"`
	Matrix BenchMatrix          `json:"matrix"`
	Build  BenchBuildDoc        `json:"build"`
	Note   string               `json:"note,omitempty"`
}

// BenchWalk records one walk microbenchmark plus the simulated walk-latency
// quantiles (schema v3) from the same cell's full deterministic run. The ns
// figures are host time; the cycle quantiles are simulated and therefore
// identical on every host, so benchcheck compares them directly.
type BenchWalk struct {
	NsPerWalk     float64 `json:"ns_per_walk"`
	AllocsPerWalk float64 `json:"allocs_per_walk"`
	BytesPerWalk  float64 `json:"bytes_per_walk"`
	P50WalkCycles float64 `json:"p50_walk_cycles,omitempty"`
	P90WalkCycles float64 `json:"p90_walk_cycles,omitempty"`
	P99WalkCycles float64 `json:"p99_walk_cycles,omitempty"`
	MaxWalkCycles float64 `json:"max_walk_cycles,omitempty"`
}

// BenchMatrix records the figure-matrix wall clock. NumCPU is recorded with
// the cell because workers8_seconds is only meaningful on a multi-core host:
// on one CPU the eight workers merely oversubscribe the core, and benchcheck
// skips the workers8 comparison when either side reports numcpu == 1.
type BenchMatrix struct {
	SerialSeconds     float64 `json:"serial_seconds"`
	Workers8Seconds   float64 `json:"workers8_seconds"`
	NumCPU            int     `json:"numcpu"`
	SeedSerialSeconds float64 `json:"seed_serial_seconds,omitempty"`
	SpeedupVsSeed     float64 `json:"speedup_vs_seed,omitempty"`
}

// BenchBuildDoc records machine-construction cost: per-environment cold
// builds and prototype clones (BenchmarkBuild_* / BenchmarkClone_*), and
// the share of the serial matrix wall clock spent inside parts builders
// (from sim.ReadBuildCacheStats around the serial matrix regeneration).
type BenchBuildDoc struct {
	Envs             map[string]BenchBuild `json:"envs"`
	MatrixBuildShare float64               `json:"matrix_build_share"`
}

// BenchBuild records one environment's construction cost at the bench
// harness working set. CloneVsBuildRatio (clone_ns / build_ns) is
// host-independent — both sides run on the same machine — so benchcheck
// compares it directly rather than through host-speed normalization.
type BenchBuild struct {
	BuildNs           float64 `json:"build_ns"`
	CloneNs           float64 `json:"clone_ns"`
	CloneVsBuildRatio float64 `json:"clone_vs_build_ratio"`
}

// buildBenchCells names the per-environment build/clone cells the gate
// tracks (the DMT design family: the richest substrate per environment).
var buildBenchCells = []struct {
	name string
	env  sim.Environment
	d    sim.Design
}{
	{"native", sim.EnvNative, sim.DesignDMT},
	{"virt", sim.EnvVirt, sim.DesignPvDMT},
	{"nested", sim.EnvNested, sim.DesignPvDMT},
}

// seedSerialSeconds is the full-matrix wall clock of the pre-engine serial
// simulator (commit d61753a), measured on the same machine that produced
// the committed BENCH_sim.json. It is machine-specific context for the
// speedup_vs_seed field, not something benchcheck compares across hosts.
const seedSerialSeconds = 9.49

// walkBenchCells is the pinned set the regression gate tracks: one cell per
// walker design (all twelve — the seven native designs and the five virt
// designs whose walkers a native cell doesn't already cover).
var walkBenchCells = []struct {
	name string
	env  sim.Environment
	d    sim.Design
}{
	{"NativeVanilla", sim.EnvNative, sim.DesignVanilla},
	{"NativeDMT", sim.EnvNative, sim.DesignDMT},
	{"NativeECPT", sim.EnvNative, sim.DesignECPT},
	{"NativeFPT", sim.EnvNative, sim.DesignFPT},
	{"NativeASAP", sim.EnvNative, sim.DesignASAP},
	{"NativeVictima", sim.EnvNative, sim.DesignVictima},
	{"NativeUtopia", sim.EnvNative, sim.DesignUtopia},
	{"VirtVanilla", sim.EnvVirt, sim.DesignVanilla},
	{"VirtShadow", sim.EnvVirt, sim.DesignShadow},
	{"VirtDMT", sim.EnvVirt, sim.DesignDMT},
	{"VirtPvDMT", sim.EnvVirt, sim.DesignPvDMT},
	{"VirtAgile", sim.EnvVirt, sim.DesignAgile},
}

// runMatrix regenerates the simulation-backed figure quantities once — the
// exact per-iteration work of the Fig14/Fig15/Fig17/Table5 benchmarks,
// fresh memoizing runner per figure block included — and returns the
// wall-clock seconds.
func runMatrix(workers int) (float64, error) {
	newRunner := func() *experiments.Runner {
		return experiments.NewRunner(experiments.Options{
			Ops: benchOps, WSBytes: benchWS, CacheScale: 16, Seed: 11,
			Workloads: []workload.Spec{workload.GUPS(), workload.Redis(), workload.Graph500()},
			Workers:   workers,
		})
	}
	start := time.Now()

	// Fig 14: native DMT page-walk speedup.
	r := newRunner()
	for _, wl := range r.Options().Workloads {
		if _, err := r.WalkRatio(sim.EnvNative, sim.DesignDMT, false, wl); err != nil {
			return 0, err
		}
	}

	// Fig 15: virtualized pvDMT walk and app speedups.
	r = newRunner()
	for _, wl := range r.Options().Workloads {
		ratio, err := r.WalkRatio(sim.EnvVirt, sim.DesignPvDMT, false, wl)
		if err != nil {
			return 0, err
		}
		calib, err := perfmodel.Get(wl.Name)
		if err != nil {
			return 0, err
		}
		_ = calib.AppSpeedupVirt(ratio)
	}

	// Fig 17: nested pvDMT app speedup.
	r = newRunner()
	for _, wl := range r.Options().Workloads {
		ratio, err := r.WalkRatio(sim.EnvNested, sim.DesignPvDMT, false, wl)
		if err != nil {
			return 0, err
		}
		calib, err := perfmodel.Get(wl.Name)
		if err != nil {
			return 0, err
		}
		_ = calib.AppSpeedupNested(ratio)
	}

	// Table 5: pvDMT versus the comparison designs, virtualized.
	r = newRunner()
	for _, other := range []sim.Design{sim.DesignFPT, sim.DesignECPT, sim.DesignAgile, sim.DesignASAP} {
		for _, wl := range r.Options().Workloads {
			ours, err := r.Run(sim.EnvVirt, sim.DesignPvDMT, false, wl)
			if err != nil {
				return 0, err
			}
			theirs, err := r.Run(sim.EnvVirt, other, false, wl)
			if err != nil {
				return 0, err
			}
			_ = theirs.AvgWalkCycles() / ours.AvgWalkCycles()
		}
	}
	return time.Since(start).Seconds(), nil
}

// TestEmitBenchJSON produces BENCH_sim.json. It is opt-in (the -benchjson
// flag) because it runs the walk microbenchmarks and two full matrix
// regenerations — roughly a minute of work.
func TestEmitBenchJSON(t *testing.T) {
	if *benchJSONOut == "" {
		t.Skip("pass -benchjson <path> to emit the benchmark record")
	}
	var doc BenchDoc
	doc.Schema = "dmt-bench/v3"
	doc.Machine.GOOS = runtime.GOOS
	doc.Machine.GOARCH = runtime.GOARCH
	doc.Machine.NumCPU = runtime.NumCPU()
	doc.Machine.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Walks = make(map[string]BenchWalk, len(walkBenchCells))
	for _, cell := range walkBenchCells {
		env, d := cell.env, cell.d
		res := testing.Benchmark(func(b *testing.B) { walkBench(b, env, d) })
		// The quantiles come from a deterministic full run of the same cell:
		// simulated cycles, not host time, so the record's v3 fields are
		// bit-identical no matter which machine emits them.
		simRes, err := sim.Run(benchCfg(env, d, false, workload.GUPS()))
		if err != nil {
			t.Fatal(err)
		}
		doc.Walks[cell.name] = BenchWalk{
			NsPerWalk:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerWalk: float64(res.AllocsPerOp()),
			BytesPerWalk:  float64(res.AllocedBytesPerOp()),
			P50WalkCycles: float64(simRes.WalkPercentile(50)),
			P90WalkCycles: float64(simRes.WalkPercentile(90)),
			P99WalkCycles: float64(simRes.WalkPercentile(99)),
			MaxWalkCycles: float64(simRes.WalkHist.Max),
		}
	}
	doc.Build.Envs = make(map[string]BenchBuild, len(buildBenchCells))
	for _, cell := range buildBenchCells {
		env, d := cell.env, cell.d
		br := testing.Benchmark(func(b *testing.B) { buildBench(b, env, d) })
		cr := testing.Benchmark(func(b *testing.B) { cloneBench(b, env, d) })
		buildNs := float64(br.T.Nanoseconds()) / float64(br.N)
		cloneNs := float64(cr.T.Nanoseconds()) / float64(cr.N)
		doc.Build.Envs[cell.name] = BenchBuild{
			BuildNs:           buildNs,
			CloneNs:           cloneNs,
			CloneVsBuildRatio: cloneNs / buildNs,
		}
	}
	// Each matrix regeneration starts from an empty prototype cache, so the
	// recorded wall clocks include that invocation's own cold builds — the
	// cost cmd/figures pays — rather than riding earlier measurements.
	sim.ResetBuildCache()
	serial, err := runMatrix(1)
	if err != nil {
		t.Fatal(err)
	}
	stats := sim.ReadBuildCacheStats()
	doc.Build.MatrixBuildShare = float64(stats.BuildNs) / (serial * 1e9)
	sim.ResetBuildCache()
	par, err := runMatrix(8)
	if err != nil {
		t.Fatal(err)
	}
	doc.Matrix = BenchMatrix{
		SerialSeconds:     serial,
		Workers8Seconds:   par,
		NumCPU:            runtime.NumCPU(),
		SeedSerialSeconds: seedSerialSeconds,
		SpeedupVsSeed:     seedSerialSeconds / serial,
	}
	doc.Note = "seed_serial_seconds is the pre-engine serial simulator's matrix wall clock on the " +
		"machine that produced this file; speedup_vs_seed = seed_serial_seconds / serial_seconds " +
		"(like-for-like: the serial single-shard run is the seed's configuration). Machine builds " +
		"are memoized: each (env x design x workload) substrate is built once per matrix and every " +
		"shard or repeat clones the prototype, so workers8_seconds no longer carries an 8x build " +
		"multiplier and serial_seconds skips rebuilds the memoizing runners used to re-pay across " +
		"figure blocks. build.envs records cold-build vs clone ns per environment " +
		"(clone_vs_build_ratio is host-independent); build.matrix_build_share is the fraction of " +
		"serial_seconds spent inside parts builders. Results are bit-identical with the cache on or " +
		"off and for any worker count. cmd/benchcheck compares ns figures only after normalizing " +
		"out overall host speed. The pNN_walk_cycles / max_walk_cycles fields (schema v3) are " +
		"simulated walk-latency quantiles from the observability histogram at the same cell " +
		"configuration: deterministic cycle counts, compared directly without normalization."
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*benchJSONOut, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: matrix serial %.2fs (build share %.1f%%), workers8 %.2fs, speedup vs seed %.2fx",
		*benchJSONOut, serial, doc.Build.MatrixBuildShare*100, par, doc.Matrix.SpeedupVsSeed)
}
