module dmt

go 1.22
