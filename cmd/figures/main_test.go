package main

import (
	"strings"
	"testing"
)

func goodFlags() cliFlags {
	return cliFlags{ops: 400_000, scale: 16, parallel: 1}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	f := goodFlags()
	wls, err := f.validate()
	if err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	if wls != nil {
		t.Fatalf("empty -workloads should map to nil (all seven), got %d", len(wls))
	}
	f.wlNames = "GUPS, Redis"
	wls, err = f.validate()
	if err != nil {
		t.Fatalf("workload subset rejected: %v", err)
	}
	if len(wls) != 2 || wls[0].Name != "GUPS" || wls[1].Name != "Redis" {
		t.Fatalf("workload subset mis-parsed: %+v", wls)
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string
	}{
		{"zero ops", func(f *cliFlags) { f.ops = 0 }, "-ops must be positive"},
		{"negative ops", func(f *cliFlags) { f.ops = -1 }, "-ops must be positive"},
		{"negative ws", func(f *cliFlags) { f.wsMiB = -4 }, "-ws must be >= 0"},
		{"zero scale", func(f *cliFlags) { f.scale = 0 }, "-scale must be >= 1"},
		{"negative scale", func(f *cliFlags) { f.scale = -2 }, "-scale must be >= 1"},
		{"negative parallel", func(f *cliFlags) { f.parallel = -1 }, "-parallel must be >= 0"},
		{"unknown figure", func(f *cliFlags) { f.fig = 99 }, "-fig must be one of"},
		{"unknown table", func(f *cliFlags) { f.table = 2 }, "-table must be one of"},
		{"unknown workload", func(f *cliFlags) { f.wlNames = "NoSuchBench" }, "NoSuchBench"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := goodFlags()
			tc.mutate(&f)
			if _, err := f.validate(); err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func jobNames(f cliFlags) []string {
	var names []string
	for _, j := range selectJobs(f) {
		names = append(names, j.name)
	}
	return names
}

// TestJobSelectionMatrix pins the -fig/-table/default/-all selection
// semantics: explicit flags pick exactly their job, no selection at all
// (or -all) picks every job, and -faults alone selects nothing from the
// job list (the campaign runs outside it).
func TestJobSelectionMatrix(t *testing.T) {
	allNames := jobNames(cliFlags{all: true})
	if len(allNames) != len(jobList(cliFlags{})) {
		t.Fatalf("-all selected %d of %d jobs", len(allNames), len(jobList(cliFlags{})))
	}

	for _, tc := range []struct {
		name   string
		flags  cliFlags
		expect []string
	}{
		{"default runs everything", cliFlags{}, allNames},
		{"-all runs everything", cliFlags{all: true}, allNames},
		{"-fig 14", cliFlags{fig: 14}, []string{"Figure 14"}},
		{"-fig 5", cliFlags{fig: 5}, []string{"Figure 5"}},
		{"-table 1", cliFlags{table: 1}, []string{"Table 1"}},
		{"-table 5", cliFlags{table: 5}, []string{"Table 5"}},
		{"-fig 4 -table 6", cliFlags{fig: 4, table: 6}, []string{"Figure 4", "Table 6"}},
		{"-overheads", cliFlags{overheads: true}, []string{"§6.3 overheads"}},
		{"-tails", cliFlags{tails: true}, []string{"Walk-latency tails"}},
		{"-headtohead", cliFlags{headToHead: true},
			[]string{"Head-to-head: DMT vs Victima vs Utopia"}},
		{"-faults selects no job", cliFlags{faults: true}, nil},
		{"-all overrides -fig", cliFlags{all: true, fig: 14}, allNames},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := jobNames(tc.flags)
			if len(got) != len(tc.expect) {
				t.Fatalf("selected %v, want %v", got, tc.expect)
			}
			for i := range got {
				if got[i] != tc.expect[i] {
					t.Fatalf("selected %v, want %v", got, tc.expect)
				}
			}
		})
	}
}
