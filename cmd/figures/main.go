// Command figures regenerates the tables and figures of the paper's
// evaluation (DESIGN.md §4 maps each to its experiment).
//
// Usage:
//
//	figures [-fig 4|5|14|15|16|17] [-table 1|5|6] [-overheads] [-all]
//	        [-ops N] [-ws MiB] [-scale N] [-workloads Redis,GUPS,...]
//
// With no selection flags, -all is assumed. Larger -ops / -ws sharpen the
// numbers at the cost of runtime; the defaults regenerate every experiment
// in a few minutes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dmt/internal/experiments"
	"dmt/internal/workload"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate (4, 5, 14, 15, 16, 17)")
		table     = flag.Int("table", 0, "table to regenerate (1, 5, 6)")
		overheads = flag.Bool("overheads", false, "run the §6.3 overhead analyses")
		tails     = flag.Bool("tails", false, "render the walk-latency tail table (p50/p90/p99/max)")
		faults    = flag.Bool("faults", false, "run the fault-injection degradation campaign")
		all       = flag.Bool("all", false, "regenerate everything")
		ops       = flag.Int("ops", 400_000, "trace length per configuration")
		wsMiB     = flag.Int("ws", 0, "working-set override in MiB (0 = per-workload scaled defaults)")
		scale     = flag.Int("scale", 16, "cache/TLB capacity scaling divisor")
		wlNames   = flag.String("workloads", "", "comma-separated benchmark subset (default: all seven)")
		parallel  = flag.Int("parallel", 1, "concurrent simulations (each holds its machine in RAM)")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	opt := experiments.Options{
		Ops:        *ops,
		WSBytes:    uint64(*wsMiB) << 20,
		CacheScale: *scale,
		Parallel:   *parallel,
	}
	if !*quiet {
		opt.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}
	if *wlNames != "" {
		for _, name := range strings.Split(*wlNames, ",") {
			s, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			opt.Workloads = append(opt.Workloads, s)
		}
	}
	r := experiments.NewRunner(opt)

	nothing := *fig == 0 && *table == 0 && !*overheads && !*faults && !*tails
	want := func(selected bool) bool { return *all || nothing || selected }

	type job struct {
		name string
		run  func() (string, error)
		sel  bool
	}
	jobs := []job{
		{"Table 1", func() (string, error) { return experiments.Table1() }, *table == 1},
		{"Figure 4", func() (string, error) { return experiments.Figure4(r) }, *fig == 4},
		{"Figure 5", func() (string, error) { return experiments.Figure5() }, *fig == 5},
		{"Figure 14", func() (string, error) { return experiments.Figure14(r) }, *fig == 14},
		{"Figure 15", func() (string, error) { return experiments.Figure15(r) }, *fig == 15},
		{"Figure 16", func() (string, error) { return experiments.Figure16(r) }, *fig == 16},
		{"Figure 17", func() (string, error) { return experiments.Figure17(r) }, *fig == 17},
		{"Table 5", func() (string, error) { return experiments.Table5(r) }, *table == 5},
		{"Table 6", func() (string, error) { return experiments.Table6(r) }, *table == 6},
		{"§6.3 overheads", func() (string, error) { return experiments.Overheads(r) }, *overheads},
		{"Walk-latency tails", func() (string, error) { return experiments.LatencyTails(r) }, *tails},
	}
	ran := false
	// The fault campaign runs only on explicit request: it spans every
	// (env × design × schedule) cell per workload and is not part of -all.
	if *faults {
		out, err := experiments.FaultCampaign(r)
		if err != nil {
			log.Fatalf("fault campaign: %v", err)
		}
		fmt.Printf("==== Fault campaign ====\n%s\n", out)
		ran = true
	}
	for _, j := range jobs {
		if !want(j.sel) && !(nothing || *all) {
			continue
		}
		if !*all && !nothing && !j.sel {
			continue
		}
		out, err := j.run()
		if err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		fmt.Printf("==== %s ====\n%s\n", j.name, out)
		ran = true
	}
	if !ran {
		log.Fatal("nothing selected; use -fig/-table/-overheads or -all")
	}
}
