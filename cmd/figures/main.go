// Command figures regenerates the tables and figures of the paper's
// evaluation (DESIGN.md §4 maps each to its experiment).
//
// Usage:
//
//	figures [-fig 4|5|14|15|16|17] [-table 1|5|6] [-overheads] [-tails]
//	        [-headtohead] [-all] [-ops N] [-ws MiB] [-scale N]
//	        [-workloads Redis,GUPS,...] [-parallel N]
//
// With no selection flags, -all is assumed. Larger -ops / -ws sharpen the
// numbers at the cost of runtime; the defaults regenerate every experiment
// in a few minutes.
//
// Flag values are validated up front: nonsensical sizing (-ops 0,
// -scale 0, a negative -parallel, ...) and unknown -fig/-table numbers
// exit with status 2 and a one-line message instead of dividing a cache
// geometry by zero mid-run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dmt/internal/experiments"
	"dmt/internal/workload"
)

// cliFlags collects every user-supplied value so validation and job
// selection are pure, testable functions rather than scattered
// log.Fatalf calls (the same pattern as cmd/dmtsim).
type cliFlags struct {
	fig        int
	table      int
	overheads  bool
	tails      bool
	faults     bool
	headToHead bool
	all        bool
	ops        int
	wsMiB      int
	scale      int
	wlNames    string
	parallel   int
	quiet      bool
}

// validFigs / validTables are the renderable selections; anything else is
// a typo the run should reject rather than silently render nothing.
var (
	validFigs   = map[int]bool{4: true, 5: true, 14: true, 15: true, 16: true, 17: true}
	validTables = map[int]bool{1: true, 5: true, 6: true}
)

// validate rejects nonsensical sizing and unknown selections up front and
// returns the parsed workload subset (nil = all seven); main maps any
// error to exit status 2.
func (f cliFlags) validate() ([]workload.Spec, error) {
	switch {
	case f.ops <= 0:
		return nil, fmt.Errorf("-ops must be positive (got %d)", f.ops)
	case f.wsMiB < 0:
		return nil, fmt.Errorf("-ws must be >= 0 (got %d; 0 means the scaled defaults)", f.wsMiB)
	case f.scale < 1:
		return nil, fmt.Errorf("-scale must be >= 1 (got %d)", f.scale)
	case f.parallel < 0:
		return nil, fmt.Errorf("-parallel must be >= 0 (got %d; 0 means sequential)", f.parallel)
	case f.fig != 0 && !validFigs[f.fig]:
		return nil, fmt.Errorf("-fig must be one of 4, 5, 14, 15, 16, 17 (got %d)", f.fig)
	case f.table != 0 && !validTables[f.table]:
		return nil, fmt.Errorf("-table must be one of 1, 5, 6 (got %d)", f.table)
	}
	var wls []workload.Spec
	if f.wlNames != "" {
		for _, name := range strings.Split(f.wlNames, ",") {
			s, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			wls = append(wls, s)
		}
	}
	return wls, nil
}

type job struct {
	name string
	run  func(*experiments.Runner) (string, error)
	sel  bool
}

func jobList(f cliFlags) []job {
	return []job{
		{"Table 1", func(*experiments.Runner) (string, error) { return experiments.Table1() }, f.table == 1},
		{"Figure 4", experiments.Figure4, f.fig == 4},
		{"Figure 5", func(*experiments.Runner) (string, error) { return experiments.Figure5() }, f.fig == 5},
		{"Figure 14", experiments.Figure14, f.fig == 14},
		{"Figure 15", experiments.Figure15, f.fig == 15},
		{"Figure 16", experiments.Figure16, f.fig == 16},
		{"Figure 17", experiments.Figure17, f.fig == 17},
		{"Table 5", experiments.Table5, f.table == 5},
		{"Table 6", experiments.Table6, f.table == 6},
		{"§6.3 overheads", experiments.Overheads, f.overheads},
		{"Walk-latency tails", experiments.LatencyTails, f.tails},
		{"Head-to-head: DMT vs Victima vs Utopia", experiments.HeadToHead, f.headToHead},
	}
}

// selectJobs is the one selection predicate: explicit flags pick their
// jobs, -all (or no selection at all) picks everything.
func selectJobs(f cliFlags) []job {
	nothing := f.fig == 0 && f.table == 0 &&
		!f.overheads && !f.faults && !f.tails && !f.headToHead
	want := func(selected bool) bool { return f.all || nothing || selected }
	var out []job
	for _, j := range jobList(f) {
		if !want(j.sel) {
			continue
		}
		out = append(out, j)
	}
	return out
}

func main() {
	var f cliFlags
	flag.IntVar(&f.fig, "fig", 0, "figure to regenerate (4, 5, 14, 15, 16, 17)")
	flag.IntVar(&f.table, "table", 0, "table to regenerate (1, 5, 6)")
	flag.BoolVar(&f.overheads, "overheads", false, "run the §6.3 overhead analyses")
	flag.BoolVar(&f.tails, "tails", false, "render the walk-latency tail table (p50/p90/p99/max)")
	flag.BoolVar(&f.faults, "faults", false, "run the fault-injection degradation campaign")
	flag.BoolVar(&f.headToHead, "headtohead", false, "render the DMT vs Victima vs Utopia comparison table")
	flag.BoolVar(&f.all, "all", false, "regenerate everything")
	flag.IntVar(&f.ops, "ops", 400_000, "trace length per configuration")
	flag.IntVar(&f.wsMiB, "ws", 0, "working-set override in MiB (0 = per-workload scaled defaults)")
	flag.IntVar(&f.scale, "scale", 16, "cache/TLB capacity scaling divisor")
	flag.StringVar(&f.wlNames, "workloads", "", "comma-separated benchmark subset (default: all seven)")
	flag.IntVar(&f.parallel, "parallel", 1, "concurrent simulations (each holds its machine in RAM)")
	flag.BoolVar(&f.quiet, "q", false, "suppress progress output")
	flag.Parse()

	wls, err := f.validate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(2)
	}

	opt := experiments.Options{
		Ops:        f.ops,
		WSBytes:    uint64(f.wsMiB) << 20,
		CacheScale: f.scale,
		Parallel:   f.parallel,
		Workloads:  wls,
	}
	if !f.quiet {
		opt.Logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}
	r := experiments.NewRunner(opt)

	ran := false
	// The fault campaign runs only on explicit request: it spans every
	// (env × design × schedule) cell per workload and is not part of -all.
	if f.faults {
		out, err := experiments.FaultCampaign(r)
		if err != nil {
			log.Fatalf("fault campaign: %v", err)
		}
		fmt.Printf("==== Fault campaign ====\n%s\n", out)
		ran = true
	}
	for _, j := range selectJobs(f) {
		out, err := j.run(r)
		if err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		fmt.Printf("==== %s ====\n%s\n", j.name, out)
		ran = true
	}
	if !ran {
		log.Fatal("nothing selected; use -fig/-table/-overheads or -all")
	}
}
