package main

import (
	"strings"
	"testing"
)

// goodFlags is a baseline that must validate; each case below perturbs it.
func goodFlags() cliFlags {
	return cliFlags{
		envName: "native", design: "vanilla", wlName: "GUPS",
		ops: 400_000, scale: 16, seed: 42, workers: 1,
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string
	}{
		{"zero ops", func(f *cliFlags) { f.ops = 0 }, "-ops must be positive"},
		{"negative ops", func(f *cliFlags) { f.ops = -5 }, "-ops must be positive"},
		{"negative workers", func(f *cliFlags) { f.workers = -1 }, "-workers must be >= 0"},
		{"negative shards", func(f *cliFlags) { f.shards = -4 }, "-shards must be >= 0"},
		{"negative ws", func(f *cliFlags) { f.wsMiB = -1 }, "-ws must be >= 0"},
		{"zero scale", func(f *cliFlags) { f.scale = 0 }, "-scale must be >= 1"},
		{"negative walk-trace", func(f *cliFlags) { f.walkTrace = -3 }, "-walk-trace must be >= 0"},
		{"negative trace-cap", func(f *cliFlags) { f.traceCap = -1 }, "-trace-cap must be >= 0"},
		{"unknown env", func(f *cliFlags) { f.envName = "bare-metal" }, "unknown environment"},
		{"unknown design", func(f *cliFlags) { f.design = "radix64" }, "unknown design"},
		{"unknown workload", func(f *cliFlags) { f.wlName = "STREAM" }, "workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := goodFlags()
			tc.mutate(&f)
			if _, _, _, err := f.validate(); err == nil {
				t.Fatalf("validate() accepted %+v", f)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateScenario(t *testing.T) {
	f := goodFlags()
	designs, err := f.validateScenario("")
	if err != nil {
		t.Fatalf("validateScenario rejected the defaults: %v", err)
	}
	if len(designs) != 2 || designs[0] != "dmt" || designs[1] != "pvdmt" {
		t.Fatalf("default designs = %v, want [dmt pvdmt]", designs)
	}
	if designs, err = f.validateScenario("pvdmt"); err != nil || len(designs) != 1 || designs[0] != "pvdmt" {
		t.Fatalf("explicit design = %v, %v", designs, err)
	}
	for name, tc := range map[string]struct {
		mutate  func(*cliFlags)
		design  string
		wantErr string
	}{
		"zero ops":        {func(f *cliFlags) { f.ops = 0 }, "", "-ops must be positive"},
		"negative vms":    {func(f *cliFlags) { f.vms = -1 }, "", "-vms must be >= 0"},
		"negative epochs": {func(f *cliFlags) { f.epochs = -1 }, "", "-epochs must be >= 0"},
		"negative mem":    {func(f *cliFlags) { f.memMiB = -1 }, "", "-mem must be >= 0"},
		"sim-only design": {func(*cliFlags) {}, "vanilla", "-scenario supports -design dmt or pvdmt"},
	} {
		t.Run(name, func(t *testing.T) {
			f := goodFlags()
			tc.mutate(&f)
			if _, err := f.validateScenario(tc.design); err == nil {
				t.Fatalf("validateScenario accepted %+v", f)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	f := goodFlags()
	env, design, wl, err := f.validate()
	if err != nil {
		t.Fatalf("validate() rejected the defaults: %v", err)
	}
	if env.String() != "native" || string(design) != "vanilla" || wl.Name != "GUPS" {
		t.Fatalf("validate() parsed (%v, %s, %s)", env, design, wl.Name)
	}
	// Zero values that mean "use the default" must stay accepted.
	f.workers, f.shards, f.wsMiB, f.walkTrace, f.traceCap = 0, 0, 0, 0, 0
	if _, _, _, err := f.validate(); err != nil {
		t.Fatalf("validate() rejected zero defaults: %v", err)
	}
	// Env aliases accepted by the serving API parse here too.
	for _, alias := range []string{"virt", "virtualized", "nested"} {
		f := goodFlags()
		f.envName = alias
		if _, _, _, err := f.validate(); err != nil {
			t.Fatalf("validate() rejected env %q: %v", alias, err)
		}
	}
}
